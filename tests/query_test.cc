#include <gtest/gtest.h>

#include <optional>
#include <unordered_set>

#include "query/executor.h"

namespace graphgen::query {
namespace {

using rel::Database;
using rel::Schema;
using rel::Table;
using rel::Value;
using rel::ValueType;

Database MakeDb() {
  Database db;
  Table authors("Author", Schema({{"id", ValueType::kInt64},
                                  {"name", ValueType::kString}}));
  authors.AppendUnchecked({Value(int64_t{1}), Value("ann")});
  authors.AppendUnchecked({Value(int64_t{2}), Value("bob")});
  authors.AppendUnchecked({Value(int64_t{3}), Value("cat")});
  db.PutTable(std::move(authors));

  Table ap("AuthorPub", Schema({{"aid", ValueType::kInt64},
                                {"pid", ValueType::kInt64}}));
  // Pub 10: {1, 2}; Pub 20: {2, 3}; Pub 30: {3}.
  ap.AppendUnchecked({Value(int64_t{1}), Value(int64_t{10})});
  ap.AppendUnchecked({Value(int64_t{2}), Value(int64_t{10})});
  ap.AppendUnchecked({Value(int64_t{2}), Value(int64_t{20})});
  ap.AppendUnchecked({Value(int64_t{3}), Value(int64_t{20})});
  ap.AppendUnchecked({Value(int64_t{3}), Value(int64_t{30})});
  db.PutTable(std::move(ap));
  return db;
}

TEST(ExecutorTest, ScanReturnsAllRows) {
  Database db = MakeDb();
  Executor ex(&db);
  ScanNode scan("Author");
  auto rs = ex.Execute(scan);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->NumRows(), 3u);
  EXPECT_EQ(rs->schema.NumColumns(), 2u);
}

TEST(ExecutorTest, ScanMissingTableFails) {
  Database db = MakeDb();
  Executor ex(&db);
  ScanNode scan("Nope");
  EXPECT_EQ(ex.Execute(scan).status().code(), StatusCode::kNotFound);
}

TEST(ExecutorTest, ScanWithPredicate) {
  Database db = MakeDb();
  Executor ex(&db);
  ScanNode scan("AuthorPub", {{1, CompareOp::kEq, Value(int64_t{10})}});
  auto rs = ex.Execute(scan);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->NumRows(), 2u);
}

TEST(ExecutorTest, PredicateOperators) {
  Database db = MakeDb();
  Executor ex(&db);
  auto count = [&](CompareOp op, int64_t v) {
    ScanNode scan("AuthorPub", {{1, op, Value(v)}});
    return ex.Execute(scan).ValueOrDie().NumRows();
  };
  EXPECT_EQ(count(CompareOp::kEq, 10), 2u);
  EXPECT_EQ(count(CompareOp::kNe, 10), 3u);
  EXPECT_EQ(count(CompareOp::kLt, 20), 2u);
  EXPECT_EQ(count(CompareOp::kLe, 20), 4u);
  EXPECT_EQ(count(CompareOp::kGt, 20), 1u);
  EXPECT_EQ(count(CompareOp::kGe, 20), 3u);
}

TEST(ExecutorTest, PredicateColumnOutOfRange) {
  Database db = MakeDb();
  Executor ex(&db);
  ScanNode scan("Author", {{9, CompareOp::kEq, Value(int64_t{1})}});
  EXPECT_EQ(ex.Execute(scan).status().code(), StatusCode::kPlanError);
}

TEST(ExecutorTest, SelfJoinProducesCoAuthorPairs) {
  Database db = MakeDb();
  Executor ex(&db);
  // AuthorPub a JOIN AuthorPub b ON a.pid = b.pid
  HashJoinNode join(std::make_unique<ScanNode>("AuthorPub"),
                    std::make_unique<ScanNode>("AuthorPub"), 1, 1);
  auto rs = ex.Execute(join);
  ASSERT_TRUE(rs.ok());
  // Pub 10: 2x2, pub 20: 2x2, pub 30: 1x1 => 9 joined rows.
  EXPECT_EQ(rs->NumRows(), 9u);
  EXPECT_EQ(rs->schema.NumColumns(), 4u);
}

TEST(ExecutorTest, JoinThenDistinctProject) {
  Database db = MakeDb();
  Executor ex(&db);
  auto join = std::make_unique<HashJoinNode>(
      std::make_unique<ScanNode>("AuthorPub"),
      std::make_unique<ScanNode>("AuthorPub"), 1, 1);
  ProjectNode project(std::move(join), {0, 2}, {"ID1", "ID2"}, true);
  auto rs = ex.Execute(project);
  ASSERT_TRUE(rs.ok());
  // Distinct (a, b) pairs incl. self pairs: (1,1),(1,2),(2,1),(2,2),
  // (2,3),(3,2),(3,3) => 7.
  EXPECT_EQ(rs->NumRows(), 7u);
  EXPECT_EQ(rs->schema.column(0).name, "ID1");
}

TEST(ExecutorTest, JoinSkipsNullKeys) {
  Database db;
  Table t("T", Schema({{"k", ValueType::kInt64}}));
  t.AppendUnchecked({Value()});
  t.AppendUnchecked({Value(int64_t{1})});
  db.PutTable(std::move(t));
  Executor ex(&db);
  HashJoinNode join(std::make_unique<ScanNode>("T"),
                    std::make_unique<ScanNode>("T"), 0, 0);
  auto rs = ex.Execute(join);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->NumRows(), 1u);  // only the non-null key matches
}

TEST(ExecutorTest, ProjectWithoutDistinctKeepsDuplicates) {
  Database db = MakeDb();
  Executor ex(&db);
  ProjectNode project(std::make_unique<ScanNode>("AuthorPub"), {1}, {"pid"},
                      false);
  auto rs = ex.Execute(project);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->NumRows(), 5u);
}

TEST(ExecutorTest, ProjectDistinctDeduplicates) {
  Database db = MakeDb();
  Executor ex(&db);
  ProjectNode project(std::make_unique<ScanNode>("AuthorPub"), {1}, {"pid"},
                      true);
  auto rs = ex.Execute(project);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->NumRows(), 3u);
}

TEST(ExecutorTest, ProjectColumnOutOfRange) {
  Database db = MakeDb();
  Executor ex(&db);
  ProjectNode project(std::make_unique<ScanNode>("Author"), {5}, {}, false);
  EXPECT_EQ(ex.Execute(project).status().code(), StatusCode::kPlanError);
}

TEST(ExecutorTest, JoinQualifiesDuplicateColumnNames) {
  Database db = MakeDb();
  Executor ex(&db);
  HashJoinNode join(std::make_unique<ScanNode>("AuthorPub"),
                    std::make_unique<ScanNode>("AuthorPub"), 1, 1);
  auto rs = ex.Execute(join);
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->schema.NumColumns(), 4u);
  EXPECT_EQ(rs->schema.column(0).name, "aid");
  EXPECT_EQ(rs->schema.column(1).name, "pid");
  // Right side of a self-join is qualified with its base table name.
  EXPECT_EQ(rs->schema.column(2).name, "AuthorPub.aid");
  EXPECT_EQ(rs->schema.column(3).name, "AuthorPub.pid");
  // Name lookup is now unambiguous.
  EXPECT_EQ(rs->schema.IndexOf("aid"), std::optional<size_t>{0});
  EXPECT_EQ(rs->schema.IndexOf("AuthorPub.aid"), std::optional<size_t>{2});
}

TEST(ExecutorTest, ThreeWaySelfJoinStaysUnambiguous) {
  Database db = MakeDb();
  Executor ex(&db);
  auto inner = std::make_unique<HashJoinNode>(
      std::make_unique<ScanNode>("AuthorPub"),
      std::make_unique<ScanNode>("AuthorPub"), 1, 1);
  HashJoinNode outer(std::move(inner), std::make_unique<ScanNode>("AuthorPub"),
                     1, 1);
  auto rs = ex.Execute(outer);
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->schema.NumColumns(), 6u);
  // Even the third copy gets a deterministic unique name.
  EXPECT_EQ(rs->schema.column(4).name, "AuthorPub.aid#2");
  EXPECT_EQ(rs->schema.column(5).name, "AuthorPub.pid#2");
  std::unordered_set<std::string> names;
  for (size_t c = 0; c < rs->schema.NumColumns(); ++c) {
    EXPECT_TRUE(names.insert(rs->schema.column(c).name).second);
  }
}

// Both engines, at any thread count, must produce bitwise-identical
// results in identical row order.
TEST(ExecutorTest, ColumnarMatchesRowAtATimeOnLargeJoin) {
  Database db;
  Table t("R", Schema({{"k", ValueType::kInt64}, {"v", ValueType::kInt64}}));
  // 30k rows, keys with skewed multiplicity, some NULLs — big enough to
  // cross every parallel threshold.
  for (int64_t i = 0; i < 30000; ++i) {
    t.AppendUnchecked({i % 7 == 0 ? Value() : Value(i % 997),
                       Value(i)});
  }
  db.PutTable(std::move(t));

  auto make_plan = [] {
    auto join = std::make_unique<HashJoinNode>(
        std::make_unique<ScanNode>("R", std::vector<Predicate>{
                                            {1, CompareOp::kLt,
                                             Value(int64_t{20000})}}),
        std::make_unique<ScanNode>("R"), 0, 0);
    return std::make_unique<ProjectNode>(
        std::move(join), std::vector<size_t>{0, 3},
        std::vector<std::string>{"a", "b"}, /*distinct=*/true);
  };
  auto plan = make_plan();

  Executor reference(&db, {.threads = 1, .engine = ExecEngine::kRowAtATime});
  auto oracle = reference.Execute(*plan);
  ASSERT_TRUE(oracle.ok());
  ASSERT_GT(oracle->NumRows(), 0u);

  for (size_t threads : {size_t{1}, size_t{4}}) {
    Executor columnar(&db, {.threads = threads});
    auto rs = columnar.Execute(*plan);
    ASSERT_TRUE(rs.ok());
    EXPECT_EQ(rs->schema.columns().size(), oracle->schema.columns().size());
    for (size_t c = 0; c < rs->schema.NumColumns(); ++c) {
      EXPECT_EQ(rs->schema.column(c).name, oracle->schema.column(c).name);
    }
    ASSERT_EQ(rs->NumRows(), oracle->NumRows()) << "threads=" << threads;
    EXPECT_EQ(rs->rows, oracle->rows) << "threads=" << threads;
  }
}

TEST(ExecutorTest, ExecuteColumnarIsLazyUntilMaterialize) {
  Database db = MakeDb();
  Executor ex(&db);
  ProjectNode project(std::make_unique<ScanNode>("AuthorPub"), {1}, {"pid"},
                      false);
  auto columnar = ex.ExecuteColumnar(project);
  ASSERT_TRUE(columnar.ok());
  // One source table, no value copies: the tuples are row ids.
  EXPECT_EQ(columnar->Width(), 1u);
  EXPECT_EQ(columnar->NumRows(), 5u);
  EXPECT_EQ(columnar->ValueAt(2, 0).AsInt64(), 20);
  ResultSet rs = columnar->Materialize();
  EXPECT_EQ(rs.NumRows(), 5u);
  EXPECT_EQ(rs.rows[2][0].AsInt64(), 20);
  EXPECT_EQ(rs.schema.column(0).name, "pid");
}

// Runs `plan` on both engines and expects bitwise-identical results.
ResultSet ExpectEngineParity(const Database& db, const PlanNode& plan) {
  Executor reference(&db, {.threads = 1, .engine = ExecEngine::kRowAtATime});
  auto oracle = reference.Execute(plan);
  EXPECT_TRUE(oracle.ok()) << oracle.status().ToString();
  for (size_t threads : {size_t{1}, size_t{4}}) {
    Executor columnar(&db, {.threads = threads});
    auto rs = columnar.Execute(plan);
    EXPECT_TRUE(rs.ok()) << rs.status().ToString();
    EXPECT_EQ(rs->rows, oracle->rows) << "threads=" << threads;
  }
  return std::move(oracle).ValueOrDie();
}

TEST(ExecutorTest, DictStringJoinMatchesRowEngine) {
  Database db;
  Table people("P", Schema({{"id", ValueType::kString},
                            {"city", ValueType::kString}}));
  people.AppendUnchecked({Value("ann"), Value("nyc")});
  people.AppendUnchecked({Value("bob"), Value("sfo")});
  people.AppendUnchecked({Value("cat"), Value("nyc")});
  people.AppendUnchecked({Value(), Value("nyc")});  // NULL joins nothing
  db.PutTable(std::move(people));
  Table visits("V", Schema({{"pid", ValueType::kString},
                            {"site", ValueType::kInt64}}));
  visits.AppendUnchecked({Value("bob"), Value(int64_t{1})});
  visits.AppendUnchecked({Value("ann"), Value(int64_t{2})});
  visits.AppendUnchecked({Value("zed"), Value(int64_t{3})});  // dangling
  visits.AppendUnchecked({Value(), Value(int64_t{4})});
  db.PutTable(std::move(visits));

  // Dictionary join kernel: probe codes translate into the build dict.
  HashJoinNode join(std::make_unique<ScanNode>("P"),
                    std::make_unique<ScanNode>("V"), 0, 0);
  ResultSet rs = ExpectEngineParity(db, join);
  EXPECT_EQ(rs.NumRows(), 2u);
}

TEST(ExecutorTest, CrossTypeKeyColumnsJoinEmpty) {
  // Value equality never crosses int64/string/double: a join between an
  // int64 column and a string column (or double column) has no matches.
  Database db;
  Table ints("I", Schema({{"k", ValueType::kInt64}}));
  ints.AppendUnchecked({Value(int64_t{1})});
  db.PutTable(std::move(ints));
  Table strs("S", Schema({{"k", ValueType::kString}}));
  strs.AppendUnchecked({Value("1")});
  db.PutTable(std::move(strs));
  Table dbls("D", Schema({{"k", ValueType::kDouble}}));
  dbls.AppendUnchecked({Value(1.0)});
  db.PutTable(std::move(dbls));

  for (const char* right : {"S", "D"}) {
    HashJoinNode join(std::make_unique<ScanNode>("I"),
                      std::make_unique<ScanNode>(right), 0, 0);
    ResultSet rs = ExpectEngineParity(db, join);
    EXPECT_EQ(rs.NumRows(), 0u) << right;
  }
}

TEST(ExecutorTest, MixedKeyColumnFallsBackToGenericJoin) {
  // A column holding both int64 and string keys (mixed encoding) joins
  // through the generic Value kernel: int cells match int columns, the
  // string cells match nothing there.
  Database db;
  Table mixed("M", Schema({{"k", ValueType::kString}}));
  mixed.AppendUnchecked({Value(int64_t{1})});
  mixed.AppendUnchecked({Value("one")});
  mixed.AppendUnchecked({Value(int64_t{2})});
  mixed.AppendUnchecked({Value()});
  db.PutTable(std::move(mixed));
  Table ints("I", Schema({{"k", ValueType::kInt64}}));
  ints.AppendUnchecked({Value(int64_t{1})});
  ints.AppendUnchecked({Value(int64_t{3})});
  db.PutTable(std::move(ints));

  HashJoinNode join(std::make_unique<ScanNode>("M"),
                    std::make_unique<ScanNode>("I"), 0, 0);
  ResultSet rs = ExpectEngineParity(db, join);
  EXPECT_EQ(rs.NumRows(), 1u);  // only int 1 matches
}

TEST(ExecutorTest, NullBitmapRespectedInFiltersAndJoins) {
  Database db;
  Table t("T", Schema({{"k", ValueType::kInt64}, {"v", ValueType::kInt64}}));
  for (int64_t i = 0; i < 100; ++i) {
    t.AppendUnchecked({i % 3 == 0 ? Value() : Value(i % 5), Value(i)});
  }
  db.PutTable(std::move(t));

  // NULL < int in the total order, so kLt matches NULL rows; kEq and kGt
  // do not.
  ScanNode lt("T", {{0, CompareOp::kLt, Value(int64_t{2})}});
  ScanNode eq("T", {{0, CompareOp::kEq, Value(int64_t{2})}});
  ResultSet lt_rs = ExpectEngineParity(db, lt);
  ResultSet eq_rs = ExpectEngineParity(db, eq);
  size_t nulls = 0;
  size_t eq2 = 0;
  size_t lt2 = 0;
  for (int64_t i = 0; i < 100; ++i) {
    if (i % 3 == 0) {
      ++nulls;
    } else if (i % 5 == 2) {
      ++eq2;
    } else if (i % 5 < 2) {
      ++lt2;
    }
  }
  EXPECT_EQ(lt_rs.NumRows(), nulls + lt2);
  EXPECT_EQ(eq_rs.NumRows(), eq2);

  // Self-join drops every NULL key on both sides.
  HashJoinNode join(std::make_unique<ScanNode>("T"),
                    std::make_unique<ScanNode>("T"), 0, 0);
  ResultSet join_rs = ExpectEngineParity(db, join);
  for (const auto& row : join_rs.rows) {
    EXPECT_FALSE(row[0].is_null());
  }
}

TEST(ExecutorTest, SemiJoinFilterDropsNonMembers) {
  Database db = MakeDb();
  auto keys = std::make_shared<KeyFilter>();
  keys->ints = {1, 3};
  auto scan = std::make_unique<ScanNode>("AuthorPub");
  scan->AddSemiJoin(0, keys);
  ResultSet rs = ExpectEngineParity(db, *scan);
  EXPECT_EQ(rs.NumRows(), 3u);  // aid 2 rows dropped
  for (const auto& row : rs.rows) {
    EXPECT_NE(row[0].AsInt64(), 2);
  }
  EXPECT_NE(scan->ToSql().find("IN (SELECT key FROM Nodes)"),
            std::string::npos);
}

TEST(ExecutorTest, SemiJoinFilterOnDictColumn) {
  Database db;
  Table t("T", Schema({{"who", ValueType::kString}}));
  for (const char* w : {"ann", "bob", "ann", "cat", "zed"}) {
    t.AppendUnchecked({Value(w)});
  }
  t.AppendUnchecked({Value()});
  db.PutTable(std::move(t));
  auto keys = std::make_shared<KeyFilter>();
  keys->strings = {"ann", "cat"};
  auto scan = std::make_unique<ScanNode>("T");
  scan->AddSemiJoin(0, keys);
  ResultSet rs = ExpectEngineParity(db, *scan);
  EXPECT_EQ(rs.NumRows(), 3u);
}

// The fused morsel pipeline (DISTINCT directly above a hash join) must be
// indistinguishable from the unfused operator chain: same survivors, same
// order, same row-id tuples — for every thread count and key encoding.
TEST(ExecutorTest, FusedJoinDistinctMatchesUnfusedBitwise) {
  Database db;
  Table t("R", Schema({{"k", ValueType::kInt64}, {"v", ValueType::kInt64}}));
  // Skewed key multiplicity, NULL keys, enough rows to cross the parallel
  // probe/DISTINCT thresholds; v % 41 makes the projected pairs repeat so
  // DISTINCT actually drops most of the join output.
  for (int64_t i = 0; i < 30000; ++i) {
    t.AppendUnchecked(
        {i % 11 == 0 ? Value() : Value(i % 499), Value(i % 41)});
  }
  db.PutTable(std::move(t));

  auto join = std::make_unique<HashJoinNode>(
      std::make_unique<ScanNode>("R"), std::make_unique<ScanNode>("R"), 0, 0);
  ProjectNode plan(std::move(join), std::vector<size_t>{1, 3},
                   std::vector<std::string>{"a", "b"}, /*distinct=*/true);

  Executor unfused(&db, {.threads = 1, .fuse_join_distinct = false});
  auto oracle = unfused.ExecuteColumnar(plan);
  ASSERT_TRUE(oracle.ok());
  ASSERT_GT(oracle->NumRows(), 0u);

  for (size_t threads : {size_t{1}, size_t{4}}) {
    // fuse_min_output_bytes = 0 forces the morsel pipeline regardless of
    // the estimated output size; the default (adaptive) config is also
    // checked — it must be identical whichever branch it picks.
    for (size_t min_bytes : {size_t{0}, (size_t{32} << 20)}) {
      Executor fused(&db, {.threads = threads,
                           .fuse_join_distinct = true,
                           .fuse_min_output_bytes = min_bytes});
      auto got = fused.ExecuteColumnar(plan);
      ASSERT_TRUE(got.ok()) << "threads=" << threads;
      // Row-id tuples are the strongest equality: identical survivors in
      // identical order over identical bindings.
      EXPECT_EQ(got->tuples, oracle->tuples)
          << "threads=" << threads << " min_bytes=" << min_bytes;
      EXPECT_EQ(got->Materialize().rows, oracle->Materialize().rows);
    }
  }
}

TEST(ExecutorTest, FusedJoinDistinctOnDictAndMixedKeys) {
  Database db;
  Table t("S", Schema({{"who", ValueType::kString},
                       {"topic", ValueType::kString}}));
  for (int i = 0; i < 5000; ++i) {
    t.AppendUnchecked({i % 13 == 0 ? Value() : Value("p" + std::to_string(i % 37)),
                       Value("t" + std::to_string(i % 7))});
  }
  db.PutTable(std::move(t));
  Table m("M", Schema({{"k", ValueType::kString}}));
  m.AppendUnchecked({Value("p1")});
  m.AppendUnchecked({Value(int64_t{4})});  // converts the column to mixed
  m.AppendUnchecked({Value("p2")});
  db.PutTable(std::move(m));

  for (const char* right : {"S", "M"}) {
    auto join = std::make_unique<HashJoinNode>(
        std::make_unique<ScanNode>("S"), std::make_unique<ScanNode>(right), 0,
        0);
    ProjectNode plan(std::move(join), std::vector<size_t>{0, 1},
                     std::vector<std::string>{"a", "b"}, /*distinct=*/true);
    Executor unfused(&db, {.threads = 4, .fuse_join_distinct = false});
    Executor fused(&db, {.threads = 4,
                         .fuse_join_distinct = true,
                         .fuse_min_output_bytes = 0});
    auto want = unfused.ExecuteColumnar(plan);
    auto got = fused.ExecuteColumnar(plan);
    ASSERT_TRUE(want.ok() && got.ok()) << right;
    EXPECT_EQ(got->tuples, want->tuples) << right;
  }
}

TEST(ExecutorTest, FusedJoinDistinctEmptyAndImpossibleJoins) {
  Database db;
  Table a("A", Schema({{"k", ValueType::kInt64}}));
  a.AppendUnchecked({Value(int64_t{1})});
  db.PutTable(std::move(a));
  Table b("B", Schema({{"k", ValueType::kString}}));
  b.AppendUnchecked({Value("x")});
  db.PutTable(std::move(b));

  // int64 ⋈ string can never match; the fused path must still return the
  // correct (empty) result with the correct schema.
  auto join = std::make_unique<HashJoinNode>(
      std::make_unique<ScanNode>("A"), std::make_unique<ScanNode>("B"), 0, 0);
  ProjectNode plan(std::move(join), std::vector<size_t>{0, 1},
                   std::vector<std::string>{"a", "b"}, /*distinct=*/true);
  Executor ex(&db, {.fuse_join_distinct = true, .fuse_min_output_bytes = 0});
  auto rs = ex.Execute(plan);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->NumRows(), 0u);
  EXPECT_EQ(rs->schema.NumColumns(), 2u);
}

TEST(PlanSqlTest, RendersReadableSql) {
  ScanNode scan("AuthorPub", {{1, CompareOp::kEq, Value(int64_t{10})}});
  EXPECT_EQ(scan.ToSql(), "SELECT * FROM AuthorPub WHERE $1 = 10");

  auto join = std::make_unique<HashJoinNode>(
      std::make_unique<ScanNode>("A"), std::make_unique<ScanNode>("B"), 1, 0);
  EXPECT_NE(join->ToSql().find("JOIN"), std::string::npos);

  ProjectNode project(std::move(join), {0, 2}, {"src", "dst"}, true);
  std::string sql = project.ToSql();
  EXPECT_NE(sql.find("SELECT DISTINCT"), std::string::npos);
  EXPECT_NE(sql.find("AS src"), std::string::npos);
}

TEST(PlanSqlTest, CompareOpStrings) {
  EXPECT_EQ(CompareOpToString(CompareOp::kEq), "=");
  EXPECT_EQ(CompareOpToString(CompareOp::kNe), "<>");
  EXPECT_EQ(CompareOpToString(CompareOp::kLe), "<=");
}

}  // namespace
}  // namespace graphgen::query
