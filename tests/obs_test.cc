// Tests for the observability subsystem: sharded metrics under concurrent
// writers (run under TSan in CI), histogram bucketing, the registry,
// ScopedTimer plumbing, EXPLAIN ANALYZE profile correctness against real
// extraction cardinalities, and the service slow-request log.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "gen/relational_generators.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "planner/extractor.h"
#include "service/graph_service.h"

namespace graphgen {
namespace {

/// Forces the observability switch for a test's lifetime and restores the
/// ambient state (which depends on GRAPHGEN_OBS_OFF) afterwards.
class ScopedObsEnabled {
 public:
  explicit ScopedObsEnabled(bool on) : prev_(obs::Enabled()) {
    obs::SetEnabled(on);
  }
  ~ScopedObsEnabled() { obs::SetEnabled(prev_); }

 private:
  bool prev_;
};

TEST(CounterTest, SingleThreadExact) {
  obs::Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(CounterTest, ConcurrentWritersMergeExactly) {
  // The TSan target in CI runs this: many writers on one sharded counter
  // with a racing reader, then an exact merged total once quiescent.
  obs::Counter c;
  obs::Histogram h;
  ScopedObsEnabled on(true);
  constexpr int kThreads = 8;
  constexpr int kIters = 50000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    uint64_t last = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      uint64_t now = c.Value();
      EXPECT_GE(now, last);  // monotonic even mid-race
      last = now;
      (void)h.Snap();
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        c.Increment();
        h.Record(static_cast<uint64_t>(i & 1023));
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(h.Snap().count, static_cast<uint64_t>(kThreads) * kIters);
}

TEST(HistogramTest, Log2BucketsAndPercentiles) {
  ScopedObsEnabled on(true);
  obs::Histogram h;
  for (int i = 0; i < 9; ++i) h.Record(1000);  // bucket 10: [512, 1024)
  h.Record(100000);                            // bucket 17: [65536, 131072)
  obs::Histogram::Snapshot s = h.Snap();
  EXPECT_EQ(s.count, 10u);
  EXPECT_EQ(s.sum, 9u * 1000u + 100000u);
  EXPECT_DOUBLE_EQ(s.Mean(), (9.0 * 1000 + 100000) / 10);
  EXPECT_EQ(s.Percentile(0.5), 1023u);
  EXPECT_EQ(s.Percentile(1.0), 131071u);
}

TEST(HistogramTest, DisabledRecordIsNoOp) {
  ScopedObsEnabled off(false);
  obs::Histogram h;
  h.Record(123);
  h.RecordSeconds(1.5);
  EXPECT_EQ(h.Snap().count, 0u);
}

TEST(RegistryTest, StablePointersAndSortedSnapshot) {
  obs::MetricsRegistry reg;
  obs::Counter* a = reg.GetCounter("b.second");
  EXPECT_EQ(a, reg.GetCounter("b.second"));
  reg.GetCounter("a.first")->Add(7);
  reg.GetGauge("c.third")->Set(-3);
  a->Add(2);
  std::vector<obs::MetricValue> snap = reg.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "a.first");
  EXPECT_EQ(snap[0].counter, 7u);
  EXPECT_EQ(snap[1].name, "b.second");
  EXPECT_EQ(snap[1].counter, 2u);
  EXPECT_EQ(snap[2].name, "c.third");
  EXPECT_EQ(snap[2].gauge, -3);
  std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"a.first\": {\"type\": \"counter\", \"value\": 7}"),
            std::string::npos);
}

TEST(ScopedTimerTest, AccumulatesSinksAndCallsBack) {
  double acc_s = 0;
  double acc_ms = 0;
  { ScopedTimer t(&acc_s); }
  { ScopedTimer t(&acc_ms, ScopedTimer::Unit::kMillis); }
  EXPECT_GE(acc_s, 0.0);
  EXPECT_GE(acc_ms, 0.0);
  { ScopedTimer t(&acc_s); }  // accumulates, not overwrites
  EXPECT_GT(acc_s, 0.0);

  ScopedObsEnabled on(true);
  obs::Histogram h;
  { ScopedTimer t(h); }
  EXPECT_EQ(h.Snap().count, 1u);

  double seen = -1;
  { ScopedTimer t([&](double s) { seen = s; }); }
  EXPECT_GE(seen, 0.0);
}

TEST(ProfileTest, SpanHonorsEnabledFlag) {
  obs::ProfileNode node;
  node.name = "x";
  {
    ScopedObsEnabled off(false);
    obs::Span span(&node);
  }
  EXPECT_EQ(node.seconds, 0.0);
  {
    ScopedObsEnabled on(true);
    obs::Span span(&node);
  }
  EXPECT_GE(node.seconds, 0.0);
}

const obs::ProfileNode* FindNode(const obs::ProfileNode& root,
                                 const std::string& name,
                                 const std::string& detail = "") {
  if (root.name == name && (detail.empty() || root.detail == detail)) {
    return &root;
  }
  for (const obs::ProfileNode& child : root.children) {
    if (const obs::ProfileNode* found = FindNode(child, name, detail)) {
      return found;
    }
  }
  return nullptr;
}

TEST(ProfileTest, OperatorRowCountsMatchExtractionCardinalities) {
  ScopedObsEnabled on(true);
  gen::GeneratedDatabase data = gen::MakeDblpLike(200, 300, 3.0);
  auto result = planner::ExtractFromQuery(data.db, data.datalog, {});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const obs::QueryProfile& profile = result->profile;
  ASSERT_FALSE(profile.empty());
  EXPECT_EQ(profile.query, data.datalog);

  // Stage rows mirror the extraction's own counters.
  const obs::ProfileNode* nodes = FindNode(profile.root, "nodes");
  ASSERT_NE(nodes, nullptr);
  EXPECT_EQ(nodes->rows, static_cast<int64_t>(result->real_nodes));
  const obs::ProfileNode* edges = FindNode(profile.root, "edges");
  ASSERT_NE(edges, nullptr);
  EXPECT_EQ(edges->rows, static_cast<int64_t>(result->condensed_edges));

  // Leaf scans report the true table cardinality.
  const size_t author_rows =
      data.db.GetTable("Author").ValueOrDie()->NumRows();
  const obs::ProfileNode* scan = FindNode(profile.root, "scan", "Author");
  ASSERT_NE(scan, nullptr);
  EXPECT_EQ(scan->rows, static_cast<int64_t>(author_rows));

  // Each node rule's root operator produced exactly the rule's rows.
  for (const obs::ProfileNode& rule : nodes->children) {
    if (rule.name != "rule") continue;
    ASSERT_FALSE(rule.children.empty());
    EXPECT_EQ(rule.children.front().rows, rule.rows);
  }

  // The same tree round-trips through text and JSON.
  std::string text = profile.ToText();
  EXPECT_NE(text.find("-> nodes"), std::string::npos);
  std::string json = profile.ToJson();
  EXPECT_NE(json.find("\"name\": \"edges\""), std::string::npos);
}

TEST(SlowLogTest, CapturesAndEvictsBeyondCapacity) {
  ScopedObsEnabled on(true);
  gen::GeneratedDatabase data = gen::MakeDblpLike(100, 150, 3.0);
  service::ServiceOptions options;
  options.slow_request_seconds = 1e-9;  // everything is "slow"
  options.slow_log_capacity = 2;
  service::GraphService svc(&data.db, options);

  // Three distinct cache keys (representation is part of the canonical
  // key), so three cold extractions are admitted into a capacity-2 ring.
  for (Representation r : {Representation::kCDup, Representation::kExp,
                           Representation::kBitmap2}) {
    GraphGenOptions gopts;
    gopts.representation = r;
    auto handle = svc.Extract(data.datalog, gopts);
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  }

  EXPECT_EQ(svc.Stats().slow_requests, 3u);
  std::vector<service::SlowRequest> slow = svc.SlowRequests();
  ASSERT_EQ(slow.size(), 2u);  // oldest (sequence 0) evicted
  EXPECT_EQ(slow[0].sequence, 1u);
  EXPECT_EQ(slow[1].sequence, 2u);
  for (const service::SlowRequest& r : slow) {
    EXPECT_EQ(r.datalog, data.datalog);
    EXPECT_GT(r.seconds, 0.0);
    ASSERT_NE(r.profile, nullptr);
    EXPECT_FALSE(r.profile->empty());
    EXPECT_GT(r.profile->wall_seconds, 0.0);
  }

  // A cache hit is not a cold extraction and must not re-enter the log.
  GraphGenOptions gopts;
  gopts.representation = Representation::kBitmap2;
  ASSERT_TRUE(svc.Extract(data.datalog, gopts).ok());
  EXPECT_EQ(svc.Stats().slow_requests, 3u);
  EXPECT_EQ(svc.SlowRequests().size(), 2u);
}

TEST(SlowLogTest, DisabledThresholdLogsNothing) {
  gen::GeneratedDatabase data = gen::MakeDblpLike(50, 80, 3.0);
  service::ServiceOptions options;
  options.slow_request_seconds = 0;  // <= 0 disables the log
  service::GraphService svc(&data.db, options);
  ASSERT_TRUE(svc.Extract(data.datalog).ok());
  EXPECT_EQ(svc.Stats().slow_requests, 0u);
  EXPECT_TRUE(svc.SlowRequests().empty());
}

TEST(ServiceStatsTest, RegistrySnapshotMatchesStatsView) {
  gen::GeneratedDatabase data = gen::MakeDblpLike(50, 80, 3.0);
  service::GraphService svc(&data.db, {});
  ASSERT_TRUE(svc.Extract(data.datalog).ok());
  ASSERT_TRUE(svc.Extract(data.datalog).ok());  // cache hit

  service::ServiceStats stats = svc.Stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cold_extractions, 1u);

  uint64_t reg_requests = 0;
  int64_t reg_cache_graphs = -1;
  for (const obs::MetricValue& m : svc.MetricsSnapshot()) {
    if (m.name == "service.requests") reg_requests = m.counter;
    if (m.name == "service.cache_graphs") reg_cache_graphs = m.gauge;
  }
  EXPECT_EQ(reg_requests, stats.requests);
  EXPECT_EQ(reg_cache_graphs, static_cast<int64_t>(stats.cache_graphs));
}

}  // namespace
}  // namespace graphgen
