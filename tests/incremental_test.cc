// Incremental extraction suite: a graph patched forward from a captured
// basis by PatchExtraction must be bitwise identical (DiffExtraction with
// compare_scan_counts=false — only the delta rows are scanned) to a cold
// extraction against the post-append database, across key types, engines,
// pushdown modes, preprocessing, dangling-key promotion, and repeated
// patches. Non-append-safe situations must fall back softly.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "datalog/parser.h"
#include "gen/relational_generators.h"
#include "planner/extractor.h"
#include "planner/incremental.h"

namespace graphgen::planner {
namespace {

// A truncated copy of `full` plus the withheld tail rows per table.
struct SplitDb {
  rel::Database db;
  std::map<std::string, std::vector<rel::Row>> tail;
};

SplitDb Split(const rel::Database& full, double keep_fraction) {
  SplitDb out;
  for (const std::string& name : full.TableNames()) {
    auto tr = full.GetTable(name);
    EXPECT_TRUE(tr.ok());
    const rel::Table* t = *tr;
    const size_t keep =
        static_cast<size_t>(static_cast<double>(t->NumRows()) * keep_fraction);
    rel::Table copy(name, t->schema());
    for (size_t i = 0; i < keep; ++i) copy.AppendUnchecked(t->row(i));
    out.db.PutTable(std::move(copy));
    auto& tail = out.tail[name];
    for (size_t i = keep; i < t->NumRows(); ++i) tail.push_back(t->row(i));
  }
  return out;
}

// Appends the first `fraction` of every table's withheld tail, consuming
// those rows from the tail.
void AppendTail(rel::Database& db,
                std::map<std::string, std::vector<rel::Row>>& tail,
                double fraction) {
  for (auto& [name, rows] : tail) {
    const size_t n =
        static_cast<size_t>(static_cast<double>(rows.size()) * fraction);
    std::vector<rel::Row> batch(rows.begin(), rows.begin() + n);
    rows.erase(rows.begin(), rows.begin() + n);
    ASSERT_TRUE(db.AppendRows(name, batch).ok());
  }
}

dsl::Program MustParse(const std::string& datalog) {
  auto p = dsl::Parse(datalog);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return std::move(p).ValueOrDie();
}

// Captures on the truncated db, appends the withheld rows in `waves`
// batches patching after each, and checks every patched result against a
// cold extraction of the then-current database.
void ExpectPatchParity(const rel::Database& full_db, const std::string& datalog,
                       double keep_fraction, const ExtractOptions& opts,
                       const char* label, int waves = 1,
                       bool expect_cheaper = true) {
  SplitDb split = Split(full_db, keep_fraction);
  const dsl::Program program = MustParse(datalog);

  IncrementalState captured;
  auto base = ExtractWithCapture(split.db, program, opts, captured);
  ASSERT_TRUE(base.ok()) << label << ": " << base.status().ToString();

  // The capture run itself must match a plain extraction.
  auto plain = Extract(split.db, program, opts);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(DiffExtraction(*plain, *base), "") << label << " capture vs plain";

  auto state = std::make_shared<IncrementalState>(std::move(captured));
  for (int wave = 1; wave <= waves; ++wave) {
    AppendTail(split.db, split.tail, wave == waves ? 1.0 : 1.0 / (waves - wave + 1));
    auto attempt = PatchExtraction(split.db, *state, opts);
    ASSERT_TRUE(attempt.ok()) << label << ": " << attempt.status().ToString();
    ASSERT_TRUE(attempt->patched)
        << label << " wave " << wave << ": fell back: "
        << attempt->fallback_reason;
    auto fresh = Extract(split.db, program, opts);
    ASSERT_TRUE(fresh.ok());
    EXPECT_EQ(DiffExtraction(*fresh, attempt->result,
                             /*compare_scan_counts=*/false),
              "")
        << label << " wave " << wave;
    // A large delta (or one that promotes many dangling keys, forcing
    // full-range new-node passes) can legitimately scan more than a cold
    // run; callers only assert the saving for small appends.
    if (expect_cheaper) {
      EXPECT_LT(attempt->result.rows_scanned - state->rows_scanned,
                fresh->rows_scanned)
          << label << " wave " << wave << ": patch scanned as much as cold";
    }
    state = attempt->state;
  }
}

ExtractOptions BaseOptions() {
  ExtractOptions opts;
  opts.preprocess = false;
  opts.large_output_factor = 2.0;
  return opts;
}

TEST(IncrementalTest, DblpAppendParityAcrossConfigs) {
  gen::GeneratedDatabase d = gen::MakeDblpLike(300, 600, 4.0);
  for (double factor : {0.0, 2.0, 1e18}) {
    for (bool pushdown : {false, true}) {
      for (query::ExecEngine engine :
           {query::ExecEngine::kColumnar, query::ExecEngine::kRowAtATime}) {
        ExtractOptions opts = BaseOptions();
        opts.large_output_factor = factor;
        opts.semi_join_pushdown = pushdown;
        opts.engine = engine;
        const std::string label =
            "DBLP factor=" + std::to_string(factor) +
            " pushdown=" + std::to_string(pushdown) +
            " engine=" + std::to_string(static_cast<int>(engine));
        ExpectPatchParity(d.db, d.datalog, 0.9, opts, label.c_str());
      }
    }
  }
}

TEST(IncrementalTest, TpchMultiAtomChainParity) {
  gen::GeneratedDatabase d = gen::MakeTpchLike(60, 240, 20, 3.0);
  for (double factor : {0.0, 2.0, 1e18}) {
    ExtractOptions opts = BaseOptions();
    opts.large_output_factor = factor;
    const std::string label = "TPCH factor=" + std::to_string(factor);
    // At 1e18 the whole chain is one segment, so the 15% node-table delta
    // forces full-range new-node passes over all three atoms.
    ExpectPatchParity(d.db, d.datalog, 0.85, opts, label.c_str(), /*waves=*/1,
                      /*expect_cheaper=*/factor != 1e18);
  }
}

TEST(IncrementalTest, PreprocessedPatchKeepsParity) {
  gen::GeneratedDatabase d = gen::MakeDblpLike(250, 500, 4.0);
  ExtractOptions opts = BaseOptions();
  opts.preprocess = true;
  ExpectPatchParity(d.db, d.datalog, 0.9, opts, "DBLP preprocess");
}

TEST(IncrementalTest, RepeatedPatchesConverge) {
  gen::GeneratedDatabase d = gen::MakeDblpLike(300, 600, 4.0);
  ExpectPatchParity(d.db, d.datalog, 0.7, BaseOptions(), "DBLP waves",
                    /*waves=*/3);
}

TEST(IncrementalTest, UniversityHeterogeneousEdgeRules) {
  // Multiple Edges rules over disjoint tables; only Edges-rule tables and
  // never the node tables change here, so multi-Edges programs patch.
  gen::GeneratedDatabase d = gen::MakeUniversity(80, 10, 16, 3.0);
  const std::string program =
      "Nodes(ID, Name) :- Student(ID, Name).\n"
      "Edges(ID1, ID2) :- TookCourse(ID1, C), TookCourse(ID2, C).";
  ExpectPatchParity(d.db, program, 0.9, BaseOptions(), "UNIV");
}

TEST(IncrementalTest, StringKeysAndDanglingPromotion) {
  // String node keys; Follows references people past the truncation point,
  // so those rows are dangling in the basis and must be spliced in when
  // the missing People rows arrive (the new-node full-range passes).
  rel::Database db;
  rel::Table people("People", rel::Schema({{"id", rel::ValueType::kString},
                                           {"name", rel::ValueType::kString}}));
  for (int i = 0; i < 60; ++i) {
    const std::string id = "p" + std::to_string(i);
    people.AppendUnchecked({rel::Value(id), rel::Value("Person " + id)});
  }
  rel::Table follows("Follows", rel::Schema({{"who", rel::ValueType::kString},
                                             {"topic", rel::ValueType::kString}}));
  for (int i = 0; i < 400; ++i) {
    rel::Value who =
        i % 17 == 0 ? rel::Value() : rel::Value("p" + std::to_string(i % 75));
    follows.AppendUnchecked(
        {std::move(who), rel::Value("t" + std::to_string(i % 13))});
  }
  db.PutTable(std::move(people));
  db.PutTable(std::move(follows));
  const std::string datalog =
      "Nodes(ID, Name) :- People(ID, Name).\n"
      "Edges(ID1, ID2) :- Follows(ID1, T), Follows(ID2, T).";
  for (bool pushdown : {false, true}) {
    ExtractOptions opts = BaseOptions();
    opts.semi_join_pushdown = pushdown;
    for (double factor : {0.0, 2.0, 1e18}) {
      opts.large_output_factor = factor;
      // keep=0.5 truncates People at p29, so follows rows for p30..p59 are
      // dangling until the second half of People lands. Half the node set
      // arriving as delta makes the patch scan more than cold — fine; the
      // point here is correctness of dangling promotion, not savings.
      ExpectPatchParity(db, datalog, 0.5, opts, "StringDangling", /*waves=*/2,
                        /*expect_cheaper=*/false);
    }
  }
}

TEST(IncrementalTest, PropertyReplayIsLastWriterWins) {
  // The same key appears with different property values across the
  // append boundary: a fresh run's DISTINCT keeps both tuples and the
  // later property write wins; the patch must reproduce that exactly.
  rel::Database db;
  rel::Table authors("Author", rel::Schema({{"id", rel::ValueType::kInt64},
                                            {"name", rel::ValueType::kString}}));
  for (int i = 0; i < 20; ++i) {
    authors.AppendUnchecked(
        {rel::Value(int64_t{i}), rel::Value("old-" + std::to_string(i))});
  }
  rel::Table coauth("Co", rel::Schema({{"a", rel::ValueType::kInt64},
                                       {"p", rel::ValueType::kInt64}}));
  for (int i = 0; i < 60; ++i) {
    coauth.AppendUnchecked(
        {rel::Value(int64_t{i % 25}), rel::Value(int64_t{i % 7})});
  }
  db.PutTable(std::move(authors));
  db.PutTable(std::move(coauth));
  const std::string datalog =
      "Nodes(ID, Name) :- Author(ID, Name).\n"
      "Edges(ID1, ID2) :- Co(ID1, P), Co(ID2, P).";

  const dsl::Program program = MustParse(datalog);
  const ExtractOptions opts = BaseOptions();
  IncrementalState captured;
  ASSERT_TRUE(ExtractWithCapture(db, program, opts, captured).ok());

  std::vector<rel::Row> delta;
  for (int i = 10; i < 25; ++i) {  // 10..19 re-keyed with new names, 20..24 new
    delta.push_back(
        {rel::Value(int64_t{i}), rel::Value("new-" + std::to_string(i))});
  }
  // And one exact duplicate of a basis tuple — must be a no-op.
  delta.push_back({rel::Value(int64_t{3}), rel::Value("old-3")});
  ASSERT_TRUE(db.AppendRows("Author", delta).ok());

  auto attempt = PatchExtraction(db, captured, opts);
  ASSERT_TRUE(attempt.ok());
  ASSERT_TRUE(attempt->patched) << attempt->fallback_reason;
  auto fresh = Extract(db, program, opts);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(
      DiffExtraction(*fresh, attempt->result, /*compare_scan_counts=*/false),
      "");
}

TEST(IncrementalTest, NoChangePatchIsIdentity) {
  gen::GeneratedDatabase d = gen::MakeDblpLike(100, 200, 3.0);
  const dsl::Program program = MustParse(d.datalog);
  const ExtractOptions opts = BaseOptions();
  IncrementalState captured;
  auto base = ExtractWithCapture(d.db, program, opts, captured);
  ASSERT_TRUE(base.ok());
  auto attempt = PatchExtraction(d.db, captured, opts);
  ASSERT_TRUE(attempt.ok());
  ASSERT_TRUE(attempt->patched);
  EXPECT_EQ(DiffExtraction(*base, attempt->result), "");
}

TEST(IncrementalTest, MultiNodesRuleNodeDeltaFallsBack) {
  gen::GeneratedDatabase d = gen::MakeUniversity(60, 8, 12, 2.5);
  const std::string program =
      "Nodes(ID, Name) :- Student(ID, Name).\n"
      "Nodes(ID, Name) :- Instructor(ID, Name).\n"
      "Edges(ID1, ID2) :- TookCourse(ID1, C), TookCourse(ID2, C).";
  const ExtractOptions opts = BaseOptions();
  IncrementalState captured;
  ASSERT_TRUE(
      ExtractWithCapture(d.db, MustParse(program), opts, captured).ok());
  ASSERT_TRUE(d.db.AppendRows("Student", {{rel::Value(int64_t{100000}),
                                           rel::Value("new")}})
                  .ok());
  auto attempt = PatchExtraction(d.db, captured, opts);
  ASSERT_TRUE(attempt.ok());
  EXPECT_FALSE(attempt->patched);
  EXPECT_NE(attempt->fallback_reason.find("multiple Nodes rules"),
            std::string::npos)
      << attempt->fallback_reason;
}

TEST(IncrementalTest, CountConstraintRuleFallsBack) {
  gen::GeneratedDatabase d = gen::MakeDblpLike(150, 300, 5.0);
  const std::string program =
      "Nodes(ID, Name) :- Author(ID, Name).\n"
      "Edges(ID1, ID2) :- AuthorPub(ID1, P), AuthorPub(ID2, P), "
      "COUNT(P) >= 2.";
  const ExtractOptions opts = BaseOptions();
  IncrementalState captured;
  ASSERT_TRUE(
      ExtractWithCapture(d.db, MustParse(program), opts, captured).ok());
  ASSERT_TRUE(d.db.AppendRows("AuthorPub", {{rel::Value(int64_t{1}),
                                             rel::Value(int64_t{2})}})
                  .ok());
  auto attempt = PatchExtraction(d.db, captured, opts);
  ASSERT_TRUE(attempt.ok());
  EXPECT_FALSE(attempt->patched);
  EXPECT_NE(attempt->fallback_reason.find("COUNT"), std::string::npos)
      << attempt->fallback_reason;
}

TEST(IncrementalTest, RebasedTableFallsBack) {
  gen::GeneratedDatabase d = gen::MakeDblpLike(100, 200, 3.0);
  const ExtractOptions opts = BaseOptions();
  IncrementalState captured;
  ASSERT_TRUE(
      ExtractWithCapture(d.db, MustParse(d.datalog), opts, captured).ok());
  ASSERT_TRUE(d.db.GetMutableTable("AuthorPub").ok());  // stamps a rebase
  auto attempt = PatchExtraction(d.db, captured, opts);
  ASSERT_TRUE(attempt.ok());
  EXPECT_FALSE(attempt->patched);
  EXPECT_NE(attempt->fallback_reason.find("rebased"), std::string::npos)
      << attempt->fallback_reason;
}

TEST(IncrementalTest, DroppedTableFallsBack) {
  gen::GeneratedDatabase d = gen::MakeDblpLike(50, 100, 3.0);
  const ExtractOptions opts = BaseOptions();
  IncrementalState captured;
  ASSERT_TRUE(
      ExtractWithCapture(d.db, MustParse(d.datalog), opts, captured).ok());
  rel::Database other;  // same program, different database: all tables gone
  auto attempt = PatchExtraction(other, captured, opts);
  ASSERT_TRUE(attempt.ok());
  EXPECT_FALSE(attempt->patched);
}

TEST(IncrementalTest, StateMemoryBytesIsPositiveAndGrows) {
  gen::GeneratedDatabase d = gen::MakeDblpLike(200, 400, 4.0);
  SplitDb split = Split(d.db, 0.5);
  const dsl::Program program = MustParse(d.datalog);
  const ExtractOptions opts = BaseOptions();
  IncrementalState captured;
  ASSERT_TRUE(ExtractWithCapture(split.db, program, opts, captured).ok());
  const size_t before = captured.MemoryBytes();
  EXPECT_GT(before, 0u);
  AppendTail(split.db, split.tail, 1.0);
  auto attempt = PatchExtraction(split.db, captured, opts);
  ASSERT_TRUE(attempt.ok());
  ASSERT_TRUE(attempt->patched) << attempt->fallback_reason;
  EXPECT_GT(attempt->state->MemoryBytes(), before);
}

}  // namespace
}  // namespace graphgen::planner
