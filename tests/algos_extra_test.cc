#include <gtest/gtest.h>

#include "algos/clustering.h"
#include "algos/kcore.h"
#include "dedup/bitmap_algorithms.h"
#include "repr/cdup_graph.h"
#include "repr/expander.h"
#include "test_util.h"

namespace graphgen {
namespace {

using testing::AddMember;
using testing::MakeFigure1Graph;
using testing::MakeRandomSymmetric;

ExpandedGraph Clique(size_t n) {
  ExpandedGraph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u != v) {
        EXPECT_TRUE(g.AddEdge(u, v).ok());
      }
    }
  }
  return g;
}

TEST(KCoreTest, CliqueHasUniformCore) {
  ExpandedGraph g = Clique(6);
  std::vector<uint32_t> core = KCoreDecomposition(g);
  for (uint32_t c : core) EXPECT_EQ(c, 5u);
  EXPECT_EQ(Degeneracy(core), 5u);
}

TEST(KCoreTest, PathGraphIsOneCore) {
  ExpandedGraph g(5);
  for (NodeId u = 0; u + 1 < 5; ++u) {
    ASSERT_TRUE(g.AddEdge(u, u + 1).ok());
    ASSERT_TRUE(g.AddEdge(u + 1, u).ok());
  }
  std::vector<uint32_t> core = KCoreDecomposition(g);
  for (uint32_t c : core) EXPECT_EQ(c, 1u);
}

TEST(KCoreTest, CliqueWithPendant) {
  // 4-clique {0..3} plus pendant 4 attached to 0.
  ExpandedGraph g(5);
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = 0; v < 4; ++v) {
      if (u != v) {
        ASSERT_TRUE(g.AddEdge(u, v).ok());
      }
    }
  }
  ASSERT_TRUE(g.AddEdge(0, 4).ok());
  ASSERT_TRUE(g.AddEdge(4, 0).ok());
  std::vector<uint32_t> core = KCoreDecomposition(g);
  EXPECT_EQ(core[4], 1u);
  for (NodeId u = 0; u < 4; ++u) EXPECT_EQ(core[u], 3u);
}

TEST(KCoreTest, Figure1Cores) {
  CDupGraph g(MakeFigure1Graph());
  std::vector<uint32_t> core = KCoreDecomposition(g);
  // {a1,a2,a3,a4} form a 4-clique (3-core); a5 is a pendant.
  EXPECT_EQ(core[0], 3u);
  EXPECT_EQ(core[1], 3u);
  EXPECT_EQ(core[2], 3u);
  EXPECT_EQ(core[3], 3u);
  EXPECT_EQ(core[4], 1u);
}

TEST(KCoreTest, AgreesAcrossRepresentations) {
  CondensedStorage s = MakeRandomSymmetric(60, 20, 6, 17);
  CDupGraph cdup(s);
  ExpandedGraph exp = ExpandCondensed(s);
  auto bm = BuildBitmap2(s);
  ASSERT_TRUE(bm.ok());
  std::vector<uint32_t> a = KCoreDecomposition(cdup);
  EXPECT_EQ(a, KCoreDecomposition(exp));
  EXPECT_EQ(a, KCoreDecomposition(*bm));
}

TEST(ClusteringTest, CliqueIsFullyClustered) {
  ExpandedGraph g = Clique(5);
  std::vector<double> c = LocalClusteringCoefficients(g);
  for (double x : c) EXPECT_DOUBLE_EQ(x, 1.0);
  EXPECT_DOUBLE_EQ(AverageClusteringCoefficient(g), 1.0);
}

TEST(ClusteringTest, StarHasZeroClustering) {
  ExpandedGraph g(5);
  for (NodeId leaf = 1; leaf < 5; ++leaf) {
    ASSERT_TRUE(g.AddEdge(0, leaf).ok());
    ASSERT_TRUE(g.AddEdge(leaf, 0).ok());
  }
  std::vector<double> c = LocalClusteringCoefficients(g);
  EXPECT_DOUBLE_EQ(c[0], 0.0);
  EXPECT_DOUBLE_EQ(AverageClusteringCoefficient(g), 0.0);
}

TEST(ClusteringTest, TriangleWithTail) {
  // Triangle {0,1,2} plus 3 attached to 2: c(0)=c(1)=1, c(2)=1/3.
  ExpandedGraph g(4);
  auto bi = [&](NodeId a, NodeId b) {
    ASSERT_TRUE(g.AddEdge(a, b).ok());
    ASSERT_TRUE(g.AddEdge(b, a).ok());
  };
  bi(0, 1);
  bi(1, 2);
  bi(0, 2);
  bi(2, 3);
  std::vector<double> c = LocalClusteringCoefficients(g);
  EXPECT_DOUBLE_EQ(c[0], 1.0);
  EXPECT_DOUBLE_EQ(c[1], 1.0);
  EXPECT_NEAR(c[2], 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(c[3], 0.0);
}

TEST(ClusteringTest, CoOccurrenceGraphsAreHighlyClustered) {
  // Clique-union graphs should have average clustering near 1 — a sanity
  // property of the condensed model (cliques come from virtual nodes).
  CondensedStorage s = MakeRandomSymmetric(80, 10, 8, 23);
  CDupGraph g(s);
  EXPECT_GT(AverageClusteringCoefficient(g), 0.5);
}

TEST(ClusteringTest, AgreesAcrossRepresentations) {
  CondensedStorage s = MakeRandomSymmetric(50, 15, 5, 29);
  CDupGraph cdup(s);
  ExpandedGraph exp = ExpandCondensed(s);
  std::vector<double> a = LocalClusteringCoefficients(cdup);
  std::vector<double> b = LocalClusteringCoefficients(exp);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-12);
}

}  // namespace
}  // namespace graphgen
