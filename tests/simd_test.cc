// SIMD kernel parity: every vector kernel in common/simd.h must produce
// byte-identical output to the scalar tier on arbitrary inputs. The
// tests drive both tiers explicitly (Tier::kScalar vs Tier::kAvx2 — on
// machines without AVX2 the second run degrades to scalar and the
// comparison is trivially green) and additionally check both against an
// independent straight-line reference, so a shared bug in the dispatch
// wrappers cannot hide. Inputs sweep predicate ops, NULL densities,
// dictionary cardinalities, unaligned base pointers, and short tails —
// every length from 0 through a few vector widths plus spill.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "common/simd.h"

namespace graphgen::simd {
namespace {

constexpr int64_t kI64Min = std::numeric_limits<int64_t>::min();
constexpr int64_t kI64Max = std::numeric_limits<int64_t>::max();

// Lengths that cover empty, sub-vector, exact-vector, and vector+tail.
const size_t kLengths[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 40};
// Misalignment of the base pointers relative to the allocation.
const size_t kOffsets[] = {0, 1, 3};
const double kNullRates[] = {0.0, 0.1, 0.5, 1.0};

// The tier to exercise the vector kernels with. Passing kAvx2 into a
// kernel runs the AVX2 body unconditionally, so on hardware without it
// the "vector" leg must degrade to scalar (making the comparison
// trivially green there — CI's scalar-only matrix leg covers that
// build, and AVX2 machines cover the interesting one).
Tier VecTier() { return Avx2Available() ? Tier::kAvx2 : Tier::kScalar; }

std::vector<uint8_t> RandomKeep(Rng& rng, size_t n, size_t pad) {
  std::vector<uint8_t> keep(n + pad);
  for (auto& k : keep) k = static_cast<uint8_t>(rng.NextBounded(2));
  return keep;
}

std::vector<uint8_t> RandomNulls(Rng& rng, size_t n, size_t pad, double rate) {
  std::vector<uint8_t> nulls(n + pad, 0);
  for (auto& v : nulls) v = static_cast<uint8_t>(rng.NextBool(rate));
  return nulls;
}

// Values concentrated around the bound so compares flip frequently, with
// the extremes mixed in.
int64_t InterestingI64(Rng& rng, int64_t center) {
  switch (rng.NextBounded(8)) {
    case 0:
      return kI64Min;
    case 1:
      return kI64Max;
    case 2:
      return center;
    default:
      return center + rng.NextInt(-4, 4);
  }
}

double InterestingF64(Rng& rng, double center) {
  switch (rng.NextBounded(10)) {
    case 0:
      return std::numeric_limits<double>::quiet_NaN();
    case 1:
      return std::numeric_limits<double>::infinity();
    case 2:
      return -std::numeric_limits<double>::infinity();
    case 3:
      return 0.0;
    case 4:
      return -0.0;
    case 5:
      return center;
    default:
      return center + static_cast<double>(rng.NextInt(-4, 4)) * 0.5;
  }
}

TEST(SimdDispatchTest, TestingPinOverridesAndResets) {
  SetTierForTesting(Tier::kScalar);
  EXPECT_EQ(ActiveTier(), Tier::kScalar);
  EXPECT_STREQ(TierName(), "scalar");
  SetTierForTesting(Tier::kAvx2);
  if (Avx2Available()) {
    EXPECT_EQ(ActiveTier(), Tier::kAvx2);
    EXPECT_STREQ(TierName(), "avx2");
  } else {
    EXPECT_EQ(ActiveTier(), Tier::kScalar);
  }
  ResetTierForTesting();
  EXPECT_NE(TierDescription(), nullptr);
}

TEST(SimdThresholdTest, MaxInt64WithDoubleLess) {
  EXPECT_FALSE(MaxInt64WithDoubleLess(std::nan("")).has_value());
  EXPECT_FALSE(MaxInt64WithDoubleLess(-1e300).has_value());
  EXPECT_FALSE(
      MaxInt64WithDoubleLess(static_cast<double>(kI64Min)).has_value());
  EXPECT_EQ(MaxInt64WithDoubleLess(1e300), kI64Max);
  EXPECT_EQ(MaxInt64WithDoubleLess(0.5), 0);
  EXPECT_EQ(MaxInt64WithDoubleLess(0.0), -1);
  EXPECT_EQ(MaxInt64WithDoubleLess(-0.5), -1);
  Rng rng(0xbeef);
  for (int trial = 0; trial < 2000; ++trial) {
    // Magnitudes across all scales: a signed sample arithmetic-shifted
    // by a random amount (C++20 defines signed >> as arithmetic).
    double b;
    if (trial % 3 == 0) {
      b = static_cast<double>(static_cast<int64_t>(rng.Next()) >>
                              rng.NextBounded(63));
    } else {
      b = static_cast<double>(static_cast<int64_t>(rng.Next())) *
          rng.NextDouble();
    }
    const auto x = MaxInt64WithDoubleLess(b);
    if (!x.has_value()) {
      EXPECT_FALSE(static_cast<double>(kI64Min) < b) << "bound " << b;
      continue;
    }
    EXPECT_LT(static_cast<double>(*x), b) << "bound " << b;
    if (*x < kI64Max) {
      EXPECT_FALSE(static_cast<double>(*x + 1) < b) << "bound " << b;
    }
  }
}

TEST(SimdThresholdTest, MinInt64WithDoubleGreater) {
  EXPECT_FALSE(MinInt64WithDoubleGreater(std::nan("")).has_value());
  EXPECT_FALSE(MinInt64WithDoubleGreater(1e300).has_value());
  EXPECT_EQ(MinInt64WithDoubleGreater(-1e300), kI64Min);
  EXPECT_EQ(MinInt64WithDoubleGreater(0.5), 1);
  EXPECT_EQ(MinInt64WithDoubleGreater(0.0), 1);
  EXPECT_EQ(MinInt64WithDoubleGreater(-0.5), 0);
  Rng rng(0xf00d);
  for (int trial = 0; trial < 2000; ++trial) {
    // Magnitudes across all scales: a signed sample arithmetic-shifted
    // by a random amount (C++20 defines signed >> as arithmetic).
    double b;
    if (trial % 3 == 0) {
      b = static_cast<double>(static_cast<int64_t>(rng.Next()) >>
                              rng.NextBounded(63));
    } else {
      b = static_cast<double>(static_cast<int64_t>(rng.Next())) *
          rng.NextDouble();
    }
    const auto x = MinInt64WithDoubleGreater(b);
    if (!x.has_value()) {
      EXPECT_FALSE(static_cast<double>(kI64Max) > b) << "bound " << b;
      continue;
    }
    EXPECT_GT(static_cast<double>(*x), b) << "bound " << b;
    if (*x > kI64Min) {
      EXPECT_FALSE(static_cast<double>(*x - 1) > b) << "bound " << b;
    }
  }
}

TEST(SimdMaskTest, AndMaskI64ParityAcrossTiers) {
  Rng rng(1);
  const I64MaskOp ops[] = {I64MaskOp::kLe,     I64MaskOp::kGe,
                           I64MaskOp::kEq,     I64MaskOp::kNe,
                           I64MaskOp::kLeOrEq, I64MaskOp::kGeOrEq};
  for (const I64MaskOp op : ops) {
    for (const double null_rate : kNullRates) {
      for (const size_t n : kLengths) {
        for (const size_t off : kOffsets) {
          const int64_t bound = rng.NextInt(-100, 100);
          const int64_t eq = rng.NextInt(-100, 100);
          std::vector<int64_t> data(n + off);
          for (auto& d : data) d = InterestingI64(rng, bound);
          const bool use_nulls = null_rate > 0.0 || rng.NextBool(0.5);
          std::vector<uint8_t> nulls = RandomNulls(rng, n, off, null_rate);
          const bool null_match = rng.NextBool(0.5);
          std::vector<uint8_t> keep = RandomKeep(rng, n, off);
          std::vector<uint8_t> keep_scalar = keep;
          std::vector<uint8_t> keep_vec = keep;

          // Independent reference.
          std::vector<uint8_t> want = keep;
          for (size_t i = 0; i < n; ++i) {
            const int64_t x = data[off + i];
            uint8_t v = 0;
            switch (op) {
              case I64MaskOp::kLe:
                v = x <= bound;
                break;
              case I64MaskOp::kGe:
                v = x >= bound;
                break;
              case I64MaskOp::kEq:
                v = x == eq;
                break;
              case I64MaskOp::kNe:
                v = x != eq;
                break;
              case I64MaskOp::kLeOrEq:
                v = x <= bound || x == eq;
                break;
              case I64MaskOp::kGeOrEq:
                v = x >= bound || x == eq;
                break;
            }
            if (use_nulls && nulls[off + i] != 0) v = null_match ? 1 : 0;
            want[off + i] &= v;
          }

          const uint8_t* np = use_nulls ? nulls.data() + off : nullptr;
          AndMaskI64(Tier::kScalar, op, data.data() + off, bound, eq, np,
                     null_match, keep_scalar.data() + off, n);
          AndMaskI64(VecTier(), op, data.data() + off, bound, eq, np,
                     null_match, keep_vec.data() + off, n);
          ASSERT_EQ(keep_scalar, want)
              << "op=" << static_cast<int>(op) << " n=" << n << " off=" << off;
          ASSERT_EQ(keep_vec, keep_scalar)
              << "op=" << static_cast<int>(op) << " n=" << n << " off=" << off;
        }
      }
    }
  }
}

TEST(SimdMaskTest, AndMaskF64ParityAcrossTiers) {
  Rng rng(2);
  const F64MaskOp ops[] = {F64MaskOp::kLt, F64MaskOp::kLe, F64MaskOp::kGt,
                           F64MaskOp::kGe, F64MaskOp::kEq, F64MaskOp::kNe};
  for (const F64MaskOp op : ops) {
    for (const double null_rate : kNullRates) {
      for (const size_t n : kLengths) {
        for (const size_t off : kOffsets) {
          double bound = static_cast<double>(rng.NextInt(-50, 50)) * 0.5;
          if (rng.NextBool(0.05)) bound = std::nan("");
          std::vector<double> data(n + off);
          for (auto& d : data) d = InterestingF64(rng, bound);
          const bool use_nulls = null_rate > 0.0 || rng.NextBool(0.5);
          std::vector<uint8_t> nulls = RandomNulls(rng, n, off, null_rate);
          const bool null_match = rng.NextBool(0.5);
          std::vector<uint8_t> keep = RandomKeep(rng, n, off);
          std::vector<uint8_t> keep_scalar = keep;
          std::vector<uint8_t> keep_vec = keep;

          std::vector<uint8_t> want = keep;
          for (size_t i = 0; i < n; ++i) {
            const double x = data[off + i];
            uint8_t v = 0;
            switch (op) {
              case F64MaskOp::kLt:
                v = x < bound;
                break;
              case F64MaskOp::kLe:
                v = x <= bound;
                break;
              case F64MaskOp::kGt:
                v = x > bound;
                break;
              case F64MaskOp::kGe:
                v = x >= bound;
                break;
              case F64MaskOp::kEq:
                v = x == bound;
                break;
              case F64MaskOp::kNe:
                v = !(x == bound);
                break;
            }
            if (use_nulls && nulls[off + i] != 0) v = null_match ? 1 : 0;
            want[off + i] &= v;
          }

          const uint8_t* np = use_nulls ? nulls.data() + off : nullptr;
          AndMaskF64(Tier::kScalar, op, data.data() + off, bound, np,
                     null_match, keep_scalar.data() + off, n);
          AndMaskF64(VecTier(), op, data.data() + off, bound, np, null_match,
                     keep_vec.data() + off, n);
          ASSERT_EQ(keep_scalar, want)
              << "op=" << static_cast<int>(op) << " n=" << n << " off=" << off;
          ASSERT_EQ(keep_vec, keep_scalar)
              << "op=" << static_cast<int>(op) << " n=" << n << " off=" << off;
        }
      }
    }
  }
}

TEST(SimdMaskTest, AndMaskCodesParityAcrossCardinalities) {
  Rng rng(3);
  const size_t cardinalities[] = {1, 2, 17, 300, 70000};
  for (const size_t card : cardinalities) {
    std::vector<uint32_t> table(card);
    for (auto& t : table) t = static_cast<uint32_t>(rng.NextBool(0.4));
    for (const double null_rate : kNullRates) {
      for (const size_t n : kLengths) {
        for (const size_t off : kOffsets) {
          std::vector<uint32_t> codes(n + off);
          for (auto& c : codes) {
            c = static_cast<uint32_t>(rng.NextBounded(card));
          }
          const bool use_nulls = null_rate > 0.0 || rng.NextBool(0.5);
          std::vector<uint8_t> nulls = RandomNulls(rng, n, off, null_rate);
          const bool null_match = rng.NextBool(0.5);
          std::vector<uint8_t> keep = RandomKeep(rng, n, off);
          std::vector<uint8_t> keep_scalar = keep;
          std::vector<uint8_t> keep_vec = keep;

          std::vector<uint8_t> want = keep;
          for (size_t i = 0; i < n; ++i) {
            uint8_t v = table[codes[off + i]] != 0;
            if (use_nulls && nulls[off + i] != 0) v = null_match ? 1 : 0;
            want[off + i] &= v;
          }

          const uint8_t* np = use_nulls ? nulls.data() + off : nullptr;
          AndMaskCodes(Tier::kScalar, codes.data() + off, table.data(), np,
                       null_match, keep_scalar.data() + off, n);
          AndMaskCodes(VecTier(), codes.data() + off, table.data(), np,
                       null_match, keep_vec.data() + off, n);
          ASSERT_EQ(keep_scalar, want) << "card=" << card << " n=" << n;
          ASSERT_EQ(keep_vec, keep_scalar) << "card=" << card << " n=" << n;
        }
      }
    }
  }
}

TEST(SimdTranslateTest, TranslateCodesParity) {
  Rng rng(4);
  const size_t strides[] = {1, 2, 3, 5};
  const size_t cardinalities[] = {1, 9, 1000};
  for (const size_t stride : strides) {
    for (const size_t card : cardinalities) {
      for (const bool with_nulls : {false, true}) {
        for (const size_t n : kLengths) {
          const size_t slot = rng.NextBounded(stride);
          const size_t max_row = 10 + rng.NextBounded(500);
          std::vector<uint32_t> tuples(n * stride);
          for (auto& t : tuples) {
            t = static_cast<uint32_t>(rng.NextBounded(max_row));
          }
          std::vector<uint32_t> codes(max_row);
          for (auto& c : codes) {
            c = static_cast<uint32_t>(rng.NextBounded(card));
          }
          std::vector<uint8_t> nulls(max_row);
          for (auto& v : nulls) v = static_cast<uint8_t>(rng.NextBool(0.2));
          std::vector<int32_t> trans(card);
          for (size_t c = 0; c < card; ++c) {
            trans[c] = rng.NextBool(0.3)
                           ? -1
                           : static_cast<int32_t>(rng.NextBounded(card));
          }

          std::vector<int32_t> want(n);
          for (size_t i = 0; i < n; ++i) {
            const uint32_t id = tuples[i * stride + slot];
            want[i] = (with_nulls && nulls[id] != 0) ? -1 : trans[codes[id]];
          }

          const uint8_t* np = with_nulls ? nulls.data() : nullptr;
          std::vector<int32_t> out_scalar(n, 42);
          std::vector<int32_t> out_vec(n, 43);
          const bool vs = TranslateCodes(Tier::kScalar, tuples.data(), stride,
                                         slot, codes.data(), trans.data(), np,
                                         max_row, out_scalar.data(), n);
          EXPECT_FALSE(vs);
          const bool vv = TranslateCodes(VecTier(), tuples.data(), stride,
                                         slot, codes.data(), trans.data(), np,
                                         max_row, out_vec.data(), n);
          // The vector path must refuse NULL-masked inputs (it cannot see
          // the mask); without nulls it may or may not run depending on
          // the build/CPU, but the answer never changes.
          if (with_nulls) {
            EXPECT_FALSE(vv);
          }
          ASSERT_EQ(out_scalar, want)
              << "stride=" << stride << " card=" << card << " n=" << n;
          ASSERT_EQ(out_vec, out_scalar)
              << "stride=" << stride << " card=" << card << " n=" << n;
        }
      }
    }
  }
}

TEST(SimdTranslateTest, TranslateCodesRefusesOversizedIndices) {
  // max_row beyond INT32_MAX must force the scalar path (gather lanes are
  // signed 32-bit). The data itself stays tiny.
  std::vector<uint32_t> tuples = {0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<uint32_t> codes(8, 0);
  std::vector<int32_t> trans = {7};
  std::vector<int32_t> out(8);
  const bool vec = TranslateCodes(
      VecTier(), tuples.data(), 1, 0, codes.data(), trans.data(),
      /*nulls=*/nullptr, static_cast<size_t>(INT32_MAX) + 1, out.data(), 8);
  EXPECT_FALSE(vec);
  for (int32_t v : out) EXPECT_EQ(v, 7);
}

TEST(SimdTagTest, TagHelpersMatchScalarDefinition) {
  Rng rng(5);
  for (int trial = 0; trial < 500; ++trial) {
    uint8_t tags[kTagGroupWidth];
    for (auto& t : tags) {
      t = rng.NextBool(0.3) ? kTagEmpty
                            : static_cast<uint8_t>(rng.NextBounded(128));
    }
    const uint8_t needle = rng.NextBool(0.5)
                               ? tags[rng.NextBounded(kTagGroupWidth)]
                               : static_cast<uint8_t>(rng.NextBounded(128));
    uint32_t want_match = 0;
    uint32_t want_empty = 0;
    for (size_t i = 0; i < kTagGroupWidth; ++i) {
      want_match |= static_cast<uint32_t>(tags[i] == needle) << i;
      want_empty |= static_cast<uint32_t>(tags[i] == kTagEmpty) << i;
    }
    EXPECT_EQ(TagMatch16(tags, needle), want_match);
    EXPECT_EQ(TagEmpty16(tags), want_empty);
  }
  // Hash tags never collide with the empty marker.
  for (int trial = 0; trial < 1000; ++trial) {
    EXPECT_LT(TagOfHash(rng.Next()), 128);
  }
}

}  // namespace
}  // namespace graphgen::simd
