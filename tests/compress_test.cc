#include <gtest/gtest.h>

#include "compress/vminer.h"
#include "repr/cdup_graph.h"
#include "repr/expander.h"
#include "test_util.h"

namespace graphgen {
namespace {

using testing::MakeRandomSymmetric;

TEST(VMinerTest, LosslessOnRandomGraph) {
  CondensedStorage s = MakeRandomSymmetric(60, 15, 8, 3);
  ExpandedGraph exp = ExpandCondensed(s);
  VMinerResult result = VMinerCompress(exp);
  EXPECT_EQ(result.storage.ExpandedEdgeSet(), exp.ExpandedEdgeSet());
}

TEST(VMinerTest, CompressesPlantedBicliques) {
  // Plant two large bicliques: A = {0..9} -> B = {10..19} and
  // C = {20..29} -> D = {30..39}.
  ExpandedGraph g(40);
  for (NodeId a = 0; a < 10; ++a) {
    for (NodeId b = 10; b < 20; ++b) ASSERT_TRUE(g.AddEdge(a, b).ok());
  }
  for (NodeId c = 20; c < 30; ++c) {
    for (NodeId d = 30; d < 40; ++d) ASSERT_TRUE(g.AddEdge(c, d).ok());
  }
  VMinerResult result = VMinerCompress(g);
  EXPECT_EQ(result.storage.ExpandedEdgeSet(), g.ExpandedEdgeSet());
  EXPECT_GE(result.bicliques_found, 2u);
  EXPECT_LT(result.edges_after, result.edges_before);
  // 200 direct edges should shrink to roughly 2 * (10 + 10).
  EXPECT_LT(result.edges_after, 80u);
}

TEST(VMinerTest, ResultIsDuplicateFree) {
  CondensedStorage s = MakeRandomSymmetric(50, 10, 10, 5);
  ExpandedGraph exp = ExpandCondensed(s);
  VMinerResult result = VMinerCompress(exp);
  CDupGraph as_graph(std::move(result.storage));
  EXPECT_TRUE(testing::IsDuplicateFree(as_graph));
  // Stronger: zero duplicate paths in the storage itself.
  EXPECT_EQ(as_graph.storage().CountDuplicatePairs(), 0u);
}

TEST(VMinerTest, NoCompressionOnSparseGraph) {
  // A long path has no bicliques worth replacing.
  ExpandedGraph g(20);
  for (NodeId u = 0; u + 1 < 20; ++u) ASSERT_TRUE(g.AddEdge(u, u + 1).ok());
  VMinerResult result = VMinerCompress(g);
  EXPECT_EQ(result.bicliques_found, 0u);
  EXPECT_EQ(result.edges_after, result.edges_before);
}

TEST(VMinerTest, WorseThanExtractionTimeCondensation) {
  // The paper's Fig. 10 claim: mining bicliques from the expanded graph
  // recovers less structure than never expanding at all. C-DUP stores the
  // generator's cliques directly; VMiner must rediscover them.
  CondensedStorage s = MakeRandomSymmetric(80, 8, 25, 7);
  ExpandedGraph exp = ExpandCondensed(s);
  VMinerResult result = VMinerCompress(exp);
  EXPECT_EQ(result.storage.ExpandedEdgeSet(), exp.ExpandedEdgeSet());
  EXPECT_GE(result.edges_after, s.CountCondensedEdges() / 2);
}

TEST(VMinerTest, RespectsDeletedVertices) {
  CondensedStorage s = MakeRandomSymmetric(40, 8, 8, 9);
  s.DeleteRealNode(0);
  ExpandedGraph exp = ExpandCondensed(s);
  VMinerResult result = VMinerCompress(exp);
  CDupGraph as_graph(std::move(result.storage));
  EXPECT_FALSE(as_graph.VertexExists(0));
  EXPECT_EQ(as_graph.ExpandedEdgeSet(), exp.ExpandedEdgeSet());
}

}  // namespace
}  // namespace graphgen
