#include <gtest/gtest.h>

#include "relational/database.h"

namespace graphgen::rel {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value().type(), ValueType::kNull);
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(int64_t{7}).type(), ValueType::kInt64);
  EXPECT_EQ(Value(int64_t{7}).AsInt64(), 7);
  EXPECT_EQ(Value(2.5).type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value("abc").type(), ValueType::kString);
  EXPECT_EQ(Value("abc").AsString(), "abc");
}

TEST(ValueTest, IntPromotesToDouble) {
  EXPECT_DOUBLE_EQ(Value(int64_t{3}).AsDouble(), 3.0);
}

TEST(ValueTest, Equality) {
  EXPECT_EQ(Value(int64_t{1}), Value(int64_t{1}));
  EXPECT_NE(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_NE(Value(int64_t{1}), Value(1.0));  // different types
  EXPECT_EQ(Value("x"), Value("x"));
  EXPECT_EQ(Value(), Value());
}

TEST(ValueTest, OrderingAcrossNumericTypes) {
  EXPECT_TRUE(Value(int64_t{1}) < Value(2.5));
  EXPECT_TRUE(Value(2.5) < Value(int64_t{3}));
  EXPECT_FALSE(Value(int64_t{3}) < Value(int64_t{3}));
  EXPECT_TRUE(Value("a") < Value("b"));
}

TEST(ValueTest, ToStringQuotesStrings) {
  EXPECT_EQ(Value(int64_t{42}).ToString(), "42");
  EXPECT_EQ(Value("hi").ToString(), "'hi'");
  EXPECT_EQ(Value().ToString(), "NULL");
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value(int64_t{5}).Hash(), Value(int64_t{5}).Hash());
  EXPECT_EQ(Value("k").Hash(), Value("k").Hash());
}

TEST(SchemaTest, IndexOf) {
  Schema s({{"id", ValueType::kInt64}, {"name", ValueType::kString}});
  EXPECT_EQ(s.NumColumns(), 2u);
  EXPECT_EQ(s.IndexOf("name").value(), 1u);
  EXPECT_FALSE(s.IndexOf("missing").has_value());
}

TEST(SchemaTest, ToString) {
  Schema s({{"id", ValueType::kInt64}});
  EXPECT_EQ(s.ToString(), "id BIGINT");
}

TEST(TableTest, AppendChecksArity) {
  Table t("T", Schema({{"a", ValueType::kInt64}, {"b", ValueType::kInt64}}));
  EXPECT_TRUE(t.Append({Value(int64_t{1}), Value(int64_t{2})}).ok());
  Status bad = t.Append({Value(int64_t{1})});
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(t.NumRows(), 1u);
}

TEST(TableTest, Int64ColumnFastPath) {
  Table t("T", Schema({{"a", ValueType::kInt64}}));
  t.AppendUnchecked({Value(int64_t{3})});
  t.AppendUnchecked({Value(int64_t{9})});
  auto col = t.Int64Column(0);
  ASSERT_TRUE(col.ok());
  EXPECT_EQ(*col, (std::vector<int64_t>{3, 9}));
}

TEST(TableTest, Int64ColumnRejectsStrings) {
  Table t("T", Schema({{"a", ValueType::kString}}));
  t.AppendUnchecked({Value("x")});
  EXPECT_FALSE(t.Int64Column(0).ok());
}

TEST(TableTest, CountDistinct) {
  Table t("T", Schema({{"a", ValueType::kInt64}}));
  for (int64_t v : {1, 2, 2, 3, 3, 3}) t.AppendUnchecked({Value(v)});
  EXPECT_EQ(t.CountDistinct(0), 3u);
}

TEST(CatalogTest, AnalyzeComputesStats) {
  Table t("T", Schema({{"a", ValueType::kInt64}, {"b", ValueType::kInt64}}));
  for (int64_t v : {1, 1, 2, 2, 2}) {
    t.AppendUnchecked({Value(v), Value(int64_t{7})});
  }
  Catalog c;
  c.Analyze(t);
  auto stats = c.GetStats("T");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->row_count, 5u);
  EXPECT_EQ(stats->columns[0].n_distinct, 2u);
  EXPECT_EQ(stats->columns[1].n_distinct, 1u);
  EXPECT_EQ(c.DistinctCount("T", 0).ValueOrDie(), 2u);
}

TEST(CatalogTest, MissingTableIsNotFound) {
  Catalog c;
  EXPECT_EQ(c.GetStats("nope").status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(c.HasStats("nope"));
}

TEST(DatabaseTest, CreateAndGet) {
  Database db;
  auto t = db.CreateTable("T", Schema({{"a", ValueType::kInt64}}));
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(db.HasTable("T"));
  EXPECT_EQ(db.CreateTable("T", Schema()).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(db.GetTable("missing").status().code(), StatusCode::kNotFound);
}

TEST(DatabaseTest, PutTableAnalyzesAutomatically) {
  Database db;
  Table t("T", Schema({{"a", ValueType::kInt64}}));
  t.AppendUnchecked({Value(int64_t{1})});
  t.AppendUnchecked({Value(int64_t{1})});
  db.PutTable(std::move(t));
  EXPECT_EQ(db.catalog().DistinctCount("T", 0).ValueOrDie(), 1u);
}

TEST(DatabaseTest, TableNamesSorted) {
  Database db;
  db.PutTable(Table("B", Schema()));
  db.PutTable(Table("A", Schema()));
  EXPECT_EQ(db.TableNames(), (std::vector<std::string>{"A", "B"}));
}

TEST(DatabaseTest, MemoryBytesGrowsWithData) {
  Database db;
  Table t("T", Schema({{"a", ValueType::kInt64}}));
  for (int64_t i = 0; i < 1000; ++i) t.AppendUnchecked({Value(i)});
  db.PutTable(std::move(t));
  // Typed columnar storage: 1000 int64 cells cost at least their raw
  // array (the old row-of-variants layout needed ~5x that).
  EXPECT_GT(db.MemoryBytes(), 1000u * sizeof(int64_t));
  EXPECT_LT(db.MemoryBytes(), 4u * 1000u * sizeof(int64_t));
}

}  // namespace
}  // namespace graphgen::rel
