#include <gtest/gtest.h>

#include "common/bitmap.h"
#include "common/memory.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/timer.h"

namespace graphgen {
namespace {

double benchmark_sink_ = 0;  // defeats optimization in TimerTest

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "Parse error: bad token");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::PlanError("x").code(), StatusCode::kPlanError);
  EXPECT_EQ(Status::ExecutionError("x").code(), StatusCode::kExecutionError);
  EXPECT_EQ(Status::Unsupported("x").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string s = std::move(r).ValueOrDie();
  EXPECT_EQ(s, "hello");
}

TEST(BitmapTest, StartsZeroed) {
  Bitmap bm(100);
  EXPECT_EQ(bm.size(), 100u);
  EXPECT_TRUE(bm.AllZero());
  EXPECT_EQ(bm.CountSet(), 0u);
}

TEST(BitmapTest, SetAndGet) {
  Bitmap bm(70);
  bm.Set(0);
  bm.Set(63);
  bm.Set(64);
  bm.Set(69);
  EXPECT_TRUE(bm.Get(0));
  EXPECT_TRUE(bm.Get(63));
  EXPECT_TRUE(bm.Get(64));
  EXPECT_TRUE(bm.Get(69));
  EXPECT_FALSE(bm.Get(1));
  EXPECT_EQ(bm.CountSet(), 4u);
}

TEST(BitmapTest, InitialOnesRespectsSize) {
  Bitmap bm(70, true);
  EXPECT_TRUE(bm.AllOne());
  EXPECT_EQ(bm.CountSet(), 70u);
}

TEST(BitmapTest, ClearAndAssign) {
  Bitmap bm(10, true);
  bm.Clear(3);
  EXPECT_FALSE(bm.Get(3));
  bm.Assign(3, true);
  EXPECT_TRUE(bm.Get(3));
  bm.Assign(3, false);
  EXPECT_FALSE(bm.Get(3));
}

TEST(BitmapTest, FillAndResize) {
  Bitmap bm(65);
  bm.Fill(true);
  EXPECT_EQ(bm.CountSet(), 65u);
  bm.Resize(130);
  EXPECT_EQ(bm.CountSet(), 65u);
  EXPECT_FALSE(bm.Get(100));
}

TEST(BitmapTest, EqualityComparesContent) {
  Bitmap a(64);
  Bitmap b(64);
  EXPECT_EQ(a, b);
  a.Set(5);
  EXPECT_FALSE(a == b);
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextIntInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalRoughMoments) {
  Rng rng(11);
  double sum = 0;
  double sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextNormal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, ZipfSkewsLow) {
  Rng rng(13);
  size_t low = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    uint64_t v = rng.NextZipf(1000, 1.1);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 1000u);
    if (v <= 10) ++low;
  }
  // Zipf concentrates mass on small values.
  EXPECT_GT(low, n / 4);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(ParallelTest, CoversAllIndices) {
  std::vector<std::atomic<int>> hits(10000);
  for (auto& h : hits) h.store(0);
  ParallelFor(hits.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelTest, SmallInputRunsInline) {
  int calls = 0;
  ParallelFor(10, [&](size_t begin, size_t end) {
    ++calls;
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 10u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelTest, InvokeRunsEachThread) {
  std::vector<std::atomic<int>> hits(4);
  for (auto& h : hits) h.store(0);
  ParallelInvoke(4, [&](size_t t) { hits[t].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelTest, BalancedRangesCoverEverything) {
  // Heavily skewed weights: index 0 owns almost all the mass.
  const size_t n = 5000;
  auto weight = [](size_t i) { return i == 0 ? uint64_t{1} << 20 : 1; };
  std::vector<IndexRange> ranges = BalancedRanges(n, weight, 4);
  ASSERT_FALSE(ranges.empty());
  EXPECT_EQ(ranges.front().begin, 0u);
  EXPECT_EQ(ranges.back().end, n);
  for (size_t i = 1; i < ranges.size(); ++i) {
    EXPECT_EQ(ranges[i].begin, ranges[i - 1].end);  // contiguous, disjoint
  }
  // The hub must not drag half the uniform tail into its range.
  EXPECT_LE(ranges.front().end, 2u);
}

TEST(ParallelTest, BalancedRangesCollapseWhenLight) {
  std::vector<IndexRange> ranges =
      BalancedRanges(100, [](size_t) { return uint64_t{1}; }, 8);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].begin, 0u);
  EXPECT_EQ(ranges[0].end, 100u);
  EXPECT_TRUE(BalancedRanges(0, [](size_t) { return uint64_t{1}; }).empty());
}

TEST(ParallelTest, ForRangesRunsEachRangeOnce) {
  const size_t n = 40000;
  std::vector<IndexRange> ranges =
      BalancedRanges(n, [](size_t) { return uint64_t{1}; }, 4);
  EXPECT_GT(ranges.size(), 1u);
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  ParallelForRanges(ranges, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.NumThreads(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
  EXPECT_EQ(pool.QueueDepth(), 0u);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPoolTest, RunBatchRunsEveryTask) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  std::vector<std::function<void()>> tasks;
  for (size_t i = 0; i < hits.size(); ++i) {
    tasks.push_back([&hits, i] { hits[i].fetch_add(1); });
  }
  pool.RunBatch(std::move(tasks));  // returns only when all tasks ran
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, RunBatchHandlesEmptyAndSingle) {
  ThreadPool pool(2);
  pool.RunBatch({});
  std::atomic<int> count{0};
  std::vector<std::function<void()>> one;
  one.push_back([&count] { count.fetch_add(1); });
  pool.RunBatch(std::move(one));
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, RunBatchFromInsidePoolTaskDoesNotDeadlock) {
  // The extraction pipeline fans out per-rule queries on the same pool
  // that runs the extraction request. With a single worker, the nested
  // batch can only finish because the submitting task drains it itself.
  ThreadPool pool(1);
  std::atomic<int> count{0};
  pool.Submit([&pool, &count] {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 8; ++i) {
      tasks.push_back([&count] { count.fetch_add(1); });
    }
    pool.RunBatch(std::move(tasks));
  });
  pool.Wait();
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
  }  // ~ThreadPool joins after the queue is drained
  EXPECT_EQ(count.load(), 50);
}

TEST(MemoryTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512.00 B");
  EXPECT_EQ(FormatBytes(2048), "2.00 KB");
  EXPECT_EQ(FormatBytes(3 * 1024 * 1024), "3.00 MB");
}

TEST(MemoryTest, VectorBytesUsesCapacity) {
  std::vector<uint64_t> v;
  v.reserve(100);
  EXPECT_EQ(VectorBytes(v), 100 * sizeof(uint64_t));
}

TEST(MemoryTest, RssIsPositiveOnLinux) {
  EXPECT_GT(CurrentRssBytes(), 0u);
}

TEST(TimerTest, MeasuresElapsed) {
  WallTimer t;
  double a = t.Seconds();
  EXPECT_GE(a, 0.0);
  double x = 0;
  for (int i = 0; i < 100000; ++i) x += i;
  benchmark_sink_ = x;
  EXPECT_GE(t.Seconds(), a);
}

}  // namespace
}  // namespace graphgen
