// Extraction parity fuzz: randomized schemas and datasets (seeded via
// common/rng, fully reproducible) extracted under every engine × thread
// count × semi-join pushdown × fused/unfused join→DISTINCT combination
// and diffed bitwise against the serial row-at-a-time oracle. The
// datasets deliberately include dangling src/dst keys (link rows whose
// endpoint is not a node), NULL keys, duplicate link rows, heterogeneous
// key types (int64 / dictionary strings / mixed columns), and chains long
// enough that factor 0.0 forces multi-segment assembly with virtual
// nodes at the boundaries.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include <memory>
#include <utility>

#include "common/rng.h"
#include "common/simd.h"
#include "datalog/parser.h"
#include "planner/extractor.h"
#include "planner/incremental.h"
#include "relational/database.h"
#include "relational/table.h"

namespace graphgen::planner {
namespace {

using rel::Schema;
using rel::Table;
using rel::Value;
using rel::ValueType;

struct FuzzCase {
  rel::Database db;
  std::string datalog;
  std::string description;
};

// Renders an entity key under the fuzzed key type.
Value KeyValue(bool string_keys, uint64_t id) {
  if (string_keys) return Value("k" + std::to_string(id));
  return Value(static_cast<int64_t>(id));
}

FuzzCase MakeCase(uint64_t seed) {
  Rng rng(seed);
  FuzzCase fc;

  const bool string_keys = rng.NextBool(0.5);
  const bool string_attr = rng.NextBool(0.4);
  // A sprinkle of wrong-typed cells turns a column kMixed and exercises
  // the generic Value kernels end to end.
  const bool poison_mixed = rng.NextBool(0.25);
  const size_t num_nodes = 20 + rng.NextBounded(60);
  // Link endpoints draw from a *superset* of the node keys, so some src
  // and some dst rows dangle.
  const size_t num_entities = num_nodes + 5 + rng.NextBounded(num_nodes);
  const double null_rate = rng.NextBool(0.5) ? 0.08 : 0.0;
  const size_t attr_domain = 3 + rng.NextBounded(12);
  const int shape = static_cast<int>(rng.NextBounded(3));

  Table nodes("N", Schema({{"id", string_keys ? ValueType::kString
                                              : ValueType::kInt64},
                           {"name", ValueType::kString}}));
  for (size_t i = 0; i < num_nodes; ++i) {
    nodes.AppendUnchecked(
        {KeyValue(string_keys, i), Value("name" + std::to_string(i % 7))});
  }
  fc.db.PutTable(std::move(nodes));

  auto attr_value = [&](uint64_t a) {
    if (string_attr) return Value("a" + std::to_string(a));
    return Value(static_cast<int64_t>(a));
  };
  auto link_row = [&](Table& t) {
    Value id = rng.NextBool(null_rate)
                   ? Value()
                   : KeyValue(string_keys, rng.NextBounded(num_entities));
    if (poison_mixed && rng.NextBool(0.02)) id = Value("oops");
    Value attr = rng.NextBool(null_rate)
                     ? Value()
                     : attr_value(rng.NextBounded(attr_domain));
    t.AppendUnchecked({std::move(id), std::move(attr)});
  };

  const size_t link_rows = 120 + rng.NextBounded(300);
  Table l1("L1", Schema({{"id", string_keys ? ValueType::kString
                                            : ValueType::kInt64},
                         {"a", string_attr ? ValueType::kString
                                           : ValueType::kInt64}}));
  for (size_t i = 0; i < link_rows; ++i) link_row(l1);
  // Exact duplicates make DISTINCT do real work.
  for (size_t i = 0; i < link_rows / 4; ++i) {
    l1.AppendUnchecked(l1.row(rng.NextBounded(l1.NumRows())));
  }
  fc.db.PutTable(std::move(l1));

  switch (shape) {
    case 0:
      // Self-join co-occurrence: the canonical 2-atom chain.
      fc.datalog =
          "Nodes(ID, Name) :- N(ID, Name).\n"
          "Edges(ID1, ID2) :- L1(ID1, A), L1(ID2, A).";
      fc.description = "self-join";
      break;
    case 1: {
      // Heterogeneous 2-atom chain over two link tables.
      Table l2("L2", Schema({{"id", string_keys ? ValueType::kString
                                                : ValueType::kInt64},
                             {"a", string_attr ? ValueType::kString
                                               : ValueType::kInt64}}));
      for (size_t i = 0; i < link_rows; ++i) link_row(l2);
      fc.db.PutTable(std::move(l2));
      fc.datalog =
          "Nodes(ID, Name) :- N(ID, Name).\n"
          "Edges(ID1, ID2) :- L1(ID1, A), L2(ID2, A).";
      fc.description = "two-table";
      break;
    }
    default: {
      // 3-atom chain through a bridge table: two join boundaries, so
      // factor 0.0 condenses into multiple segments whose boundary values
      // become virtual nodes while dangling dst keys are still dropped at
      // the final segment only.
      Table bridge("B", Schema({{"a", string_attr ? ValueType::kString
                                                  : ValueType::kInt64},
                                {"b", string_attr ? ValueType::kString
                                                  : ValueType::kInt64}}));
      const size_t bridge_rows = 60 + rng.NextBounded(200);
      for (size_t i = 0; i < bridge_rows; ++i) {
        Value a = rng.NextBool(null_rate)
                      ? Value()
                      : attr_value(rng.NextBounded(attr_domain));
        Value b = rng.NextBool(null_rate)
                      ? Value()
                      : attr_value(rng.NextBounded(attr_domain));
        bridge.AppendUnchecked({std::move(a), std::move(b)});
      }
      fc.db.PutTable(std::move(bridge));
      fc.datalog =
          "Nodes(ID, Name) :- N(ID, Name).\n"
          "Edges(ID1, ID2) :- L1(ID1, A), B(A, C), L1(ID2, C).";
      fc.description = "bridge-chain";
      break;
    }
  }
  fc.db.AnalyzeAll();
  return fc;
}

// How the fused join→DISTINCT pipeline is driven: disabled entirely,
// forced for any output size, or the adaptive default.
enum class FuseMode { kNever, kAlways, kAuto };
constexpr FuseMode kFuseModes[] = {FuseMode::kNever, FuseMode::kAlways,
                                   FuseMode::kAuto};

ExtractionResult RunExtract(const FuzzCase& fc, double factor,
                            query::ExecEngine engine, size_t threads,
                            bool pushdown, FuseMode fuse) {
  ExtractOptions opts;
  opts.large_output_factor = factor;
  opts.preprocess = false;
  opts.engine = engine;
  opts.threads = threads;
  opts.semi_join_pushdown = pushdown;
  opts.fuse_join_distinct = fuse != FuseMode::kNever;
  if (fuse == FuseMode::kAlways) opts.fuse_min_output_bytes = 0;
  auto result = ExtractFromQuery(fc.db, fc.datalog, opts);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).ValueOrDie();
}

TEST(ExtractionFuzzTest, RandomizedSchemasAgreeAcrossAllConfigurations) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    FuzzCase fc = MakeCase(seed * 0x9e3779b97f4a7c15ull + seed);
    SCOPED_TRACE("seed=" + std::to_string(seed) + " " + fc.description);
    // 0.0 forces every boundary condensed (multi-segment + virtual
    // nodes), 1e18 forces full expansion, 2.0 lets the stats decide.
    for (double factor : {0.0, 2.0, 1e18}) {
      const ExtractionResult oracle =
          RunExtract(fc, factor, query::ExecEngine::kRowAtATime, 1,
                     /*pushdown=*/false, FuseMode::kNever);
      for (const FuseMode fuse : kFuseModes) {
        for (const size_t threads : {size_t{1}, size_t{4}}) {
          const ExtractionResult got =
              RunExtract(fc, factor, query::ExecEngine::kColumnar, threads,
                         /*pushdown=*/false, fuse);
          EXPECT_EQ(DiffExtraction(oracle, got), "")
              << "factor=" << factor << " threads=" << threads
              << " fuse=" << static_cast<int>(fuse);
        }
      }
      // Pushdown legitimately scans fewer rows; the graph must not move.
      for (const FuseMode fuse : kFuseModes) {
        const ExtractionResult got =
            RunExtract(fc, factor, query::ExecEngine::kColumnar, 4,
                       /*pushdown=*/true, fuse);
        EXPECT_EQ(DiffExtraction(oracle, got, /*compare_scan_counts=*/false),
                  "")
            << "factor=" << factor << " pushdown fuse="
            << static_cast<int>(fuse);
        EXPECT_LE(got.rows_scanned, oracle.rows_scanned);
      }
      // The row engine with pushdown is the pushdown oracle for the
      // columnar pushdown path, scan counts included.
      const ExtractionResult push_oracle =
          RunExtract(fc, factor, query::ExecEngine::kRowAtATime, 1,
                     /*pushdown=*/true, FuseMode::kNever);
      const ExtractionResult push_col =
          RunExtract(fc, factor, query::ExecEngine::kColumnar, 4,
                     /*pushdown=*/true, FuseMode::kAuto);
      EXPECT_EQ(DiffExtraction(push_oracle, push_col), "")
          << "factor=" << factor << " pushdown scan-count parity";
    }
  }
}

// Append-then-patch axis: each fuzz case is truncated to a prefix, an
// incremental state is captured there, the withheld rows (dangling keys,
// NULLs, duplicates, mixed-typed cells included) are appended, and the
// patched extraction must match a cold run over the grown database bit
// for bit. This drives PatchExtraction through the same hostile data the
// parity fuzz uses, across segmentation modes and pushdown.
TEST(ExtractionFuzzTest, AppendThenPatchMatchesColdExtraction) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    FuzzCase fc = MakeCase(seed * 0x9e3779b97f4a7c15ull + seed);
    SCOPED_TRACE("seed=" + std::to_string(seed) + " " + fc.description);
    auto parsed = dsl::Parse(fc.datalog);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    for (double factor : {0.0, 2.0, 1e18}) {
      for (const bool pushdown : {false, true}) {
        // Keep a 70% prefix of every table; withhold the tails.
        rel::Database db;
        std::vector<std::pair<std::string, std::vector<rel::Row>>> tails;
        for (const std::string& name : fc.db.TableNames()) {
          auto tr = fc.db.GetTable(name);
          ASSERT_TRUE(tr.ok());
          const Table* t = *tr;
          const size_t keep = t->NumRows() * 7 / 10;
          Table copy(name, t->schema());
          for (size_t i = 0; i < keep; ++i) copy.AppendUnchecked(t->row(i));
          db.PutTable(std::move(copy));
          auto& tail = tails.emplace_back(name, std::vector<rel::Row>{}).second;
          for (size_t i = keep; i < t->NumRows(); ++i) {
            tail.push_back(t->row(i));
          }
        }
        db.AnalyzeAll();

        ExtractOptions opts;
        opts.large_output_factor = factor;
        opts.preprocess = false;
        opts.engine = query::ExecEngine::kColumnar;
        opts.threads = 4;
        opts.semi_join_pushdown = pushdown;

        IncrementalState captured;
        auto base = ExtractWithCapture(db, *parsed, opts, captured);
        ASSERT_TRUE(base.ok()) << base.status().ToString();
        auto state = std::make_shared<IncrementalState>(std::move(captured));

        for (auto& [name, rows] : tails) {
          ASSERT_TRUE(db.AppendRows(name, rows).ok());
        }
        auto attempt = PatchExtraction(db, *state, opts);
        ASSERT_TRUE(attempt.ok()) << attempt.status().ToString();
        ASSERT_TRUE(attempt->patched)
            << "factor=" << factor << " pushdown=" << pushdown
            << " fell back: " << attempt->fallback_reason;

        const ExtractionResult fresh =
            RunExtract(fc, factor, query::ExecEngine::kColumnar, 4, pushdown,
                       FuseMode::kAuto);
        EXPECT_EQ(DiffExtraction(fresh, attempt->result,
                                 /*compare_scan_counts=*/false),
                  "")
            << "factor=" << factor << " pushdown=" << pushdown;
      }
    }
  }
}

// Forced-SIMD-tier axis: the same randomized cases extracted with the
// dispatch pinned to scalar (the GRAPHGEN_SIMD=off path) must match both
// the row-at-a-time oracle and the vector-tier columnar run bit for bit —
// the end-to-end guarantee behind the per-kernel parity tests in
// simd_test.cc.
TEST(ExtractionFuzzTest, ForcedScalarSimdTierMatchesVectorTier) {
  struct TierReset {
    ~TierReset() { simd::ResetTierForTesting(); }
  } reset;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    FuzzCase fc = MakeCase(seed * 0x9e3779b97f4a7c15ull + seed);
    SCOPED_TRACE("seed=" + std::to_string(seed) + " " + fc.description);
    for (double factor : {0.0, 2.0}) {
      simd::ResetTierForTesting();
      const ExtractionResult oracle =
          RunExtract(fc, factor, query::ExecEngine::kRowAtATime, 1,
                     /*pushdown=*/false, FuseMode::kNever);
      const ExtractionResult vec =
          RunExtract(fc, factor, query::ExecEngine::kColumnar, 4,
                     /*pushdown=*/false, FuseMode::kAuto);
      simd::SetTierForTesting(simd::Tier::kScalar);
      const ExtractionResult scalar =
          RunExtract(fc, factor, query::ExecEngine::kColumnar, 4,
                     /*pushdown=*/false, FuseMode::kAuto);
      EXPECT_EQ(DiffExtraction(oracle, scalar), "")
          << "factor=" << factor << " scalar tier vs row oracle";
      EXPECT_EQ(DiffExtraction(vec, scalar), "")
          << "factor=" << factor << " scalar tier vs "
          << (simd::Avx2Available() ? "avx2" : "scalar") << " tier";
    }
  }
}

}  // namespace
}  // namespace graphgen::planner
