// Tests for the typed columnar storage layer: encoding inference, null
// bitmap semantics, dictionary interning, the mixed-type fallback, memory
// accounting, and the binary columnar snapshot round-trip.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/serialization.h"
#include "planner/extractor.h"
#include "relational/csv_loader.h"
#include "relational/database.h"

namespace graphgen::rel {
namespace {

using Encoding = ColumnVector::Encoding;

TEST(ColumnVectorTest, InfersInt64Encoding) {
  ColumnVector c;
  c.AppendInt64(7);
  c.AppendInt64(-3);
  EXPECT_EQ(c.encoding(), Encoding::kInt64);
  EXPECT_EQ(c.size(), 2u);
  ASSERT_NE(c.Int64Data(), nullptr);
  EXPECT_EQ(c.Int64Data()[1], -3);
  EXPECT_EQ(c.ValueAt(0), Value(int64_t{7}));
}

TEST(ColumnVectorTest, DictionaryInternsStrings) {
  ColumnVector c;
  c.AppendString("ann");
  c.AppendString("bob");
  c.AppendString("ann");
  EXPECT_EQ(c.encoding(), Encoding::kDictString);
  EXPECT_EQ(c.dict().size(), 2u);       // "ann" stored once
  EXPECT_EQ(c.CodeAt(0), c.CodeAt(2));  // equal strings share a code
  EXPECT_NE(c.CodeAt(0), c.CodeAt(1));
  EXPECT_EQ(c.StringAt(2), "ann");
  EXPECT_EQ(c.ValueAt(1), Value("bob"));
}

TEST(ColumnVectorTest, NullBitmapSemantics) {
  ColumnVector c;
  c.AppendNull();  // leading null: encoding not yet known
  EXPECT_EQ(c.encoding(), Encoding::kEmpty);
  c.AppendInt64(5);
  c.AppendNull();
  EXPECT_EQ(c.encoding(), Encoding::kInt64);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.null_count(), 2u);
  EXPECT_TRUE(c.IsNull(0));
  EXPECT_FALSE(c.IsNull(1));
  EXPECT_TRUE(c.IsNull(2));
  EXPECT_TRUE(c.ValueAt(0).is_null());
  EXPECT_EQ(c.ValueAt(1), Value(int64_t{5}));
  EXPECT_TRUE(c.ValueAt(2).is_null());
}

TEST(ColumnVectorTest, TypeMismatchConvertsToMixed) {
  ColumnVector c;
  c.AppendInt64(1);
  c.AppendString("x");
  c.AppendDouble(2.5);
  EXPECT_EQ(c.encoding(), Encoding::kMixed);
  EXPECT_EQ(c.ValueAt(0), Value(int64_t{1}));  // earlier cells preserved
  EXPECT_EQ(c.ValueAt(1), Value("x"));
  EXPECT_EQ(c.ValueAt(2), Value(2.5));
}

TEST(ColumnVectorTest, HashMatchesValueHash) {
  ColumnVector c;
  c.AppendInt64(42);
  c.AppendNull();
  EXPECT_EQ(c.HashAt(0), Value(int64_t{42}).Hash());
  EXPECT_EQ(c.HashAt(1), Value().Hash());
  ColumnVector s;
  s.AppendString("key");
  EXPECT_EQ(s.HashAt(0), Value("key").Hash());
}

TEST(ColumnVectorTest, EqualAtFollowsValueSemantics) {
  ColumnVector ints = ColumnVector::OfInt64({5, 5, 6});
  EXPECT_TRUE(ints.EqualAt(0, ints, 1));
  EXPECT_FALSE(ints.EqualAt(0, ints, 2));
  ColumnVector doubles = ColumnVector::OfDouble({5.0});
  EXPECT_FALSE(ints.EqualAt(0, doubles, 0));  // int64 5 != double 5.0
  ColumnVector nulls;
  nulls.AppendNull();
  nulls.AppendNull();
  EXPECT_TRUE(nulls.EqualAt(0, nulls, 1));  // NULL == NULL
  EXPECT_FALSE(nulls.EqualAt(0, ints, 0));
  // Same strings in two different dictionaries still compare equal.
  ColumnVector s1 = ColumnVector::OfStrings({"a", "b"});
  ColumnVector s2 = ColumnVector::OfStrings({"b"});
  EXPECT_TRUE(s1.EqualAt(1, s2, 0));
  EXPECT_FALSE(s1.EqualAt(0, s2, 0));
}

TEST(ColumnVectorTest, DistinctCountTyped) {
  ColumnVector c;
  for (int64_t v : {1, 2, 2, 3, 3, 3}) c.AppendInt64(v);
  c.AppendNull();  // NULL counts as one distinct value (legacy semantics)
  EXPECT_EQ(c.DistinctCount(), 4u);
  ColumnVector s = ColumnVector::OfStrings({"x", "y", "x"});
  EXPECT_EQ(s.DistinctCount(), 2u);
}

TEST(TableTest, FromColumnsAndRowView) {
  std::vector<ColumnVector> cols;
  cols.push_back(ColumnVector::OfInt64({1, 2}));
  cols.push_back(ColumnVector::OfStrings({"ann", "bob"}));
  Table t = Table::FromColumns(
      "T", Schema({{"id", ValueType::kInt64}, {"name", ValueType::kString}}),
      std::move(cols));
  EXPECT_EQ(t.NumRows(), 2u);
  Row r = t.row(1);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0], Value(int64_t{2}));
  EXPECT_EQ(r[1], Value("bob"));
  EXPECT_EQ(t.ValueAt(0, 1), Value("ann"));
}

TEST(TableTest, MemoryBytesCountsStringHeap) {
  // 200 distinct ~70-byte strings: the footprint must cover the string
  // payload itself, not just vector headers (the pre-columnar accounting
  // missed dictionary-style sharing entirely).
  Table strings("S", Schema({{"s", ValueType::kString}}));
  size_t payload = 0;
  for (int i = 0; i < 200; ++i) {
    std::string s = "value-" + std::to_string(i) + std::string(60, 'x');
    payload += s.size();
    strings.AppendUnchecked({Value(std::move(s))});
  }
  EXPECT_GT(strings.MemoryBytes(), payload);

  // Interning: 200 rows of the same string cost far less than 200 distinct
  // strings of the same length.
  Table repeated("R", Schema({{"s", ValueType::kString}}));
  for (int i = 0; i < 200; ++i) {
    repeated.AppendUnchecked({Value(std::string(66, 'y'))});
  }
  EXPECT_LT(repeated.MemoryBytes(), strings.MemoryBytes() / 4);
}

TEST(TableTest, Int64ColumnRejectsNulls) {
  Table t("T", Schema({{"a", ValueType::kInt64}}));
  t.AppendUnchecked({Value(int64_t{1})});
  t.AppendUnchecked({Value()});
  EXPECT_FALSE(t.Int64Column(0).ok());
}

TEST(CsvColumnarTest, ColumnTypeFinalizesCells) {
  // "4" in a column that elsewhere holds "3.5" lands as the double 4.0 —
  // type inference finalizes the column, not the cell, so a typed column
  // never mixes int64 and double values.
  auto table = ParseCsv("T", "score\n3.5\n4\n");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->schema().column(0).type, ValueType::kDouble);
  EXPECT_EQ(table->column(0).encoding(), Encoding::kDouble);
  EXPECT_EQ(table->row(1)[0], Value(4.0));
}

TEST(CsvColumnarTest, WidenedIdColumnKeepsExactText) {
  // One out-of-range id widens the whole column to string; the in-range
  // ids keep their exact original text so keys stay consistent.
  auto table = ParseCsv("T", "k\n5\n18446744073709551616\n");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->schema().column(0).type, ValueType::kString);
  EXPECT_EQ(table->column(0).encoding(), Encoding::kDictString);
  EXPECT_EQ(table->row(0)[0].AsString(), "5");
  EXPECT_EQ(table->row(1)[0].AsString(), "18446744073709551616");
}

TEST(CsvColumnarTest, DictionaryRoundTripThroughExtraction) {
  // CSV with string keys -> dictionary-encoded columns -> extraction:
  // the dict join kernel and dict property materialization must produce
  // the same graph the legacy row engine does.
  std::string dir = ::testing::TempDir();
  std::string people = dir + "/people.csv";
  std::string likes = dir + "/likes.csv";
  {
    FILE* f = fopen(people.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("id,name\nalice,Alice A\nbob,Bob B\ncarol,Carol C\n", f);
    fclose(f);
    f = fopen(likes.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("person,thing\nalice,jazz\nbob,jazz\nbob,go\ncarol,go\n", f);
    fclose(f);
  }
  Database db;
  ASSERT_TRUE(LoadCsv(db, "People", people).ok());
  ASSERT_TRUE(LoadCsv(db, "Likes", likes).ok());
  EXPECT_EQ(db.GetTable("People").ValueOrDie()->column(0).encoding(),
            Encoding::kDictString);

  const std::string program =
      "Nodes(ID, Name) :- People(ID, Name).\n"
      "Edges(ID1, ID2) :- Likes(ID1, T), Likes(ID2, T).";
  planner::ExtractOptions columnar;
  columnar.preprocess = false;
  columnar.large_output_factor = 0.0;
  auto got = planner::ExtractFromQuery(db, program, columnar);
  ASSERT_TRUE(got.ok()) << got.status().ToString();

  planner::ExtractOptions legacy = columnar;
  legacy.engine = query::ExecEngine::kRowAtATime;
  legacy.threads = 1;
  auto oracle = planner::ExtractFromQuery(db, program, legacy);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();

  EXPECT_EQ(planner::DiffExtraction(*oracle, *got), "");
  EXPECT_EQ(got->real_nodes, 3u);
  // alice-bob via jazz, bob-carol via go: 4 directed edges.
  EXPECT_EQ(got->storage.CountExpandedEdges(), 4u);
  EXPECT_EQ(got->storage.properties().GetByName(0, "Name"), "'Alice A'");
  std::remove(people.c_str());
  std::remove(likes.c_str());
}

TEST(SnapshotTest, ColumnarTableRoundTrip) {
  Table t("Snap", Schema({{"id", ValueType::kInt64},
                          {"name", ValueType::kString},
                          {"score", ValueType::kDouble},
                          {"odd", ValueType::kString}}));
  t.AppendUnchecked({Value(int64_t{1}), Value("ann"), Value(1.5), Value("x")});
  t.AppendUnchecked({Value(int64_t{2}), Value(), Value(), Value(int64_t{9})});
  t.AppendUnchecked({Value(int64_t{3}), Value("ann"), Value(-2.25), Value()});

  std::string path = ::testing::TempDir() + "/snap.ggtbl";
  ASSERT_TRUE(SerializeTableColumnar(t, path).ok());
  auto loaded = LoadTableColumnar(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->name(), "Snap");
  ASSERT_EQ(loaded->NumRows(), 3u);
  ASSERT_EQ(loaded->NumColumns(), 4u);
  for (size_t c = 0; c < 4; ++c) {
    EXPECT_EQ(loaded->schema().column(c).name, t.schema().column(c).name);
    EXPECT_EQ(loaded->schema().column(c).type, t.schema().column(c).type);
    EXPECT_EQ(loaded->column(c).encoding(), t.column(c).encoding()) << c;
    for (size_t r = 0; r < 3; ++r) {
      EXPECT_EQ(loaded->ValueAt(r, c), t.ValueAt(r, c)) << r << "," << c;
    }
  }
  // Dictionary codes survive byte-for-byte.
  EXPECT_EQ(loaded->column(1).CodeAt(0), loaded->column(1).CodeAt(2));
  std::remove(path.c_str());
}

TEST(SnapshotTest, TruncatedSnapshotIsParseErrorNotCrash) {
  Table t("Trunc", Schema({{"id", ValueType::kInt64},
                           {"name", ValueType::kString}}));
  for (int64_t i = 0; i < 50; ++i) {
    t.AppendUnchecked({Value(i), Value("name-" + std::to_string(i))});
  }
  std::string path = ::testing::TempDir() + "/trunc.ggtbl";
  ASSERT_TRUE(SerializeTableColumnar(t, path).ok());
  // Truncate to half: header-declared counts now exceed what the file
  // holds; the loader must fail cleanly, not allocate from garbage.
  {
    FILE* f = fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    fseek(f, 0, SEEK_END);
    long size = ftell(f);
    rewind(f);
    std::string bytes(static_cast<size_t>(size) / 2, '\0');
    ASSERT_EQ(fread(bytes.data(), 1, bytes.size(), f), bytes.size());
    fclose(f);
    f = fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    fwrite(bytes.data(), 1, bytes.size(), f);
    fclose(f);
  }
  auto loaded = LoadTableColumnar(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  std::remove(path.c_str());
}

TEST(SnapshotTest, RejectsGarbage) {
  std::string path = ::testing::TempDir() + "/garbage.ggtbl";
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("not a snapshot", f);
    fclose(f);
  }
  EXPECT_FALSE(LoadTableColumnar(path).ok());
  EXPECT_EQ(LoadTableColumnar("/no/such/file").status().code(),
            StatusCode::kNotFound);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace graphgen::rel
