#ifndef GRAPHGEN_TESTS_TEST_UTIL_H_
#define GRAPHGEN_TESTS_TEST_UTIL_H_

#include <set>
#include <utility>
#include <vector>

#include "gen/condensed_generator.h"
#include "graph/graph.h"
#include "graph/storage.h"

namespace graphgen::testing {

/// Adds real node u as a symmetric member of virtual node v.
inline void AddMember(CondensedStorage& g, NodeId u, uint32_t v) {
  g.AddEdge(NodeRef::Real(u), NodeRef::Virtual(v));
  g.AddEdge(NodeRef::Virtual(v), NodeRef::Real(u));
}

/// Builds the Figure 1 toy DBLP graph: 5 authors, 3 pubs,
/// memberships p1 = {a1, a2, a3, a4}, p2 = {a1, a3, a4}, p3 = {a4, a5}.
/// (The a1--a4 pair is duplicated through p1 and p2.)
inline CondensedStorage MakeFigure1Graph() {
  CondensedStorage g;
  g.AddRealNodes(5);  // a1 .. a5 are ids 0 .. 4
  uint32_t p1 = g.AddVirtualNode();
  uint32_t p2 = g.AddVirtualNode();
  uint32_t p3 = g.AddVirtualNode();
  for (NodeId a : {0, 1, 2, 3}) AddMember(g, a, p1);
  for (NodeId a : {0, 2, 3}) AddMember(g, a, p2);
  for (NodeId a : {3, 4}) AddMember(g, a, p3);
  return g;
}

/// A symmetric single-layer condensed graph from the Appendix C.1
/// generator, seeded for determinism.
inline CondensedStorage MakeRandomSymmetric(size_t reals, size_t virtuals,
                                            double mean, uint64_t seed) {
  gen::CondensedGenOptions o;
  o.num_real = reals;
  o.num_virtual = virtuals;
  o.mean_size = mean;
  o.sd_size = mean / 3;
  o.seed = seed;
  return gen::GenerateCondensed(o);
}

/// Sorted, unique expanded edge set of any Graph implementation.
inline std::vector<std::pair<NodeId, NodeId>> EdgeSetOf(const Graph& g) {
  return g.ExpandedEdgeSet();
}

/// Asserts helper: true iff iterating neighbors of every vertex yields no
/// duplicates and no self loops (the DEDUP-1 / BITMAP invariant).
inline bool IsDuplicateFree(const Graph& g) {
  bool clean = true;
  g.ForEachVertex([&](NodeId u) {
    std::set<NodeId> seen;
    g.ForEachNeighbor(u, [&](NodeId v) {
      if (v == u || !seen.insert(v).second) clean = false;
    });
  });
  return clean;
}

}  // namespace graphgen::testing

#endif  // GRAPHGEN_TESTS_TEST_UTIL_H_
