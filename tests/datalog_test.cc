#include <gtest/gtest.h>

#include "datalog/lexer.h"
#include "datalog/parser.h"
#include "datalog/validator.h"

namespace graphgen::dsl {
namespace {

TEST(LexerTest, BasicTokens) {
  auto tokens = Tokenize("Nodes(ID) :- Author(ID).");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenType> types;
  for (const Token& t : *tokens) types.push_back(t.type);
  EXPECT_EQ(types,
            (std::vector<TokenType>{
                TokenType::kIdent, TokenType::kLParen, TokenType::kIdent,
                TokenType::kRParen, TokenType::kColonDash, TokenType::kIdent,
                TokenType::kLParen, TokenType::kIdent, TokenType::kRParen,
                TokenType::kDot, TokenType::kEnd}));
}

TEST(LexerTest, NumbersIntegerAndFloat) {
  auto tokens = Tokenize("42 3.5 -7");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[0].number_is_integer);
  EXPECT_EQ((*tokens)[0].number, 42.0);
  EXPECT_FALSE((*tokens)[1].number_is_integer);
  EXPECT_EQ((*tokens)[1].number, 3.5);
  EXPECT_EQ((*tokens)[2].number, -7.0);
}

TEST(LexerTest, NumberFollowedByDotTerminator) {
  // "Pub(ID, 2016)." — the final dot is a statement terminator.
  auto tokens = Tokenize("2016.");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kNumber);
  EXPECT_TRUE((*tokens)[0].number_is_integer);
  EXPECT_EQ((*tokens)[1].type, TokenType::kDot);
}

TEST(LexerTest, StringsAndComments) {
  auto tokens = Tokenize("\"SIGMOD\" % trailing comment\nX");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kString);
  EXPECT_EQ((*tokens)[0].text, "SIGMOD");
  EXPECT_EQ((*tokens)[1].type, TokenType::kIdent);
}

TEST(LexerTest, ComparisonOperators) {
  auto tokens = Tokenize("= != <> < <= > >=");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenType> types;
  for (const Token& t : *tokens) types.push_back(t.type);
  EXPECT_EQ(types, (std::vector<TokenType>{
                       TokenType::kEq, TokenType::kNe, TokenType::kNe,
                       TokenType::kLt, TokenType::kLe, TokenType::kGt,
                       TokenType::kGe, TokenType::kEnd}));
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("\"oops").ok());
}

TEST(LexerTest, ReportsPosition) {
  auto tokens = Tokenize("a\n  b");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].line, 2);
  EXPECT_EQ((*tokens)[1].column, 3);
}

TEST(LexerTest, RejectsLeadingUnderscoreIdent) {
  EXPECT_FALSE(Tokenize("_foo").ok());
}

TEST(ParserTest, ParsesQ1) {
  auto program = Parse(
      "Nodes(ID, Name) :- Author(ID, Name).\n"
      "Edges(ID1, ID2) :- AuthorPub(ID1, PubID), AuthorPub(ID2, PubID).");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(program->nodes_rules.size(), 1u);
  EXPECT_EQ(program->edges_rules.size(), 1u);
  const Rule& nodes = program->nodes_rules[0];
  EXPECT_EQ(nodes.head_args, (std::vector<std::string>{"ID", "Name"}));
  EXPECT_EQ(nodes.body[0].relation, "Author");
  const Rule& edges = program->edges_rules[0];
  EXPECT_EQ(edges.body.size(), 2u);
  EXPECT_EQ(edges.body[1].args[0].variable, "ID2");
}

TEST(ParserTest, ParsesQ3HeterogeneousProgram) {
  auto program = Parse(
      "Nodes(ID, Name) :- Instructor(ID, Name).\n"
      "Nodes(ID, Name) :- Student(ID, Name).\n"
      "Edges(ID1, ID2) :- TaughtCourse(ID1, C), TookCourse(ID2, C).");
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->nodes_rules.size(), 2u);
  EXPECT_EQ(program->edges_rules.size(), 1u);
}

TEST(ParserTest, ParsesWildcardsAndConstants) {
  auto program = Parse(
      "Nodes(ID) :- Author(ID, _).\n"
      "Edges(ID1, ID2) :- Pub(ID1, ID2, \"SIGMOD\", 2016, _).");
  ASSERT_TRUE(program.ok());
  const Atom& atom = program->edges_rules[0].body[0];
  EXPECT_EQ(atom.args[2].kind, Term::Kind::kConstant);
  EXPECT_EQ(atom.args[2].constant.AsString(), "SIGMOD");
  EXPECT_EQ(atom.args[3].constant.AsInt64(), 2016);
  EXPECT_EQ(atom.args[4].kind, Term::Kind::kWildcard);
}

TEST(ParserTest, ParsesComparisons) {
  auto program = Parse(
      "Nodes(ID) :- Author(ID, _).\n"
      "Edges(ID1, ID2) :- CoAuth(ID1, ID2, Year), Year >= 2010, ID1 != ID2.");
  ASSERT_TRUE(program.ok());
  const Rule& edges = program->edges_rules[0];
  ASSERT_EQ(edges.comparisons.size(), 2u);
  EXPECT_EQ(edges.comparisons[0].lhs_var, "Year");
  EXPECT_EQ(edges.comparisons[0].op, PredOp::kGe);
  EXPECT_TRUE(edges.comparisons[1].rhs_is_var);
}

TEST(ParserTest, ParsesCountConstraint) {
  auto program = Parse(
      "Nodes(ID) :- Author(ID, _).\n"
      "Edges(ID1, ID2) :- AuthorPub(ID1, P), AuthorPub(ID2, P), "
      "COUNT(P) >= 2.");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const Rule& edges = program->edges_rules[0];
  ASSERT_TRUE(edges.count_constraint.has_value());
  EXPECT_EQ(edges.count_constraint->variable, "P");
  EXPECT_EQ(edges.count_constraint->op, PredOp::kGe);
  EXPECT_EQ(edges.count_constraint->threshold, 2);
  // Round trip.
  auto reparsed = Parse(program->ToString());
  ASSERT_TRUE(reparsed.ok()) << program->ToString();
  EXPECT_TRUE(reparsed->edges_rules[0].count_constraint.has_value());
}

TEST(ParserTest, RejectsTwoCountConstraints) {
  EXPECT_FALSE(Parse("Nodes(ID) :- A(ID).\n"
                     "Edges(X, Y) :- R(X, P), R(Y, P), COUNT(P) >= 2, "
                     "COUNT(P) >= 3.")
                   .ok());
}

TEST(ParserTest, RejectsNonIntegerCountThreshold) {
  EXPECT_FALSE(Parse("Nodes(ID) :- A(ID).\n"
                     "Edges(X, Y) :- R(X, P), R(Y, P), COUNT(P) >= 1.5.")
                   .ok());
}

TEST(ParserTest, RequiresNodesAndEdges) {
  EXPECT_FALSE(Parse("Nodes(ID) :- A(ID).").ok());
  EXPECT_FALSE(Parse("Edges(A, B) :- R(A, B).").ok());
}

TEST(ParserTest, RejectsUnknownHead) {
  auto r = Parse("Vertices(ID) :- A(ID).");
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(ParserTest, RejectsMissingDot) {
  EXPECT_FALSE(Parse("Nodes(ID) :- A(ID)").ok());
}

TEST(ParserTest, RejectsEdgesWithOneId) {
  EXPECT_FALSE(
      Parse("Nodes(ID) :- A(ID).\nEdges(ID1) :- R(ID1, ID1).").ok());
}

TEST(ParserTest, RoundTripsToString) {
  auto program = Parse(
      "Nodes(ID, Name) :- Author(ID, Name).\n"
      "Edges(ID1, ID2) :- AuthorPub(ID1, P), AuthorPub(ID2, P).");
  ASSERT_TRUE(program.ok());
  std::string text = program->ToString();
  auto reparsed = Parse(text);
  ASSERT_TRUE(reparsed.ok()) << text;
  EXPECT_EQ(reparsed->ToString(), text);
}

class ValidatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    using rel::Schema;
    using rel::Table;
    using rel::ValueType;
    db_.PutTable(Table("Author", Schema({{"id", ValueType::kInt64},
                                         {"name", ValueType::kString}})));
    db_.PutTable(Table("AuthorPub", Schema({{"aid", ValueType::kInt64},
                                            {"pid", ValueType::kInt64}})));
  }
  rel::Database db_;
};

TEST_F(ValidatorTest, AcceptsValidProgram) {
  auto program = Parse(
      "Nodes(ID, Name) :- Author(ID, Name).\n"
      "Edges(ID1, ID2) :- AuthorPub(ID1, P), AuthorPub(ID2, P).");
  ASSERT_TRUE(program.ok());
  EXPECT_TRUE(Validate(*program, db_).ok());
}

TEST_F(ValidatorTest, RejectsUnknownRelation) {
  auto program = Parse(
      "Nodes(ID) :- Missing(ID).\n"
      "Edges(A, B) :- AuthorPub(A, P), AuthorPub(B, P).");
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(Validate(*program, db_).code(), StatusCode::kInvalidArgument);
}

TEST_F(ValidatorTest, RejectsArityMismatch) {
  auto program = Parse(
      "Nodes(ID) :- Author(ID).\n"
      "Edges(A, B) :- AuthorPub(A, P), AuthorPub(B, P).");
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(Validate(*program, db_).ok());
}

TEST_F(ValidatorTest, RejectsUnboundHeadVariable) {
  auto program = Parse(
      "Nodes(ID, Oops) :- Author(ID, _).\n"
      "Edges(A, B) :- AuthorPub(A, P), AuthorPub(B, P).");
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(Validate(*program, db_).ok());
}

TEST_F(ValidatorTest, RejectsRecursion) {
  auto program = Parse(
      "Nodes(ID) :- Author(ID, _).\n"
      "Edges(A, B) :- Edges(A, C), AuthorPub(C, B).");
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(Validate(*program, db_).ok());
}

TEST_F(ValidatorTest, RejectsDisconnectedBody) {
  auto program = Parse(
      "Nodes(ID) :- Author(ID, _).\n"
      "Edges(A, B) :- AuthorPub(A, P), Author(B, N).");
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(Validate(*program, db_).ok());
}

TEST_F(ValidatorTest, RejectsUnboundComparisonVariable) {
  auto program = Parse(
      "Nodes(ID) :- Author(ID, _).\n"
      "Edges(A, B) :- AuthorPub(A, P), AuthorPub(B, P), Zed > 3.");
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(Validate(*program, db_).ok());
}

TEST_F(ValidatorTest, CountVariableMustBeBound) {
  auto program = Parse(
      "Nodes(ID) :- Author(ID, _).\n"
      "Edges(A, B) :- AuthorPub(A, P), AuthorPub(B, P), COUNT(Zed) >= 2.");
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(Validate(*program, db_).ok());
}

TEST_F(ValidatorTest, AcceptsBoundCountVariable) {
  auto program = Parse(
      "Nodes(ID) :- Author(ID, _).\n"
      "Edges(A, B) :- AuthorPub(A, P), AuthorPub(B, P), COUNT(P) >= 2.");
  ASSERT_TRUE(program.ok());
  EXPECT_TRUE(Validate(*program, db_).ok());
}

}  // namespace
}  // namespace graphgen::dsl
