#include <gtest/gtest.h>

#include "dedup/bitmap_algorithms.h"
#include "dedup/dedup1_algorithms.h"
#include "dedup/dedup2_builder.h"
#include "repr/cdup_graph.h"
#include "repr/dedup1_graph.h"
#include "repr/dedup2_graph.h"
#include "repr/expander.h"
#include "test_util.h"

namespace graphgen {
namespace {

using testing::AddMember;
using testing::EdgeSetOf;
using testing::IsDuplicateFree;
using testing::MakeFigure1Graph;
using testing::MakeRandomSymmetric;

// ---------- C-DUP ----------

TEST(CDupTest, NeighborsDeduplicatedOnTheFly) {
  CDupGraph g(MakeFigure1Graph());
  std::vector<NodeId> n = g.NeighborList(0);
  std::sort(n.begin(), n.end());
  EXPECT_EQ(n, (std::vector<NodeId>{1, 2, 3}));
  EXPECT_TRUE(IsDuplicateFree(g));
}

TEST(CDupTest, LazyIteratorMatchesForEach) {
  CDupGraph g(MakeFigure1Graph());
  for (NodeId u = 0; u < g.NumVertices(); ++u) {
    std::vector<NodeId> a = g.Neighbors(u)->ToList();
    std::vector<NodeId> b = g.NeighborList(u);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "vertex " << u;
  }
}

TEST(CDupTest, ExistsEdge) {
  CDupGraph g(MakeFigure1Graph());
  EXPECT_TRUE(g.ExistsEdge(0, 3));
  EXPECT_TRUE(g.ExistsEdge(3, 4));
  EXPECT_FALSE(g.ExistsEdge(0, 4));
  EXPECT_FALSE(g.ExistsEdge(0, 0));
  EXPECT_FALSE(g.ExistsEdge(0, 99));
}

TEST(CDupTest, AddEdgeIsIdempotent) {
  CDupGraph g(MakeFigure1Graph());
  uint64_t before = g.CountStoredEdges();
  EXPECT_TRUE(g.AddEdge(0, 3).ok());  // already exists via p1/p2
  EXPECT_EQ(g.CountStoredEdges(), before);
  EXPECT_TRUE(g.AddEdge(0, 4).ok());  // new direct edge
  EXPECT_EQ(g.CountStoredEdges(), before + 1);
  EXPECT_TRUE(g.ExistsEdge(0, 4));
}

TEST(CDupTest, DeleteEdgeRemovesAllPaths) {
  CDupGraph g(MakeFigure1Graph());
  ASSERT_TRUE(g.ExistsEdge(0, 3));
  EXPECT_TRUE(g.DeleteEdge(0, 3).ok());
  EXPECT_FALSE(g.ExistsEdge(0, 3));
  // Other neighbors survive.
  EXPECT_TRUE(g.ExistsEdge(0, 1));
  EXPECT_TRUE(g.ExistsEdge(0, 2));
  // Reverse direction untouched (directed deletion).
  EXPECT_TRUE(g.ExistsEdge(3, 0));
  EXPECT_EQ(g.DeleteEdge(0, 3).code(), StatusCode::kNotFound);
}

TEST(CDupTest, DeleteVertexIsLazy) {
  CDupGraph g(MakeFigure1Graph());
  EXPECT_TRUE(g.DeleteVertex(3).ok());
  EXPECT_FALSE(g.VertexExists(3));
  EXPECT_EQ(g.NumActiveVertices(), 4u);
  EXPECT_FALSE(g.ExistsEdge(0, 3));
  std::vector<NodeId> n = g.NeighborList(4);
  EXPECT_TRUE(n.empty());  // a5 only knew a4
  EXPECT_EQ(g.DeleteVertex(3).code(), StatusCode::kNotFound);
}

TEST(CDupTest, AddVertexExtendsIdSpace) {
  CDupGraph g(MakeFigure1Graph());
  NodeId v = g.AddVertex();
  EXPECT_EQ(v, 5u);
  EXPECT_TRUE(g.VertexExists(v));
  EXPECT_TRUE(g.AddEdge(v, 0).ok());
  EXPECT_TRUE(g.ExistsEdge(v, 0));
}

// ---------- EXP ----------

TEST(ExpandedTest, ExpandCondensedMatchesOracle) {
  CondensedStorage s = MakeFigure1Graph();
  ExpandedGraph g = ExpandCondensed(s);
  EXPECT_EQ(EdgeSetOf(g), s.ExpandedEdgeSet());
  EXPECT_EQ(g.CountStoredEdges(), 14u);
  EXPECT_EQ(g.NumVirtualNodes(), 0u);
}

TEST(ExpandedTest, MutationsAndExistence) {
  ExpandedGraph g(4);
  EXPECT_TRUE(g.AddEdge(0, 1).ok());
  EXPECT_TRUE(g.AddEdge(0, 1).ok());  // idempotent
  EXPECT_EQ(g.CountStoredEdges(), 1u);
  EXPECT_TRUE(g.ExistsEdge(0, 1));
  EXPECT_FALSE(g.ExistsEdge(1, 0));
  EXPECT_TRUE(g.DeleteEdge(0, 1).ok());
  EXPECT_EQ(g.DeleteEdge(0, 1).code(), StatusCode::kNotFound);
  EXPECT_FALSE(g.AddEdge(0, 9).ok());
}

TEST(ExpandedTest, DeleteVertexHidesEdges) {
  ExpandedGraph g(3);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  ASSERT_TRUE(g.DeleteVertex(1).ok());
  EXPECT_FALSE(g.ExistsEdge(0, 1));
  EXPECT_EQ(g.OutDegree(0), 0u);
  EXPECT_EQ(g.CountStoredEdges(), 0u);
  EXPECT_EQ(g.NumActiveVertices(), 2u);
}

TEST(ExpandedTest, CompactFoldsPatchOverlay) {
  CondensedStorage s = MakeFigure1Graph();
  ExpandedGraph g = ExpandCondensed(s);
  ASSERT_TRUE(g.HasFlatAdjacency());
  EXPECT_EQ(g.PatchedVertices(), 0u);
  EXPECT_EQ(g.Compact(), 0u);  // nothing to fold

  NodeId fresh = g.AddVertex();
  ASSERT_TRUE(g.AddEdge(fresh, 0).ok());
  ASSERT_TRUE(g.AddEdge(0, fresh).ok());
  EXPECT_GT(g.PatchedVertices(), 0u);
  EXPECT_GT(g.PatchOverlayBytes(), 0u);
  const size_t overlay_footprint = g.MemoryFootprint().Total();

  auto before = EdgeSetOf(g);
  EXPECT_GT(g.Compact(), 0u);
  EXPECT_EQ(g.PatchedVertices(), 0u);
  EXPECT_EQ(g.PatchOverlayBytes(), 0u);
  EXPECT_TRUE(g.HasFlatAdjacency());
  EXPECT_EQ(EdgeSetOf(g), before);
  // The overlay's hash-map overhead is gone from the footprint.
  EXPECT_LT(g.MemoryFootprint().Total(), overlay_footprint);
}

TEST(ExpandedTest, CompactScrubsStaleDeletions) {
  CondensedStorage s = MakeFigure1Graph();
  ExpandedGraph g = ExpandCondensed(s);
  ASSERT_TRUE(g.DeleteVertex(1).ok());
  EXPECT_FALSE(g.HasFlatAdjacency());  // stale targets linger in the lists
  auto before = EdgeSetOf(g);
  g.Compact();
  EXPECT_TRUE(g.HasFlatAdjacency());
  EXPECT_EQ(EdgeSetOf(g), before);
}

TEST(ExpandedTest, ExpanderPropagatesDeletions) {
  CondensedStorage s = MakeFigure1Graph();
  s.DeleteRealNode(4);
  ExpandedGraph g = ExpandCondensed(s);
  EXPECT_FALSE(g.VertexExists(4));
  EXPECT_EQ(g.NeighborList(3), g.NeighborList(3));
  EXPECT_FALSE(g.ExistsEdge(3, 4));
}

// ---------- DEDUP-1 semantics (via a hand-built duplicate-free graph) ----

Dedup1Graph MakeHandDedup1() {
  // p1 = {a1,a2,a3,a4}; p3 = {a4,a5}: no duplication.
  CondensedStorage g;
  g.AddRealNodes(5);
  uint32_t p1 = g.AddVirtualNode();
  uint32_t p3 = g.AddVirtualNode();
  for (NodeId a : {0, 1, 2, 3}) AddMember(g, a, p1);
  for (NodeId a : {3, 4}) AddMember(g, a, p3);
  return Dedup1Graph(std::move(g));
}

TEST(Dedup1Test, PlainTraversalNoHashSet) {
  Dedup1Graph g = MakeHandDedup1();
  EXPECT_TRUE(IsDuplicateFree(g));
  std::vector<NodeId> n = g.Neighbors(3)->ToList();
  std::sort(n.begin(), n.end());
  EXPECT_EQ(n, (std::vector<NodeId>{0, 1, 2, 4}));
}

TEST(Dedup1Test, AddEdgePreservesInvariant) {
  Dedup1Graph g = MakeHandDedup1();
  EXPECT_TRUE(g.AddEdge(0, 3).ok());  // exists via p1: must not duplicate
  EXPECT_TRUE(IsDuplicateFree(g));
  EXPECT_TRUE(g.AddEdge(0, 4).ok());
  EXPECT_TRUE(g.ExistsEdge(0, 4));
  EXPECT_TRUE(IsDuplicateFree(g));
}

TEST(Dedup1Test, DeleteEdgeKeepsOthersAndInvariant) {
  Dedup1Graph g = MakeHandDedup1();
  EXPECT_TRUE(g.DeleteEdge(3, 0).ok());
  EXPECT_FALSE(g.ExistsEdge(3, 0));
  EXPECT_TRUE(g.ExistsEdge(3, 1));
  EXPECT_TRUE(g.ExistsEdge(3, 4));
  EXPECT_TRUE(IsDuplicateFree(g));
}

// ---------- BITMAP representation mechanics ----------

TEST(BitmapGraphTest, BitmapsSuppressDuplicates) {
  CondensedStorage s = MakeFigure1Graph();
  auto bg = BuildBitmap1(s);
  ASSERT_TRUE(bg.ok());
  EXPECT_TRUE(IsDuplicateFree(*bg));
  EXPECT_EQ(EdgeSetOf(*bg), s.ExpandedEdgeSet());
  EXPECT_GT(bg->NumBitmaps(), 0u);
  EXPECT_GT(bg->BitmapMemoryBytes(), 0u);
}

TEST(BitmapGraphTest, DeleteEdgeClearsBit) {
  CondensedStorage s = MakeFigure1Graph();
  auto bg = BuildBitmap1(s);
  ASSERT_TRUE(bg.ok());
  uint64_t stored = bg->CountStoredEdges();
  EXPECT_TRUE(bg->DeleteEdge(0, 3).ok());
  EXPECT_FALSE(bg->ExistsEdge(0, 3));
  EXPECT_TRUE(bg->ExistsEdge(0, 1));
  EXPECT_TRUE(bg->ExistsEdge(3, 0));
  // Structural edges unchanged: the deletion lives in the bitmap.
  EXPECT_EQ(bg->CountStoredEdges(), stored);
  EXPECT_TRUE(IsDuplicateFree(*bg));
}

TEST(BitmapGraphTest, AddEdgeDirect) {
  CondensedStorage s = MakeFigure1Graph();
  auto bg = BuildBitmap1(s);
  ASSERT_TRUE(bg.ok());
  EXPECT_TRUE(bg->AddEdge(0, 4).ok());
  EXPECT_TRUE(bg->ExistsEdge(0, 4));
  EXPECT_TRUE(IsDuplicateFree(*bg));
}

TEST(BitmapGraphTest, DeleteVertexLazy) {
  CondensedStorage s = MakeFigure1Graph();
  auto bg = BuildBitmap2(s);
  ASSERT_TRUE(bg.ok());
  EXPECT_TRUE(bg->DeleteVertex(3).ok());
  EXPECT_FALSE(bg->ExistsEdge(0, 3));
  EXPECT_TRUE(IsDuplicateFree(*bg));
}

// ---------- DEDUP-2 representation mechanics ----------

TEST(Dedup2GraphTest, OneHopSemantics) {
  Dedup2Graph g(6);
  uint32_t w1 = g.AddVirtualNode({0, 1});
  uint32_t w2 = g.AddVirtualNode({2, 3});
  g.AddVirtualNode({4, 5});  // w3, disconnected from w1/w2
  g.AddVirtualEdge(w1, w2);
  // 0 is connected to 1 (same node) and to 2, 3 (1 hop), not to 4, 5.
  std::vector<NodeId> n = g.NeighborList(0);
  std::sort(n.begin(), n.end());
  EXPECT_EQ(n, (std::vector<NodeId>{1, 2, 3}));
  EXPECT_TRUE(g.ExistsEdge(0, 2));
  EXPECT_FALSE(g.ExistsEdge(0, 4));
  EXPECT_TRUE(IsDuplicateFree(g));
  // Undirected edge count: 6 membership + 1 virtual-virtual.
  EXPECT_EQ(g.CountStoredEdges(), 7u);
}

TEST(Dedup2GraphTest, AddEdgeCreatesPairNode) {
  Dedup2Graph g(4);
  g.AddVirtualNode({0, 1});
  size_t before = g.NumVirtualNodes();
  EXPECT_TRUE(g.AddEdge(0, 1).ok());  // exists: no-op
  EXPECT_EQ(g.NumVirtualNodes(), before);
  EXPECT_TRUE(g.AddEdge(2, 3).ok());
  EXPECT_EQ(g.NumVirtualNodes(), before + 1);
  EXPECT_TRUE(g.ExistsEdge(2, 3));
  EXPECT_TRUE(g.ExistsEdge(3, 2));  // undirected
}

TEST(Dedup2GraphTest, DeleteEdgeCompensates) {
  Dedup2Graph g(4);
  g.AddVirtualNode({0, 1, 2, 3});
  EXPECT_TRUE(g.DeleteEdge(0, 1).ok());
  EXPECT_FALSE(g.ExistsEdge(0, 1));
  EXPECT_FALSE(g.ExistsEdge(1, 0));
  // 0 keeps its other neighbors.
  EXPECT_TRUE(g.ExistsEdge(0, 2));
  EXPECT_TRUE(g.ExistsEdge(0, 3));
  EXPECT_TRUE(g.ExistsEdge(2, 0));
  EXPECT_TRUE(IsDuplicateFree(g));
}

TEST(Dedup2GraphTest, DeleteEdgeAcrossVirtualEdge) {
  Dedup2Graph g(4);
  uint32_t w1 = g.AddVirtualNode({0, 1});
  uint32_t w2 = g.AddVirtualNode({2, 3});
  g.AddVirtualEdge(w1, w2);
  EXPECT_TRUE(g.DeleteEdge(0, 2).ok());
  EXPECT_FALSE(g.ExistsEdge(0, 2));
  EXPECT_TRUE(g.ExistsEdge(0, 1));
  EXPECT_TRUE(g.ExistsEdge(0, 3));
  EXPECT_TRUE(g.ExistsEdge(1, 2));
  EXPECT_TRUE(IsDuplicateFree(g));
}

TEST(Dedup2GraphTest, DeleteVertexConstantTime) {
  Dedup2Graph g(3);
  g.AddVirtualNode({0, 1, 2});
  EXPECT_TRUE(g.DeleteVertex(1).ok());
  EXPECT_FALSE(g.VertexExists(1));
  std::vector<NodeId> n = g.NeighborList(0);
  EXPECT_EQ(n, (std::vector<NodeId>{2}));
}

// ---------- Cross-representation equivalence (property sweep) ----------

struct EquivParam {
  size_t reals;
  size_t virtuals;
  double mean;
  uint64_t seed;
};

class EquivalenceTest : public ::testing::TestWithParam<EquivParam> {};

TEST_P(EquivalenceTest, AllRepresentationsAgree) {
  const EquivParam p = GetParam();
  CondensedStorage s =
      MakeRandomSymmetric(p.reals, p.virtuals, p.mean, p.seed);
  auto oracle = s.ExpandedEdgeSet();

  CDupGraph cdup(s);
  EXPECT_EQ(EdgeSetOf(cdup), oracle) << "C-DUP";

  ExpandedGraph exp = ExpandCondensed(s);
  EXPECT_EQ(EdgeSetOf(exp), oracle) << "EXP";

  auto bm1 = BuildBitmap1(s);
  ASSERT_TRUE(bm1.ok());
  EXPECT_EQ(EdgeSetOf(*bm1), oracle) << "BITMAP-1";
  EXPECT_TRUE(IsDuplicateFree(*bm1)) << "BITMAP-1";

  auto bm2 = BuildBitmap2(s);
  ASSERT_TRUE(bm2.ok());
  EXPECT_EQ(EdgeSetOf(*bm2), oracle) << "BITMAP-2";
  EXPECT_TRUE(IsDuplicateFree(*bm2)) << "BITMAP-2";

  auto d1 = GreedyVirtualNodesFirst(s);
  ASSERT_TRUE(d1.ok());
  EXPECT_EQ(EdgeSetOf(*d1), oracle) << "DEDUP-1";
  EXPECT_TRUE(IsDuplicateFree(*d1)) << "DEDUP-1";

  auto d2 = BuildDedup2(s);
  ASSERT_TRUE(d2.ok());
  EXPECT_EQ(EdgeSetOf(*d2), oracle) << "DEDUP-2";
  EXPECT_TRUE(IsDuplicateFree(*d2)) << "DEDUP-2";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EquivalenceTest,
    ::testing::Values(EquivParam{30, 12, 4, 1}, EquivParam{50, 30, 3, 2},
                      EquivParam{80, 10, 12, 3}, EquivParam{100, 60, 5, 4},
                      EquivParam{40, 4, 20, 5}, EquivParam{200, 80, 6, 6}),
    [](const ::testing::TestParamInfo<EquivParam>& info) {
      const EquivParam& p = info.param;
      return "r" + std::to_string(p.reals) + "_v" +
             std::to_string(p.virtuals) + "_s" + std::to_string(p.seed);
    });

}  // namespace
}  // namespace graphgen
