#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "gen/relational_generators.h"
#include "planner/extractor.h"
#include "planner/join_analysis.h"
#include "planner/preprocess.h"
#include "planner/segmenter.h"
#include "repr/cdup_graph.h"
#include "test_util.h"

namespace graphgen::planner {
namespace {

using rel::Database;
using rel::Schema;
using rel::Table;
using rel::Value;
using rel::ValueType;

// The Figure 1 toy database: authors a1..a5 (ids 1..5), pubs p1..p3,
// memberships p1={1,2,3,4}, p2={1,3,4}, p3={4,5}.
Database MakeToyDblp() {
  Database db;
  Table authors("Author", Schema({{"id", ValueType::kInt64},
                                  {"name", ValueType::kString}}));
  for (int64_t i = 1; i <= 5; ++i) {
    authors.AppendUnchecked({Value(i), Value("a" + std::to_string(i))});
  }
  db.PutTable(std::move(authors));
  Table ap("AuthorPub", Schema({{"aid", ValueType::kInt64},
                                {"pid", ValueType::kInt64}}));
  for (int64_t a : {1, 2, 3, 4}) ap.AppendUnchecked({Value(a), Value(int64_t{1})});
  for (int64_t a : {1, 3, 4}) ap.AppendUnchecked({Value(a), Value(int64_t{2})});
  for (int64_t a : {4, 5}) ap.AppendUnchecked({Value(a), Value(int64_t{3})});
  db.PutTable(std::move(ap));
  return db;
}

constexpr char kQ1[] =
    "Nodes(ID, Name) :- Author(ID, Name).\n"
    "Edges(ID1, ID2) :- AuthorPub(ID1, P), AuthorPub(ID2, P).";

TEST(JoinAnalysisTest, Q1SelfJoinChain) {
  Database db = MakeToyDblp();
  auto program = dsl::Parse(kQ1);
  ASSERT_TRUE(program.ok());
  auto chain = AnalyzeEdgesRule(program->edges_rules[0], db, 2.0);
  ASSERT_TRUE(chain.ok()) << chain.status().ToString();
  ASSERT_EQ(chain->atoms.size(), 2u);
  EXPECT_EQ(chain->atoms[0].in_col, 0u);   // ID1
  EXPECT_EQ(chain->atoms[0].out_col, 1u);  // P
  EXPECT_EQ(chain->atoms[1].in_col, 1u);   // P
  EXPECT_EQ(chain->atoms[1].out_col, 0u);  // ID2
  ASSERT_EQ(chain->boundaries.size(), 1u);
  EXPECT_EQ(chain->boundaries[0].variable, "P");
  EXPECT_EQ(chain->boundaries[0].distinct_values, 3u);
}

TEST(JoinAnalysisTest, LargeOutputFormula) {
  Database db = MakeToyDblp();
  auto program = dsl::Parse(kQ1);
  ASSERT_TRUE(program.ok());
  // |R||R|/d = 81/3 = 27; 2(|R|+|R|) = 36: not large at factor 2...
  auto chain = AnalyzeEdgesRule(program->edges_rules[0], db, 2.0);
  ASSERT_TRUE(chain.ok());
  EXPECT_FALSE(chain->boundaries[0].large_output);
  // ...but large at a lower factor, and always large when forced.
  auto forced = AnalyzeEdgesRule(program->edges_rules[0], db, 0.0);
  ASSERT_TRUE(forced.ok());
  EXPECT_TRUE(forced->boundaries[0].large_output);
  auto low = AnalyzeEdgesRule(program->edges_rules[0], db, 1.0);
  ASSERT_TRUE(low.ok());
  EXPECT_TRUE(low->boundaries[0].large_output);
}

TEST(JoinAnalysisTest, Q2FourAtomChainOrdering) {
  gen::GeneratedDatabase d = gen::MakeTpchLike(20, 60, 10, 2.0);
  auto program = dsl::Parse(d.datalog);
  ASSERT_TRUE(program.ok()) << d.datalog;
  auto chain = AnalyzeEdgesRule(program->edges_rules[0], d.db, 2.0);
  ASSERT_TRUE(chain.ok()) << chain.status().ToString();
  ASSERT_EQ(chain->atoms.size(), 4u);
  EXPECT_EQ(chain->atoms[0].atom->relation, "Orders");
  EXPECT_EQ(chain->atoms[1].atom->relation, "LineItem");
  EXPECT_EQ(chain->atoms[2].atom->relation, "LineItem");
  EXPECT_EQ(chain->atoms[3].atom->relation, "Orders");
  ASSERT_EQ(chain->boundaries.size(), 3u);
  EXPECT_EQ(chain->boundaries[1].variable, "PK");
}

TEST(JoinAnalysisTest, ConstantArgsBecomePredicates) {
  Database db = MakeToyDblp();
  auto program = dsl::Parse(
      "Nodes(ID) :- Author(ID, _).\n"
      "Edges(ID1, ID2) :- AuthorPub(ID1, 1), AuthorPub(ID2, 1).");
  ASSERT_TRUE(program.ok());
  // Constant join value: both atoms filtered; join var still P? No — the
  // shared variable disappears, so the chain cannot be built.
  auto chain = AnalyzeEdgesRule(program->edges_rules[0], db, 2.0);
  EXPECT_FALSE(chain.ok());
}

TEST(JoinAnalysisTest, ComparisonsAttach) {
  Database db = MakeToyDblp();
  auto program = dsl::Parse(
      "Nodes(ID) :- Author(ID, _).\n"
      "Edges(ID1, ID2) :- AuthorPub(ID1, P), AuthorPub(ID2, P), P >= 2, "
      "ID1 != ID2.");
  ASSERT_TRUE(program.ok());
  auto chain = AnalyzeEdgesRule(program->edges_rules[0], db, 2.0);
  ASSERT_TRUE(chain.ok()) << chain.status().ToString();
  EXPECT_FALSE(chain->atoms[0].predicates.empty());
}

TEST(SegmenterTest, NoLargeJoinsSingleSegment) {
  Database db = MakeToyDblp();
  auto program = dsl::Parse(kQ1);
  ASSERT_TRUE(program.ok());
  auto chain = AnalyzeEdgesRule(program->edges_rules[0], db, 2.0);
  ASSERT_TRUE(chain.ok());
  auto segments = BuildSegments(*chain);
  ASSERT_TRUE(segments.ok());
  EXPECT_EQ(segments->size(), 1u);
  EXPECT_NE((*segments)[0].sql.find("DISTINCT"), std::string::npos);
}

TEST(SegmenterTest, LargeJoinSplitsSegments) {
  Database db = MakeToyDblp();
  auto program = dsl::Parse(kQ1);
  ASSERT_TRUE(program.ok());
  auto chain = AnalyzeEdgesRule(program->edges_rules[0], db, 0.0);
  ASSERT_TRUE(chain.ok());
  auto segments = BuildSegments(*chain);
  ASSERT_TRUE(segments.ok());
  EXPECT_EQ(segments->size(), 2u);
}

TEST(ExtractorTest, ToyDblpCondensed) {
  Database db = MakeToyDblp();
  ExtractOptions opts;
  opts.large_output_factor = 0.0;  // force condensed
  opts.preprocess = false;
  auto result = ExtractFromQuery(db, kQ1, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->real_nodes, 5u);
  EXPECT_EQ(result->virtual_nodes, 3u);
  // Memberships 4 + 3 + 2 in both directions.
  EXPECT_EQ(result->condensed_edges, 18u);
  // The expanded co-author relation matches the Figure 1c oracle.
  CondensedStorage expected = graphgen::testing::MakeFigure1Graph();
  // Map: our toy uses external ids 1..5 in insertion order => same order.
  EXPECT_EQ(result->storage.ExpandedEdgeSet(), expected.ExpandedEdgeSet());
  EXPECT_EQ(result->storage.CountExpandedEdges(), 14u);
}

TEST(ExtractorTest, ToyDblpExpandedWhenJoinsAreSmall) {
  Database db = MakeToyDblp();
  ExtractOptions opts;
  opts.preprocess = false;  // factor 2.0: join is small-output
  auto result = ExtractFromQuery(db, kQ1, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->virtual_nodes, 0u);
  CondensedStorage expected = graphgen::testing::MakeFigure1Graph();
  EXPECT_EQ(result->storage.ExpandedEdgeSet(), expected.ExpandedEdgeSet());
}

TEST(ExtractorTest, NodePropertiesAndExternalKeys) {
  Database db = MakeToyDblp();
  ExtractOptions opts;
  opts.preprocess = false;
  auto result = ExtractFromQuery(db, kQ1, opts);
  ASSERT_TRUE(result.ok());
  const PropertyTable& props = result->storage.properties();
  EXPECT_EQ(props.GetByName(0, "Name").value(), "'a1'");
  EXPECT_EQ(props.ExternalKey(4), "5");
}

TEST(ExtractorTest, HeterogeneousBipartiteQ3) {
  gen::GeneratedDatabase d = gen::MakeUniversity(30, 5, 10, 2.0);
  const char* q3 =
      "Nodes(ID, Name) :- Instructor(ID, Name).\n"
      "Nodes(ID, Name) :- Student(ID, Name).\n"
      "Edges(ID1, ID2) :- TaughtCourse(ID1, C), TookCourse(ID2, C).";
  ExtractOptions opts;
  opts.large_output_factor = 0.0;
  opts.preprocess = false;
  auto result = ExtractFromQuery(d.db, q3, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->real_nodes, 35u);
  EXPECT_GT(result->virtual_nodes, 0u);
  // Bipartite: only instructor -> student logical edges. Instructors were
  // created first (ids 0..4).
  CDupGraph g(std::move(result->storage));
  g.ForEachVertex([&](NodeId u) {
    g.ForEachNeighbor(u, [&](NodeId v) {
      EXPECT_LT(u, 5u);
      EXPECT_GE(v, 5u);
    });
  });
}

TEST(ExtractorTest, MultiLayerTpchChain) {
  gen::GeneratedDatabase d = gen::MakeTpchLike(30, 100, 12, 2.5);
  ExtractOptions opts;
  opts.large_output_factor = 0.0;  // all three boundaries condensed
  opts.preprocess = false;
  auto result = ExtractFromQuery(d.db, d.datalog, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->storage.IsSingleLayer());
  EXPECT_TRUE(result->storage.IsAcyclic());
  // Oracle: same query extracted fully expanded.
  ExtractOptions expand;
  expand.large_output_factor = 1e18;  // nothing is large-output
  expand.preprocess = false;
  auto full = ExtractFromQuery(d.db, d.datalog, expand);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->virtual_nodes, 0u);
  EXPECT_EQ(result->storage.ExpandedEdgeSet(), full->storage.ExpandedEdgeSet());
}

TEST(ExtractorTest, MultipleEdgesRulesUnion) {
  gen::GeneratedDatabase d = gen::MakeUniversity(20, 4, 8, 2.0);
  const char* program =
      "Nodes(ID, Name) :- Student(ID, Name).\n"
      "Nodes(ID, Name) :- Instructor(ID, Name).\n"
      "Edges(ID1, ID2) :- TookCourse(ID1, C), TookCourse(ID2, C).\n"
      "Edges(ID1, ID2) :- TaughtCourse(ID1, C), TookCourse(ID2, C).";
  ExtractOptions opts;
  opts.large_output_factor = 0.0;
  opts.preprocess = false;
  auto result = ExtractFromQuery(d.db, program, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Both rules contributed: students co-enrolled AND instructor->student.
  CDupGraph g(std::move(result->storage));
  bool instructor_edge = false;
  g.ForEachVertex([&](NodeId u) {
    if (u < 20) return;  // instructors have ids >= 20 (students first)
    if (g.OutDegree(u) > 0) instructor_edge = true;
  });
  EXPECT_TRUE(instructor_edge);
}

TEST(ExtractorTest, SelectionPredicatePushdown) {
  Database db = MakeToyDblp();
  const char* query =
      "Nodes(ID, Name) :- Author(ID, Name).\n"
      "Edges(ID1, ID2) :- AuthorPub(ID1, P), AuthorPub(ID2, P), P < 3.";
  ExtractOptions opts;
  opts.large_output_factor = 0.0;
  opts.preprocess = false;
  auto result = ExtractFromQuery(db, query, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Only p1 and p2 qualify: a5 (node 4) has no edges.
  EXPECT_EQ(result->virtual_nodes, 2u);
  CDupGraph g(std::move(result->storage));
  EXPECT_EQ(g.OutDegree(4), 0u);
}

TEST(ExtractorTest, DanglingForeignKeysIgnored) {
  Database db = MakeToyDblp();
  // Add a membership row for an author id that has no Author row.
  Table* ap = db.GetMutableTable("AuthorPub").ValueOrDie();
  ap->AppendUnchecked({Value(int64_t{99}), Value(int64_t{1})});
  ASSERT_TRUE(db.Analyze("AuthorPub").ok());
  ExtractOptions opts;
  opts.large_output_factor = 0.0;
  opts.preprocess = false;
  auto result = ExtractFromQuery(db, kQ1, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->real_nodes, 5u);
}

TEST(ExtractorTest, RejectsInvalidPrograms) {
  Database db = MakeToyDblp();
  EXPECT_FALSE(ExtractFromQuery(db, "garbage(", {}).ok());
  EXPECT_FALSE(
      ExtractFromQuery(db,
                       "Nodes(ID) :- Missing(ID).\n"
                       "Edges(A, B) :- AuthorPub(A, P), AuthorPub(B, P).",
                       {})
          .ok());
}

TEST(ExtractorTest, GeneratesSqlText) {
  Database db = MakeToyDblp();
  ExtractOptions opts;
  opts.large_output_factor = 0.0;
  auto result = ExtractFromQuery(db, kQ1, opts);
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->sql.size(), 3u);  // 1 nodes query + 2 segment queries
  EXPECT_NE(result->sql[0].find("Author"), std::string::npos);
}

TEST(ExtractorTest, CountConstraintMultiPaperCoAuthors) {
  // "Co-authored at least 2 papers": in the Figure 1 toy data only the
  // pairs within {a1, a3, a4} share both p1 and p2.
  Database db = MakeToyDblp();
  const char* query =
      "Nodes(ID, Name) :- Author(ID, Name).\n"
      "Edges(ID1, ID2) :- AuthorPub(ID1, P), AuthorPub(ID2, P), "
      "COUNT(P) >= 2.";
  auto result = ExtractFromQuery(db, query, {});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->virtual_nodes, 0u);  // Case 2: full join, direct edges
  auto edges = result->storage.ExpandedEdgeSet();
  // ids: a1=0, a3=2, a4=3 (insertion order of Author rows).
  std::vector<std::pair<NodeId, NodeId>> expected = {
      {0, 2}, {0, 3}, {2, 0}, {2, 3}, {3, 0}, {3, 2}};
  EXPECT_EQ(edges, expected);
}

TEST(ExtractorTest, CountConstraintExactAndUpperBounds) {
  Database db = MakeToyDblp();
  // Exactly one shared paper: all co-author pairs except the {a1,a3,a4}
  // triangle.
  auto result = ExtractFromQuery(
      db,
      "Nodes(ID, Name) :- Author(ID, Name).\n"
      "Edges(ID1, ID2) :- AuthorPub(ID1, P), AuthorPub(ID2, P), "
      "COUNT(P) = 1.",
      {});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Full co-author graph has 14 directed edges; 6 of them have 2 shared
  // papers, so 8 remain.
  EXPECT_EQ(result->storage.ExpandedEdgeSet().size(), 8u);
}

TEST(ExtractorTest, CountConstraintOnMultiAtomChain) {
  // Customers who bought the same part in >= 2 distinct orders... of the
  // other customer: count distinct shared part keys per pair.
  gen::GeneratedDatabase d = gen::MakeTpchLike(15, 60, 8, 3.0);
  std::string query =
      "Nodes(ID, Name) :- Customer(ID, Name).\n"
      "Edges(ID1, ID2) :- Orders(OK1, ID1), LineItem(OK1, PK), "
      "LineItem(OK2, PK), Orders(OK2, ID2), COUNT(PK) >= 2.";
  auto strict = ExtractFromQuery(d.db, query, {});
  ASSERT_TRUE(strict.ok()) << strict.status().ToString();
  auto loose = ExtractFromQuery(
      d.db,
      "Nodes(ID, Name) :- Customer(ID, Name).\n"
      "Edges(ID1, ID2) :- Orders(OK1, ID1), LineItem(OK1, PK), "
      "LineItem(OK2, PK), Orders(OK2, ID2).",
      {});
  ASSERT_TRUE(loose.ok());
  // Thresholded graph is a subgraph of the unconstrained one.
  auto strict_edges = strict->storage.ExpandedEdgeSet();
  auto loose_edges = loose->storage.ExpandedEdgeSet();
  EXPECT_LT(strict_edges.size(), loose_edges.size());
  for (const auto& e : strict_edges) {
    EXPECT_TRUE(std::binary_search(loose_edges.begin(), loose_edges.end(), e));
  }
}

TEST(PreprocessTest, ExpandsTinyVirtualNodes) {
  // A virtual node with in=1/out=1 is always expanded (1 <= 3).
  CondensedStorage g;
  g.AddRealNodes(3);
  uint32_t v = g.AddVirtualNode();
  g.AddEdge(NodeRef::Real(0), NodeRef::Virtual(v));
  g.AddEdge(NodeRef::Virtual(v), NodeRef::Real(1));
  auto before = g.ExpandedEdgeSet();
  PreprocessResult r = ExpandSmallVirtualNodes(g);
  EXPECT_EQ(r.expanded_virtual_nodes, 1u);
  EXPECT_EQ(g.NumVirtualNodes(), 0u);
  EXPECT_EQ(g.ExpandedEdgeSet(), before);
}

TEST(PreprocessTest, KeepsLargeVirtualNodes) {
  CondensedStorage g;
  g.AddRealNodes(10);
  uint32_t v = g.AddVirtualNode();
  for (NodeId u = 0; u < 10; ++u) graphgen::testing::AddMember(g, u, v);
  // in = out = 10: 100 > 21, keep.
  PreprocessResult r = ExpandSmallVirtualNodes(g);
  EXPECT_EQ(r.expanded_virtual_nodes, 0u);
  EXPECT_EQ(g.NumVirtualNodes(), 1u);
}

TEST(PreprocessTest, PreservesEdgeSetOnRandomGraphs) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    CondensedStorage g = graphgen::testing::MakeRandomSymmetric(60, 30, 3, seed);
    auto before = g.ExpandedEdgeSet();
    ExpandSmallVirtualNodes(g);
    EXPECT_EQ(g.ExpandedEdgeSet(), before) << seed;
  }
}

TEST(PreprocessTest, ShouldExpandDecision) {
  // A sparse graph: expansion is cheap.
  CondensedStorage sparse;
  sparse.AddRealNodes(4);
  uint32_t v = sparse.AddVirtualNode();
  graphgen::testing::AddMember(sparse, 0, v);
  graphgen::testing::AddMember(sparse, 1, v);
  EXPECT_TRUE(ShouldExpand(sparse, 0.2));
  // A dense clique: expansion is quadratic.
  CondensedStorage dense;
  dense.AddRealNodes(64);
  uint32_t w = dense.AddVirtualNode();
  for (NodeId u = 0; u < 64; ++u) graphgen::testing::AddMember(dense, u, w);
  EXPECT_FALSE(ShouldExpand(dense, 0.2));
}

// Appendix A: the factorization F1 (with PubID kept) is exactly C-DUP;
// projecting PubID away (F2) forces the expanded listing.
TEST(FactorizationTest, CdupMatchesF1SizeAndExpMatchesF2) {
  Database db = MakeToyDblp();
  ExtractOptions opts;
  opts.large_output_factor = 0.0;
  opts.preprocess = false;
  auto condensed = ExtractFromQuery(db, kQ1, opts);
  ASSERT_TRUE(condensed.ok());
  // F1 size is linear in |AuthorPub| (9 rows -> 18 directed memberships).
  EXPECT_EQ(condensed->condensed_edges, 2u * 9u);
  // F2 (projection) must enumerate all co-author pairs: 14 > 9 rows.
  EXPECT_EQ(condensed->storage.CountExpandedEdges(), 14u);
}

}  // namespace
}  // namespace graphgen::planner
