#include <gtest/gtest.h>

#include "algos/connected_components.h"
#include "algos/degree.h"
#include "algos/pagerank.h"
#include "bsp/bsp_programs.h"
#include "dedup/bitmap_algorithms.h"
#include "dedup/dedup1_algorithms.h"
#include "repr/cdup_graph.h"
#include "repr/expander.h"
#include "test_util.h"

namespace graphgen::bsp {
namespace {

using graphgen::testing::MakeRandomSymmetric;

struct ReprSet {
  ExpandedGraph exp;
  Dedup1Graph dedup1;
  BitmapGraph bitmap;
};

ReprSet MakeSetup(uint64_t seed) {
  CondensedStorage s = MakeRandomSymmetric(60, 20, 6, seed);
  auto d1 = GreedyVirtualNodesFirst(s);
  EXPECT_TRUE(d1.ok());
  auto bm = BuildBitmap2(s);
  EXPECT_TRUE(bm.ok());
  return ReprSet{ExpandCondensed(s), std::move(*d1), std::move(*bm)};
}

TEST(BspEngineTest, DegreeAgreesAcrossRepresentations) {
  ReprSet su = MakeSetup(1);
  std::vector<uint64_t> exp_deg;
  std::vector<uint64_t> d1_deg;
  std::vector<uint64_t> bm_deg;
  ASSERT_TRUE(MakeExpandedEngine(su.exp).RunDegree(&exp_deg).ok());
  ASSERT_TRUE(MakeDedup1Engine(su.dedup1).RunDegree(&d1_deg).ok());
  ASSERT_TRUE(MakeBitmapEngine(su.bitmap).RunDegree(&bm_deg).ok());
  EXPECT_EQ(exp_deg, d1_deg);
  EXPECT_EQ(exp_deg, bm_deg);
  // Cross-check against the vertex-centric implementation.
  EXPECT_EQ(exp_deg, ComputeDegrees(su.exp));
}

TEST(BspEngineTest, CondensedUsesTwiceTheSupersteps) {
  ReprSet su = MakeSetup(2);
  std::vector<uint64_t> tmp;
  auto exp_stats = MakeExpandedEngine(su.exp).RunDegree(&tmp);
  auto d1_stats = MakeDedup1Engine(su.dedup1).RunDegree(&tmp);
  ASSERT_TRUE(exp_stats.ok());
  ASSERT_TRUE(d1_stats.ok());
  EXPECT_EQ(exp_stats->supersteps, 1u);
  EXPECT_EQ(d1_stats->supersteps, 2u);
}

TEST(BspEngineTest, MessageCountBoundedByTwiceEdges) {
  ReprSet su = MakeSetup(3);
  std::vector<uint64_t> tmp;
  auto d1_stats = MakeDedup1Engine(su.dedup1).RunDegree(&tmp);
  ASSERT_TRUE(d1_stats.ok());
  EXPECT_LE(d1_stats->messages, su.dedup1.CountStoredEdges());
  auto bm_stats = MakeBitmapEngine(su.bitmap).RunDegree(&tmp);
  ASSERT_TRUE(bm_stats.ok());
  EXPECT_LE(bm_stats->messages, su.bitmap.CountStoredEdges());
}

TEST(BspEngineTest, PageRankAgreesAcrossRepresentations) {
  ReprSet su = MakeSetup(4);
  std::vector<double> exp_pr;
  std::vector<double> d1_pr;
  std::vector<double> bm_pr;
  ASSERT_TRUE(MakeExpandedEngine(su.exp).RunPageRank(8, 0.85, &exp_pr).ok());
  ASSERT_TRUE(MakeDedup1Engine(su.dedup1).RunPageRank(8, 0.85, &d1_pr).ok());
  ASSERT_TRUE(MakeBitmapEngine(su.bitmap).RunPageRank(8, 0.85, &bm_pr).ok());
  ASSERT_EQ(exp_pr.size(), d1_pr.size());
  for (size_t u = 0; u < exp_pr.size(); ++u) {
    EXPECT_NEAR(exp_pr[u], d1_pr[u], 1e-9) << u;
    EXPECT_NEAR(exp_pr[u], bm_pr[u], 1e-9) << u;
  }
  // And against the vertex-centric PageRank.
  std::vector<double> vc_pr = PageRank(su.exp, {.iterations = 8});
  for (size_t u = 0; u < exp_pr.size(); ++u) {
    EXPECT_NEAR(exp_pr[u], vc_pr[u], 1e-9) << u;
  }
}

TEST(BspEngineTest, PageRankSumsToOne) {
  ReprSet su = MakeSetup(5);
  std::vector<double> pr;
  ASSERT_TRUE(MakeDedup1Engine(su.dedup1).RunPageRank(10, 0.85, &pr).ok());
  double sum = 0;
  for (double r : pr) sum += r;
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(BspEngineTest, ConnectedComponentsAgree) {
  ReprSet su = MakeSetup(6);
  std::vector<NodeId> exp_cc;
  std::vector<NodeId> d1_cc;
  std::vector<NodeId> bm_cc;
  ASSERT_TRUE(MakeExpandedEngine(su.exp).RunConnectedComponents(&exp_cc).ok());
  ASSERT_TRUE(
      MakeDedup1Engine(su.dedup1).RunConnectedComponents(&d1_cc).ok());
  ASSERT_TRUE(MakeBitmapEngine(su.bitmap).RunConnectedComponents(&bm_cc).ok());
  EXPECT_EQ(exp_cc, d1_cc);
  EXPECT_EQ(exp_cc, bm_cc);
  EXPECT_EQ(exp_cc, ConnectedComponents(su.exp));
}

TEST(BspEngineTest, ConnectedComponentsRunsOnCDupDirectly) {
  // Duplicate-insensitive: no dedup needed (the §6.4 C-DUP fast path).
  CondensedStorage s = MakeRandomSymmetric(50, 15, 5, 7);
  ExpandedGraph exp = ExpandCondensed(s);
  std::vector<NodeId> cdup_cc;
  std::vector<NodeId> exp_cc;
  ASSERT_TRUE(BspEngine(BspGraph(&s)).RunConnectedComponents(&cdup_cc).ok());
  ASSERT_TRUE(MakeExpandedEngine(exp).RunConnectedComponents(&exp_cc).ok());
  EXPECT_EQ(cdup_cc, exp_cc);
}

TEST(BspEngineTest, RejectsMultiLayer) {
  gen::LayeredGenOptions o;
  o.num_real = 20;
  o.layer_sizes = {4, 2};
  CondensedStorage g = gen::GenerateLayeredCondensed(o);
  std::vector<uint64_t> tmp;
  EXPECT_EQ(BspEngine(BspGraph(&g)).RunDegree(&tmp).status().code(),
            StatusCode::kUnsupported);
}

TEST(BspEngineTest, BitmapMemoryIncludesBitmaps) {
  ReprSet su = MakeSetup(8);
  std::vector<uint64_t> tmp;
  auto bm_stats = MakeBitmapEngine(su.bitmap).RunDegree(&tmp);
  ASSERT_TRUE(bm_stats.ok());
  EXPECT_GE(bm_stats->memory_bytes, su.bitmap.storage().MemoryBytes());
}

}  // namespace
}  // namespace graphgen::bsp
