#include <gtest/gtest.h>

#include <cstdio>
#include <limits>

#include "planner/extractor.h"
#include "relational/csv_loader.h"

namespace graphgen::rel {
namespace {

TEST(CsvTest, ParsesHeaderAndTypes) {
  auto table = ParseCsv("T",
                        "id,name,score\n"
                        "1,ann,3.5\n"
                        "2,bob,4\n");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->NumRows(), 2u);
  EXPECT_EQ(table->schema().column(0).name, "id");
  EXPECT_EQ(table->schema().column(0).type, ValueType::kInt64);
  EXPECT_EQ(table->schema().column(1).type, ValueType::kString);
  // Mixed 3.5 / 4 widens to double.
  EXPECT_EQ(table->schema().column(2).type, ValueType::kDouble);
  EXPECT_EQ(table->row(0)[1].AsString(), "ann");
  EXPECT_EQ(table->row(1)[0].AsInt64(), 2);
}

TEST(CsvTest, NoHeaderNamesColumns) {
  CsvOptions opts;
  opts.header = false;
  auto table = ParseCsv("T", "1,2\n3,4\n", opts);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->schema().column(0).name, "c0");
  EXPECT_EQ(table->NumRows(), 2u);
}

TEST(CsvTest, QuotedFieldsAndEscapes) {
  auto table = ParseCsv("T",
                        "id,text\n"
                        "1,\"hello, world\"\n"
                        "2,\"she said \"\"hi\"\"\"\n");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->row(0)[1].AsString(), "hello, world");
  EXPECT_EQ(table->row(1)[1].AsString(), "she said \"hi\"");
}

TEST(CsvTest, EmptyFieldsBecomeNull) {
  auto table = ParseCsv("T", "a,b\n1,\n,2\n");
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(table->row(0)[1].is_null());
  EXPECT_TRUE(table->row(1)[0].is_null());
}

TEST(CsvTest, CustomDelimiter) {
  CsvOptions opts;
  opts.delimiter = '|';
  auto table = ParseCsv("T", "a|b\n1|2\n", opts);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->row(0)[0].AsInt64(), 1);
}

TEST(CsvTest, NoTypeInference) {
  CsvOptions opts;
  opts.infer_types = false;
  auto table = ParseCsv("T", "a\n42\n", opts);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->row(0)[0].type(), ValueType::kString);
}

TEST(CsvTest, RejectsRaggedRows) {
  EXPECT_FALSE(ParseCsv("T", "a,b\n1\n").ok());
}

TEST(CsvTest, RejectsUnterminatedQuote) {
  EXPECT_FALSE(ParseCsv("T", "a\n\"oops\n").ok());
}

TEST(CsvTest, RejectsEmptyInput) {
  EXPECT_FALSE(ParseCsv("T", "").ok());
}

TEST(CsvTest, CarriageReturnsStripped) {
  auto table = ParseCsv("T", "a,b\r\n1,2\r\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->row(0)[1].AsInt64(), 2);
}

TEST(CsvTest, QuotedFieldsEmbedNewlines) {
  // RFC 4180: a quoted field may contain line breaks; the record does not
  // end until the closing quote's line.
  auto table = ParseCsv("T",
                        "id,text\n"
                        "1,\"line one\nline two\"\n"
                        "2,plain\n");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->NumRows(), 2u);
  EXPECT_EQ(table->row(0)[1].AsString(), "line one\nline two");
  EXPECT_EQ(table->row(1)[1].AsString(), "plain");
}

TEST(CsvTest, CrlfWithQuotedNewlineAndEscapes) {
  auto table = ParseCsv("T",
                        "a,b\r\n"
                        "1,\"x\ny \"\"q\"\"\"\r\n"
                        "2,z\r\n");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->NumRows(), 2u);
  EXPECT_EQ(table->row(0)[1].AsString(), "x\ny \"q\"");
}

TEST(CsvTest, LeadingAndTrailingBlankLinesSkipped) {
  auto table = ParseCsv("T", "\n\na,b\n1,2\n3,4\n\n\n");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->NumRows(), 2u);
  EXPECT_EQ(table->schema().column(0).name, "a");
}

TEST(CsvTest, InteriorBlankLineRejected) {
  // Previously blank lines were silently dropped mid-file; now they
  // surface as an error naming the line.
  auto table = ParseCsv("T", "a,b\n1,2\n\n3,4\n");
  ASSERT_FALSE(table.ok());
  EXPECT_NE(table.status().message().find("blank line 3"), std::string::npos)
      << table.status().ToString();
}

TEST(CsvTest, Int64BoundsParseExactly) {
  auto table = ParseCsv("T",
                        "lo,hi\n"
                        "-9223372036854775808,9223372036854775807\n");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->schema().column(0).type, ValueType::kInt64);
  EXPECT_EQ(table->row(0)[0].AsInt64(),
            std::numeric_limits<int64_t>::min());
  EXPECT_EQ(table->row(0)[1].AsInt64(),
            std::numeric_limits<int64_t>::max());
}

TEST(CsvTest, OverflowingIntWidensToString) {
  // strtoll would silently clamp to LLONG_MAX, and a double would round
  // distinct 20-digit ids onto the same value; both corrupt join keys,
  // so out-of-range integers stay strings, preserved exactly.
  auto table = ParseCsv("T",
                        "k\n"
                        "18446744073709551616\n"
                        "18446744073709551617\n");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->schema().column(0).type, ValueType::kString);
  EXPECT_NE(table->row(0)[0], table->row(1)[0]);  // ids stay distinct
  EXPECT_EQ(table->row(0)[0].AsString(), "18446744073709551616");
}

TEST(CsvTest, NanInfHexFloatsStayStrings) {
  // NaN join keys silently drop rows (NaN != NaN), so inference must not
  // produce them; hex floats are not CSV numbers either.
  auto table = ParseCsv("T",
                        "a,b,c,d\n"
                        "nan,inf,-inf,0x1A\n");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  for (size_t c = 0; c < 4; ++c) {
    EXPECT_EQ(table->schema().column(c).type, ValueType::kString) << c;
  }
  EXPECT_EQ(table->row(0)[0].AsString(), "nan");
}

TEST(CsvTest, OverflowingExponentWidensToString) {
  auto table = ParseCsv("T", "a\n1e999\n");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->schema().column(0).type, ValueType::kString);
}

TEST(CsvTest, DecimalLiteralsStillInferDouble) {
  auto table = ParseCsv("T", "a,b,c\n-1.5,.5,2e3\n");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  for (size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(table->schema().column(c).type, ValueType::kDouble) << c;
  }
  EXPECT_DOUBLE_EQ(table->row(0)[2].AsDouble(), 2000.0);
}

TEST(CsvTest, NumericParsingIsLocaleIndependent) {
  // A comma-decimal locale would make strtod stop at the '.' and silently
  // store 3.0 for "3.5"; the from_chars-based parser always reads the full
  // C-locale literal or widens the column, regardless of the process
  // locale, and inference and append share one routine so a cell can
  // never change value between the two passes.
  auto table = ParseCsv("T",
                        "a,b\n"
                        "3.5,+4\n"
                        "-0.25,7\n");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->schema().column(0).type, ValueType::kDouble);
  EXPECT_EQ(table->schema().column(1).type, ValueType::kInt64);
  EXPECT_DOUBLE_EQ(table->row(0)[0].AsDouble(), 3.5);
  EXPECT_DOUBLE_EQ(table->row(1)[0].AsDouble(), -0.25);
  EXPECT_EQ(table->row(0)[1].AsInt64(), 4);
}

TEST(CsvTest, UnderflowingExponentRoundsToZeroLikeStrtod) {
  // |x| below the smallest double underflows toward zero (kept as a
  // double, matching strtod); only overflow widens the column to string.
  auto table = ParseCsv("T", "tiny,huge\n1e-400,1e400\n4.25,9\n");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->schema().column(0).type, ValueType::kDouble);
  EXPECT_EQ(table->schema().column(1).type, ValueType::kString);
  EXPECT_DOUBLE_EQ(table->row(0)[0].AsDouble(), 0.0);
  EXPECT_EQ(table->row(0)[1].AsString(), "1e400");
}

TEST(CsvTest, ExtremeExponentsClassifyWithoutOverflow) {
  // Exponents beyond int range must neither trip UB in the magnitude
  // estimate nor flip the under/overflow verdict: a vanishing literal
  // still rounds to 0.0 (strtod behavior), a huge one stays a string.
  auto table = ParseCsv(
      "T", "tiny,huge\n1e-99999999999999999999,13e2147483647\n0.5,7.5\n");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->schema().column(0).type, ValueType::kDouble);
  EXPECT_EQ(table->schema().column(1).type, ValueType::kString);
  EXPECT_DOUBLE_EQ(table->row(0)[0].AsDouble(), 0.0);
  EXPECT_EQ(table->row(0)[1].AsString(), "13e2147483647");
}

TEST(CsvTest, IntCellInDoubleColumnParsesUnderFinalType) {
  // Pass 1 widens the column to double; pass 2 must parse the int-looking
  // cell with the same routine the double cells use ("4" -> 4.0, and a
  // 19-digit int rounds to the nearest double rather than clamping).
  auto table = ParseCsv("T", "m\n4\n2.5\n9223372036854775807\n");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->schema().column(0).type, ValueType::kDouble);
  EXPECT_DOUBLE_EQ(table->row(0)[0].AsDouble(), 4.0);
  EXPECT_DOUBLE_EQ(table->row(1)[0].AsDouble(), 2.5);
  EXPECT_DOUBLE_EQ(table->row(2)[0].AsDouble(), 9223372036854775807.0);
}

TEST(CsvTest, RoundTripFileWithQuotedNewlines) {
  std::string path = ::testing::TempDir() + "/quoted.csv";
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("id,bio\n1,\"first\nsecond\"\n2,short\n", f);
    fclose(f);
  }
  Database db;
  auto loaded = LoadCsv(db, "People", path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->NumRows(), 2u);
  EXPECT_EQ((*loaded)->row(0)[1].AsString(), "first\nsecond");
  std::remove(path.c_str());
}

TEST(CsvTest, LoadCsvIntoDatabaseAndExtract) {
  std::string dir = ::testing::TempDir();
  std::string authors_path = dir + "/authors.csv";
  std::string ap_path = dir + "/ap.csv";
  {
    FILE* f = fopen(authors_path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("id,name\n1,ann\n2,bob\n3,cat\n", f);
    fclose(f);
    f = fopen(ap_path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("aid,pid\n1,10\n2,10\n2,20\n3,20\n", f);
    fclose(f);
  }
  Database db;
  ASSERT_TRUE(LoadCsv(db, "Author", authors_path).ok());
  ASSERT_TRUE(LoadCsv(db, "AuthorPub", ap_path).ok());
  EXPECT_TRUE(db.catalog().HasStats("AuthorPub"));

  planner::ExtractOptions opts;
  opts.large_output_factor = 0.0;
  opts.preprocess = false;
  auto result = planner::ExtractFromQuery(
      db,
      "Nodes(ID, Name) :- Author(ID, Name).\n"
      "Edges(ID1, ID2) :- AuthorPub(ID1, P), AuthorPub(ID2, P).",
      opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->real_nodes, 3u);
  EXPECT_EQ(result->virtual_nodes, 2u);
  // ann–bob via pub 10, bob–cat via pub 20: 4 directed edges.
  EXPECT_EQ(result->storage.CountExpandedEdges(), 4u);
  std::remove(authors_path.c_str());
  std::remove(ap_path.c_str());
}

TEST(CsvTest, LoadMissingFileFails) {
  Database db;
  EXPECT_EQ(LoadCsv(db, "T", "/no/such/file.csv").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace graphgen::rel
