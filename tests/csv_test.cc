#include <gtest/gtest.h>

#include <cstdio>

#include "planner/extractor.h"
#include "relational/csv_loader.h"

namespace graphgen::rel {
namespace {

TEST(CsvTest, ParsesHeaderAndTypes) {
  auto table = ParseCsv("T",
                        "id,name,score\n"
                        "1,ann,3.5\n"
                        "2,bob,4\n");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->NumRows(), 2u);
  EXPECT_EQ(table->schema().column(0).name, "id");
  EXPECT_EQ(table->schema().column(0).type, ValueType::kInt64);
  EXPECT_EQ(table->schema().column(1).type, ValueType::kString);
  // Mixed 3.5 / 4 widens to double.
  EXPECT_EQ(table->schema().column(2).type, ValueType::kDouble);
  EXPECT_EQ(table->row(0)[1].AsString(), "ann");
  EXPECT_EQ(table->row(1)[0].AsInt64(), 2);
}

TEST(CsvTest, NoHeaderNamesColumns) {
  CsvOptions opts;
  opts.header = false;
  auto table = ParseCsv("T", "1,2\n3,4\n", opts);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->schema().column(0).name, "c0");
  EXPECT_EQ(table->NumRows(), 2u);
}

TEST(CsvTest, QuotedFieldsAndEscapes) {
  auto table = ParseCsv("T",
                        "id,text\n"
                        "1,\"hello, world\"\n"
                        "2,\"she said \"\"hi\"\"\"\n");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->row(0)[1].AsString(), "hello, world");
  EXPECT_EQ(table->row(1)[1].AsString(), "she said \"hi\"");
}

TEST(CsvTest, EmptyFieldsBecomeNull) {
  auto table = ParseCsv("T", "a,b\n1,\n,2\n");
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(table->row(0)[1].is_null());
  EXPECT_TRUE(table->row(1)[0].is_null());
}

TEST(CsvTest, CustomDelimiter) {
  CsvOptions opts;
  opts.delimiter = '|';
  auto table = ParseCsv("T", "a|b\n1|2\n", opts);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->row(0)[0].AsInt64(), 1);
}

TEST(CsvTest, NoTypeInference) {
  CsvOptions opts;
  opts.infer_types = false;
  auto table = ParseCsv("T", "a\n42\n", opts);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->row(0)[0].type(), ValueType::kString);
}

TEST(CsvTest, RejectsRaggedRows) {
  EXPECT_FALSE(ParseCsv("T", "a,b\n1\n").ok());
}

TEST(CsvTest, RejectsUnterminatedQuote) {
  EXPECT_FALSE(ParseCsv("T", "a\n\"oops\n").ok());
}

TEST(CsvTest, RejectsEmptyInput) {
  EXPECT_FALSE(ParseCsv("T", "").ok());
}

TEST(CsvTest, CarriageReturnsStripped) {
  auto table = ParseCsv("T", "a,b\r\n1,2\r\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->row(0)[1].AsInt64(), 2);
}

TEST(CsvTest, LoadCsvIntoDatabaseAndExtract) {
  std::string dir = ::testing::TempDir();
  std::string authors_path = dir + "/authors.csv";
  std::string ap_path = dir + "/ap.csv";
  {
    FILE* f = fopen(authors_path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("id,name\n1,ann\n2,bob\n3,cat\n", f);
    fclose(f);
    f = fopen(ap_path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("aid,pid\n1,10\n2,10\n2,20\n3,20\n", f);
    fclose(f);
  }
  Database db;
  ASSERT_TRUE(LoadCsv(db, "Author", authors_path).ok());
  ASSERT_TRUE(LoadCsv(db, "AuthorPub", ap_path).ok());
  EXPECT_TRUE(db.catalog().HasStats("AuthorPub"));

  planner::ExtractOptions opts;
  opts.large_output_factor = 0.0;
  opts.preprocess = false;
  auto result = planner::ExtractFromQuery(
      db,
      "Nodes(ID, Name) :- Author(ID, Name).\n"
      "Edges(ID1, ID2) :- AuthorPub(ID1, P), AuthorPub(ID2, P).",
      opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->real_nodes, 3u);
  EXPECT_EQ(result->virtual_nodes, 2u);
  // ann–bob via pub 10, bob–cat via pub 20: 4 directed edges.
  EXPECT_EQ(result->storage.CountExpandedEdges(), 4u);
  std::remove(authors_path.c_str());
  std::remove(ap_path.c_str());
}

TEST(CsvTest, LoadMissingFileFails) {
  Database db;
  EXPECT_EQ(LoadCsv(db, "T", "/no/such/file.csv").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace graphgen::rel
