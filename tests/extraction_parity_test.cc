// Extraction parity suite: the parallel columnar pipeline must produce
// output bitwise-identical to the serial row-at-a-time baseline — same
// node ids, same condensed adjacency in the same stored order, same
// properties and external keys — across every generated dataset, every
// large-output policy, every thread count, and the shared-pool path.

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "gen/relational_generators.h"
#include "planner/extractor.h"

namespace graphgen::planner {
namespace {

// How the fused join→DISTINCT pipeline is driven: the adaptive default
// (kAuto, fuses above the output-size threshold), forced for any size
// (kForce, exercises the morsel pipeline even on small datasets), or
// disabled (kOff, the unfused operator chain).
enum class Fuse { kAuto, kForce, kOff };

struct Config {
  const char* name;
  query::ExecEngine engine;
  size_t threads;
  bool use_pool;
  Fuse fuse = Fuse::kAuto;
};

// The serial legacy interpreter is the oracle; every other configuration
// must match it exactly — including the fused morsel-driven join→DISTINCT
// pipeline against the unfused operator chain.
const Config kBaseline{"row-at-a-time serial", query::ExecEngine::kRowAtATime,
                       1, false};
const Config kConfigs[] = {
    {"columnar serial", query::ExecEngine::kColumnar, 1, false},
    {"columnar 4 threads", query::ExecEngine::kColumnar, 4, false},
    {"columnar serial fused", query::ExecEngine::kColumnar, 1, false,
     Fuse::kForce},
    {"columnar 4 threads fused", query::ExecEngine::kColumnar, 4, false,
     Fuse::kForce},
    {"columnar serial unfused", query::ExecEngine::kColumnar, 1, false,
     Fuse::kOff},
    {"columnar 4 threads unfused", query::ExecEngine::kColumnar, 4, false,
     Fuse::kOff},
    {"columnar shared pool", query::ExecEngine::kColumnar, 4, true},
    {"row-at-a-time pooled rules", query::ExecEngine::kRowAtATime, 4, true},
};

ExtractionResult RunConfig(const gen::GeneratedDatabase& data,
                           const std::string& datalog, double factor,
                           const Config& config, ThreadPool* pool,
                           bool semi_join_pushdown = false) {
  ExtractOptions opts;
  opts.large_output_factor = factor;
  opts.preprocess = false;
  opts.engine = config.engine;
  opts.threads = config.threads;
  opts.pool = config.use_pool ? pool : nullptr;
  opts.semi_join_pushdown = semi_join_pushdown;
  opts.fuse_join_distinct = config.fuse != Fuse::kOff;
  if (config.fuse == Fuse::kForce) opts.fuse_min_output_bytes = 0;
  auto result = ExtractFromQuery(data.db, datalog, opts);
  EXPECT_TRUE(result.ok()) << config.name << ": "
                           << result.status().ToString();
  return std::move(result).ValueOrDie();
}

void ExpectParity(const gen::GeneratedDatabase& data,
                  const std::string& datalog, const char* dataset) {
  ThreadPool pool(3);
  // 0.0 forces every boundary condensed, 1e18 forces full expansion, 2.0
  // is the paper's policy — together they cover every segment shape.
  for (double factor : {0.0, 2.0, 1e18}) {
    ExtractionResult oracle =
        RunConfig(data, datalog, factor, kBaseline, nullptr);
    for (const Config& config : kConfigs) {
      ExtractionResult got = RunConfig(data, datalog, factor, config, &pool);
      EXPECT_EQ(DiffExtraction(oracle, got), "")
          << dataset << " factor=" << factor << " config=" << config.name;
      EXPECT_EQ(got.sql, oracle.sql) << dataset << " " << config.name;
    }

    // Semi-join pushdown: the extracted graph must be identical to the
    // non-pushdown oracle (rows_scanned legitimately shrinks), and all
    // engines/thread counts must agree bitwise among themselves.
    ExtractionResult push_oracle =
        RunConfig(data, datalog, factor, kBaseline, nullptr, true);
    EXPECT_EQ(DiffExtraction(oracle, push_oracle,
                             /*compare_scan_counts=*/false),
              "")
        << dataset << " factor=" << factor << " pushdown vs oracle";
    EXPECT_LE(push_oracle.rows_scanned, oracle.rows_scanned)
        << dataset << " factor=" << factor;
    for (const Config& config : kConfigs) {
      ExtractionResult got =
          RunConfig(data, datalog, factor, config, &pool, true);
      EXPECT_EQ(DiffExtraction(push_oracle, got), "")
          << dataset << " factor=" << factor << " pushdown config="
          << config.name;
      EXPECT_EQ(got.sql, push_oracle.sql)
          << dataset << " pushdown " << config.name;
    }
  }
}

TEST(ExtractionParityTest, DblpCoAuthors) {
  gen::GeneratedDatabase d = gen::MakeDblpLike(400, 800, 4.0);
  ExpectParity(d, d.datalog, "DBLP");
}

TEST(ExtractionParityTest, ImdbCoActors) {
  gen::GeneratedDatabase d = gen::MakeImdbLike(200, 120, 6.0);
  ExpectParity(d, d.datalog, "IMDB");
}

TEST(ExtractionParityTest, TpchMultiAtomChain) {
  gen::GeneratedDatabase d = gen::MakeTpchLike(60, 240, 20, 3.0);
  ExpectParity(d, d.datalog, "TPCH");
}

TEST(ExtractionParityTest, UniversityHeterogeneous) {
  gen::GeneratedDatabase d = gen::MakeUniversity(80, 10, 16, 3.0);
  ExpectParity(d, d.datalog, "UNIV");
}

TEST(ExtractionParityTest, SingleSelectivity) {
  gen::GeneratedDatabase d = gen::MakeSingleSelectivity(600, 0.1);
  ExpectParity(d, d.datalog, "Single");
}

TEST(ExtractionParityTest, LayeredSelectivity) {
  gen::GeneratedDatabase d = gen::MakeLayeredSelectivity(300, 300, 0.2, 0.1);
  ExpectParity(d, d.datalog, "Layered");
}

TEST(ExtractionParityTest, MultipleRulesExtractConcurrently) {
  // Several independent Nodes/Edges rules — the inter-rule fan-out path.
  gen::GeneratedDatabase d = gen::MakeUniversity(60, 8, 12, 2.5);
  const std::string program =
      "Nodes(ID, Name) :- Student(ID, Name).\n"
      "Nodes(ID, Name) :- Instructor(ID, Name).\n"
      "Edges(ID1, ID2) :- TookCourse(ID1, C), TookCourse(ID2, C).\n"
      "Edges(ID1, ID2) :- TaughtCourse(ID1, C), TookCourse(ID2, C).\n"
      "Edges(ID1, ID2) :- TaughtCourse(ID1, C), TaughtCourse(ID2, C).";
  ExpectParity(d, program, "UNIV multi-rule");
}

TEST(ExtractionParityTest, StringKeysExerciseDictionaryKernels) {
  // String node keys: scans, the dictionary join kernel, DISTINCT over
  // codes, and dict property materialization all run on interned strings,
  // with NULLs and dangling keys sprinkled in.
  gen::GeneratedDatabase d;
  {
    rel::Table people("People", rel::Schema({{"id", rel::ValueType::kString},
                                             {"name", rel::ValueType::kString}}));
    for (int i = 0; i < 40; ++i) {
      const std::string id = "p" + std::to_string(i);
      people.AppendUnchecked({rel::Value(id), rel::Value("Person " + id)});
    }
    d.db.PutTable(std::move(people));
    rel::Table follows("Follows",
                       rel::Schema({{"who", rel::ValueType::kString},
                                    {"topic", rel::ValueType::kString}}));
    for (int i = 0; i < 200; ++i) {
      // Some rows reference people that do not exist; every 17th row has
      // a NULL key.
      rel::Value who = i % 17 == 0
                           ? rel::Value()
                           : rel::Value("p" + std::to_string(i % 50));
      follows.AppendUnchecked(
          {std::move(who), rel::Value("t" + std::to_string(i % 13))});
    }
    d.db.PutTable(std::move(follows));
    d.db.AnalyzeAll();
    d.datalog =
        "Nodes(ID, Name) :- People(ID, Name).\n"
        "Edges(ID1, ID2) :- Follows(ID1, T), Follows(ID2, T).\n";
  }
  ExpectParity(d, d.datalog, "StringKeys");
}

TEST(ExtractionParityTest, CountConstraint) {
  gen::GeneratedDatabase d = gen::MakeDblpLike(150, 300, 5.0);
  const std::string program =
      "Nodes(ID, Name) :- Author(ID, Name).\n"
      "Edges(ID1, ID2) :- AuthorPub(ID1, P), AuthorPub(ID2, P), "
      "COUNT(P) >= 2.";
  ExpectParity(d, program, "DBLP count-constraint");
}

TEST(ExtractionParityTest, CountConstraintEdgeOrderIsSorted) {
  // Weighted-edge aggregation used to emit edges in hash-map iteration
  // order — dependent on allocator layout, not part of the semantics. The
  // contract now: count-constraint edges are appended in ascending
  // (src, dst), so every node's stored out-adjacency from the count rule
  // is strictly increasing.
  gen::GeneratedDatabase d = gen::MakeDblpLike(200, 400, 5.0);
  const std::string program =
      "Nodes(ID, Name) :- Author(ID, Name).\n"
      "Edges(ID1, ID2) :- AuthorPub(ID1, P), AuthorPub(ID2, P), "
      "COUNT(P) >= 1.";
  ExtractOptions opts;
  opts.preprocess = false;
  auto result = ExtractFromQuery(d.db, program, opts);
  ASSERT_TRUE(result.ok());
  size_t edges = 0;
  for (size_t i = 0; i < result->storage.NumRealNodes(); ++i) {
    const auto& out =
        result->storage.OutEdges(NodeRef::Real(static_cast<uint32_t>(i)));
    edges += out.size();
    for (size_t k = 1; k < out.size(); ++k) {
      EXPECT_TRUE(out[k - 1].index() < out[k].index())
          << "node " << i << " out-edges not sorted at " << k;
    }
  }
  EXPECT_GT(edges, 0u);
}

TEST(ExtractionParityTest, PreprocessKeepsParity) {
  gen::GeneratedDatabase d = gen::MakeDblpLike(300, 600, 4.0);
  ExtractOptions serial;
  serial.large_output_factor = 0.0;
  serial.preprocess = true;
  serial.threads = 1;
  serial.engine = query::ExecEngine::kRowAtATime;
  auto oracle = ExtractFromQuery(d.db, d.datalog, serial);
  ASSERT_TRUE(oracle.ok());

  ExtractOptions parallel = serial;
  parallel.threads = 4;
  parallel.engine = query::ExecEngine::kColumnar;
  auto got = ExtractFromQuery(d.db, d.datalog, parallel);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(DiffExtraction(*oracle, *got), "");
}

TEST(ExtractionParityTest, DiffReportsDifferences) {
  gen::GeneratedDatabase d = gen::MakeDblpLike(50, 100, 3.0);
  ExtractOptions opts;
  opts.preprocess = false;
  opts.large_output_factor = 0.0;
  auto a = ExtractFromQuery(d.db, d.datalog, opts);
  ASSERT_TRUE(a.ok());
  auto b = ExtractFromQuery(d.db, d.datalog, opts);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(DiffExtraction(*a, *b), "");
  b->storage.AddEdge(NodeRef::Real(0), NodeRef::Real(1));
  EXPECT_NE(DiffExtraction(*a, *b), "");
}

}  // namespace
}  // namespace graphgen::planner
