// Property suite: apply the same random mutation sequence (AddEdge /
// DeleteEdge / DeleteVertex / AddVertex) to every representation of the
// same starting graph, and assert that all representations remain
// behaviourally identical (same expanded edge set) and duplicate-free
// where required — the strongest end-to-end guarantee of the Graph API.

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "dedup/bitmap_algorithms.h"
#include "dedup/dedup1_algorithms.h"
#include "repr/cdup_graph.h"
#include "repr/dedup1_graph.h"
#include "repr/expander.h"
#include "test_util.h"

namespace graphgen {
namespace {

using testing::IsDuplicateFree;
using testing::MakeRandomSymmetric;

struct MutationParam {
  uint64_t graph_seed;
  uint64_t op_seed;
  int num_ops;
};

class MutationConsistencyTest
    : public ::testing::TestWithParam<MutationParam> {};

TEST_P(MutationConsistencyTest, RepresentationsStayEquivalent) {
  const MutationParam p = GetParam();
  CondensedStorage s = MakeRandomSymmetric(40, 12, 5, p.graph_seed);

  std::vector<std::unique_ptr<Graph>> graphs;
  graphs.push_back(std::make_unique<CDupGraph>(s));
  graphs.push_back(std::make_unique<ExpandedGraph>(ExpandCondensed(s)));
  auto d1 = GreedyVirtualNodesFirst(s);
  ASSERT_TRUE(d1.ok());
  graphs.push_back(std::make_unique<Dedup1Graph>(std::move(*d1)));
  auto bm = BuildBitmap2(s);
  ASSERT_TRUE(bm.ok());
  graphs.push_back(std::make_unique<BitmapGraph>(std::move(*bm)));

  Rng rng(p.op_seed);
  size_t num_vertices = s.NumRealNodes();
  for (int op = 0; op < p.num_ops; ++op) {
    int kind = static_cast<int>(rng.NextBounded(8));
    NodeId u = static_cast<NodeId>(rng.NextBounded(num_vertices));
    NodeId v = static_cast<NodeId>(rng.NextBounded(num_vertices));
    switch (kind) {
      case 0:
      case 1:
      case 2: {  // AddEdge (directed)
        if (u == v) break;
        for (auto& g : graphs) {
          if (g->VertexExists(u) && g->VertexExists(v)) {
            EXPECT_TRUE(g->AddEdge(u, v).ok());
          }
        }
        break;
      }
      case 3:
      case 4:
      case 5: {  // DeleteEdge (only when present; status must agree)
        bool exists = graphs[0]->ExistsEdge(u, v);
        for (auto& g : graphs) {
          ASSERT_EQ(g->ExistsEdge(u, v), exists)
              << g->Name() << " op " << op << " (" << u << "," << v << ")";
          if (exists) {
            EXPECT_TRUE(g->DeleteEdge(u, v).ok()) << g->Name();
          }
        }
        break;
      }
      case 6: {  // DeleteVertex
        if (!graphs[0]->VertexExists(u)) break;
        for (auto& g : graphs) {
          EXPECT_TRUE(g->DeleteVertex(u).ok()) << g->Name();
        }
        break;
      }
      case 7: {  // AddVertex
        NodeId id = graphs[0]->AddVertex();
        for (size_t i = 1; i < graphs.size(); ++i) {
          ASSERT_EQ(graphs[i]->AddVertex(), id) << graphs[i]->Name();
        }
        num_vertices = id + 1;
        break;
      }
    }
  }

  // Final state equivalence.
  auto oracle = graphs[0]->ExpandedEdgeSet();
  for (size_t i = 1; i < graphs.size(); ++i) {
    EXPECT_EQ(graphs[i]->ExpandedEdgeSet(), oracle) << graphs[i]->Name();
  }
  // Invariants that must survive arbitrary mutation.
  EXPECT_TRUE(IsDuplicateFree(*graphs[0])) << "C-DUP iterator";
  EXPECT_TRUE(IsDuplicateFree(*graphs[2])) << "DEDUP-1";
  EXPECT_TRUE(IsDuplicateFree(*graphs[3])) << "BITMAP-2";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MutationConsistencyTest,
    ::testing::Values(MutationParam{1, 100, 60}, MutationParam{2, 200, 60},
                      MutationParam{3, 300, 120}, MutationParam{4, 400, 120},
                      MutationParam{5, 500, 200}, MutationParam{6, 600, 200},
                      MutationParam{7, 700, 40}, MutationParam{8, 800, 300}),
    [](const ::testing::TestParamInfo<MutationParam>& info) {
      const MutationParam& p = info.param;
      return "g" + std::to_string(p.graph_seed) + "_ops" +
             std::to_string(p.num_ops);
    });

// Deletion compaction interacts with every representation's traversal.
TEST(MutationEdgeCases, CompactAfterManyDeletions) {
  CondensedStorage s = MakeRandomSymmetric(50, 15, 5, 11);
  CDupGraph g(s);
  for (NodeId u = 0; u < 25; ++u) {
    ASSERT_TRUE(g.DeleteVertex(u).ok());
  }
  auto before = g.ExpandedEdgeSet();
  g.mutable_storage().CompactDeletions();
  EXPECT_EQ(g.ExpandedEdgeSet(), before);
  EXPECT_EQ(g.NumActiveVertices(), 25u);
}

TEST(MutationEdgeCases, DeleteAllVertices) {
  CondensedStorage s = MakeRandomSymmetric(20, 6, 4, 12);
  CDupGraph g(s);
  for (NodeId u = 0; u < 20; ++u) {
    ASSERT_TRUE(g.DeleteVertex(u).ok());
  }
  EXPECT_EQ(g.NumActiveVertices(), 0u);
  EXPECT_TRUE(g.ExpandedEdgeSet().empty());
  EXPECT_EQ(g.CountExpandedEdges(), 0u);
}

TEST(MutationEdgeCases, InterleavedAddDeleteSameEdge) {
  CondensedStorage s = MakeRandomSymmetric(20, 6, 4, 13);
  auto bm = BuildBitmap2(s);
  ASSERT_TRUE(bm.ok());
  bool existed = bm->ExistsEdge(0, 1);
  for (int round = 0; round < 5; ++round) {
    if (!bm->ExistsEdge(0, 1)) {
      ASSERT_TRUE(bm->AddEdge(0, 1).ok());
    }
    ASSERT_TRUE(bm->DeleteEdge(0, 1).ok());
    EXPECT_FALSE(bm->ExistsEdge(0, 1));
    ASSERT_TRUE(bm->AddEdge(0, 1).ok());
    EXPECT_TRUE(bm->ExistsEdge(0, 1));
  }
  EXPECT_TRUE(IsDuplicateFree(*bm));
  (void)existed;
}

// Random add/delete churn builds up the EXP copy-on-write overlay;
// Compact must fold it back into flat adjacency without changing the
// edge set, and a second Compact must be a no-op.
TEST(MutationEdgeCases, ExpandedCompactSurvivesRandomChurn) {
  CondensedStorage s = MakeRandomSymmetric(40, 12, 5, 15);
  ExpandedGraph g = ExpandCondensed(s);
  Rng rng(99);
  for (int i = 0; i < 120; ++i) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(40));
    NodeId v = static_cast<NodeId>(rng.NextBounded(40));
    if (u == v) continue;
    if (g.ExistsEdge(u, v)) {
      ASSERT_TRUE(g.DeleteEdge(u, v).ok());
    } else {
      ASSERT_TRUE(g.AddEdge(u, v).ok());
    }
  }
  ASSERT_TRUE(g.DeleteVertex(7).ok());
  auto before = g.ExpandedEdgeSet();
  (void)g.Compact();
  EXPECT_EQ(g.ExpandedEdgeSet(), before);
  EXPECT_EQ(g.PatchedVertices(), 0u);
  EXPECT_TRUE(g.HasFlatAdjacency());
  EXPECT_TRUE(IsDuplicateFree(g));
  EXPECT_EQ(g.Compact(), 0u);
}

TEST(MutationEdgeCases, AddEdgeToFreshVertex) {
  CondensedStorage s = MakeRandomSymmetric(10, 3, 3, 14);
  Dedup1Graph g = *GreedyVirtualNodesFirst(s);
  NodeId fresh = g.AddVertex();
  EXPECT_TRUE(g.AddEdge(fresh, 0).ok());
  EXPECT_TRUE(g.AddEdge(0, fresh).ok());
  EXPECT_TRUE(g.ExistsEdge(fresh, 0));
  EXPECT_TRUE(g.ExistsEdge(0, fresh));
  EXPECT_TRUE(IsDuplicateFree(g));
}

}  // namespace
}  // namespace graphgen
