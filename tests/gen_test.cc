#include <gtest/gtest.h>

#include "dedup/detail.h"
#include "gen/condensed_generator.h"
#include "gen/large_datasets.h"
#include "gen/relational_generators.h"
#include "gen/small_datasets.h"

namespace graphgen::gen {
namespace {

TEST(CondensedGeneratorTest, ShapeMatchesOptions) {
  CondensedGenOptions o;
  o.num_real = 200;
  o.num_virtual = 50;
  o.mean_size = 6;
  o.sd_size = 2;
  o.seed = 1;
  CondensedStorage g = GenerateCondensed(o);
  EXPECT_EQ(g.NumRealNodes(), 200u);
  EXPECT_EQ(g.NumVirtualNodes(), 50u);
  EXPECT_TRUE(g.IsSingleLayer());
  EXPECT_TRUE(g.IsAcyclic());
}

TEST(CondensedGeneratorTest, OutputIsSymmetric) {
  CondensedGenOptions o;
  o.num_real = 100;
  o.num_virtual = 30;
  o.seed = 2;
  CondensedStorage g = GenerateCondensed(o);
  for (uint32_t v = 0; v < g.NumVirtualNodes(); ++v) {
    EXPECT_EQ(dedup_internal::InReals(g, v), dedup_internal::OutReals(g, v));
  }
}

TEST(CondensedGeneratorTest, SizesNearMean) {
  CondensedGenOptions o;
  o.num_real = 1000;
  o.num_virtual = 200;
  o.mean_size = 8;
  o.sd_size = 2;
  o.seed = 3;
  CondensedStorage g = GenerateCondensed(o);
  double total = 0;
  for (uint32_t v = 0; v < g.NumVirtualNodes(); ++v) {
    total += static_cast<double>(dedup_internal::OutReals(g, v).size());
  }
  double avg = total / static_cast<double>(g.NumVirtualNodes());
  EXPECT_NEAR(avg, 8.0, 1.5);
}

TEST(CondensedGeneratorTest, Deterministic) {
  CondensedGenOptions o;
  o.num_real = 80;
  o.num_virtual = 20;
  o.seed = 4;
  EXPECT_EQ(GenerateCondensed(o).ExpandedEdgeSet(),
            GenerateCondensed(o).ExpandedEdgeSet());
}

TEST(LayeredGeneratorTest, ProducesMultiLayerDag) {
  LayeredGenOptions o;
  o.num_real = 100;
  o.layer_sizes = {20, 8};
  o.seed = 5;
  CondensedStorage g = GenerateLayeredCondensed(o);
  EXPECT_FALSE(g.IsSingleLayer());
  EXPECT_EQ(g.NumLayers(), 2u);
  EXPECT_TRUE(g.IsAcyclic());
  EXPECT_EQ(g.NumVirtualNodes(), 28u);
  EXPECT_GT(g.CountExpandedEdges(), 0u);
}

TEST(RelationalGeneratorTest, DblpShape) {
  GeneratedDatabase d = MakeDblpLike(200, 300, 3.0);
  ASSERT_TRUE(d.db.HasTable("Author"));
  ASSERT_TRUE(d.db.HasTable("AuthorPub"));
  const rel::Table* ap = d.db.GetTable("AuthorPub").ValueOrDie();
  EXPECT_GT(ap->NumRows(), 300u);  // ~3 authors per pub
  EXPECT_LT(ap->NumRows(), 300u * 8u);
  // Catalog statistics are ready for the planner.
  EXPECT_TRUE(d.db.catalog().HasStats("AuthorPub"));
  EXPECT_FALSE(d.datalog.empty());
}

TEST(RelationalGeneratorTest, TpchChainTables) {
  GeneratedDatabase d = MakeTpchLike(50, 200, 30, 3.0);
  EXPECT_TRUE(d.db.HasTable("Customer"));
  EXPECT_TRUE(d.db.HasTable("Orders"));
  EXPECT_TRUE(d.db.HasTable("LineItem"));
  const rel::Table* orders = d.db.GetTable("Orders").ValueOrDie();
  EXPECT_EQ(orders->NumRows(), 200u);
}

TEST(RelationalGeneratorTest, UniversityDisjointIds) {
  GeneratedDatabase d = MakeUniversity(100, 10, 20, 3.0);
  const rel::Table* students = d.db.GetTable("Student").ValueOrDie();
  const rel::Table* instructors = d.db.GetTable("Instructor").ValueOrDie();
  int64_t max_student = 0;
  for (size_t i = 0; i < students->NumRows(); ++i) {
    max_student = std::max(max_student, students->ValueAt(i, 0).AsInt64());
  }
  for (size_t i = 0; i < instructors->NumRows(); ++i) {
    EXPECT_GT(instructors->ValueAt(i, 0).AsInt64(), max_student);
  }
}

TEST(RelationalGeneratorTest, SingleSelectivityIsRespected) {
  GeneratedDatabase d = MakeSingleSelectivity(5000, 0.1);
  auto stats = d.db.catalog().GetStats("R");
  ASSERT_TRUE(stats.ok());
  double sel = static_cast<double>(stats->columns[1].n_distinct) /
               static_cast<double>(stats->row_count);
  EXPECT_NEAR(sel, 0.1, 0.02);
}

TEST(RelationalGeneratorTest, LayeredSelectivityTables) {
  GeneratedDatabase d = MakeLayeredSelectivity(2000, 2000, 0.05, 0.1);
  auto a = d.db.catalog().GetStats("A");
  ASSERT_TRUE(a.ok());
  double sel = static_cast<double>(a->columns[0].n_distinct) /
               static_cast<double>(a->row_count);
  EXPECT_NEAR(sel, 0.05, 0.02);
}

TEST(SmallDatasetsTest, AllGenerate) {
  for (SmallDatasetId id : Table2Datasets()) {
    CondensedStorage g = MakeSmallDataset(id, 0.005);
    EXPECT_GT(g.NumRealNodes(), 0u) << SmallDatasetName(id);
    EXPECT_GT(g.NumVirtualNodes(), 0u) << SmallDatasetName(id);
    EXPECT_TRUE(g.IsSingleLayer()) << SmallDatasetName(id);
  }
}

TEST(SmallDatasetsTest, ShapesDiffer) {
  // DBLP: many tiny virtual nodes. Synthetic_2: few huge ones.
  CondensedStorage dblp = MakeSmallDataset(SmallDatasetId::kDblp, 0.01);
  CondensedStorage syn2 = MakeSmallDataset(SmallDatasetId::kSynthetic2, 0.01);
  double dblp_avg = static_cast<double>(dblp.CountCondensedEdges()) / 2.0 /
                    static_cast<double>(dblp.NumVirtualNodes());
  double syn2_avg = static_cast<double>(syn2.CountCondensedEdges()) / 2.0 /
                    static_cast<double>(syn2.NumVirtualNodes());
  EXPECT_LT(dblp_avg, 5.0);
  EXPECT_GT(syn2_avg, 40.0);
}

TEST(SmallDatasetsTest, GiraphListNames) {
  auto ids = GiraphDatasets();
  ASSERT_EQ(ids.size(), 5u);
  EXPECT_EQ(SmallDatasetName(ids[0]), "S1");
  EXPECT_EQ(SmallDatasetName(ids[4]), "IMDB");
}

TEST(LargeDatasetsTest, AllGenerate) {
  for (LargeDatasetId id : Table3Datasets()) {
    CondensedStorage g = MakeLargeDataset(id, 0.002);
    EXPECT_GT(g.NumRealNodes(), 0u) << LargeDatasetName(id);
    EXPECT_FALSE(LargeDatasetSelectivities(id).empty());
  }
}

TEST(LargeDatasetsTest, LayeredAreMultiLayer) {
  CondensedStorage g = MakeLargeDataset(LargeDatasetId::kLayered1, 0.002);
  EXPECT_FALSE(g.IsSingleLayer());
  CondensedStorage s = MakeLargeDataset(LargeDatasetId::kSingle1, 0.002);
  EXPECT_TRUE(s.IsSingleLayer());
}

}  // namespace
}  // namespace graphgen::gen
