#include <gtest/gtest.h>

#include <set>

#include "dedup/bitmap_algorithms.h"
#include "dedup/dedup1_algorithms.h"
#include "dedup/dedup2_builder.h"
#include "dedup/detail.h"
#include "gen/condensed_generator.h"
#include "test_util.h"

namespace graphgen {
namespace {

using testing::AddMember;
using testing::IsDuplicateFree;
using testing::MakeFigure1Graph;
using testing::MakeRandomSymmetric;

// ---------- shared helpers ----------

TEST(DedupDetailTest, PathExists) {
  CondensedStorage g = MakeFigure1Graph();
  EXPECT_TRUE(dedup_internal::PathExists(g, 0, 3));
  EXPECT_FALSE(dedup_internal::PathExists(g, 0, 4));
  EXPECT_FALSE(dedup_internal::PathExists(g, 0, 0));
}

TEST(DedupDetailTest, InOutReals) {
  CondensedStorage g = MakeFigure1Graph();
  EXPECT_EQ(dedup_internal::OutReals(g, 0), (std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(dedup_internal::InReals(g, 2), (std::vector<NodeId>{3, 4}));
}

TEST(DedupDetailTest, HasDuplicationRules) {
  using dedup_internal::HasDuplication;
  EXPECT_FALSE(HasDuplication({}, {1}));
  EXPECT_FALSE(HasDuplication({1}, {}));
  EXPECT_FALSE(HasDuplication({1}, {1}));   // only the self pair
  EXPECT_TRUE(HasDuplication({1}, {2}));    // pair (1,2)
  EXPECT_TRUE(HasDuplication({1, 2}, {1})); // pair (2,1)
  EXPECT_TRUE(HasDuplication({1, 2}, {1, 2}));
}

TEST(DedupDetailTest, DetachTargetCompensates) {
  CondensedStorage g = MakeFigure1Graph();
  auto before = g.ExpandedEdgeSet();
  // Detach a4 (id 3) from p1 (virtual 0): pairs (a1,a4),(a2,a4),(a3,a4)
  // must survive via p2 or compensation direct edges.
  dedup_internal::DetachTargetWithCompensation(g, 0, 3);
  EXPECT_EQ(g.ExpandedEdgeSet(), before);
  // a2 (id 1) is not in p2, so it needed a direct edge.
  bool direct = false;
  for (NodeRef r : g.OutEdges(NodeRef::Real(1))) {
    if (r == NodeRef::Real(3)) direct = true;
  }
  EXPECT_TRUE(direct);
}

TEST(DedupDetailTest, CopyRealSkeletonKeepsDirectEdges) {
  CondensedStorage g = MakeFigure1Graph();
  g.AddEdge(NodeRef::Real(0), NodeRef::Real(4));
  CondensedStorage skel = dedup_internal::CopyRealSkeleton(g);
  EXPECT_EQ(skel.NumVirtualNodes(), 0u);
  EXPECT_EQ(skel.CountCondensedEdges(), 1u);
  EXPECT_EQ(skel.NumRealNodes(), g.NumRealNodes());
}

// ---------- FlattenToSingleLayer ----------

TEST(FlattenTest, PreservesEdgeSet) {
  gen::LayeredGenOptions o;
  o.num_real = 60;
  o.layer_sizes = {10, 6};
  o.avg_real_memberships = 2.0;
  o.avg_layer_fanout = 2.0;
  o.seed = 11;
  CondensedStorage g = gen::GenerateLayeredCondensed(o);
  ASSERT_FALSE(g.IsSingleLayer());
  auto before = g.ExpandedEdgeSet();
  CondensedStorage flat = FlattenToSingleLayer(g);
  EXPECT_TRUE(flat.IsSingleLayer());
  EXPECT_EQ(flat.ExpandedEdgeSet(), before);
}

// ---------- DEDUP-1 algorithm sweep ----------

using Dedup1Fn = Result<Dedup1Graph> (*)(const CondensedStorage&,
                                         const DedupOptions&);

struct AlgoParam {
  const char* name;
  Dedup1Fn fn;
  NodeOrdering ordering;
  uint64_t seed;
};

class Dedup1AlgoTest : public ::testing::TestWithParam<AlgoParam> {};

TEST_P(Dedup1AlgoTest, Figure1Deduplicated) {
  const AlgoParam& p = GetParam();
  CondensedStorage input = MakeFigure1Graph();
  DedupOptions opts;
  opts.ordering = p.ordering;
  opts.seed = p.seed;
  auto result = p.fn(input, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->ExpandedEdgeSet(), input.ExpandedEdgeSet());
  EXPECT_TRUE(IsDuplicateFree(*result));
  EXPECT_EQ(result->storage().CountDuplicatePairs(), 0u);
}

TEST_P(Dedup1AlgoTest, RandomGraphsDeduplicated) {
  const AlgoParam& p = GetParam();
  for (uint64_t seed : {1u, 2u, 3u}) {
    CondensedStorage input = MakeRandomSymmetric(60, 25, 5, seed);
    DedupOptions opts;
    opts.ordering = p.ordering;
    opts.seed = p.seed;
    auto result = p.fn(input, opts);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->ExpandedEdgeSet(), input.ExpandedEdgeSet())
        << p.name << " seed " << seed;
    EXPECT_TRUE(IsDuplicateFree(*result)) << p.name << " seed " << seed;
  }
}

TEST_P(Dedup1AlgoTest, DenseOverlappingCliques) {
  const AlgoParam& p = GetParam();
  CondensedStorage input = MakeRandomSymmetric(40, 8, 15, 77);
  DedupOptions opts;
  opts.ordering = p.ordering;
  opts.seed = p.seed;
  auto result = p.fn(input, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ExpandedEdgeSet(), input.ExpandedEdgeSet());
  EXPECT_TRUE(IsDuplicateFree(*result));
}

TEST_P(Dedup1AlgoTest, RejectsMultiLayer) {
  gen::LayeredGenOptions o;
  o.num_real = 30;
  o.layer_sizes = {5, 3};
  CondensedStorage g = gen::GenerateLayeredCondensed(o);
  auto result = GetParam().fn(g, DedupOptions{});
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, Dedup1AlgoTest,
    ::testing::Values(
        AlgoParam{"NaiveVirtual_Rand", &NaiveVirtualNodesFirst,
                  NodeOrdering::kRandom, 1},
        AlgoParam{"NaiveVirtual_Asc", &NaiveVirtualNodesFirst,
                  NodeOrdering::kDegreeAsc, 2},
        AlgoParam{"NaiveVirtual_Desc", &NaiveVirtualNodesFirst,
                  NodeOrdering::kDegreeDesc, 3},
        AlgoParam{"NaiveReal_Rand", &NaiveRealNodesFirst,
                  NodeOrdering::kRandom, 4},
        AlgoParam{"NaiveReal_Id", &NaiveRealNodesFirst, NodeOrdering::kId, 5},
        AlgoParam{"GreedyReal_Rand", &GreedyRealNodesFirst,
                  NodeOrdering::kRandom, 6},
        AlgoParam{"GreedyReal_Desc", &GreedyRealNodesFirst,
                  NodeOrdering::kDegreeDesc, 7},
        AlgoParam{"GreedyVirtual_Rand", &GreedyVirtualNodesFirst,
                  NodeOrdering::kRandom, 8},
        AlgoParam{"GreedyVirtual_Desc", &GreedyVirtualNodesFirst,
                  NodeOrdering::kDegreeDesc, 9}),
    [](const ::testing::TestParamInfo<AlgoParam>& info) {
      return info.param.name;
    });

// ---------- BITMAP algorithms ----------

TEST(Bitmap1Test, EquivalentAndDuplicateFreeOnMultiLayer) {
  gen::LayeredGenOptions o;
  o.num_real = 80;
  o.layer_sizes = {12, 6};
  o.avg_real_memberships = 3.0;
  o.avg_layer_fanout = 2.5;
  o.seed = 5;
  CondensedStorage g = gen::GenerateLayeredCondensed(o);
  auto bm = BuildBitmap1(g);
  ASSERT_TRUE(bm.ok());
  EXPECT_EQ(bm->ExpandedEdgeSet(), g.ExpandedEdgeSet());
  EXPECT_TRUE(IsDuplicateFree(*bm));
}

TEST(Bitmap2Test, EquivalentAndDuplicateFreeOnMultiLayer) {
  gen::LayeredGenOptions o;
  o.num_real = 80;
  o.layer_sizes = {12, 6};
  o.avg_real_memberships = 3.0;
  o.avg_layer_fanout = 2.5;
  o.seed = 6;
  CondensedStorage g = gen::GenerateLayeredCondensed(o);
  auto bm = BuildBitmap2(g);
  ASSERT_TRUE(bm.ok());
  EXPECT_EQ(bm->ExpandedEdgeSet(), g.ExpandedEdgeSet());
  EXPECT_TRUE(IsDuplicateFree(*bm));
}

TEST(Bitmap2Test, InstallsFewerBitmapsThanBitmap1) {
  CondensedStorage g = MakeRandomSymmetric(150, 40, 8, 9);
  auto bm1 = BuildBitmap1(g);
  auto bm2 = BuildBitmap2(g);
  ASSERT_TRUE(bm1.ok());
  ASSERT_TRUE(bm2.ok());
  EXPECT_LE(bm2->NumBitmaps(), bm1->NumBitmaps());
  EXPECT_LE(bm2->BitmapMemoryBytes(), bm1->BitmapMemoryBytes());
}

TEST(Bitmap2Test, DeletesUselessMembershipEdges) {
  // Two identical cliques: for each source, one of the two virtual nodes
  // contributes nothing and its membership edge can be dropped.
  CondensedStorage g;
  g.AddRealNodes(6);
  uint32_t v1 = g.AddVirtualNode();
  uint32_t v2 = g.AddVirtualNode();
  for (NodeId u = 0; u < 6; ++u) {
    AddMember(g, u, v1);
    AddMember(g, u, v2);
  }
  auto bm = BuildBitmap2(g);
  ASSERT_TRUE(bm.ok());
  EXPECT_LT(bm->CountStoredEdges(), g.CountCondensedEdges());
  EXPECT_EQ(bm->ExpandedEdgeSet(), g.ExpandedEdgeSet());
  EXPECT_TRUE(IsDuplicateFree(*bm));
}

TEST(Bitmap1Test, KeepsAllCondensedEdges) {
  CondensedStorage g = MakeRandomSymmetric(60, 20, 5, 10);
  g.RemoveParallelEdges();
  auto bm = BuildBitmap1(g);
  ASSERT_TRUE(bm.ok());
  EXPECT_EQ(bm->CountStoredEdges(), g.CountCondensedEdges());
}

TEST(BitmapSweepTest, ManySeeds) {
  for (uint64_t seed = 20; seed < 30; ++seed) {
    CondensedStorage g = MakeRandomSymmetric(50, 18, 6, seed);
    auto oracle = g.ExpandedEdgeSet();
    auto bm1 = BuildBitmap1(g);
    auto bm2 = BuildBitmap2(g);
    ASSERT_TRUE(bm1.ok());
    ASSERT_TRUE(bm2.ok());
    EXPECT_EQ(bm1->ExpandedEdgeSet(), oracle) << seed;
    EXPECT_EQ(bm2->ExpandedEdgeSet(), oracle) << seed;
    EXPECT_TRUE(IsDuplicateFree(*bm1)) << seed;
    EXPECT_TRUE(IsDuplicateFree(*bm2)) << seed;
  }
}

// ---------- DEDUP-2 ----------

void CheckDedup2Invariants(const Dedup2Graph& g) {
  const size_t nv = g.NumVirtualNodes();
  // Invariant 1: pairwise member overlap <= 1.
  std::vector<std::set<NodeId>> members(nv);
  for (uint32_t v = 0; v < nv; ++v) {
    members[v] = {g.Members(v).begin(), g.Members(v).end()};
  }
  for (uint32_t v = 0; v < nv; ++v) {
    for (uint32_t w : g.VirtualNeighbors(v)) {
      // Adjacent virtual nodes must be member-disjoint.
      for (NodeId m : members[v]) {
        EXPECT_FALSE(members[w].contains(m))
            << "adjacent virtual nodes " << v << "," << w << " share " << m;
      }
    }
    // Invariant 2: virtual neighbors pairwise disjoint.
    const auto& neigh = g.VirtualNeighbors(v);
    for (size_t i = 0; i < neigh.size(); ++i) {
      for (size_t j = i + 1; j < neigh.size(); ++j) {
        for (NodeId m : members[neigh[i]]) {
          EXPECT_FALSE(members[neigh[j]].contains(m))
              << "neighbors of " << v << " overlap on " << m;
        }
      }
    }
  }
}

TEST(Dedup2BuilderTest, Figure1) {
  CondensedStorage input = MakeFigure1Graph();
  auto g = BuildDedup2(input);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->ExpandedEdgeSet(), input.ExpandedEdgeSet());
  EXPECT_TRUE(IsDuplicateFree(*g));
  CheckDedup2Invariants(*g);
}

TEST(Dedup2BuilderTest, HeavyOverlapUsesVirtualEdges) {
  // The Figure 6 shape: two big cliques sharing many members. DEDUP-2
  // should need fewer stored edges than DEDUP-1 on this input.
  CondensedStorage input;
  input.AddRealNodes(12);
  uint32_t v1 = input.AddVirtualNode();
  uint32_t v2 = input.AddVirtualNode();
  for (NodeId u = 0; u < 10; ++u) AddMember(input, u, v1);
  for (NodeId u = 2; u < 12; ++u) AddMember(input, u, v2);
  auto d2 = BuildDedup2(input);
  ASSERT_TRUE(d2.ok());
  EXPECT_EQ(d2->ExpandedEdgeSet(), input.ExpandedEdgeSet());
  CheckDedup2Invariants(*d2);
  auto d1 = GreedyVirtualNodesFirst(input);
  ASSERT_TRUE(d1.ok());
  EXPECT_LT(d2->CountStoredEdges(), d1->CountStoredEdges());
}

TEST(Dedup2BuilderTest, RandomSweep) {
  for (uint64_t seed = 40; seed < 48; ++seed) {
    CondensedStorage input = MakeRandomSymmetric(40, 14, 6, seed);
    auto g = BuildDedup2(input);
    ASSERT_TRUE(g.ok()) << seed;
    EXPECT_EQ(g->ExpandedEdgeSet(), input.ExpandedEdgeSet()) << seed;
    EXPECT_TRUE(IsDuplicateFree(*g)) << seed;
    CheckDedup2Invariants(*g);
  }
}

TEST(Dedup2BuilderTest, RejectsAsymmetricInput) {
  CondensedStorage g;
  g.AddRealNodes(3);
  uint32_t v = g.AddVirtualNode();
  g.AddEdge(NodeRef::Real(0), NodeRef::Virtual(v));
  g.AddEdge(NodeRef::Virtual(v), NodeRef::Real(1));  // bipartite-style
  EXPECT_EQ(BuildDedup2(g).status().code(), StatusCode::kInvalidArgument);
}

TEST(Dedup2BuilderTest, RejectsMultiLayer) {
  gen::LayeredGenOptions o;
  o.num_real = 20;
  o.layer_sizes = {4, 2};
  CondensedStorage g = gen::GenerateLayeredCondensed(o);
  EXPECT_EQ(BuildDedup2(g).status().code(), StatusCode::kInvalidArgument);
}

// ---------- bipartite (directed, asymmetric) DEDUP-1 ----------

TEST(Dedup1DirectedTest, BipartiteGraphDeduplicated) {
  // Instructors 0..2 teach courses; students 3..7 take them. Duplication:
  // instructor 0 reaches student 3 via two shared courses.
  CondensedStorage g;
  g.AddRealNodes(8);
  uint32_t c1 = g.AddVirtualNode();
  uint32_t c2 = g.AddVirtualNode();
  uint32_t c3 = g.AddVirtualNode();
  g.AddEdge(NodeRef::Real(0), NodeRef::Virtual(c1));
  g.AddEdge(NodeRef::Real(0), NodeRef::Virtual(c2));
  g.AddEdge(NodeRef::Real(1), NodeRef::Virtual(c2));
  g.AddEdge(NodeRef::Real(2), NodeRef::Virtual(c3));
  for (NodeId st : {3, 4}) g.AddEdge(NodeRef::Virtual(c1), NodeRef::Real(st));
  for (NodeId st : {3, 5, 6}) {
    g.AddEdge(NodeRef::Virtual(c2), NodeRef::Real(st));
  }
  for (NodeId st : {6, 7}) g.AddEdge(NodeRef::Virtual(c3), NodeRef::Real(st));
  ASSERT_GT(g.CountDuplicatePairs(), 0u);

  auto oracle = g.ExpandedEdgeSet();
  for (auto fn : {&NaiveVirtualNodesFirst, &NaiveRealNodesFirst,
                  &GreedyRealNodesFirst, &GreedyVirtualNodesFirst}) {
    auto result = (*fn)(g, DedupOptions{});
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->ExpandedEdgeSet(), oracle);
    EXPECT_TRUE(IsDuplicateFree(*result));
  }
  auto bm = BuildBitmap2(g);
  ASSERT_TRUE(bm.ok());
  EXPECT_EQ(bm->ExpandedEdgeSet(), oracle);
  EXPECT_TRUE(IsDuplicateFree(*bm));
}

// ---------- ordering utilities ----------

TEST(OrderingTest, ProducesPermutations) {
  CondensedStorage g = MakeRandomSymmetric(30, 10, 4, 3);
  for (NodeOrdering o :
       {NodeOrdering::kRandom, NodeOrdering::kId, NodeOrdering::kDegreeAsc,
        NodeOrdering::kDegreeDesc}) {
    auto virt = OrderVirtualNodes(g, o, 1);
    EXPECT_EQ(virt.size(), g.NumVirtualNodes());
    std::set<uint32_t> uniq(virt.begin(), virt.end());
    EXPECT_EQ(uniq.size(), virt.size());
    auto real = OrderRealNodes(g, o, 1);
    EXPECT_EQ(real.size(), g.NumRealNodes());
  }
}

TEST(OrderingTest, DegreeOrderingsAreSorted) {
  CondensedStorage g = MakeRandomSymmetric(30, 10, 4, 4);
  auto asc = OrderVirtualNodes(g, NodeOrdering::kDegreeAsc, 1);
  for (size_t i = 1; i < asc.size(); ++i) {
    EXPECT_LE(g.OutEdges(NodeRef::Virtual(asc[i - 1])).size(),
              g.OutEdges(NodeRef::Virtual(asc[i])).size());
  }
  auto desc = OrderVirtualNodes(g, NodeOrdering::kDegreeDesc, 1);
  for (size_t i = 1; i < desc.size(); ++i) {
    EXPECT_GE(g.OutEdges(NodeRef::Virtual(desc[i - 1])).size(),
              g.OutEdges(NodeRef::Virtual(desc[i])).size());
  }
}

TEST(OrderingTest, RandomOrderingIsSeedDeterministic) {
  CondensedStorage g = MakeRandomSymmetric(30, 10, 4, 5);
  EXPECT_EQ(OrderVirtualNodes(g, NodeOrdering::kRandom, 9),
            OrderVirtualNodes(g, NodeOrdering::kRandom, 9));
}

}  // namespace
}  // namespace graphgen
