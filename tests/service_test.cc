#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/faultpoints.h"
#include "gen/relational_generators.h"
#include "repr/expanded_graph.h"
#include "service/cache_key.h"
#include "service/graph_cache.h"
#include "service/graph_service.h"

namespace graphgen {
namespace {

const char* kStudentQuery =
    "Nodes(ID, Name) :- Student(ID, Name).\n"
    "Edges(ID1, ID2) :- TookCourse(ID1, C), TookCourse(ID2, C).";
const char* kBipartiteQuery =
    "Nodes(ID, Name) :- Instructor(ID, Name).\n"
    "Nodes(ID, Name) :- Student(ID, Name).\n"
    "Edges(ID1, ID2) :- TaughtCourse(ID1, C), TookCourse(ID2, C).";

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override { data_ = gen::MakeUniversity(40, 6, 12, 2.5); }

  GraphGenOptions CDupOptions() const {
    GraphGenOptions o;
    o.representation = Representation::kCDup;
    o.extract.large_output_factor = 0.0;
    o.extract.preprocess = false;
    return o;
  }

  gen::GeneratedDatabase data_;
};

TEST_F(ServiceTest, CacheHitReturnsSameInstance) {
  service::GraphService svc(&data_.db);
  auto first = svc.Extract(kStudentQuery, CDupOptions());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  // Same program with different whitespace/formatting: the canonical key
  // is built from the parsed AST, so this must be a hit.
  std::string reformatted =
      "Nodes(ID,Name):-Student(ID,Name).  "
      "Edges(ID1,ID2):-TookCourse(ID1,C),TookCourse(ID2,C).";
  auto second = svc.Extract(reformatted, CDupOptions());
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(first->get(), second->get());  // literally the same graph

  service::ServiceStats stats = svc.Stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.cold_extractions, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
}

TEST_F(ServiceTest, DifferentOptionsAreDifferentEntries) {
  service::GraphService svc(&data_.db);
  GraphGenOptions exp = CDupOptions();
  exp.representation = Representation::kExp;
  auto cdup = svc.Extract(kStudentQuery, CDupOptions());
  auto expanded = svc.Extract(kStudentQuery, exp);
  ASSERT_TRUE(cdup.ok());
  ASSERT_TRUE(expanded.ok());
  EXPECT_NE(cdup->get(), expanded->get());
  EXPECT_EQ((*cdup)->representation, Representation::kCDup);
  EXPECT_EQ((*expanded)->representation, Representation::kExp);
  EXPECT_EQ(svc.Stats().cold_extractions, 2u);
}

TEST_F(ServiceTest, IrrelevantOptionsDoNotChangeTheKey) {
  GraphGenOptions a;
  a.representation = Representation::kCDup;
  a.dedup1_algorithm = Dedup1Algorithm::kNaiveRealFirst;
  a.dedup.seed = 7;
  a.extract.threads = 3;
  GraphGenOptions b;
  b.representation = Representation::kCDup;
  b.dedup1_algorithm = Dedup1Algorithm::kGreedyVirtualFirst;
  b.dedup.seed = 99;
  b.extract.threads = 8;
  // C-DUP never runs a dedup pass, so those knobs cannot affect the graph.
  EXPECT_EQ(service::OptionsFingerprint(a), service::OptionsFingerprint(b));

  GraphGenOptions d1 = a;
  d1.representation = Representation::kDedup1;
  GraphGenOptions d2 = b;
  d2.representation = Representation::kDedup1;
  EXPECT_NE(service::OptionsFingerprint(d1), service::OptionsFingerprint(d2));
}

TEST_F(ServiceTest, MalformedProgramFailsBeforeExtraction) {
  service::GraphService svc(&data_.db);
  auto result = svc.Extract("garbage(");
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
  EXPECT_EQ(svc.Stats().failed, 1u);
  EXPECT_EQ(svc.Stats().cold_extractions, 0u);
}

TEST_F(ServiceTest, LruEvictionUnderTightBudget) {
  // Measure both graphs' footprints with an unlimited cache first.
  size_t fp_student = 0, fp_bipartite = 0;
  {
    service::GraphService probe(&data_.db);
    auto a = probe.Extract(kStudentQuery, CDupOptions());
    auto b = probe.Extract(kBipartiteQuery, CDupOptions());
    ASSERT_TRUE(a.ok() && b.ok());
    fp_student = (*a)->FootprintBytes();
    fp_bipartite = (*b)->FootprintBytes();
    ASSERT_GT(fp_student, 0u);
    ASSERT_GT(fp_bipartite, 0u);
  }

  // Budget fits either graph alone but not both together.
  service::ServiceOptions options;
  options.cache_budget_bytes = fp_student + fp_bipartite - 1;
  service::GraphService svc(&data_.db, options);

  auto student = svc.Extract(kStudentQuery, CDupOptions());
  ASSERT_TRUE(student.ok());
  auto bipartite = svc.Extract(kBipartiteQuery, CDupOptions());
  ASSERT_TRUE(bipartite.ok());

  service::ServiceStats stats = svc.Stats();
  EXPECT_EQ(stats.evictions, 1u);  // the student graph was pushed out
  EXPECT_EQ(stats.cache_graphs, 1u);
  EXPECT_LE(stats.cache_bytes, options.cache_budget_bytes);

  // The evicted handle is still alive for its holder...
  EXPECT_EQ((*student)->graph->NumVertices(), 40u);
  // ...but re-requesting it is a cold extraction, not a hit.
  auto again = svc.Extract(kStudentQuery, CDupOptions());
  ASSERT_TRUE(again.ok());
  EXPECT_NE(student->get(), again->get());
  EXPECT_EQ(svc.Stats().cold_extractions, 3u);
  EXPECT_EQ(svc.Stats().cache_hits, 0u);
}

TEST_F(ServiceTest, OversizedGraphIsNotCached) {
  service::ServiceOptions options;
  options.cache_budget_bytes = 1;  // nothing fits
  service::GraphService svc(&data_.db, options);
  auto a = svc.Extract(kStudentQuery, CDupOptions());
  ASSERT_TRUE(a.ok());
  service::ServiceStats stats = svc.Stats();
  EXPECT_EQ(stats.uncacheable, 1u);
  EXPECT_EQ(stats.cache_graphs, 0u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST_F(ServiceTest, NamedRegistryLifecycle) {
  service::GraphService svc(&data_.db);
  auto handle = svc.ExtractNamed("students", kStudentQuery, CDupOptions());
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();

  auto looked_up = svc.Lookup("students");
  ASSERT_TRUE(looked_up.ok());
  EXPECT_EQ(handle->get(), looked_up->get());

  // Strict Register refuses to clobber; ExtractNamed rebinds.
  EXPECT_EQ(svc.Register("students", *handle).code(),
            StatusCode::kAlreadyExists);
  auto rebound = svc.ExtractNamed("students", kBipartiteQuery, CDupOptions());
  ASSERT_TRUE(rebound.ok());
  EXPECT_EQ(svc.Lookup("students")->get(), rebound->get());

  auto rows = svc.List();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].name, "students");
  EXPECT_EQ(rows[0].active_vertices, 46u);
  EXPECT_GT(rows[0].footprint_bytes, 0u);

  EXPECT_TRUE(svc.Drop("students").ok());
  EXPECT_EQ(svc.Drop("students").code(), StatusCode::kNotFound);
  EXPECT_EQ(svc.Lookup("students").status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(svc.List().empty());

  // The dropped name never invalidated the client's handle.
  EXPECT_EQ((*rebound)->graph->NumActiveVertices(), 46u);
}

TEST_F(ServiceTest, NamedGraphSurvivesCacheEviction) {
  service::ServiceOptions options;
  options.cache_budget_bytes = 1;  // evict/reject everything immediately
  service::GraphService svc(&data_.db, options);
  auto handle = svc.ExtractNamed("pinned", kStudentQuery, CDupOptions());
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(svc.Stats().cache_graphs, 0u);
  auto looked_up = svc.Lookup("pinned");
  ASSERT_TRUE(looked_up.ok());
  EXPECT_EQ(looked_up->get(), handle->get());
  EXPECT_EQ((*looked_up)->graph->NumVertices(), 40u);
}

TEST_F(ServiceTest, AsyncExtractionDeliversThroughFutures) {
  service::ServiceOptions options;
  options.worker_threads = 4;
  service::GraphService svc(&data_.db, options);
  auto f1 = svc.ExtractAsync(kStudentQuery, CDupOptions());
  auto f2 = svc.ExtractAsync(kBipartiteQuery, CDupOptions());
  auto f3 = svc.ExtractAsync(kStudentQuery, CDupOptions());
  auto r1 = f1.get();
  auto r2 = f2.get();
  auto r3 = f3.get();
  ASSERT_TRUE(r1.ok() && r2.ok() && r3.ok());
  EXPECT_EQ((*r1)->graph->NumVertices(), 40u);
  EXPECT_EQ((*r2)->graph->NumVertices(), 46u);
  EXPECT_EQ(r1->get(), r3->get());  // same key, shared instance

  service::ServiceStats stats = svc.Stats();
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.cold_extractions, 2u);
  EXPECT_EQ(stats.cache_hits + stats.coalesced, 1u);
}

// N threads extract a mix of cached and uncached programs concurrently
// through both the sync and async paths while names are rebound and
// dropped. Run with -DGRAPHGEN_SANITIZE=thread to verify race freedom.
TEST_F(ServiceTest, FlatViewMaterializesAndCachesCsrAdapter) {
  service::GraphService svc(&data_.db);
  auto handle = svc.Extract(kStudentQuery, CDupOptions());
  ASSERT_TRUE(handle.ok());
  ASSERT_FALSE((*handle)->graph->HasFlatAdjacency());  // C-DUP

  auto flat = svc.FlatView(*handle);
  ASSERT_NE(flat, nullptr);
  EXPECT_TRUE(flat->HasFlatAdjacency());
  EXPECT_EQ(flat->ExpandedEdgeSet(), (*handle)->graph->ExpandedEdgeSet());
  EXPECT_EQ(svc.Stats().csr_builds, 1u);
  EXPECT_EQ(svc.Stats().flat_views, 1u);

  // Second request for the same graph shares the adapter.
  auto again = svc.FlatView(*handle);
  EXPECT_EQ(again.get(), flat.get());
  EXPECT_EQ(svc.Stats().csr_builds, 1u);

  // ClearCache drops the adapter cache too; the old view stays usable.
  svc.ClearCache();
  EXPECT_EQ(svc.Stats().flat_views, 0u);
  EXPECT_EQ(flat->NumVertices(), (*handle)->graph->NumVertices());
}

TEST_F(ServiceTest, FlatViewAliasesGraphsWithNativeFlatAdjacency) {
  service::GraphService svc(&data_.db);
  GraphGenOptions exp_options = CDupOptions();
  exp_options.representation = Representation::kExp;
  auto handle = svc.Extract(kStudentQuery, exp_options);
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE((*handle)->graph->HasFlatAdjacency());

  auto flat = svc.FlatView(*handle);
  // EXP is already CSR-backed: no adapter is built, the view is the graph.
  EXPECT_EQ(flat.get(), (*handle)->graph.get());
  EXPECT_EQ(svc.Stats().csr_builds, 0u);
}

TEST_F(ServiceTest, ConcurrentStress) {
  constexpr size_t kThreads = 8;
  constexpr int kItersPerThread = 25;

  service::ServiceOptions options;
  options.worker_threads = 4;
  service::GraphService svc(&data_.db, options);

  std::vector<GraphGenOptions> variants;
  variants.push_back(CDupOptions());
  {
    GraphGenOptions exp = CDupOptions();
    exp.representation = Representation::kExp;
    variants.push_back(exp);
  }
  const std::vector<std::pair<std::string, size_t>> programs = {
      {kStudentQuery, 40u}, {kBipartiteQuery, 46u}};

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        const auto& [program, vertices] = programs[(t + i) % programs.size()];
        const GraphGenOptions& opts = variants[i % variants.size()];
        Result<service::GraphHandle> result =
            (i % 3 == 0) ? svc.ExtractAsync(program, opts).get()
                         : svc.Extract(program, opts);
        if (!result.ok() || (*result)->graph->NumVertices() != vertices) {
          ++failures;
          continue;
        }
        // Exercise the registry from every thread too.
        std::string name = "g" + std::to_string(t);
        if (!svc.Register(name, *result, /*overwrite=*/true).ok()) ++failures;
        auto looked_up = svc.Lookup(name);
        if (!looked_up.ok()) ++failures;
        // Drop races with other iterations re-registering the same name;
        // either outcome is valid in this stress test.
        if (i % 10 == 9) (void)svc.Drop(name);
        svc.List();
        svc.Stats();
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(failures.load(), 0);
  service::ServiceStats stats = svc.Stats();
  EXPECT_EQ(stats.requests, kThreads * kItersPerThread);
  EXPECT_EQ(stats.failed, 0u);
  // Every request either hit the cache, ran the pipeline, or piggybacked
  // on an identical in-flight extraction — nothing fell through.
  EXPECT_EQ(stats.cache_hits + stats.cold_extractions + stats.coalesced,
            stats.requests);
  // 2 programs x 2 option variants, each extracted exactly once (budget is
  // unlimited, so nothing was ever evicted and re-extracted).
  EXPECT_EQ(stats.cold_extractions, 4u);
}

TEST_F(ServiceTest, FootprintMatchesMemoryBytesAcrossRepresentations) {
  GraphGen engine(&data_.db);
  for (Representation r :
       {Representation::kCDup, Representation::kExp, Representation::kDedup1,
        Representation::kDedup2, Representation::kBitmap1,
        Representation::kBitmap2}) {
    GraphGenOptions o = CDupOptions();
    o.representation = r;
    auto extracted = engine.Extract(kStudentQuery, o);
    ASSERT_TRUE(extracted.ok()) << extracted.status().ToString();
    GraphFootprint fp = extracted->graph->MemoryFootprint();
    EXPECT_EQ(fp.Total(), extracted->graph->MemoryBytes())
        << RepresentationToString(r);
    EXPECT_GT(fp.adjacency_bytes, 0u) << RepresentationToString(r);
  }
}

TEST(GraphCacheTest, LruOrderAndBudget) {
  auto make_graph = [](size_t vertices) {
    auto g = std::make_shared<ExtractedGraph>();
    g->graph = std::make_unique<ExpandedGraph>(vertices);
    return std::static_pointer_cast<const ExtractedGraph>(g);
  };
  auto a = make_graph(10);
  auto b = make_graph(10);
  auto c = make_graph(10);
  const size_t each = a->FootprintBytes();
  ASSERT_GT(each, 0u);

  service::GraphCache cache(2 * each);
  EXPECT_TRUE(cache.Put("a", a));
  EXPECT_TRUE(cache.Put("b", b));
  EXPECT_EQ(cache.size(), 2u);

  // Touch "a" so "b" becomes the LRU victim when "c" arrives.
  EXPECT_NE(cache.Get("a"), nullptr);
  EXPECT_TRUE(cache.Put("c", c));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.Get("b"), nullptr);
  EXPECT_NE(cache.Get("a"), nullptr);
  EXPECT_NE(cache.Get("c"), nullptr);

  // An entry larger than the whole budget is rejected outright.
  service::GraphCache tiny(1);
  EXPECT_FALSE(tiny.Put("a", a));
  EXPECT_EQ(tiny.size(), 0u);

  // Budget 0 = unlimited.
  service::GraphCache unlimited(0);
  EXPECT_TRUE(unlimited.Put("a", a));
  EXPECT_TRUE(unlimited.Put("b", b));
  EXPECT_TRUE(unlimited.Put("c", c));
  EXPECT_EQ(unlimited.size(), 3u);
  EXPECT_EQ(unlimited.evictions(), 0u);
}

TEST(GraphCacheTest, SetBudgetEvictsToEmptyWhenLastEntryExceedsIt) {
  auto make_graph = [](size_t vertices) {
    auto g = std::make_shared<ExtractedGraph>();
    g->graph = std::make_unique<ExpandedGraph>(vertices);
    return std::static_pointer_cast<const ExtractedGraph>(g);
  };
  auto a = make_graph(10);
  auto b = make_graph(10);
  const size_t each = a->FootprintBytes();
  ASSERT_GT(each, 0u);

  service::GraphCache cache(4 * each);
  EXPECT_TRUE(cache.Put("a", a));
  EXPECT_TRUE(cache.Put("b", b));
  EXPECT_EQ(cache.size(), 2u);

  // Shrinking to one entry's footprint evicts the LRU entry only.
  cache.SetBudget(each);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.budget_bytes(), each);
  EXPECT_EQ(cache.Get("a"), nullptr);  // "a" was least recently used
  EXPECT_NE(cache.Get("b"), nullptr);

  // Shrinking below the single remaining entry must evict it too — a
  // resident graph must never stay pinned over-budget forever.
  cache.SetBudget(each - 1);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.Get("b"), nullptr);

  // Growing the budget back admits new entries again.
  cache.SetBudget(2 * each);
  EXPECT_TRUE(cache.Put("a", a));
  EXPECT_EQ(cache.size(), 1u);
}

TEST_F(ServiceTest, SetCacheBudgetReleasesResidentGraphs) {
  service::GraphService svc(&data_.db);
  auto g = svc.Extract(kStudentQuery);
  ASSERT_TRUE(g.ok());
  ASSERT_GT(svc.Stats().cache_bytes, 0u);
  // Clients holding the handle keep the graph alive; the cache lets go.
  svc.SetCacheBudget(1);
  EXPECT_EQ(svc.Stats().cache_bytes, 0u);
  EXPECT_GT((*g)->graph->NumVertices(), 0u);
}

// ------------------------------------------------------------- robustness

/// ServiceTest plus a quiet fault registry around every test: these tests
/// arm process-global fault points and must never leak armed state.
class RobustServiceTest : public ServiceTest {
 protected:
  void SetUp() override {
    ServiceTest::SetUp();
    fault::FaultRegistry::Instance().DisarmAll();
  }
  void TearDown() override { fault::FaultRegistry::Instance().DisarmAll(); }

  static fault::FaultSpec OnHit(uint64_t n, fault::Action action) {
    fault::FaultSpec spec;
    spec.fire_on_hit = n;
    spec.action = action;
    return spec;
  }

  /// Spins until `pred` holds (the stalled-owner tests synchronize on
  /// fault-point fire counters and service stats, not sleeps).
  template <typename Pred>
  static bool WaitFor(Pred pred, double seconds = 5.0) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(seconds);
    while (!pred()) {
      if (std::chrono::steady_clock::now() > deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return true;
  }
};

TEST_F(RobustServiceTest, CancelledBeforeStartSurfacesAndCounts) {
  service::GraphService svc(&data_.db);
  service::RequestOptions request;
  request.cancel = CancelToken::Cancellable();
  request.cancel.RequestCancel();
  auto result = svc.Extract(kStudentQuery, CDupOptions(), request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  service::ServiceStats stats = svc.Stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.failed, 1u);
  // Nothing half-extracted was cached; a clean retry works.
  EXPECT_EQ(stats.cache_graphs, 0u);
  EXPECT_TRUE(svc.Extract(kStudentQuery, CDupOptions()).ok());
}

TEST_F(RobustServiceTest, ExpiredDeadlineSurfacesAndCounts) {
  service::GraphService svc(&data_.db);
  service::RequestOptions request;
  request.deadline_seconds = 1e-9;
  auto result = svc.Extract(kStudentQuery, CDupOptions(), request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(svc.Stats().deadline_exceeded, 1u);
  EXPECT_TRUE(svc.Extract(kStudentQuery, CDupOptions()).ok());
}

TEST_F(RobustServiceTest, MemoryCeilingSurfacesAndCounts) {
  obs::Counter* hits =
      obs::MetricsRegistry::Global().GetCounter("query.mem_limit_hits");
  const uint64_t hits_before = hits->Value();

  service::GraphService svc(&data_.db);
  service::RequestOptions request;
  request.memory_limit_bytes = 1;  // nothing fits
  auto result = svc.Extract(kStudentQuery, CDupOptions(), request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(svc.Stats().resource_exhausted, 1u);
  EXPECT_GT(hits->Value(), hits_before);
  // The ceiling is per-request: the next unlimited request succeeds.
  EXPECT_TRUE(svc.Extract(kStudentQuery, CDupOptions()).ok());
}

TEST_F(RobustServiceTest, AsyncInjectedThrowResolvesTheFuture) {
  service::GraphService svc(&data_.db);
  // A std::bad_alloc out of the scan must resolve the future with
  // ExecutionError instead of terminating a pool worker.
  fault::FaultRegistry::Instance().Arm(
      "query.scan", OnHit(1, fault::Action::kThrow));
  auto future = svc.ExtractAsync(kStudentQuery, CDupOptions());
  Result<service::GraphHandle> result = future.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kExecutionError);

  // Same contract when the throw happens at the service boundary itself.
  fault::FaultRegistry::Instance().Arm(
      "service.extract.begin", OnHit(1, fault::Action::kThrow));
  result = svc.ExtractAsync(kStudentQuery, CDupOptions()).get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kExecutionError);

  // The pool and the cache survived both.
  EXPECT_TRUE(svc.Extract(kStudentQuery, CDupOptions()).ok());
}

TEST_F(RobustServiceTest, SingleFlightFailureHygiene) {
  fault::FaultRegistry& registry = fault::FaultRegistry::Instance();
  // The pool must fit the stalled owner plus both waiters at once —
  // DefaultThreadCount() can be 1 on a small CI box.
  service::ServiceOptions opts;
  opts.worker_threads = 4;
  service::GraphService svc(&data_.db, opts);

  // The owner stalls at the service boundary while waiters pile onto its
  // flight; when released it dies in the parser. Everyone must see the
  // SAME terminal Status, the key must not be poisoned, and nothing may
  // be cached.
  const uint64_t fires0 = registry.fires("service.extract.begin");
  registry.Arm("service.extract.begin", OnHit(1, fault::Action::kStall));
  registry.Arm("extract.parse", OnHit(1, fault::Action::kFail));

  auto owner = svc.ExtractAsync(kStudentQuery, CDupOptions());
  ASSERT_TRUE(WaitFor([&] {
    return registry.fires("service.extract.begin") > fires0;
  })) << "owner never reached the stall point";

  // Two waiters coalesce onto the stalled owner's flight.
  auto w1 = svc.ExtractAsync(kStudentQuery, CDupOptions());
  auto w2 = svc.ExtractAsync(kStudentQuery, CDupOptions());
  ASSERT_TRUE(WaitFor([&] { return svc.Stats().coalesced >= 2; }))
      << "waiters never coalesced";

  // Release the stall ONLY — the parse fault must stay armed.
  registry.Disarm("service.extract.begin");

  Result<service::GraphHandle> ro = owner.get();
  Result<service::GraphHandle> r1 = w1.get();
  Result<service::GraphHandle> r2 = w2.get();
  ASSERT_FALSE(ro.ok());
  ASSERT_FALSE(r1.ok());
  ASSERT_FALSE(r2.ok());
  EXPECT_NE(ro.status().message().find("extract.parse"), std::string::npos)
      << ro.status().ToString();
  EXPECT_EQ(ro.status().message(), r1.status().message());
  EXPECT_EQ(ro.status().message(), r2.status().message());

  service::ServiceStats stats = svc.Stats();
  EXPECT_EQ(stats.failed, 3u);       // owner + both waiters
  EXPECT_EQ(stats.cache_graphs, 0u); // the failure was not cached
  EXPECT_EQ(stats.coalesced, 2u);

  // The key is immediately retryable once the fault clears.
  registry.DisarmAll();
  auto retry = svc.Extract(kStudentQuery, CDupOptions());
  EXPECT_TRUE(retry.ok()) << retry.status().ToString();
}

TEST_F(RobustServiceTest, AdmissionRejectsWhenSaturated) {
  fault::FaultRegistry& registry = fault::FaultRegistry::Instance();
  service::ServiceOptions opts;
  opts.max_inflight_extractions = 1;
  opts.admission_queue_capacity = 0;  // no waiting: reject outright
  service::GraphService svc(&data_.db, opts);

  const uint64_t fires0 = registry.fires("service.extract.begin");
  registry.Arm("service.extract.begin", OnHit(1, fault::Action::kStall));
  auto owner = svc.ExtractAsync(kStudentQuery, CDupOptions());
  ASSERT_TRUE(WaitFor([&] {
    return registry.fires("service.extract.begin") > fires0;
  })) << "owner never reached the stall point";

  // A different graph cannot coalesce; with the one slot held and no
  // queue, it must bounce immediately.
  auto rejected = svc.Extract(kBipartiteQuery, CDupOptions());
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kOverloaded);
  EXPECT_EQ(svc.Stats().overload_rejected, 1u);

  registry.Disarm("service.extract.begin");
  Result<service::GraphHandle> ro = owner.get();
  EXPECT_TRUE(ro.ok()) << ro.status().ToString();
  // With the slot free again the rejected graph extracts fine.
  EXPECT_TRUE(svc.Extract(kBipartiteQuery, CDupOptions()).ok());
}

TEST_F(RobustServiceTest, QueuedRequestHonorsItsDeadline) {
  fault::FaultRegistry& registry = fault::FaultRegistry::Instance();
  service::ServiceOptions opts;
  opts.max_inflight_extractions = 1;
  opts.admission_queue_capacity = 4;
  service::GraphService svc(&data_.db, opts);

  const uint64_t fires0 = registry.fires("service.extract.begin");
  registry.Arm("service.extract.begin", OnHit(1, fault::Action::kStall));
  auto owner = svc.ExtractAsync(kStudentQuery, CDupOptions());
  ASSERT_TRUE(WaitFor([&] {
    return registry.fires("service.extract.begin") > fires0;
  })) << "owner never reached the stall point";

  // Queued behind the stalled owner; the deadline covers queue time, so
  // it must expire in the queue rather than wait forever.
  service::RequestOptions request;
  request.deadline_seconds = 0.05;
  auto expired = svc.Extract(kBipartiteQuery, CDupOptions(), request);
  ASSERT_FALSE(expired.ok());
  EXPECT_EQ(expired.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(svc.Stats().deadline_exceeded, 1u);

  registry.Disarm("service.extract.begin");
  EXPECT_TRUE(owner.get().ok());
}

TEST_F(RobustServiceTest, StaleFallbackServesLastKnownGood) {
  fault::FaultRegistry& registry = fault::FaultRegistry::Instance();
  service::GraphService svc(&data_.db);

  auto good = svc.Extract(kStudentQuery, CDupOptions());
  ASSERT_TRUE(good.ok());
  // Drop the primary cache; only the stale store remembers the graph.
  svc.ClearCache();

  // Re-extraction now fails — without allow_stale that propagates...
  registry.Arm("extract.parse", OnHit(1, fault::Action::kFail));
  auto hard = svc.Extract(kStudentQuery, CDupOptions());
  ASSERT_FALSE(hard.ok());
  EXPECT_EQ(svc.Stats().stale_served, 0u);

  // ...with allow_stale the last-known-good instance is served instead.
  registry.Arm("extract.parse", OnHit(1, fault::Action::kFail));
  service::RequestOptions request;
  request.allow_stale = true;
  auto stale = svc.Extract(kStudentQuery, CDupOptions(), request);
  ASSERT_TRUE(stale.ok()) << stale.status().ToString();
  EXPECT_EQ(stale->get(), good->get());  // literally the old graph
  EXPECT_EQ(svc.Stats().stale_served, 1u);

  // allow_stale on a healthy pipeline changes nothing.
  auto fresh = svc.Extract(kBipartiteQuery, CDupOptions(), request);
  EXPECT_TRUE(fresh.ok());
}

// ---------------------------------------------------------------------------
// Incremental serving: version-vector freshness, delta patching, fallbacks.

class IncrementalServiceTest : public ServiceTest {
 protected:
  static std::vector<rel::Row> NewStudents(int64_t base, size_t n) {
    std::vector<rel::Row> rows;
    for (size_t i = 0; i < n; ++i) {
      const int64_t id = base + static_cast<int64_t>(i);
      rows.push_back(
          {rel::Value(id), rel::Value("student_" + std::to_string(id))});
    }
    return rows;
  }

  static std::vector<rel::Row> NewEnrollments(
      const std::vector<std::pair<int64_t, int64_t>>& pairs) {
    std::vector<rel::Row> rows;
    for (const auto& [sid, course] : pairs) {
      rows.push_back({rel::Value(sid), rel::Value(course)});
    }
    return rows;
  }
};

// The staleness hole this PR closes: a cached graph whose tables have
// since changed must never be served as a hit, even with incremental
// serving disabled (the conservative db-tick path).
TEST_F(IncrementalServiceTest, MutatedTableIsNotServedStale) {
  service::ServiceOptions opts;
  opts.incremental = false;
  service::GraphService svc(&data_.db, opts);

  auto before = svc.Extract(kStudentQuery, CDupOptions());
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  const size_t vertices_before = (*before)->graph->NumVertices();

  ASSERT_TRUE(svc.Append("Student", NewStudents(1000, 3)).ok());
  ASSERT_TRUE(svc
                  .Append("TookCourse", NewEnrollments({{1000, 0},
                                                        {1001, 0},
                                                        {1002, 1}}))
                  .ok());

  auto after = svc.Extract(kStudentQuery, CDupOptions());
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_NE(before->get(), after->get());
  EXPECT_EQ((*after)->graph->NumVertices(), vertices_before + 3);

  service::ServiceStats stats = svc.Stats();
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cold_extractions, 2u);
  EXPECT_EQ(stats.delta_patched, 0u);

  // Unchanged database: the refreshed entry is a plain hit again.
  auto hit = svc.Extract(kStudentQuery, CDupOptions());
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(after->get(), hit->get());
  EXPECT_EQ(svc.Stats().cache_hits, 1u);
}

// With incremental serving on (the default), a behind-version entry is
// advanced by the delta path instead of a cold re-extraction, and the
// patched graph matches what a cold run over the full data produces.
TEST_F(IncrementalServiceTest, BehindVersionEntryIsDeltaPatched) {
  service::GraphService svc(&data_.db);

  auto before = svc.Extract(kStudentQuery, CDupOptions());
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  ASSERT_NE((*before)->incremental, nullptr)
      << "service extractions must capture incremental state";

  ASSERT_TRUE(svc.Append("Student", NewStudents(2000, 2)).ok());
  ASSERT_TRUE(svc
                  .Append("TookCourse", NewEnrollments({{2000, 2},
                                                        {2001, 2},
                                                        {0, 3}}))
                  .ok());

  auto patched = svc.Extract(kStudentQuery, CDupOptions());
  ASSERT_TRUE(patched.ok()) << patched.status().ToString();
  EXPECT_NE(before->get(), patched->get());

  service::ServiceStats stats = svc.Stats();
  EXPECT_EQ(stats.delta_patched, 1u);
  EXPECT_EQ(stats.delta_fallback, 0u);
  EXPECT_EQ(stats.cold_extractions, 1u);  // the patch is not a cold run

  // Parity with a cold extraction over the grown database.
  service::GraphService witness(&data_.db);
  auto fresh = witness.Extract(kStudentQuery, CDupOptions());
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ((*patched)->graph->NumVertices(), (*fresh)->graph->NumVertices());
  EXPECT_EQ((*patched)->stats.condensed_edges, (*fresh)->stats.condensed_edges);
  EXPECT_EQ((*patched)->stats.virtual_nodes, (*fresh)->stats.virtual_nodes);
  EXPECT_EQ((*patched)->stats.real_nodes, (*fresh)->stats.real_nodes);

  // The patched entry replaced the stale one and is fresh now.
  auto hit = svc.Extract(kStudentQuery, CDupOptions());
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(patched->get(), hit->get());
  EXPECT_EQ(svc.Stats().cache_hits, 1u);
}

// A rebased table (arbitrary mutation, not an append) cannot be patched:
// the entry is invalidated and re-extracted cold, counted as a fallback.
TEST_F(IncrementalServiceTest, RebasedTableFallsBackToColdExtraction) {
  service::GraphService svc(&data_.db);

  auto before = svc.Extract(kStudentQuery, CDupOptions());
  ASSERT_TRUE(before.ok()) << before.status().ToString();

  // GetMutableTable stamps a rebase: contents may have changed arbitrarily.
  auto table = data_.db.GetMutableTable("TookCourse");
  ASSERT_TRUE(table.ok());
  (*table)->AppendUnchecked({rel::Value(int64_t{1}), rel::Value(int64_t{4})});

  auto after = svc.Extract(kStudentQuery, CDupOptions());
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_NE(before->get(), after->get());

  service::ServiceStats stats = svc.Stats();
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.delta_patched, 0u);
  EXPECT_EQ(stats.delta_fallback, 1u);
  EXPECT_EQ(stats.cold_extractions, 2u);
}

// Appends through the service are serialized against in-flight
// extractions by db_mu_: concurrent ingest and extraction must always
// produce a successful, internally-consistent result (TSan-checked).
TEST_F(IncrementalServiceTest, ConcurrentIngestAndExtractIsSafe) {
  service::GraphService svc(&data_.db);

  constexpr int kWaves = 8;
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};

  std::thread ingest([&] {
    for (int w = 0; w < kWaves; ++w) {
      const int64_t base = 3000 + w * 10;
      if (!svc.Append("Student", NewStudents(base, 2)).ok() ||
          !svc.Append("TookCourse",
                      NewEnrollments({{base, w % 6}, {base + 1, w % 6}}))
               .ok()) {
        failures.fetch_add(1);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    done.store(true);
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      while (!done.load()) {
        auto result = svc.Extract(kStudentQuery, CDupOptions());
        if (!result.ok()) failures.fetch_add(1);
      }
    });
  }
  ingest.join();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Quiesced: one more extraction sees all appended rows.
  auto final = svc.Extract(kStudentQuery, CDupOptions());
  ASSERT_TRUE(final.ok()) << final.status().ToString();
  service::GraphService witness(&data_.db);
  auto fresh = witness.Extract(kStudentQuery, CDupOptions());
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ((*final)->graph->NumVertices(), (*fresh)->graph->NumVertices());
  EXPECT_EQ((*final)->stats.condensed_edges, (*fresh)->stats.condensed_edges);
}

// Appending to a service built over a const database is refused.
TEST_F(IncrementalServiceTest, ReadOnlyServiceRefusesAppends) {
  const rel::Database& ro = data_.db;
  service::GraphService svc(&ro);
  Status status = svc.Append("Student", NewStudents(5000, 1));
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(RobustServiceTest, RobustnessCountersAreExported) {
  service::GraphService svc(&data_.db);
  service::RequestOptions request;
  request.deadline_seconds = 1e-9;
  (void)svc.Extract(kStudentQuery, CDupOptions(), request);

  bool saw_deadline = false, saw_cancelled = false, saw_overload = false,
       saw_stale = false, saw_inflight = false;
  for (const obs::MetricValue& m : svc.MetricsSnapshot()) {
    if (m.name == "service.deadline_exceeded") {
      saw_deadline = true;
      EXPECT_EQ(m.counter, 1u);
    }
    if (m.name == "service.cancelled") saw_cancelled = true;
    if (m.name == "service.overload_rejected") saw_overload = true;
    if (m.name == "service.stale_served") saw_stale = true;
    if (m.name == "service.inflight_extractions") {
      saw_inflight = true;
      EXPECT_EQ(m.gauge, 0);  // nothing running now
    }
  }
  EXPECT_TRUE(saw_deadline);
  EXPECT_TRUE(saw_cancelled);
  EXPECT_TRUE(saw_overload);
  EXPECT_TRUE(saw_stale);
  EXPECT_TRUE(saw_inflight);
}

}  // namespace
}  // namespace graphgen
