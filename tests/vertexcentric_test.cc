#include <gtest/gtest.h>

#include <atomic>

#include "repr/cdup_graph.h"
#include "test_util.h"
#include "vertexcentric/vertex_centric.h"

namespace graphgen {
namespace {

using testing::MakeFigure1Graph;

// Counts supersteps and halts after a fixed number of rounds.
class CountingExecutor : public Executor {
 public:
  explicit CountingExecutor(size_t rounds) : rounds_(rounds) {}

  void Compute(VertexContext& ctx) override {
    calls_.fetch_add(1, std::memory_order_relaxed);
    if (ctx.superstep() + 1 >= rounds_) ctx.VoteToHalt();
  }

  uint64_t calls() const { return calls_.load(); }

 private:
  size_t rounds_;
  std::atomic<uint64_t> calls_{0};
};

TEST(VertexCentricTest, RunsUntilAllHalt) {
  CDupGraph g(MakeFigure1Graph());
  CountingExecutor exec(3);
  VertexCentric vc(&g);
  auto stats = vc.Run(&exec);
  EXPECT_EQ(stats.supersteps, 3u);
  EXPECT_EQ(exec.calls(), 3u * 5u);
}

TEST(VertexCentricTest, MaxSuperstepsCapsRun) {
  CDupGraph g(MakeFigure1Graph());
  CountingExecutor exec(100);
  VertexCentric vc(&g);
  auto stats = vc.Run(&exec, 4);
  EXPECT_EQ(stats.supersteps, 4u);
}

TEST(VertexCentricTest, SkipsDeletedVertices) {
  CDupGraph g(MakeFigure1Graph());
  ASSERT_TRUE(g.DeleteVertex(2).ok());
  CountingExecutor exec(1);
  VertexCentric vc(&g);
  vc.Run(&exec);
  EXPECT_EQ(exec.calls(), 4u);
}

TEST(VertexCentricTest, HaltedVerticesStayHalted) {
  CDupGraph g(MakeFigure1Graph());

  // Vertex 0 halts in step 0; everyone else in step 1.
  class PartialHalt : public Executor {
   public:
    void Compute(VertexContext& ctx) override {
      calls.fetch_add(1);
      if (ctx.id() == 0 || ctx.superstep() >= 1) ctx.VoteToHalt();
    }
    std::atomic<uint64_t> calls{0};
  };
  PartialHalt exec;
  VertexCentric vc(&g);
  auto stats = vc.Run(&exec);
  EXPECT_EQ(stats.supersteps, 2u);
  EXPECT_EQ(exec.calls.load(), 5u + 4u);
}

TEST(VertexCentricTest, AfterSuperstepCanTerminate) {
  CDupGraph g(MakeFigure1Graph());
  class StopAfterOne : public Executor {
   public:
    void Compute(VertexContext&) override {}
    bool AfterSuperstep(size_t) override { return false; }
  };
  StopAfterOne exec;
  VertexCentric vc(&g);
  auto stats = vc.Run(&exec);
  EXPECT_EQ(stats.supersteps, 1u);
}

TEST(VertexCentricTest, NeighborAccessIsGasStyle) {
  CDupGraph g(MakeFigure1Graph());
  // Sum of neighbor ids via direct neighbor access.
  class SumNeighbors : public Executor {
   public:
    explicit SumNeighbors(std::vector<uint64_t>* out) : out_(out) {}
    void Compute(VertexContext& ctx) override {
      uint64_t sum = 0;
      ctx.ForEachNeighbor([&](NodeId v) { sum += v; });
      (*out_)[ctx.id()] = sum;
      ctx.VoteToHalt();
    }
    std::vector<uint64_t>* out_;
  };
  std::vector<uint64_t> sums(5, 0);
  SumNeighbors exec(&sums);
  VertexCentric vc(&g);
  vc.Run(&exec);
  EXPECT_EQ(sums[0], 1u + 2u + 3u);
  EXPECT_EQ(sums[4], 3u);
}

}  // namespace
}  // namespace graphgen
