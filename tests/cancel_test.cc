#include "common/cancel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "gen/relational_generators.h"
#include "obs/metrics.h"
#include "planner/extractor.h"

namespace graphgen {
namespace {

TEST(CancelTokenTest, NullTokenNeverCancels) {
  CancelToken token;
  EXPECT_FALSE(token.cancellable());
  EXPECT_FALSE(token.CancelRequested());
  token.RequestCancel();  // no-op, must not crash
  EXPECT_FALSE(token.CancelRequested());
}

TEST(CancelTokenTest, CopiesShareTheFlag) {
  CancelToken token = CancelToken::Cancellable();
  CancelToken copy = token;
  EXPECT_TRUE(copy.cancellable());
  EXPECT_FALSE(copy.CancelRequested());
  token.RequestCancel();
  EXPECT_TRUE(copy.CancelRequested());
}

TEST(MemoryBudgetTest, ChargesReleasesAndPeak) {
  MemoryBudget budget(1000);
  EXPECT_TRUE(budget.TryCharge(600, "a").ok());
  EXPECT_EQ(budget.used(), 600u);
  // Over-limit charge is refused and rolled back.
  Status over = budget.TryCharge(500, "b");
  EXPECT_EQ(over.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(budget.used(), 600u);
  EXPECT_TRUE(budget.TryCharge(400, "c").ok());
  EXPECT_EQ(budget.used(), 1000u);
  EXPECT_EQ(budget.peak(), 1000u);
  budget.Release(400);
  EXPECT_EQ(budget.used(), 600u);
  EXPECT_EQ(budget.peak(), 1000u);  // peak is sticky
}

TEST(MemoryBudgetTest, LimitZeroTracksButNeverFails) {
  MemoryBudget budget(0);
  EXPECT_TRUE(budget.TryCharge(size_t{1} << 40, "huge").ok());
  EXPECT_EQ(budget.peak(), size_t{1} << 40);
}

TEST(ExecContextTest, CheckOrderingAndDeadline) {
  ExecContext ctx;
  EXPECT_TRUE(ctx.Check().ok());  // inert default

  ctx.cancel = CancelToken::Cancellable();
  ctx.SetDeadlineAfter(-1.0);  // <= 0 = none
  EXPECT_FALSE(ctx.has_deadline);
  ctx.SetDeadlineAfter(1e-9);
  EXPECT_TRUE(ctx.has_deadline);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_EQ(ctx.Check().code(), StatusCode::kDeadlineExceeded);

  // Cancellation wins over an expired deadline.
  ctx.cancel.RequestCancel();
  EXPECT_EQ(ctx.Check().code(), StatusCode::kCancelled);
}

TEST(ExecContextTest, ChargeWithoutBudgetIsFree) {
  ExecContext ctx;
  EXPECT_TRUE(ctx.Charge(size_t{1} << 50, "anything").ok());
  ctx.Release(size_t{1} << 50);  // no-op
}

TEST(ExecContextTest, FailedChargeBumpsGlobalCounter) {
  obs::Counter* hits =
      obs::MetricsRegistry::Global().GetCounter("query.mem_limit_hits");
  const uint64_t before = hits->Value();
  ExecContext ctx;
  ctx.budget = std::make_shared<MemoryBudget>(10);
  EXPECT_EQ(ctx.Charge(100, "too big").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(hits->Value(), before + 1);
}

TEST(ScopedChargeTest, RefundsOnScopeExitAndGrow) {
  ExecContext ctx;
  ctx.budget = std::make_shared<MemoryBudget>(1000);
  {
    ScopedCharge charge;
    ASSERT_TRUE(charge.Acquire(ctx, 300, "scratch").ok());
    EXPECT_EQ(ctx.budget->used(), 300u);
    // Grow folds bytes charged through the same context into the lease.
    ASSERT_TRUE(ctx.Charge(200, "more").ok());
    charge.Grow(200);
    EXPECT_EQ(ctx.budget->used(), 500u);
  }
  EXPECT_EQ(ctx.budget->used(), 0u);  // one refund for both
}

TEST(AbortSlotTest, FirstFailureWins) {
  AbortSlot slot;
  EXPECT_FALSE(slot.Failed());
  EXPECT_TRUE(slot.Take().ok());
  slot.Fail(Status::Cancelled("first"));
  slot.Fail(Status::Internal("second"));
  EXPECT_TRUE(slot.Failed());
  EXPECT_EQ(slot.Take().code(), StatusCode::kCancelled);
  EXPECT_EQ(slot.Take().message(), "first");
}

TEST(AbortSlotTest, ContinueParksContextFailures) {
  AbortSlot slot;
  ExecContext ctx;
  ctx.cancel = CancelToken::Cancellable();
  EXPECT_TRUE(slot.Continue(ctx));
  ctx.cancel.RequestCancel();
  EXPECT_FALSE(slot.Continue(ctx));
  EXPECT_EQ(slot.Take().code(), StatusCode::kCancelled);
}

// ---------------------------------------------------------------- pipeline

const char* kCoEnrollment =
    "Nodes(ID, Name) :- Student(ID, Name).\n"
    "Edges(ID1, ID2) :- TookCourse(ID1, C), TookCourse(ID2, C).";

planner::ExtractOptions PipelineOptions(query::ExecEngine engine,
                                        bool fuse = true) {
  planner::ExtractOptions o;
  o.large_output_factor = 0.0;
  o.preprocess = false;
  o.engine = engine;
  o.fuse_join_distinct = fuse;
  o.fuse_min_output_bytes = 0;  // fusion (when on) for any size
  return o;
}

class PipelineCancelTest : public ::testing::Test {
 protected:
  void SetUp() override { data_ = gen::MakeUniversity(500, 20, 100, 8.0); }
  gen::GeneratedDatabase data_;
};

TEST_F(PipelineCancelTest, PreCancelledExtractionUnwindsOnEveryEngine) {
  for (query::ExecEngine engine :
       {query::ExecEngine::kColumnar, query::ExecEngine::kRowAtATime}) {
    planner::ExtractOptions options = PipelineOptions(engine);
    options.ctx.cancel = CancelToken::Cancellable();
    options.ctx.cancel.RequestCancel();
    auto result = planner::ExtractFromQuery(data_.db, kCoEnrollment, options);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  }
}

TEST_F(PipelineCancelTest, ExpiredDeadlineUnwindsOnEveryEngine) {
  for (query::ExecEngine engine :
       {query::ExecEngine::kColumnar, query::ExecEngine::kRowAtATime}) {
    planner::ExtractOptions options = PipelineOptions(engine);
    options.ctx.SetDeadlineAfter(1e-9);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    auto result = planner::ExtractFromQuery(data_.db, kCoEnrollment, options);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  }
}

TEST_F(PipelineCancelTest, MemoryCeilingSurfacesAsResourceExhausted) {
  struct Variant {
    query::ExecEngine engine;
    bool fuse;
  };
  for (Variant v : {Variant{query::ExecEngine::kColumnar, true},
                    Variant{query::ExecEngine::kColumnar, false},
                    Variant{query::ExecEngine::kRowAtATime, true}}) {
    planner::ExtractOptions options = PipelineOptions(v.engine, v.fuse);
    options.ctx.budget = std::make_shared<MemoryBudget>(size_t{8} << 10);
    auto result = planner::ExtractFromQuery(data_.db, kCoEnrollment, options);
    ASSERT_FALSE(result.ok()) << "engine " << static_cast<int>(v.engine);
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
        << result.status().ToString();
  }
}

TEST_F(PipelineCancelTest, GenerousBudgetSucceedsAndTracksPeak) {
  planner::ExtractOptions options =
      PipelineOptions(query::ExecEngine::kColumnar);
  options.ctx.budget = std::make_shared<MemoryBudget>(size_t{4} << 30);
  auto result = planner::ExtractFromQuery(data_.db, kCoEnrollment, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(options.ctx.budget->peak(), 0u);
  EXPECT_LE(options.ctx.budget->peak(), options.ctx.budget->limit());

  // A budget never changes the extracted graph: compare against a run
  // without one.
  auto plain = planner::ExtractFromQuery(
      data_.db, kCoEnrollment, PipelineOptions(query::ExecEngine::kColumnar));
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(planner::DiffExtraction(*result, *plain), "");
}

// Mid-flight cancellation latency: a deliberately heavy self-join (about
// 25M candidate pairs) is cancelled shortly after it starts; the morsel
// polls must unwind it orders of magnitude before it would finish. The
// wall guard is intentionally generous — sanitizer builds on loaded CI
// machines still pass it easily, a hung pipeline never does.
TEST(CancelLatencyTest, MidFlightCancellationUnwindsQuickly) {
  // ~100 courses x (10000*40/100)^2 enrollment pairs each = ~1.6e9
  // candidates; runs for seconds uncancelled, so a 5ms cancel lands
  // mid-join.
  gen::GeneratedDatabase data = gen::MakeUniversity(10000, 40, 100, 40.0);
  planner::ExtractOptions options =
      PipelineOptions(query::ExecEngine::kColumnar);
  options.ctx.cancel = CancelToken::Cancellable();
  CancelToken token = options.ctx.cancel;

  std::atomic<int64_t> cancel_ns{0};
  std::thread canceller([token, &cancel_ns] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    cancel_ns.store(std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now().time_since_epoch())
                        .count(),
                    std::memory_order_release);
    token.RequestCancel();
  });
  auto result = planner::ExtractFromQuery(data.db, kCoEnrollment, options);
  const int64_t now_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  canceller.join();
  const double after_cancel =
      (now_ns - cancel_ns.load(std::memory_order_acquire)) * 1e-9;

  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_LT(after_cancel, 10.0) << "cancellation latency out of bounds";
}

}  // namespace
}  // namespace graphgen
