#include <gtest/gtest.h>

#include "graph/storage.h"
#include "test_util.h"

namespace graphgen {
namespace {

using testing::AddMember;
using testing::MakeFigure1Graph;

TEST(NodeRefTest, PackingRoundTrip) {
  NodeRef r = NodeRef::Real(42);
  EXPECT_TRUE(r.is_real());
  EXPECT_FALSE(r.is_virtual());
  EXPECT_EQ(r.index(), 42u);
  NodeRef v = NodeRef::Virtual(42);
  EXPECT_TRUE(v.is_virtual());
  EXPECT_EQ(v.index(), 42u);
  EXPECT_NE(r, v);
  EXPECT_EQ(NodeRef::FromRaw(v.raw()), v);
}

TEST(NodeRefTest, DefaultIsInvalid) {
  NodeRef r;
  EXPECT_FALSE(r.valid());
  EXPECT_EQ(r.ToString(), "<nil>");
  EXPECT_EQ(NodeRef::Real(3).ToString(), "r3");
  EXPECT_EQ(NodeRef::Virtual(7).ToString(), "v7");
}

TEST(StorageTest, AddNodesAndEdges) {
  CondensedStorage g;
  NodeId first = g.AddRealNodes(3);
  EXPECT_EQ(first, 0u);
  EXPECT_EQ(g.NumRealNodes(), 3u);
  uint32_t v = g.AddVirtualNode();
  g.AddEdge(NodeRef::Real(0), NodeRef::Virtual(v));
  g.AddEdge(NodeRef::Virtual(v), NodeRef::Real(1));
  EXPECT_EQ(g.CountCondensedEdges(), 2u);
  EXPECT_EQ(g.OutEdges(NodeRef::Real(0)).size(), 1u);
  EXPECT_EQ(g.InEdges(NodeRef::Real(1)).size(), 1u);
  EXPECT_EQ(g.InEdges(NodeRef::Virtual(v)).size(), 1u);
}

TEST(StorageTest, RemoveEdge) {
  CondensedStorage g;
  g.AddRealNodes(2);
  uint32_t v = g.AddVirtualNode();
  g.AddEdge(NodeRef::Real(0), NodeRef::Virtual(v));
  EXPECT_TRUE(g.RemoveEdge(NodeRef::Real(0), NodeRef::Virtual(v)));
  EXPECT_FALSE(g.RemoveEdge(NodeRef::Real(0), NodeRef::Virtual(v)));
  EXPECT_EQ(g.CountCondensedEdges(), 0u);
  EXPECT_TRUE(g.InEdges(NodeRef::Virtual(v)).empty());
}

TEST(StorageTest, SingleVsMultiLayer) {
  CondensedStorage g = MakeFigure1Graph();
  EXPECT_TRUE(g.IsSingleLayer());
  EXPECT_EQ(g.NumLayers(), 1u);
  uint32_t w = g.AddVirtualNode();
  g.AddEdge(NodeRef::Virtual(0), NodeRef::Virtual(w));
  EXPECT_FALSE(g.IsSingleLayer());
  EXPECT_EQ(g.NumLayers(), 2u);
}

TEST(StorageTest, AcyclicDetectsVirtualCycle) {
  CondensedStorage g;
  g.AddRealNodes(1);
  uint32_t a = g.AddVirtualNode();
  uint32_t b = g.AddVirtualNode();
  g.AddEdge(NodeRef::Virtual(a), NodeRef::Virtual(b));
  EXPECT_TRUE(g.IsAcyclic());
  g.AddEdge(NodeRef::Virtual(b), NodeRef::Virtual(a));
  EXPECT_FALSE(g.IsAcyclic());
}

TEST(StorageTest, Figure1ExpandedNeighborsAndCounts) {
  CondensedStorage g = MakeFigure1Graph();
  // a1 (id 0) co-authors: a2, a3, a4 — a4 via both p1 and p2.
  std::vector<NodeId> n = g.ExpandedNeighbors(0);
  std::sort(n.begin(), n.end());
  EXPECT_EQ(n, (std::vector<NodeId>{1, 2, 3}));
  // Expanded co-author edges: p1 clique(4): 12, p2 adds nothing new
  // among {a1,a3,a4}, p3 adds a4<->a5: 2. Total 14 directed edges.
  EXPECT_EQ(g.CountExpandedEdges(), 14u);
  // Duplicated pairs: within {a1,a3,a4} every ordered pair is reachable
  // via p1 and p2 => 6 duplicate ordered pairs.
  EXPECT_EQ(g.CountDuplicatePairs(), 6u);
}

TEST(StorageTest, SelfPathsAreNotLogicalEdges) {
  CondensedStorage g;
  g.AddRealNodes(2);
  uint32_t v = g.AddVirtualNode();
  AddMember(g, 0, v);
  AddMember(g, 1, v);
  std::vector<NodeId> n = g.ExpandedNeighbors(0);
  EXPECT_EQ(n, (std::vector<NodeId>{1}));  // not {0, 1}
}

TEST(StorageTest, ExpandedEdgeSetSortedUnique) {
  CondensedStorage g = MakeFigure1Graph();
  auto edges = g.ExpandedEdgeSet();
  EXPECT_EQ(edges.size(), 14u);
  EXPECT_TRUE(std::is_sorted(edges.begin(), edges.end()));
  EXPECT_TRUE(std::adjacent_find(edges.begin(), edges.end()) == edges.end());
}

TEST(StorageTest, ExpandVirtualNodePreservesEdgeSet) {
  CondensedStorage g = MakeFigure1Graph();
  auto before = g.ExpandedEdgeSet();
  g.ExpandVirtualNode(1);  // expand p2
  EXPECT_EQ(g.ExpandedEdgeSet(), before);
  EXPECT_TRUE(g.OutEdges(NodeRef::Virtual(1)).empty());
  EXPECT_TRUE(g.InEdges(NodeRef::Virtual(1)).empty());
}

TEST(StorageTest, CompactVirtualNodesRemapsRefs) {
  CondensedStorage g = MakeFigure1Graph();
  auto before = g.ExpandedEdgeSet();
  g.ExpandVirtualNode(0);
  g.CompactVirtualNodes();
  EXPECT_EQ(g.NumVirtualNodes(), 2u);
  EXPECT_EQ(g.ExpandedEdgeSet(), before);
}

TEST(StorageTest, DetachAllClearsBothDirections) {
  CondensedStorage g = MakeFigure1Graph();
  g.DetachAll(NodeRef::Virtual(0));
  EXPECT_TRUE(g.OutEdges(NodeRef::Virtual(0)).empty());
  for (NodeId u = 0; u < 5; ++u) {
    for (NodeRef r : g.OutEdges(NodeRef::Real(u))) {
      EXPECT_FALSE(r.is_virtual() && r.index() == 0);
    }
  }
}

TEST(StorageTest, SortAdjacencyEnablesBinarySearch) {
  CondensedStorage g = MakeFigure1Graph();
  g.SortAdjacency();
  EXPECT_TRUE(g.HasEdge(NodeRef::Real(0), NodeRef::Virtual(0)));
  EXPECT_FALSE(g.HasEdge(NodeRef::Real(4), NodeRef::Virtual(0)));
}

TEST(StorageTest, RemoveParallelEdges) {
  CondensedStorage g;
  g.AddRealNodes(2);
  uint32_t v = g.AddVirtualNode();
  g.AddEdge(NodeRef::Real(0), NodeRef::Virtual(v));
  g.AddEdge(NodeRef::Real(0), NodeRef::Virtual(v));  // parallel
  g.AddEdge(NodeRef::Virtual(v), NodeRef::Real(1));
  EXPECT_EQ(g.CountCondensedEdges(), 3u);
  g.RemoveParallelEdges();
  EXPECT_EQ(g.CountCondensedEdges(), 2u);
  EXPECT_EQ(g.InEdges(NodeRef::Virtual(v)).size(), 1u);
}

TEST(StorageTest, LazyDeletion) {
  CondensedStorage g = MakeFigure1Graph();
  EXPECT_EQ(g.NumActiveRealNodes(), 5u);
  g.DeleteRealNode(3);  // a4
  EXPECT_TRUE(g.IsDeleted(3));
  EXPECT_EQ(g.NumActiveRealNodes(), 4u);
  EXPECT_EQ(g.NumPendingDeletions(), 1u);
  // Traversal skips the deleted node immediately.
  std::vector<NodeId> n = g.ExpandedNeighbors(0);
  std::sort(n.begin(), n.end());
  EXPECT_EQ(n, (std::vector<NodeId>{1, 2}));
  // Deleted source yields nothing.
  EXPECT_TRUE(g.ExpandedNeighbors(3).empty());
}

TEST(StorageTest, CompactDeletionsScrubsAdjacency) {
  CondensedStorage g = MakeFigure1Graph();
  g.DeleteRealNode(3);
  g.CompactDeletions();
  for (uint32_t v = 0; v < g.NumVirtualNodes(); ++v) {
    for (NodeRef r : g.OutEdges(NodeRef::Virtual(v))) {
      EXPECT_NE(r, NodeRef::Real(3));
    }
  }
  EXPECT_TRUE(g.OutEdges(NodeRef::Real(3)).empty());
  EXPECT_EQ(g.NumActiveRealNodes(), 4u);
}

TEST(StorageTest, MemoryBytesTracksGrowth) {
  CondensedStorage g;
  g.AddRealNodes(100);
  size_t before = g.MemoryBytes();
  uint32_t v = g.AddVirtualNode();
  for (NodeId u = 0; u < 100; ++u) AddMember(g, u, v);
  EXPECT_GT(g.MemoryBytes(), before);
}

TEST(PropertyTest, SetGetByNameAndColumn) {
  PropertyTable p;
  size_t name_col = p.AddColumn("Name");
  EXPECT_EQ(p.AddColumn("Name"), name_col);  // idempotent
  p.ResizeVertices(3);
  p.Set(1, name_col, "ann");
  EXPECT_EQ(p.Get(1, name_col), "ann");
  EXPECT_EQ(p.Get(0, name_col), "");
  EXPECT_EQ(p.GetByName(1, "Name").value(), "ann");
  EXPECT_FALSE(p.GetByName(1, "Missing").has_value());
  EXPECT_TRUE(p.SetByName(2, "Name", "bob").ok());
  EXPECT_FALSE(p.SetByName(2, "Nope", "x").ok());
}

TEST(PropertyTest, ExternalKeysLookup) {
  PropertyTable p;
  p.ResizeVertices(2);
  p.SetExternalKey(0, "42");
  p.SetExternalKey(1, "43");
  EXPECT_EQ(p.ExternalKey(1), "43");
  EXPECT_EQ(p.FindByExternalKey("42").value(), 0u);
  EXPECT_FALSE(p.FindByExternalKey("99").has_value());
}

}  // namespace
}  // namespace graphgen
