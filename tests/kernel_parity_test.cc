// Parity suite for the flat-CSR fast path: for every representation and
// every algorithm, the devirtualized NeighborSpan kernel must produce the
// same result as the virtual ForEachNeighbor baseline — on EXP (native
// flat adjacency) bit for bit, and through the materialized CsrGraph
// adapter for the condensed representations. Also pins the CSR
// ExpandedGraph's edge set to the condensed-storage oracle, including
// after DeleteVertex / DeleteEdge / AddVertex mutations.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "algos/bfs.h"
#include "algos/clustering.h"
#include "algos/connected_components.h"
#include "algos/degree.h"
#include "algos/kcore.h"
#include "algos/pagerank.h"
#include "algos/triangles.h"
#include "common/parallel.h"
#include "dedup/bitmap_algorithms.h"
#include "dedup/dedup1_algorithms.h"
#include "dedup/dedup2_builder.h"
#include "repr/bitmap_graph.h"
#include "repr/cdup_graph.h"
#include "repr/csr_graph.h"
#include "repr/dedup1_graph.h"
#include "repr/dedup2_graph.h"
#include "repr/expander.h"
#include "test_util.h"

namespace graphgen {
namespace {

using testing::EdgeSetOf;
using testing::MakeRandomSymmetric;

constexpr TraversalPath kFn = TraversalPath::kFunction;
constexpr TraversalPath kSpan = TraversalPath::kAuto;

void ExpectNear(const std::vector<double>& a, const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-9) << "index " << i;
  }
}

/// Runs all seven kernels with the function path on `base` and the span
/// path on `flat` (which must expose the same expanded view) and asserts
/// the results agree. Integer outputs must match exactly; double outputs
/// get a tolerance because `base` may iterate neighbors in a different
/// order (C-DUP's hash-set dedup) than the sorted spans.
void ExpectKernelParity(const Graph& base, const Graph& flat) {
  ASSERT_TRUE(flat.HasFlatAdjacency());
  EXPECT_EQ(EdgeSetOf(base), EdgeSetOf(flat));

  EXPECT_EQ(ComputeDegrees(base, 0, kFn), ComputeDegrees(flat, 0, kSpan));
  EXPECT_EQ(CountTriangles(base, kFn), CountTriangles(flat, kSpan));
  EXPECT_EQ(ConnectedComponents(base, 0, kFn),
            ConnectedComponents(flat, 0, kSpan));
  EXPECT_EQ(Bfs(base, 0, kFn), Bfs(flat, 0, kSpan));
  EXPECT_EQ(KCoreDecomposition(base, kFn), KCoreDecomposition(flat, kSpan));
  ExpectNear(PageRank(base, {.iterations = 6, .traversal = kFn}),
             PageRank(flat, {.iterations = 6, .traversal = kSpan}));
  ExpectNear(LocalClusteringCoefficients(base, kFn),
             LocalClusteringCoefficients(flat, kSpan));
}

class KernelParityTest : public ::testing::Test {
 protected:
  void SetUp() override { storage_ = MakeRandomSymmetric(300, 80, 6, 99); }
  CondensedStorage storage_;
};

TEST_F(KernelParityTest, ExpSpanPathMatchesFunctionPathExactly) {
  ExpandedGraph exp = ExpandCondensed(storage_);
  ASSERT_TRUE(exp.HasFlatAdjacency());
  // Same graph, same iteration order: even the floating-point kernels
  // must agree bit for bit.
  EXPECT_EQ(PageRank(exp, {.iterations = 8, .traversal = kFn}),
            PageRank(exp, {.iterations = 8, .traversal = kSpan}));
  EXPECT_EQ(LocalClusteringCoefficients(exp, kFn),
            LocalClusteringCoefficients(exp, kSpan));
  ExpectKernelParity(exp, exp);
}

TEST_F(KernelParityTest, CsrAdapterParityForAllRepresentations) {
  std::vector<std::unique_ptr<Graph>> graphs;
  graphs.push_back(std::make_unique<CDupGraph>(storage_));
  graphs.push_back(
      std::make_unique<ExpandedGraph>(ExpandCondensed(storage_)));
  auto d1 = GreedyVirtualNodesFirst(storage_);
  ASSERT_TRUE(d1.ok());
  graphs.push_back(std::make_unique<Dedup1Graph>(std::move(*d1)));
  auto d2 = BuildDedup2(storage_);
  ASSERT_TRUE(d2.ok());
  graphs.push_back(std::make_unique<Dedup2Graph>(std::move(*d2)));
  auto b1 = BuildBitmap1(storage_);
  ASSERT_TRUE(b1.ok());
  graphs.push_back(std::make_unique<BitmapGraph>(std::move(*b1)));
  auto b2 = BuildBitmap2(storage_);
  ASSERT_TRUE(b2.ok());
  graphs.push_back(std::make_unique<BitmapGraph>(std::move(*b2)));

  for (const auto& g : graphs) {
    SCOPED_TRACE(std::string(g->Name()));
    CsrGraph csr = CsrGraph::Build(*g);
    ExpectKernelParity(*g, csr);
  }
}

TEST_F(KernelParityTest, ExpandedEdgeSetMatchesStorageOracle) {
  ExpandedGraph exp = ExpandCondensed(storage_);
  EXPECT_EQ(exp.ExpandedEdgeSet(), storage_.ExpandedEdgeSet());
  EXPECT_EQ(exp.CountStoredEdges(), storage_.CountExpandedEdges());
}

TEST_F(KernelParityTest, EdgeMutationsKeepFlatAdjacencyAndParity) {
  ExpandedGraph exp = ExpandCondensed(storage_);
  CDupGraph mirror(storage_);

  // Structural edits that don't delete vertices keep the spans exact:
  // patched vertices serve their overlay, the rest the CSR base.
  NodeId added = exp.AddVertex();
  EXPECT_EQ(added, mirror.AddVertex());
  ASSERT_TRUE(exp.AddEdge(0, added).ok());
  ASSERT_TRUE(mirror.AddEdge(0, added).ok());
  ASSERT_TRUE(exp.AddEdge(added, 0).ok());
  ASSERT_TRUE(mirror.AddEdge(added, 0).ok());

  // Delete both directions: the triangle/clustering kernels are defined
  // on GraphGen's symmetric graphs, so mutations keep the symmetry.
  auto edges = EdgeSetOf(exp);
  ASSERT_FALSE(edges.empty());
  auto [du, dv] = edges[edges.size() / 2];
  ASSERT_TRUE(exp.DeleteEdge(du, dv).ok());
  ASSERT_TRUE(mirror.DeleteEdge(du, dv).ok());
  ASSERT_TRUE(exp.DeleteEdge(dv, du).ok());
  ASSERT_TRUE(mirror.DeleteEdge(dv, du).ok());

  EXPECT_TRUE(exp.HasFlatAdjacency());
  EXPECT_EQ(EdgeSetOf(exp), EdgeSetOf(mirror));
  ExpectKernelParity(mirror, exp);

  // Re-adding the deleted edge through the patch overlay round-trips.
  ASSERT_TRUE(exp.AddEdge(du, dv).ok());
  ASSERT_TRUE(mirror.AddEdge(du, dv).ok());
  ASSERT_TRUE(exp.AddEdge(dv, du).ok());
  ASSERT_TRUE(mirror.AddEdge(dv, du).ok());
  EXPECT_EQ(EdgeSetOf(exp), EdgeSetOf(mirror));
}

TEST_F(KernelParityTest, VertexDeletionDisablesFlatPathButStaysCorrect) {
  ExpandedGraph exp = ExpandCondensed(storage_);
  CDupGraph mirror(storage_);

  ASSERT_TRUE(exp.DeleteVertex(3).ok());
  ASSERT_TRUE(mirror.DeleteVertex(3).ok());
  // Lazy deletion leaves stale targets in the CSR base, so the span
  // contract is withdrawn and kAuto kernels transparently fall back.
  EXPECT_FALSE(exp.HasFlatAdjacency());
  EXPECT_EQ(EdgeSetOf(exp), EdgeSetOf(mirror));
  EXPECT_EQ(ComputeDegrees(exp, 0, kSpan), ComputeDegrees(mirror, 0, kFn));
  EXPECT_EQ(CountTriangles(exp, kSpan), CountTriangles(mirror, kFn));
  EXPECT_EQ(Bfs(exp, 0, kSpan), Bfs(mirror, 0, kFn));

  // A fresh snapshot of the mutated graph restores the fast path.
  CsrGraph csr = CsrGraph::Build(exp);
  EXPECT_FALSE(csr.VertexExists(3));
  ExpectKernelParity(exp, csr);
}

TEST_F(KernelParityTest, AdoptionTimeDeletionsKeepFlatPath) {
  // Deletions already present in the condensed storage are scrubbed from
  // the CSR at build time, so they must not cost the span fast path.
  storage_.DeleteRealNode(5);
  storage_.DeleteRealNode(17);
  ExpandedGraph exp = ExpandCondensed(storage_);
  EXPECT_TRUE(exp.HasFlatAdjacency());
  EXPECT_FALSE(exp.VertexExists(5));
  EXPECT_EQ(exp.NumActiveVertices(), exp.NumVertices() - 2);
  EXPECT_EQ(exp.ExpandedEdgeSet(), storage_.ExpandedEdgeSet());
  CDupGraph mirror(storage_);
  ExpectKernelParity(mirror, exp);
  // A *runtime* deletion still withdraws the contract.
  ASSERT_TRUE(exp.DeleteVertex(9).ok());
  EXPECT_FALSE(exp.HasFlatAdjacency());
}

TEST(CsrGraphTest, SnapshotIsImmutable) {
  CondensedStorage s = MakeRandomSymmetric(40, 12, 4, 7);
  CDupGraph cdup(s);
  CsrGraph csr = CsrGraph::Build(cdup);
  EXPECT_FALSE(csr.AddEdge(0, 1).ok());
  EXPECT_FALSE(csr.DeleteEdge(0, 1).ok());
  EXPECT_FALSE(csr.DeleteVertex(0).ok());
  EXPECT_EQ(csr.AddVertex(), kInvalidNode);
  EXPECT_EQ(EdgeSetOf(csr), EdgeSetOf(cdup));
}

TEST(CsrGraphTest, EmptyGraphSnapshots) {
  ExpandedGraph empty;
  CsrGraph csr = CsrGraph::Build(empty);
  EXPECT_EQ(csr.NumVertices(), 0u);
  EXPECT_EQ(csr.CountStoredEdges(), 0u);
  EXPECT_EQ(CountTriangles(csr), 0u);
}

}  // namespace
}  // namespace graphgen
