#include "common/faultpoints.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "gen/relational_generators.h"
#include "service/graph_service.h"

namespace graphgen {
namespace {

using fault::Action;
using fault::FaultRegistry;
using fault::FaultSpec;

// Every test starts and ends with a quiet registry — fault state is
// process-global and must never leak between tests.
class FaultRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultRegistry::Instance().DisarmAll(); }
  void TearDown() override { FaultRegistry::Instance().DisarmAll(); }
};

TEST_F(FaultRegistryTest, ParseSpecAcceptsTriggersAndActions) {
  FaultSpec spec;
  ASSERT_TRUE(FaultRegistry::ParseSpec("p0.25", &spec).ok());
  EXPECT_DOUBLE_EQ(spec.probability, 0.25);
  EXPECT_EQ(spec.fire_on_hit, 0u);
  EXPECT_EQ(spec.action, Action::kFail);

  ASSERT_TRUE(FaultRegistry::ParseSpec("n3!throw", &spec).ok());
  EXPECT_EQ(spec.fire_on_hit, 3u);
  EXPECT_EQ(spec.action, Action::kThrow);

  ASSERT_TRUE(FaultRegistry::ParseSpec("p1!stall", &spec).ok());
  EXPECT_EQ(spec.action, Action::kStall);

  EXPECT_FALSE(FaultRegistry::ParseSpec("", &spec).ok());
  EXPECT_FALSE(FaultRegistry::ParseSpec("x5", &spec).ok());
  EXPECT_FALSE(FaultRegistry::ParseSpec("p0", &spec).ok());
  EXPECT_FALSE(FaultRegistry::ParseSpec("p1.5", &spec).ok());
  EXPECT_FALSE(FaultRegistry::ParseSpec("n0", &spec).ok());
  EXPECT_FALSE(FaultRegistry::ParseSpec("p0.5!explode", &spec).ok());
}

Status HitTestPoint() {
  GRAPHGEN_FAULT_POINT("test.registry.point");
  return Status::OK();
}

TEST_F(FaultRegistryTest, HitCountFiresExactlyOnce) {
  FaultSpec spec;
  spec.fire_on_hit = 2;
  FaultRegistry::Instance().Arm("test.registry.point", spec);
  EXPECT_TRUE(HitTestPoint().ok());        // hit 1: no fire
  Status fired = HitTestPoint();           // hit 2: fires
  ASSERT_FALSE(fired.ok());
  EXPECT_NE(fired.message().find("test.registry.point"), std::string::npos);
  EXPECT_TRUE(HitTestPoint().ok());        // hit 3: countdown exhausted
  EXPECT_EQ(FaultRegistry::Instance().fires("test.registry.point"), 1u);
  EXPECT_GE(FaultRegistry::Instance().hits("test.registry.point"), 3u);
}

TEST_F(FaultRegistryTest, ArmBeforeRegistrationIsPending) {
  // The site for this name has never executed; Arm must still stick.
  FaultSpec spec;
  spec.fire_on_hit = 1;
  FaultRegistry::Instance().Arm("test.registry.pending", spec);
  Status fired = [] {
    GRAPHGEN_FAULT_POINT("test.registry.pending");
    return Status::OK();
  }();
  EXPECT_FALSE(fired.ok());
}

TEST_F(FaultRegistryTest, DisarmedPointIsFreeAndQuiet) {
  EXPECT_TRUE(HitTestPoint().ok());
  FaultSpec spec;
  spec.fire_on_hit = 1;
  FaultRegistry::Instance().Arm("test.registry.point", spec);
  FaultRegistry::Instance().Disarm("test.registry.point");
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(HitTestPoint().ok());
}

TEST_F(FaultRegistryTest, ProbabilityIsSeededAndBounded) {
  FaultRegistry::Instance().SetSeed(42);
  FaultSpec spec;
  spec.probability = 0.5;
  FaultRegistry::Instance().Arm("test.registry.point", spec);
  int fails = 0;
  for (int i = 0; i < 400; ++i) {
    if (!HitTestPoint().ok()) ++fails;
  }
  // p=0.5 over 400 draws: all-or-nothing would mean the RNG is broken.
  EXPECT_GT(fails, 100);
  EXPECT_LT(fails, 300);
}

TEST_F(FaultRegistryTest, ListReportsArmedState) {
  EXPECT_TRUE(HitTestPoint().ok());  // ensure registered
  FaultSpec spec;
  spec.probability = 0.125;
  spec.action = Action::kThrow;
  FaultRegistry::Instance().Arm("test.registry.point", spec);
  bool found = false;
  for (const fault::FaultPointInfo& info : FaultRegistry::Instance().List()) {
    if (info.name != "test.registry.point") continue;
    found = true;
    EXPECT_TRUE(info.armed);
    EXPECT_EQ(info.action, Action::kThrow);
    EXPECT_DOUBLE_EQ(info.probability, 0.125);
  }
  EXPECT_TRUE(found);
}

// ------------------------------------------------------------- fault sweep

const char* kCoEnrollment =
    "Nodes(ID, Name) :- Student(ID, Name).\n"
    "Edges(ID1, ID2) :- TookCourse(ID1, C), TookCourse(ID2, C).";
// COUNT constraint reaches the extract.edges.count path.
const char* kCoEnrollmentCounted =
    "Nodes(ID, Name) :- Student(ID, Name).\n"
    "Edges(ID1, ID2) :- TookCourse(ID1, C), TookCourse(ID2, C), "
    "COUNT(C) >= 2.";

struct SweepVariant {
  const char* datalog;
  GraphGenOptions options;
};

std::vector<SweepVariant> SweepVariants() {
  auto base = [] {
    GraphGenOptions o;
    o.representation = Representation::kCDup;
    o.extract.large_output_factor = 0.0;
    o.extract.threads = 2;
    return o;
  };
  std::vector<SweepVariant> variants;
  // Columnar, fused (forced for any size), preprocess on.
  {
    GraphGenOptions o = base();
    o.extract.fuse_min_output_bytes = 0;
    variants.push_back({kCoEnrollment, o});
  }
  // Columnar, unfused DISTINCT chain.
  {
    GraphGenOptions o = base();
    o.extract.fuse_join_distinct = false;
    variants.push_back({kCoEnrollment, o});
  }
  // Row-at-a-time oracle engine.
  {
    GraphGenOptions o = base();
    o.extract.engine = query::ExecEngine::kRowAtATime;
    variants.push_back({kCoEnrollment, o});
  }
  // COUNT-constrained rule (extract.edges.count).
  {
    GraphGenOptions o = base();
    variants.push_back({kCoEnrollmentCounted, o});
  }
  return variants;
}

class FaultSweepTest : public FaultRegistryTest {
 protected:
  void SetUp() override {
    FaultRegistryTest::SetUp();
    data_ = gen::MakeUniversity(60, 8, 16, 3.0);
  }
  gen::GeneratedDatabase data_;
};

// The acceptance sweep: warm every code path so all reachable fault
// points register, then arm each one at a time (hit-count mode) and
// prove the failure surfaces as a clean non-OK Status — no crash, no
// hang, no torn service state — and that the very next clean request
// succeeds. Iterates to fixpoint: firing one point can unlock a path
// that registers another.
TEST_F(FaultSweepTest, EveryRegisteredPointFailsCleanly) {
  service::GraphService svc(&data_.db);
  const std::vector<SweepVariant> variants = SweepVariants();

  // Warm-up: register every reachable point.
  for (const SweepVariant& v : variants) {
    auto warm = svc.Extract(v.datalog, v.options);
    ASSERT_TRUE(warm.ok()) << warm.status().ToString();
    svc.ClearCache();
  }

  FaultRegistry& registry = FaultRegistry::Instance();
  std::set<std::string> swept;
  for (int round = 0; round < 8; ++round) {
    bool progressed = false;
    for (const std::string& name : registry.Names()) {
      if (name.rfind("test.", 0) == 0) continue;  // registry unit fixtures
      if (swept.count(name) > 0) continue;
      swept.insert(name);
      progressed = true;

      bool fired_somewhere = false;
      for (const SweepVariant& v : variants) {
        svc.ClearCache();
        const uint64_t fires_before = registry.fires(name);
        FaultSpec spec;
        spec.fire_on_hit = 1;
        registry.Arm(name, spec);
        auto result = svc.Extract(v.datalog, v.options);
        registry.Disarm(name);
        if (registry.fires(name) > fires_before) {
          fired_somewhere = true;
          EXPECT_FALSE(result.ok())
              << name << " fired but the request still succeeded";
          // The injected failure must carry the point's name.
          EXPECT_NE(result.status().message().find(name), std::string::npos)
              << result.status().ToString();
          // Nothing half-done may be cached, and the key must be
          // immediately retryable.
          svc.ClearCache();
          auto retry = svc.Extract(v.datalog, v.options);
          EXPECT_TRUE(retry.ok())
              << name << " left the service broken: "
              << retry.status().ToString();
          break;
        }
        EXPECT_TRUE(result.ok())
            << name << " did not fire yet the request failed: "
            << result.status().ToString();
      }
      EXPECT_TRUE(fired_somewhere)
          << name << " was registered but never reached by any sweep variant";
    }
    if (!progressed) break;
  }
  // Sanity: the sweep actually covered the pipeline.
  EXPECT_GE(swept.size(), 10u) << "suspiciously few fault points registered";
}

// Same sweep with Action::kThrow: an injected std::bad_alloc at any point
// must surface as ExecutionError (caught at the pool-task or service
// boundary), never terminate, and leave the service serviceable.
TEST_F(FaultSweepTest, EveryRegisteredPointThrowsCleanly) {
  service::GraphService svc(&data_.db);
  const std::vector<SweepVariant> variants = SweepVariants();
  for (const SweepVariant& v : variants) {
    auto warm = svc.Extract(v.datalog, v.options);
    ASSERT_TRUE(warm.ok()) << warm.status().ToString();
    svc.ClearCache();
  }

  FaultRegistry& registry = FaultRegistry::Instance();
  for (const std::string& name : registry.Names()) {
    if (name.rfind("test.", 0) == 0) continue;
    for (const SweepVariant& v : variants) {
      svc.ClearCache();
      const uint64_t fires_before = registry.fires(name);
      FaultSpec spec;
      spec.fire_on_hit = 1;
      spec.action = Action::kThrow;
      registry.Arm(name, spec);
      auto result = svc.Extract(v.datalog, v.options);
      registry.Disarm(name);
      if (registry.fires(name) > fires_before) {
        EXPECT_FALSE(result.ok()) << name;
        EXPECT_EQ(result.status().code(), StatusCode::kExecutionError)
            << name << ": " << result.status().ToString();
        break;
      }
      EXPECT_TRUE(result.ok()) << name << ": " << result.status().ToString();
    }
  }
  // The pool and caches survived every injected throw.
  svc.ClearCache();
  auto after = svc.Extract(kCoEnrollment, SweepVariants()[0].options);
  EXPECT_TRUE(after.ok()) << after.status().ToString();
}

// ExtractNamed goes through the same pipeline: an injected failure must
// surface as its Status and must NOT bind the name.
TEST_F(FaultSweepTest, ExtractNamedFailsCleanlyAndBindsNothing) {
  service::GraphService svc(&data_.db);
  const SweepVariant v = SweepVariants()[0];
  FaultSpec spec;
  spec.fire_on_hit = 1;
  FaultRegistry::Instance().Arm("extract.parse", spec);
  auto result = svc.ExtractNamed("broken", v.datalog, v.options);
  ASSERT_FALSE(result.ok());
  EXPECT_FALSE(svc.Lookup("broken").ok());
  FaultRegistry::Instance().Disarm("extract.parse");
  auto retry = svc.ExtractNamed("broken", v.datalog, v.options);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_TRUE(svc.Lookup("broken").ok());
}

// Fuzz: every point armed at once with a fixed-seed probability mix of
// fail and throw actions; requests race through sync and async paths.
// Each request either succeeds or returns a clean Status, and after
// disarming, the service works — run under ASan in CI.
TEST_F(FaultSweepTest, RandomizedFaultStormNeverWedgesTheService) {
  service::GraphService svc(&data_.db);
  const std::vector<SweepVariant> variants = SweepVariants();
  for (const SweepVariant& v : variants) {
    auto warm = svc.Extract(v.datalog, v.options);
    ASSERT_TRUE(warm.ok()) << warm.status().ToString();
    svc.ClearCache();
  }

  FaultRegistry& registry = FaultRegistry::Instance();
  registry.SetSeed(0xfeedULL);
  size_t idx = 0;
  for (const std::string& name : registry.Names()) {
    if (name.rfind("test.", 0) == 0) continue;
    FaultSpec spec;
    spec.probability = 0.05;
    spec.action = (idx++ % 2 == 0) ? Action::kFail : Action::kThrow;
    registry.Arm(name, spec);
  }

  int failures = 0;
  for (int i = 0; i < 30; ++i) {
    const SweepVariant& v = variants[i % variants.size()];
    svc.ClearCache();
    Result<service::GraphHandle> result =
        (i % 3 == 0) ? svc.ExtractAsync(v.datalog, v.options).get()
                     : svc.Extract(v.datalog, v.options);
    if (!result.ok()) {
      ++failures;
      // Only injected failure shapes are acceptable.
      EXPECT_TRUE(result.status().code() == StatusCode::kInternal ||
                  result.status().code() == StatusCode::kExecutionError)
          << result.status().ToString();
    }
  }
  registry.DisarmAll();
  svc.ClearCache();
  auto after = svc.Extract(kCoEnrollment, variants[0].options);
  EXPECT_TRUE(after.ok()) << after.status().ToString();
  // With ~15 armed points at p=0.05 across 30 storms, silence would mean
  // the faults never actually armed.
  EXPECT_GT(failures, 0);
}

}  // namespace
}  // namespace graphgen
