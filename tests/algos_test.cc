#include <gtest/gtest.h>

#include "algos/bfs.h"
#include "algos/connected_components.h"
#include "algos/degree.h"
#include "algos/pagerank.h"
#include "algos/triangles.h"
#include "dedup/bitmap_algorithms.h"
#include "dedup/dedup1_algorithms.h"
#include "dedup/dedup2_builder.h"
#include "repr/cdup_graph.h"
#include "repr/expander.h"
#include "test_util.h"

namespace graphgen {
namespace {

using testing::MakeFigure1Graph;
using testing::MakeRandomSymmetric;

TEST(DegreeTest, Figure1) {
  CDupGraph g(MakeFigure1Graph());
  std::vector<uint64_t> d = ComputeDegrees(g);
  // a1: {a2,a3,a4}; a2: {a1,a3,a4}; a3: {a1,a2,a4}; a4: {a1,a2,a3,a5};
  // a5: {a4}.
  EXPECT_EQ(d, (std::vector<uint64_t>{3, 3, 3, 4, 1}));
}

TEST(BfsTest, DistancesOnFigure1) {
  CDupGraph g(MakeFigure1Graph());
  std::vector<uint32_t> dist = Bfs(g, 0);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[3], 1u);
  EXPECT_EQ(dist[4], 2u);  // a5 via a4
}

TEST(BfsTest, UnreachableMarked) {
  CondensedStorage s;
  s.AddRealNodes(3);
  uint32_t v = s.AddVirtualNode();
  testing::AddMember(s, 0, v);
  testing::AddMember(s, 1, v);
  CDupGraph g(std::move(s));
  std::vector<uint32_t> dist = Bfs(g, 0);
  EXPECT_EQ(dist[2], kUnreachable);
}

TEST(BfsTest, InvalidSourceReturnsAllUnreachable) {
  CDupGraph g(MakeFigure1Graph());
  std::vector<uint32_t> dist = Bfs(g, 99);
  EXPECT_TRUE(dist.empty() ||
              std::all_of(dist.begin(), dist.end(),
                          [](uint32_t d) { return d == kUnreachable; }));
}

TEST(ConnectedComponentsTest, TwoComponents) {
  CondensedStorage s;
  s.AddRealNodes(6);
  uint32_t v1 = s.AddVirtualNode();
  uint32_t v2 = s.AddVirtualNode();
  for (NodeId u : {0, 1, 2}) testing::AddMember(s, u, v1);
  for (NodeId u : {3, 4}) testing::AddMember(s, u, v2);
  CDupGraph g(std::move(s));
  std::vector<NodeId> labels = ConnectedComponents(g);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[3]);
  EXPECT_EQ(labels[5], 5u);  // isolated
  EXPECT_EQ(CountComponents(labels), 3u);
}

TEST(PageRankTest, SumsToOne) {
  CDupGraph g(MakeFigure1Graph());
  std::vector<double> pr = PageRank(g, {.iterations = 20});
  double sum = 0;
  for (double r : pr) sum += r;
  EXPECT_NEAR(sum, 1.0, 1e-6);
  // The hub a4 outranks the leaf a5.
  EXPECT_GT(pr[3], pr[4]);
}

TEST(PageRankTest, SymmetricCliqueIsUniform) {
  CondensedStorage s;
  s.AddRealNodes(4);
  uint32_t v = s.AddVirtualNode();
  for (NodeId u = 0; u < 4; ++u) testing::AddMember(s, u, v);
  CDupGraph g(std::move(s));
  std::vector<double> pr = PageRank(g, {.iterations = 15});
  for (double r : pr) EXPECT_NEAR(r, 0.25, 1e-9);
}

TEST(TrianglesTest, CliqueCount) {
  CondensedStorage s;
  s.AddRealNodes(4);
  uint32_t v = s.AddVirtualNode();
  for (NodeId u = 0; u < 4; ++u) testing::AddMember(s, u, v);
  CDupGraph g(std::move(s));
  EXPECT_EQ(CountTriangles(g), 4u);  // C(4,3)
}

TEST(TrianglesTest, NoTrianglesInPath) {
  ExpandedGraph g(3);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 0).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  ASSERT_TRUE(g.AddEdge(2, 1).ok());
  EXPECT_EQ(CountTriangles(g), 0u);
}

// Results must be identical across every representation of one graph —
// the end-to-end guarantee of the whole system.
TEST(CrossRepresentationTest, AlgorithmsAgreeEverywhere) {
  CondensedStorage s = MakeRandomSymmetric(80, 25, 6, 99);

  CDupGraph cdup(s);
  ExpandedGraph exp = ExpandCondensed(s);
  auto bm2 = BuildBitmap2(s);
  ASSERT_TRUE(bm2.ok());
  auto d1 = GreedyVirtualNodesFirst(s);
  ASSERT_TRUE(d1.ok());
  auto d2 = BuildDedup2(s);
  ASSERT_TRUE(d2.ok());

  const Graph* graphs[] = {&cdup, &exp, &*bm2, &*d1, &*d2};

  std::vector<uint64_t> deg0 = ComputeDegrees(*graphs[0]);
  std::vector<uint32_t> bfs0 = Bfs(*graphs[0], 0);
  std::vector<NodeId> cc0 = ConnectedComponents(*graphs[0]);
  std::vector<double> pr0 = PageRank(*graphs[0], {.iterations = 8});
  uint64_t tri0 = CountTriangles(*graphs[0]);

  for (size_t i = 1; i < 5; ++i) {
    EXPECT_EQ(ComputeDegrees(*graphs[i]), deg0) << graphs[i]->Name();
    EXPECT_EQ(Bfs(*graphs[i], 0), bfs0) << graphs[i]->Name();
    EXPECT_EQ(ConnectedComponents(*graphs[i]), cc0) << graphs[i]->Name();
    std::vector<double> pr = PageRank(*graphs[i], {.iterations = 8});
    ASSERT_EQ(pr.size(), pr0.size());
    for (size_t u = 0; u < pr.size(); ++u) {
      EXPECT_NEAR(pr[u], pr0[u], 1e-9) << graphs[i]->Name() << " v" << u;
    }
    EXPECT_EQ(CountTriangles(*graphs[i]), tri0) << graphs[i]->Name();
  }
}

TEST(CrossRepresentationTest, DegreeAfterVertexDeletion) {
  CondensedStorage s = MakeFigure1Graph();
  CDupGraph g(std::move(s));
  ASSERT_TRUE(g.DeleteVertex(3).ok());
  std::vector<uint64_t> d = ComputeDegrees(g);
  EXPECT_EQ(d, (std::vector<uint64_t>{2, 2, 2, 0, 0}));
}

}  // namespace
}  // namespace graphgen
