#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/graphgen.h"
#include "core/representation_picker.h"
#include "core/serialization.h"
#include "gen/relational_generators.h"
#include "relational/table.h"
#include "repr/cdup_graph.h"
#include "repr/expanded_graph.h"
#include "test_util.h"

namespace graphgen {
namespace {

using testing::MakeFigure1Graph;
using testing::MakeRandomSymmetric;

class GraphGenTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = gen::MakeDblpLike(60, 90, 4.0, 123);
  }
  gen::GeneratedDatabase data_;
};

TEST_F(GraphGenTest, ExtractEveryRepresentation) {
  GraphGen engine(&data_.db);
  GraphGenOptions base;
  base.extract.large_output_factor = 0.0;
  base.extract.preprocess = false;

  std::vector<std::pair<NodeId, NodeId>> oracle;
  for (Representation r :
       {Representation::kCDup, Representation::kExp, Representation::kDedup1,
        Representation::kDedup2, Representation::kBitmap1,
        Representation::kBitmap2}) {
    GraphGenOptions opts = base;
    opts.representation = r;
    auto result = engine.Extract(data_.datalog, opts);
    ASSERT_TRUE(result.ok())
        << RepresentationToString(r) << ": " << result.status().ToString();
    EXPECT_EQ(result->representation, r);
    ASSERT_NE(result->graph, nullptr);
    auto edges = result->graph->ExpandedEdgeSet();
    if (oracle.empty()) {
      oracle = edges;
      EXPECT_FALSE(oracle.empty());
    } else {
      EXPECT_EQ(edges, oracle) << RepresentationToString(r);
    }
  }
}

TEST_F(GraphGenTest, AutoPicksSomethingValid) {
  GraphGen engine(&data_.db);
  GraphGenOptions opts;
  opts.extract.large_output_factor = 0.0;
  auto result = engine.Extract(data_.datalog, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NE(result->representation, Representation::kAuto);
  EXPECT_GT(result->graph->NumActiveVertices(), 0u);
}

TEST_F(GraphGenTest, StatsPopulated) {
  GraphGen engine(&data_.db);
  GraphGenOptions opts;
  opts.representation = Representation::kCDup;
  opts.extract.large_output_factor = 0.0;
  auto result = engine.Extract(data_.datalog, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.real_nodes, 60u);
  EXPECT_GT(result->stats.virtual_nodes, 0u);
  EXPECT_GT(result->stats.condensed_edges, 0u);
  EXPECT_FALSE(result->stats.sql.empty());
}

TEST_F(GraphGenTest, Dedup1AlgorithmsSelectable) {
  GraphGen engine(&data_.db);
  for (Dedup1Algorithm a :
       {Dedup1Algorithm::kNaiveVirtualFirst, Dedup1Algorithm::kNaiveRealFirst,
        Dedup1Algorithm::kGreedyRealFirst,
        Dedup1Algorithm::kGreedyVirtualFirst}) {
    GraphGenOptions opts;
    opts.representation = Representation::kDedup1;
    opts.dedup1_algorithm = a;
    opts.extract.large_output_factor = 0.0;
    opts.extract.preprocess = false;
    auto result = engine.Extract(data_.datalog, opts);
    ASSERT_TRUE(result.ok()) << Dedup1AlgorithmToString(a);
    EXPECT_TRUE(testing::IsDuplicateFree(*result->graph))
        << Dedup1AlgorithmToString(a);
  }
}

TEST_F(GraphGenTest, PatchExtractedExpParityInBothModes) {
  // Withhold a tail, capture an EXP basis, append, patch: the patched
  // graph's expanded edge set must equal a cold kExp extraction of the
  // grown database — in both application modes. exp_compact_threshold
  // steers the mode: touched-vertex counts span both directions (up to
  // 2n), so 2.0 keeps every delta in the COW overlay and 0.0 sends every
  // delta through the flat single-pass rebuild.
  for (const double threshold : {2.0, 0.0}) {
    SCOPED_TRACE(threshold == 2.0 ? "overlay mode" : "rebuild mode");
    rel::Database db;
    std::vector<std::pair<std::string, std::vector<rel::Row>>> tails;
    for (const std::string& name : data_.db.TableNames()) {
      const rel::Table* t = *data_.db.GetTable(name);
      const size_t delta = t->NumRows() / 10 + 1;
      const size_t keep = t->NumRows() - delta;
      rel::Table copy(name, t->schema());
      for (size_t i = 0; i < keep; ++i) copy.AppendUnchecked(t->row(i));
      db.PutTable(std::move(copy));
      auto& tail =
          tails.emplace_back(name, std::vector<rel::Row>{}).second;
      for (size_t i = keep; i < t->NumRows(); ++i) tail.push_back(t->row(i));
    }
    db.AnalyzeAll();

    GraphGenOptions opts;
    opts.representation = Representation::kExp;
    opts.capture_incremental = true;
    opts.exp_compact_threshold = threshold;
    opts.extract.large_output_factor = 0.0;
    opts.extract.preprocess = false;

    GraphGen engine(&db);
    auto basis = engine.Extract(data_.datalog, opts);
    ASSERT_TRUE(basis.ok()) << basis.status().ToString();
    for (auto& [name, rows] : tails) {
      ASSERT_TRUE(db.AppendRows(name, rows).ok());
    }

    auto outcome = engine.PatchExtracted(*basis, opts);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    ASSERT_TRUE(outcome->patched) << outcome->fallback_reason;
    auto fresh = engine.Extract(data_.datalog, opts);
    ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();

    const Graph& patched = *outcome->graph.graph;
    EXPECT_EQ(patched.NumVertices(), fresh->graph->NumVertices());
    EXPECT_EQ(patched.ExpandedEdgeSet(), fresh->graph->ExpandedEdgeSet());

    const auto* exp = dynamic_cast<const ExpandedGraph*>(&patched);
    ASSERT_NE(exp, nullptr);
    if (threshold == 2.0) {
      EXPECT_GT(exp->PatchedVertices(), 0u);  // COW overlay carried the delta
    } else {
      EXPECT_EQ(exp->PatchedVertices(), 0u);  // rebuilt flat
      EXPECT_TRUE(exp->HasFlatAdjacency());
    }
  }
}

TEST(MaterializeTest, Dedup1FlattensMultiLayerInput) {
  gen::LayeredGenOptions o;
  o.num_real = 50;
  o.layer_sizes = {8, 4};
  o.seed = 3;
  CondensedStorage g = gen::GenerateLayeredCondensed(o);
  auto oracle = g.ExpandedEdgeSet();
  GraphGenOptions opts;
  opts.representation = Representation::kDedup1;
  auto result = GraphGen::Materialize(std::move(g), opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->graph->ExpandedEdgeSet(), oracle);
}

TEST(RepresentationPickerTest, ExpandsSparseCondensesDense) {
  CondensedStorage sparse;
  sparse.AddRealNodes(6);
  uint32_t v = sparse.AddVirtualNode();
  testing::AddMember(sparse, 0, v);
  testing::AddMember(sparse, 1, v);
  EXPECT_EQ(ChooseRepresentation(sparse, 0.2), Representation::kExp);

  CondensedStorage dense;
  dense.AddRealNodes(100);
  uint32_t w = dense.AddVirtualNode();
  for (NodeId u = 0; u < 100; ++u) testing::AddMember(dense, u, w);
  EXPECT_EQ(ChooseRepresentation(dense, 0.2), Representation::kBitmap2);
}

TEST(SerializationTest, EdgeListWritesExpandedView) {
  CDupGraph g(MakeFigure1Graph());
  std::string path = ::testing::TempDir() + "/edges.txt";
  ASSERT_TRUE(SerializeEdgeList(g, path).ok());
  FILE* f = fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  size_t lines = 0;
  int a = 0;
  int b = 0;
  while (fscanf(f, "%d %d", &a, &b) == 2) ++lines;
  fclose(f);
  EXPECT_EQ(lines, 14u);
  std::remove(path.c_str());
}

TEST(SerializationTest, CondensedRoundTrip) {
  CondensedStorage g = MakeRandomSymmetric(40, 15, 5, 9);
  g.DeleteRealNode(3);
  std::string path = ::testing::TempDir() + "/graph.cnd";
  ASSERT_TRUE(SerializeCondensed(g, path).ok());
  auto loaded = LoadCondensed(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->NumRealNodes(), g.NumRealNodes());
  EXPECT_EQ(loaded->NumVirtualNodes(), g.NumVirtualNodes());
  EXPECT_TRUE(loaded->IsDeleted(3));
  EXPECT_EQ(loaded->ExpandedEdgeSet(), g.ExpandedEdgeSet());
  std::remove(path.c_str());
}

TEST(SerializationTest, LoadRejectsGarbage) {
  std::string path = ::testing::TempDir() + "/garbage.cnd";
  FILE* f = fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  fputs("not a graph\n", f);
  fclose(f);
  EXPECT_FALSE(LoadCondensed(path).ok());
  EXPECT_FALSE(LoadCondensed("/no/such/file").ok());
  std::remove(path.c_str());
}

TEST(ExtractManyTest, BatchExtraction) {
  gen::GeneratedDatabase d = gen::MakeUniversity(40, 6, 12, 2.5);
  GraphGen engine(&d.db);
  GraphGenOptions opts;
  opts.representation = Representation::kCDup;
  opts.extract.large_output_factor = 0.0;
  opts.extract.preprocess = false;
  std::vector<std::string> queries = {
      "Nodes(ID, Name) :- Student(ID, Name).\n"
      "Edges(ID1, ID2) :- TookCourse(ID1, C), TookCourse(ID2, C).",
      "Nodes(ID, Name) :- Instructor(ID, Name).\n"
      "Nodes(ID, Name) :- Student(ID, Name).\n"
      "Edges(ID1, ID2) :- TaughtCourse(ID1, C), TookCourse(ID2, C).",
  };
  auto graphs = engine.ExtractMany(queries, opts);
  ASSERT_TRUE(graphs.ok()) << graphs.status().ToString();
  ASSERT_EQ(graphs->size(), 2u);
  EXPECT_EQ((*graphs)[0].graph->NumVertices(), 40u);   // students only
  EXPECT_EQ((*graphs)[1].graph->NumVertices(), 46u);   // bipartite
}

TEST(ExtractManyTest, MemoryBudgetEnforced) {
  gen::GeneratedDatabase d = gen::MakeUniversity(40, 6, 12, 2.5);
  GraphGen engine(&d.db);
  GraphGenOptions opts;
  opts.representation = Representation::kCDup;
  opts.extract.large_output_factor = 0.0;
  std::vector<std::string> queries(3,
      "Nodes(ID, Name) :- Student(ID, Name).\n"
      "Edges(ID1, ID2) :- TookCourse(ID1, C), TookCourse(ID2, C).");
  size_t completed = 99;
  auto graphs = engine.ExtractMany(queries, opts, /*memory_budget_bytes=*/1,
                                   &completed);
  EXPECT_EQ(graphs.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(completed, 0u);
}

TEST(ExtractManyTest, BudgetAdmitsGraphsThatFit) {
  gen::GeneratedDatabase d = gen::MakeUniversity(40, 6, 12, 2.5);
  GraphGen engine(&d.db);
  GraphGenOptions opts;
  opts.representation = Representation::kCDup;
  opts.extract.large_output_factor = 0.0;
  const std::string query =
      "Nodes(ID, Name) :- Student(ID, Name).\n"
      "Edges(ID1, ID2) :- TookCourse(ID1, C), TookCourse(ID2, C).";

  // The footprint of one extraction, from a probe run.
  auto probe = engine.Extract(query, opts);
  ASSERT_TRUE(probe.ok());
  const size_t one_graph = probe->FootprintBytes();
  ASSERT_GT(one_graph, 0u);

  // Budget for exactly two graphs: the third must trip kOutOfRange with
  // `completed` reporting the two that made it.
  std::vector<std::string> queries(3, query);
  size_t completed = 99;
  auto graphs =
      engine.ExtractMany(queries, opts, /*memory_budget_bytes=*/2 * one_graph,
                         &completed);
  EXPECT_EQ(graphs.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(completed, 2u);

  // A budget that covers all three succeeds and completes everything.
  completed = 99;
  auto all = engine.ExtractMany(queries, opts,
                                /*memory_budget_bytes=*/3 * one_graph,
                                &completed);
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  EXPECT_EQ(all->size(), 3u);
  EXPECT_EQ(completed, 3u);

  // Budget 0 means unlimited.
  completed = 99;
  EXPECT_TRUE(engine.ExtractMany(queries, opts, 0, &completed).ok());
  EXPECT_EQ(completed, 3u);
}

TEST(ExtractManyTest, PropagatesQueryErrors) {
  gen::GeneratedDatabase d = gen::MakeUniversity(20, 4, 8, 2.0);
  GraphGen engine(&d.db);
  std::vector<std::string> queries = {"garbage("};
  EXPECT_FALSE(engine.ExtractMany(queries, GraphGenOptions{}).ok());
}

TEST(EnumStringsTest, AllNamed) {
  EXPECT_EQ(RepresentationToString(Representation::kCDup), "C-DUP");
  EXPECT_EQ(RepresentationToString(Representation::kExp), "EXP");
  EXPECT_EQ(RepresentationToString(Representation::kDedup1), "DEDUP-1");
  EXPECT_EQ(RepresentationToString(Representation::kDedup2), "DEDUP-2");
  EXPECT_EQ(RepresentationToString(Representation::kBitmap1), "BITMAP-1");
  EXPECT_EQ(RepresentationToString(Representation::kBitmap2), "BITMAP-2");
  EXPECT_EQ(Dedup1AlgorithmToString(Dedup1Algorithm::kGreedyVirtualFirst),
            "GreedyVirtualFirst");
}

}  // namespace
}  // namespace graphgen
