// bench_incremental — incremental extraction: cold re-extraction vs
// delta patching a captured basis forward after table appends.
//
// For each dataset (DBLP-like, TPC-H-like) and append fraction (0.1%,
// 1%, 10%) the harness truncates every table to a prefix, captures an
// incremental basis there (GraphGenOptions::capture_incremental), appends
// the withheld tails, and then times GraphGen::PatchExtracted against a
// cold GraphGen::Extract over the grown database. Representation is EXP
// so the copy-on-write overlay fast path is on the measured path.
//
// Parity is enforced on every run: the patched condensed extraction must
// be bitwise identical (DiffExtraction, scan counts excluded) to a cold
// planner extraction of the grown database, else the process exits
// non-zero. In full mode the harness additionally gates the headline
// claim: a 1% TPC-H append must patch in at most 10% of the cold time.
// The gate is TPC-H-only by design — patching wins where the cold join
// pipeline is expensive; DBLP-like extractions are cheap enough that the
// delta passes' full-table semi-join scans cost about as much as simply
// re-extracting, and the table rows document that crossover.
//
// Writes a JSON summary (default BENCH_incremental.json, override with
// --out=<path>). --smoke shrinks the datasets and runs one iteration,
// keeping the parity gate as a CI check.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "core/graphgen.h"
#include "gen/relational_generators.h"
#include "planner/extractor.h"
#include "planner/incremental.h"
#include "relational/database.h"
#include "relational/table.h"

namespace {

using namespace graphgen;

struct Row {
  std::string dataset;
  double fraction = 0;
  size_t rows_total = 0;
  size_t rows_delta = 0;
  double cold_ms = 0;
  double patch_ms = 0;
  double patch_over_cold = 0;
};

// Truncates every table of `full` to a (1 - fraction) prefix, returning
// the prefix database and the withheld tail rows per table.
struct SplitDb {
  rel::Database db;
  std::vector<std::pair<std::string, std::vector<rel::Row>>> tails;
  size_t rows_total = 0;
  size_t rows_delta = 0;
};

SplitDb Split(const rel::Database& full, double fraction) {
  SplitDb out;
  for (const std::string& name : full.TableNames()) {
    auto tr = full.GetTable(name);
    if (!tr.ok()) {
      std::fprintf(stderr, "missing table %s\n", name.c_str());
      std::exit(1);
    }
    const rel::Table* t = *tr;
    const size_t rows = t->NumRows();
    size_t delta = static_cast<size_t>(static_cast<double>(rows) * fraction);
    if (delta == 0 && rows > 0) delta = 1;  // every table contributes
    const size_t keep = rows - delta;
    rel::Table copy(name, t->schema());
    for (size_t i = 0; i < keep; ++i) copy.AppendUnchecked(t->row(i));
    out.db.PutTable(std::move(copy));
    auto& tail = out.tails.emplace_back(name, std::vector<rel::Row>{}).second;
    for (size_t i = keep; i < rows; ++i) tail.push_back(t->row(i));
    out.rows_total += rows;
    out.rows_delta += delta;
  }
  out.db.AnalyzeAll();
  return out;
}

Row BenchOne(const std::string& name, const gen::GeneratedDatabase& data,
             double fraction, int iters) {
  Row row;
  row.dataset = name;
  row.fraction = fraction;

  SplitDb split = Split(data.db, fraction);
  row.rows_total = split.rows_total;
  row.rows_delta = split.rows_delta;

  GraphGenOptions options;
  options.representation = Representation::kExp;
  options.capture_incremental = true;

  GraphGen engine(&split.db);
  auto basis = engine.Extract(data.datalog, options);
  if (!basis.ok()) {
    std::fprintf(stderr, "[%s] basis extraction failed: %s\n", name.c_str(),
                 basis.status().ToString().c_str());
    std::exit(1);
  }

  for (auto& [table, rows] : split.tails) {
    Status appended = split.db.AppendRows(table, rows);
    if (!appended.ok()) {
      std::fprintf(stderr, "[%s] append failed: %s\n", name.c_str(),
                   appended.ToString().c_str());
      std::exit(1);
    }
  }

  // Parity gate: the patched condensed extraction must equal a cold
  // planner extraction of the grown database bit for bit.
  {
    auto attempt = planner::PatchExtraction(split.db, *basis->incremental,
                                            options.extract);
    if (!attempt.ok() || !attempt->patched) {
      std::fprintf(stderr, "[%s] patch fell back: %s\n", name.c_str(),
                   attempt.ok() ? attempt->fallback_reason.c_str()
                                : attempt.status().ToString().c_str());
      std::exit(1);
    }
    auto fresh =
        planner::ExtractFromQuery(split.db, data.datalog, options.extract);
    if (!fresh.ok()) std::exit(1);
    const std::string diff = planner::DiffExtraction(
        *fresh, attempt->result, /*compare_scan_counts=*/false);
    if (!diff.empty()) {
      std::fprintf(stderr, "[%s] PARITY FAILURE (fraction %g): %s\n",
                   name.c_str(), fraction, diff.c_str());
      std::exit(1);
    }
  }

  // Cold: full pipeline over the grown database (no capture — the
  // baseline a non-incremental deployment pays on every change).
  GraphGenOptions cold_options = options;
  cold_options.capture_incremental = false;
  row.cold_ms = bench::MinMs(iters, [&] {
    auto cold = engine.Extract(data.datalog, cold_options);
    if (!cold.ok()) std::exit(1);
  });

  // Patch: advance the stale basis to the grown database. Each iteration
  // starts from the same immutable basis, as the service cache would.
  row.patch_ms = bench::MinMs(iters, [&] {
    auto outcome = engine.PatchExtracted(*basis, options);
    if (!outcome.ok() || !outcome->patched) std::exit(1);
  });
  row.patch_over_cold = row.cold_ms > 0 ? row.patch_ms / row.cold_ms : 0;
  return row;
}

void WriteJson(const std::string& path, double scale,
               const std::vector<Row>& rows) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"incremental\",\n  \"scale\": %g,\n",
               scale);
  std::fprintf(f, "  \"runs\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"dataset\": \"%s\", \"append_fraction\": %g, "
                 "\"rows_total\": %zu, \"rows_delta\": %zu, "
                 "\"cold_ms\": %.3f, \"patch_ms\": %.3f, "
                 "\"patch_over_cold\": %.4f}%s\n",
                 r.dataset.c_str(), r.fraction, r.rows_total, r.rows_delta,
                 r.cold_ms, r.patch_ms, r.patch_over_cold,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nJSON written to %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_incremental.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out = argv[i] + 6;
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const double s = smoke ? 0.05 : bench::BenchScale();
  const int iters = bench::ParseRepeat(argc, argv, smoke ? 1 : 5);

  bench::PrintHeader(
      "Incremental extraction: delta patch vs. cold re-extraction");

  gen::GeneratedDatabase dblp =
      gen::MakeDblpLike(static_cast<size_t>(4000 * s),
                        static_cast<size_t>(8000 * s), 4.0);
  gen::GeneratedDatabase tpch = gen::MakeTpchLike(
      static_cast<size_t>(2000 * s), static_cast<size_t>(8000 * s),
      static_cast<size_t>(100 * s) + 20, 3.0);

  std::vector<Row> rows;
  for (const double fraction : {0.001, 0.01, 0.1}) {
    rows.push_back(BenchOne("dblp", dblp, fraction, iters));
    rows.push_back(BenchOne("tpch", tpch, fraction, iters));
  }

  std::printf("%-8s %9s %10s %10s %12s %12s %8s\n", "dataset", "append",
              "rows", "delta", "cold (ms)", "patch (ms)", "ratio");
  bench::PrintRule();
  bool gate_failed = false;
  for (const Row& r : rows) {
    std::printf("%-8s %8.2f%% %10zu %10zu %12.2f %12.2f %7.1f%%\n",
                r.dataset.c_str(), r.fraction * 100, r.rows_total,
                r.rows_delta, r.cold_ms, r.patch_ms,
                r.patch_over_cold * 100);
    // Headline gate (full mode only: smoke datasets are too small for
    // stable timing): a 1% TPC-H append patches in <= 10% of the cold
    // time. See the header comment for why DBLP is reported but ungated.
    if (!smoke && r.dataset == "tpch" && r.fraction == 0.01 &&
        r.patch_over_cold > 0.10) {
      gate_failed = true;
    }
  }
  if (gate_failed) {
    std::fprintf(stderr,
                 "\nGATE FAILURE: a 1%% append took more than 10%% of the "
                 "cold extraction time\n");
    WriteJson(out, s, rows);
    return 1;
  }

  WriteJson(out, s, rows);
  return 0;
}
