// bench_service_cache — serving-layer throughput: cold extraction (full
// planner/executor pipeline) vs. cache hits from the GraphService's
// memory-budgeted LRU cache, on the paper's small relational datasets
// (Fig. 15 schemas). Also drives the worker pool with concurrent clients.
//
// Writes a JSON summary (default BENCH_service_cache.json, override with
// --out=<path>) so successive PRs can track serving performance.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "gen/relational_generators.h"
#include "service/graph_service.h"

namespace {

using namespace graphgen;

struct Row {
  std::string dataset;
  double cold_ms = 0;
  double hit_ms = 0;
  double speedup = 0;
  double hit_rps = 0;
  double concurrent_rps = 0;
  size_t footprint_bytes = 0;
};

constexpr int kColdIters = 5;
constexpr int kHitIters = 200;
constexpr int kClients = 4;
constexpr int kRequestsPerClient = 50;

Row BenchDataset(const std::string& name, gen::GeneratedDatabase data) {
  Row row;
  row.dataset = name;

  service::ServiceOptions options;
  options.cache_budget_bytes = 0;  // unlimited: isolate hit/miss cost
  options.worker_threads = kClients;
  service::GraphService svc(&data.db, options);

  // Cold: clear the cache before every request so each one runs the
  // pipeline (the one-shot GraphGen::Extract cost a library user pays).
  for (int i = 0; i < kColdIters; ++i) {
    svc.ClearCache();
    WallTimer timer;
    auto handle = svc.Extract(data.datalog);
    if (!handle.ok()) {
      std::fprintf(stderr, "[%s] extraction failed: %s\n", name.c_str(),
                   handle.status().ToString().c_str());
      std::exit(1);
    }
    row.cold_ms += timer.Millis();
    row.footprint_bytes = (*handle)->FootprintBytes();
  }
  row.cold_ms /= kColdIters;

  // Hit: the graph is resident; every request is a canonical-key lookup.
  {
    WallTimer timer;
    for (int i = 0; i < kHitIters; ++i) {
      auto handle = svc.Extract(data.datalog);
      if (!handle.ok()) std::exit(1);
    }
    double total_ms = timer.Millis();
    row.hit_ms = total_ms / kHitIters;
    row.hit_rps = kHitIters / (total_ms / 1e3);
  }
  row.speedup = row.hit_ms > 0 ? row.cold_ms / row.hit_ms : 0;

  // Concurrent clients hammering the warm cache through the worker pool.
  {
    WallTimer timer;
    std::vector<std::future<Result<service::GraphHandle>>> futures;
    futures.reserve(kClients * kRequestsPerClient);
    for (int i = 0; i < kClients * kRequestsPerClient; ++i) {
      futures.push_back(svc.ExtractAsync(data.datalog));
    }
    for (auto& f : futures) {
      if (!f.get().ok()) std::exit(1);
    }
    row.concurrent_rps =
        kClients * kRequestsPerClient / (timer.Millis() / 1e3);
  }
  return row;
}

void WriteJson(const std::string& path, double scale,
               const std::vector<Row>& rows) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"service_cache\",\n  \"scale\": %g,\n",
               scale);
  std::fprintf(f, "  \"datasets\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"cold_ms\": %.3f, \"hit_ms\": %.4f, "
                 "\"speedup\": %.1f, \"hit_rps\": %.0f, "
                 "\"concurrent_rps\": %.0f, \"footprint_bytes\": %zu}%s\n",
                 r.dataset.c_str(), r.cold_ms, r.hit_ms, r.speedup, r.hit_rps,
                 r.concurrent_rps, r.footprint_bytes,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nJSON written to %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_service_cache.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out = argv[i] + 6;
  }
  const double s = bench::BenchScale();

  bench::PrintHeader(
      "Service cache: cold extraction vs. cache hit (small datasets)");

  std::vector<Row> rows;
  rows.push_back(BenchDataset(
      "dblp", gen::MakeDblpLike(static_cast<size_t>(2000 * s),
                                static_cast<size_t>(4000 * s), 4.0)));
  rows.push_back(BenchDataset(
      "imdb", gen::MakeImdbLike(static_cast<size_t>(2000 * s),
                                static_cast<size_t>(1000 * s), 10.0)));
  rows.push_back(BenchDataset(
      "tpch", gen::MakeTpchLike(static_cast<size_t>(1000 * s),
                                static_cast<size_t>(4000 * s),
                                static_cast<size_t>(50 * s) + 20, 3.0)));
  rows.push_back(BenchDataset(
      "univ", gen::MakeUniversity(static_cast<size_t>(800 * s), 20,
                                  static_cast<size_t>(60 * s) + 10, 3.5)));

  std::printf("%-8s %12s %12s %9s %12s %14s %12s\n", "dataset", "cold (ms)",
              "hit (ms)", "speedup", "hit req/s", "4-client req/s", "graph");
  bench::PrintRule();
  for (const Row& r : rows) {
    std::printf("%-8s %12.2f %12.4f %8.0fx %12.0f %14.0f %9zu B\n",
                r.dataset.c_str(), r.cold_ms, r.hit_ms, r.speedup, r.hit_rps,
                r.concurrent_rps, r.footprint_bytes);
  }

  WriteJson(out, s, rows);
  return 0;
}
