// Reproduces Fig. 12: (a) running-time comparison of the deduplication /
// preprocessing algorithms on the four small datasets, (b) the effect of
// the node processing order (RAND / ASC / DESC) on dedup time.

#include <functional>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "dedup/bitmap_algorithms.h"
#include "dedup/dedup1_algorithms.h"
#include "dedup/dedup2_builder.h"
#include "gen/small_datasets.h"

namespace graphgen {
namespace {

struct Algo {
  std::string name;
  std::function<bool(const CondensedStorage&, const DedupOptions&)> run;
};

std::vector<Algo> AllAlgos() {
  return {
      {"BITMAP-1",
       [](const CondensedStorage& s, const DedupOptions& o) {
         return BuildBitmap1(s, o).ok();
       }},
      {"BITMAP-2",
       [](const CondensedStorage& s, const DedupOptions& o) {
         return BuildBitmap2(s, o).ok();
       }},
      {"NaiveVF",
       [](const CondensedStorage& s, const DedupOptions& o) {
         return NaiveVirtualNodesFirst(s, o).ok();
       }},
      {"NaiveRF",
       [](const CondensedStorage& s, const DedupOptions& o) {
         return NaiveRealNodesFirst(s, o).ok();
       }},
      {"GreedyRF",
       [](const CondensedStorage& s, const DedupOptions& o) {
         return GreedyRealNodesFirst(s, o).ok();
       }},
      {"GreedyVF",
       [](const CondensedStorage& s, const DedupOptions& o) {
         return GreedyVirtualNodesFirst(s, o).ok();
       }},
      {"DEDUP-2",
       [](const CondensedStorage& s, const DedupOptions& o) {
         return BuildDedup2(s, o).ok();
       }},
  };
}

}  // namespace
}  // namespace graphgen

int main() {
  using namespace graphgen;
  const double scale = 0.005 * bench::BenchScale();

  bench::PrintHeader("Fig. 12a: deduplication time per algorithm (RAND order)");
  for (gen::SmallDatasetId id : gen::Table2Datasets()) {
    CondensedStorage s = gen::MakeSmallDataset(id, scale);
    std::printf("\n%s (%zu real, %zu virtual):\n",
                std::string(gen::SmallDatasetName(id)).c_str(),
                s.NumRealNodes(), s.NumVirtualNodes());
    for (const Algo& a : AllAlgos()) {
      DedupOptions opts;  // RAND by default
      double dedup_ms = 0;
      bool ok = false;
      {
        ScopedTimer t(&dedup_ms, ScopedTimer::Unit::kMillis);
        ok = a.run(s, opts);
      }
      std::printf("  %-9s %10.3fms%s\n", a.name.c_str(), dedup_ms,
                  ok ? "" : "  (failed)");
    }
  }

  bench::PrintHeader("Fig. 12b: effect of processing order (GreedyVF)");
  for (gen::SmallDatasetId id : gen::Table2Datasets()) {
    CondensedStorage s = gen::MakeSmallDataset(id, scale);
    std::printf("%-12s", std::string(gen::SmallDatasetName(id)).c_str());
    for (NodeOrdering o : {NodeOrdering::kRandom, NodeOrdering::kDegreeAsc,
                           NodeOrdering::kDegreeDesc}) {
      DedupOptions opts;
      opts.ordering = o;
      double order_ms = 0;
      auto result = [&] {
        ScopedTimer t(&order_ms, ScopedTimer::Unit::kMillis);
        return GreedyVirtualNodesFirst(s, opts);
      }();
      std::printf("  %s=%8.3fms", std::string(NodeOrderingToString(o)).c_str(),
                  order_ms);
      if (!result.ok()) std::printf("(!)");
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper shape check: BITMAP-1 fastest; DEDUP-1/DEDUP-2 algorithms\n"
      "orders of magnitude slower (log scale in the paper); ordering has\n"
      "no consistent effect (the paper recommends RAND).\n");
  return 0;
}
