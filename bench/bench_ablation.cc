// Ablation studies for the two planner design choices DESIGN.md calls
// out, which the paper describes but does not plot separately:
//
//  A. §4.2 Step 6 preprocessing — expanding virtual nodes with
//     in*out <= in+out+1. Measures condensed size and C-DUP iteration
//     speed with and without it.
//  B. The large-output join threshold (the constant 2 in
//     |L||R|/d > c(|L|+|R|)) — sweeps c and reports where extraction
//     flips between condensing and expanding, and the resulting
//     edge counts / times.

#include <cinttypes>

#include "algos/degree.h"
#include "bench_util.h"
#include "common/timer.h"
#include "gen/relational_generators.h"
#include "gen/small_datasets.h"
#include "planner/extractor.h"
#include "planner/preprocess.h"
#include "repr/cdup_graph.h"

namespace graphgen {
namespace {

void AblationPreprocess(double scale) {
  bench::PrintHeader("Ablation A: Step-6 preprocessing (tiny virtual nodes)");
  std::printf("%-12s %14s %14s %12s %12s\n", "dataset", "edges before",
              "edges after", "virt removed", "degree speedup");
  for (gen::SmallDatasetId id : gen::Table2Datasets()) {
    CondensedStorage without = gen::MakeSmallDataset(id, scale);
    CondensedStorage with = without;
    planner::PreprocessResult pp = planner::ExpandSmallVirtualNodes(with);

    CDupGraph g_without(std::move(without));
    CDupGraph g_with(std::move(with));
    double before_s = 0;
    double after_s = 0;
    { ScopedTimer t(&before_s); ComputeDegrees(g_without); }
    { ScopedTimer t(&after_s); ComputeDegrees(g_with); }

    std::printf("%-12s %14" PRIu64 " %14" PRIu64 " %12zu %11.2fx\n",
                std::string(gen::SmallDatasetName(id)).c_str(),
                g_without.CountStoredEdges(), g_with.CountStoredEdges(),
                pp.expanded_virtual_nodes, before_s / after_s);
  }
  std::printf(
      "(DBLP-shaped data has many size-2 virtual nodes; expanding them\n"
      " shrinks the graph AND speeds up iteration — why §4.2 runs Step 6\n"
      " by default.)\n");
}

void AblationThreshold(double scale) {
  bench::PrintHeader(
      "Ablation B: large-output threshold sweep (factor c in the join test)");
  gen::GeneratedDatabase d =
      gen::MakeImdbLike(static_cast<size_t>(9000 * scale * 100),
                        static_cast<size_t>(4000 * scale * 100), 10.0);
  std::printf("IMDB-like co-actor query; |R||R|/d vs c(|R|+|R|):\n");
  std::printf("%8s %12s %14s %10s %10s\n", "factor", "virt nodes",
              "stored edges", "time", "mode");
  for (double factor : {0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 1e18}) {
    planner::ExtractOptions opts;
    opts.large_output_factor = factor;
    opts.preprocess = false;
    double extract_s = 0;
    auto result = [&] {
      ScopedTimer t(&extract_s);
      return planner::ExtractFromQuery(d.db, d.datalog, opts);
    }();
    if (!result.ok()) {
      std::printf("%8.1f extraction failed\n", factor);
      continue;
    }
    std::printf("%8.1f %12zu %14" PRIu64 " %9.3fs %10s\n",
                factor == 1e18 ? 999.0 : factor, result->virtual_nodes,
                result->condensed_edges, extract_s,
                result->virtual_nodes > 0 ? "condensed" : "expanded");
  }
  std::printf(
      "(With ~10 actors per movie, the self-join is large-output for any\n"
      " reasonable c: the formula flips only at very large factors. The\n"
      " expanded mode costs far more time and edges — the Table 1 story.)\n");
}

}  // namespace
}  // namespace graphgen

int main() {
  setvbuf(stdout, nullptr, _IOLBF, 0);
  const double scale = 0.01 * graphgen::bench::BenchScale();
  graphgen::AblationPreprocess(scale);
  graphgen::AblationThreshold(scale);
  return 0;
}
