// Reproduces Table 4 + Table 5: the Giraph-style BSP experiments. For the
// S1/S2/N1/N2/IMDB datasets, runs Degree, ConnectedComponents, and
// PageRank on EXP / DEDUP-1 / BITMAP through the message-passing BSP
// engine with virtual-node aggregation, reporting time, memory, and the
// per-representation dataset shapes.

#include <cinttypes>

#include "bench_util.h"
#include "bsp/bsp_programs.h"
#include "common/memory.h"
#include "dedup/bitmap_algorithms.h"
#include "dedup/dedup1_algorithms.h"
#include "gen/small_datasets.h"
#include "repr/expander.h"

namespace graphgen {
namespace {

void RunDataset(gen::SmallDatasetId id, double scale) {
  CondensedStorage s = gen::MakeSmallDataset(id, scale);
  const std::string name = std::string(gen::SmallDatasetName(id));

  ExpandedGraph exp = ExpandCondensed(s);
  auto d1 = GreedyVirtualNodesFirst(s);
  auto bm = BuildBitmap2(s);
  if (!d1.ok() || !bm.ok()) {
    std::printf("%s: representation build failed\n", name.c_str());
    return;
  }

  // Table 5 rows: nodes / virtual nodes / edges per representation.
  std::printf("\n%s (Table 5 shapes):\n", name.c_str());
  std::printf("  EXP     %9zu nodes %8d virt %12" PRIu64 " edges\n",
              exp.NumVertices(), 0, exp.CountStoredEdges());
  std::printf("  DEDUP1  %9zu nodes %8zu virt %12" PRIu64 " edges\n",
              s.NumRealNodes() + d1->NumVirtualNodes(), d1->NumVirtualNodes(),
              d1->CountStoredEdges());
  std::printf("  BMP     %9zu nodes %8zu virt %12" PRIu64 " edges\n",
              s.NumRealNodes() + bm->NumVirtualNodes(), bm->NumVirtualNodes(),
              bm->CountStoredEdges());

  // Table 4 rows.
  struct Row {
    const char* name;
    bsp::BspEngine engine;
  };
  Row rows[] = {
      {"EXP", bsp::MakeExpandedEngine(exp)},
      {"DEDUP1", bsp::MakeDedup1Engine(*d1)},
      {"BMP", bsp::MakeBitmapEngine(*bm)},
  };
  std::printf("  %-7s %22s %22s %22s\n", "repr", "Degree (t/mem/msg)",
              "ConComp (t/mem/msg)", "PageRank (t/mem/msg)");
  for (Row& row : rows) {
    std::vector<uint64_t> degrees;
    auto deg = row.engine.RunDegree(&degrees);
    std::vector<NodeId> labels;
    auto cc = row.engine.RunConnectedComponents(&labels);
    std::vector<double> ranks;
    auto pr = row.engine.RunPageRank(10, 0.85, &ranks);
    if (!deg.ok() || !cc.ok() || !pr.ok()) {
      std::printf("  %-7s failed\n", row.name);
      continue;
    }
    auto cell = [](const bsp::BspRunStats& st) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%7.1fms/%7s/%6" PRIu64 "k",
                    st.seconds * 1e3, FormatBytes(st.memory_bytes).c_str(),
                    st.messages / 1000);
      return std::string(buf);
    };
    std::printf("  %-7s %22s %22s %22s\n", row.name, cell(*deg).c_str(),
                cell(*cc).c_str(), cell(*pr).c_str());
  }
}

}  // namespace
}  // namespace graphgen

int main() {
  const double scale = 0.02 * graphgen::bench::BenchScale();
  graphgen::bench::PrintHeader(
      "Table 4 / Table 5: BSP (Giraph-style) runs on EXP / DEDUP-1 / BITMAP");
  for (graphgen::gen::SmallDatasetId id : graphgen::gen::GiraphDatasets()) {
    graphgen::RunDataset(id, scale);
  }
  std::printf(
      "\nPaper shape check: BMP needs far fewer stored edges on the dense\n"
      "S/N datasets and wins PageRank there; on IMDB (small cliques)\n"
      "DEDUP-1 is the better condensed choice — both trends as in §6.4.\n");
  return 0;
}
