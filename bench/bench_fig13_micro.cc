// Reproduces Fig. 13: microbenchmarks of the basic Graph API operations
// (GetNeighbors iteration, ExistsEdge, AddEdge/DeleteEdge, DeleteVertex)
// on every in-memory representation, over the four small datasets.
// Uses google-benchmark; each operation runs against a fixed set of
// randomly selected vertices (the paper uses 3000).

#include <benchmark/benchmark.h>

#include <memory>

#include "common/rng.h"
#include "dedup/bitmap_algorithms.h"
#include "dedup/dedup1_algorithms.h"
#include "dedup/dedup2_builder.h"
#include "gen/small_datasets.h"
#include "repr/cdup_graph.h"
#include "repr/dedup1_graph.h"
#include "repr/expander.h"

namespace graphgen {
namespace {

constexpr double kScale = 0.004;
constexpr size_t kSampleSize = 512;

enum ReprId { kExp = 0, kCDup, kDedup1, kDedup2, kBitmap1, kBitmap2 };
const char* kReprNames[] = {"EXP",     "C-DUP",    "DEDUP-1",
                            "DEDUP-2", "BITMAP-1", "BITMAP-2"};

// One lazily built set of representations per dataset.
struct DatasetReprs {
  std::unique_ptr<Graph> graphs[6];
  std::vector<NodeId> samples;
};

DatasetReprs& GetReprs(int dataset) {
  static DatasetReprs cache[4];
  static bool built[4] = {false, false, false, false};
  if (!built[dataset]) {
    auto ids = gen::Table2Datasets();
    CondensedStorage s = gen::MakeSmallDataset(ids[dataset], kScale);
    DatasetReprs& d = cache[dataset];
    d.graphs[kExp] = std::make_unique<ExpandedGraph>(ExpandCondensed(s));
    d.graphs[kCDup] = std::make_unique<CDupGraph>(s);
    auto d1 = GreedyVirtualNodesFirst(s);
    if (d1.ok()) {
      d.graphs[kDedup1] = std::make_unique<Dedup1Graph>(std::move(*d1));
    }
    auto d2 = BuildDedup2(s);
    if (d2.ok()) {
      d.graphs[kDedup2] = std::make_unique<Dedup2Graph>(std::move(*d2));
    }
    auto b1 = BuildBitmap1(s);
    if (b1.ok()) {
      d.graphs[kBitmap1] = std::make_unique<BitmapGraph>(std::move(*b1));
    }
    auto b2 = BuildBitmap2(s);
    if (b2.ok()) {
      d.graphs[kBitmap2] = std::make_unique<BitmapGraph>(std::move(*b2));
    }
    Rng rng(777);
    for (size_t i = 0; i < kSampleSize; ++i) {
      d.samples.push_back(
          static_cast<NodeId>(rng.NextBounded(s.NumRealNodes())));
    }
    built[dataset] = true;
  }
  return cache[dataset];
}

void BM_GetNeighbors(benchmark::State& state) {
  DatasetReprs& d = GetReprs(static_cast<int>(state.range(0)));
  Graph* g = d.graphs[state.range(1)].get();
  if (g == nullptr) {
    state.SkipWithError("representation unavailable");
    return;
  }
  size_t i = 0;
  for (auto _ : state) {
    NodeId u = d.samples[i++ % d.samples.size()];
    uint64_t count = 0;
    g->ForEachNeighbor(u, [&](NodeId) { ++count; });
    benchmark::DoNotOptimize(count);
  }
}

void BM_ExistsEdge(benchmark::State& state) {
  DatasetReprs& d = GetReprs(static_cast<int>(state.range(0)));
  Graph* g = d.graphs[state.range(1)].get();
  if (g == nullptr) {
    state.SkipWithError("representation unavailable");
    return;
  }
  size_t i = 0;
  for (auto _ : state) {
    NodeId u = d.samples[i % d.samples.size()];
    NodeId v = d.samples[(i + 1) % d.samples.size()];
    ++i;
    benchmark::DoNotOptimize(g->ExistsEdge(u, v));
  }
}

void BM_AddDeleteEdge(benchmark::State& state) {
  DatasetReprs& d = GetReprs(static_cast<int>(state.range(0)));
  Graph* g = d.graphs[state.range(1)].get();
  if (g == nullptr) {
    state.SkipWithError("representation unavailable");
    return;
  }
  size_t i = 0;
  for (auto _ : state) {
    NodeId u = d.samples[i % d.samples.size()];
    NodeId v = d.samples[(i + 13) % d.samples.size()];
    ++i;
    if (u == v) continue;
    bool existed = g->ExistsEdge(u, v);
    if (existed) continue;  // keep the graph unchanged overall
    benchmark::DoNotOptimize(g->AddEdge(u, v));
    benchmark::DoNotOptimize(g->DeleteEdge(u, v));
  }
}

void BM_DeleteVertex(benchmark::State& state) {
  // Lazy deletion (§3.4): build one fresh graph per benchmark run, then
  // delete a different vertex per iteration (no timer pausing).
  auto ids = gen::Table2Datasets();
  CondensedStorage s =
      gen::MakeSmallDataset(ids[static_cast<int>(state.range(0))], kScale);
  std::unique_ptr<Graph> g;
  switch (state.range(1)) {
    case kExp:
      g = std::make_unique<ExpandedGraph>(ExpandCondensed(s));
      break;
    case kCDup:
      g = std::make_unique<CDupGraph>(s);
      break;
    default: {
      DedupOptions opts;
      opts.ordering = NodeOrdering::kDegreeDesc;
      auto d2 = BuildDedup2(s, opts);
      if (!d2.ok()) {
        state.SkipWithError("dedup2 unavailable");
        return;
      }
      g = std::make_unique<Dedup2Graph>(std::move(*d2));
    }
  }
  NodeId next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(g->DeleteVertex(next));
    next = (next + 1) % static_cast<NodeId>(s.NumRealNodes());
  }
}

void RegisterAll() {
  const char* kDatasets[] = {"DBLP", "IMDB", "Synthetic_1", "Synthetic_2"};
  for (int ds = 0; ds < 4; ++ds) {
    for (int r = 0; r < 6; ++r) {
      std::string suffix = std::string("/") + kDatasets[ds] + "/" +
                           kReprNames[r];
      benchmark::RegisterBenchmark(("GetNeighbors" + suffix).c_str(),
                                   BM_GetNeighbors)
          ->Args({ds, r});
      benchmark::RegisterBenchmark(("ExistsEdge" + suffix).c_str(),
                                   BM_ExistsEdge)
          ->Args({ds, r});
      benchmark::RegisterBenchmark(("AddDeleteEdge" + suffix).c_str(),
                                   BM_AddDeleteEdge)
          ->Args({ds, r})
          ->Iterations(200);
    }
    for (int r : {kExp, kCDup, kDedup2}) {
      benchmark::RegisterBenchmark(
          (std::string("DeleteVertex/") + kDatasets[ds] + "/" +
           kReprNames[r])
              .c_str(),
          BM_DeleteVertex)
          ->Args({ds, r})
          ->Iterations(256);
    }
  }
}

}  // namespace
}  // namespace graphgen

int main(int argc, char** argv) {
  graphgen::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
