// Reproduces Table 3 (+ Table 6 selectivities): the large-dataset study.
// At this scale only C-DUP, BITMAP-2, and EXP are feasible in the paper;
// we run those three and report Degree / PageRank / BFS times, memory,
// and the BITMAP-2 dedup time. The TPCH co-purchase graph goes through
// the full relational extraction pipeline.

#include <cinttypes>
#include <memory>

#include "algos/bfs.h"
#include "algos/degree.h"
#include "algos/pagerank.h"
#include "bench_util.h"
#include "common/memory.h"
#include "common/timer.h"
#include "dedup/bitmap_algorithms.h"
#include "gen/large_datasets.h"
#include "gen/relational_generators.h"
#include "planner/extractor.h"
#include "repr/cdup_graph.h"
#include "repr/expander.h"

namespace graphgen {
namespace {

void RunAlgos(const char* name, const Graph& g, double build_seconds) {
  double degree_s = 0;
  double pr_s = 0;
  double bfs_s = 0;
  { ScopedTimer t(&degree_s); ComputeDegrees(g); }
  { ScopedTimer t(&pr_s); PageRank(g, {.iterations = 5}); }
  { ScopedTimer t(&bfs_s); Bfs(g, 0); }
  std::printf("  %-8s Degree %8.3fs  PR %8.3fs  BFS %8.3fs  mem %10s%s\n",
              name, degree_s, pr_s, bfs_s, FormatBytes(g.MemoryBytes()).c_str(),
              build_seconds > 0
                  ? ("  (build " + std::to_string(build_seconds) + "s)").c_str()
                  : "");
}

void RunDataset(const std::string& name, const CondensedStorage& s,
                const std::string& selectivities) {
  std::printf("\n%s  (selectivities %s): %zu real, %zu virtual, %" PRIu64
              " condensed edges\n",
              name.c_str(), selectivities.c_str(), s.NumRealNodes(),
              s.NumVirtualNodes(), s.CountCondensedEdges());

  {
    CDupGraph cdup(s);
    RunAlgos("C-DUP", cdup, 0);
  }
  {
    double dedup_s = 0;
    auto bm = [&] {
      ScopedTimer t(&dedup_s);
      return BuildBitmap2(s);
    }();
    if (bm.ok()) {
      RunAlgos("BMP", *bm, dedup_s);
    } else {
      std::printf("  BMP      %s\n", bm.status().ToString().c_str());
    }
  }
  {
    double build_s = 0;
    ExpandedGraph exp;
    { ScopedTimer t(&build_s); exp = ExpandCondensed(s); }
    RunAlgos("EXP", exp, build_s);
  }
}

}  // namespace
}  // namespace graphgen

int main() {
  setvbuf(stdout, nullptr, _IOLBF, 0);
  using namespace graphgen;
  const double scale = 0.003 * bench::BenchScale();
  bench::PrintHeader(
      "Table 3 / Table 6: large datasets — C-DUP vs BITMAP-2 vs EXP");
  std::printf(
      "(paper: EXP DNF on Layered_1 and Single_2 at >64GB; C-DUP ran out\n"
      " of memory on Single_2 PageRank. Scaled down, all rows complete;\n"
      " the ordering of the columns is the reproduction target.)\n");

  // BITMAP-2 on multi-layer graphs requires the flattened reachability
  // work per node, so Layered_* are the stress cases.
  for (gen::LargeDatasetId id : gen::Table3Datasets()) {
    CondensedStorage s = gen::MakeLargeDataset(id, scale);
    RunDataset(std::string(gen::LargeDatasetName(id)), s,
               gen::LargeDatasetSelectivities(id));
  }

  // TPCH via the full extraction pipeline (the Table 3 TPCH row).
  {
    gen::GeneratedDatabase d = gen::MakeTpchLike(
        static_cast<size_t>(150000 * scale), static_cast<size_t>(500000 * scale),
        static_cast<size_t>(2000 * scale) + 20, 3.0);
    planner::ExtractOptions opts;
    opts.large_output_factor = 0.0;
    opts.preprocess = false;
    auto result = planner::ExtractFromQuery(d.db, d.datalog, opts);
    if (result.ok()) {
      RunDataset("TPCH", result->storage, "key-FK -> part -> key-FK");
    } else {
      std::printf("TPCH extraction failed: %s\n",
                  result.status().ToString().c_str());
    }
  }
  return 0;
}
