// bench_kernels — the devirtualized traversal fast path, measured.
//
// Runs every graph algorithm twice on the same EXP (flat-CSR) graph:
// once pinned to the virtual ForEachNeighbor(std::function) baseline
// (TraversalPath::kFunction) and once on the NeighborSpan fast path
// (kAuto), verifying both produce identical results. Also times the
// ExpandCondensed CSR build (the cold-extraction component) and the
// materialized-CSR adapter economics: what one CsrGraph::Build costs on
// top of C-DUP, and what each subsequent kernel saves.
//
// Writes a JSON summary (default BENCH_kernels.json, override with
// --out=<path>). --smoke shrinks the dataset, runs one iteration of
// everything, and exits non-zero on any function/span result mismatch —
// the CI regression gate for optimized builds.

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "algos/bfs.h"
#include "algos/clustering.h"
#include "algos/intersect.h"
#include "algos/connected_components.h"
#include "algos/degree.h"
#include "algos/kcore.h"
#include "algos/pagerank.h"
#include "algos/triangles.h"
#include "bench_util.h"
#include "common/timer.h"
#include "gen/condensed_generator.h"
#include "repr/cdup_graph.h"
#include "repr/csr_graph.h"
#include "repr/expander.h"

namespace {

using namespace graphgen;

struct KernelRow {
  std::string name;
  double function_ms = 0;
  double span_ms = 0;
  bool match = true;
  double Speedup() const { return span_ms > 0 ? function_ms / span_ms : 0; }
};

using bench::MedianMs;

bool NearlyEqual(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i] - b[i]) > 1e-12) return false;
  }
  return true;
}

// ------------------------- --gallop: intersection-threshold crossover sweep
//
// Times the two IntersectSortedCount strategies in isolation (linear
// merge vs gallop, bypassing the size heuristic) across skew ratios, to
// measure where the crossover actually sits on this machine — the source
// of the kGallopRatio constant in algos/intersect.h. Also times the
// bounds pre-check on disjoint inputs, where it short-circuits the whole
// intersection to two comparisons.

uint64_t MergeCountOnly(std::span<const NodeId> a, std::span<const NodeId> b) {
  uint64_t count = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

uint64_t GallopCountOnly(std::span<const NodeId> a, std::span<const NodeId> b) {
  uint64_t count = 0;
  const NodeId* lo = b.data();
  const NodeId* end = b.data() + b.size();
  for (NodeId x : a) {
    lo = std::lower_bound(lo, end, x);
    if (lo == end) break;
    if (*lo == x) {
      ++count;
      ++lo;
    }
  }
  return count;
}

std::vector<NodeId> RandomSorted(size_t n, NodeId universe, uint64_t seed) {
  std::vector<NodeId> v;
  v.reserve(n);
  uint64_t s = seed * 0x9e3779b97f4a7c15ull + 1;
  while (v.size() < n) {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    v.push_back(static_cast<NodeId>(s % universe));
    if (v.size() == n) {
      std::sort(v.begin(), v.end());
      v.erase(std::unique(v.begin(), v.end()), v.end());
    }
  }
  return v;
}

int RunGallopSweep(int iters) {
  bench::PrintHeader("IntersectSortedCount: merge vs gallop crossover");
  std::printf("configured kGallopRatio = %zu\n\n", detail::kGallopRatio);
  std::printf("%8s %8s %8s %12s %12s %9s %8s\n", "short", "long", "ratio",
              "merge (ms)", "gallop (ms)", "g/m", "winner");
  bench::PrintRule();
  constexpr size_t kShort = 256;
  constexpr size_t kPairs = 512;  // fresh pairs per timing pass (cache-cold-ish)
  for (size_t ratio = 1; ratio <= 256; ratio *= 2) {
    const size_t long_len = kShort * ratio;
    std::vector<std::vector<NodeId>> shorts(kPairs);
    std::vector<std::vector<NodeId>> longs(kPairs);
    for (size_t p = 0; p < kPairs; ++p) {
      const NodeId universe = static_cast<NodeId>(4 * long_len);
      shorts[p] = RandomSorted(kShort, universe, 2 * p + 1);
      longs[p] = RandomSorted(long_len, universe, 2 * p + 2);
    }
    uint64_t sink_m = 0;
    uint64_t sink_g = 0;
    const double merge_ms = bench::MedianMs(iters, [&] {
      for (size_t p = 0; p < kPairs; ++p) {
        sink_m += MergeCountOnly(shorts[p], longs[p]);
      }
    });
    const double gallop_ms = bench::MedianMs(iters, [&] {
      for (size_t p = 0; p < kPairs; ++p) {
        sink_g += GallopCountOnly(shorts[p], longs[p]);
      }
    });
    uint64_t check_m = 0;
    uint64_t check_g = 0;
    for (size_t p = 0; p < kPairs; ++p) {
      check_m += MergeCountOnly(shorts[p], longs[p]);
      check_g += GallopCountOnly(shorts[p], longs[p]);
    }
    if (check_m != check_g || sink_m < check_m || sink_g < check_g) {
      std::fprintf(stderr, "FAIL: merge/gallop counts disagree\n");
      return 1;
    }
    std::printf("%8zu %8zu %7zux %12.3f %12.3f %9.2f %8s\n", kShort, long_len,
                ratio, merge_ms, gallop_ms,
                merge_ms > 0 ? gallop_ms / merge_ms : 0,
                gallop_ms < merge_ms ? "gallop" : "merge");
  }

  // Bounds pre-check: disjoint inputs short-circuit to two compares.
  const size_t long_len = kShort * 64;
  std::vector<NodeId> lo_list = RandomSorted(kShort, 1 << 16, 11);
  std::vector<NodeId> hi_list = RandomSorted(long_len, 1 << 16, 12);
  for (NodeId& x : hi_list) x += 1 << 17;  // fully above lo_list
  uint64_t sink = 0;
  const double checked_ms = bench::MedianMs(iters, [&] {
    for (size_t rep = 0; rep < kPairs; ++rep) {
      sink += detail::IntersectSortedCount(lo_list, hi_list);
    }
  });
  const double unchecked_ms = bench::MedianMs(iters, [&] {
    for (size_t rep = 0; rep < kPairs; ++rep) {
      sink += GallopCountOnly(lo_list, hi_list);
    }
  });
  std::printf(
      "\nbounds pre-check on disjoint %zu∩%zu: with %.4fms | without %.4fms "
      "(%.0fx) [sink %" PRIu64 "]\n",
      kShort, long_len, checked_ms, unchecked_ms,
      checked_ms > 0 ? unchecked_ms / checked_ms : 0, sink);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_kernels.json";
  bool smoke = false;
  bool gallop = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--gallop") == 0) gallop = true;
  }
  const double scale = smoke ? 0.05 : bench::BenchScale();
  const int iters = bench::ParseRepeat(argc, argv, smoke ? 1 : 5);
  if (gallop) return RunGallopSweep(iters);

  bench::PrintHeader("Kernel fast path: function-callback vs NeighborSpan");

  // A symmetric single-layer condensed graph with overlapping cliques —
  // the paper's co-occurrence shape, and a degree distribution skewed
  // enough to exercise the edge-balanced splitting.
  gen::CondensedGenOptions gopt;
  gopt.num_real = static_cast<size_t>(30000 * scale);
  gopt.num_virtual = static_cast<size_t>(9000 * scale);
  gopt.mean_size = 10.0;
  gopt.sd_size = 4.0;
  gopt.seed = 7;
  CondensedStorage storage = gen::GenerateCondensed(gopt);

  // Cold extraction: the parallel two-pass CSR expansion itself.
  double expand_ms = 0;
  ExpandedGraph exp;
  {
    ScopedTimer timer(&expand_ms, ScopedTimer::Unit::kMillis);
    exp = ExpandCondensed(storage);
  }
  std::printf("graph: %zu vertices, %" PRIu64
              " expanded edges | ExpandCondensed %.1fms\n\n",
              exp.NumVertices(), exp.CountStoredEdges(), expand_ms);

  constexpr TraversalPath kFn = TraversalPath::kFunction;
  constexpr TraversalPath kSpan = TraversalPath::kAuto;
  std::vector<KernelRow> rows;

  {
    KernelRow r{.name = "pagerank"};
    std::vector<double> a;
    std::vector<double> b;
    PageRankOptions fn_opt{.iterations = 10, .traversal = kFn};
    PageRankOptions span_opt{.iterations = 10, .traversal = kSpan};
    r.function_ms = MedianMs(iters, [&] { a = PageRank(exp, fn_opt); });
    r.span_ms = MedianMs(iters, [&] { b = PageRank(exp, span_opt); });
    r.match = a == b;  // same summation order -> bitwise identical
    rows.push_back(r);
  }
  {
    KernelRow r{.name = "triangles"};
    uint64_t a = 0;
    uint64_t b = 0;
    r.function_ms = MedianMs(iters, [&] { a = CountTriangles(exp, kFn); });
    r.span_ms = MedianMs(iters, [&] { b = CountTriangles(exp, kSpan); });
    r.match = a == b;
    rows.push_back(r);
  }
  {
    KernelRow r{.name = "connected_components"};
    std::vector<NodeId> a;
    std::vector<NodeId> b;
    r.function_ms =
        MedianMs(iters, [&] { a = ConnectedComponents(exp, 0, kFn); });
    r.span_ms = MedianMs(iters, [&] { b = ConnectedComponents(exp, 0, kSpan); });
    r.match = a == b;
    rows.push_back(r);
  }
  {
    KernelRow r{.name = "bfs"};
    std::vector<uint32_t> a;
    std::vector<uint32_t> b;
    r.function_ms = MedianMs(iters, [&] { a = Bfs(exp, 0, kFn); });
    r.span_ms = MedianMs(iters, [&] { b = Bfs(exp, 0, kSpan); });
    r.match = a == b;
    rows.push_back(r);
  }
  {
    KernelRow r{.name = "kcore"};
    std::vector<uint32_t> a;
    std::vector<uint32_t> b;
    r.function_ms = MedianMs(iters, [&] { a = KCoreDecomposition(exp, kFn); });
    r.span_ms = MedianMs(iters, [&] { b = KCoreDecomposition(exp, kSpan); });
    r.match = a == b;
    rows.push_back(r);
  }
  {
    KernelRow r{.name = "degree"};
    std::vector<uint64_t> a;
    std::vector<uint64_t> b;
    r.function_ms = MedianMs(iters, [&] { a = ComputeDegrees(exp, 0, kFn); });
    r.span_ms = MedianMs(iters, [&] { b = ComputeDegrees(exp, 0, kSpan); });
    r.match = a == b;
    rows.push_back(r);
  }
  {
    KernelRow r{.name = "clustering"};
    std::vector<double> a;
    std::vector<double> b;
    r.function_ms =
        MedianMs(iters, [&] { a = LocalClusteringCoefficients(exp, kFn); });
    r.span_ms =
        MedianMs(iters, [&] { b = LocalClusteringCoefficients(exp, kSpan); });
    r.match = NearlyEqual(a, b);
    rows.push_back(r);
  }

  std::printf("%-22s %14s %12s %9s %7s\n", "kernel", "function (ms)",
              "span (ms)", "speedup", "match");
  bench::PrintRule();
  bool all_match = true;
  for (const KernelRow& r : rows) {
    all_match = all_match && r.match;
    std::printf("%-22s %14.2f %12.2f %8.2fx %7s\n", r.name.c_str(),
                r.function_ms, r.span_ms, r.Speedup(), r.match ? "yes" : "NO");
  }

  // Adapter economics: C-DUP's on-the-fly dedup traversal vs one
  // materialized CSR snapshot feeding span kernels.
  CDupGraph cdup(storage);
  double csr_build_ms = 0;
  std::unique_ptr<CsrGraph> csr;
  {
    ScopedTimer timer(&csr_build_ms, ScopedTimer::Unit::kMillis);
    csr = std::make_unique<CsrGraph>(CsrGraph::Build(cdup));
  }
  PageRankOptions pr_opt{.iterations = 10};
  double cdup_pagerank_ms =
      MedianMs(iters, [&] { (void)PageRank(cdup, pr_opt); });
  double csr_pagerank_ms = MedianMs(iters, [&] { (void)PageRank(*csr, pr_opt); });
  const double per_run_saving = cdup_pagerank_ms - csr_pagerank_ms;
  const double breakeven =
      per_run_saving > 0 ? csr_build_ms / per_run_saving : -1;
  std::printf(
      "\nCSR adapter over C-DUP: build %.1fms | pagerank %.1fms -> %.1fms "
      "(%.1fx) | breakeven after %.1f kernel runs\n",
      csr_build_ms, cdup_pagerank_ms, csr_pagerank_ms,
      csr_pagerank_ms > 0 ? cdup_pagerank_ms / csr_pagerank_ms : 0, breakeven);

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"bench\": \"kernels\",\n  \"scale\": %g,\n", scale);
    std::fprintf(f,
                 "  \"graph\": {\"vertices\": %zu, \"edges\": %" PRIu64
                 "},\n  \"expand_ms\": %.2f,\n",
                 exp.NumVertices(), exp.CountStoredEdges(), expand_ms);
    std::fprintf(f, "  \"kernels\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const KernelRow& r = rows[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"function_ms\": %.3f, "
                   "\"span_ms\": %.3f, \"speedup\": %.2f}%s\n",
                   r.name.c_str(), r.function_ms, r.span_ms, r.Speedup(),
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n  \"csr_adapter\": {\"build_ms\": %.3f, "
                 "\"cdup_pagerank_ms\": %.3f, \"csr_pagerank_ms\": %.3f, "
                 "\"breakeven_runs\": %.2f}\n}\n",
                 csr_build_ms, cdup_pagerank_ms, csr_pagerank_ms, breakeven);
    std::fclose(f);
    std::printf("\nJSON written to %s\n", out_path.c_str());
  }

  if (!all_match) {
    std::fprintf(stderr, "FAIL: span and function paths disagree\n");
    return 1;
  }
  return 0;
}
