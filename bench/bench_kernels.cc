// bench_kernels — the devirtualized traversal fast path, measured.
//
// Runs every graph algorithm twice on the same EXP (flat-CSR) graph:
// once pinned to the virtual ForEachNeighbor(std::function) baseline
// (TraversalPath::kFunction) and once on the NeighborSpan fast path
// (kAuto), verifying both produce identical results. Also times the
// ExpandCondensed CSR build (the cold-extraction component) and the
// materialized-CSR adapter economics: what one CsrGraph::Build costs on
// top of C-DUP, and what each subsequent kernel saves.
//
// Writes a JSON summary (default BENCH_kernels.json, override with
// --out=<path>). --smoke shrinks the dataset, runs one iteration of
// everything, and exits non-zero on any function/span result mismatch —
// the CI regression gate for optimized builds.

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "algos/bfs.h"
#include "algos/clustering.h"
#include "algos/connected_components.h"
#include "algos/degree.h"
#include "algos/kcore.h"
#include "algos/pagerank.h"
#include "algos/triangles.h"
#include "bench_util.h"
#include "common/timer.h"
#include "gen/condensed_generator.h"
#include "repr/cdup_graph.h"
#include "repr/csr_graph.h"
#include "repr/expander.h"

namespace {

using namespace graphgen;

struct KernelRow {
  std::string name;
  double function_ms = 0;
  double span_ms = 0;
  bool match = true;
  double Speedup() const { return span_ms > 0 ? function_ms / span_ms : 0; }
};

using bench::MedianMs;

bool NearlyEqual(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i] - b[i]) > 1e-12) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_kernels.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const double scale = smoke ? 0.05 : bench::BenchScale();
  const int iters = bench::ParseRepeat(argc, argv, smoke ? 1 : 5);

  bench::PrintHeader("Kernel fast path: function-callback vs NeighborSpan");

  // A symmetric single-layer condensed graph with overlapping cliques —
  // the paper's co-occurrence shape, and a degree distribution skewed
  // enough to exercise the edge-balanced splitting.
  gen::CondensedGenOptions gopt;
  gopt.num_real = static_cast<size_t>(30000 * scale);
  gopt.num_virtual = static_cast<size_t>(9000 * scale);
  gopt.mean_size = 10.0;
  gopt.sd_size = 4.0;
  gopt.seed = 7;
  CondensedStorage storage = gen::GenerateCondensed(gopt);

  // Cold extraction: the parallel two-pass CSR expansion itself.
  double expand_ms = 0;
  ExpandedGraph exp;
  {
    ScopedTimer timer(&expand_ms, ScopedTimer::Unit::kMillis);
    exp = ExpandCondensed(storage);
  }
  std::printf("graph: %zu vertices, %" PRIu64
              " expanded edges | ExpandCondensed %.1fms\n\n",
              exp.NumVertices(), exp.CountStoredEdges(), expand_ms);

  constexpr TraversalPath kFn = TraversalPath::kFunction;
  constexpr TraversalPath kSpan = TraversalPath::kAuto;
  std::vector<KernelRow> rows;

  {
    KernelRow r{.name = "pagerank"};
    std::vector<double> a;
    std::vector<double> b;
    PageRankOptions fn_opt{.iterations = 10, .traversal = kFn};
    PageRankOptions span_opt{.iterations = 10, .traversal = kSpan};
    r.function_ms = MedianMs(iters, [&] { a = PageRank(exp, fn_opt); });
    r.span_ms = MedianMs(iters, [&] { b = PageRank(exp, span_opt); });
    r.match = a == b;  // same summation order -> bitwise identical
    rows.push_back(r);
  }
  {
    KernelRow r{.name = "triangles"};
    uint64_t a = 0;
    uint64_t b = 0;
    r.function_ms = MedianMs(iters, [&] { a = CountTriangles(exp, kFn); });
    r.span_ms = MedianMs(iters, [&] { b = CountTriangles(exp, kSpan); });
    r.match = a == b;
    rows.push_back(r);
  }
  {
    KernelRow r{.name = "connected_components"};
    std::vector<NodeId> a;
    std::vector<NodeId> b;
    r.function_ms =
        MedianMs(iters, [&] { a = ConnectedComponents(exp, 0, kFn); });
    r.span_ms = MedianMs(iters, [&] { b = ConnectedComponents(exp, 0, kSpan); });
    r.match = a == b;
    rows.push_back(r);
  }
  {
    KernelRow r{.name = "bfs"};
    std::vector<uint32_t> a;
    std::vector<uint32_t> b;
    r.function_ms = MedianMs(iters, [&] { a = Bfs(exp, 0, kFn); });
    r.span_ms = MedianMs(iters, [&] { b = Bfs(exp, 0, kSpan); });
    r.match = a == b;
    rows.push_back(r);
  }
  {
    KernelRow r{.name = "kcore"};
    std::vector<uint32_t> a;
    std::vector<uint32_t> b;
    r.function_ms = MedianMs(iters, [&] { a = KCoreDecomposition(exp, kFn); });
    r.span_ms = MedianMs(iters, [&] { b = KCoreDecomposition(exp, kSpan); });
    r.match = a == b;
    rows.push_back(r);
  }
  {
    KernelRow r{.name = "degree"};
    std::vector<uint64_t> a;
    std::vector<uint64_t> b;
    r.function_ms = MedianMs(iters, [&] { a = ComputeDegrees(exp, 0, kFn); });
    r.span_ms = MedianMs(iters, [&] { b = ComputeDegrees(exp, 0, kSpan); });
    r.match = a == b;
    rows.push_back(r);
  }
  {
    KernelRow r{.name = "clustering"};
    std::vector<double> a;
    std::vector<double> b;
    r.function_ms =
        MedianMs(iters, [&] { a = LocalClusteringCoefficients(exp, kFn); });
    r.span_ms =
        MedianMs(iters, [&] { b = LocalClusteringCoefficients(exp, kSpan); });
    r.match = NearlyEqual(a, b);
    rows.push_back(r);
  }

  std::printf("%-22s %14s %12s %9s %7s\n", "kernel", "function (ms)",
              "span (ms)", "speedup", "match");
  bench::PrintRule();
  bool all_match = true;
  for (const KernelRow& r : rows) {
    all_match = all_match && r.match;
    std::printf("%-22s %14.2f %12.2f %8.2fx %7s\n", r.name.c_str(),
                r.function_ms, r.span_ms, r.Speedup(), r.match ? "yes" : "NO");
  }

  // Adapter economics: C-DUP's on-the-fly dedup traversal vs one
  // materialized CSR snapshot feeding span kernels.
  CDupGraph cdup(storage);
  double csr_build_ms = 0;
  std::unique_ptr<CsrGraph> csr;
  {
    ScopedTimer timer(&csr_build_ms, ScopedTimer::Unit::kMillis);
    csr = std::make_unique<CsrGraph>(CsrGraph::Build(cdup));
  }
  PageRankOptions pr_opt{.iterations = 10};
  double cdup_pagerank_ms =
      MedianMs(iters, [&] { (void)PageRank(cdup, pr_opt); });
  double csr_pagerank_ms = MedianMs(iters, [&] { (void)PageRank(*csr, pr_opt); });
  const double per_run_saving = cdup_pagerank_ms - csr_pagerank_ms;
  const double breakeven =
      per_run_saving > 0 ? csr_build_ms / per_run_saving : -1;
  std::printf(
      "\nCSR adapter over C-DUP: build %.1fms | pagerank %.1fms -> %.1fms "
      "(%.1fx) | breakeven after %.1f kernel runs\n",
      csr_build_ms, cdup_pagerank_ms, csr_pagerank_ms,
      csr_pagerank_ms > 0 ? cdup_pagerank_ms / csr_pagerank_ms : 0, breakeven);

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"bench\": \"kernels\",\n  \"scale\": %g,\n", scale);
    std::fprintf(f,
                 "  \"graph\": {\"vertices\": %zu, \"edges\": %" PRIu64
                 "},\n  \"expand_ms\": %.2f,\n",
                 exp.NumVertices(), exp.CountStoredEdges(), expand_ms);
    std::fprintf(f, "  \"kernels\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const KernelRow& r = rows[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"function_ms\": %.3f, "
                   "\"span_ms\": %.3f, \"speedup\": %.2f}%s\n",
                   r.name.c_str(), r.function_ms, r.span_ms, r.Speedup(),
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n  \"csr_adapter\": {\"build_ms\": %.3f, "
                 "\"cdup_pagerank_ms\": %.3f, \"csr_pagerank_ms\": %.3f, "
                 "\"breakeven_runs\": %.2f}\n}\n",
                 csr_build_ms, cdup_pagerank_ms, csr_pagerank_ms, breakeven);
    std::fclose(f);
    std::printf("\nJSON written to %s\n", out_path.c_str());
  }

  if (!all_match) {
    std::fprintf(stderr, "FAIL: span and function paths disagree\n");
    return 1;
  }
  return 0;
}
