// Reproduces Table 1 (condensed C-DUP vs fully expanded EXP extraction)
// and measures the extraction pipeline itself: the legacy serial
// row-at-a-time interpreter versus the parallel columnar pipeline
// (selection vectors, partitioned hash join, fused morsel-driven
// join→DISTINCT, typed-key graph assembly), on the four evaluation
// schemas. The columnar engine is additionally timed with the fused
// join→DISTINCT pipeline forced on and forced off.
//
// For every workload the harness also *proves* parity: the output of the
// parallel pipeline — under the adaptive default, with fusion forced,
// and with fusion disabled — must be bitwise-identical to the serial
// baseline (node ids, condensed adjacency in stored order, properties),
// else the process exits non-zero. In --smoke mode the harness further
// fails if the forced-fused path regresses more than 20% (geomean) below
// the unfused operator chain — the CI regression gate for optimized
// builds.
//
// Writes a JSON summary (default BENCH_extraction.json, override with
// --out=<path>). --smoke shrinks the datasets and runs one iteration,
// and additionally gates the robustness plumbing (cancellation polls,
// deadline checks, disarmed fault points) at < 1% overhead.
// --cancel-at-ms=N skips the benchmark and probes mid-flight
// cancellation latency instead.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/cancel.h"
#include "common/faultpoints.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "gen/relational_generators.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "planner/extractor.h"

namespace graphgen {
namespace {

struct WorkloadRow {
  std::string name;
  uint64_t input_rows = 0;
  uint64_t condensed_edges = 0;
  uint64_t full_edges = 0;
  bench::RepeatStats serial;    // row-at-a-time interpreter, 1 thread
  bench::RepeatStats parallel;  // columnar (adaptive fusion), hw threads
  bench::RepeatStats fused;     // columnar, join→DISTINCT fusion forced on
  bench::RepeatStats unfused;   // columnar, unfused operator chain
  // Top-level extraction stages (nodes/edges/preprocess) of one profiled
  // parallel run, from the flight recorder's QueryProfile.
  std::vector<std::pair<std::string, double>> stage_ms;
  bool parity = true;
  double Speedup() const {
    return parallel.median_ms > 0 ? serial.median_ms / parallel.median_ms : 0;
  }
  double FusedVsUnfused() const {
    return fused.median_ms > 0 ? unfused.median_ms / fused.median_ms : 0;
  }
};

// Engine configurations measured per workload.
enum class Mode {
  kSerial,    // row-at-a-time interpreter, 1 thread (the oracle)
  kParallel,  // columnar, adaptive join→DISTINCT fusion (the default)
  kFused,     // columnar, fusion forced for any output size
  kUnfused,   // columnar, fusion disabled (classic operator chain)
};

// End-to-end extraction (both policies, like an analyst extracting the
// condensed graph and the full graph) under one engine configuration.
planner::ExtractOptions MakeOpts(double factor, Mode mode) {
  planner::ExtractOptions opts;
  opts.large_output_factor = factor;
  opts.preprocess = false;
  opts.threads = mode == Mode::kSerial ? 1 : 0;
  opts.engine = mode == Mode::kSerial ? query::ExecEngine::kRowAtATime
                                      : query::ExecEngine::kColumnar;
  opts.fuse_join_distinct = mode != Mode::kUnfused;
  if (mode == Mode::kFused) opts.fuse_min_output_bytes = 0;
  return opts;
}

bool RunWorkload(const std::string& name, const gen::GeneratedDatabase& data,
                 int iters, std::vector<WorkloadRow>& rows) {
  WorkloadRow row;
  row.name = name;
  for (const std::string& t : data.db.TableNames()) {
    row.input_rows += data.db.GetTable(t).ValueOrDie()->NumRows();
  }

  // Parity first (also warms caches): every policy, serial vs every
  // columnar fusion mode — the fused pipeline must be indistinguishable.
  for (double factor : {0.0, 1e18}) {
    auto serial = planner::ExtractFromQuery(data.db, data.datalog,
                                            MakeOpts(factor, Mode::kSerial));
    if (!serial.ok()) {
      std::printf("%-8s extraction failed: %s\n", name.c_str(),
                  serial.status().ToString().c_str());
      return false;
    }
    for (Mode mode : {Mode::kParallel, Mode::kFused, Mode::kUnfused}) {
      auto got = planner::ExtractFromQuery(data.db, data.datalog,
                                           MakeOpts(factor, mode));
      if (!got.ok()) {
        std::printf("%-8s extraction failed: %s\n", name.c_str(),
                    got.status().ToString().c_str());
        return false;
      }
      std::string diff = planner::DiffExtraction(*serial, *got);
      if (!diff.empty()) {
        std::printf("%-8s PARITY FAILURE (factor %g, mode %d): %s\n",
                    name.c_str(), factor, static_cast<int>(mode),
                    diff.c_str());
        row.parity = false;
      }
    }
    if (factor == 0.0) {
      row.condensed_edges = serial->condensed_edges;
    } else {
      row.full_edges = serial->condensed_edges;
    }
  }

  // Timed runs: both policies back to back = the Table 1 workload.
  auto run_both = [&](Mode mode) {
    (void)planner::ExtractFromQuery(data.db, data.datalog,
                                    MakeOpts(0.0, mode));
    (void)planner::ExtractFromQuery(data.db, data.datalog,
                                    MakeOpts(1e18, mode));
  };
  row.serial = bench::Repeat(iters, [&] { run_both(Mode::kSerial); });
  row.parallel = bench::Repeat(iters, [&] { run_both(Mode::kParallel); });
  row.fused = bench::Repeat(iters, [&] { run_both(Mode::kFused); });
  row.unfused = bench::Repeat(iters, [&] { run_both(Mode::kUnfused); });

  // One profiled run feeds the per-stage breakdown in the JSON summary.
  if (obs::Enabled()) {
    auto profiled = planner::ExtractFromQuery(data.db, data.datalog,
                                              MakeOpts(1e18, Mode::kParallel));
    if (profiled.ok()) {
      for (const obs::ProfileNode& stage : profiled->profile.root.children) {
        row.stage_ms.emplace_back(stage.name, stage.seconds * 1e3);
      }
    }
  }

  std::printf("%-8s %9" PRIu64 " rows | C-DUP %10" PRIu64 " e | EXP %11" PRIu64
              " e | serial %9.1fms | parallel %9.1fms | %5.2fx | fused %9.1fms"
              " | unfused %9.1fms | %s\n",
              name.c_str(), row.input_rows, row.condensed_edges,
              row.full_edges, row.serial.median_ms, row.parallel.median_ms,
              row.Speedup(), row.fused.median_ms, row.unfused.median_ms,
              row.parity ? "ok" : "PARITY FAIL");
  bool ok = row.parity;
  rows.push_back(std::move(row));
  return ok;
}

// --cancel-at-ms=N: measures cooperative-cancellation latency instead of
// throughput. A deliberately heavy co-enrollment self-join (~1.6e9
// candidate pairs, several seconds uncancelled) is cancelled N ms after it
// starts; the harness reports how long the pipeline took to unwind after
// the flag was raised — the morsel-poll quantum made observable.
int RunCancelProbe(double cancel_at_ms) {
  std::printf("cancellation-latency probe (cancel at %.1fms)\n", cancel_at_ms);
  gen::GeneratedDatabase data = gen::MakeUniversity(10000, 40, 100, 40.0);
  planner::ExtractOptions opts = MakeOpts(0.0, Mode::kFused);
  opts.ctx.cancel = CancelToken::Cancellable();
  CancelToken token = opts.ctx.cancel;

  std::atomic<int64_t> cancel_ns{0};
  std::thread canceller([token, cancel_at_ms, &cancel_ns] {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        cancel_at_ms));
    cancel_ns.store(std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now().time_since_epoch())
                        .count(),
                    std::memory_order_release);
    token.RequestCancel();
  });
  WallTimer wall;
  auto result = planner::ExtractFromQuery(data.db, data.datalog, opts);
  const double total_ms = wall.Seconds() * 1e3;
  const int64_t now_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  canceller.join();

  if (result.ok()) {
    std::printf(
        "extraction finished in %.1fms before the cancel landed — lower "
        "--cancel-at-ms to probe mid-flight unwind\n",
        total_ms);
    return 0;
  }
  if (result.status().code() != StatusCode::kCancelled) {
    std::fprintf(stderr, "FAIL: expected Cancelled, got %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const double unwind_ms =
      (now_ns - cancel_ns.load(std::memory_order_acquire)) * 1e-6;
  std::printf(
      "cancelled OK: total %.1fms, unwind latency after RequestCancel "
      "%.2fms\n",
      total_ms, unwind_ms);
  return 0;
}

}  // namespace
}  // namespace graphgen

int main(int argc, char** argv) {
  using graphgen::gen::MakeDblpLike;
  using graphgen::gen::MakeImdbLike;
  using graphgen::gen::MakeTpchLike;
  using graphgen::gen::MakeUniversity;

  std::string out_path = "BENCH_extraction.json";
  bool smoke = false;
  double cancel_at_ms = -1.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--cancel-at-ms=", 15) == 0) {
      cancel_at_ms = std::atof(argv[i] + 15);
    }
  }
  if (cancel_at_ms >= 0) return graphgen::RunCancelProbe(cancel_at_ms);
  const double s = smoke ? 0.05 : graphgen::bench::BenchScale();
  // Smoke runs are sub-50ms per mode, so the repeat-of-3 default that
  // stabilizes the fused-vs-unfused regression gate costs almost nothing.
  const int iters = graphgen::bench::ParseRepeat(argc, argv, 3);

  graphgen::bench::PrintHeader(
      "Table 1 extraction: serial row-at-a-time vs parallel columnar");
  std::printf(
      "(each timed run extracts both the condensed C-DUP graph and the\n"
      " fully expanded EXP graph; parity = bitwise-identical output;\n"
      " reported times are the median of %d runs)\n\n",
      iters);

  std::vector<graphgen::WorkloadRow> rows;
  bool all_ok = true;
  const graphgen::gen::GeneratedDatabase dblp =
      MakeDblpLike(static_cast<size_t>(16000 * s),
                   static_cast<size_t>(30000 * s), 5.0);
  all_ok &= graphgen::RunWorkload("DBLP", dblp, iters, rows);
  all_ok &= graphgen::RunWorkload(
      "IMDB",
      MakeImdbLike(static_cast<size_t>(9000 * s),
                   static_cast<size_t>(4000 * s), 10.0),
      iters, rows);
  all_ok &= graphgen::RunWorkload(
      "TPCH",
      MakeTpchLike(static_cast<size_t>(2000 * s),
                   static_cast<size_t>(8000 * s),
                   static_cast<size_t>(60 * s) + 20, 3.0),
      iters, rows);
  all_ok &= graphgen::RunWorkload(
      "UNIV",
      MakeUniversity(static_cast<size_t>(1500 * s), 40,
                     static_cast<size_t>(50 * s) + 10, 4.0),
      iters, rows);

  double geo = 1.0;
  double fuse_geo = 1.0;
  size_t counted = 0;
  size_t fuse_counted = 0;
  for (const auto& r : rows) {
    if (r.Speedup() > 0) {
      geo *= r.Speedup();
      ++counted;
    }
    if (r.FusedVsUnfused() > 0) {
      fuse_geo *= r.FusedVsUnfused();
      ++fuse_counted;
    }
  }
  geo = counted > 0 ? std::pow(geo, 1.0 / static_cast<double>(counted)) : 0.0;
  fuse_geo = fuse_counted > 0
                 ? std::pow(fuse_geo, 1.0 / static_cast<double>(fuse_counted))
                 : 0.0;
  std::printf("\ngeometric-mean extraction speedup: %.2fx (%zu workloads)\n",
              geo, counted);
  std::printf("geometric-mean fused vs unfused: %.2fx\n", fuse_geo);
  std::printf(
      "Paper shape check: EXP >> C-DUP everywhere; TPCH/UNIV show the\n"
      "space explosion (dense co-purchase / co-enrollment cliques).\n");

  // Smoke regression gate: the forced-fused pipeline must stay within 20%
  // of the unfused operator chain (geomean) — a divergence-from-oracle
  // failure is caught by the parity checks above.
  bool fuse_regressed = false;
  if (smoke && fuse_counted > 0 && fuse_geo < 1.0 / 1.2) {
    std::fprintf(stderr,
                 "FAIL: fused join->DISTINCT geomean %.2fx is more than 20%% "
                 "slower than the unfused chain on the smoke workloads\n",
                 fuse_geo);
    fuse_regressed = true;
  }

  // Smoke observability gate: the flight recorder (spans, histograms,
  // profile trees) must cost < 3% on the fused extraction path. Counters
  // always record, so the toggle isolates exactly the instrumentation
  // that GRAPHGEN_OBS_OFF disables. Min-of-N on both sides rejects
  // scheduler noise; the absolute slack keeps the gate meaningful when 3%
  // of a sub-10ms smoke run is below the timer's jitter floor.
  bool obs_regressed = false;
  if (smoke) {
    const int gate_iters = 15;
    auto fused_once = [&] {
      (void)graphgen::planner::ExtractFromQuery(
          dblp.db, dblp.datalog,
          graphgen::MakeOpts(1e18, graphgen::Mode::kFused));
    };
    const bool was_enabled = graphgen::obs::Enabled();
    graphgen::obs::SetEnabled(true);
    const double min_on = graphgen::bench::MinMs(gate_iters, fused_once);
    graphgen::obs::SetEnabled(false);
    const double min_off = graphgen::bench::MinMs(gate_iters, fused_once);
    graphgen::obs::SetEnabled(was_enabled);
    const double limit = min_off * 1.03 + 1.0;
    std::printf(
        "\nobservability overhead (fused path, min of %d): on %.2fms, "
        "off %.2fms, limit %.2fms\n",
        gate_iters, min_on, min_off, limit);
    if (min_on > limit) {
      std::fprintf(stderr,
                   "FAIL: instrumentation overhead %.2fms (on) vs %.2fms "
                   "(off) exceeds the 3%%+1ms gate\n",
                   min_on, min_off);
      obs_regressed = true;
    }
  }

  // Smoke robustness gate: the cancellation/deadline/budget plumbing and
  // the disarmed fault points must together cost < 1% on the fused path.
  // "Armed" here means the worst no-fault case: every registered point
  // armed at a probability that rounds to zero ppm (Fire() runs, nothing
  // fires) plus a live cancel token and a far deadline, so every strided
  // poll actually executes Check(). Min-of-N on both sides rejects
  // scheduler noise; the 1ms absolute slack keeps the gate meaningful when
  // 1% of a sub-10ms smoke run is below the timer's jitter floor.
  bool robust_regressed = false;
  if (smoke) {
    const int gate_iters = 15;
    graphgen::fault::FaultRegistry& faults =
        graphgen::fault::FaultRegistry::Instance();
    faults.DisarmAll();
    const double min_plain = graphgen::bench::MinMs(gate_iters, [&] {
      (void)graphgen::planner::ExtractFromQuery(
          dblp.db, dblp.datalog,
          graphgen::MakeOpts(1e18, graphgen::Mode::kFused));
    });
    graphgen::fault::FaultSpec never_fires;
    never_fires.probability = 1e-9;  // armed; rounds to 0 ppm
    for (const std::string& name : faults.Names()) {
      faults.Arm(name, never_fires);
    }
    const double min_armed = graphgen::bench::MinMs(gate_iters, [&] {
      graphgen::planner::ExtractOptions opts =
          graphgen::MakeOpts(1e18, graphgen::Mode::kFused);
      opts.ctx.cancel = graphgen::CancelToken::Cancellable();
      opts.ctx.SetDeadlineAfter(3600.0);
      (void)graphgen::planner::ExtractFromQuery(dblp.db, dblp.datalog, opts);
    });
    faults.DisarmAll();
    const double limit = min_plain * 1.01 + 1.0;
    std::printf(
        "robustness overhead (fused path, min of %d): plain %.2fms, "
        "armed+ctx %.2fms, limit %.2fms\n",
        gate_iters, min_plain, min_armed, limit);
    if (min_armed > limit) {
      std::fprintf(stderr,
                   "FAIL: robustness plumbing overhead %.2fms (armed) vs "
                   "%.2fms (plain) exceeds the 1%%+1ms gate\n",
                   min_armed, min_plain);
      robust_regressed = true;
    }
  }

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"bench\": \"table1_extraction\",\n");
    std::fprintf(f, "  \"scale\": %g,\n  \"threads\": %zu,\n", s,
                 graphgen::DefaultThreadCount());
    std::fprintf(
        f,
        "  \"serial\": \"row-at-a-time interpreter, 1 thread\",\n"
        "  \"parallel\": \"columnar pipeline (adaptive fused "
        "join->DISTINCT, typed-key assembly), hardware threads\",\n");
    std::fprintf(f, "  \"repeat\": %d,\n", iters);
    std::fprintf(f, "  \"workloads\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const auto& r = rows[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"input_rows\": %" PRIu64
                   ", \"condensed_edges\": %" PRIu64 ", \"full_edges\": %" PRIu64
                   ", \"serial_ms\": %.2f, \"parallel_ms\": %.2f, "
                   "\"speedup\": %.2f, \"fused_ms\": %.2f, "
                   "\"unfused_ms\": %.2f,\n     \"serial_min_ms\": %.2f, "
                   "\"parallel_min_ms\": %.2f, \"fused_min_ms\": %.2f, "
                   "\"unfused_min_ms\": %.2f, \"parity\": %s,\n"
                   "     \"profile_stages_ms\": {",
                   r.name.c_str(), r.input_rows, r.condensed_edges,
                   r.full_edges, r.serial.median_ms, r.parallel.median_ms,
                   r.Speedup(), r.fused.median_ms, r.unfused.median_ms,
                   r.serial.min_ms, r.parallel.min_ms, r.fused.min_ms,
                   r.unfused.min_ms, r.parity ? "true" : "false");
      for (size_t k = 0; k < r.stage_ms.size(); ++k) {
        std::fprintf(f, "%s\"%s\": %.3f", k > 0 ? ", " : "",
                     r.stage_ms[k].first.c_str(), r.stage_ms[k].second);
      }
      std::fprintf(f, "}}%s\n", i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n  \"geomean_speedup\": %.2f,\n"
                 "  \"geomean_fused_vs_unfused\": %.2f\n}\n",
                 geo, fuse_geo);
    std::fclose(f);
    std::printf("JSON written to %s\n", out_path.c_str());
  }

  if (!all_ok || fuse_regressed || obs_regressed || robust_regressed) {
    std::fprintf(stderr,
                 "FAIL: extraction error, parity mismatch, fused-path, "
                 "instrumentation, or robustness-plumbing regression (see "
                 "lines above)\n");
    return 1;
  }
  return 0;
}
