// Reproduces Table 1: extracting graphs with the condensed representation
// (C-DUP) versus extracting the full expanded graph (EXP), on the four
// evaluation schemas. The paper's result: condensed extraction is far
// cheaper in edges and time; on dense datasets (TPCH-style) full
// extraction is orders of magnitude larger than the input.

#include <cinttypes>

#include "bench_util.h"
#include "common/timer.h"
#include "gen/relational_generators.h"
#include "planner/extractor.h"

namespace graphgen {
namespace {

using bench::BenchScale;

struct Workload {
  std::string name;
  gen::GeneratedDatabase data;
};

void RunWorkload(const Workload& w) {
  uint64_t input_rows = 0;
  for (const std::string& t : w.data.db.TableNames()) {
    input_rows += w.data.db.GetTable(t).ValueOrDie()->NumRows();
  }

  // Condensed: postpone every large-output join (the C-DUP row).
  planner::ExtractOptions condensed_opts;
  condensed_opts.large_output_factor = 0.0;
  condensed_opts.preprocess = false;
  WallTimer timer;
  auto condensed =
      planner::ExtractFromQuery(w.data.db, w.data.datalog, condensed_opts);
  double condensed_seconds = timer.Seconds();

  // Full graph: hand every join to the database (the EXP row).
  planner::ExtractOptions full_opts;
  full_opts.large_output_factor = 1e18;
  full_opts.preprocess = false;
  timer.Restart();
  auto full = planner::ExtractFromQuery(w.data.db, w.data.datalog, full_opts);
  double full_seconds = timer.Seconds();

  if (!condensed.ok() || !full.ok()) {
    std::printf("%-8s extraction failed: %s\n", w.name.c_str(),
                (!condensed.ok() ? condensed.status() : full.status())
                    .ToString()
                    .c_str());
    return;
  }

  std::printf("%-8s %9" PRIu64 " rows | Condensed %12" PRIu64
              " edges  %8.3fs | Full %12" PRIu64 " edges  %8.3fs | ratio %.1fx\n",
              w.name.c_str(), input_rows, condensed->condensed_edges,
              condensed_seconds, full->condensed_edges, full_seconds,
              static_cast<double>(full->condensed_edges) /
                  static_cast<double>(std::max<uint64_t>(
                      1, condensed->condensed_edges)));
}

}  // namespace
}  // namespace graphgen

int main() {
  using graphgen::gen::MakeDblpLike;
  using graphgen::gen::MakeImdbLike;
  using graphgen::gen::MakeTpchLike;
  using graphgen::gen::MakeUniversity;

  const double s = graphgen::bench::BenchScale();
  graphgen::bench::PrintHeader(
      "Table 1: condensed (C-DUP) vs full (EXP) extraction");
  std::printf("(edge counts are stored edges; Full row = expanded graph)\n\n");

  graphgen::RunWorkload(
      {"DBLP", MakeDblpLike(static_cast<size_t>(16000 * s),
                            static_cast<size_t>(30000 * s), 5.0)});
  graphgen::RunWorkload(
      {"IMDB", MakeImdbLike(static_cast<size_t>(9000 * s),
                            static_cast<size_t>(4000 * s), 10.0)});
  graphgen::RunWorkload(
      {"TPCH", MakeTpchLike(static_cast<size_t>(2000 * s),
                            static_cast<size_t>(8000 * s),
                            static_cast<size_t>(60 * s) + 20, 3.0)});
  graphgen::RunWorkload(
      {"UNIV", MakeUniversity(static_cast<size_t>(1500 * s), 40,
                              static_cast<size_t>(50 * s) + 10, 4.0)});
  std::printf(
      "\nPaper shape check: Full >> Condensed everywhere; TPCH/UNIV show\n"
      "the space explosion (dense co-purchase / co-enrollment cliques).\n");
  return 0;
}
