// Reproduces Table 1 (condensed C-DUP vs fully expanded EXP extraction)
// and measures the extraction pipeline itself: the legacy serial
// row-at-a-time interpreter versus the parallel columnar pipeline
// (selection vectors, partitioned hash join, fused morsel-driven
// join→DISTINCT, typed-key graph assembly), on the four evaluation
// schemas. The columnar engine is additionally timed with the fused
// join→DISTINCT pipeline forced on and forced off.
//
// For every workload the harness also *proves* parity: the output of the
// parallel pipeline — under the adaptive default, with fusion forced,
// and with fusion disabled — must be bitwise-identical to the serial
// baseline (node ids, condensed adjacency in stored order, properties),
// else the process exits non-zero. In --smoke mode the harness further
// fails if the forced-fused path regresses more than 20% (geomean) below
// the unfused operator chain — the CI regression gate for optimized
// builds.
//
// Writes a JSON summary (default BENCH_extraction.json, override with
// --out=<path>). --smoke shrinks the datasets and runs one iteration.

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "gen/relational_generators.h"
#include "planner/extractor.h"

namespace graphgen {
namespace {

struct WorkloadRow {
  std::string name;
  uint64_t input_rows = 0;
  uint64_t condensed_edges = 0;
  uint64_t full_edges = 0;
  double serial_ms = 0;    // row-at-a-time interpreter, 1 thread
  double parallel_ms = 0;  // columnar pipeline (adaptive fusion), hw threads
  double fused_ms = 0;     // columnar, join→DISTINCT fusion forced on
  double unfused_ms = 0;   // columnar, unfused operator chain
  bool parity = true;
  double Speedup() const {
    return parallel_ms > 0 ? serial_ms / parallel_ms : 0;
  }
  double FusedVsUnfused() const {
    return fused_ms > 0 ? unfused_ms / fused_ms : 0;
  }
};

double MedianMs(int iters, const std::function<void()>& fn) {
  std::vector<double> times;
  times.reserve(iters);
  for (int i = 0; i < iters; ++i) {
    WallTimer timer;
    fn();
    times.push_back(timer.Millis());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

// Engine configurations measured per workload.
enum class Mode {
  kSerial,    // row-at-a-time interpreter, 1 thread (the oracle)
  kParallel,  // columnar, adaptive join→DISTINCT fusion (the default)
  kFused,     // columnar, fusion forced for any output size
  kUnfused,   // columnar, fusion disabled (classic operator chain)
};

// End-to-end extraction (both policies, like an analyst extracting the
// condensed graph and the full graph) under one engine configuration.
planner::ExtractOptions MakeOpts(double factor, Mode mode) {
  planner::ExtractOptions opts;
  opts.large_output_factor = factor;
  opts.preprocess = false;
  opts.threads = mode == Mode::kSerial ? 1 : 0;
  opts.engine = mode == Mode::kSerial ? query::ExecEngine::kRowAtATime
                                      : query::ExecEngine::kColumnar;
  opts.fuse_join_distinct = mode != Mode::kUnfused;
  if (mode == Mode::kFused) opts.fuse_min_output_bytes = 0;
  return opts;
}

bool RunWorkload(const std::string& name, const gen::GeneratedDatabase& data,
                 int iters, std::vector<WorkloadRow>& rows) {
  WorkloadRow row;
  row.name = name;
  for (const std::string& t : data.db.TableNames()) {
    row.input_rows += data.db.GetTable(t).ValueOrDie()->NumRows();
  }

  // Parity first (also warms caches): every policy, serial vs every
  // columnar fusion mode — the fused pipeline must be indistinguishable.
  for (double factor : {0.0, 1e18}) {
    auto serial = planner::ExtractFromQuery(data.db, data.datalog,
                                            MakeOpts(factor, Mode::kSerial));
    if (!serial.ok()) {
      std::printf("%-8s extraction failed: %s\n", name.c_str(),
                  serial.status().ToString().c_str());
      return false;
    }
    for (Mode mode : {Mode::kParallel, Mode::kFused, Mode::kUnfused}) {
      auto got = planner::ExtractFromQuery(data.db, data.datalog,
                                           MakeOpts(factor, mode));
      if (!got.ok()) {
        std::printf("%-8s extraction failed: %s\n", name.c_str(),
                    got.status().ToString().c_str());
        return false;
      }
      std::string diff = planner::DiffExtraction(*serial, *got);
      if (!diff.empty()) {
        std::printf("%-8s PARITY FAILURE (factor %g, mode %d): %s\n",
                    name.c_str(), factor, static_cast<int>(mode),
                    diff.c_str());
        row.parity = false;
      }
    }
    if (factor == 0.0) {
      row.condensed_edges = serial->condensed_edges;
    } else {
      row.full_edges = serial->condensed_edges;
    }
  }

  // Timed runs: both policies back to back = the Table 1 workload.
  auto run_both = [&](Mode mode) {
    (void)planner::ExtractFromQuery(data.db, data.datalog,
                                    MakeOpts(0.0, mode));
    (void)planner::ExtractFromQuery(data.db, data.datalog,
                                    MakeOpts(1e18, mode));
  };
  row.serial_ms = MedianMs(iters, [&] { run_both(Mode::kSerial); });
  row.parallel_ms = MedianMs(iters, [&] { run_both(Mode::kParallel); });
  row.fused_ms = MedianMs(iters, [&] { run_both(Mode::kFused); });
  row.unfused_ms = MedianMs(iters, [&] { run_both(Mode::kUnfused); });

  std::printf("%-8s %9" PRIu64 " rows | C-DUP %10" PRIu64 " e | EXP %11" PRIu64
              " e | serial %9.1fms | parallel %9.1fms | %5.2fx | fused %9.1fms"
              " | unfused %9.1fms | %s\n",
              name.c_str(), row.input_rows, row.condensed_edges,
              row.full_edges, row.serial_ms, row.parallel_ms, row.Speedup(),
              row.fused_ms, row.unfused_ms,
              row.parity ? "ok" : "PARITY FAIL");
  bool ok = row.parity;
  rows.push_back(std::move(row));
  return ok;
}

}  // namespace
}  // namespace graphgen

int main(int argc, char** argv) {
  using graphgen::gen::MakeDblpLike;
  using graphgen::gen::MakeImdbLike;
  using graphgen::gen::MakeTpchLike;
  using graphgen::gen::MakeUniversity;

  std::string out_path = "BENCH_extraction.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const double s = smoke ? 0.05 : graphgen::bench::BenchScale();
  // Smoke runs are sub-50ms per mode, so the median-of-3 that stabilizes
  // the fused-vs-unfused regression gate costs almost nothing.
  const int iters = 3;

  graphgen::bench::PrintHeader(
      "Table 1 extraction: serial row-at-a-time vs parallel columnar");
  std::printf(
      "(each timed run extracts both the condensed C-DUP graph and the\n"
      " fully expanded EXP graph; parity = bitwise-identical output)\n\n");

  std::vector<graphgen::WorkloadRow> rows;
  bool all_ok = true;
  all_ok &= graphgen::RunWorkload(
      "DBLP",
      MakeDblpLike(static_cast<size_t>(16000 * s),
                   static_cast<size_t>(30000 * s), 5.0),
      iters, rows);
  all_ok &= graphgen::RunWorkload(
      "IMDB",
      MakeImdbLike(static_cast<size_t>(9000 * s),
                   static_cast<size_t>(4000 * s), 10.0),
      iters, rows);
  all_ok &= graphgen::RunWorkload(
      "TPCH",
      MakeTpchLike(static_cast<size_t>(2000 * s),
                   static_cast<size_t>(8000 * s),
                   static_cast<size_t>(60 * s) + 20, 3.0),
      iters, rows);
  all_ok &= graphgen::RunWorkload(
      "UNIV",
      MakeUniversity(static_cast<size_t>(1500 * s), 40,
                     static_cast<size_t>(50 * s) + 10, 4.0),
      iters, rows);

  double geo = 1.0;
  double fuse_geo = 1.0;
  size_t counted = 0;
  size_t fuse_counted = 0;
  for (const auto& r : rows) {
    if (r.Speedup() > 0) {
      geo *= r.Speedup();
      ++counted;
    }
    if (r.FusedVsUnfused() > 0) {
      fuse_geo *= r.FusedVsUnfused();
      ++fuse_counted;
    }
  }
  geo = counted > 0 ? std::pow(geo, 1.0 / static_cast<double>(counted)) : 0.0;
  fuse_geo = fuse_counted > 0
                 ? std::pow(fuse_geo, 1.0 / static_cast<double>(fuse_counted))
                 : 0.0;
  std::printf("\ngeometric-mean extraction speedup: %.2fx (%zu workloads)\n",
              geo, counted);
  std::printf("geometric-mean fused vs unfused: %.2fx\n", fuse_geo);
  std::printf(
      "Paper shape check: EXP >> C-DUP everywhere; TPCH/UNIV show the\n"
      "space explosion (dense co-purchase / co-enrollment cliques).\n");

  // Smoke regression gate: the forced-fused pipeline must stay within 20%
  // of the unfused operator chain (geomean) — a divergence-from-oracle
  // failure is caught by the parity checks above.
  bool fuse_regressed = false;
  if (smoke && fuse_counted > 0 && fuse_geo < 1.0 / 1.2) {
    std::fprintf(stderr,
                 "FAIL: fused join->DISTINCT geomean %.2fx is more than 20%% "
                 "slower than the unfused chain on the smoke workloads\n",
                 fuse_geo);
    fuse_regressed = true;
  }

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"bench\": \"table1_extraction\",\n");
    std::fprintf(f, "  \"scale\": %g,\n  \"threads\": %zu,\n", s,
                 graphgen::DefaultThreadCount());
    std::fprintf(
        f,
        "  \"serial\": \"row-at-a-time interpreter, 1 thread\",\n"
        "  \"parallel\": \"columnar pipeline (adaptive fused "
        "join->DISTINCT, typed-key assembly), hardware threads\",\n");
    std::fprintf(f, "  \"workloads\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const auto& r = rows[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"input_rows\": %" PRIu64
                   ", \"condensed_edges\": %" PRIu64 ", \"full_edges\": %" PRIu64
                   ", \"serial_ms\": %.2f, \"parallel_ms\": %.2f, "
                   "\"speedup\": %.2f, \"fused_ms\": %.2f, "
                   "\"unfused_ms\": %.2f, \"parity\": %s}%s\n",
                   r.name.c_str(), r.input_rows, r.condensed_edges,
                   r.full_edges, r.serial_ms, r.parallel_ms, r.Speedup(),
                   r.fused_ms, r.unfused_ms, r.parity ? "true" : "false",
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n  \"geomean_speedup\": %.2f,\n"
                 "  \"geomean_fused_vs_unfused\": %.2f\n}\n",
                 geo, fuse_geo);
    std::fclose(f);
    std::printf("JSON written to %s\n", out_path.c_str());
  }

  if (!all_ok || fuse_regressed) {
    std::fprintf(stderr,
                 "FAIL: extraction error, parity mismatch, or fused-path "
                 "regression (see lines above)\n");
    return 1;
  }
  return 0;
}
