// Reproduces Fig. 10 (plus the Table 2 dataset summary): in-memory graph
// sizes (#nodes / #edges / bytes) of every representation on the four
// small datasets, including the VMiner baseline which must expand first.

#include <cinttypes>

#include "bench_util.h"
#include "common/memory.h"
#include "common/timer.h"
#include "compress/vminer.h"
#include "dedup/bitmap_algorithms.h"
#include "dedup/dedup1_algorithms.h"
#include "dedup/dedup2_builder.h"
#include "gen/small_datasets.h"
#include "repr/cdup_graph.h"
#include "repr/dedup1_graph.h"
#include "repr/expander.h"

namespace graphgen {
namespace {

void Report(const char* name, size_t nodes, size_t virtuals, uint64_t edges,
            size_t bytes) {
  std::printf("  %-9s %9zu nodes (%8zu virtual) %12" PRIu64 " edges  %10s\n",
              name, nodes, virtuals, edges, FormatBytes(bytes).c_str());
}

void RunDataset(gen::SmallDatasetId id, double scale) {
  CondensedStorage s = gen::MakeSmallDataset(id, scale);
  const size_t nr = s.NumRealNodes();
  const size_t nv = s.NumVirtualNodes();
  const uint64_t exp_edges = s.CountExpandedEdges();
  double avg_size = static_cast<double>(s.CountCondensedEdges()) / 2.0 /
                    static_cast<double>(std::max<size_t>(1, nv));

  // Table 2 row.
  std::printf("\n%s: %zu real, %zu virtual, avg size %.1f, EXP edges %" PRIu64
              "\n",
              std::string(gen::SmallDatasetName(id)).c_str(), nr, nv, avg_size,
              exp_edges);

  Report("C-DUP", nr + nv, nv, s.CountCondensedEdges(), s.MemoryBytes());

  ExpandedGraph exp = ExpandCondensed(s);
  Report("EXP", nr, 0, exp.CountStoredEdges(), exp.MemoryBytes());

  DedupOptions opts;
  auto d1 = GreedyVirtualNodesFirst(s, opts);
  if (d1.ok()) {
    Report("DEDUP-1", nr + d1->NumVirtualNodes(), d1->NumVirtualNodes(),
           d1->CountStoredEdges(), d1->MemoryBytes());
  }

  DedupOptions d2_opts;
  d2_opts.ordering = NodeOrdering::kDegreeDesc;  // process big cliques first
  auto d2 = BuildDedup2(s, d2_opts);
  if (d2.ok()) {
    Report("DEDUP-2", nr + d2->NumVirtualNodes(), d2->NumVirtualNodes(),
           d2->CountStoredEdges(), d2->MemoryBytes());
  }

  auto bm1 = BuildBitmap1(s, opts);
  if (bm1.ok()) {
    Report("BITMAP-1", nr + bm1->NumVirtualNodes(), bm1->NumVirtualNodes(),
           bm1->CountStoredEdges(), bm1->MemoryBytes());
  }
  auto bm2 = BuildBitmap2(s, opts);
  if (bm2.ok()) {
    Report("BITMAP-2", nr + bm2->NumVirtualNodes(), bm2->NumVirtualNodes(),
           bm2->CountStoredEdges(), bm2->MemoryBytes());
  }

  // VMiner must start from the expanded graph (its key limitation).
  VMinerResult vm = VMinerCompress(exp);
  Report("VMiner", nr + vm.storage.NumVirtualNodes(),
         vm.storage.NumVirtualNodes(), vm.edges_after,
         vm.storage.MemoryBytes());
}

}  // namespace
}  // namespace graphgen

int main() {
  const double scale = 0.01 * graphgen::bench::BenchScale();
  graphgen::bench::PrintHeader(
      "Fig. 10 / Table 2: in-memory sizes of all representations");
  for (graphgen::gen::SmallDatasetId id : graphgen::gen::Table2Datasets()) {
    graphgen::RunDataset(id, scale);
  }
  std::printf(
      "\nPaper shape check: BITMAP-2 smallest edge count on dense data\n"
      "(IMDB, Synthetic_2); DEDUP-2 < DEDUP-1 on overlapping cliques;\n"
      "VMiner worse than DEDUP-1 despite starting from EXP.\n");
  return 0;
}
