#ifndef GRAPHGEN_BENCH_BENCH_UTIL_H_
#define GRAPHGEN_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

namespace graphgen::bench {

/// Global scale multiplier for benchmark datasets. The defaults reproduce
/// the paper's *shape* in seconds; set GRAPHGEN_BENCH_SCALE > 1 to grow
/// datasets toward the paper's sizes (the paper used 24 cores / 64 GB).
inline double BenchScale() {
  if (const char* env = std::getenv("GRAPHGEN_BENCH_SCALE")) {
    double v = std::atof(env);
    if (v > 0) return v;
  }
  return 1.0;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void PrintRule() {
  std::printf("----------------------------------------------------------------\n");
}

}  // namespace graphgen::bench

#endif  // GRAPHGEN_BENCH_BENCH_UTIL_H_
