#ifndef GRAPHGEN_BENCH_BENCH_UTIL_H_
#define GRAPHGEN_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "common/timer.h"

namespace graphgen::bench {

/// Global scale multiplier for benchmark datasets. The defaults reproduce
/// the paper's *shape* in seconds; set GRAPHGEN_BENCH_SCALE > 1 to grow
/// datasets toward the paper's sizes (the paper used 24 cores / 64 GB).
inline double BenchScale() {
  if (const char* env = std::getenv("GRAPHGEN_BENCH_SCALE")) {
    double v = std::atof(env);
    if (v > 0) return v;
  }
  return 1.0;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void PrintRule() {
  std::printf("----------------------------------------------------------------\n");
}

/// Result of a repeated timing run. On noisy shared machines (this
/// container shows ~2x run-to-run variance) the minimum is the most
/// reproducible point estimate — it is the run with the least external
/// interference — while the median describes what a typical run costs.
struct RepeatStats {
  double min_ms = 0;
  double median_ms = 0;
  size_t iterations = 0;
};

/// Times `fn` `iters` times (at least once) and reports min + median.
inline RepeatStats Repeat(int iters, const std::function<void()>& fn) {
  if (iters < 1) iters = 1;
  std::vector<double> times;
  times.reserve(static_cast<size_t>(iters));
  for (int i = 0; i < iters; ++i) {
    WallTimer timer;
    fn();
    times.push_back(timer.Millis());
  }
  std::sort(times.begin(), times.end());
  RepeatStats stats;
  stats.min_ms = times.front();
  stats.median_ms = times[times.size() / 2];
  stats.iterations = times.size();
  return stats;
}

inline double MedianMs(int iters, const std::function<void()>& fn) {
  return Repeat(iters, fn).median_ms;
}

inline double MinMs(int iters, const std::function<void()>& fn) {
  return Repeat(iters, fn).min_ms;
}

/// Shared `--repeat=N` flag so every bench harness spells the repeat
/// count the same way; `fallback` applies when the flag is absent.
inline int ParseRepeat(int argc, char** argv, int fallback) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--repeat=", 9) == 0) {
      int v = std::atoi(argv[i] + 9);
      if (v > 0) return v;
    }
  }
  return fallback;
}

}  // namespace graphgen::bench

#endif  // GRAPHGEN_BENCH_BENCH_UTIL_H_
