// Reproduces Fig. 11: Degree / BFS / PageRank runtimes on each in-memory
// representation, normalized to EXP. Degree and PageRank run on the
// multi-threaded vertex-centric framework; BFS is single-threaded over the
// Graph API from 50 random sources (matching §6.1.2).

#include <memory>
#include <vector>

#include "algos/bfs.h"
#include "algos/degree.h"
#include "algos/pagerank.h"
#include "bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "dedup/bitmap_algorithms.h"
#include "dedup/dedup1_algorithms.h"
#include "dedup/dedup2_builder.h"
#include "gen/small_datasets.h"
#include "repr/cdup_graph.h"
#include "repr/dedup1_graph.h"
#include "repr/expander.h"

namespace graphgen {
namespace {

struct Repr {
  std::string name;
  std::unique_ptr<Graph> graph;
};

std::vector<Repr> BuildAll(const CondensedStorage& s) {
  std::vector<Repr> out;
  out.push_back({"EXP", std::make_unique<ExpandedGraph>(ExpandCondensed(s))});
  out.push_back({"C-DUP", std::make_unique<CDupGraph>(s)});
  auto bm1 = BuildBitmap1(s);
  if (bm1.ok()) {
    out.push_back({"BITMAP-1", std::make_unique<BitmapGraph>(std::move(*bm1))});
  }
  auto bm2 = BuildBitmap2(s);
  if (bm2.ok()) {
    out.push_back({"BITMAP-2", std::make_unique<BitmapGraph>(std::move(*bm2))});
  }
  auto d1 = GreedyVirtualNodesFirst(s);
  if (d1.ok()) {
    out.push_back({"DEDUP-1", std::make_unique<Dedup1Graph>(std::move(*d1))});
  }
  DedupOptions d2_opts;
  d2_opts.ordering = NodeOrdering::kDegreeDesc;
  auto d2 = BuildDedup2(s, d2_opts);
  if (d2.ok()) {
    out.push_back({"DEDUP-2", std::make_unique<Dedup2Graph>(std::move(*d2))});
  }
  return out;
}

void RunDataset(gen::SmallDatasetId id, double scale) {
  CondensedStorage s = gen::MakeSmallDataset(id, scale);
  std::printf("\n%s (%zu real, %zu virtual):\n",
              std::string(gen::SmallDatasetName(id)).c_str(),
              s.NumRealNodes(), s.NumVirtualNodes());
  std::vector<Repr> reprs = BuildAll(s);

  // BFS sources: the same 50 random nodes for every representation.
  Rng rng(4242);
  std::vector<NodeId> sources;
  for (int i = 0; i < 50; ++i) {
    sources.push_back(static_cast<NodeId>(rng.NextBounded(s.NumRealNodes())));
  }

  double exp_degree = 0;
  double exp_bfs = 0;
  double exp_pr = 0;
  std::printf("  %-9s %12s %12s %12s   (normalized to EXP)\n", "repr",
              "Degree", "BFS", "PageRank");
  for (const Repr& r : reprs) {
    double degree_s = 0;
    double bfs_s = 0;
    double pr_s = 0;
    { ScopedTimer t(&degree_s); ComputeDegrees(*r.graph); }
    {
      ScopedTimer t(&bfs_s);
      for (NodeId src : sources) Bfs(*r.graph, src);
    }
    bfs_s /= 50.0;
    { ScopedTimer t(&pr_s); PageRank(*r.graph, {.iterations = 10}); }

    if (r.name == "EXP") {
      exp_degree = degree_s;
      exp_bfs = bfs_s;
      exp_pr = pr_s;
    }
    std::printf("  %-9s %9.3fms %9.3fms %9.3fms   (%4.1fx %4.1fx %4.1fx)\n",
                r.name.c_str(), degree_s * 1e3, bfs_s * 1e3, pr_s * 1e3,
                degree_s / exp_degree, bfs_s / exp_bfs, pr_s / exp_pr);
  }
}

}  // namespace
}  // namespace graphgen

int main() {
  const double scale = 0.01 * graphgen::bench::BenchScale();
  graphgen::bench::PrintHeader(
      "Fig. 11: graph algorithm performance per representation");
  for (graphgen::gen::SmallDatasetId id : graphgen::gen::Table2Datasets()) {
    graphgen::RunDataset(id, scale);
  }
  std::printf(
      "\nPaper shape check: EXP fastest; DEDUP-1/BITMAP-2 close the gap;\n"
      "C-DUP slowest on many-small-virtual-node datasets (DBLP, Syn_1)\n"
      "because of per-call hash-set dedup.\n");
  return 0;
}
