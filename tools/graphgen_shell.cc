// graphgen_shell — interactive front end for the graph service layer.
// Where graphgen_cli runs one extraction per process, the shell keeps a
// long-lived GraphService (named-graph registry + memory-budgeted
// extraction cache + worker pool), so an analysis session looks like the
// multi-analyst workflow of §3.1: extract several hidden graphs, keep the
// hot ones by name, re-extract for free from the cache, run algorithms.
//
//   $ graphgen_shell --dataset=dblp
//   graphgen> extract coauth
//   graphgen> run pagerank coauth
//   graphgen> list
//   graphgen> stats
//
// Run `help` inside the shell for the full command set.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "algos/bfs.h"
#include "algos/clustering.h"
#include "algos/connected_components.h"
#include "algos/degree.h"
#include "algos/kcore.h"
#include "algos/pagerank.h"
#include "algos/triangles.h"
#include "common/faultpoints.h"
#include "common/memory.h"
#include "common/simd.h"
#include "common/timer.h"
#include "gen/relational_generators.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "relational/csv_loader.h"
#include "service/graph_service.h"

namespace {

using namespace graphgen;

struct ShellState {
  rel::Database db;
  std::string default_query;  // canonical query of the loaded dataset
  std::unique_ptr<service::GraphService> svc;
  GraphGenOptions extract_options;
  size_t budget_bytes = size_t{256} << 20;
  size_t threads = 0;
};

std::vector<std::string> Tokenize(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> tokens;
  std::string tok;
  while (in >> tok) tokens.push_back(tok);
  return tokens;
}

void PrintHelp() {
  std::puts(
      "Commands:\n"
      "  open <dblp|imdb|tpch|univ> [scale]  generate + serve a sample database\n"
      "  csv <Table> <file.csv>              load a CSV table into the database\n"
      "  append <Table> <file.csv>           append CSV rows to an existing\n"
      "                                      table; cached graphs delta-patch\n"
      "                                      on their next extraction\n"
      "  repr <auto|cdup|exp|dedup1|dedup2|bitmap1|bitmap2>\n"
      "                                      representation for new extractions\n"
      "  extract <name>                      extract the dataset's canonical graph\n"
      "  extract <name> @<file>              extract a Datalog program from a file\n"
      "  extract <name> <datalog...>         extract an inline Datalog program\n"
      "  run <algo> <name>                   degree|pagerank|components|kcore|\n"
      "                                      triangles|clustering|bfs\n"
      "  list                                registered graphs\n"
      "  drop <name>                         unregister a graph\n"
      "  profile <name>                      EXPLAIN ANALYZE tree of the last\n"
      "                                      cold extraction of that graph\n"
      "  stats                               service counters (cache, workers)\n"
      "                                      plus the full metrics registry\n"
      "  slowlog                             retained slow requests (threshold-\n"
      "                                      gated profiles, capped ring)\n"
      "  tables                              per-table storage: column types,\n"
      "                                      encodings, dictionary sizes, bytes\n"
      "  clear-cache                         drop all cached extractions\n"
      "  faults                              list registered fault points\n"
      "  faults arm <point> <spec>           arm one, e.g. p0.01!throw or n1\n"
      "                                      (trigger p<prob>|n<hit>, action\n"
      "                                      !fail|!throw|!stall)\n"
      "  faults disarm [<point>]             disarm one point, or all of them\n"
      "  help | quit");
}

bool ParseRepr(const std::string& name, Representation* out) {
  if (name == "auto") *out = Representation::kAuto;
  else if (name == "cdup") *out = Representation::kCDup;
  else if (name == "exp") *out = Representation::kExp;
  else if (name == "dedup1") *out = Representation::kDedup1;
  else if (name == "dedup2") *out = Representation::kDedup2;
  else if (name == "bitmap1") *out = Representation::kBitmap1;
  else if (name == "bitmap2") *out = Representation::kBitmap2;
  else return false;
  return true;
}

void ResetService(ShellState& state) {
  service::ServiceOptions options;
  options.cache_budget_bytes = state.budget_bytes;
  options.worker_threads = state.threads;
  state.svc = std::make_unique<service::GraphService>(&state.db, options);
}

void CmdOpen(ShellState& state, const std::vector<std::string>& args) {
  if (args.size() < 2) {
    std::puts("usage: open <dblp|imdb|tpch|univ> [scale]");
    return;
  }
  const double s = args.size() > 2 ? std::atof(args[2].c_str()) : 1.0;
  gen::GeneratedDatabase generated;
  if (args[1] == "dblp") {
    generated = gen::MakeDblpLike(static_cast<size_t>(4000 * s),
                                  static_cast<size_t>(8000 * s), 4.0);
  } else if (args[1] == "imdb") {
    generated = gen::MakeImdbLike(static_cast<size_t>(4000 * s),
                                  static_cast<size_t>(2000 * s), 10.0);
  } else if (args[1] == "tpch") {
    generated = gen::MakeTpchLike(static_cast<size_t>(2000 * s),
                                  static_cast<size_t>(8000 * s),
                                  static_cast<size_t>(100 * s) + 20, 3.0);
  } else if (args[1] == "univ") {
    generated = gen::MakeUniversity(static_cast<size_t>(800 * s), 20,
                                    static_cast<size_t>(60 * s) + 10, 3.5);
  } else {
    std::printf("unknown dataset: %s\n", args[1].c_str());
    return;
  }
  state.db = std::move(generated.db);
  state.default_query = generated.datalog;
  ResetService(state);
  std::printf("%s\n(canonical query bound to `extract <name>`)\n",
              generated.description.c_str());
}

void CmdCsv(ShellState& state, const std::vector<std::string>& args) {
  if (args.size() != 3) {
    std::puts("usage: csv <Table> <file.csv>");
    return;
  }
  auto loaded = rel::LoadCsv(state.db, args[1], args[2]);
  if (!loaded.ok()) {
    std::printf("%s\n", loaded.status().ToString().c_str());
    return;
  }
  if (state.svc == nullptr) {
    ResetService(state);
  } else {
    // The table may have replaced existing data; cached extractions (and
    // their canonical keys) would otherwise serve graphs of the old rows.
    state.svc->ClearCache();
  }
  std::printf("loaded %s: %zu rows\n", args[1].c_str(), (*loaded)->NumRows());
}

void CmdAppend(ShellState& state, const std::vector<std::string>& args) {
  if (state.svc == nullptr) {
    std::puts("no database: use `open` or `csv` first");
    return;
  }
  if (args.size() != 3) {
    std::puts("usage: append <Table> <file.csv>");
    return;
  }
  std::ifstream in(args[2]);
  if (!in) {
    std::printf("cannot open %s\n", args[2].c_str());
    return;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto parsed = rel::ParseCsv(args[1], buffer.str());
  if (!parsed.ok()) {
    std::printf("%s\n", parsed.status().ToString().c_str());
    return;
  }
  std::vector<rel::Row> rows;
  rows.reserve(parsed->NumRows());
  for (size_t i = 0; i < parsed->NumRows(); ++i) rows.push_back(parsed->row(i));
  // Through the service so the append is serialized against in-flight
  // extractions and cached graphs see a consistent version vector.
  Status appended = state.svc->Append(args[1], rows);
  if (!appended.ok()) {
    std::printf("%s\n", appended.ToString().c_str());
    return;
  }
  std::printf("appended %zu rows to %s\n", rows.size(), args[1].c_str());
}

void CmdExtract(ShellState& state, const std::vector<std::string>& args,
                const std::string& line) {
  if (state.svc == nullptr) {
    std::puts("no database: use `open` or `csv` first");
    return;
  }
  if (args.size() < 2) {
    std::puts("usage: extract <name> [@file | datalog...]");
    return;
  }
  const std::string& name = args[1];
  std::string program;
  if (args.size() == 2) {
    program = state.default_query;
    if (program.empty()) {
      std::puts("no canonical query; pass a Datalog program or @file");
      return;
    }
  } else if (args[2][0] == '@') {
    std::ifstream in(args[2].substr(1));
    if (!in) {
      std::printf("cannot read %s\n", args[2].c_str() + 1);
      return;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    program = ss.str();
  } else {
    // Everything after the name is the program (rules end with '.').
    size_t pos = line.find(name, line.find("extract") + 7);
    program = line.substr(pos + name.size());
  }

  WallTimer timer;
  auto handle = state.svc->ExtractNamed(name, program, state.extract_options);
  if (!handle.ok()) {
    std::printf("%s\n", handle.status().ToString().c_str());
    return;
  }
  const Graph& g = *(*handle)->graph;
  GraphFootprint fp = g.MemoryFootprint();
  std::printf(
      "%s := %s graph, %zu vertices, %zu virtual nodes, %llu stored edges "
      "(%.1fms)\n     footprint %s (adjacency %s, properties %s, aux %s)\n",
      name.c_str(), RepresentationToString((*handle)->representation).data(),
      g.NumActiveVertices(), g.NumVirtualNodes(),
      static_cast<unsigned long long>(g.CountStoredEdges()), timer.Millis(),
      FormatBytes(fp.Total()).c_str(), FormatBytes(fp.adjacency_bytes).c_str(),
      FormatBytes(fp.property_bytes).c_str(),
      FormatBytes(fp.aux_bytes).c_str());
}

void CmdRun(ShellState& state, const std::vector<std::string>& args) {
  if (state.svc == nullptr) {
    std::puts("no database: use `open` or `csv` first");
    return;
  }
  if (args.size() < 3) {
    std::puts("usage: run <algo> <name> (see `help` for algorithms)");
    return;
  }
  auto handle = state.svc->Lookup(args[2]);
  if (!handle.ok()) {
    std::printf("%s\n", handle.status().ToString().c_str());
    return;
  }
  // Analytics run on the service's flat view: the graph itself when it is
  // already CSR-backed (EXP), else a cached materialized-CSR adapter, so
  // every kernel below takes the devirtualized span path.
  std::shared_ptr<const Graph> flat = state.svc->FlatView(*handle);
  const Graph& g = flat ? *flat : *(*handle)->graph;
  const std::string& algo = args[1];
  WallTimer timer;
  if (algo == "degree") {
    std::vector<uint64_t> d = ComputeDegrees(g);
    uint64_t max_d = 0;
    for (uint64_t x : d) max_d = std::max(max_d, x);
    std::printf("max degree %llu (%.1fms)\n",
                static_cast<unsigned long long>(max_d), timer.Millis());
  } else if (algo == "pagerank") {
    std::vector<double> pr = PageRank(g, {.iterations = 20});
    size_t best = 0;
    for (size_t u = 1; u < pr.size(); ++u) {
      if (pr[u] > pr[best]) best = u;
    }
    std::printf("top vertex %zu, rank %.5f (%.1fms)\n", best,
                pr.empty() ? 0.0 : pr[best], timer.Millis());
  } else if (algo == "components") {
    auto labels = ConnectedComponents(g);
    std::printf("%zu components (%.1fms)\n", CountComponents(labels),
                timer.Millis());
  } else if (algo == "kcore") {
    auto core = KCoreDecomposition(g);
    std::printf("degeneracy %u (%.1fms)\n", Degeneracy(core), timer.Millis());
  } else if (algo == "triangles") {
    uint64_t t = CountTriangles(g);
    std::printf("%llu triangles (%.1fms)\n",
                static_cast<unsigned long long>(t), timer.Millis());
  } else if (algo == "clustering") {
    std::printf("average clustering coefficient %.5f (%.1fms)\n",
                AverageClusteringCoefficient(g), timer.Millis());
  } else if (algo == "bfs") {
    NodeId source = 0;
    while (source < g.NumVertices() && !g.VertexExists(source)) ++source;
    auto dist = Bfs(g, source);
    uint32_t reached = 0, ecc = 0;
    for (uint32_t d : dist) {
      if (d != UINT32_MAX) {
        ++reached;
        ecc = std::max(ecc, d);
      }
    }
    std::printf("bfs from %u: reached %u vertices, eccentricity %u (%.1fms)\n",
                source, reached, ecc, timer.Millis());
  } else {
    std::printf("unknown algorithm: %s\n", algo.c_str());
  }
}

void CmdList(const ShellState& state) {
  if (state.svc == nullptr) {
    std::puts("no database: use `open` or `csv` first");
    return;
  }
  auto rows = state.svc->List();
  if (rows.empty()) {
    std::puts("(no registered graphs)");
    return;
  }
  std::printf("%-16s %-10s %10s %10s %12s %10s\n", "NAME", "REPR", "VERTICES",
              "VIRTUALS", "EDGES", "MEMORY");
  for (const auto& r : rows) {
    std::printf("%-16s %-10s %10zu %10zu %12llu %10s\n", r.name.c_str(),
                r.representation.c_str(), r.active_vertices, r.virtual_nodes,
                static_cast<unsigned long long>(r.stored_edges),
                FormatBytes(r.footprint_bytes).c_str());
  }
}

void CmdStats(const ShellState& state) {
  if (state.svc == nullptr) {
    std::puts("no database: use `open` or `csv` first");
    return;
  }
  service::ServiceStats s = state.svc->Stats();
  std::printf(
      "requests            %llu\n"
      "  cache hits        %llu\n"
      "  cold extractions  %llu\n"
      "  coalesced         %llu\n"
      "  failed            %llu\n"
      "    cancelled       %llu\n"
      "    deadline        %llu\n"
      "    overloaded      %llu\n"
      "    memory ceiling  %llu\n"
      "  stale served      %llu\n"
      "  slow (logged)     %llu\n"
      "cache               %llu graphs, %s / %s budget\n"
      "  evictions         %llu\n"
      "  uncacheable       %llu\n"
      "flat views          %llu resident (%llu CSR builds)\n"
      "registry            %llu named graphs\n"
      "workers             %llu threads\n"
      "simd                %s\n"
      "database            %s\n",
      static_cast<unsigned long long>(s.requests),
      static_cast<unsigned long long>(s.cache_hits),
      static_cast<unsigned long long>(s.cold_extractions),
      static_cast<unsigned long long>(s.coalesced),
      static_cast<unsigned long long>(s.failed),
      static_cast<unsigned long long>(s.cancelled),
      static_cast<unsigned long long>(s.deadline_exceeded),
      static_cast<unsigned long long>(s.overload_rejected),
      static_cast<unsigned long long>(s.resource_exhausted),
      static_cast<unsigned long long>(s.stale_served),
      static_cast<unsigned long long>(s.slow_requests),
      static_cast<unsigned long long>(s.cache_graphs),
      FormatBytes(s.cache_bytes).c_str(),
      s.cache_budget_bytes == 0 ? "unlimited"
                                : FormatBytes(s.cache_budget_bytes).c_str(),
      static_cast<unsigned long long>(s.evictions),
      static_cast<unsigned long long>(s.uncacheable),
      static_cast<unsigned long long>(s.flat_views),
      static_cast<unsigned long long>(s.csr_builds),
      static_cast<unsigned long long>(s.named_graphs),
      static_cast<unsigned long long>(s.worker_threads),
      simd::TierDescription(), FormatBytes(state.db.MemoryBytes()).c_str());
  std::printf("\nservice metrics:\n%s",
              obs::FormatSnapshot(state.svc->MetricsSnapshot()).c_str());
  std::printf("\nengine metrics (process-wide):\n%s",
              obs::FormatSnapshot(obs::MetricsRegistry::Global().Snapshot())
                  .c_str());
}

void CmdProfile(const ShellState& state, const std::vector<std::string>& args) {
  if (state.svc == nullptr) {
    std::puts("no database: use `open` or `csv` first");
    return;
  }
  if (args.size() != 2) {
    std::puts("usage: profile <name>");
    return;
  }
  auto handle = state.svc->Lookup(args[1]);
  if (!handle.ok()) {
    std::printf("%s\n", handle.status().ToString().c_str());
    return;
  }
  const obs::QueryProfile& profile = (*handle)->stats.profile;
  if (profile.empty()) {
    std::puts(
        "(no profile: the graph was served from cache before profiling, or\n"
        " observability was disabled — unset GRAPHGEN_OBS_OFF and re-extract\n"
        " after `clear-cache`)");
    return;
  }
  std::printf("%s", profile.ToText().c_str());
}

void CmdSlowlog(const ShellState& state) {
  if (state.svc == nullptr) {
    std::puts("no database: use `open` or `csv` first");
    return;
  }
  auto slow = state.svc->SlowRequests();
  if (slow.empty()) {
    std::printf("(no slow requests: threshold %.3fs, capacity %zu)\n",
                state.svc->options().slow_request_seconds,
                state.svc->options().slow_log_capacity);
    return;
  }
  for (const service::SlowRequest& r : slow) {
    std::printf("#%llu  %.3fs  %s\n",
                static_cast<unsigned long long>(r.sequence), r.seconds,
                r.datalog.c_str());
    if (r.profile != nullptr) std::printf("%s", r.profile->ToText().c_str());
  }
}

// Storage introspection for the typed columnar layer: one block per
// table, one line per column with its declared type, physical encoding,
// dictionary cardinality, null count, and footprint.
void CmdTables(const ShellState& state) {
  const std::vector<std::string> names = state.db.TableNames();
  if (names.empty()) {
    std::puts("(no tables: use `open` or `csv` first)");
    return;
  }
  for (const std::string& name : names) {
    auto table = state.db.GetTable(name);
    if (!table.ok()) continue;
    const rel::Table& t = **table;
    std::printf("%s: %zu rows, %zu columns, %s\n", name.c_str(), t.NumRows(),
                t.NumColumns(), FormatBytes(t.MemoryBytes()).c_str());
    for (size_t c = 0; c < t.NumColumns(); ++c) {
      const rel::ColumnDef& def = t.schema().column(c);
      const rel::ColumnVector& col = t.column(c);
      std::string encoding(col.EncodingName());
      if (col.encoding() == rel::ColumnVector::Encoding::kDictString) {
        encoding += "(" + std::to_string(col.dict().size()) + " distinct)";
      }
      std::printf("  %-20s %-8s %-22s %8zu nulls %10s\n", def.name.c_str(),
                  std::string(rel::ValueTypeToString(def.type)).c_str(),
                  encoding.c_str(), col.null_count(),
                  FormatBytes(col.MemoryBytes()).c_str());
    }
  }
  std::printf("total database footprint: %s\n",
              FormatBytes(state.db.MemoryBytes()).c_str());
}

// Fault-injection control (the shell face of common/faultpoints.h):
//   faults                  list every registered point and its state
//   faults arm <name> <spec>  spec = p<prob>|n<hit>[!fail|!throw|!stall]
//   faults disarm [<name>]  one point, or everything when omitted
// Points register lazily the first time their code path executes, so an
// empty list just means no extraction has run yet; arming an unseen name
// is remembered and applied when the point first registers.
void CmdFaults(const std::vector<std::string>& args) {
  fault::FaultRegistry& registry = fault::FaultRegistry::Instance();
  if (args.empty() || args[0] == "list") {
    std::vector<fault::FaultPointInfo> points = registry.List();
    if (points.empty()) {
      std::puts(
          "(no fault points registered yet: they appear as their code "
          "paths first execute)");
      return;
    }
    std::printf("%-28s %-9s %-6s %-12s %8s %8s\n", "point", "state", "action",
                "trigger", "hits", "fires");
    for (const fault::FaultPointInfo& p : points) {
      const char* action = p.action == fault::Action::kFail    ? "fail"
                           : p.action == fault::Action::kThrow ? "throw"
                                                               : "stall";
      std::string trigger;
      if (p.armed) {
        trigger = p.countdown >= 0
                      ? "n" + std::to_string(p.countdown)
                      : "p" + std::to_string(p.probability);
      }
      std::printf("%-28s %-9s %-6s %-12s %8llu %8llu\n", p.name.c_str(),
                  p.armed ? "ARMED" : "disarmed", p.armed ? action : "-",
                  p.armed ? trigger.c_str() : "-",
                  static_cast<unsigned long long>(p.hits),
                  static_cast<unsigned long long>(p.fires));
    }
    return;
  }
  if (args[0] == "arm") {
    if (args.size() != 3) {
      std::puts("usage: faults arm <point> <spec>   e.g. faults arm "
                "query.scan p0.01!throw");
      return;
    }
    fault::FaultSpec spec;
    Status parsed = fault::FaultRegistry::ParseSpec(args[2], &spec);
    if (!parsed.ok()) {
      std::printf("bad spec: %s\n", parsed.ToString().c_str());
      return;
    }
    registry.Arm(args[1], spec);
    std::printf("armed %s (%s)\n", args[1].c_str(), args[2].c_str());
    return;
  }
  if (args[0] == "disarm") {
    if (args.size() >= 2) {
      registry.Disarm(args[1]);
      std::printf("disarmed %s\n", args[1].c_str());
    } else {
      registry.DisarmAll();
      std::puts("disarmed all fault points");
    }
    return;
  }
  std::puts("usage: faults [list] | faults arm <point> <spec> | "
            "faults disarm [<point>]");
}

int RunShell(ShellState& state, std::istream& in, bool interactive) {
  std::string line;
  for (;;) {
    if (interactive) {
      std::printf("graphgen> ");
      std::fflush(stdout);
    }
    if (!std::getline(in, line)) break;
    std::vector<std::string> args = Tokenize(line);
    if (args.empty()) continue;
    const std::string& cmd = args[0];
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      PrintHelp();
    } else if (cmd == "open") {
      CmdOpen(state, args);
    } else if (cmd == "append") {
      CmdAppend(state, args);
    } else if (cmd == "csv") {
      CmdCsv(state, args);
    } else if (cmd == "repr") {
      Representation r;
      if (args.size() == 2 && ParseRepr(args[1], &r)) {
        state.extract_options.representation = r;
        std::printf("representation := %s\n",
                    RepresentationToString(r).data());
      } else {
        std::puts("usage: repr <auto|cdup|exp|dedup1|dedup2|bitmap1|bitmap2>");
      }
    } else if (cmd == "extract") {
      CmdExtract(state, args, line);
    } else if (cmd == "run") {
      CmdRun(state, args);
    } else if (cmd == "list") {
      CmdList(state);
    } else if (cmd == "drop") {
      if (args.size() != 2 || state.svc == nullptr) {
        std::puts("usage: drop <name>");
      } else {
        Status st = state.svc->Drop(args[1]);
        std::printf("%s\n", st.ok() ? "dropped" : st.ToString().c_str());
      }
    } else if (cmd == "stats") {
      CmdStats(state);
    } else if (cmd == "profile") {
      CmdProfile(state, args);
    } else if (cmd == "slowlog") {
      CmdSlowlog(state);
    } else if (cmd == "tables") {
      CmdTables(state);
    } else if (cmd == "clear-cache") {
      if (state.svc != nullptr) state.svc->ClearCache();
    } else if (cmd == "faults") {
      CmdFaults({args.begin() + 1, args.end()});
    } else {
      std::printf("unknown command: %s (try `help`)\n", cmd.c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ShellState state;
  std::string script;
  std::string dataset;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> const char* {
      size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value_of("--dataset=")) {
      dataset = v;
    } else if (const char* v = value_of("--budget-mb=")) {
      state.budget_bytes = static_cast<size_t>(std::atof(v) * (1 << 20));
    } else if (const char* v = value_of("--threads=")) {
      state.threads = static_cast<size_t>(std::atol(v));
    } else if (const char* v = value_of("--script=")) {
      script = v;
    } else if (arg == "--help" || arg == "-h") {
      std::puts(
          "graphgen_shell [--dataset=dblp|imdb|tpch|univ] [--budget-mb=N]\n"
          "               [--threads=N] [--script=<file>]");
      PrintHelp();
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 1;
    }
  }
  // Open the dataset only after every flag is parsed, so --budget-mb and
  // --threads apply regardless of argument order.
  if (!dataset.empty()) CmdOpen(state, {"open", dataset});
  if (!script.empty()) {
    std::ifstream file(script);
    if (!file) {
      std::fprintf(stderr, "cannot read %s\n", script.c_str());
      return 1;
    }
    return RunShell(state, file, /*interactive=*/false);
  }
  return RunShell(state, std::cin, /*interactive=*/true);
}
