// graphgen_cli — command-line front end (the graphgenpy analogue of
// §3.4 "External Libraries"): load or generate a relational database,
// run a Datalog extraction query, pick a representation, optionally run
// an algorithm, and serialize the result for external tools.
//
// Usage examples:
//   graphgen_cli --dataset=dblp --repr=bitmap2 --algo=pagerank
//   graphgen_cli --csv=Author=authors.csv --csv=AuthorPub=ap.csv
//                --query=coauthors.dl --out=edges.txt
//   graphgen_cli --dataset=tpch --repr=auto --algo=components

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "algos/connected_components.h"
#include "algos/degree.h"
#include "algos/kcore.h"
#include "algos/pagerank.h"
#include "common/memory.h"
#include "common/simd.h"
#include "common/timer.h"
#include "core/graphgen.h"
#include "core/serialization.h"
#include "gen/relational_generators.h"
#include "obs/profile.h"
#include "relational/csv_loader.h"

namespace {

using namespace graphgen;

struct CliOptions {
  std::string dataset;
  std::map<std::string, std::string> csv_tables;
  std::string query_file;
  std::string repr = "auto";
  std::string algo = "none";
  std::string out;
  std::string profile_out;
  double scale = 1.0;
  bool force_condensed = false;
};

void PrintUsage() {
  std::puts(
      "graphgen_cli — extract and analyze hidden graphs\n"
      "  --dataset=dblp|imdb|tpch|univ   use a generated sample database\n"
      "  --scale=<f>                     scale generated dataset sizes\n"
      "  --csv=<Table>=<file.csv>        load a CSV table (repeatable)\n"
      "  --query=<file>                  Datalog extraction program\n"
      "  --repr=auto|cdup|exp|dedup1|dedup2|bitmap1|bitmap2\n"
      "  --algo=none|degree|pagerank|components|kcore\n"
      "  --force-condensed               treat every join as large-output\n"
      "  --out=<file>                    serialize expanded edge list\n"
      "  --profile=<file.json>           write the extraction's EXPLAIN\n"
      "                                  ANALYZE profile as JSON and print\n"
      "                                  the operator tree");
}

bool ParseArgs(int argc, char** argv, CliOptions* opts) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> const char* {
      size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value_of("--dataset=")) {
      opts->dataset = v;
    } else if (const char* v = value_of("--scale=")) {
      opts->scale = std::atof(v);
    } else if (const char* v = value_of("--csv=")) {
      std::string spec = v;
      size_t eq = spec.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "bad --csv spec: %s\n", v);
        return false;
      }
      opts->csv_tables[spec.substr(0, eq)] = spec.substr(eq + 1);
    } else if (const char* v = value_of("--query=")) {
      opts->query_file = v;
    } else if (const char* v = value_of("--repr=")) {
      opts->repr = v;
    } else if (const char* v = value_of("--algo=")) {
      opts->algo = v;
    } else if (const char* v = value_of("--out=")) {
      opts->out = v;
    } else if (const char* v = value_of("--profile=")) {
      opts->profile_out = v;
    } else if (arg == "--force-condensed") {
      opts->force_condensed = true;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return false;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

Result<Representation> ParseRepr(const std::string& name) {
  if (name == "auto") return Representation::kAuto;
  if (name == "cdup") return Representation::kCDup;
  if (name == "exp") return Representation::kExp;
  if (name == "dedup1") return Representation::kDedup1;
  if (name == "dedup2") return Representation::kDedup2;
  if (name == "bitmap1") return Representation::kBitmap1;
  if (name == "bitmap2") return Representation::kBitmap2;
  return Status::InvalidArgument("unknown representation: " + name);
}

int Run(const CliOptions& opts) {
  // 1. Assemble the database.
  rel::Database db;
  std::string default_query;
  if (!opts.dataset.empty()) {
    gen::GeneratedDatabase generated;
    const double s = opts.scale;
    if (opts.dataset == "dblp") {
      generated = gen::MakeDblpLike(static_cast<size_t>(4000 * s),
                                    static_cast<size_t>(8000 * s), 4.0);
    } else if (opts.dataset == "imdb") {
      generated = gen::MakeImdbLike(static_cast<size_t>(4000 * s),
                                    static_cast<size_t>(2000 * s), 10.0);
    } else if (opts.dataset == "tpch") {
      generated = gen::MakeTpchLike(static_cast<size_t>(2000 * s),
                                    static_cast<size_t>(8000 * s),
                                    static_cast<size_t>(100 * s) + 20, 3.0);
    } else if (opts.dataset == "univ") {
      generated = gen::MakeUniversity(static_cast<size_t>(800 * s), 20,
                                      static_cast<size_t>(60 * s) + 10, 3.5);
    } else {
      std::fprintf(stderr, "unknown dataset: %s\n", opts.dataset.c_str());
      return 1;
    }
    default_query = generated.datalog;
    db = std::move(generated.db);
    std::printf("Generated %s\n", generated.description.c_str());
  }
  for (const auto& [table, path] : opts.csv_tables) {
    auto loaded = rel::LoadCsv(db, table, path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "loading %s: %s\n", path.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    std::printf("Loaded %s: %zu rows\n", table.c_str(),
                (*loaded)->NumRows());
  }
  if (db.TableNames().empty()) {
    std::fprintf(stderr, "no data: pass --dataset or --csv\n");
    PrintUsage();
    return 1;
  }

  // 2. The extraction query.
  std::string query = default_query;
  if (!opts.query_file.empty()) {
    std::ifstream in(opts.query_file);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", opts.query_file.c_str());
      return 1;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    query = ss.str();
  }
  if (query.empty()) {
    std::fprintf(stderr, "no query: pass --query with --csv data\n");
    return 1;
  }
  std::printf("Query:\n%s\n", query.c_str());

  // 3. Extract.
  auto repr = ParseRepr(opts.repr);
  if (!repr.ok()) {
    std::fprintf(stderr, "%s\n", repr.status().ToString().c_str());
    return 1;
  }
  GraphGenOptions options;
  options.representation = *repr;
  if (opts.force_condensed) options.extract.large_output_factor = 0.0;

  GraphGen engine(&db);
  std::printf("SIMD dispatch: %s\n", simd::TierDescription());
  WallTimer timer;
  auto extracted = engine.Extract(query, options);
  if (!extracted.ok()) {
    std::fprintf(stderr, "extraction failed: %s\n",
                 extracted.status().ToString().c_str());
    return 1;
  }
  const Graph& g = *extracted->graph;
  std::printf(
      "Extracted in %.1fms as %s: %zu vertices, %zu virtual nodes, "
      "%llu stored edges, %s\n",
      timer.Millis(), RepresentationToString(extracted->representation).data(),
      g.NumActiveVertices(), g.NumVirtualNodes(),
      static_cast<unsigned long long>(g.CountStoredEdges()),
      FormatBytes(g.MemoryBytes()).c_str());

  // 3b. Optional EXPLAIN ANALYZE export: print the operator tree and
  // round-trip the same profile through JSON for external tooling.
  if (!opts.profile_out.empty()) {
    const obs::QueryProfile& profile = extracted->stats.profile;
    if (profile.empty()) {
      std::fprintf(stderr,
                   "--profile requested but observability is disabled "
                   "(GRAPHGEN_OBS_OFF is set)\n");
      return 1;
    }
    std::printf("\nEXPLAIN ANALYZE:\n%s\n", profile.ToText().c_str());
    std::ofstream out(opts.profile_out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", opts.profile_out.c_str());
      return 1;
    }
    out << profile.ToJson() << '\n';
    if (!out.good()) {
      std::fprintf(stderr, "error writing %s\n", opts.profile_out.c_str());
      return 1;
    }
    std::printf("Profile JSON written to %s\n", opts.profile_out.c_str());
  }

  // 4. Optional analysis.
  timer.Restart();
  if (opts.algo == "degree") {
    std::vector<uint64_t> d = ComputeDegrees(g);
    uint64_t max_d = 0;
    for (uint64_t x : d) max_d = std::max(max_d, x);
    std::printf("Degree done in %.1fms (max degree %llu)\n", timer.Millis(),
                static_cast<unsigned long long>(max_d));
  } else if (opts.algo == "pagerank") {
    std::vector<double> pr = PageRank(g, {.iterations = 20});
    NodeId best = 0;
    for (NodeId u = 1; u < pr.size(); ++u) {
      if (pr[u] > pr[best]) best = u;
    }
    std::printf("PageRank done in %.1fms (top vertex %u, rank %.5f)\n",
                timer.Millis(), best, pr.empty() ? 0.0 : pr[best]);
  } else if (opts.algo == "components") {
    auto labels = ConnectedComponents(g);
    std::printf("Components done in %.1fms (%zu components)\n", timer.Millis(),
                CountComponents(labels));
  } else if (opts.algo == "kcore") {
    auto core = KCoreDecomposition(g);
    std::printf("K-core done in %.1fms (degeneracy %u)\n", timer.Millis(),
                Degeneracy(core));
  } else if (opts.algo != "none") {
    std::fprintf(stderr, "unknown algorithm: %s\n", opts.algo.c_str());
    return 1;
  }

  // 5. Optional serialization.
  if (!opts.out.empty()) {
    Status st = SerializeEdgeList(g, opts.out);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("Edge list written to %s\n", opts.out.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts;
  if (!ParseArgs(argc, argv, &opts)) return 1;
  return Run(opts);
}
