#!/usr/bin/env python3
"""Self-test for tools/lint_invariants.py.

Runs the linter against the fixture trees under tools/lint_fixtures/: the
`clean` fixture must pass, and each broken fixture must fail with a message
that actually points at the violation (name, file, and what to do), not a
generic "lint failed". Keeping the messages pointed is part of the
contract — a linter nobody can act on gets deleted.
"""

import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
LINTER = os.path.join(HERE, 'lint_invariants.py')
FIXTURES = os.path.join(HERE, 'lint_fixtures')

# fixture -> (expected exit code, substrings that must appear in stdout)
CASES = {
    'clean': (0, ['lint_invariants: OK']),
    'duplicate_fault_point': (1, [
        'fault-points: "demo.stage" is registered 2 times',
        'src/demo.cc:3',
        'src/demo.cc:4',
        'exactly once',
    ]),
    'missing_fault_point_doc': (1, [
        'fault-points: "demo.undocumented"',
        'src/demo.cc:3',
        'not documented in the README fault-point table',
        'lint:fault-points markers',
    ]),
    'undocumented_metric': (1, [
        'metrics: "demo.hidden_rows"',
        'src/demo.cc:3',
        'missing from the README metrics table',
    ]),
    'unpolled_charge': (1, [
        'charge-polls:',
        'src/demo.cc:3',
        '"FillBuffer"',
        'never polls the ExecContext',
    ]),
    'raw_mutex': (1, [
        'sync-usage:',
        'raw std::mutex',
        'common/sync.h',
    ]),
}


def main():
    failures = []
    for fixture, (want_code, want_substrings) in sorted(CASES.items()):
        root = os.path.join(FIXTURES, fixture)
        proc = subprocess.run(
            [sys.executable, LINTER, '--root', root],
            capture_output=True, text=True)
        if proc.returncode != want_code:
            failures.append(
                f'{fixture}: exit {proc.returncode}, want {want_code}\n'
                f'--- stdout ---\n{proc.stdout}--- stderr ---\n{proc.stderr}')
            continue
        for substring in want_substrings:
            if substring not in proc.stdout:
                failures.append(
                    f'{fixture}: output lacks {substring!r}\n'
                    f'--- stdout ---\n{proc.stdout}')

    # The raw_mutex fixture must flag both the member declaration and the
    # lock_guard use — one diagnostic per offending line.
    proc = subprocess.run(
        [sys.executable, LINTER, '--root',
         os.path.join(FIXTURES, 'raw_mutex')],
        capture_output=True, text=True)
    sync_lines = [l for l in proc.stdout.splitlines()
                  if l.startswith('sync-usage:')]
    if len(sync_lines) < 2:
        failures.append(
            f'raw_mutex: expected >=2 sync-usage diagnostics '
            f'(declaration and lock_guard), got {len(sync_lines)}\n'
            f'--- stdout ---\n{proc.stdout}')

    if failures:
        print(f'{len(failures)} self-test failure(s):')
        for f in failures:
            print(f)
        return 1
    print(f'lint_invariants_test: {len(CASES)} fixtures OK')
    return 0


if __name__ == '__main__':
    sys.exit(main())
