#!/usr/bin/env python3
"""Project invariant linter for the graphgen tree.

Checks cross-cutting contracts that the compiler cannot see:

  1. fault-points   Every GRAPHGEN_FAULT_POINT name is registered exactly
                    once in src/ and documented in the README fault-point
                    table (both directions).
  2. metrics        Every metric name fetched from the obs registry
                    (GetCounter/GetGauge/GetHistogram) appears in the README
                    metrics table, and every documented name exists in code.
  3. charge-polls   Any function that charges the per-request MemoryBudget
                    (ctx.Charge / ScopedCharge::Acquire / TryCharge) also
                    polls the ExecContext (Check / Continue /
                    CancelRequested) so a budgeted allocation loop can't
                    outrun cancellation.
  4. sync-usage     No raw std:: synchronization primitives outside
                    common/sync.h: every lock in src/ goes through the
                    annotated Mutex/SharedMutex wrappers so Clang
                    thread-safety analysis sees it.

Exit code 0 = clean, 1 = violations (printed one per line), 2 = usage.

Run from anywhere: `python3 tools/lint_invariants.py [--root DIR]`.
"""

import argparse
import os
import re
import sys

FAULT_POINT_RE = re.compile(r'GRAPHGEN_FAULT_POINT\("([^"]+)"\)')
METRIC_RE = re.compile(r'Get(?:Counter|Gauge|Histogram)\("([^"]+)"\)')
# A backticked dotted name inside the README marker sections.
DOC_NAME_RE = re.compile(r'`([a-z][a-z0-9_]*(?:\.[a-z0-9_]+)+)`')

CHARGE_RE = re.compile(r'\.(?:Charge|TryCharge|Acquire)\s*\(')
# What counts as "polling": a direct ExecContext check, an AbortSlot poll,
# or delegating the loop to StridedRun (which polls at stride boundaries).
POLL_RE = re.compile(
    r'\.(?:Check|Continue|CancelRequested|Failed)\s*\(|'
    r'\b(?:Continue|StridedRun)\s*\(')

# Raw primitives that must not appear outside common/sync.h. std::atomic is
# fine (lock-free); everything lock-shaped must go through the wrappers.
RAW_SYNC_RE = re.compile(
    r'std::(?:mutex|shared_mutex|recursive_mutex|timed_mutex|'
    r'condition_variable(?:_any)?|lock_guard|scoped_lock|unique_lock|'
    r'shared_lock)\b')

SYNC_ALLOWED = {os.path.join('common', 'sync.h')}
# cancel.h/cancel.cc define Charge/TryCharge/Check themselves; the
# implementation of the contract is not a client of it.
CHARGE_CHECK_EXEMPT = {
    os.path.join('common', 'cancel.h'),
    os.path.join('common', 'cancel.cc'),
}


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving newlines so
    line numbers in diagnostics stay accurate."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == '/' and i + 1 < n and text[i + 1] == '/':
            j = text.find('\n', i)
            if j == -1:
                j = n
            out.append(' ' * (j - i))
            i = j
        elif c == '/' and i + 1 < n and text[i + 1] == '*':
            j = text.find('*/', i + 2)
            j = n if j == -1 else j + 2
            chunk = text[i:j]
            out.append(''.join(ch if ch == '\n' else ' ' for ch in chunk))
            i = j
        elif c in '"\'':
            quote = c
            j = i + 1
            while j < n:
                if text[j] == '\\':
                    j += 2
                    continue
                if text[j] == quote:
                    j += 1
                    break
                j += 1
            out.append(quote + ' ' * (j - i - 2) + quote if j - i >= 2
                       else text[i:j])
            i = j
        else:
            out.append(c)
            i += 1
    return ''.join(out)


def strip_comments(text):
    """Blanks out // and /* */ comments only; string literals survive (the
    fault-point and metric names live in literals). Preserves newlines."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == '/' and i + 1 < n and text[i + 1] == '/':
            j = text.find('\n', i)
            if j == -1:
                j = n
            out.append(' ' * (j - i))
            i = j
        elif c == '/' and i + 1 < n and text[i + 1] == '*':
            j = text.find('*/', i + 2)
            j = n if j == -1 else j + 2
            chunk = text[i:j]
            out.append(''.join(ch if ch == '\n' else ' ' for ch in chunk))
            i = j
        elif c in '"\'':
            quote = c
            j = i + 1
            while j < n:
                if text[j] == '\\':
                    j += 2
                    continue
                if text[j] == quote:
                    j += 1
                    break
                j += 1
            out.append(text[i:j])
            i = j
        else:
            out.append(c)
            i += 1
    return ''.join(out)


def iter_source_files(src_root):
    for dirpath, _, names in os.walk(src_root):
        for name in sorted(names):
            if name.endswith(('.cc', '.h')):
                yield os.path.join(dirpath, name)


def read(path):
    with open(path, encoding='utf-8') as f:
        return f.read()


def relpath(path, root):
    return os.path.relpath(path, root)


def extract_marked_section(readme_text, marker):
    """Returns the text between <!-- lint:MARKER:begin --> and :end."""
    begin = f'<!-- lint:{marker}:begin -->'
    end = f'<!-- lint:{marker}:end -->'
    i = readme_text.find(begin)
    j = readme_text.find(end)
    if i == -1 or j == -1 or j < i:
        return None
    return readme_text[i + len(begin):j]


def check_fault_points(src_root, readme_text, root, errors):
    registrations = {}  # name -> [(file, line)]
    for path in iter_source_files(src_root):
        # Comments are stripped but string literals kept: the name lives in
        # a literal, and doc-comment examples must not count as sites.
        clean = strip_comments(read(path))
        for lineno, line in enumerate(clean.splitlines(), 1):
            for m in FAULT_POINT_RE.finditer(line):
                registrations.setdefault(m.group(1), []).append(
                    (relpath(path, root), lineno))

    for name, sites in sorted(registrations.items()):
        if len(sites) > 1:
            where = ', '.join(f'{f}:{ln}' for f, ln in sites)
            errors.append(
                f'fault-points: "{name}" is registered {len(sites)} times '
                f'({where}); every fault point must be registered exactly '
                f'once so arming it fires one site')

    section = extract_marked_section(readme_text, 'fault-points')
    if section is None:
        errors.append(
            'fault-points: README.md has no '
            '<!-- lint:fault-points:begin/end --> table; the fault-point '
            'reference is load-bearing documentation')
        return
    documented = set(DOC_NAME_RE.findall(section))
    for name in sorted(set(registrations) - documented):
        f, ln = registrations[name][0]
        errors.append(
            f'fault-points: "{name}" ({f}:{ln}) is not documented in the '
            f'README fault-point table; add a row between the '
            f'lint:fault-points markers')
    for name in sorted(documented - set(registrations)):
        errors.append(
            f'fault-points: README documents "{name}" but no '
            f'GRAPHGEN_FAULT_POINT registers it; remove the row or restore '
            f'the point')


def check_metrics(src_root, readme_text, root, errors):
    used = {}  # name -> (file, line)
    for path in iter_source_files(src_root):
        clean = strip_comments(read(path))
        for lineno, line in enumerate(clean.splitlines(), 1):
            for m in METRIC_RE.finditer(line):
                used.setdefault(m.group(1), (relpath(path, root), lineno))

    section = extract_marked_section(readme_text, 'metrics')
    if section is None:
        errors.append(
            'metrics: README.md has no <!-- lint:metrics:begin/end --> '
            'table; the metrics reference is load-bearing documentation')
        return
    documented = set(DOC_NAME_RE.findall(section))
    for name in sorted(set(used) - documented):
        f, ln = used[name]
        errors.append(
            f'metrics: "{name}" ({f}:{ln}) is missing from the README '
            f'metrics table; every registry name must be documented between '
            f'the lint:metrics markers')
    for name in sorted(documented - set(used)):
        errors.append(
            f'metrics: README documents "{name}" but nothing in src/ '
            f'records it; remove the row or restore the instrumentation')


def split_functions(clean_text):
    """Yields (name, start_line, body_text) for every brace-balanced
    function-looking definition. Heuristic, not a parser: a definition is a
    `name(...)` whose next non-whitespace token chain reaches `{` without a
    `;` (skipping const/noexcept/override/initializer lists)."""
    lines = clean_text.splitlines()
    text = '\n'.join(lines)
    # Candidate heads: identifier( ... ) possibly spanning lines, followed
    # (after qualifiers / ctor-initializers) by '{'.
    head_re = re.compile(r'([A-Za-z_][A-Za-z0-9_:]*)\s*\(')
    results = []
    i = 0
    n = len(text)
    while i < n:
        m = head_re.search(text, i)
        if not m:
            break
        name = m.group(1)
        # Skip control-flow and declaration keywords.
        last_token = name.split('::')[-1]
        if last_token in ('if', 'for', 'while', 'switch', 'catch', 'return',
                          'sizeof', 'alignof', 'static_assert', 'defined',
                          'assert', 'new', 'delete'):
            i = m.end()
            continue
        # Find matching ')' for the parameter list.
        depth = 1
        j = m.end()
        while j < n and depth:
            if text[j] == '(':
                depth += 1
            elif text[j] == ')':
                depth -= 1
            j += 1
        if depth:
            break
        # Walk forward: a ';' before '{' means declaration/expression.
        k = j
        while k < n and text[k] not in ';{}':
            k += 1
        if k >= n or text[k] != '{':
            i = j
            continue
        # Between ')' and '{' only definition glue may appear (qualifiers,
        # a trailing return type, a ctor-initializer list). Anything else —
        # e.g. `.empty()) {` from a call inside an if-condition — means the
        # candidate was an expression, not a definition.
        glue = text[j:k]
        if not re.fullmatch(
                r'(?:\s|const|noexcept|final|override|mutable|'
                r'->\s*[\w:<>,~&*\[\]\s]+|:\s*[^{;]*)*', glue):
            i = j
            continue
        # Capture brace-balanced body.
        depth = 1
        b = k + 1
        while b < n and depth:
            if text[b] == '{':
                depth += 1
            elif text[b] == '}':
                depth -= 1
            b += 1
        start_line = text.count('\n', 0, m.start()) + 1
        results.append((name, start_line, text[k:b]))
        i = j  # continue after the parameter list: nested lambdas get their
        #        own entries, and the enclosing body still contains them.
    return results


def check_charge_polls(src_root, root, errors):
    for path in iter_source_files(src_root):
        rel = relpath(path, root)
        rel_in_src = os.path.relpath(path, src_root)
        if rel_in_src in CHARGE_CHECK_EXEMPT:
            continue
        clean = strip_comments_and_strings(read(path))
        if not CHARGE_RE.search(clean):
            continue
        for name, line, body in split_functions(clean):
            if CHARGE_RE.search(body) and not POLL_RE.search(body):
                errors.append(
                    f'charge-polls: {rel}:{line}: function "{name}" charges '
                    f'the MemoryBudget but never polls the ExecContext '
                    f'(ctx.Check()/AbortSlot::Continue()); a budgeted '
                    f'allocation loop must also be cancellable')


def check_sync_usage(src_root, root, errors):
    for path in iter_source_files(src_root):
        rel_in_src = os.path.relpath(path, src_root)
        if rel_in_src in SYNC_ALLOWED:
            continue
        clean = strip_comments_and_strings(read(path))
        for lineno, line in enumerate(clean.splitlines(), 1):
            m = RAW_SYNC_RE.search(line)
            if m:
                errors.append(
                    f'sync-usage: {relpath(path, root)}:{lineno}: raw '
                    f'{m.group(0)} outside common/sync.h; use the annotated '
                    f'Mutex/SharedMutex/MutexLock/CondVar wrappers so '
                    f'thread-safety analysis sees the lock')


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument('--root', default=None,
                        help='repo root (default: parent of this script)')
    args = parser.parse_args(argv)

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    src_root = os.path.join(root, 'src')
    readme = os.path.join(root, 'README.md')
    if not os.path.isdir(src_root):
        print(f'lint_invariants: no src/ under {root}', file=sys.stderr)
        return 2
    readme_text = read(readme) if os.path.exists(readme) else ''

    errors = []
    check_fault_points(src_root, readme_text, root, errors)
    check_metrics(src_root, readme_text, root, errors)
    check_charge_polls(src_root, root, errors)
    check_sync_usage(src_root, root, errors)

    if errors:
        for e in errors:
            print(e)
        print(f'lint_invariants: {len(errors)} violation(s)', file=sys.stderr)
        return 1
    print('lint_invariants: OK')
    return 0


if __name__ == '__main__':
    sys.exit(main(sys.argv[1:]))
