// A fault point the README table doesn't list: the CI fault-sweep and the
// shell's `faults` listing would disagree with the docs.
void Stage() { GRAPHGEN_FAULT_POINT("demo.undocumented"); }
