// Charges the request budget but never polls the ExecContext: the
// allocation is bounded but the loop is uncancellable.
Status FillBuffer(const ExecContext& ctx, std::vector<int>* out) {
  GRAPHGEN_RETURN_NOT_OK(ctx.Charge(1 << 20, "demo buffer"));
  for (size_t i = 0; i < (1u << 18); ++i) {
    out->push_back(static_cast<int>(i));
  }
  return Status::OK();
}
