// A registry metric missing from the README table: dashboards built off the
// docs would never find it.
void Record() { GetCounter("demo.hidden_rows")->Increment(); }
