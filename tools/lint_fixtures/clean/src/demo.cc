// Minimal tree that satisfies every invariant: one fault point (documented),
// one metric (documented), a charging function that polls, locks through
// the annotated wrappers only.
#include "common/sync.h"

namespace demo {

void Record() {
  GRAPHGEN_FAULT_POINT("demo.stage");
  GetCounter("demo.rows")->Increment();
}

Status FillBuffer(const ExecContext& ctx) {
  GRAPHGEN_RETURN_NOT_OK(ctx.Charge(1024, "demo buffer"));
  for (size_t i = 0; i < 8; ++i) {
    GRAPHGEN_RETURN_NOT_OK(ctx.Check());
  }
  return Status::OK();
}

class Guarded {
  Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace demo
