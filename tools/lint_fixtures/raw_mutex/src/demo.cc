// A raw std::mutex outside common/sync.h: invisible to Clang thread-safety
// analysis, so the linter forces it through the annotated wrappers.
#include <mutex>

namespace demo {
std::mutex g_lock;
int g_value = 0;

void Bump() {
  std::lock_guard<std::mutex> guard(g_lock);
  ++g_value;
}
}  // namespace demo
