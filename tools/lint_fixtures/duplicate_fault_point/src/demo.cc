// The same fault point registered at two sites: arming "demo.stage" would
// fire an unpredictable subset, so the linter must reject it.
void StageA() { GRAPHGEN_FAULT_POINT("demo.stage"); }
void StageB() { GRAPHGEN_FAULT_POINT("demo.stage"); }
