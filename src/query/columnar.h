#ifndef GRAPHGEN_QUERY_COLUMNAR_H_
#define GRAPHGEN_QUERY_COLUMNAR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "query/plan.h"
#include "relational/column.h"
#include "relational/table.h"

namespace graphgen::query {

/// Binds one output column of an operator to a physical column of one of
/// the base tables underneath it. Projection only rewrites bindings — no
/// value is touched until the final consumer reads it.
struct ColumnBinding {
  uint32_t source = 0;  // index into RowIdResult::sources
  uint32_t column = 0;  // column of that base table
};

/// A binding resolved against its physical storage: the typed base-table
/// column plus the tuple slot holding its row id. Operators resolve each
/// output column once and then read raw arrays instead of re-chasing
/// the binding per cell.
struct BoundColumn {
  const rel::ColumnVector* col = nullptr;
  uint32_t slot = 0;  // == ColumnBinding::source
};

/// The copy-light intermediate of the extraction pipeline. Instead of
/// materializing `rel::Row` copies at every operator, a result is
///  * a list of base tables (`sources`, one per scan under the operator),
///  * one row-id tuple per logical row (`tuples`, row-major, Width() ids
///    each — a scan's selection vector, a join's concatenated tuples), and
///  * lazy column bindings mapping output columns onto source columns.
/// Values are read in place from the base tables' typed column vectors;
/// only the row-id tuples (4 bytes per source per row) are ever copied
/// between operators.
struct RowIdResult {
  rel::Schema schema;
  /// Base table name per output column (join-column qualification).
  std::vector<std::string> origins;
  std::vector<const rel::Table*> sources;
  std::vector<ColumnBinding> columns;
  std::vector<uint32_t> tuples;

  size_t Width() const { return sources.size(); }
  size_t NumRows() const {
    return sources.empty() ? 0 : tuples.size() / sources.size();
  }
  BoundColumn Bind(size_t col) const {
    const ColumnBinding& b = columns[col];
    return {&sources[b.source]->column(b.column), b.source};
  }
  /// Row id of `row` in the base table behind `b`.
  size_t RowId(const BoundColumn& b, size_t row) const {
    return tuples[row * sources.size() + b.slot];
  }
  /// Materializes one cell (a copy — the storage is typed columns, so
  /// there is no Value to reference).
  rel::Value ValueAt(size_t row, size_t col) const {
    const BoundColumn b = Bind(col);
    return b.col->ValueAt(RowId(b, row));
  }

  /// Copies the bound values out into a classic materialized ResultSet
  /// (the one place the pipeline pays per-value copies).
  ResultSet Materialize(size_t threads = 1) const;
};

/// Uniform read view over either executor output form, so downstream
/// consumers (the extractor) are engine-agnostic.
class RowsView {
 public:
  explicit RowsView(const RowIdResult* columnar) : columnar_(columnar) {}
  explicit RowsView(const ResultSet* rows) : rows_(rows) {}

  size_t NumRows() const {
    return columnar_ != nullptr ? columnar_->NumRows() : rows_->NumRows();
  }
  rel::Value ValueAt(size_t row, size_t col) const {
    return columnar_ != nullptr ? columnar_->ValueAt(row, col)
                                : rows_->rows[row][col];
  }
  bool IsNullAt(size_t row, size_t col) const {
    if (columnar_ == nullptr) return rows_->rows[row][col].is_null();
    const BoundColumn b = columnar_->Bind(col);
    const size_t id = columnar_->RowId(b, row);
    return b.col->IsNull(id) ||
           b.col->encoding() == rel::ColumnVector::Encoding::kEmpty;
  }
  /// SQL-literal text of the cell, identical to ValueAt(row, col)
  /// .ToString() — but a dictionary-encoded string renders straight from
  /// the dictionary entry (one final string build, no intermediate Value
  /// copy). This is how the extractor materializes node properties.
  std::string ToStringAt(size_t row, size_t col) const;
  size_t NumColumns() const {
    return columnar_ != nullptr ? columnar_->columns.size()
                                : rows_->schema.NumColumns();
  }

 private:
  const RowIdResult* columnar_ = nullptr;
  const ResultSet* rows_ = nullptr;
};

}  // namespace graphgen::query

#endif  // GRAPHGEN_QUERY_COLUMNAR_H_
