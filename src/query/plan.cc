#include "query/plan.h"

namespace graphgen::query {

std::string_view CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "<>";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}

bool Predicate::MatchesValue(const rel::Value& v) const {
  switch (op) {
    case CompareOp::kEq: return v == constant;
    case CompareOp::kNe: return v != constant;
    case CompareOp::kLt: return v < constant;
    case CompareOp::kLe: return v < constant || v == constant;
    case CompareOp::kGt: return constant < v;
    case CompareOp::kGe: return constant < v || v == constant;
  }
  return false;
}

bool KeyFilter::Contains(const rel::Value& v) const {
  switch (v.type()) {
    case rel::ValueType::kNull:
      return false;
    case rel::ValueType::kInt64:
      return ints.contains(v.AsInt64());
    case rel::ValueType::kString:
      return strings.contains(v.AsString());
    case rel::ValueType::kDouble:
      return others.contains(v);
  }
  return false;
}

std::string ScanNode::ToSql() const {
  std::string sql = "SELECT * FROM " + table_;
  bool where = false;
  for (const Predicate& p : predicates_) {
    sql += where ? " AND " : " WHERE ";
    where = true;
    sql += "$" + std::to_string(p.column) + " " +
           std::string(CompareOpToString(p.op)) + " " + p.constant.ToString();
  }
  for (const SemiJoin& sj : semi_joins_) {
    sql += where ? " AND " : " WHERE ";
    where = true;
    // Rendered as the semi-join it is, not as a literal IN-list of up to
    // millions of node keys.
    sql += "$" + std::to_string(sj.column) + " IN (SELECT key FROM Nodes)";
  }
  if (IsRanged()) {
    sql += where ? " AND " : " WHERE ";
    sql += "ctid >= " + std::to_string(row_begin_);
    if (row_end_ != SIZE_MAX) sql += " AND ctid < " + std::to_string(row_end_);
  }
  return sql;
}

std::string HashJoinNode::ToSql() const {
  return "(" + left_->ToSql() + ") L JOIN (" + right_->ToSql() + ") R ON L.$" +
         std::to_string(left_col_) + " = R.$" + std::to_string(right_col_);
}

std::string ProjectNode::ToSql() const {
  std::string sql = "SELECT ";
  if (distinct_) sql += "DISTINCT ";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) sql += ", ";
    sql += "$" + std::to_string(columns_[i]);
    if (i < output_names_.size() && !output_names_[i].empty()) {
      sql += " AS " + output_names_[i];
    }
  }
  sql += " FROM (" + child_->ToSql() + ")";
  return sql;
}

}  // namespace graphgen::query
