#include "query/plan.h"

namespace graphgen::query {

std::string_view CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "<>";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}

bool Predicate::Matches(const rel::Row& row) const {
  const rel::Value& v = row[column];
  switch (op) {
    case CompareOp::kEq: return v == constant;
    case CompareOp::kNe: return v != constant;
    case CompareOp::kLt: return v < constant;
    case CompareOp::kLe: return v < constant || v == constant;
    case CompareOp::kGt: return constant < v;
    case CompareOp::kGe: return constant < v || v == constant;
  }
  return false;
}

std::string ScanNode::ToSql() const {
  std::string sql = "SELECT * FROM " + table_;
  if (!predicates_.empty()) {
    sql += " WHERE ";
    for (size_t i = 0; i < predicates_.size(); ++i) {
      if (i > 0) sql += " AND ";
      sql += "$" + std::to_string(predicates_[i].column) + " " +
             std::string(CompareOpToString(predicates_[i].op)) + " " +
             predicates_[i].constant.ToString();
    }
  }
  return sql;
}

std::string HashJoinNode::ToSql() const {
  return "(" + left_->ToSql() + ") L JOIN (" + right_->ToSql() + ") R ON L.$" +
         std::to_string(left_col_) + " = R.$" + std::to_string(right_col_);
}

std::string ProjectNode::ToSql() const {
  std::string sql = "SELECT ";
  if (distinct_) sql += "DISTINCT ";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) sql += ", ";
    sql += "$" + std::to_string(columns_[i]);
    if (i < output_names_.size() && !output_names_[i].empty()) {
      sql += " AS " + output_names_[i];
    }
  }
  sql += " FROM (" + child_->ToSql() + ")";
  return sql;
}

}  // namespace graphgen::query
