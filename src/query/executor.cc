#include "query/executor.h"

#include <unordered_map>
#include <unordered_set>

namespace graphgen::query {

namespace {

// Combines hashes of projected row values (FNV-style mix).
struct RowHash {
  size_t operator()(const rel::Row& r) const {
    size_t h = 1469598103934665603ull;
    for (const rel::Value& v : r) {
      h ^= v.Hash();
      h *= 1099511628211ull;
    }
    return h;
  }
};

}  // namespace

Result<ResultSet> Executor::Execute(const PlanNode& plan) const {
  if (const auto* scan = dynamic_cast<const ScanNode*>(&plan)) {
    return ExecuteScan(*scan);
  }
  if (const auto* join = dynamic_cast<const HashJoinNode*>(&plan)) {
    return ExecuteJoin(*join);
  }
  if (const auto* project = dynamic_cast<const ProjectNode*>(&plan)) {
    return ExecuteProject(*project);
  }
  return Status::Internal("unknown plan node type");
}

Result<ResultSet> Executor::ExecuteScan(const ScanNode& node) const {
  GRAPHGEN_ASSIGN_OR_RETURN(const rel::Table* table,
                            db_->GetTable(node.table()));
  ResultSet out;
  out.schema = table->schema();
  for (const Predicate& p : node.predicates()) {
    if (p.column >= table->NumColumns()) {
      return Status::PlanError("predicate column out of range for table " +
                               node.table());
    }
  }
  out.rows.reserve(node.predicates().empty() ? table->NumRows() : 0);
  for (const rel::Row& row : table->rows()) {
    bool keep = true;
    for (const Predicate& p : node.predicates()) {
      if (!p.Matches(row)) {
        keep = false;
        break;
      }
    }
    if (keep) out.rows.push_back(row);
  }
  return out;
}

Result<ResultSet> Executor::ExecuteJoin(const HashJoinNode& node) const {
  GRAPHGEN_ASSIGN_OR_RETURN(ResultSet left, Execute(node.left()));
  GRAPHGEN_ASSIGN_OR_RETURN(ResultSet right, Execute(node.right()));
  if (node.left_col() >= left.schema.NumColumns() ||
      node.right_col() >= right.schema.NumColumns()) {
    return Status::PlanError("join column out of range");
  }

  // Build on the smaller side.
  const bool build_left = left.NumRows() <= right.NumRows();
  const ResultSet& build = build_left ? left : right;
  const ResultSet& probe = build_left ? right : left;
  const size_t build_col = build_left ? node.left_col() : node.right_col();
  const size_t probe_col = build_left ? node.right_col() : node.left_col();

  std::unordered_map<rel::Value, std::vector<size_t>, rel::ValueHash> ht;
  ht.reserve(build.NumRows());
  for (size_t i = 0; i < build.NumRows(); ++i) {
    const rel::Value& key = build.rows[i][build_col];
    if (key.is_null()) continue;  // SQL semantics: NULL joins nothing.
    ht[key].push_back(i);
  }

  ResultSet out;
  {
    std::vector<rel::ColumnDef> cols = left.schema.columns();
    for (const auto& c : right.schema.columns()) cols.push_back(c);
    out.schema = rel::Schema(std::move(cols));
  }
  for (const rel::Row& prow : probe.rows) {
    const rel::Value& key = prow[probe_col];
    if (key.is_null()) continue;
    auto it = ht.find(key);
    if (it == ht.end()) continue;
    for (size_t bi : it->second) {
      const rel::Row& brow = build.rows[bi];
      rel::Row joined;
      joined.reserve(left.schema.NumColumns() + right.schema.NumColumns());
      const rel::Row& lrow = build_left ? brow : prow;
      const rel::Row& rrow = build_left ? prow : brow;
      joined.insert(joined.end(), lrow.begin(), lrow.end());
      joined.insert(joined.end(), rrow.begin(), rrow.end());
      out.rows.push_back(std::move(joined));
    }
  }
  return out;
}

Result<ResultSet> Executor::ExecuteProject(const ProjectNode& node) const {
  GRAPHGEN_ASSIGN_OR_RETURN(ResultSet child, Execute(node.child()));
  for (size_t c : node.columns()) {
    if (c >= child.schema.NumColumns()) {
      return Status::PlanError("projection column out of range");
    }
  }
  ResultSet out;
  {
    std::vector<rel::ColumnDef> cols;
    cols.reserve(node.columns().size());
    for (size_t i = 0; i < node.columns().size(); ++i) {
      rel::ColumnDef def = child.schema.column(node.columns()[i]);
      if (i < node.output_names().size() && !node.output_names()[i].empty()) {
        def.name = node.output_names()[i];
      }
      cols.push_back(std::move(def));
    }
    out.schema = rel::Schema(std::move(cols));
  }

  std::unordered_set<rel::Row, RowHash> seen;
  if (node.distinct()) seen.reserve(child.NumRows());
  out.rows.reserve(child.NumRows());
  for (const rel::Row& row : child.rows) {
    rel::Row projected;
    projected.reserve(node.columns().size());
    for (size_t c : node.columns()) projected.push_back(row[c]);
    if (node.distinct()) {
      if (!seen.insert(projected).second) continue;
    }
    out.rows.push_back(std::move(projected));
  }
  return out;
}

}  // namespace graphgen::query
