#include "query/executor.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "common/cancel.h"
#include "common/faultpoints.h"
#include "common/hash.h"
#include "common/parallel.h"
#include "obs/metrics.h"

namespace graphgen::query {

namespace {

// Engine-level counters in the global registry. Pointers are resolved
// once (registry lookups take a lock; Add() does not) and shared by every
// Executor instance.
struct ExecMetrics {
  obs::Counter* scan_rows_in;
  obs::Counter* scan_rows_out;
  obs::Counter* join_build_rows;
  obs::Counter* join_probe_rows;
  obs::Counter* join_matches;
  obs::Counter* distinct_rows_in;
  obs::Counter* distinct_rows_out;
  obs::Counter* fused_pipelines;
  obs::Counter* unfused_pipelines;
};

const ExecMetrics& Metrics() {
  static const ExecMetrics m = [] {
    obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
    ExecMetrics em;
    em.scan_rows_in = r.GetCounter("query.scan.rows_in");
    em.scan_rows_out = r.GetCounter("query.scan.rows_out");
    em.join_build_rows = r.GetCounter("query.join.build_rows");
    em.join_probe_rows = r.GetCounter("query.join.probe_rows");
    em.join_matches = r.GetCounter("query.join.matches");
    em.distinct_rows_in = r.GetCounter("query.distinct.rows_in");
    em.distinct_rows_out = r.GetCounter("query.distinct.rows_out");
    em.fused_pipelines = r.GetCounter("query.fused_pipelines");
    em.unfused_pipelines = r.GetCounter("query.unfused_pipelines");
    return em;
  }();
  return m;
}

// True when the request context can actually fail a poll (a live cancel
// flag or a deadline); an inert context skips the strided polling paths
// entirely, so the no-deadline fast path stays at seed cost.
bool NeedsPoll(const ExecContext& ctx) {
  return ctx.cancel.cancellable() || ctx.has_deadline;
}

// Runs body(begin, end) over [begin, end) in kCancelStrideRows blocks,
// polling the context between blocks; the first failure parks its Status
// in the slot and the remaining blocks are skipped. With poll == false the
// body runs once over the whole range (no per-block cost).
template <typename Body>
void StridedRun(const ExecContext& ctx, AbortSlot& slot, bool poll,
                size_t begin, size_t end, Body body) {
  if (!poll) {
    body(begin, end);
    return;
  }
  for (size_t b = begin; b < end; b += kCancelStrideRows) {
    if (!slot.Continue(ctx)) return;
    body(b, std::min(end, b + kCancelStrideRows));
  }
}

// The per-operator profile child for an operator about to run, or null
// when nobody is recording.
obs::ProfileNode* OpNode(obs::ProfileNode* parent, std::string_view name,
                         std::string_view detail = {}) {
  if (parent == nullptr || !obs::Enabled()) return nullptr;
  return parent->AddChild(name, detail);
}

using rel::ColumnVector;
using Encoding = rel::ColumnVector::Encoding;

// Below these sizes the spawn/partition overhead outweighs the win; the
// operator runs its serial path (output is identical either way).
constexpr size_t kParallelScanThreshold = 1 << 13;
constexpr size_t kParallelProbeThreshold = 1 << 12;
constexpr size_t kPartitionedBuildThreshold = 1 << 11;
constexpr size_t kParallelDistinctThreshold = 1 << 13;
constexpr size_t kMaxPartitions = 16;
// Predicate evaluation works column-at-a-time over sub-ranges this size,
// so every predicate's pass over a morsel stays in cache.
constexpr size_t kScanMorselRows = 1 << 11;
// The fused join→DISTINCT pipeline buffers probe matches in morsels of
// this many tuples, then batch-hashes and batch-inserts each morsel in
// tight per-phase loops: the bounded buffer stays in L1/L2 and the hash
// pass pipelines like the unfused operator's, while the join's full
// output is still never materialized.
constexpr size_t kFusedMorselRows = 1 << 15;

// Combines hashes of projected row values (FNV-style mix).
struct RowHash {
  size_t operator()(const rel::Row& r) const {
    size_t h = 1469598103934665603ull;
    for (const rel::Value& v : r) {
      h ^= v.Hash();
      h *= 1099511628211ull;
    }
    return h;
  }
};

// Splits [0, n) into at most `parts` equal contiguous chunks.
std::vector<IndexRange> EqualRanges(size_t n, size_t parts) {
  parts = std::max<size_t>(1, std::min(parts, n));
  const size_t chunk = (n + parts - 1) / parts;
  std::vector<IndexRange> ranges;
  for (size_t begin = 0; begin < n; begin += chunk) {
    ranges.push_back({begin, std::min(n, begin + chunk)});
  }
  if (ranges.empty()) ranges.push_back({0, 0});
  return ranges;
}

// Output schema of a hash join: left columns keep their names; a right
// column whose name is already taken is qualified as "<table>.<name>"
// and, if even that collides (self-joins), suffixed "#2", "#3", ... —
// deterministic, so downstream name resolution is unambiguous.
void JoinOutputSchema(const rel::Schema& left,
                      const std::vector<std::string>& left_origins,
                      const rel::Schema& right,
                      const std::vector<std::string>& right_origins,
                      rel::Schema* out_schema,
                      std::vector<std::string>* out_origins) {
  std::vector<rel::ColumnDef> cols = left.columns();
  std::unordered_set<std::string> taken;
  taken.reserve(cols.size() + right.NumColumns());
  for (const rel::ColumnDef& c : cols) taken.insert(c.name);
  out_origins->clear();
  out_origins->reserve(cols.size() + right.NumColumns());
  for (size_t i = 0; i < left.NumColumns(); ++i) {
    out_origins->push_back(i < left_origins.size() ? left_origins[i] : "");
  }
  for (size_t i = 0; i < right.NumColumns(); ++i) {
    rel::ColumnDef def = right.column(i);
    const std::string origin =
        i < right_origins.size() ? right_origins[i] : "";
    if (taken.contains(def.name) && !origin.empty()) {
      def.name = origin + "." + def.name;
    }
    if (taken.contains(def.name)) {
      const std::string base = def.name;
      for (int k = 2;; ++k) {
        def.name = base + "#" + std::to_string(k);
        if (!taken.contains(def.name)) break;
      }
    }
    taken.insert(def.name);
    out_origins->push_back(origin);
    cols.push_back(std::move(def));
  }
  *out_schema = rel::Schema(std::move(cols));
}

// Projection output schema shared by both engines.
Status ProjectOutputSchema(const ProjectNode& node, const rel::Schema& child,
                           const std::vector<std::string>& child_origins,
                           rel::Schema* out_schema,
                           std::vector<std::string>* out_origins) {
  for (size_t c : node.columns()) {
    if (c >= child.NumColumns()) {
      return Status::PlanError("projection column out of range");
    }
  }
  std::vector<rel::ColumnDef> cols;
  cols.reserve(node.columns().size());
  out_origins->clear();
  out_origins->reserve(node.columns().size());
  for (size_t i = 0; i < node.columns().size(); ++i) {
    const size_t src = node.columns()[i];
    rel::ColumnDef def = child.column(src);
    if (i < node.output_names().size() && !node.output_names()[i].empty()) {
      def.name = node.output_names()[i];
    }
    cols.push_back(std::move(def));
    out_origins->push_back(src < child_origins.size() ? child_origins[src]
                                                      : "");
  }
  *out_schema = rel::Schema(std::move(cols));
  return Status::OK();
}

// ------------------------------------------------- typed scan evaluation

// A predicate compiled against the physical encoding of its column. The
// compile step hoists everything value-independent out of the row loop:
// the NULL verdict, comparisons that cannot read the cell (a string
// constant against an int64 column), and — for dictionary columns — one
// verdict per distinct string instead of per row.
struct CompiledPredicate {
  enum class Kind { kConst, kInt64Exact, kNumeric, kCodeTable, kGeneric };

  const ColumnVector* col = nullptr;
  const Predicate* pred = nullptr;
  Kind kind = Kind::kGeneric;
  bool null_match = false;
  bool const_match = false;           // kConst
  double const_double = 0.0;          // kNumeric / kInt64Exact
  int64_t const_int = 0;              // kInt64Exact
  bool same_type = false;             // kNumeric: exact equality possible
  std::vector<uint8_t> code_match;    // kCodeTable

  void Apply(size_t begin, size_t end, uint8_t* keep) const;
};

CompiledPredicate CompilePredicate(const ColumnVector& col,
                                   const Predicate& p) {
  CompiledPredicate cp;
  cp.col = &col;
  cp.pred = &p;
  cp.null_match = p.MatchesValue(rel::Value::Null());
  const rel::ValueType ct = p.constant.type();
  const bool const_numeric =
      ct == rel::ValueType::kInt64 || ct == rel::ValueType::kDouble;
  switch (col.encoding()) {
    case Encoding::kEmpty:
      cp.kind = CompiledPredicate::Kind::kConst;
      cp.const_match = cp.null_match;  // every cell is NULL
      break;
    case Encoding::kInt64:
      if (ct == rel::ValueType::kInt64) {
        cp.kind = CompiledPredicate::Kind::kInt64Exact;
        cp.const_int = p.constant.AsInt64();
        cp.const_double = static_cast<double>(cp.const_int);
      } else if (ct == rel::ValueType::kDouble) {
        cp.kind = CompiledPredicate::Kind::kNumeric;
        cp.const_double = p.constant.AsDouble();
        cp.same_type = false;
      } else {
        // Ordering against strings/NULL depends only on the types.
        cp.kind = CompiledPredicate::Kind::kConst;
        cp.const_match = p.MatchesValue(rel::Value(int64_t{0}));
      }
      break;
    case Encoding::kDouble:
      if (const_numeric) {
        cp.kind = CompiledPredicate::Kind::kNumeric;
        cp.const_double = p.constant.AsDouble();
        cp.same_type = ct == rel::ValueType::kDouble;
      } else {
        cp.kind = CompiledPredicate::Kind::kConst;
        cp.const_match = p.MatchesValue(rel::Value(0.0));
      }
      break;
    case Encoding::kDictString: {
      cp.kind = CompiledPredicate::Kind::kCodeTable;
      const rel::StringDictionary& dict = col.dict();
      cp.code_match.resize(dict.size());
      for (uint32_t code = 0; code < dict.size(); ++code) {
        cp.code_match[code] =
            p.MatchesValue(rel::Value(dict.At(code))) ? 1 : 0;
      }
      break;
    }
    case Encoding::kMixed:
      cp.kind = CompiledPredicate::Kind::kGeneric;
      break;
  }
  return cp;
}

void CompiledPredicate::Apply(size_t begin, size_t end, uint8_t* keep) const {
  const uint8_t* nulls = col->NullMask();
  // AND-accumulates `match(i)` into keep over [begin, end) as straight
  // byte arithmetic: no branch on keep, no branch on NULL. Typed arrays
  // hold a zero placeholder at null positions, so match(i) is always safe
  // (and cheap) to evaluate, and the loop body reduces to compares + byte
  // ANDs the compiler can vectorize.
  auto run = [&](auto match) {
    if (nulls == nullptr) {
      for (size_t i = begin; i < end; ++i) {
        keep[i] &= static_cast<uint8_t>(match(i));
      }
      return;
    }
    const uint8_t nm = null_match ? 1 : 0;
    for (size_t i = begin; i < end; ++i) {
      const uint8_t nn = static_cast<uint8_t>(nulls[i] != 0);
      keep[i] &= static_cast<uint8_t>(
          (nn & nm) |
          (static_cast<uint8_t>(nn ^ 1) & static_cast<uint8_t>(match(i))));
    }
  };
  // The generic kind materializes a Value per cell — far too expensive to
  // evaluate on rows other predicates already dropped, so it alone keeps
  // the per-row guard.
  auto run_guarded = [&](auto match) {
    for (size_t i = begin; i < end; ++i) {
      if (keep[i] == 0) continue;
      const bool m =
          (nulls != nullptr && nulls[i] != 0) ? null_match : match(i);
      if (!m) keep[i] = 0;
    }
  };
  switch (kind) {
    case Kind::kConst:
      run([&](size_t) { return const_match; });
      return;
    case Kind::kInt64Exact: {
      const int64_t* data = col->Int64Data();
      const int64_t c = const_int;
      const double cd = const_double;
      switch (pred->op) {
        // Ordering promotes through double exactly like Value::operator<;
        // equality stays exact int64 like Value::operator==.
        case CompareOp::kEq: run([&](size_t i) { return data[i] == c; }); return;
        case CompareOp::kNe: run([&](size_t i) { return data[i] != c; }); return;
        case CompareOp::kLt:
          run([&](size_t i) { return static_cast<double>(data[i]) < cd; });
          return;
        case CompareOp::kLe:
          run([&](size_t i) {
            return static_cast<double>(data[i]) < cd || data[i] == c;
          });
          return;
        case CompareOp::kGt:
          run([&](size_t i) { return cd < static_cast<double>(data[i]); });
          return;
        case CompareOp::kGe:
          run([&](size_t i) {
            return cd < static_cast<double>(data[i]) || data[i] == c;
          });
          return;
      }
      return;
    }
    case Kind::kNumeric: {
      const int64_t* ip = col->Int64Data();
      const double* dp = col->DoubleData();
      const double cd = const_double;
      auto dv = [&](size_t i) {
        return ip != nullptr ? static_cast<double>(ip[i]) : dp[i];
      };
      // Equality never crosses int64/double (Value semantics); within
      // kDouble it is exact double equality.
      auto eq = [&](size_t i) { return same_type && dp[i] == cd; };
      switch (pred->op) {
        case CompareOp::kEq: run(eq); return;
        case CompareOp::kNe: run([&](size_t i) { return !eq(i); }); return;
        case CompareOp::kLt: run([&](size_t i) { return dv(i) < cd; }); return;
        case CompareOp::kLe:
          run([&](size_t i) { return dv(i) < cd || eq(i); });
          return;
        case CompareOp::kGt: run([&](size_t i) { return cd < dv(i); }); return;
        case CompareOp::kGe:
          run([&](size_t i) { return cd < dv(i) || eq(i); });
          return;
      }
      return;
    }
    case Kind::kCodeTable: {
      const uint32_t* codes = col->CodeData();
      run([&](size_t i) { return code_match[codes[i]] != 0; });
      return;
    }
    case Kind::kGeneric:
      run_guarded(
          [&](size_t i) { return pred->MatchesValue(col->ValueAt(i)); });
      return;
  }
}

// A semi-join key filter compiled against its column's encoding. NULL is
// never a member of the node-key set.
struct CompiledSemiJoin {
  const ColumnVector* col = nullptr;
  const KeyFilter* keys = nullptr;
  std::vector<uint8_t> code_match;  // dict columns: per-code membership

  void Apply(size_t begin, size_t end, uint8_t* keep) const {
    const uint8_t* nulls = col->NullMask();
    // Hash-set membership probes are too costly to run on rows already
    // dropped, so those paths keep the per-row guard; the dictionary path
    // is a flat per-code table read and runs branch-light.
    auto run = [&](auto match) {
      for (size_t i = begin; i < end; ++i) {
        if (keep[i] == 0) continue;
        const bool m = (nulls != nullptr && nulls[i] != 0) ? false : match(i);
        if (!m) keep[i] = 0;
      }
    };
    switch (col->encoding()) {
      case Encoding::kEmpty:
        std::fill(keep + begin, keep + end, uint8_t{0});
        return;
      case Encoding::kInt64: {
        const int64_t* data = col->Int64Data();
        run([&](size_t i) { return keys->ints.contains(data[i]); });
        return;
      }
      case Encoding::kDictString: {
        // NULL placeholders store code 0; masking the code verdict with
        // the null byte keeps the loop free of per-row branches.
        const uint32_t* codes = col->CodeData();
        if (nulls == nullptr) {
          for (size_t i = begin; i < end; ++i) {
            keep[i] &= code_match[codes[i]];
          }
        } else {
          for (size_t i = begin; i < end; ++i) {
            const uint8_t nn = static_cast<uint8_t>(nulls[i] != 0);
            keep[i] &=
                static_cast<uint8_t>(static_cast<uint8_t>(nn ^ 1) &
                                     code_match[codes[i]]);
          }
        }
        return;
      }
      case Encoding::kDouble: {
        const double* data = col->DoubleData();
        run([&](size_t i) {
          return keys->others.contains(rel::Value(data[i]));
        });
        return;
      }
      case Encoding::kMixed:
        run([&](size_t i) { return keys->Contains(col->ValueAt(i)); });
        return;
    }
  }
};

CompiledSemiJoin CompileSemiJoin(const ColumnVector& col,
                                 const SemiJoin& sj) {
  CompiledSemiJoin cf;
  cf.col = &col;
  cf.keys = sj.keys.get();
  if (col.encoding() == Encoding::kDictString) {
    const rel::StringDictionary& dict = col.dict();
    cf.code_match.resize(dict.size());
    for (uint32_t code = 0; code < dict.size(); ++code) {
      cf.code_match[code] = sj.keys->strings.contains(dict.At(code)) ? 1 : 0;
    }
  }
  return cf;
}

// ---------------------------------------------------- typed join kernels

size_t PowerOfTwoCapacity(size_t n) {
  size_t cap = 16;
  while (cap < 2 * n) cap <<= 1;
  return cap;
}

// Open-addressing hash table from Key to an ascending chain of build row
// ids. Slots are flat arrays (no per-node allocation, linear probing);
// chains thread through one `next` array indexed by build row — the array
// is shared across partitions (partitions own disjoint rows), so chain
// memory is paid once, not per partition. Rows must be inserted in
// ascending order so chains stay ascending.
template <typename Key>
struct FlatChainTable {
  std::vector<Key> keys;      // per slot; meaningful when head >= 0
  std::vector<int64_t> hash;  // per slot, cached full hash
  std::vector<int32_t> head;  // per slot, first build row or -1 (empty)
  std::vector<int32_t> tail;  // per slot, last build row of the chain
  std::vector<uint32_t> count;  // per slot, chain length (match estimates)
  int32_t* next = nullptr;    // shared: per build row, next equal-key row
  uint64_t mask = 0;

  void Init(size_t rows_in_partition, int32_t* shared_next) {
    const size_t cap = PowerOfTwoCapacity(rows_in_partition);
    mask = cap - 1;
    keys.resize(cap);
    hash.resize(cap);
    head.assign(cap, -1);
    tail.resize(cap);
    count.assign(cap, 0);
    next = shared_next;
  }

  void Insert(const Key& k, uint64_t h, uint32_t row) {
    size_t pos = h & mask;
    for (;;) {
      if (head[pos] < 0) {
        keys[pos] = k;
        hash[pos] = static_cast<int64_t>(h);
        head[pos] = static_cast<int32_t>(row);
        tail[pos] = static_cast<int32_t>(row);
        count[pos] = 1;
        next[row] = -1;
        return;
      }
      if (hash[pos] == static_cast<int64_t>(h) && keys[pos] == k) {
        next[tail[pos]] = static_cast<int32_t>(row);
        tail[pos] = static_cast<int32_t>(row);
        ++count[pos];
        next[row] = -1;
        return;
      }
      pos = (pos + 1) & mask;
    }
  }

  // First build row with key k, or -1.
  int32_t Find(const Key& k, uint64_t h) const {
    size_t pos = h & mask;
    for (;;) {
      if (head[pos] < 0) return -1;
      if (hash[pos] == static_cast<int64_t>(h) && keys[pos] == k) {
        return head[pos];
      }
      pos = (pos + 1) & mask;
    }
  }

  // Number of build rows with key k (0 when absent).
  uint32_t CountFor(const Key& k, uint64_t h) const {
    size_t pos = h & mask;
    for (;;) {
      if (head[pos] < 0) return 0;
      if (hash[pos] == static_cast<int64_t>(h) && keys[pos] == k) {
        return count[pos];
      }
      pos = (pos + 1) & mask;
    }
  }
};

// ------------------------------------------------- typed DISTINCT kernel

// Flattened per-column readers for DISTINCT hashing/equality: everything
// is raw array reads (int64 data, dictionary codes, cached string
// hashes), no per-cell function calls or Value materialization.
struct DistinctCol {
  enum class Kind : uint8_t { kInt64, kDouble, kDict, kMixed, kAllNull };
  Kind kind = Kind::kAllNull;
  const int64_t* ints = nullptr;
  const double* doubles = nullptr;
  const uint32_t* codes = nullptr;
  const rel::StringDictionary* dict = nullptr;
  const ColumnVector* col = nullptr;  // mixed fallback
  const uint8_t* nulls = nullptr;
  uint32_t slot = 0;

  static DistinctCol Make(const BoundColumn& b) {
    DistinctCol d;
    d.slot = b.slot;
    d.nulls = b.col->NullMask();
    d.col = b.col;
    switch (b.col->encoding()) {
      case Encoding::kInt64:
        d.kind = Kind::kInt64;
        d.ints = b.col->Int64Data();
        break;
      case Encoding::kDouble:
        d.kind = Kind::kDouble;
        d.doubles = b.col->DoubleData();
        break;
      case Encoding::kDictString:
        d.kind = Kind::kDict;
        d.codes = b.col->CodeData();
        d.dict = &b.col->dict();
        break;
      case Encoding::kMixed:
        d.kind = Kind::kMixed;
        break;
      case Encoding::kEmpty:
        d.kind = Kind::kAllNull;
        break;
    }
    return d;
  }

  bool IsNull(size_t id) const {
    return kind == Kind::kAllNull || (nulls != nullptr && nulls[id] != 0);
  }

  uint64_t Hash(size_t id) const {
    if (IsNull(id)) return 0x9e3779b9u;
    switch (kind) {
      case Kind::kInt64: return MixInt64(static_cast<uint64_t>(ints[id]));
      case Kind::kDouble: return std::hash<double>{}(doubles[id]);
      case Kind::kDict: return dict->HashOf(codes[id]);
      case Kind::kMixed: return col->MixedAt(id).Hash();
      case Kind::kAllNull: break;
    }
    return 0x9e3779b9u;
  }

  // Value-equality of two cells of this column (codes compare directly:
  // one column has one dictionary).
  bool Equal(size_t a, size_t b) const {
    const bool an = IsNull(a);
    const bool bn = IsNull(b);
    if (an || bn) return an == bn;
    switch (kind) {
      case Kind::kInt64: return ints[a] == ints[b];
      case Kind::kDouble: return doubles[a] == doubles[b];
      case Kind::kDict: return codes[a] == codes[b];
      case Kind::kMixed: return col->MixedAt(a) == col->MixedAt(b);
      case Kind::kAllNull: break;
    }
    return true;
  }
};

// Open-addressing first-occurrence set over row ids with precomputed
// hashes (no per-insert allocation). Rows must be offered in ascending
// order; survivors come out in that same order.
class FlatDistinctSet {
 public:
  FlatDistinctSet(size_t expected_rows, const std::vector<uint64_t>& hashes,
                  const RowIdResult& rows, const std::vector<DistinctCol>& cols)
      : hashes_(hashes), rows_(rows), cols_(cols) {
    const size_t cap = PowerOfTwoCapacity(expected_rows);
    mask_ = cap - 1;
    slots_.assign(cap, kEmptySlot);
  }

  // True if row i is the first occurrence of its key.
  bool Insert(uint32_t i) {
    const uint64_t h = hashes_[i];
    size_t pos = h & mask_;
    for (;;) {
      const uint32_t r = slots_[pos];
      if (r == kEmptySlot) {
        slots_[pos] = i;
        return true;
      }
      if (hashes_[r] == h && RowsEqual(r, i)) return false;
      pos = (pos + 1) & mask_;
    }
  }

 private:
  static constexpr uint32_t kEmptySlot = 0xffffffffu;

  bool RowsEqual(uint32_t a, uint32_t b) const {
    const size_t w = rows_.Width();
    const uint32_t* ta = &rows_.tuples[static_cast<size_t>(a) * w];
    const uint32_t* tb = &rows_.tuples[static_cast<size_t>(b) * w];
    for (const DistinctCol& c : cols_) {
      if (!c.Equal(ta[c.slot], tb[c.slot])) return false;
    }
    return true;
  }

  const std::vector<uint64_t>& hashes_;
  const RowIdResult& rows_;
  const std::vector<DistinctCol>& cols_;
  std::vector<uint32_t> slots_;
  uint64_t mask_ = 0;
};

// ------------------------------------------- fused join→DISTINCT kernel

// Projected-key hash of one (concatenated) row-id tuple — the same
// FNV-combine + avalanche the unfused DISTINCT uses.
uint64_t DistinctHash(const std::vector<DistinctCol>& cols,
                      const uint32_t* tup) {
  uint64_t h = 1469598103934665603ull;
  for (const DistinctCol& c : cols) {
    h ^= c.Hash(tup[c.slot]);
    h *= 1099511628211ull;
  }
  return MixInt64(h);
}

// Open-addressing first-occurrence set that *stores* surviving tuples:
// the fused pipeline offers every probe match as a candidate concatenated
// row-id tuple, and only first occurrences are retained — the join's full
// output is never materialized anywhere. Hashing and equality run on the
// projected typed base columns exactly like the unfused DISTINCT kernel.
// The slot table is presized for the exact offer count (survivors can
// never exceed offers), so Insert carries no load-factor check, and
// ReserveBatch makes room for one morsel of potential survivors up front
// so the insert loop writes raw arrays instead of re-checking vector
// capacity per element.
class FusedDistinctSet {
 public:
  // `expected` is the number of candidates that will be offered (the
  // range's match count, from the join build's chain lengths) — the same
  // presize guarantee the unfused DISTINCT gets from its materialized
  // input's length.
  FusedDistinctSet(size_t width, const std::vector<DistinctCol>& cols,
                   size_t expected)
      : width_(width), cols_(cols) {
    const size_t cap = PowerOfTwoCapacity(expected);
    slots_.assign(cap, kEmptySlot);
    mask_ = cap - 1;
  }

  // Guarantees room for `n` more survivors; call before a batch of at
  // most `n` Insert offers. Survivor storage is raw geometric buffers —
  // no value-initialization, no per-element capacity checks in Insert.
  void ReserveBatch(size_t n) {
    if (size_ + n > cap_) {
      const size_t cap = std::max(cap_ * 2, size_ + n);
      auto tuples = std::make_unique_for_overwrite<uint32_t[]>(cap * width_);
      auto hashes = std::make_unique_for_overwrite<uint64_t[]>(cap);
      std::copy(tuples_.get(), tuples_.get() + size_ * width_, tuples.get());
      std::copy(hashes_.get(), hashes_.get() + size_, hashes.get());
      tuples_ = std::move(tuples);
      hashes_ = std::move(hashes);
      cap_ = cap;
    }
  }

  // True if the candidate's projected key is unseen; the tuple is then
  // retained (survivors keep their offer order). Requires ReserveBatch.
  bool Insert(const uint32_t* tup, uint64_t h) {
    size_t pos = h & mask_;
    for (;;) {
      const uint32_t s = slots_[pos];
      if (s == kEmptySlot) {
        slots_[pos] = static_cast<uint32_t>(size_);
        uint32_t* dst = tuples_.get() + size_ * width_;
        for (size_t j = 0; j < width_; ++j) dst[j] = tup[j];
        hashes_[size_] = h;
        ++size_;
        return true;
      }
      if (hashes_[s] == h &&
          Equal(tuples_.get() + static_cast<size_t>(s) * width_, tup)) {
        return false;
      }
      pos = (pos + 1) & mask_;
    }
  }

  size_t size() const { return size_; }
  // Survivor tuples in offer order, size() rows of width() ids.
  const uint32_t* tuples() const { return tuples_.get(); }
  const uint64_t* hashes() const { return hashes_.get(); }

 private:
  static constexpr uint32_t kEmptySlot = 0xffffffffu;

  bool Equal(const uint32_t* a, const uint32_t* b) const {
    for (const DistinctCol& c : cols_) {
      if (!c.Equal(a[c.slot], b[c.slot])) return false;
    }
    return true;
  }

  size_t width_;
  const std::vector<DistinctCol>& cols_;
  std::vector<uint32_t> slots_;
  uint64_t mask_ = 0;
  size_t size_ = 0;
  size_t cap_ = 0;
  std::unique_ptr<uint32_t[]> tuples_;  // survivor tuples, width_ ids each
  std::unique_ptr<uint64_t[]> hashes_;  // survivor projected-key hashes
};

// The build phase of the partitioned hash join, shared by the
// materializing join and the fused join→DISTINCT pipeline: typed keys and
// hashes are precomputed in parallel, then P flat per-partition tables are
// built over build rows in ascending order (per-key chains stay ascending,
// which is what makes probe output order the serial order).
template <typename Key>
struct JoinBuild {
  std::vector<uint64_t> bhash;
  std::vector<uint8_t> bnull;
  std::vector<Key> bkeys;
  std::vector<int32_t> chain_next;
  std::vector<FlatChainTable<Key>> tables;
  size_t partitions = 1;
  /// Build-side scratch charged against the request's memory budget,
  /// refunded when the build dies at the end of the operator.
  ScopedCharge charge;
};

template <typename Key, typename HashFn, typename BuildKeyFn>
JoinBuild<Key> BuildJoinTables(size_t bn, size_t threads, HashFn hash,
                               BuildKeyFn bkey, const ExecContext& ctx,
                               AbortSlot& slot) {
  JoinBuild<Key> jb;
  // Key/hash/null/chain arrays are the first of the join's two big
  // allocations; the per-partition slot arrays are priced below once the
  // partition fan-out is known.
  const size_t key_bytes =
      bn * (sizeof(uint64_t) + 1 + sizeof(Key) + sizeof(int32_t));
  if (Status st = jb.charge.Acquire(ctx, key_bytes, "hash-join build keys");
      !st.ok()) {
    slot.Fail(std::move(st));
    return jb;
  }
  jb.bhash.resize(bn);
  jb.bnull.resize(bn);
  jb.bkeys.resize(bn);
  const bool poll = NeedsPoll(ctx);
  ParallelFor(
      bn,
      [&](size_t begin, size_t end) {
        StridedRun(ctx, slot, poll, begin, end, [&](size_t b, size_t e) {
          for (size_t i = b; i < e; ++i) {
            Key k{};
            if (bkey(i, &k)) {
              jb.bkeys[i] = std::move(k);
              jb.bhash[i] = hash(jb.bkeys[i]);
              jb.bnull[i] = 0;
            } else {
              jb.bnull[i] = 1;
            }
          }
        });
      },
      threads);
  if (slot.Failed()) return jb;

  jb.partitions = (threads > 1 && bn >= kPartitionedBuildThreshold)
                      ? std::min(threads, kMaxPartitions)
                      : 1;
  std::vector<size_t> partition_rows(jb.partitions, 0);
  if (jb.partitions == 1) {
    for (size_t i = 0; i < bn; ++i) {
      if (jb.bnull[i] == 0) ++partition_rows[0];
    }
  } else {
    for (size_t i = 0; i < bn; ++i) {
      if (jb.bnull[i] == 0) ++partition_rows[jb.bhash[i] % jb.partitions];
    }
  }
  // Per-slot: key + cached hash + head + tail + count.
  constexpr size_t kSlotBytes =
      sizeof(Key) + sizeof(int64_t) + 2 * sizeof(int32_t) + sizeof(uint32_t);
  size_t table_bytes = 0;
  for (size_t rows : partition_rows) {
    table_bytes += PowerOfTwoCapacity(rows) * kSlotBytes;
  }
  if (Status st = ctx.Charge(table_bytes, "hash-join slot tables");
      !st.ok()) {
    slot.Fail(std::move(st));
    return jb;
  }
  jb.charge.Grow(table_bytes);
  jb.chain_next.resize(bn);
  jb.tables.resize(jb.partitions);
  ParallelInvoke(jb.partitions, [&](size_t p) {
    if (slot.Failed()) return;
    FlatChainTable<Key>& ht = jb.tables[p];
    ht.Init(partition_rows[p], jb.chain_next.data());
    StridedRun(ctx, slot, poll, 0, bn, [&](size_t b, size_t e) {
      for (size_t i = b; i < e; ++i) {
        if (jb.bnull[i] != 0 || jb.bhash[i] % jb.partitions != p) continue;
        ht.Insert(jb.bkeys[i], jb.bhash[i], static_cast<uint32_t>(i));
      }
    });
  });
  return jb;
}

// Total number of join matches a probe range will emit, from the build
// chains' cached lengths — O(range rows), no chain walking.
template <typename Key, typename HashFn, typename ProbeKeyFn>
size_t CountJoinRange(const JoinBuild<Key>& jb, IndexRange range, HashFn hash,
                      ProbeKeyFn pkey) {
  size_t expected = 0;
  for (size_t pr = range.begin; pr < range.end; ++pr) {
    Key k{};
    if (!pkey(pr, &k)) continue;
    const uint64_t h = hash(k);
    expected += jb.tables[h % jb.partitions].CountFor(k, h);
  }
  return expected;
}

// Materializes one probe range's matches as concatenated (left, right)
// row-id tuples in serial probe order.
template <typename Key, typename HashFn, typename ProbeKeyFn>
void EmitJoinRange(const JoinBuild<Key>& jb, IndexRange range, HashFn hash,
                   ProbeKeyFn pkey, const RowIdResult& build,
                   const RowIdResult& probe, bool build_left, size_t lw,
                   size_t rw, std::vector<uint32_t>& buf) {
  const size_t bw = build_left ? lw : rw;
  const size_t pw = build_left ? rw : lw;
  for (size_t pr = range.begin; pr < range.end; ++pr) {
    Key k{};
    if (!pkey(pr, &k)) continue;
    const uint64_t h = hash(k);
    const FlatChainTable<Key>& ht = jb.tables[h % jb.partitions];
    int32_t bi = ht.Find(k, h);
    if (bi < 0) continue;
    const uint32_t* ptup = &probe.tuples[pr * pw];
    for (; bi >= 0; bi = ht.next[bi]) {
      const uint32_t* btup = &build.tuples[static_cast<size_t>(bi) * bw];
      const uint32_t* ltup = build_left ? btup : ptup;
      const uint32_t* rtup = build_left ? ptup : btup;
      buf.insert(buf.end(), ltup, ltup + lw);
      buf.insert(buf.end(), rtup, rtup + rw);
    }
  }
}

// One probe range of the fused join→DISTINCT pipeline: walks the range's
// chains exactly like ProbeJoinRange, buffers matches in a bounded morsel
// (flushed at probe-row boundaries so the chain walk carries no extra
// branch), and batch-hashes + batch-offers each morsel to the range-local
// first-occurrence set. A free function so `hash`/`pkey` land in
// registers, matching the materializing probe's code shape.
template <typename Key, typename HashFn, typename ProbeKeyFn>
void FuseJoinRange(const JoinBuild<Key>& jb, IndexRange range, HashFn hash,
                   ProbeKeyFn pkey, const RowIdResult& build,
                   const RowIdResult& probe, bool build_left, size_t lw,
                   size_t rw, const std::vector<DistinctCol>& cols,
                   FusedDistinctSet& local, const ExecContext& ctx,
                   AbortSlot& slot, bool poll) {
  const size_t w = lw + rw;
  const size_t bw = build_left ? lw : rw;
  const size_t pw = build_left ? rw : lw;
  std::vector<uint32_t> morsel;
  morsel.reserve(2 * kFusedMorselRows * w);
  std::vector<uint64_t> mhashes(2 * kFusedMorselRows);
  auto flush = [&] {
    const size_t m = morsel.size() / w;
    if (mhashes.size() < m) mhashes.resize(m);
    for (size_t i = 0; i < m; ++i) {
      mhashes[i] = DistinctHash(cols, &morsel[i * w]);
    }
    local.ReserveBatch(m);
    for (size_t i = 0; i < m; ++i) {
      local.Insert(&morsel[i * w], mhashes[i]);
    }
    morsel.clear();
  };
  // Cooperative poll every kCancelStrideRows probe rows; the morsel
  // buffers keep their reservations across blocks, so an active deadline
  // costs one strided Continue() poll, not per-block reallocation.
  size_t tick = kCancelStrideRows;
  for (size_t pr = range.begin; pr < range.end; ++pr) {
    if (poll && --tick == 0) {
      tick = kCancelStrideRows;
      if (!slot.Continue(ctx)) return;
    }
    Key k{};
    if (!pkey(pr, &k)) continue;
    const uint64_t h = hash(k);
    const FlatChainTable<Key>& ht = jb.tables[h % jb.partitions];
    int32_t bi = ht.Find(k, h);
    if (bi < 0) continue;
    const uint32_t* ptup = &probe.tuples[pr * pw];
    for (; bi >= 0; bi = ht.next[bi]) {
      const uint32_t* btup = &build.tuples[static_cast<size_t>(bi) * bw];
      const uint32_t* ltup = build_left ? btup : ptup;
      const uint32_t* rtup = build_left ? ptup : btup;
      morsel.insert(morsel.end(), ltup, ltup + lw);
      morsel.insert(morsel.end(), rtup, rtup + rw);
    }
    // A single row's chain may overshoot the morsel target; it is bounded
    // by the build side and the unfused join would have materialized it
    // whole anyway.
    if (morsel.size() >= kFusedMorselRows * w) flush();
  }
  flush();
}

// Hash-table shape facts for the profile tree, filled only when someone
// is recording (the occupancy sums cost a pass over the build input).
struct JoinProfInfo {
  size_t partitions = 1;
  size_t build_keys = 0;  // non-NULL build rows inserted into the tables
  size_t capacity = 0;    // total slots across partition tables
};

template <typename Key>
void FillJoinProfInfo(const JoinBuild<Key>& jb, size_t bn,
                      JoinProfInfo* info) {
  if (info == nullptr) return;
  info->partitions = jb.partitions;
  size_t nulls = 0;
  for (size_t i = 0; i < bn; ++i) nulls += jb.bnull[i];
  info->build_keys = bn - nulls;
  for (const FlatChainTable<Key>& t : jb.tables) {
    info->capacity += t.mask + 1;
  }
}

// Partitioned hash join over typed keys. `bkey`/`pkey` extract the key of
// a build/probe row (returning false for NULL — NULL joins nothing), and
// `hash` mixes it. Output row order is the serial probe order for every
// thread count and every key type: partitions scan build rows in
// ascending order (so per-key chains are ascending) and probe ranges
// concatenate in index order.
template <typename Key, typename HashFn, typename BuildKeyFn,
          typename ProbeKeyFn>
std::vector<uint32_t> PartitionedJoin(const RowIdResult& left,
                                      const RowIdResult& right,
                                      bool build_left, size_t threads,
                                      HashFn hash, BuildKeyFn bkey,
                                      ProbeKeyFn pkey, const ExecContext& ctx,
                                      AbortSlot& slot,
                                      JoinProfInfo* info = nullptr) {
  const RowIdResult& build = build_left ? left : right;
  const RowIdResult& probe = build_left ? right : left;
  const size_t pn = probe.NumRows();
  const size_t lw = left.Width();
  const size_t rw = right.Width();

  JoinBuild<Key> jb = BuildJoinTables<Key>(build.NumRows(), threads, hash,
                                           bkey, ctx, slot);
  if (slot.Failed()) return {};
  FillJoinProfInfo(jb, build.NumRows(), info);

  // Probe in contiguous ranges; each range emits matches in probe-row
  // order into its own buffer and buffers concatenate in range order.
  const size_t probe_ways =
      (threads > 1 && pn >= kParallelProbeThreshold) ? threads : 1;
  const bool poll = NeedsPoll(ctx);
  std::vector<IndexRange> ranges = EqualRanges(pn, probe_ways);
  std::vector<std::vector<uint32_t>> parts(ranges.size());
  ParallelInvoke(ranges.size(), [&](size_t t) {
    StridedRun(ctx, slot, poll, ranges[t].begin, ranges[t].end,
               [&](size_t b, size_t e) {
                 EmitJoinRange(jb, {b, e}, hash, pkey, build, probe,
                               build_left, lw, rw, parts[t]);
               });
  });
  if (slot.Failed()) return {};
  size_t total = 0;
  for (const auto& buf : parts) total += buf.size();
  // The output tuple vector momentarily doubles the matches (per-range
  // buffers + concatenation); charge the concatenated copy — it is the
  // piece that survives the operator.
  if (Status st = ctx.Charge(total * sizeof(uint32_t), "join output tuples");
      !st.ok()) {
    slot.Fail(std::move(st));
    return {};
  }
  std::vector<uint32_t> tuples;
  tuples.reserve(total);
  for (auto& buf : parts) {
    tuples.insert(tuples.end(), buf.begin(), buf.end());
  }
  return tuples;
}

// Encoding-specialized key extraction for a hash join, shared by the
// materializing join and the fused join→DISTINCT. Invokes
// run(KeyTag<Key>{}, hash, bkey, pkey) with lambdas specialized for the
// key column pair, or returns false (without invoking run) when the
// encodings make the join provably empty: Value equality never crosses
// int64/double/string, so differently typed (non-mixed) key columns
// cannot match, and an all-NULL column joins nothing.
template <typename T>
struct KeyTag {
  using type = T;
};

template <typename Run>
bool WithTypedJoinKeys(const RowIdResult& build, const RowIdResult& probe,
                       const BoundColumn& bcol, const BoundColumn& pcol,
                       Run run) {
  const Encoding be = bcol.col->encoding();
  const Encoding pe = pcol.col->encoding();
  const bool impossible = be == Encoding::kEmpty || pe == Encoding::kEmpty ||
                          (be != pe && be != Encoding::kMixed &&
                           pe != Encoding::kMixed);
  if (impossible) return false;

  if (be == Encoding::kInt64 && pe == Encoding::kInt64) {
    // int64-specialized kernel: raw key arrays, no Value, no Value::Hash.
    const ColumnVector& bc = *bcol.col;
    const ColumnVector& pc = *pcol.col;
    run(KeyTag<int64_t>{},
        [](int64_t k) { return MixInt64(static_cast<uint64_t>(k)); },
        [&](size_t i, int64_t* k) {
          const size_t id = build.RowId(bcol, i);
          if (bc.IsNull(id)) return false;
          *k = bc.Int64At(id);
          return true;
        },
        [&](size_t i, int64_t* k) {
          const size_t id = probe.RowId(pcol, i);
          if (pc.IsNull(id)) return false;
          *k = pc.Int64At(id);
          return true;
        });
    return true;
  }

  if (be == Encoding::kDouble && pe == Encoding::kDouble) {
    const ColumnVector& bc = *bcol.col;
    const ColumnVector& pc = *pcol.col;
    run(KeyTag<double>{}, [](double k) { return std::hash<double>{}(k); },
        [&](size_t i, double* k) {
          const size_t id = build.RowId(bcol, i);
          if (bc.IsNull(id)) return false;
          *k = bc.DoubleAt(id);
          return true;
        },
        [&](size_t i, double* k) {
          const size_t id = probe.RowId(pcol, i);
          if (pc.IsNull(id)) return false;
          *k = pc.DoubleAt(id);
          return true;
        });
    return true;
  }

  if (be == Encoding::kDictString && pe == Encoding::kDictString) {
    // Dictionary kernel: join on build-side codes. Both dictionaries are
    // deduplicated, so "strings equal" <=> "codes equal after translating
    // probe codes into the build dictionary" — one string lookup per
    // distinct probe value, zero per row.
    const ColumnVector& bc = *bcol.col;
    const ColumnVector& pc = *pcol.col;
    const rel::StringDictionary& bd = bc.dict();
    const rel::StringDictionary& pd = pc.dict();
    const bool same_dict = &bd == &pd;
    std::vector<int64_t> trans;
    if (!same_dict) {
      trans.resize(pd.size());
      for (uint32_t code = 0; code < pd.size(); ++code) {
        std::optional<uint32_t> t = bd.Find(pd.At(code));
        trans[code] = t.has_value() ? static_cast<int64_t>(*t) : -1;
      }
    }
    run(KeyTag<uint32_t>{}, [](uint32_t k) { return MixInt64(k); },
        [&](size_t i, uint32_t* k) {
          const size_t id = build.RowId(bcol, i);
          if (bc.IsNull(id)) return false;
          *k = bc.CodeAt(id);
          return true;
        },
        [&](size_t i, uint32_t* k) {
          const size_t id = probe.RowId(pcol, i);
          if (pc.IsNull(id)) return false;
          const uint32_t code = pc.CodeAt(id);
          if (same_dict) {
            *k = code;
            return true;
          }
          const int64_t t = trans[code];
          if (t < 0) return false;
          *k = static_cast<uint32_t>(t);
          return true;
        });
    return true;
  }

  // Generic fallback (a mixed-encoding key column): owned Value keys with
  // Value hashing/equality, same partitioned structure.
  run(KeyTag<rel::Value>{},
      [](const rel::Value& k) { return k.Hash(); },
      [&](size_t i, rel::Value* k) {
        rel::Value v = bcol.col->ValueAt(build.RowId(bcol, i));
        if (v.is_null()) return false;
        *k = std::move(v);
        return true;
      },
      [&](size_t i, rel::Value* k) {
        rel::Value v = pcol.col->ValueAt(probe.RowId(pcol, i));
        if (v.is_null()) return false;
        *k = std::move(v);
        return true;
      });
  return true;
}

}  // namespace

Executor::Executor(const rel::Database* db, ExecOptions options)
    : db_(db), options_(options) {
  if (options_.threads == 0) options_.threads = DefaultThreadCount();
}

Result<ResultSet> Executor::Execute(const PlanNode& plan,
                                    obs::ProfileNode* parent) const {
  if (options_.engine == ExecEngine::kRowAtATime) {
    return ExecuteRowAtATime(plan, parent);
  }
  GRAPHGEN_ASSIGN_OR_RETURN(RowIdResult result, ExecuteColumnar(plan, parent));
  GRAPHGEN_FAULT_POINT("query.materialize");
  GRAPHGEN_RETURN_NOT_OK(options_.ctx.Check());
  GRAPHGEN_RETURN_NOT_OK(options_.ctx.Charge(
      result.NumRows() * result.Width() * sizeof(rel::Value),
      "materialized result values"));
  obs::ProfileNode* prof = OpNode(parent, "materialize_values");
  obs::Span span(prof);
  Result<ResultSet> out = result.Materialize(options_.threads);
  if (prof != nullptr && out.ok()) {
    prof->rows = static_cast<int64_t>(out->NumRows());
  }
  return out;
}

Result<RowIdResult> Executor::ExecuteColumnar(const PlanNode& plan,
                                              obs::ProfileNode* parent) const {
  switch (plan.kind()) {
    case PlanNode::Kind::kScan:
      return ScanColumnar(static_cast<const ScanNode&>(plan), parent);
    case PlanNode::Kind::kHashJoin:
      return JoinColumnar(static_cast<const HashJoinNode&>(plan), parent);
    case PlanNode::Kind::kProject:
      return ProjectColumnar(static_cast<const ProjectNode&>(plan), parent);
  }
  return Status::Internal("unknown plan node type");
}

Result<ResultSet> Executor::ExecuteRowAtATime(const PlanNode& plan,
                                              obs::ProfileNode* parent) const {
  switch (plan.kind()) {
    case PlanNode::Kind::kScan:
      return ScanRows(static_cast<const ScanNode&>(plan), parent);
    case PlanNode::Kind::kHashJoin:
      return JoinRows(static_cast<const HashJoinNode&>(plan), parent);
    case PlanNode::Kind::kProject:
      return ProjectRows(static_cast<const ProjectNode&>(plan), parent);
  }
  return Status::Internal("unknown plan node type");
}

// ---------------------------------------------------------------- columnar

Result<RowIdResult> Executor::ScanColumnar(const ScanNode& node,
                                           obs::ProfileNode* parent) const {
  GRAPHGEN_FAULT_POINT("query.scan");
  GRAPHGEN_RETURN_NOT_OK(options_.ctx.Check());
  obs::ProfileNode* prof = OpNode(parent, "scan", node.table());
  obs::Span span(prof);
  GRAPHGEN_ASSIGN_OR_RETURN(const rel::Table* table,
                            db_->GetTable(node.table()));
  for (const Predicate& p : node.predicates()) {
    if (p.column >= table->NumColumns()) {
      return Status::PlanError("predicate column out of range for table " +
                               node.table());
    }
  }
  for (const SemiJoin& sj : node.semi_joins()) {
    if (sj.column >= table->NumColumns()) {
      return Status::PlanError("semi-join column out of range for table " +
                               node.table());
    }
  }
  const size_t n = table->NumRows();
  if (n > std::numeric_limits<uint32_t>::max()) {
    return Status::Unsupported("table " + node.table() +
                               " exceeds 2^32 rows");
  }
  RowIdResult out;
  out.schema = table->schema();
  out.origins.assign(table->NumColumns(), node.table());
  out.sources = {table};
  out.columns.resize(table->NumColumns());
  for (size_t c = 0; c < table->NumColumns(); ++c) {
    out.columns[c] = {0, static_cast<uint32_t>(c)};
  }
  Metrics().scan_rows_in->Add(n);
  if (node.predicates().empty() && node.semi_joins().empty()) {
    GRAPHGEN_RETURN_NOT_OK(
        options_.ctx.Charge(n * sizeof(uint32_t), "scan selection vector"));
    out.tuples.resize(n);
    ParallelFor(
        n,
        [&](size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            out.tuples[i] = static_cast<uint32_t>(i);
          }
        },
        options_.threads);
    Metrics().scan_rows_out->Add(n);
    if (prof != nullptr) {
      prof->rows = static_cast<int64_t>(n);
      prof->AddStat("rows_in", static_cast<double>(n));
    }
    return out;
  }

  // Compile each predicate/filter against its column's physical encoding,
  // then evaluate column-at-a-time over morsel-sized sub-ranges into a
  // byte mask; the in-order collect makes the selection vector identical
  // to a serial scan's for every thread count.
  std::vector<CompiledPredicate> preds;
  preds.reserve(node.predicates().size());
  for (const Predicate& p : node.predicates()) {
    preds.push_back(CompilePredicate(table->column(p.column), p));
  }
  std::vector<CompiledSemiJoin> filters;
  filters.reserve(node.semi_joins().size());
  for (const SemiJoin& sj : node.semi_joins()) {
    filters.push_back(CompileSemiJoin(table->column(sj.column), sj));
  }

  ScopedCharge keep_charge;
  GRAPHGEN_RETURN_NOT_OK(
      keep_charge.Acquire(options_.ctx, n, "scan keep mask"));
  std::vector<uint8_t> keep(n, 1);
  const size_t ways =
      (options_.threads > 1 && n >= kParallelScanThreshold)
          ? options_.threads
          : 1;
  const bool poll = NeedsPoll(options_.ctx);
  AbortSlot slot;
  ParallelForRanges(EqualRanges(n, ways), [&](size_t begin, size_t end) {
    for (size_t mb = begin; mb < end; mb += kScanMorselRows) {
      if (poll && !slot.Continue(options_.ctx)) return;
      const size_t me = std::min(end, mb + kScanMorselRows);
      for (const CompiledPredicate& cp : preds) {
        cp.Apply(mb, me, keep.data());
      }
      for (const CompiledSemiJoin& cf : filters) {
        cf.Apply(mb, me, keep.data());
      }
    }
  });
  GRAPHGEN_RETURN_NOT_OK(slot.Take());
  GRAPHGEN_RETURN_NOT_OK(
      options_.ctx.Charge(n * sizeof(uint32_t), "scan selection vector"));
  out.tuples.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (keep[i] != 0) out.tuples.push_back(static_cast<uint32_t>(i));
  }
  Metrics().scan_rows_out->Add(out.tuples.size());
  if (prof != nullptr) {
    prof->rows = static_cast<int64_t>(out.tuples.size());
    prof->AddStat("rows_in", static_cast<double>(n));
    prof->AddStat("predicates", static_cast<double>(node.predicates().size()));
    prof->AddStat("semi_joins", static_cast<double>(node.semi_joins().size()));
    prof->AddStat("morsels", static_cast<double>(
        (n + kScanMorselRows - 1) / kScanMorselRows));
  }
  return out;
}

namespace {

// Shared setup of a hash join whose children have executed: validates the
// key columns, picks the build side (smaller input — the same heuristic
// as the row engine, so both engines emit identical row order), guards
// the int32 chain indices, and assembles the join's output metadata
// (concatenated sources/bindings + qualified schema) into *joined with
// tuples left empty. Used by the materializing join and the fused
// join→DISTINCT so their setups cannot drift apart.
struct JoinSides {
  bool build_left = false;
  size_t build_col = 0;
  size_t probe_col = 0;
};

Result<JoinSides> PrepareJoin(const HashJoinNode& node,
                              const RowIdResult& left,
                              const RowIdResult& right, RowIdResult* joined) {
  if (node.left_col() >= left.schema.NumColumns() ||
      node.right_col() >= right.schema.NumColumns()) {
    return Status::PlanError("join column out of range");
  }
  JoinSides sides;
  sides.build_left = left.NumRows() <= right.NumRows();
  sides.build_col = sides.build_left ? node.left_col() : node.right_col();
  sides.probe_col = sides.build_left ? node.right_col() : node.left_col();
  // FlatChainTable chains build rows through int32 indices.
  if ((sides.build_left ? left : right).NumRows() >
      std::numeric_limits<int32_t>::max()) {
    return Status::Unsupported("join build side exceeds 2^31 rows");
  }
  joined->sources = left.sources;
  joined->sources.insert(joined->sources.end(), right.sources.begin(),
                         right.sources.end());
  const size_t lw = left.Width();
  joined->columns = left.columns;
  for (const ColumnBinding& b : right.columns) {
    joined->columns.push_back(
        {static_cast<uint32_t>(b.source + lw), b.column});
  }
  JoinOutputSchema(left.schema, left.origins, right.schema, right.origins,
                   &joined->schema, &joined->origins);
  return sides;
}

}  // namespace

Result<RowIdResult> Executor::JoinColumnar(const HashJoinNode& node,
                                           obs::ProfileNode* parent) const {
  GRAPHGEN_FAULT_POINT("query.join.build.alloc");
  GRAPHGEN_RETURN_NOT_OK(options_.ctx.Check());
  obs::ProfileNode* prof = OpNode(parent, "hash_join");
  obs::Span span(prof);
  GRAPHGEN_ASSIGN_OR_RETURN(RowIdResult left,
                            ExecuteColumnar(node.left(), prof));
  GRAPHGEN_ASSIGN_OR_RETURN(RowIdResult right,
                            ExecuteColumnar(node.right(), prof));
  RowIdResult out;
  GRAPHGEN_ASSIGN_OR_RETURN(JoinSides sides,
                            PrepareJoin(node, left, right, &out));
  const RowIdResult& build = sides.build_left ? left : right;
  const RowIdResult& probe = sides.build_left ? right : left;
  const BoundColumn bcol = build.Bind(sides.build_col);
  const BoundColumn pcol = probe.Bind(sides.probe_col);
  const size_t threads = options_.threads;

  // An impossible key-encoding pair (WithTypedJoinKeys returns false)
  // leaves tuples empty — correct schema/bindings, no rows.
  JoinProfInfo info;
  AbortSlot slot;
  WithTypedJoinKeys(
      build, probe, bcol, pcol,
      [&](auto tag, auto hash, auto bkey, auto pkey) {
        using Key = typename decltype(tag)::type;
        out.tuples = PartitionedJoin<Key>(left, right, sides.build_left,
                                          threads, hash, bkey, pkey,
                                          options_.ctx, slot,
                                          prof != nullptr ? &info : nullptr);
      });
  GRAPHGEN_RETURN_NOT_OK(slot.Take());
  const size_t matches = out.NumRows();
  Metrics().join_build_rows->Add(build.NumRows());
  Metrics().join_probe_rows->Add(probe.NumRows());
  Metrics().join_matches->Add(matches);
  if (prof != nullptr) {
    prof->rows = static_cast<int64_t>(matches);
    prof->AddStat("build_rows", static_cast<double>(build.NumRows()));
    prof->AddStat("probe_rows", static_cast<double>(probe.NumRows()));
    prof->AddStat("partitions", static_cast<double>(info.partitions));
    if (info.capacity > 0) {
      prof->AddStat("load_factor", static_cast<double>(info.build_keys) /
                                       static_cast<double>(info.capacity));
    }
    prof->AddNote("build_side", sides.build_left ? "left" : "right");
  }
  return out;
}

Result<RowIdResult> Executor::JoinDistinctColumnar(
    const ProjectNode& node, const HashJoinNode& join,
    obs::ProfileNode* parent) const {
  GRAPHGEN_FAULT_POINT("query.join_distinct.alloc");
  GRAPHGEN_RETURN_NOT_OK(options_.ctx.Check());
  obs::ProfileNode* prof = OpNode(parent, "join_distinct");
  obs::Span span(prof);
  GRAPHGEN_ASSIGN_OR_RETURN(RowIdResult left,
                            ExecuteColumnar(join.left(), prof));
  GRAPHGEN_ASSIGN_OR_RETURN(RowIdResult right,
                            ExecuteColumnar(join.right(), prof));
  // The join initially contributes only its output *metadata* (sources,
  // bindings, qualified schema); whether its tuple vector is ever built
  // is the fusion decision below.
  RowIdResult joined;
  GRAPHGEN_ASSIGN_OR_RETURN(JoinSides sides,
                            PrepareJoin(join, left, right, &joined));
  const bool build_left = sides.build_left;
  const RowIdResult& build = build_left ? left : right;
  const RowIdResult& probe = build_left ? right : left;
  const size_t lw = left.Width();
  const size_t rw = right.Width();

  RowIdResult out;
  GRAPHGEN_RETURN_NOT_OK(ProjectOutputSchema(
      node, joined.schema, joined.origins, &out.schema, &out.origins));
  out.sources = joined.sources;
  out.columns.reserve(node.columns().size());
  for (size_t c : node.columns()) out.columns.push_back(joined.columns[c]);

  std::vector<DistinctCol> cols;
  cols.reserve(node.columns().size());
  for (size_t c : node.columns()) {
    cols.push_back(DistinctCol::Make(joined.Bind(c)));
  }

  const BoundColumn bcol = build.Bind(sides.build_col);
  const BoundColumn pcol = probe.Bind(sides.probe_col);
  const size_t threads = options_.threads;
  const size_t w = lw + rw;
  const size_t pn = probe.NumRows();

  bool fused = false;
  size_t matches = 0;
  size_t fused_morsels = 0;
  JoinProfInfo info;
  AbortSlot slot;
  const bool poll = NeedsPoll(options_.ctx);
  WithTypedJoinKeys(build, probe, bcol, pcol, [&](auto tag, auto hash,
                                                  auto bkey, auto pkey) {
    using Key = typename decltype(tag)::type;
    JoinBuild<Key> jb = BuildJoinTables<Key>(build.NumRows(), threads, hash,
                                             bkey, options_.ctx, slot);
    if (slot.Failed()) return;
    FillJoinProfInfo(jb, build.NumRows(), prof != nullptr ? &info : nullptr);

    const size_t probe_ways =
        (threads > 1 && pn >= kParallelProbeThreshold) ? threads : 1;
    std::vector<IndexRange> ranges = EqualRanges(pn, probe_ways);

    // Count pass: O(probe rows) chain-length lookups give every range's
    // exact match count — and therefore the join's exact output size —
    // before a single tuple is emitted.
    std::vector<size_t> expected(ranges.size(), 0);
    ParallelInvoke(ranges.size(), [&](size_t t) {
      StridedRun(options_.ctx, slot, poll, ranges[t].begin, ranges[t].end,
                 [&](size_t b, size_t e) {
                   expected[t] += CountJoinRange(jb, {b, e}, hash, pkey);
                 });
    });
    if (slot.Failed()) return;
    size_t total_matches = 0;
    for (size_t e : expected) total_matches += e;
    matches = total_matches;
    for (size_t e : expected) {
      fused_morsels += (e + kFusedMorselRows - 1) / kFusedMorselRows;
    }

    // Fusion trades the materialize→rehash→re-read passes for streaming
    // dedup; that wins once the output is too large to stay
    // cache-resident and costs slightly otherwise, so small outputs
    // materialize and take the classic DISTINCT below.
    fused = total_matches * w * sizeof(uint32_t) >=
            std::max<size_t>(options_.fuse_min_output_bytes, 1);
    if (!fused) {
      // Materializing branch: per-range buffers plus the concatenated
      // copy peak at 2x the exact output size; charge both up front.
      if (Status st = options_.ctx.Charge(
              2 * total_matches * w * sizeof(uint32_t),
              "materialized join output");
          !st.ok()) {
        slot.Fail(std::move(st));
        return;
      }
      std::vector<std::vector<uint32_t>> parts(ranges.size());
      ParallelInvoke(ranges.size(), [&](size_t t) {
        parts[t].reserve(expected[t] * w);
        StridedRun(options_.ctx, slot, poll, ranges[t].begin, ranges[t].end,
                   [&](size_t b, size_t e) {
                     EmitJoinRange(jb, {b, e}, hash, pkey, build, probe,
                                   build_left, lw, rw, parts[t]);
                   });
      });
      if (slot.Failed()) return;
      size_t total = 0;
      for (const auto& buf : parts) total += buf.size();
      joined.tuples.reserve(total);
      for (auto& buf : parts) {
        joined.tuples.insert(joined.tuples.end(), buf.begin(), buf.end());
      }
      return;
    }

    // Each probe range streams its matches into a range-local
    // first-occurrence set through a bounded morsel buffer: matches
    // accumulate as concatenated tuples, and a full morsel is hashed in
    // one tight pass and offered to the set in a second — the same
    // batched loop shape as the unfused operators, without ever holding
    // more than one morsel of un-deduplicated join output per thread.
    // The exact per-range counts presize each set, so the offer loop
    // never rehashes.
    std::vector<std::unique_ptr<FusedDistinctSet>> locals(ranges.size());
    ParallelInvoke(ranges.size(), [&](size_t t) {
      // Worst case every offer survives: slot table + tuple/hash storage.
      const size_t set_bytes =
          PowerOfTwoCapacity(expected[t]) * sizeof(uint32_t) +
          expected[t] * (w * sizeof(uint32_t) + sizeof(uint64_t));
      if (Status st = options_.ctx.Charge(set_bytes, "fused DISTINCT set");
          !st.ok()) {
        slot.Fail(std::move(st));
        return;
      }
      locals[t] = std::make_unique<FusedDistinctSet>(w, cols, expected[t]);
      FuseJoinRange(jb, ranges[t], hash, pkey, build, probe, build_left, lw,
                    rw, cols, *locals[t], options_.ctx, slot, poll);
    });
    if (slot.Failed()) return;

    if (ranges.size() == 1) {
      out.tuples.assign(locals[0]->tuples(),
                        locals[0]->tuples() + locals[0]->size() * w);
      return;
    }
    // A range's survivors are its in-range-first occurrences in emission
    // order, so merging ranges in index order keeps exactly the
    // globally-first occurrence of every key, in the serial join's
    // emission order — bit-identical to the unfused operator chain.
    size_t total = 0;
    for (const auto& local : locals) total += local->size();
    FusedDistinctSet global(w, cols, total);
    for (const auto& local : locals) {
      const uint32_t* lt = local->tuples();
      const uint64_t* lh = local->hashes();
      global.ReserveBatch(local->size());
      for (size_t i = 0; i < local->size(); ++i) {
        global.Insert(lt + i * w, lh[i]);
      }
    }
    out.tuples.assign(global.tuples(), global.tuples() + global.size() * w);
  });
  GRAPHGEN_RETURN_NOT_OK(slot.Take());
  Metrics().join_build_rows->Add(build.NumRows());
  Metrics().join_probe_rows->Add(probe.NumRows());
  Metrics().join_matches->Add(matches);
  (fused ? Metrics().fused_pipelines : Metrics().unfused_pipelines)->Add(1);
  if (prof != nullptr) {
    prof->AddStat("build_rows", static_cast<double>(build.NumRows()));
    prof->AddStat("probe_rows", static_cast<double>(probe.NumRows()));
    prof->AddStat("join_matches", static_cast<double>(matches));
    prof->AddStat("partitions", static_cast<double>(info.partitions));
    if (info.capacity > 0) {
      prof->AddStat("load_factor", static_cast<double>(info.build_keys) /
                                       static_cast<double>(info.capacity));
    }
    prof->AddStat("est_join_bytes",
                  static_cast<double>(matches * w * sizeof(uint32_t)));
    prof->AddNote("fused", fused ? "yes" : "no");
  }
  if (!fused) {
    // Below the fusion threshold (or an impossible key pairing): the
    // materialized join runs through the ordinary projection tail.
    return ProjectFromChild(node, std::move(joined), prof);
  }
  Metrics().distinct_rows_in->Add(matches);
  Metrics().distinct_rows_out->Add(out.NumRows());
  if (prof != nullptr) {
    prof->rows = static_cast<int64_t>(out.NumRows());
    prof->AddStat("morsels", static_cast<double>(fused_morsels));
  }
  return out;
}

Result<RowIdResult> Executor::ProjectColumnar(const ProjectNode& node,
                                              obs::ProfileNode* parent) const {
  if (node.distinct() && options_.fuse_join_distinct &&
      node.child().kind() == PlanNode::Kind::kHashJoin) {
    return JoinDistinctColumnar(
        node, static_cast<const HashJoinNode&>(node.child()), parent);
  }
  obs::ProfileNode* prof =
      OpNode(parent, node.distinct() ? "project_distinct" : "project");
  obs::Span span(prof);
  GRAPHGEN_ASSIGN_OR_RETURN(RowIdResult child,
                            ExecuteColumnar(node.child(), prof));
  return ProjectFromChild(node, std::move(child), prof);
}

Result<RowIdResult> Executor::ProjectFromChild(const ProjectNode& node,
                                               RowIdResult child,
                                               obs::ProfileNode* prof) const {
  GRAPHGEN_FAULT_POINT("query.distinct.alloc");
  GRAPHGEN_RETURN_NOT_OK(options_.ctx.Check());
  RowIdResult out;
  GRAPHGEN_RETURN_NOT_OK(ProjectOutputSchema(node, child.schema, child.origins,
                                             &out.schema, &out.origins));
  out.sources = child.sources;
  out.columns.reserve(node.columns().size());
  for (size_t c : node.columns()) out.columns.push_back(child.columns[c]);
  if (!node.distinct()) {
    out.tuples = std::move(child.tuples);
    if (prof != nullptr) prof->rows = static_cast<int64_t>(out.NumRows());
    return out;
  }

  // DISTINCT: keep the first occurrence of every projected key, in input
  // order. Hashing and equality run on the typed base columns (raw int64
  // arrays, dictionary codes) — a row never materializes a Value. Parallel
  // mode partitions rows by key hash; within a partition rows are visited
  // in ascending index order, so each partition's survivors are exactly
  // the globally-first occurrences of its keys, and the index merge
  // reproduces the serial order bit for bit.
  const size_t n = child.NumRows();
  if (n > std::numeric_limits<uint32_t>::max()) {
    return Status::Unsupported("DISTINCT input exceeds 2^32 rows");
  }
  std::vector<DistinctCol> cols;
  cols.reserve(node.columns().size());
  for (size_t c : node.columns()) {
    cols.push_back(DistinctCol::Make(child.Bind(c)));
  }

  const size_t w0 = child.Width();
  // Hash array + first-occurrence slot tables are DISTINCT scratch,
  // refunded when the operator returns; the poll stride keeps an armed
  // deadline responsive even on a single huge partition.
  ScopedCharge scratch;
  GRAPHGEN_RETURN_NOT_OK(scratch.Acquire(
      options_.ctx,
      n * sizeof(uint64_t) + PowerOfTwoCapacity(n) * sizeof(uint32_t),
      "DISTINCT hash scratch"));
  const bool poll = NeedsPoll(options_.ctx);
  AbortSlot slot;
  std::vector<uint64_t> hashes(n);
  ParallelFor(
      n,
      [&](size_t begin, size_t end) {
        StridedRun(options_.ctx, slot, poll, begin, end,
                   [&](size_t b, size_t e) {
                     for (size_t i = b; i < e; ++i) {
                       // FNV combine + final avalanche (the flat set masks
                       // low bits).
                       hashes[i] = DistinctHash(cols, &child.tuples[i * w0]);
                     }
                   });
      },
      options_.threads);
  GRAPHGEN_RETURN_NOT_OK(slot.Take());

  std::vector<uint32_t> survivors;
  const size_t partitions =
      (options_.threads > 1 && n >= kParallelDistinctThreshold)
          ? std::min(options_.threads, kMaxPartitions)
          : 1;
  if (partitions == 1) {
    FlatDistinctSet seen(n, hashes, child, cols);
    survivors.reserve(n);
    size_t tick = kCancelStrideRows;
    for (size_t i = 0; i < n; ++i) {
      if (poll && --tick == 0) {
        tick = kCancelStrideRows;
        GRAPHGEN_RETURN_NOT_OK(options_.ctx.Check());
      }
      if (seen.Insert(static_cast<uint32_t>(i))) {
        survivors.push_back(static_cast<uint32_t>(i));
      }
    }
  } else {
    std::vector<std::vector<uint32_t>> parts(partitions);
    ParallelInvoke(partitions, [&](size_t p) {
      size_t mine = 0;
      for (size_t i = 0; i < n; ++i) {
        if (hashes[i] % partitions == p) ++mine;
      }
      FlatDistinctSet seen(mine, hashes, child, cols);
      StridedRun(options_.ctx, slot, poll, 0, n, [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i) {
          if (hashes[i] % partitions != p) continue;
          if (seen.Insert(static_cast<uint32_t>(i))) {
            parts[p].push_back(static_cast<uint32_t>(i));
          }
        }
      });
    });
    GRAPHGEN_RETURN_NOT_OK(slot.Take());
    size_t total = 0;
    for (const auto& part : parts) total += part.size();
    survivors.reserve(total);
    for (const auto& part : parts) {
      survivors.insert(survivors.end(), part.begin(), part.end());
    }
    std::sort(survivors.begin(), survivors.end());
  }

  const size_t w = child.Width();
  out.tuples.resize(survivors.size() * w);
  ParallelFor(
      survivors.size(),
      [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          const uint32_t* src = &child.tuples[survivors[i] * w];
          std::copy(src, src + w, &out.tuples[i * w]);
        }
      },
      options_.threads);
  Metrics().distinct_rows_in->Add(n);
  Metrics().distinct_rows_out->Add(survivors.size());
  if (prof != nullptr) {
    prof->rows = static_cast<int64_t>(survivors.size());
    prof->AddStat("distinct_in", static_cast<double>(n));
    prof->AddStat("distinct_partitions", static_cast<double>(partitions));
  }
  return out;
}

// ------------------------------------------------------------ row-at-a-time

Result<ResultSet> Executor::ScanRows(const ScanNode& node,
                                     obs::ProfileNode* parent) const {
  GRAPHGEN_FAULT_POINT("query.row.scan");
  GRAPHGEN_RETURN_NOT_OK(options_.ctx.Check());
  obs::ProfileNode* prof = OpNode(parent, "scan", node.table());
  obs::Span span(prof);
  GRAPHGEN_ASSIGN_OR_RETURN(const rel::Table* table,
                            db_->GetTable(node.table()));
  ResultSet out;
  out.schema = table->schema();
  out.origins.assign(table->NumColumns(), node.table());
  for (const Predicate& p : node.predicates()) {
    if (p.column >= table->NumColumns()) {
      return Status::PlanError("predicate column out of range for table " +
                               node.table());
    }
  }
  for (const SemiJoin& sj : node.semi_joins()) {
    if (sj.column >= table->NumColumns()) {
      return Status::PlanError("semi-join column out of range for table " +
                               node.table());
    }
  }
  const bool unfiltered =
      node.predicates().empty() && node.semi_joins().empty();
  out.rows.reserve(unfiltered ? table->NumRows() : 0);
  const bool poll = NeedsPoll(options_.ctx);
  for (size_t i = 0; i < table->NumRows(); ++i) {
    if (poll && i % kCancelStrideRows == 0) {
      GRAPHGEN_RETURN_NOT_OK(options_.ctx.Check());
    }
    rel::Row row = table->row(i);
    bool keep = true;
    for (const Predicate& p : node.predicates()) {
      if (!p.Matches(row)) {
        keep = false;
        break;
      }
    }
    for (const SemiJoin& sj : node.semi_joins()) {
      if (!keep) break;
      if (!sj.keys->Contains(row[sj.column])) keep = false;
    }
    if (keep) out.rows.push_back(std::move(row));
  }
  if (prof != nullptr) {
    prof->rows = static_cast<int64_t>(out.NumRows());
    prof->AddStat("rows_in", static_cast<double>(table->NumRows()));
  }
  return out;
}

Result<ResultSet> Executor::JoinRows(const HashJoinNode& node,
                                     obs::ProfileNode* parent) const {
  GRAPHGEN_FAULT_POINT("query.row.join");
  GRAPHGEN_RETURN_NOT_OK(options_.ctx.Check());
  obs::ProfileNode* prof = OpNode(parent, "hash_join");
  obs::Span span(prof);
  GRAPHGEN_ASSIGN_OR_RETURN(ResultSet left,
                            ExecuteRowAtATime(node.left(), prof));
  GRAPHGEN_ASSIGN_OR_RETURN(ResultSet right,
                            ExecuteRowAtATime(node.right(), prof));
  if (node.left_col() >= left.schema.NumColumns() ||
      node.right_col() >= right.schema.NumColumns()) {
    return Status::PlanError("join column out of range");
  }

  // Build on the smaller side.
  const bool build_left = left.NumRows() <= right.NumRows();
  const ResultSet& build = build_left ? left : right;
  const ResultSet& probe = build_left ? right : left;
  const size_t build_col = build_left ? node.left_col() : node.right_col();
  const size_t probe_col = build_left ? node.right_col() : node.left_col();

  std::unordered_map<rel::Value, std::vector<size_t>, rel::ValueHash> ht;
  ht.reserve(build.NumRows());
  const bool build_poll = NeedsPoll(options_.ctx);
  for (size_t i = 0; i < build.NumRows(); ++i) {
    if (build_poll && i % kCancelStrideRows == 0) {
      GRAPHGEN_RETURN_NOT_OK(options_.ctx.Check());
    }
    const rel::Value& key = build.rows[i][build_col];
    if (key.is_null()) continue;  // SQL semantics: NULL joins nothing.
    ht[key].push_back(i);
  }

  ResultSet out;
  JoinOutputSchema(left.schema, left.origins, right.schema, right.origins,
                   &out.schema, &out.origins);
  const bool poll = NeedsPoll(options_.ctx);
  size_t tick = kCancelStrideRows;
  for (const rel::Row& prow : probe.rows) {
    if (poll && --tick == 0) {
      tick = kCancelStrideRows;
      GRAPHGEN_RETURN_NOT_OK(options_.ctx.Check());
    }
    const rel::Value& key = prow[probe_col];
    if (key.is_null()) continue;
    auto it = ht.find(key);
    if (it == ht.end()) continue;
    for (size_t bi : it->second) {
      const rel::Row& brow = build.rows[bi];
      rel::Row joined;
      joined.reserve(left.schema.NumColumns() + right.schema.NumColumns());
      const rel::Row& lrow = build_left ? brow : prow;
      const rel::Row& rrow = build_left ? prow : brow;
      joined.insert(joined.end(), lrow.begin(), lrow.end());
      joined.insert(joined.end(), rrow.begin(), rrow.end());
      out.rows.push_back(std::move(joined));
    }
  }
  if (prof != nullptr) {
    prof->rows = static_cast<int64_t>(out.NumRows());
    prof->AddStat("build_rows", static_cast<double>(build.NumRows()));
    prof->AddStat("probe_rows", static_cast<double>(probe.NumRows()));
  }
  return out;
}

Result<ResultSet> Executor::ProjectRows(const ProjectNode& node,
                                        obs::ProfileNode* parent) const {
  GRAPHGEN_FAULT_POINT("query.row.project");
  GRAPHGEN_RETURN_NOT_OK(options_.ctx.Check());
  obs::ProfileNode* prof =
      OpNode(parent, node.distinct() ? "project_distinct" : "project");
  obs::Span span(prof);
  GRAPHGEN_ASSIGN_OR_RETURN(ResultSet child,
                            ExecuteRowAtATime(node.child(), prof));
  ResultSet out;
  GRAPHGEN_RETURN_NOT_OK(ProjectOutputSchema(node, child.schema, child.origins,
                                             &out.schema, &out.origins));

  std::unordered_set<rel::Row, RowHash> seen;
  if (node.distinct()) seen.reserve(child.NumRows());
  out.rows.reserve(child.NumRows());
  const bool poll = NeedsPoll(options_.ctx);
  size_t tick = kCancelStrideRows;
  for (const rel::Row& row : child.rows) {
    if (poll && --tick == 0) {
      tick = kCancelStrideRows;
      GRAPHGEN_RETURN_NOT_OK(options_.ctx.Check());
    }
    rel::Row projected;
    projected.reserve(node.columns().size());
    for (size_t c : node.columns()) projected.push_back(row[c]);
    if (node.distinct()) {
      if (!seen.insert(projected).second) continue;
    }
    out.rows.push_back(std::move(projected));
  }
  if (prof != nullptr) {
    prof->rows = static_cast<int64_t>(out.NumRows());
    if (node.distinct()) {
      prof->AddStat("distinct_in", static_cast<double>(child.NumRows()));
    }
  }
  return out;
}

}  // namespace graphgen::query
