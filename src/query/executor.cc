#include "query/executor.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include <bit>

#include "common/cancel.h"
#include "common/faultpoints.h"
#include "common/hash.h"
#include "common/parallel.h"
#include "common/simd.h"
#include "obs/metrics.h"

namespace graphgen::query {

namespace {

// Engine-level counters in the global registry. Pointers are resolved
// once (registry lookups take a lock; Add() does not) and shared by every
// Executor instance.
struct ExecMetrics {
  obs::Counter* scan_rows_in;
  obs::Counter* scan_rows_out;
  obs::Counter* join_build_rows;
  obs::Counter* join_probe_rows;
  obs::Counter* join_matches;
  obs::Counter* distinct_rows_in;
  obs::Counter* distinct_rows_out;
  obs::Counter* fused_pipelines;
  obs::Counter* unfused_pipelines;
  obs::Counter* simd_scan_vector;
  obs::Counter* simd_scan_scalar;
  obs::Counter* simd_probe_vector;
  obs::Counter* simd_probe_scalar;
  obs::Counter* simd_translate_vector;
  obs::Counter* simd_translate_scalar;
};

const ExecMetrics& Metrics() {
  static const ExecMetrics m = [] {
    obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
    ExecMetrics em;
    em.scan_rows_in = r.GetCounter("query.scan.rows_in");
    em.scan_rows_out = r.GetCounter("query.scan.rows_out");
    em.join_build_rows = r.GetCounter("query.join.build_rows");
    em.join_probe_rows = r.GetCounter("query.join.probe_rows");
    em.join_matches = r.GetCounter("query.join.matches");
    em.distinct_rows_in = r.GetCounter("query.distinct.rows_in");
    em.distinct_rows_out = r.GetCounter("query.distinct.rows_out");
    em.fused_pipelines = r.GetCounter("query.fused_pipelines");
    em.unfused_pipelines = r.GetCounter("query.unfused_pipelines");
    em.simd_scan_vector = r.GetCounter("query.simd.scan_vector");
    em.simd_scan_scalar = r.GetCounter("query.simd.scan_scalar");
    em.simd_probe_vector = r.GetCounter("query.simd.probe_vector");
    em.simd_probe_scalar = r.GetCounter("query.simd.probe_scalar");
    em.simd_translate_vector = r.GetCounter("query.simd.translate_vector");
    em.simd_translate_scalar = r.GetCounter("query.simd.translate_scalar");
    return em;
  }();
  return m;
}

// True when the request context can actually fail a poll (a live cancel
// flag or a deadline); an inert context skips the strided polling paths
// entirely, so the no-deadline fast path stays at seed cost.
bool NeedsPoll(const ExecContext& ctx) {
  return ctx.cancel.cancellable() || ctx.has_deadline;
}

// Runs body(begin, end) over [begin, end) in kCancelStrideRows blocks,
// polling the context between blocks; the first failure parks its Status
// in the slot and the remaining blocks are skipped. With poll == false the
// body runs once over the whole range (no per-block cost).
template <typename Body>
void StridedRun(const ExecContext& ctx, AbortSlot& slot, bool poll,
                size_t begin, size_t end, Body body) {
  if (!poll) {
    body(begin, end);
    return;
  }
  for (size_t b = begin; b < end; b += kCancelStrideRows) {
    if (!slot.Continue(ctx)) return;
    body(b, std::min(end, b + kCancelStrideRows));
  }
}

// The per-operator profile child for an operator about to run, or null
// when nobody is recording.
obs::ProfileNode* OpNode(obs::ProfileNode* parent, std::string_view name,
                         std::string_view detail = {}) {
  if (parent == nullptr || !obs::Enabled()) return nullptr;
  return parent->AddChild(name, detail);
}

using rel::ColumnVector;
using Encoding = rel::ColumnVector::Encoding;

// Below these sizes the spawn/partition overhead outweighs the win; the
// operator runs its serial path (output is identical either way).
constexpr size_t kParallelScanThreshold = 1 << 13;
constexpr size_t kParallelProbeThreshold = 1 << 12;
constexpr size_t kPartitionedBuildThreshold = 1 << 11;
constexpr size_t kParallelDistinctThreshold = 1 << 13;
constexpr size_t kMaxPartitions = 16;
// Predicate evaluation works column-at-a-time over sub-ranges this size,
// so every predicate's pass over a morsel stays in cache.
constexpr size_t kScanMorselRows = 1 << 11;
// The fused join→DISTINCT pipeline buffers probe matches in morsels of
// this many tuples, then batch-hashes and batch-inserts each morsel in
// tight per-phase loops: the bounded buffer stays in L1/L2 and the hash
// pass pipelines like the unfused operator's, while the join's full
// output is still never materialized.
constexpr size_t kFusedMorselRows = 1 << 15;

// Combines hashes of projected row values (FNV-style mix).
struct RowHash {
  size_t operator()(const rel::Row& r) const {
    size_t h = 1469598103934665603ull;
    for (const rel::Value& v : r) {
      h ^= v.Hash();
      h *= 1099511628211ull;
    }
    return h;
  }
};

// Splits [0, n) into at most `parts` equal contiguous chunks.
std::vector<IndexRange> EqualRanges(size_t n, size_t parts) {
  parts = std::max<size_t>(1, std::min(parts, n));
  const size_t chunk = (n + parts - 1) / parts;
  std::vector<IndexRange> ranges;
  for (size_t begin = 0; begin < n; begin += chunk) {
    ranges.push_back({begin, std::min(n, begin + chunk)});
  }
  if (ranges.empty()) ranges.push_back({0, 0});
  return ranges;
}

// Output schema of a hash join: left columns keep their names; a right
// column whose name is already taken is qualified as "<table>.<name>"
// and, if even that collides (self-joins), suffixed "#2", "#3", ... —
// deterministic, so downstream name resolution is unambiguous.
void JoinOutputSchema(const rel::Schema& left,
                      const std::vector<std::string>& left_origins,
                      const rel::Schema& right,
                      const std::vector<std::string>& right_origins,
                      rel::Schema* out_schema,
                      std::vector<std::string>* out_origins) {
  std::vector<rel::ColumnDef> cols = left.columns();
  std::unordered_set<std::string> taken;
  taken.reserve(cols.size() + right.NumColumns());
  for (const rel::ColumnDef& c : cols) taken.insert(c.name);
  out_origins->clear();
  out_origins->reserve(cols.size() + right.NumColumns());
  for (size_t i = 0; i < left.NumColumns(); ++i) {
    out_origins->push_back(i < left_origins.size() ? left_origins[i] : "");
  }
  for (size_t i = 0; i < right.NumColumns(); ++i) {
    rel::ColumnDef def = right.column(i);
    const std::string origin =
        i < right_origins.size() ? right_origins[i] : "";
    if (taken.contains(def.name) && !origin.empty()) {
      def.name = origin + "." + def.name;
    }
    if (taken.contains(def.name)) {
      const std::string base = def.name;
      for (int k = 2;; ++k) {
        def.name = base + "#" + std::to_string(k);
        if (!taken.contains(def.name)) break;
      }
    }
    taken.insert(def.name);
    out_origins->push_back(origin);
    cols.push_back(std::move(def));
  }
  *out_schema = rel::Schema(std::move(cols));
}

// Projection output schema shared by both engines.
Status ProjectOutputSchema(const ProjectNode& node, const rel::Schema& child,
                           const std::vector<std::string>& child_origins,
                           rel::Schema* out_schema,
                           std::vector<std::string>* out_origins) {
  for (size_t c : node.columns()) {
    if (c >= child.NumColumns()) {
      return Status::PlanError("projection column out of range");
    }
  }
  std::vector<rel::ColumnDef> cols;
  cols.reserve(node.columns().size());
  out_origins->clear();
  out_origins->reserve(node.columns().size());
  for (size_t i = 0; i < node.columns().size(); ++i) {
    const size_t src = node.columns()[i];
    rel::ColumnDef def = child.column(src);
    if (i < node.output_names().size() && !node.output_names()[i].empty()) {
      def.name = node.output_names()[i];
    }
    cols.push_back(std::move(def));
    out_origins->push_back(src < child_origins.size() ? child_origins[src]
                                                      : "");
  }
  *out_schema = rel::Schema(std::move(cols));
  return Status::OK();
}

// ------------------------------------------------- typed scan evaluation

// A predicate compiled against the physical encoding of its column. The
// compile step hoists everything value-independent out of the row loop:
// the NULL verdict, comparisons that cannot read the cell (a string
// constant against an int64 column), for dictionary columns one verdict
// per distinct string instead of per row — and, for numeric columns, the
// reduction of the row loop to a single simd mask kernel. Ordering on an
// int64 column scalar-promotes through double (Value semantics); the
// compile step converts that bound to a pure int64 threshold once
// (int64→double conversion is monotone, see MaxInt64WithDoubleLess), so
// the kernel runs integer compares only — AVX2 has no epi64→pd convert.
struct CompiledPredicate {
  enum class Kind { kConst, kI64Mask, kF64Mask, kCodeTable, kGeneric };

  const ColumnVector* col = nullptr;
  const Predicate* pred = nullptr;
  Kind kind = Kind::kGeneric;
  bool null_match = false;
  bool const_match = false;           // kConst
  simd::I64MaskOp i64_op = simd::I64MaskOp::kEq;  // kI64Mask
  int64_t i64_bound = 0;
  int64_t i64_eq = 0;
  simd::F64MaskOp f64_op = simd::F64MaskOp::kEq;  // kF64Mask
  double f64_bound = 0.0;
  bool gather_ok = false;             // kCodeTable: codes fit i32 gathers
  std::vector<uint32_t> code_match;   // kCodeTable, 0/1 verdict per code

  void Apply(simd::Tier tier, size_t begin, size_t end, uint8_t* keep) const;
};

CompiledPredicate CompilePredicate(const ColumnVector& col,
                                   const Predicate& p) {
  CompiledPredicate cp;
  cp.col = &col;
  cp.pred = &p;
  cp.null_match = p.MatchesValue(rel::Value::Null());
  const rel::ValueType ct = p.constant.type();
  const bool const_numeric =
      ct == rel::ValueType::kInt64 || ct == rel::ValueType::kDouble;
  auto const_verdict = [&](bool match) {
    cp.kind = CompiledPredicate::Kind::kConst;
    cp.const_match = match;
  };
  auto i64_mask = [&](simd::I64MaskOp op, int64_t bound, int64_t eq) {
    cp.kind = CompiledPredicate::Kind::kI64Mask;
    cp.i64_op = op;
    cp.i64_bound = bound;
    cp.i64_eq = eq;
  };
  // `(double)x < cd` over an int64 column, as a pure int64 compare; when
  // no int64 satisfies it the whole predicate term is constant false.
  auto i64_less = [&](double cd) {
    const std::optional<int64_t> b = simd::MaxInt64WithDoubleLess(cd);
    if (b.has_value()) {
      i64_mask(simd::I64MaskOp::kLe, *b, 0);
    } else {
      const_verdict(false);
    }
  };
  auto i64_greater = [&](double cd) {
    const std::optional<int64_t> b = simd::MinInt64WithDoubleGreater(cd);
    if (b.has_value()) {
      i64_mask(simd::I64MaskOp::kGe, *b, 0);
    } else {
      const_verdict(false);
    }
  };
  switch (col.encoding()) {
    case Encoding::kEmpty:
      const_verdict(cp.null_match);  // every cell is NULL
      break;
    case Encoding::kInt64:
      if (ct == rel::ValueType::kInt64) {
        // Ordering promotes through double exactly like Value::operator<;
        // equality stays exact int64 like Value::operator==.
        const int64_t c = p.constant.AsInt64();
        const double cd = static_cast<double>(c);
        switch (p.op) {
          case CompareOp::kEq: i64_mask(simd::I64MaskOp::kEq, 0, c); break;
          case CompareOp::kNe: i64_mask(simd::I64MaskOp::kNe, 0, c); break;
          case CompareOp::kLt: i64_less(cd); break;
          case CompareOp::kLe: {
            // `(double)x < cd || x == c`: the eq term survives because c
            // itself converts to cd, not below it.
            const std::optional<int64_t> b = simd::MaxInt64WithDoubleLess(cd);
            if (b.has_value()) {
              i64_mask(simd::I64MaskOp::kLeOrEq, *b, c);
            } else {
              i64_mask(simd::I64MaskOp::kEq, 0, c);
            }
            break;
          }
          case CompareOp::kGt: i64_greater(cd); break;
          case CompareOp::kGe: {
            const std::optional<int64_t> b =
                simd::MinInt64WithDoubleGreater(cd);
            if (b.has_value()) {
              i64_mask(simd::I64MaskOp::kGeOrEq, *b, c);
            } else {
              i64_mask(simd::I64MaskOp::kEq, 0, c);
            }
            break;
          }
        }
      } else if (ct == rel::ValueType::kDouble) {
        // Equality never crosses int64/double (Value semantics), so only
        // the ordering terms can match.
        const double cd = p.constant.AsDouble();
        switch (p.op) {
          case CompareOp::kEq: const_verdict(false); break;
          case CompareOp::kNe: const_verdict(true); break;
          case CompareOp::kLt:
          case CompareOp::kLe: i64_less(cd); break;
          case CompareOp::kGt:
          case CompareOp::kGe: i64_greater(cd); break;
        }
      } else {
        // Ordering against strings/NULL depends only on the types.
        const_verdict(p.MatchesValue(rel::Value(int64_t{0})));
      }
      break;
    case Encoding::kDouble:
      if (const_numeric) {
        const double cd = p.constant.AsDouble();
        const bool same_type = ct == rel::ValueType::kDouble;
        cp.kind = CompiledPredicate::Kind::kF64Mask;
        cp.f64_bound = cd;
        switch (p.op) {
          case CompareOp::kEq:
            if (same_type) {
              cp.f64_op = simd::F64MaskOp::kEq;
            } else {
              const_verdict(false);
            }
            break;
          case CompareOp::kNe:
            if (same_type) {
              cp.f64_op = simd::F64MaskOp::kNe;
            } else {
              const_verdict(true);
            }
            break;
          case CompareOp::kLt:
            cp.f64_op = simd::F64MaskOp::kLt;
            break;
          case CompareOp::kLe:
            // `dv < cd || dv == cd` is IEEE `<=` (both false on NaN).
            cp.f64_op = same_type ? simd::F64MaskOp::kLe : simd::F64MaskOp::kLt;
            break;
          case CompareOp::kGt:
            cp.f64_op = simd::F64MaskOp::kGt;
            break;
          case CompareOp::kGe:
            cp.f64_op = same_type ? simd::F64MaskOp::kGe : simd::F64MaskOp::kGt;
            break;
        }
      } else {
        const_verdict(p.MatchesValue(rel::Value(0.0)));
      }
      break;
    case Encoding::kDictString: {
      cp.kind = CompiledPredicate::Kind::kCodeTable;
      const rel::StringDictionary& dict = col.dict();
      cp.gather_ok = dict.size() <= static_cast<size_t>(
                                        std::numeric_limits<int32_t>::max());
      cp.code_match.resize(dict.size());
      for (uint32_t code = 0; code < dict.size(); ++code) {
        cp.code_match[code] =
            p.MatchesValue(rel::Value(dict.At(code))) ? 1 : 0;
      }
      break;
    }
    case Encoding::kMixed:
      cp.kind = CompiledPredicate::Kind::kGeneric;
      break;
  }
  return cp;
}

void CompiledPredicate::Apply(simd::Tier tier, size_t begin, size_t end,
                              uint8_t* keep) const {
  const uint8_t* nulls = col->NullMask();
  const uint8_t* nsub = nulls != nullptr ? nulls + begin : nullptr;
  const size_t n = end - begin;
  switch (kind) {
    case Kind::kI64Mask:
      simd::AndMaskI64(tier, i64_op, col->Int64Data() + begin, i64_bound,
                       i64_eq, nsub, null_match, keep + begin, n);
      return;
    case Kind::kF64Mask:
      simd::AndMaskF64(tier, f64_op, col->DoubleData() + begin, f64_bound,
                       nsub, null_match, keep + begin, n);
      return;
    case Kind::kCodeTable:
      simd::AndMaskCodes(gather_ok ? tier : simd::Tier::kScalar,
                         col->CodeData() + begin, code_match.data(), nsub,
                         null_match, keep + begin, n);
      return;
    case Kind::kConst: {
      // AND-accumulates the constant verdict as straight byte arithmetic:
      // no branch on keep, no branch on NULL.
      const uint8_t cm = const_match ? 1 : 0;
      if (nulls == nullptr) {
        for (size_t i = begin; i < end; ++i) keep[i] &= cm;
        return;
      }
      const uint8_t nm = null_match ? 1 : 0;
      for (size_t i = begin; i < end; ++i) {
        const uint8_t nn = static_cast<uint8_t>(nulls[i] != 0);
        keep[i] &= static_cast<uint8_t>(
            (nn & nm) | (static_cast<uint8_t>(nn ^ 1) & cm));
      }
      return;
    }
    case Kind::kGeneric:
      // The generic kind materializes a Value per cell — far too
      // expensive to evaluate on rows other predicates already dropped,
      // so it alone keeps the per-row guard.
      for (size_t i = begin; i < end; ++i) {
        if (keep[i] == 0) continue;
        const bool m = (nulls != nullptr && nulls[i] != 0)
                           ? null_match
                           : pred->MatchesValue(col->ValueAt(i));
        if (!m) keep[i] = 0;
      }
      return;
  }
}

// A semi-join key filter compiled against its column's encoding. NULL is
// never a member of the node-key set.
struct CompiledSemiJoin {
  const ColumnVector* col = nullptr;
  const KeyFilter* keys = nullptr;
  bool gather_ok = false;            // dict columns: codes fit i32 gathers
  std::vector<uint32_t> code_match;  // dict columns: per-code membership

  void Apply(simd::Tier tier, size_t begin, size_t end, uint8_t* keep) const {
    const uint8_t* nulls = col->NullMask();
    // Hash-set membership probes are too costly to run on rows already
    // dropped, so those paths keep the per-row guard; the dictionary path
    // is a flat per-code table read and runs branch-light.
    auto run = [&](auto match) {
      for (size_t i = begin; i < end; ++i) {
        if (keep[i] == 0) continue;
        const bool m = (nulls != nullptr && nulls[i] != 0) ? false : match(i);
        if (!m) keep[i] = 0;
      }
    };
    switch (col->encoding()) {
      case Encoding::kEmpty:
        std::fill(keep + begin, keep + end, uint8_t{0});
        return;
      case Encoding::kInt64: {
        const int64_t* data = col->Int64Data();
        run([&](size_t i) { return keys->ints.contains(data[i]); });
        return;
      }
      case Encoding::kDictString: {
        // NULL placeholders store code 0, and NULL is never a member, so
        // the shared mask kernel runs with null_match = false.
        const uint8_t* nsub = nulls != nullptr ? nulls + begin : nullptr;
        simd::AndMaskCodes(gather_ok ? tier : simd::Tier::kScalar,
                           col->CodeData() + begin, code_match.data(), nsub,
                           /*null_match=*/false, keep + begin, end - begin);
        return;
      }
      case Encoding::kDouble: {
        const double* data = col->DoubleData();
        run([&](size_t i) {
          return keys->others.contains(rel::Value(data[i]));
        });
        return;
      }
      case Encoding::kMixed:
        run([&](size_t i) { return keys->Contains(col->ValueAt(i)); });
        return;
    }
  }
};

CompiledSemiJoin CompileSemiJoin(const ColumnVector& col,
                                 const SemiJoin& sj) {
  CompiledSemiJoin cf;
  cf.col = &col;
  cf.keys = sj.keys.get();
  if (col.encoding() == Encoding::kDictString) {
    const rel::StringDictionary& dict = col.dict();
    cf.gather_ok = dict.size() <= static_cast<size_t>(
                                      std::numeric_limits<int32_t>::max());
    cf.code_match.resize(dict.size());
    for (uint32_t code = 0; code < dict.size(); ++code) {
      cf.code_match[code] = sj.keys->strings.contains(dict.At(code)) ? 1 : 0;
    }
  }
  return cf;
}

// ---------------------------------------------------- typed join kernels

// Capacity policy for the join/DISTINCT slot tables. The scalar walk
// inspects one slot per step, so it needs headroom — at most 1/2 load.
// Group probing scans 16 tags per step and stays cheap in long runs, so
// vec-mode tables run up to 7/8 load instead: ~45% less slot memory for
// the same key set, which is the point of carrying the tag array at all.
// Capacity only affects slot placement, never results or output order,
// so the two policies stay bit-compatible.
size_t TableCapacity(size_t n, bool vec) {
  size_t cap = 16;
  if (vec) {
    while (7 * cap < 8 * n) cap <<= 1;
  } else {
    while (cap < 2 * n) cap <<= 1;
  }
  return cap;
}

// The DISTINCT sets seed their slot tables at this many keys and double
// on load-factor trips instead of presizing for the offer count: on
// duplicate-heavy inputs the offer count overstates the key count by
// orders of magnitude, and a right-sized table keeps the random-probe
// working set cache-resident. 64K keys ≈ 512KB of slots — about one L2.
constexpr size_t kDistinctSeedSlots = 64 * 1024;

// How many offers ahead the batched DISTINCT insert loops prefetch their
// first probe slot. The loops hash a whole batch before probing, so the
// future slot address is one mask away; prefetching it lets the random
// first-probe misses overlap instead of serializing on a grown table
// that no longer fits in cache. Purely a cache hint — results are
// untouched (a table growth between hint and probe only wastes the hint).
constexpr size_t kProbePrefetchDist = 16;

// Grow when the next insert could push occupancy past 1/2 (scalar walk)
// or 7/8 (group probing) — the loads TableCapacity provisions for.
size_t GrowThreshold(size_t cap, bool vec) {
  return vec ? cap - cap / 8 : cap / 2;
}

// For group probing: the bits of `match` at positions strictly before the
// lowest set bit of `stop` (all bits when stop == 0). Candidates at or
// past the first empty slot can never hold the probed key — linear
// probing would have claimed that empty slot first.
inline uint32_t BitsBeforeFirst(uint32_t match, uint32_t stop) {
  if (stop == 0) return match;
  return match & ((stop & (~stop + 1u)) - 1u);
}

// Open-addressing hash table from Key to an ascending chain of build row
// ids. Slots are flat arrays (no per-node allocation, linear probing);
// chains thread through one `next` array indexed by build row — the array
// is shared across partitions (partitions own disjoint rows), so chain
// memory is paid once, not per partition. Rows must be inserted in
// ascending order so chains stay ascending.
//
// With `use_vec` the table keeps a parallel 7-bit tag per slot
// (simd::TagOfHash; 0xff = empty) and probes compare 16 tags per step
// with one SSE2 compare+movemask instead of touching full slots one at a
// time. The first 15 tags are mirrored past the end so a group load never
// wraps. Candidates are examined in exactly the scalar linear-probe
// order and stop at the first empty slot; group probing stays cheap in
// long occupied runs, which is what lets vec tables allocate the denser
// TableCapacity tier. Slot placement differs from a scalar-mode table
// (capacity differs), but chain order and every lookup result are
// identical — output never observes the layout.
template <typename Key>
struct FlatChainTable {
  std::vector<Key> keys;      // per slot; meaningful when head >= 0
  std::vector<int64_t> hash;  // per slot, cached full hash
  std::vector<int32_t> head;  // per slot, first build row or -1 (empty)
  std::vector<int32_t> tail;  // per slot, last build row of the chain
  std::vector<uint32_t> count;  // per slot, chain length (match estimates)
  std::vector<uint8_t> tags;  // per slot + 15 mirror bytes; group probing
  int32_t* next = nullptr;    // shared: per build row, next equal-key row
  uint64_t mask = 0;
  bool vec = false;

  void Init(size_t rows_in_partition, int32_t* shared_next, bool use_vec) {
    const size_t cap = TableCapacity(rows_in_partition, use_vec);
    mask = cap - 1;
    keys.resize(cap);
    hash.resize(cap);
    head.assign(cap, -1);
    tail.resize(cap);
    count.assign(cap, 0);
    next = shared_next;
    vec = use_vec;
    if (vec) tags.assign(cap + simd::kTagGroupWidth - 1, simd::kTagEmpty);
  }

  void SetTag(size_t pos, uint8_t tag) {
    tags[pos] = tag;
    if (pos < simd::kTagGroupWidth - 1) tags[mask + 1 + pos] = tag;
  }

  void Insert(const Key& k, uint64_t h, uint32_t row) {
    if (vec) {
      InsertVec(k, h, row);
      return;
    }
    size_t pos = h & mask;
    for (;;) {
      if (head[pos] < 0) {
        Claim(pos, k, h, row);
        return;
      }
      if (hash[pos] == static_cast<int64_t>(h) && keys[pos] == k) {
        Append(pos, row);
        return;
      }
      pos = (pos + 1) & mask;
    }
  }

  // First build row with key k, or -1.
  int32_t Find(const Key& k, uint64_t h) const {
    if (vec) {
      const int64_t slot = FindSlotVec(k, h);
      return slot < 0 ? -1 : head[slot];
    }
    size_t pos = h & mask;
    for (;;) {
      if (head[pos] < 0) return -1;
      if (hash[pos] == static_cast<int64_t>(h) && keys[pos] == k) {
        return head[pos];
      }
      pos = (pos + 1) & mask;
    }
  }

  // Number of build rows with key k (0 when absent).
  uint32_t CountFor(const Key& k, uint64_t h) const {
    if (vec) {
      const int64_t slot = FindSlotVec(k, h);
      return slot < 0 ? 0 : count[slot];
    }
    size_t pos = h & mask;
    for (;;) {
      if (head[pos] < 0) return 0;
      if (hash[pos] == static_cast<int64_t>(h) && keys[pos] == k) {
        return count[pos];
      }
      pos = (pos + 1) & mask;
    }
  }

 private:
  void Claim(size_t pos, const Key& k, uint64_t h, uint32_t row) {
    keys[pos] = k;
    hash[pos] = static_cast<int64_t>(h);
    head[pos] = static_cast<int32_t>(row);
    tail[pos] = static_cast<int32_t>(row);
    count[pos] = 1;
    next[row] = -1;
  }

  void Append(size_t pos, uint32_t row) {
    next[tail[pos]] = static_cast<int32_t>(row);
    tail[pos] = static_cast<int32_t>(row);
    ++count[pos];
    next[row] = -1;
  }

  void InsertVec(const Key& k, uint64_t h, uint32_t row) {
    const uint8_t tag = simd::TagOfHash(h);
    size_t pos = h & mask;
    for (;;) {
      const uint8_t* group = tags.data() + pos;
      const uint32_t empty = simd::TagEmpty16(group);
      uint32_t match = BitsBeforeFirst(simd::TagMatch16(group, tag), empty);
      while (match != 0) {
        const size_t cand =
            (pos + static_cast<size_t>(std::countr_zero(match))) & mask;
        if (hash[cand] == static_cast<int64_t>(h) && keys[cand] == k) {
          Append(cand, row);
          return;
        }
        match &= match - 1;
      }
      if (empty != 0) {
        const size_t slot =
            (pos + static_cast<size_t>(std::countr_zero(empty))) & mask;
        Claim(slot, k, h, row);
        SetTag(slot, tag);
        return;
      }
      pos = (pos + simd::kTagGroupWidth) & mask;
    }
  }

  // Slot index of key k, or -1 when the probe hits an empty slot first.
  int64_t FindSlotVec(const Key& k, uint64_t h) const {
    const uint8_t tag = simd::TagOfHash(h);
    size_t pos = h & mask;
    for (;;) {
      const uint8_t* group = tags.data() + pos;
      const uint32_t empty = simd::TagEmpty16(group);
      uint32_t match = BitsBeforeFirst(simd::TagMatch16(group, tag), empty);
      while (match != 0) {
        const size_t cand =
            (pos + static_cast<size_t>(std::countr_zero(match))) & mask;
        if (hash[cand] == static_cast<int64_t>(h) && keys[cand] == k) {
          return static_cast<int64_t>(cand);
        }
        match &= match - 1;
      }
      if (empty != 0) return -1;
      pos = (pos + simd::kTagGroupWidth) & mask;
    }
  }
};

// ------------------------------------------------- typed DISTINCT kernel

// Flattened per-column readers for DISTINCT hashing/equality: everything
// is raw array reads (int64 data, dictionary codes, cached string
// hashes), no per-cell function calls or Value materialization.
struct DistinctCol {
  enum class Kind : uint8_t { kInt64, kDouble, kDict, kMixed, kAllNull };
  Kind kind = Kind::kAllNull;
  const int64_t* ints = nullptr;
  const double* doubles = nullptr;
  const uint32_t* codes = nullptr;
  const rel::StringDictionary* dict = nullptr;
  const ColumnVector* col = nullptr;  // mixed fallback
  const uint8_t* nulls = nullptr;
  uint32_t slot = 0;

  static DistinctCol Make(const BoundColumn& b) {
    DistinctCol d;
    d.slot = b.slot;
    d.nulls = b.col->NullMask();
    d.col = b.col;
    switch (b.col->encoding()) {
      case Encoding::kInt64:
        d.kind = Kind::kInt64;
        d.ints = b.col->Int64Data();
        break;
      case Encoding::kDouble:
        d.kind = Kind::kDouble;
        d.doubles = b.col->DoubleData();
        break;
      case Encoding::kDictString:
        d.kind = Kind::kDict;
        d.codes = b.col->CodeData();
        d.dict = &b.col->dict();
        break;
      case Encoding::kMixed:
        d.kind = Kind::kMixed;
        break;
      case Encoding::kEmpty:
        d.kind = Kind::kAllNull;
        break;
    }
    return d;
  }

  bool IsNull(size_t id) const {
    return kind == Kind::kAllNull || (nulls != nullptr && nulls[id] != 0);
  }

  uint64_t Hash(size_t id) const {
    if (IsNull(id)) return 0x9e3779b9u;
    switch (kind) {
      case Kind::kInt64: return MixInt64(static_cast<uint64_t>(ints[id]));
      case Kind::kDouble: return std::hash<double>{}(doubles[id]);
      case Kind::kDict: return dict->HashOf(codes[id]);
      case Kind::kMixed: return col->MixedAt(id).Hash();
      case Kind::kAllNull: break;
    }
    return 0x9e3779b9u;
  }

  // Value-equality of two cells of this column (codes compare directly:
  // one column has one dictionary).
  bool Equal(size_t a, size_t b) const {
    const bool an = IsNull(a);
    const bool bn = IsNull(b);
    if (an || bn) return an == bn;
    switch (kind) {
      case Kind::kInt64: return ints[a] == ints[b];
      case Kind::kDouble: return doubles[a] == doubles[b];
      case Kind::kDict: return codes[a] == codes[b];
      case Kind::kMixed: return col->MixedAt(a) == col->MixedAt(b);
      case Kind::kAllNull: break;
    }
    return true;
  }
};

// Open-addressing first-occurrence set over row ids with precomputed
// hashes. Rows must be offered in ascending order; survivors come out in
// that same order. With `use_vec` probes run over a parallel tag array,
// 16 slots per step (same results as the scalar walk — see
// FlatChainTable). The table is sized for the keys seen so far and
// doubles on load-factor trips, so duplicate-heavy inputs probe a
// cache-resident table instead of one sized for the full input.
class FlatDistinctSet {
 public:
  FlatDistinctSet(size_t expected_rows, const std::vector<uint64_t>& hashes,
                  const RowIdResult& rows, const std::vector<DistinctCol>& cols,
                  bool use_vec)
      : hashes_(hashes), rows_(rows), cols_(cols), vec_(use_vec) {
    const size_t cap =
        TableCapacity(std::min(expected_rows, kDistinctSeedSlots), use_vec);
    mask_ = cap - 1;
    grow_at_ = GrowThreshold(cap, vec_);
    slots_.assign(cap, kEmptySlot);
    if (vec_) tags_.assign(cap + simd::kTagGroupWidth - 1, simd::kTagEmpty);
  }

  // Cache hint for a future Insert(i): pulls the first probe group of
  // row i's slot walk. See kProbePrefetchDist.
  void PrefetchSlot(uint32_t i) const {
    const size_t pos = hashes_[i] & mask_;
    __builtin_prefetch(slots_.data() + pos);
    if (vec_) __builtin_prefetch(tags_.data() + pos);
  }

  // Second pipeline stage (see FusedDistinctSet::WarmProbe): reads the
  // now-cached slot group and prefetches the candidates' hash and tuple
  // records, so the real probe's dependent loads land warm. Read-only.
  void WarmProbe(uint32_t i) const {
    const uint64_t h = hashes_[i];
    const size_t pos = h & mask_;
    const size_t w = rows_.Width();
    if (!vec_) {
      const uint32_t r = slots_[pos];
      if (r != kEmptySlot) {
        __builtin_prefetch(hashes_.data() + r);
        __builtin_prefetch(&rows_.tuples[static_cast<size_t>(r) * w]);
      }
      return;
    }
    const uint8_t* group = tags_.data() + pos;
    uint32_t match = BitsBeforeFirst(
        simd::TagMatch16(group, simd::TagOfHash(h)), simd::TagEmpty16(group));
    while (match != 0) {
      const size_t cand =
          (pos + static_cast<size_t>(std::countr_zero(match))) & mask_;
      const uint32_t r = slots_[cand];
      // Vec probes verify by tuple compare alone, so only the tuple
      // line needs warming.
      if (r != kEmptySlot) {
        __builtin_prefetch(&rows_.tuples[static_cast<size_t>(r) * w]);
      }
      match &= match - 1;
    }
  }

  // True if row i is the first occurrence of its key.
  bool Insert(uint32_t i) {
    if (size_ >= grow_at_) Grow();
    const uint64_t h = hashes_[i];
    if (vec_) {
      const uint8_t tag = simd::TagOfHash(h);
      size_t pos = h & mask_;
      for (;;) {
        const uint8_t* group = tags_.data() + pos;
        const uint32_t empty = simd::TagEmpty16(group);
        uint32_t match = BitsBeforeFirst(simd::TagMatch16(group, tag), empty);
        while (match != 0) {
          const size_t cand =
              (pos + static_cast<size_t>(std::countr_zero(match))) & mask_;
          const uint32_t r = slots_[cand];
          // Tag-filtered candidates skip the stored-hash pre-check; see
          // FusedDistinctSet::Insert.
          if (RowsEqual(r, i)) return false;
          match &= match - 1;
        }
        if (empty != 0) {
          const size_t slot =
              (pos + static_cast<size_t>(std::countr_zero(empty))) & mask_;
          slots_[slot] = i;
          tags_[slot] = tag;
          if (slot < simd::kTagGroupWidth - 1) {
            tags_[mask_ + 1 + slot] = tag;
          }
          ++size_;
          return true;
        }
        pos = (pos + simd::kTagGroupWidth) & mask_;
      }
    }
    size_t pos = h & mask_;
    for (;;) {
      const uint32_t r = slots_[pos];
      if (r == kEmptySlot) {
        slots_[pos] = i;
        ++size_;
        return true;
      }
      if (hashes_[r] == h && RowsEqual(r, i)) return false;
      pos = (pos + 1) & mask_;
    }
  }

 private:
  static constexpr uint32_t kEmptySlot = 0xffffffffu;

  // Doubles the slot table and reinserts the retained rows (distinct
  // keys, so each lands in its probe sequence's first empty slot — the
  // slot both probe flavors pick). See FusedDistinctSet::Grow.
  void Grow() {
    const size_t cap = 2 * (mask_ + 1);
    std::vector<uint32_t> old;
    old.swap(slots_);
    mask_ = cap - 1;
    grow_at_ = GrowThreshold(cap, vec_);
    slots_.assign(cap, kEmptySlot);
    if (vec_) tags_.assign(cap + simd::kTagGroupWidth - 1, simd::kTagEmpty);
    for (const uint32_t r : old) {
      if (r == kEmptySlot) continue;
      const uint64_t h = hashes_[r];
      size_t pos = h & mask_;
      while (slots_[pos] != kEmptySlot) pos = (pos + 1) & mask_;
      slots_[pos] = r;
      if (vec_) {
        tags_[pos] = simd::TagOfHash(h);
        if (pos < simd::kTagGroupWidth - 1) {
          tags_[mask_ + 1 + pos] = tags_[pos];
        }
      }
    }
  }

  bool RowsEqual(uint32_t a, uint32_t b) const {
    const size_t w = rows_.Width();
    const uint32_t* ta = &rows_.tuples[static_cast<size_t>(a) * w];
    const uint32_t* tb = &rows_.tuples[static_cast<size_t>(b) * w];
    for (const DistinctCol& c : cols_) {
      if (!c.Equal(ta[c.slot], tb[c.slot])) return false;
    }
    return true;
  }

  const std::vector<uint64_t>& hashes_;
  const RowIdResult& rows_;
  const std::vector<DistinctCol>& cols_;
  std::vector<uint32_t> slots_;
  std::vector<uint8_t> tags_;
  uint64_t mask_ = 0;
  size_t grow_at_ = 0;
  size_t size_ = 0;
  bool vec_ = false;
};

// ------------------------------------------- fused join→DISTINCT kernel

// Projected-key hash of one (concatenated) row-id tuple — the same
// FNV-combine + avalanche the unfused DISTINCT uses.
uint64_t DistinctHash(const std::vector<DistinctCol>& cols,
                      const uint32_t* tup) {
  uint64_t h = 1469598103934665603ull;
  for (const DistinctCol& c : cols) {
    h ^= c.Hash(tup[c.slot]);
    h *= 1099511628211ull;
  }
  return MixInt64(h);
}

// Open-addressing first-occurrence set that *stores* surviving tuples:
// the fused pipeline offers every probe match as a candidate concatenated
// row-id tuple, and only first occurrences are retained — the join's full
// output is never materialized anywhere. Hashing and equality run on the
// projected typed base columns exactly like the unfused DISTINCT kernel.
// The slot table is sized for the *survivors seen so far*, not the offer
// count, and doubles on a load-factor trip: on duplicate-heavy joins
// (the paper's dense co-purchase cliques offer 50x more candidates than
// keys) an offer-sized table would be a multi-megabyte, ~2%-occupied
// array probed at random — every lookup a cache miss. Growth relocates
// slots only; survivor order and results are untouched. ReserveBatch
// makes room for one morsel of potential survivors up front so the
// insert loop writes raw arrays instead of re-checking vector capacity
// per element.
class FusedDistinctSet {
 public:
  // `expected` is the number of candidates that will be offered (the
  // range's match count, from the join build's chain lengths); the slot
  // table starts at the smaller of that and one growth step past
  // kDistinctSeedSlots.
  FusedDistinctSet(size_t width, const std::vector<DistinctCol>& cols,
                   size_t expected, bool use_vec)
      : width_(width), cols_(cols), vec_(use_vec) {
    const size_t cap =
        TableCapacity(std::min(expected, kDistinctSeedSlots), use_vec);
    slots_.assign(cap, kEmptySlot);
    mask_ = cap - 1;
    grow_at_ = GrowThreshold(cap, vec_);
    if (vec_) tags_.assign(cap + simd::kTagGroupWidth - 1, simd::kTagEmpty);
  }

  // Guarantees room for `n` more survivors; call before a batch of at
  // most `n` Insert offers. Survivor storage is raw geometric buffers —
  // no value-initialization, no per-element capacity checks in Insert.
  void ReserveBatch(size_t n) {
    if (size_ + n > cap_) {
      const size_t cap = std::max(cap_ * 2, size_ + n);
      auto tuples = std::make_unique_for_overwrite<uint32_t[]>(cap * width_);
      auto hashes = std::make_unique_for_overwrite<uint64_t[]>(cap);
      std::copy(tuples_.get(), tuples_.get() + size_ * width_, tuples.get());
      std::copy(hashes_.get(), hashes_.get() + size_, hashes.get());
      tuples_ = std::move(tuples);
      hashes_ = std::move(hashes);
      cap_ = cap;
    }
  }

  // Cache hint for a future Insert(·, h): pulls the first probe group
  // of the hash's slot walk. See kProbePrefetchDist.
  void PrefetchSlot(uint64_t h) const {
    const size_t pos = h & mask_;
    __builtin_prefetch(slots_.data() + pos);
    if (vec_) __builtin_prefetch(tags_.data() + pos);
  }

  // Second pipeline stage: by the time this runs the slot group is in
  // cache (PrefetchSlot ran a distance earlier), so the group can be
  // read — not just prefetched — and the *candidates'* survivor records
  // pulled in. Duplicate offers otherwise serialize on that dependent
  // hash/tuple load, which is the dominant miss on low-duplication
  // streams once the survivor arrays outgrow the cache. Read-only: the
  // real Insert re-probes from scratch, so a stale view (intervening
  // inserts or growth) only weakens the hint.
  void WarmProbe(uint64_t h) const {
    const size_t pos = h & mask_;
    if (!vec_) {
      const uint32_t s = slots_[pos];
      if (s != kEmptySlot) {
        __builtin_prefetch(hashes_.get() + s);
        __builtin_prefetch(tuples_.get() + static_cast<size_t>(s) * width_);
      }
      return;
    }
    const uint8_t* group = tags_.data() + pos;
    uint32_t match = BitsBeforeFirst(
        simd::TagMatch16(group, simd::TagOfHash(h)), simd::TagEmpty16(group));
    while (match != 0) {
      const size_t cand =
          (pos + static_cast<size_t>(std::countr_zero(match))) & mask_;
      const uint32_t s = slots_[cand];
      // Vec probes verify by tuple compare alone, so only the tuple
      // line needs warming.
      if (s != kEmptySlot) {
        __builtin_prefetch(tuples_.get() + static_cast<size_t>(s) * width_);
      }
      match &= match - 1;
    }
  }

  // True if the candidate's projected key is unseen; the tuple is then
  // retained (survivors keep their offer order). Requires ReserveBatch.
  bool Insert(const uint32_t* tup, uint64_t h) {
    if (size_ >= grow_at_) Grow();
    if (vec_) {
      const uint8_t tag = simd::TagOfHash(h);
      size_t pos = h & mask_;
      for (;;) {
        const uint8_t* group = tags_.data() + pos;
        const uint32_t empty = simd::TagEmpty16(group);
        uint32_t match = BitsBeforeFirst(simd::TagMatch16(group, tag), empty);
        while (match != 0) {
          const size_t cand =
              (pos + static_cast<size_t>(std::countr_zero(match))) & mask_;
          const uint32_t s = slots_[cand];
          // No stored-hash pre-check here: the 7-bit tag already filtered
          // to ~1% false candidates, Equal alone decides, and skipping
          // hashes_[s] saves a dependent cache line per duplicate offer.
          if (Equal(tuples_.get() + static_cast<size_t>(s) * width_, tup)) {
            return false;
          }
          match &= match - 1;
        }
        if (empty != 0) {
          const size_t slot =
              (pos + static_cast<size_t>(std::countr_zero(empty))) & mask_;
          Retain(slot, tup, h);
          tags_[slot] = tag;
          if (slot < simd::kTagGroupWidth - 1) {
            tags_[mask_ + 1 + slot] = tag;
          }
          return true;
        }
        pos = (pos + simd::kTagGroupWidth) & mask_;
      }
    }
    size_t pos = h & mask_;
    for (;;) {
      const uint32_t s = slots_[pos];
      if (s == kEmptySlot) {
        Retain(pos, tup, h);
        return true;
      }
      if (hashes_[s] == h &&
          Equal(tuples_.get() + static_cast<size_t>(s) * width_, tup)) {
        return false;
      }
      pos = (pos + 1) & mask_;
    }
  }

  size_t size() const { return size_; }
  // Survivor tuples in offer order, size() rows of width() ids.
  const uint32_t* tuples() const { return tuples_.get(); }
  const uint64_t* hashes() const { return hashes_.get(); }

 private:
  static constexpr uint32_t kEmptySlot = 0xffffffffu;

  void Retain(size_t slot, const uint32_t* tup, uint64_t h) {
    slots_[slot] = static_cast<uint32_t>(size_);
    uint32_t* dst = tuples_.get() + size_ * width_;
    for (size_t j = 0; j < width_; ++j) dst[j] = tup[j];
    hashes_[size_] = h;
    ++size_;
  }

  // Doubles the slot table and reinserts the survivors. Survivors are
  // pairwise distinct, so each lands in the first empty slot of its
  // probe sequence — the same slot both the scalar walk and the group
  // scan would pick (the group scan takes the lowest empty lane, which
  // is the linear-first empty). Final capacity never exceeds
  // TableCapacity(offers) — what the presized table used to allocate.
  void Grow() {
    const size_t cap = 2 * (mask_ + 1);
    mask_ = cap - 1;
    grow_at_ = GrowThreshold(cap, vec_);
    slots_.assign(cap, kEmptySlot);
    if (vec_) tags_.assign(cap + simd::kTagGroupWidth - 1, simd::kTagEmpty);
    for (size_t i = 0; i < size_; ++i) {
      const uint64_t h = hashes_[i];
      size_t pos = h & mask_;
      while (slots_[pos] != kEmptySlot) pos = (pos + 1) & mask_;
      slots_[pos] = static_cast<uint32_t>(i);
      if (vec_) {
        tags_[pos] = simd::TagOfHash(h);
        if (pos < simd::kTagGroupWidth - 1) {
          tags_[mask_ + 1 + pos] = tags_[pos];
        }
      }
    }
  }

  bool Equal(const uint32_t* a, const uint32_t* b) const {
    for (const DistinctCol& c : cols_) {
      if (!c.Equal(a[c.slot], b[c.slot])) return false;
    }
    return true;
  }

  size_t width_;
  const std::vector<DistinctCol>& cols_;
  std::vector<uint32_t> slots_;
  std::vector<uint8_t> tags_;
  uint64_t mask_ = 0;
  size_t grow_at_ = 0;
  bool vec_ = false;
  size_t size_ = 0;
  size_t cap_ = 0;
  std::unique_ptr<uint32_t[]> tuples_;  // survivor tuples, width_ ids each
  std::unique_ptr<uint64_t[]> hashes_;  // survivor projected-key hashes
};

// The build phase of the partitioned hash join, shared by the
// materializing join and the fused join→DISTINCT pipeline: typed keys and
// hashes are precomputed in parallel, then P flat per-partition tables are
// built over build rows in ascending order (per-key chains stay ascending,
// which is what makes probe output order the serial order).
template <typename Key>
struct JoinBuild {
  std::vector<uint64_t> bhash;
  std::vector<uint8_t> bnull;
  std::vector<Key> bkeys;
  std::vector<int32_t> chain_next;
  std::vector<FlatChainTable<Key>> tables;
  size_t partitions = 1;
  /// Build-side scratch charged against the request's memory budget,
  /// refunded when the build dies at the end of the operator.
  ScopedCharge charge;
};

template <typename Key, typename HashFn, typename BuildKeyFn>
JoinBuild<Key> BuildJoinTables(size_t bn, size_t threads, HashFn hash,
                               BuildKeyFn bkey, const ExecContext& ctx,
                               AbortSlot& slot) {
  JoinBuild<Key> jb;
  // Key/hash/null/chain arrays are the first of the join's two big
  // allocations; the per-partition slot arrays are priced below once the
  // partition fan-out is known.
  const size_t key_bytes =
      bn * (sizeof(uint64_t) + 1 + sizeof(Key) + sizeof(int32_t));
  if (Status st = jb.charge.Acquire(ctx, key_bytes, "hash-join build keys");
      !st.ok()) {
    slot.Fail(std::move(st));
    return jb;
  }
  jb.bhash.resize(bn);
  jb.bnull.resize(bn);
  jb.bkeys.resize(bn);
  const bool poll = NeedsPoll(ctx);
  ParallelFor(
      bn,
      [&](size_t begin, size_t end) {
        StridedRun(ctx, slot, poll, begin, end, [&](size_t b, size_t e) {
          for (size_t i = b; i < e; ++i) {
            Key k{};
            if (bkey(i, &k)) {
              jb.bkeys[i] = std::move(k);
              jb.bhash[i] = hash(jb.bkeys[i]);
              jb.bnull[i] = 0;
            } else {
              jb.bnull[i] = 1;
            }
          }
        });
      },
      threads);
  if (slot.Failed()) return jb;

  jb.partitions = (threads > 1 && bn >= kPartitionedBuildThreshold)
                      ? std::min(threads, kMaxPartitions)
                      : 1;
  std::vector<size_t> partition_rows(jb.partitions, 0);
  if (jb.partitions == 1) {
    for (size_t i = 0; i < bn; ++i) {
      if (jb.bnull[i] == 0) ++partition_rows[0];
    }
  } else {
    for (size_t i = 0; i < bn; ++i) {
      if (jb.bnull[i] == 0) ++partition_rows[jb.bhash[i] % jb.partitions];
    }
  }
  // Per-slot: key + cached hash + head + tail + count + probe tag.
  constexpr size_t kSlotBytes = sizeof(Key) + sizeof(int64_t) +
                                2 * sizeof(int32_t) + sizeof(uint32_t) +
                                sizeof(uint8_t);
  const bool vec = simd::ActiveTier() == simd::Tier::kAvx2;
  size_t table_bytes = 0;
  for (size_t rows : partition_rows) {
    table_bytes += TableCapacity(rows, vec) * kSlotBytes;
  }
  if (Status st = ctx.Charge(table_bytes, "hash-join slot tables");
      !st.ok()) {
    slot.Fail(std::move(st));
    return jb;
  }
  jb.charge.Grow(table_bytes);
  jb.chain_next.resize(bn);
  jb.tables.resize(jb.partitions);
  ParallelInvoke(jb.partitions, [&](size_t p) {
    if (slot.Failed()) return;
    FlatChainTable<Key>& ht = jb.tables[p];
    ht.Init(partition_rows[p], jb.chain_next.data(), vec);
    StridedRun(ctx, slot, poll, 0, bn, [&](size_t b, size_t e) {
      for (size_t i = b; i < e; ++i) {
        if (jb.bnull[i] != 0 || jb.bhash[i] % jb.partitions != p) continue;
        ht.Insert(jb.bkeys[i], jb.bhash[i], static_cast<uint32_t>(i));
      }
    });
  });
  return jb;
}

// Total number of join matches a probe range will emit, from the build
// chains' cached lengths — O(range rows), no chain walking.
template <typename Key, typename HashFn, typename ProbeKeyFn>
size_t CountJoinRange(const JoinBuild<Key>& jb, IndexRange range, HashFn hash,
                      ProbeKeyFn pkey) {
  size_t expected = 0;
  for (size_t pr = range.begin; pr < range.end; ++pr) {
    Key k{};
    if (!pkey(pr, &k)) continue;
    const uint64_t h = hash(k);
    expected += jb.tables[h % jb.partitions].CountFor(k, h);
  }
  return expected;
}

// Materializes one probe range's matches as concatenated (left, right)
// row-id tuples in serial probe order, writing through a raw cursor into
// storage the caller presized from the range's exact match count —
// no per-match vector bookkeeping. Returns the advanced cursor.
template <typename Key, typename HashFn, typename ProbeKeyFn>
uint32_t* EmitJoinRange(const JoinBuild<Key>& jb, IndexRange range, HashFn hash,
                        ProbeKeyFn pkey, const RowIdResult& build,
                        const RowIdResult& probe, bool build_left, size_t lw,
                        size_t rw, uint32_t* out) {
  const size_t bw = build_left ? lw : rw;
  const size_t pw = build_left ? rw : lw;
  for (size_t pr = range.begin; pr < range.end; ++pr) {
    Key k{};
    if (!pkey(pr, &k)) continue;
    const uint64_t h = hash(k);
    const FlatChainTable<Key>& ht = jb.tables[h % jb.partitions];
    int32_t bi = ht.Find(k, h);
    if (bi < 0) continue;
    const uint32_t* ptup = &probe.tuples[pr * pw];
    for (; bi >= 0; bi = ht.next[bi]) {
      const uint32_t* btup = &build.tuples[static_cast<size_t>(bi) * bw];
      const uint32_t* ltup = build_left ? btup : ptup;
      const uint32_t* rtup = build_left ? ptup : btup;
      for (size_t j = 0; j < lw; ++j) out[j] = ltup[j];
      for (size_t j = 0; j < rw; ++j) out[lw + j] = rtup[j];
      out += lw + rw;
    }
  }
  return out;
}

// One probe range of the fused join→DISTINCT pipeline: walks the range's
// chains exactly like ProbeJoinRange, buffers matches in a bounded morsel
// (flushed at probe-row boundaries so the chain walk carries no extra
// branch), and batch-hashes + batch-offers each morsel to the range-local
// first-occurrence set. A free function so `hash`/`pkey` land in
// registers, matching the materializing probe's code shape.
template <typename Key, typename HashFn, typename ProbeKeyFn>
void FuseJoinRange(const JoinBuild<Key>& jb, IndexRange range, HashFn hash,
                   ProbeKeyFn pkey, const RowIdResult& build,
                   const RowIdResult& probe, bool build_left, size_t lw,
                   size_t rw, const std::vector<DistinctCol>& cols,
                   FusedDistinctSet& local, const ExecContext& ctx,
                   AbortSlot& slot, bool poll) {
  const size_t w = lw + rw;
  const size_t bw = build_left ? lw : rw;
  const size_t pw = build_left ? rw : lw;
  std::vector<uint32_t> morsel;
  std::vector<uint64_t> mhashes(2 * kFusedMorselRows);

  if (lw == 1 && rw == 1) {
    // Dominant shape — scan⋈scan edge queries emit (left id, right id)
    // pairs. The chain walk writes raw indexed slots into a fixed
    // buffer instead of paying two vector inserts per match; the buffer
    // flushes when full, mid-chain included (survivor selection depends
    // only on offer order, which flush boundaries never change).
    morsel.resize(4 * kFusedMorselRows);
    uint32_t* buf = morsel.data();
    const size_t cap = morsel.size();
    const uint32_t* btups = build.tuples.data();
    const uint32_t* ptups = probe.tuples.data();
    size_t fill = 0;
    auto flush2 = [&] {
      const size_t m = fill / 2;
      for (size_t i = 0; i < m; ++i) {
        mhashes[i] = DistinctHash(cols, buf + i * 2);
      }
      local.ReserveBatch(m);
      for (size_t i = 0; i < m; ++i) {
        if (i + 2 * kProbePrefetchDist < m) {
          local.PrefetchSlot(mhashes[i + 2 * kProbePrefetchDist]);
        }
        if (i + kProbePrefetchDist < m) {
          local.WarmProbe(mhashes[i + kProbePrefetchDist]);
        }
        local.Insert(buf + i * 2, mhashes[i]);
      }
      fill = 0;
    };
    size_t tick = kCancelStrideRows;
    for (size_t pr = range.begin; pr < range.end; ++pr) {
      if (poll && --tick == 0) {
        tick = kCancelStrideRows;
        if (!slot.Continue(ctx)) return;
      }
      Key k{};
      if (!pkey(pr, &k)) continue;
      const uint64_t h = hash(k);
      const FlatChainTable<Key>& ht = jb.tables[h % jb.partitions];
      int32_t bi = ht.Find(k, h);
      if (bi < 0) continue;
      const uint32_t p = ptups[pr];
      if (build_left) {
        for (; bi >= 0; bi = ht.next[bi]) {
          if (fill == cap) flush2();
          buf[fill] = btups[bi];
          buf[fill + 1] = p;
          fill += 2;
        }
      } else {
        for (; bi >= 0; bi = ht.next[bi]) {
          if (fill == cap) flush2();
          buf[fill] = p;
          buf[fill + 1] = btups[bi];
          fill += 2;
        }
      }
    }
    flush2();
    return;
  }

  morsel.reserve(2 * kFusedMorselRows * w);
  auto flush = [&] {
    const size_t m = morsel.size() / w;
    if (mhashes.size() < m) mhashes.resize(m);
    for (size_t i = 0; i < m; ++i) {
      mhashes[i] = DistinctHash(cols, &morsel[i * w]);
    }
    local.ReserveBatch(m);
    for (size_t i = 0; i < m; ++i) {
      if (i + 2 * kProbePrefetchDist < m) {
        local.PrefetchSlot(mhashes[i + 2 * kProbePrefetchDist]);
      }
      if (i + kProbePrefetchDist < m) {
        local.WarmProbe(mhashes[i + kProbePrefetchDist]);
      }
      local.Insert(&morsel[i * w], mhashes[i]);
    }
    morsel.clear();
  };
  // Cooperative poll every kCancelStrideRows probe rows; the morsel
  // buffers keep their reservations across blocks, so an active deadline
  // costs one strided Continue() poll, not per-block reallocation.
  size_t tick = kCancelStrideRows;
  for (size_t pr = range.begin; pr < range.end; ++pr) {
    if (poll && --tick == 0) {
      tick = kCancelStrideRows;
      if (!slot.Continue(ctx)) return;
    }
    Key k{};
    if (!pkey(pr, &k)) continue;
    const uint64_t h = hash(k);
    const FlatChainTable<Key>& ht = jb.tables[h % jb.partitions];
    int32_t bi = ht.Find(k, h);
    if (bi < 0) continue;
    const uint32_t* ptup = &probe.tuples[pr * pw];
    for (; bi >= 0; bi = ht.next[bi]) {
      const uint32_t* btup = &build.tuples[static_cast<size_t>(bi) * bw];
      const uint32_t* ltup = build_left ? btup : ptup;
      const uint32_t* rtup = build_left ? ptup : btup;
      morsel.insert(morsel.end(), ltup, ltup + lw);
      morsel.insert(morsel.end(), rtup, rtup + rw);
    }
    // A single row's chain may overshoot the morsel target; it is bounded
    // by the build side and the unfused join would have materialized it
    // whole anyway.
    if (morsel.size() >= kFusedMorselRows * w) flush();
  }
  flush();
}

// Hash-table shape facts for the profile tree, filled only when someone
// is recording (the occupancy sums cost a pass over the build input).
struct JoinProfInfo {
  size_t partitions = 1;
  size_t build_keys = 0;  // non-NULL build rows inserted into the tables
  size_t capacity = 0;    // total slots across partition tables
};

template <typename Key>
void FillJoinProfInfo(const JoinBuild<Key>& jb, size_t bn,
                      JoinProfInfo* info) {
  if (info == nullptr) return;
  info->partitions = jb.partitions;
  size_t nulls = 0;
  for (size_t i = 0; i < bn; ++i) nulls += jb.bnull[i];
  info->build_keys = bn - nulls;
  for (const FlatChainTable<Key>& t : jb.tables) {
    info->capacity += t.mask + 1;
  }
}

// Partitioned hash join over typed keys. `bkey`/`pkey` extract the key of
// a build/probe row (returning false for NULL — NULL joins nothing), and
// `hash` mixes it. Output row order is the serial probe order for every
// thread count and every key type: partitions scan build rows in
// ascending order (so per-key chains are ascending) and probe ranges
// concatenate in index order.
template <typename Key, typename HashFn, typename BuildKeyFn,
          typename ProbeKeyFn>
std::vector<uint32_t> PartitionedJoin(const RowIdResult& left,
                                      const RowIdResult& right,
                                      bool build_left, size_t threads,
                                      HashFn hash, BuildKeyFn bkey,
                                      ProbeKeyFn pkey, const ExecContext& ctx,
                                      AbortSlot& slot,
                                      JoinProfInfo* info = nullptr) {
  const RowIdResult& build = build_left ? left : right;
  const RowIdResult& probe = build_left ? right : left;
  const size_t pn = probe.NumRows();
  const size_t lw = left.Width();
  const size_t rw = right.Width();

  JoinBuild<Key> jb = BuildJoinTables<Key>(build.NumRows(), threads, hash,
                                           bkey, ctx, slot);
  if (slot.Failed()) return {};
  FillJoinProfInfo(jb, build.NumRows(), info);

  // Probe in contiguous ranges. A counting pre-pass over the probe rows
  // (cached chain lengths, no chain walking) gives each range its exact
  // match count, so the emit pass writes matches straight into the final
  // tuple vector at per-range offsets — no per-range buffers, no
  // concatenation copy over the full output, and the operator's memory
  // peak is the output itself rather than twice it.
  const size_t probe_ways =
      (threads > 1 && pn >= kParallelProbeThreshold) ? threads : 1;
  const bool poll = NeedsPoll(ctx);
  std::vector<IndexRange> ranges = EqualRanges(pn, probe_ways);
  std::vector<size_t> counts(ranges.size(), 0);
  ParallelInvoke(ranges.size(), [&](size_t t) {
    counts[t] = CountJoinRange(jb, ranges[t], hash, pkey);
  });
  const size_t w = lw + rw;
  size_t total = 0;
  for (size_t c : counts) total += c * w;
  if (Status st = ctx.Charge(total * sizeof(uint32_t), "join output tuples");
      !st.ok()) {
    slot.Fail(std::move(st));
    return {};
  }
  std::vector<uint32_t> tuples(total);
  std::vector<size_t> offsets(ranges.size(), 0);
  for (size_t t = 0, off = 0; t < ranges.size(); ++t) {
    offsets[t] = off;
    off += counts[t] * w;
  }
  ParallelInvoke(ranges.size(), [&](size_t t) {
    uint32_t* out = tuples.data() + offsets[t];
    StridedRun(ctx, slot, poll, ranges[t].begin, ranges[t].end,
               [&](size_t b, size_t e) {
                 out = EmitJoinRange(jb, {b, e}, hash, pkey, build, probe,
                                     build_left, lw, rw, out);
               });
  });
  if (slot.Failed()) return {};
  return tuples;
}

// Encoding-specialized key extraction for a hash join, shared by the
// materializing join and the fused join→DISTINCT. Invokes
// run(KeyTag<Key>{}, hash, bkey, pkey) with lambdas specialized for the
// key column pair, or returns false (without invoking run) when the
// encodings make the join provably empty: Value equality never crosses
// int64/double/string, so differently typed (non-mixed) key columns
// cannot match, and an all-NULL column joins nothing.
template <typename T>
struct KeyTag {
  using type = T;
};

template <typename Run>
bool WithTypedJoinKeys(const RowIdResult& build, const RowIdResult& probe,
                       const BoundColumn& bcol, const BoundColumn& pcol,
                       const ExecContext& ctx, AbortSlot& slot, Run run) {
  const Encoding be = bcol.col->encoding();
  const Encoding pe = pcol.col->encoding();
  const bool impossible = be == Encoding::kEmpty || pe == Encoding::kEmpty ||
                          (be != pe && be != Encoding::kMixed &&
                           pe != Encoding::kMixed);
  if (impossible) return false;

  if (be == Encoding::kInt64 && pe == Encoding::kInt64) {
    // int64-specialized kernel: raw key arrays, no Value, no Value::Hash.
    const ColumnVector& bc = *bcol.col;
    const ColumnVector& pc = *pcol.col;
    run(KeyTag<int64_t>{},
        [](int64_t k) { return MixInt64(static_cast<uint64_t>(k)); },
        [&](size_t i, int64_t* k) {
          const size_t id = build.RowId(bcol, i);
          if (bc.IsNull(id)) return false;
          *k = bc.Int64At(id);
          return true;
        },
        [&](size_t i, int64_t* k) {
          const size_t id = probe.RowId(pcol, i);
          if (pc.IsNull(id)) return false;
          *k = pc.Int64At(id);
          return true;
        });
    return true;
  }

  if (be == Encoding::kDouble && pe == Encoding::kDouble) {
    const ColumnVector& bc = *bcol.col;
    const ColumnVector& pc = *pcol.col;
    run(KeyTag<double>{}, [](double k) { return std::hash<double>{}(k); },
        [&](size_t i, double* k) {
          const size_t id = build.RowId(bcol, i);
          if (bc.IsNull(id)) return false;
          *k = bc.DoubleAt(id);
          return true;
        },
        [&](size_t i, double* k) {
          const size_t id = probe.RowId(pcol, i);
          if (pc.IsNull(id)) return false;
          *k = pc.DoubleAt(id);
          return true;
        });
    return true;
  }

  if (be == Encoding::kDictString && pe == Encoding::kDictString) {
    // Dictionary kernel: join on build-side codes. Both dictionaries are
    // deduplicated, so "strings equal" <=> "codes equal after translating
    // probe codes into the build dictionary" — one string lookup per
    // distinct probe value, zero per row. The probe side is translated in
    // one batched pass up front (simd::TranslateCodes chains the
    // tuple→row-id→code→build-code gathers 8 lanes at a time), so the
    // count and emit passes both read a flat int32 array instead of
    // re-deriving keys per probe row per pass.
    const ColumnVector& bc = *bcol.col;
    const ColumnVector& pc = *pcol.col;
    const rel::StringDictionary& bd = bc.dict();
    const rel::StringDictionary& pd = pc.dict();
    const bool same_dict = &bd == &pd;
    auto bkey = [&](size_t i, uint32_t* k) {
      const size_t id = build.RowId(bcol, i);
      if (bc.IsNull(id)) return false;
      *k = bc.CodeAt(id);
      return true;
    };
    constexpr size_t kMaxCode =
        static_cast<size_t>(std::numeric_limits<int32_t>::max());
    if (bd.size() > kMaxCode || pd.size() > kMaxCode) {
      // Codes beyond int32 cannot ride the batched path; keep the
      // per-row translation (practically unreachable).
      std::vector<int64_t> trans;
      if (!same_dict) {
        trans.resize(pd.size());
        for (uint32_t code = 0; code < pd.size(); ++code) {
          std::optional<uint32_t> t = bd.Find(pd.At(code));
          trans[code] = t.has_value() ? static_cast<int64_t>(*t) : -1;
        }
      }
      run(KeyTag<uint32_t>{}, [](uint32_t k) { return MixInt64(k); }, bkey,
          [&](size_t i, uint32_t* k) {
            const size_t id = probe.RowId(pcol, i);
            if (pc.IsNull(id)) return false;
            const uint32_t code = pc.CodeAt(id);
            if (same_dict) {
              *k = code;
              return true;
            }
            const int64_t t = trans[code];
            if (t < 0) return false;
            *k = static_cast<uint32_t>(t);
            return true;
          });
      return true;
    }
    const size_t pn = probe.NumRows();
    ScopedCharge trans_charge;
    if (Status st = trans_charge.Acquire(
            ctx, pd.size() * sizeof(int32_t) + pn * sizeof(int32_t),
            "join probe-code translation");
        !st.ok()) {
      slot.Fail(std::move(st));
      return true;
    }
    std::vector<int32_t> trans(pd.size());
    if (same_dict) {
      for (uint32_t code = 0; code < pd.size(); ++code) {
        trans[code] = static_cast<int32_t>(code);
      }
    } else {
      for (uint32_t code = 0; code < pd.size(); ++code) {
        std::optional<uint32_t> t = bd.Find(pd.At(code));
        trans[code] = t.has_value() ? static_cast<int32_t>(*t) : -1;
      }
    }
    // pkeys[i] = build-dictionary code of probe row i, or -1 (NULL or
    // absent from the build dictionary — joins nothing either way).
    std::vector<int32_t> pkeys(pn);
    const simd::Tier tier = simd::ActiveTier();
    const size_t stride = probe.Width();
    const uint32_t* tuples = probe.tuples.data();
    const uint32_t* codes = pc.CodeData();
    const uint8_t* nulls = pc.NullMask();
    const size_t max_row = pc.size();
    bool vec_used = false;
    const bool poll = NeedsPoll(ctx);
    StridedRun(ctx, slot, poll, 0, pn, [&](size_t b, size_t e) {
      vec_used |= simd::TranslateCodes(tier, tuples + b * stride, stride,
                                       pcol.slot, codes, trans.data(), nulls,
                                       max_row, pkeys.data() + b, e - b);
    });
    if (slot.Failed()) return true;
    (vec_used ? Metrics().simd_translate_vector
              : Metrics().simd_translate_scalar)
        ->Add(1);
    const int32_t* pk = pkeys.data();
    run(KeyTag<uint32_t>{}, [](uint32_t k) { return MixInt64(k); }, bkey,
        [pk](size_t i, uint32_t* k) {
          const int32_t t = pk[i];
          if (t < 0) return false;
          *k = static_cast<uint32_t>(t);
          return true;
        });
    return true;
  }

  // Generic fallback (a mixed-encoding key column): owned Value keys with
  // Value hashing/equality, same partitioned structure.
  run(KeyTag<rel::Value>{},
      [](const rel::Value& k) { return k.Hash(); },
      [&](size_t i, rel::Value* k) {
        rel::Value v = bcol.col->ValueAt(build.RowId(bcol, i));
        if (v.is_null()) return false;
        *k = std::move(v);
        return true;
      },
      [&](size_t i, rel::Value* k) {
        rel::Value v = pcol.col->ValueAt(probe.RowId(pcol, i));
        if (v.is_null()) return false;
        *k = std::move(v);
        return true;
      });
  return true;
}

}  // namespace

Executor::Executor(const rel::Database* db, ExecOptions options)
    : db_(db), options_(options) {
  if (options_.threads == 0) options_.threads = DefaultThreadCount();
}

Result<ResultSet> Executor::Execute(const PlanNode& plan,
                                    obs::ProfileNode* parent) const {
  if (options_.engine == ExecEngine::kRowAtATime) {
    return ExecuteRowAtATime(plan, parent);
  }
  GRAPHGEN_ASSIGN_OR_RETURN(RowIdResult result, ExecuteColumnar(plan, parent));
  GRAPHGEN_FAULT_POINT("query.materialize");
  GRAPHGEN_RETURN_NOT_OK(options_.ctx.Check());
  GRAPHGEN_RETURN_NOT_OK(options_.ctx.Charge(
      result.NumRows() * result.Width() * sizeof(rel::Value),
      "materialized result values"));
  obs::ProfileNode* prof = OpNode(parent, "materialize_values");
  obs::Span span(prof);
  Result<ResultSet> out = result.Materialize(options_.threads);
  if (prof != nullptr && out.ok()) {
    prof->rows = static_cast<int64_t>(out->NumRows());
  }
  return out;
}

Result<RowIdResult> Executor::ExecuteColumnar(const PlanNode& plan,
                                              obs::ProfileNode* parent) const {
  switch (plan.kind()) {
    case PlanNode::Kind::kScan:
      return ScanColumnar(static_cast<const ScanNode&>(plan), parent);
    case PlanNode::Kind::kHashJoin:
      return JoinColumnar(static_cast<const HashJoinNode&>(plan), parent);
    case PlanNode::Kind::kProject:
      return ProjectColumnar(static_cast<const ProjectNode&>(plan), parent);
  }
  return Status::Internal("unknown plan node type");
}

Result<ResultSet> Executor::ExecuteRowAtATime(const PlanNode& plan,
                                              obs::ProfileNode* parent) const {
  switch (plan.kind()) {
    case PlanNode::Kind::kScan:
      return ScanRows(static_cast<const ScanNode&>(plan), parent);
    case PlanNode::Kind::kHashJoin:
      return JoinRows(static_cast<const HashJoinNode&>(plan), parent);
    case PlanNode::Kind::kProject:
      return ProjectRows(static_cast<const ProjectNode&>(plan), parent);
  }
  return Status::Internal("unknown plan node type");
}

// ---------------------------------------------------------------- columnar

Result<RowIdResult> Executor::ScanColumnar(const ScanNode& node,
                                           obs::ProfileNode* parent) const {
  GRAPHGEN_FAULT_POINT("query.scan");
  GRAPHGEN_RETURN_NOT_OK(options_.ctx.Check());
  obs::ProfileNode* prof = OpNode(parent, "scan", node.table());
  obs::Span span(prof);
  GRAPHGEN_ASSIGN_OR_RETURN(const rel::Table* table,
                            db_->GetTable(node.table()));
  for (const Predicate& p : node.predicates()) {
    if (p.column >= table->NumColumns()) {
      return Status::PlanError("predicate column out of range for table " +
                               node.table());
    }
  }
  for (const SemiJoin& sj : node.semi_joins()) {
    if (sj.column >= table->NumColumns()) {
      return Status::PlanError("semi-join column out of range for table " +
                               node.table());
    }
  }
  const size_t n = table->NumRows();
  if (n > std::numeric_limits<uint32_t>::max()) {
    return Status::Unsupported("table " + node.table() +
                               " exceeds 2^32 rows");
  }
  // Delta scans range the row window to [row_begin, row_end) ∩ [0, n);
  // the full-table default leaves rb = 0, re = n.
  const size_t rb = std::min(node.row_begin(), n);
  const size_t re = std::max(rb, std::min(node.row_end(), n));
  const size_t rows_in = re - rb;
  RowIdResult out;
  out.schema = table->schema();
  out.origins.assign(table->NumColumns(), node.table());
  out.sources = {table};
  out.columns.resize(table->NumColumns());
  for (size_t c = 0; c < table->NumColumns(); ++c) {
    out.columns[c] = {0, static_cast<uint32_t>(c)};
  }
  Metrics().scan_rows_in->Add(rows_in);
  if (node.predicates().empty() && node.semi_joins().empty()) {
    GRAPHGEN_RETURN_NOT_OK(options_.ctx.Charge(rows_in * sizeof(uint32_t),
                                               "scan selection vector"));
    out.tuples.resize(rows_in);
    ParallelFor(
        rows_in,
        [&](size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            out.tuples[i] = static_cast<uint32_t>(rb + i);
          }
        },
        options_.threads);
    Metrics().scan_rows_out->Add(rows_in);
    if (prof != nullptr) {
      prof->rows = static_cast<int64_t>(rows_in);
      prof->AddStat("rows_in", static_cast<double>(rows_in));
    }
    return out;
  }

  // Compile each predicate/filter against its column's physical encoding,
  // then evaluate column-at-a-time over morsel-sized sub-ranges into a
  // byte mask; the in-order collect makes the selection vector identical
  // to a serial scan's for every thread count.
  std::vector<CompiledPredicate> preds;
  preds.reserve(node.predicates().size());
  for (const Predicate& p : node.predicates()) {
    preds.push_back(CompilePredicate(table->column(p.column), p));
  }
  std::vector<CompiledSemiJoin> filters;
  filters.reserve(node.semi_joins().size());
  for (const SemiJoin& sj : node.semi_joins()) {
    filters.push_back(CompileSemiJoin(table->column(sj.column), sj));
  }

  // The keep mask stays table-sized because the compiled kernels index
  // absolute row ids; only [rb, re) is ever evaluated or collected, so a
  // narrow delta window does proportionally little work.
  ScopedCharge keep_charge;
  GRAPHGEN_RETURN_NOT_OK(
      keep_charge.Acquire(options_.ctx, n, "scan keep mask"));
  std::vector<uint8_t> keep(n, 1);
  const size_t ways =
      (options_.threads > 1 && rows_in >= kParallelScanThreshold)
          ? options_.threads
          : 1;
  const bool poll = NeedsPoll(options_.ctx);
  const simd::Tier tier = simd::ActiveTier();
  AbortSlot slot;
  ParallelForRanges(EqualRanges(rows_in, ways), [&](size_t begin, size_t end) {
    for (size_t mb = rb + begin; mb < rb + end; mb += kScanMorselRows) {
      if (poll && !slot.Continue(options_.ctx)) return;
      const size_t me = std::min(rb + end, mb + kScanMorselRows);
      for (const CompiledPredicate& cp : preds) {
        cp.Apply(tier, mb, me, keep.data());
      }
      for (const CompiledSemiJoin& cf : filters) {
        cf.Apply(tier, mb, me, keep.data());
      }
    }
  });
  GRAPHGEN_RETURN_NOT_OK(slot.Take());
  (tier == simd::Tier::kAvx2 ? Metrics().simd_scan_vector
                             : Metrics().simd_scan_scalar)
      ->Add(1);
  GRAPHGEN_RETURN_NOT_OK(options_.ctx.Charge(rows_in * sizeof(uint32_t),
                                             "scan selection vector"));
  out.tuples.reserve(rows_in);
  for (size_t i = rb; i < re; ++i) {
    if (keep[i] != 0) out.tuples.push_back(static_cast<uint32_t>(i));
  }
  Metrics().scan_rows_out->Add(out.tuples.size());
  if (prof != nullptr) {
    prof->rows = static_cast<int64_t>(out.tuples.size());
    prof->AddStat("rows_in", static_cast<double>(rows_in));
    prof->AddStat("predicates", static_cast<double>(node.predicates().size()));
    prof->AddStat("semi_joins", static_cast<double>(node.semi_joins().size()));
    prof->AddStat("morsels", static_cast<double>(
        (rows_in + kScanMorselRows - 1) / kScanMorselRows));
    prof->AddNote("simd", simd::TierName());
  }
  return out;
}

namespace {

// Shared setup of a hash join whose children have executed: validates the
// key columns, picks the build side (smaller input — the same heuristic
// as the row engine, so both engines emit identical row order), guards
// the int32 chain indices, and assembles the join's output metadata
// (concatenated sources/bindings + qualified schema) into *joined with
// tuples left empty. Used by the materializing join and the fused
// join→DISTINCT so their setups cannot drift apart.
struct JoinSides {
  bool build_left = false;
  size_t build_col = 0;
  size_t probe_col = 0;
};

Result<JoinSides> PrepareJoin(const HashJoinNode& node,
                              const RowIdResult& left,
                              const RowIdResult& right, RowIdResult* joined) {
  if (node.left_col() >= left.schema.NumColumns() ||
      node.right_col() >= right.schema.NumColumns()) {
    return Status::PlanError("join column out of range");
  }
  JoinSides sides;
  sides.build_left = left.NumRows() <= right.NumRows();
  sides.build_col = sides.build_left ? node.left_col() : node.right_col();
  sides.probe_col = sides.build_left ? node.right_col() : node.left_col();
  // FlatChainTable chains build rows through int32 indices.
  if ((sides.build_left ? left : right).NumRows() >
      std::numeric_limits<int32_t>::max()) {
    return Status::Unsupported("join build side exceeds 2^31 rows");
  }
  joined->sources = left.sources;
  joined->sources.insert(joined->sources.end(), right.sources.begin(),
                         right.sources.end());
  const size_t lw = left.Width();
  joined->columns = left.columns;
  for (const ColumnBinding& b : right.columns) {
    joined->columns.push_back(
        {static_cast<uint32_t>(b.source + lw), b.column});
  }
  JoinOutputSchema(left.schema, left.origins, right.schema, right.origins,
                   &joined->schema, &joined->origins);
  return sides;
}

}  // namespace

Result<RowIdResult> Executor::JoinColumnar(const HashJoinNode& node,
                                           obs::ProfileNode* parent) const {
  GRAPHGEN_FAULT_POINT("query.join.build.alloc");
  GRAPHGEN_RETURN_NOT_OK(options_.ctx.Check());
  obs::ProfileNode* prof = OpNode(parent, "hash_join");
  obs::Span span(prof);
  GRAPHGEN_ASSIGN_OR_RETURN(RowIdResult left,
                            ExecuteColumnar(node.left(), prof));
  GRAPHGEN_ASSIGN_OR_RETURN(RowIdResult right,
                            ExecuteColumnar(node.right(), prof));
  RowIdResult out;
  GRAPHGEN_ASSIGN_OR_RETURN(JoinSides sides,
                            PrepareJoin(node, left, right, &out));
  const RowIdResult& build = sides.build_left ? left : right;
  const RowIdResult& probe = sides.build_left ? right : left;
  const BoundColumn bcol = build.Bind(sides.build_col);
  const BoundColumn pcol = probe.Bind(sides.probe_col);
  const size_t threads = options_.threads;

  // An impossible key-encoding pair (WithTypedJoinKeys returns false)
  // leaves tuples empty — correct schema/bindings, no rows.
  JoinProfInfo info;
  AbortSlot slot;
  WithTypedJoinKeys(
      build, probe, bcol, pcol, options_.ctx, slot,
      [&](auto tag, auto hash, auto bkey, auto pkey) {
        using Key = typename decltype(tag)::type;
        out.tuples = PartitionedJoin<Key>(left, right, sides.build_left,
                                          threads, hash, bkey, pkey,
                                          options_.ctx, slot,
                                          prof != nullptr ? &info : nullptr);
      });
  GRAPHGEN_RETURN_NOT_OK(slot.Take());
  const size_t matches = out.NumRows();
  Metrics().join_build_rows->Add(build.NumRows());
  Metrics().join_probe_rows->Add(probe.NumRows());
  Metrics().join_matches->Add(matches);
  (simd::ActiveTier() == simd::Tier::kAvx2 ? Metrics().simd_probe_vector
                                           : Metrics().simd_probe_scalar)
      ->Add(1);
  if (prof != nullptr) {
    prof->rows = static_cast<int64_t>(matches);
    prof->AddStat("build_rows", static_cast<double>(build.NumRows()));
    prof->AddStat("probe_rows", static_cast<double>(probe.NumRows()));
    prof->AddStat("partitions", static_cast<double>(info.partitions));
    if (info.capacity > 0) {
      prof->AddStat("load_factor", static_cast<double>(info.build_keys) /
                                       static_cast<double>(info.capacity));
    }
    prof->AddNote("build_side", sides.build_left ? "left" : "right");
    prof->AddNote("simd", simd::TierName());
  }
  return out;
}

Result<RowIdResult> Executor::JoinDistinctColumnar(
    const ProjectNode& node, const HashJoinNode& join,
    obs::ProfileNode* parent) const {
  GRAPHGEN_FAULT_POINT("query.join_distinct.alloc");
  GRAPHGEN_RETURN_NOT_OK(options_.ctx.Check());
  obs::ProfileNode* prof = OpNode(parent, "join_distinct");
  obs::Span span(prof);
  GRAPHGEN_ASSIGN_OR_RETURN(RowIdResult left,
                            ExecuteColumnar(join.left(), prof));
  GRAPHGEN_ASSIGN_OR_RETURN(RowIdResult right,
                            ExecuteColumnar(join.right(), prof));
  // The join initially contributes only its output *metadata* (sources,
  // bindings, qualified schema); whether its tuple vector is ever built
  // is the fusion decision below.
  RowIdResult joined;
  GRAPHGEN_ASSIGN_OR_RETURN(JoinSides sides,
                            PrepareJoin(join, left, right, &joined));
  const bool build_left = sides.build_left;
  const RowIdResult& build = build_left ? left : right;
  const RowIdResult& probe = build_left ? right : left;
  const size_t lw = left.Width();
  const size_t rw = right.Width();

  RowIdResult out;
  GRAPHGEN_RETURN_NOT_OK(ProjectOutputSchema(
      node, joined.schema, joined.origins, &out.schema, &out.origins));
  out.sources = joined.sources;
  out.columns.reserve(node.columns().size());
  for (size_t c : node.columns()) out.columns.push_back(joined.columns[c]);

  std::vector<DistinctCol> cols;
  cols.reserve(node.columns().size());
  for (size_t c : node.columns()) {
    cols.push_back(DistinctCol::Make(joined.Bind(c)));
  }

  const BoundColumn bcol = build.Bind(sides.build_col);
  const BoundColumn pcol = probe.Bind(sides.probe_col);
  const size_t threads = options_.threads;
  const size_t w = lw + rw;
  const size_t pn = probe.NumRows();

  bool fused = false;
  size_t matches = 0;
  size_t fused_morsels = 0;
  JoinProfInfo info;
  AbortSlot slot;
  const bool poll = NeedsPoll(options_.ctx);
  const bool vec_tier = simd::ActiveTier() == simd::Tier::kAvx2;
  WithTypedJoinKeys(build, probe, bcol, pcol, options_.ctx, slot,
                    [&](auto tag, auto hash, auto bkey, auto pkey) {
    using Key = typename decltype(tag)::type;
    JoinBuild<Key> jb = BuildJoinTables<Key>(build.NumRows(), threads, hash,
                                             bkey, options_.ctx, slot);
    if (slot.Failed()) return;
    FillJoinProfInfo(jb, build.NumRows(), prof != nullptr ? &info : nullptr);

    const size_t probe_ways =
        (threads > 1 && pn >= kParallelProbeThreshold) ? threads : 1;
    std::vector<IndexRange> ranges = EqualRanges(pn, probe_ways);

    // Count pass: O(probe rows) chain-length lookups give every range's
    // exact match count — and therefore the join's exact output size —
    // before a single tuple is emitted.
    std::vector<size_t> expected(ranges.size(), 0);
    ParallelInvoke(ranges.size(), [&](size_t t) {
      StridedRun(options_.ctx, slot, poll, ranges[t].begin, ranges[t].end,
                 [&](size_t b, size_t e) {
                   expected[t] += CountJoinRange(jb, {b, e}, hash, pkey);
                 });
    });
    if (slot.Failed()) return;
    size_t total_matches = 0;
    for (size_t e : expected) total_matches += e;
    matches = total_matches;
    for (size_t e : expected) {
      fused_morsels += (e + kFusedMorselRows - 1) / kFusedMorselRows;
    }

    // Fusion trades the materialize→rehash→re-read passes for streaming
    // dedup; that wins once the output is too large to stay
    // cache-resident and costs slightly otherwise, so small outputs
    // materialize and take the classic DISTINCT below.
    fused = total_matches * w * sizeof(uint32_t) >=
            std::max<size_t>(options_.fuse_min_output_bytes, 1);
    if (!fused) {
      // Materializing branch: the exact per-range counts place every
      // range's matches directly into the final tuple vector, so the
      // peak is the output itself — no per-range buffers, no
      // concatenation pass.
      if (Status st = options_.ctx.Charge(
              total_matches * w * sizeof(uint32_t),
              "materialized join output");
          !st.ok()) {
        slot.Fail(std::move(st));
        return;
      }
      joined.tuples.resize(total_matches * w);
      std::vector<size_t> offsets(ranges.size(), 0);
      for (size_t t = 0, off = 0; t < ranges.size(); ++t) {
        offsets[t] = off;
        off += expected[t] * w;
      }
      ParallelInvoke(ranges.size(), [&](size_t t) {
        uint32_t* out = joined.tuples.data() + offsets[t];
        StridedRun(options_.ctx, slot, poll, ranges[t].begin, ranges[t].end,
                   [&](size_t b, size_t e) {
                     out = EmitJoinRange(jb, {b, e}, hash, pkey, build, probe,
                                         build_left, lw, rw, out);
                   });
      });
      return;
    }

    // Each probe range streams its matches into a range-local
    // first-occurrence set through a bounded morsel buffer: matches
    // accumulate as concatenated tuples, and a full morsel is hashed in
    // one tight pass and offered to the set in a second — the same
    // batched loop shape as the unfused operators, without ever holding
    // more than one morsel of un-deduplicated join output per thread.
    // The exact per-range counts presize each set, so the offer loop
    // never rehashes.
    std::vector<std::unique_ptr<FusedDistinctSet>> locals(ranges.size());
    ParallelInvoke(ranges.size(), [&](size_t t) {
      // Worst case every offer survives: slot table (+ probe tags) +
      // tuple/hash storage.
      const size_t set_bytes =
          TableCapacity(expected[t], vec_tier) *
              (sizeof(uint32_t) + sizeof(uint8_t)) +
          expected[t] * (w * sizeof(uint32_t) + sizeof(uint64_t));
      if (Status st = options_.ctx.Charge(set_bytes, "fused DISTINCT set");
          !st.ok()) {
        slot.Fail(std::move(st));
        return;
      }
      locals[t] =
          std::make_unique<FusedDistinctSet>(w, cols, expected[t], vec_tier);
      FuseJoinRange(jb, ranges[t], hash, pkey, build, probe, build_left, lw,
                    rw, cols, *locals[t], options_.ctx, slot, poll);
    });
    if (slot.Failed()) return;

    if (ranges.size() == 1) {
      out.tuples.assign(locals[0]->tuples(),
                        locals[0]->tuples() + locals[0]->size() * w);
      return;
    }
    // A range's survivors are its in-range-first occurrences in emission
    // order, so merging ranges in index order keeps exactly the
    // globally-first occurrence of every key, in the serial join's
    // emission order — bit-identical to the unfused operator chain.
    std::vector<size_t> bases(locals.size() + 1, 0);
    for (size_t r = 0; r < locals.size(); ++r) {
      bases[r + 1] = bases[r] + locals[r]->size();
    }
    const size_t offered = bases.back();
    const size_t merge_ways =
        (threads > 1 && offered >= kParallelDistinctThreshold)
            ? std::min(threads, kMaxPartitions)
            : 1;
    if (merge_ways == 1) {
      FusedDistinctSet global(w, cols, offered, vec_tier);
      for (const auto& local : locals) {
        const uint32_t* lt = local->tuples();
        const uint64_t* lh = local->hashes();
        global.ReserveBatch(local->size());
        const size_t ln = local->size();
        for (size_t i = 0; i < ln; ++i) {
          if (i + 2 * kProbePrefetchDist < ln) {
            global.PrefetchSlot(lh[i + 2 * kProbePrefetchDist]);
          }
          if (i + kProbePrefetchDist < ln) {
            global.WarmProbe(lh[i + kProbePrefetchDist]);
          }
          global.Insert(lt + i * w, lh[i]);
        }
      }
      out.tuples.assign(global.tuples(),
                        global.tuples() + global.size() * w);
      return;
    }
    // Low-duplication joins leave most offers alive in every range, so
    // the concatenated survivor stream can approach the original match
    // count and a serial re-insert walk becomes the pipeline's wall.
    // Keys land in exactly one hash partition, so each partition worker
    // replays the whole stream for its keys independently; a bitmap over
    // stream ordinals records who survived, and prefix popcount ranks
    // place every survivor at its serial output position — the same
    // tuples in the same order as the serial merge.
    std::vector<uint64_t> bits((offered + 63) / 64, 0);
    ParallelInvoke(merge_ways, [&](size_t p) {
      FusedDistinctSet part(w, cols, offered / merge_ways + 1, vec_tier);
      for (size_t r = 0; r < locals.size(); ++r) {
        const uint32_t* lt = locals[r]->tuples();
        const uint64_t* lh = locals[r]->hashes();
        const size_t ln = locals[r]->size();
        for (size_t i = 0; i < ln; ++i) {
          if (lh[i] % merge_ways != p) continue;
          const size_t f = i + kProbePrefetchDist;
          if (f < ln && lh[f] % merge_ways == p) part.PrefetchSlot(lh[f]);
          part.ReserveBatch(1);
          if (part.Insert(lt + i * w, lh[i])) {
            const size_t o = bases[r] + i;
            std::atomic_ref<uint64_t>(bits[o >> 6])
                .fetch_or(uint64_t{1} << (o & 63),
                          std::memory_order_relaxed);
          }
        }
      }
    });
    std::vector<size_t> rank(bits.size() + 1, 0);
    for (size_t i = 0; i < bits.size(); ++i) {
      rank[i + 1] = rank[i] + static_cast<size_t>(std::popcount(bits[i]));
    }
    out.tuples.resize(rank.back() * w);
    ParallelInvoke(locals.size(), [&](size_t r) {
      const uint32_t* lt = locals[r]->tuples();
      const size_t ln = locals[r]->size();
      for (size_t i = 0; i < ln; ++i) {
        const size_t o = bases[r] + i;
        const uint64_t word = bits[o >> 6];
        if ((word & (uint64_t{1} << (o & 63))) == 0) continue;
        const size_t pos =
            rank[o >> 6] +
            static_cast<size_t>(
                std::popcount(word & ((uint64_t{1} << (o & 63)) - 1)));
        uint32_t* dst = out.tuples.data() + pos * w;
        for (size_t j = 0; j < w; ++j) dst[j] = lt[i * w + j];
      }
    });
  });
  GRAPHGEN_RETURN_NOT_OK(slot.Take());
  Metrics().join_build_rows->Add(build.NumRows());
  Metrics().join_probe_rows->Add(probe.NumRows());
  Metrics().join_matches->Add(matches);
  (fused ? Metrics().fused_pipelines : Metrics().unfused_pipelines)->Add(1);
  (vec_tier ? Metrics().simd_probe_vector : Metrics().simd_probe_scalar)
      ->Add(1);
  if (prof != nullptr) {
    prof->AddStat("build_rows", static_cast<double>(build.NumRows()));
    prof->AddStat("probe_rows", static_cast<double>(probe.NumRows()));
    prof->AddStat("join_matches", static_cast<double>(matches));
    prof->AddStat("partitions", static_cast<double>(info.partitions));
    if (info.capacity > 0) {
      prof->AddStat("load_factor", static_cast<double>(info.build_keys) /
                                       static_cast<double>(info.capacity));
    }
    prof->AddStat("est_join_bytes",
                  static_cast<double>(matches * w * sizeof(uint32_t)));
    prof->AddNote("fused", fused ? "yes" : "no");
    prof->AddNote("simd", simd::TierName());
  }
  if (!fused) {
    // Below the fusion threshold (or an impossible key pairing): the
    // materialized join runs through the ordinary projection tail.
    return ProjectFromChild(node, std::move(joined), prof);
  }
  Metrics().distinct_rows_in->Add(matches);
  Metrics().distinct_rows_out->Add(out.NumRows());
  if (prof != nullptr) {
    prof->rows = static_cast<int64_t>(out.NumRows());
    prof->AddStat("morsels", static_cast<double>(fused_morsels));
  }
  return out;
}

Result<RowIdResult> Executor::ProjectColumnar(const ProjectNode& node,
                                              obs::ProfileNode* parent) const {
  if (node.distinct() && options_.fuse_join_distinct &&
      node.child().kind() == PlanNode::Kind::kHashJoin) {
    return JoinDistinctColumnar(
        node, static_cast<const HashJoinNode&>(node.child()), parent);
  }
  obs::ProfileNode* prof =
      OpNode(parent, node.distinct() ? "project_distinct" : "project");
  obs::Span span(prof);
  GRAPHGEN_ASSIGN_OR_RETURN(RowIdResult child,
                            ExecuteColumnar(node.child(), prof));
  return ProjectFromChild(node, std::move(child), prof);
}

Result<RowIdResult> Executor::ProjectFromChild(const ProjectNode& node,
                                               RowIdResult child,
                                               obs::ProfileNode* prof) const {
  GRAPHGEN_FAULT_POINT("query.distinct.alloc");
  GRAPHGEN_RETURN_NOT_OK(options_.ctx.Check());
  RowIdResult out;
  GRAPHGEN_RETURN_NOT_OK(ProjectOutputSchema(node, child.schema, child.origins,
                                             &out.schema, &out.origins));
  out.sources = child.sources;
  out.columns.reserve(node.columns().size());
  for (size_t c : node.columns()) out.columns.push_back(child.columns[c]);
  if (!node.distinct()) {
    out.tuples = std::move(child.tuples);
    if (prof != nullptr) prof->rows = static_cast<int64_t>(out.NumRows());
    return out;
  }

  // DISTINCT: keep the first occurrence of every projected key, in input
  // order. Hashing and equality run on the typed base columns (raw int64
  // arrays, dictionary codes) — a row never materializes a Value. Parallel
  // mode partitions rows by key hash; within a partition rows are visited
  // in ascending index order, so each partition's survivors are exactly
  // the globally-first occurrences of its keys, and the index merge
  // reproduces the serial order bit for bit.
  const size_t n = child.NumRows();
  if (n > std::numeric_limits<uint32_t>::max()) {
    return Status::Unsupported("DISTINCT input exceeds 2^32 rows");
  }
  std::vector<DistinctCol> cols;
  cols.reserve(node.columns().size());
  for (size_t c : node.columns()) {
    cols.push_back(DistinctCol::Make(child.Bind(c)));
  }

  const size_t w0 = child.Width();
  // Hash array + first-occurrence slot tables are DISTINCT scratch,
  // refunded when the operator returns; the poll stride keeps an armed
  // deadline responsive even on a single huge partition.
  const bool vec_tier = simd::ActiveTier() == simd::Tier::kAvx2;
  ScopedCharge scratch;
  GRAPHGEN_RETURN_NOT_OK(scratch.Acquire(
      options_.ctx,
      n * sizeof(uint64_t) +
          TableCapacity(n, vec_tier) * (sizeof(uint32_t) + sizeof(uint8_t)),
      "DISTINCT hash scratch"));
  const bool poll = NeedsPoll(options_.ctx);
  AbortSlot slot;
  std::vector<uint64_t> hashes(n);
  ParallelFor(
      n,
      [&](size_t begin, size_t end) {
        StridedRun(options_.ctx, slot, poll, begin, end,
                   [&](size_t b, size_t e) {
                     for (size_t i = b; i < e; ++i) {
                       // FNV combine + final avalanche (the flat set masks
                       // low bits).
                       hashes[i] = DistinctHash(cols, &child.tuples[i * w0]);
                     }
                   });
      },
      options_.threads);
  GRAPHGEN_RETURN_NOT_OK(slot.Take());

  std::vector<uint32_t> survivors;
  const size_t partitions =
      (options_.threads > 1 && n >= kParallelDistinctThreshold)
          ? std::min(options_.threads, kMaxPartitions)
          : 1;
  if (partitions == 1) {
    FlatDistinctSet seen(n, hashes, child, cols, vec_tier);
    survivors.reserve(n);
    size_t tick = kCancelStrideRows;
    for (size_t i = 0; i < n; ++i) {
      if (poll && --tick == 0) {
        tick = kCancelStrideRows;
        GRAPHGEN_RETURN_NOT_OK(options_.ctx.Check());
      }
      if (i + 2 * kProbePrefetchDist < n) {
        seen.PrefetchSlot(static_cast<uint32_t>(i + 2 * kProbePrefetchDist));
      }
      if (i + kProbePrefetchDist < n) {
        seen.WarmProbe(static_cast<uint32_t>(i + kProbePrefetchDist));
      }
      if (seen.Insert(static_cast<uint32_t>(i))) {
        survivors.push_back(static_cast<uint32_t>(i));
      }
    }
  } else {
    std::vector<std::vector<uint32_t>> parts(partitions);
    ParallelInvoke(partitions, [&](size_t p) {
      size_t mine = 0;
      for (size_t i = 0; i < n; ++i) {
        if (hashes[i] % partitions == p) ++mine;
      }
      FlatDistinctSet seen(mine, hashes, child, cols, vec_tier);
      StridedRun(options_.ctx, slot, poll, 0, n, [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i) {
          if (hashes[i] % partitions != p) continue;
          // Only hint rows this partition will actually probe; a foreign
          // row's slot in our table is never touched.
          const size_t f = i + kProbePrefetchDist;
          if (f < e && hashes[f] % partitions == p) {
            seen.PrefetchSlot(static_cast<uint32_t>(f));
          }
          if (seen.Insert(static_cast<uint32_t>(i))) {
            parts[p].push_back(static_cast<uint32_t>(i));
          }
        }
      });
    });
    GRAPHGEN_RETURN_NOT_OK(slot.Take());
    size_t total = 0;
    for (const auto& part : parts) total += part.size();
    survivors.reserve(total);
    for (const auto& part : parts) {
      survivors.insert(survivors.end(), part.begin(), part.end());
    }
    std::sort(survivors.begin(), survivors.end());
  }

  const size_t w = child.Width();
  out.tuples.resize(survivors.size() * w);
  ParallelFor(
      survivors.size(),
      [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          const uint32_t* src = &child.tuples[survivors[i] * w];
          std::copy(src, src + w, &out.tuples[i * w]);
        }
      },
      options_.threads);
  Metrics().distinct_rows_in->Add(n);
  Metrics().distinct_rows_out->Add(survivors.size());
  (vec_tier ? Metrics().simd_probe_vector : Metrics().simd_probe_scalar)
      ->Add(1);
  if (prof != nullptr) {
    prof->rows = static_cast<int64_t>(survivors.size());
    prof->AddStat("distinct_in", static_cast<double>(n));
    prof->AddStat("distinct_partitions", static_cast<double>(partitions));
    prof->AddNote("simd", simd::TierName());
  }
  return out;
}

// ------------------------------------------------------------ row-at-a-time

Result<ResultSet> Executor::ScanRows(const ScanNode& node,
                                     obs::ProfileNode* parent) const {
  GRAPHGEN_FAULT_POINT("query.row.scan");
  GRAPHGEN_RETURN_NOT_OK(options_.ctx.Check());
  obs::ProfileNode* prof = OpNode(parent, "scan", node.table());
  obs::Span span(prof);
  GRAPHGEN_ASSIGN_OR_RETURN(const rel::Table* table,
                            db_->GetTable(node.table()));
  ResultSet out;
  out.schema = table->schema();
  out.origins.assign(table->NumColumns(), node.table());
  for (const Predicate& p : node.predicates()) {
    if (p.column >= table->NumColumns()) {
      return Status::PlanError("predicate column out of range for table " +
                               node.table());
    }
  }
  for (const SemiJoin& sj : node.semi_joins()) {
    if (sj.column >= table->NumColumns()) {
      return Status::PlanError("semi-join column out of range for table " +
                               node.table());
    }
  }
  const size_t rb = std::min(node.row_begin(), table->NumRows());
  const size_t re =
      std::max(rb, std::min(node.row_end(), table->NumRows()));
  const bool unfiltered =
      node.predicates().empty() && node.semi_joins().empty();
  out.rows.reserve(unfiltered ? re - rb : 0);
  const bool poll = NeedsPoll(options_.ctx);
  for (size_t i = rb; i < re; ++i) {
    if (poll && i % kCancelStrideRows == 0) {
      GRAPHGEN_RETURN_NOT_OK(options_.ctx.Check());
    }
    rel::Row row = table->row(i);
    bool keep = true;
    for (const Predicate& p : node.predicates()) {
      if (!p.Matches(row)) {
        keep = false;
        break;
      }
    }
    for (const SemiJoin& sj : node.semi_joins()) {
      if (!keep) break;
      if (!sj.keys->Contains(row[sj.column])) keep = false;
    }
    if (keep) out.rows.push_back(std::move(row));
  }
  if (prof != nullptr) {
    prof->rows = static_cast<int64_t>(out.NumRows());
    prof->AddStat("rows_in", static_cast<double>(re - rb));
  }
  return out;
}

Result<ResultSet> Executor::JoinRows(const HashJoinNode& node,
                                     obs::ProfileNode* parent) const {
  GRAPHGEN_FAULT_POINT("query.row.join");
  GRAPHGEN_RETURN_NOT_OK(options_.ctx.Check());
  obs::ProfileNode* prof = OpNode(parent, "hash_join");
  obs::Span span(prof);
  GRAPHGEN_ASSIGN_OR_RETURN(ResultSet left,
                            ExecuteRowAtATime(node.left(), prof));
  GRAPHGEN_ASSIGN_OR_RETURN(ResultSet right,
                            ExecuteRowAtATime(node.right(), prof));
  if (node.left_col() >= left.schema.NumColumns() ||
      node.right_col() >= right.schema.NumColumns()) {
    return Status::PlanError("join column out of range");
  }

  // Build on the smaller side.
  const bool build_left = left.NumRows() <= right.NumRows();
  const ResultSet& build = build_left ? left : right;
  const ResultSet& probe = build_left ? right : left;
  const size_t build_col = build_left ? node.left_col() : node.right_col();
  const size_t probe_col = build_left ? node.right_col() : node.left_col();

  std::unordered_map<rel::Value, std::vector<size_t>, rel::ValueHash> ht;
  ht.reserve(build.NumRows());
  const bool build_poll = NeedsPoll(options_.ctx);
  for (size_t i = 0; i < build.NumRows(); ++i) {
    if (build_poll && i % kCancelStrideRows == 0) {
      GRAPHGEN_RETURN_NOT_OK(options_.ctx.Check());
    }
    const rel::Value& key = build.rows[i][build_col];
    if (key.is_null()) continue;  // SQL semantics: NULL joins nothing.
    ht[key].push_back(i);
  }

  ResultSet out;
  JoinOutputSchema(left.schema, left.origins, right.schema, right.origins,
                   &out.schema, &out.origins);
  const bool poll = NeedsPoll(options_.ctx);
  size_t tick = kCancelStrideRows;
  for (const rel::Row& prow : probe.rows) {
    if (poll && --tick == 0) {
      tick = kCancelStrideRows;
      GRAPHGEN_RETURN_NOT_OK(options_.ctx.Check());
    }
    const rel::Value& key = prow[probe_col];
    if (key.is_null()) continue;
    auto it = ht.find(key);
    if (it == ht.end()) continue;
    for (size_t bi : it->second) {
      const rel::Row& brow = build.rows[bi];
      rel::Row joined;
      joined.reserve(left.schema.NumColumns() + right.schema.NumColumns());
      const rel::Row& lrow = build_left ? brow : prow;
      const rel::Row& rrow = build_left ? prow : brow;
      joined.insert(joined.end(), lrow.begin(), lrow.end());
      joined.insert(joined.end(), rrow.begin(), rrow.end());
      out.rows.push_back(std::move(joined));
    }
  }
  if (prof != nullptr) {
    prof->rows = static_cast<int64_t>(out.NumRows());
    prof->AddStat("build_rows", static_cast<double>(build.NumRows()));
    prof->AddStat("probe_rows", static_cast<double>(probe.NumRows()));
  }
  return out;
}

Result<ResultSet> Executor::ProjectRows(const ProjectNode& node,
                                        obs::ProfileNode* parent) const {
  GRAPHGEN_FAULT_POINT("query.row.project");
  GRAPHGEN_RETURN_NOT_OK(options_.ctx.Check());
  obs::ProfileNode* prof =
      OpNode(parent, node.distinct() ? "project_distinct" : "project");
  obs::Span span(prof);
  GRAPHGEN_ASSIGN_OR_RETURN(ResultSet child,
                            ExecuteRowAtATime(node.child(), prof));
  ResultSet out;
  GRAPHGEN_RETURN_NOT_OK(ProjectOutputSchema(node, child.schema, child.origins,
                                             &out.schema, &out.origins));

  std::unordered_set<rel::Row, RowHash> seen;
  if (node.distinct()) seen.reserve(child.NumRows());
  out.rows.reserve(child.NumRows());
  const bool poll = NeedsPoll(options_.ctx);
  size_t tick = kCancelStrideRows;
  for (const rel::Row& row : child.rows) {
    if (poll && --tick == 0) {
      tick = kCancelStrideRows;
      GRAPHGEN_RETURN_NOT_OK(options_.ctx.Check());
    }
    rel::Row projected;
    projected.reserve(node.columns().size());
    for (size_t c : node.columns()) projected.push_back(row[c]);
    if (node.distinct()) {
      if (!seen.insert(projected).second) continue;
    }
    out.rows.push_back(std::move(projected));
  }
  if (prof != nullptr) {
    prof->rows = static_cast<int64_t>(out.NumRows());
    if (node.distinct()) {
      prof->AddStat("distinct_in", static_cast<double>(child.NumRows()));
    }
  }
  return out;
}

}  // namespace graphgen::query
