#include "query/executor.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "common/parallel.h"

namespace graphgen::query {

namespace {

// Below these sizes the spawn/partition overhead outweighs the win; the
// operator runs its serial path (output is identical either way).
constexpr size_t kParallelScanThreshold = 1 << 13;
constexpr size_t kParallelProbeThreshold = 1 << 12;
constexpr size_t kPartitionedBuildThreshold = 1 << 11;
constexpr size_t kParallelDistinctThreshold = 1 << 13;
constexpr size_t kMaxPartitions = 16;

// Combines hashes of projected row values (FNV-style mix).
struct RowHash {
  size_t operator()(const rel::Row& r) const {
    size_t h = 1469598103934665603ull;
    for (const rel::Value& v : r) {
      h ^= v.Hash();
      h *= 1099511628211ull;
    }
    return h;
  }
};

// Splits [0, n) into at most `parts` equal contiguous chunks.
std::vector<IndexRange> EqualRanges(size_t n, size_t parts) {
  parts = std::max<size_t>(1, std::min(parts, n));
  const size_t chunk = (n + parts - 1) / parts;
  std::vector<IndexRange> ranges;
  for (size_t begin = 0; begin < n; begin += chunk) {
    ranges.push_back({begin, std::min(n, begin + chunk)});
  }
  if (ranges.empty()) ranges.push_back({0, 0});
  return ranges;
}

// Output schema of a hash join: left columns keep their names; a right
// column whose name is already taken is qualified as "<table>.<name>"
// and, if even that collides (self-joins), suffixed "#2", "#3", ... —
// deterministic, so downstream name resolution is unambiguous.
void JoinOutputSchema(const rel::Schema& left,
                      const std::vector<std::string>& left_origins,
                      const rel::Schema& right,
                      const std::vector<std::string>& right_origins,
                      rel::Schema* out_schema,
                      std::vector<std::string>* out_origins) {
  std::vector<rel::ColumnDef> cols = left.columns();
  std::unordered_set<std::string> taken;
  taken.reserve(cols.size() + right.NumColumns());
  for (const rel::ColumnDef& c : cols) taken.insert(c.name);
  out_origins->clear();
  out_origins->reserve(cols.size() + right.NumColumns());
  for (size_t i = 0; i < left.NumColumns(); ++i) {
    out_origins->push_back(i < left_origins.size() ? left_origins[i] : "");
  }
  for (size_t i = 0; i < right.NumColumns(); ++i) {
    rel::ColumnDef def = right.column(i);
    const std::string origin =
        i < right_origins.size() ? right_origins[i] : "";
    if (taken.contains(def.name) && !origin.empty()) {
      def.name = origin + "." + def.name;
    }
    if (taken.contains(def.name)) {
      const std::string base = def.name;
      for (int k = 2;; ++k) {
        def.name = base + "#" + std::to_string(k);
        if (!taken.contains(def.name)) break;
      }
    }
    taken.insert(def.name);
    out_origins->push_back(origin);
    cols.push_back(std::move(def));
  }
  *out_schema = rel::Schema(std::move(cols));
}

// Projection output schema shared by both engines.
Status ProjectOutputSchema(const ProjectNode& node, const rel::Schema& child,
                           const std::vector<std::string>& child_origins,
                           rel::Schema* out_schema,
                           std::vector<std::string>* out_origins) {
  for (size_t c : node.columns()) {
    if (c >= child.NumColumns()) {
      return Status::PlanError("projection column out of range");
    }
  }
  std::vector<rel::ColumnDef> cols;
  cols.reserve(node.columns().size());
  out_origins->clear();
  out_origins->reserve(node.columns().size());
  for (size_t i = 0; i < node.columns().size(); ++i) {
    const size_t src = node.columns()[i];
    rel::ColumnDef def = child.column(src);
    if (i < node.output_names().size() && !node.output_names()[i].empty()) {
      def.name = node.output_names()[i];
    }
    cols.push_back(std::move(def));
    out_origins->push_back(src < child_origins.size() ? child_origins[src]
                                                      : "");
  }
  *out_schema = rel::Schema(std::move(cols));
  return Status::OK();
}

// Hash-table key for the partitioned join: a pointer into the base table
// (no Value copy) plus its precomputed hash.
struct JoinKey {
  const rel::Value* value;
  uint64_t hash;
};
struct JoinKeyHash {
  size_t operator()(const JoinKey& k) const { return k.hash; }
};
struct JoinKeyEq {
  bool operator()(const JoinKey& a, const JoinKey& b) const {
    return *a.value == *b.value;
  }
};
using JoinTable =
    std::unordered_map<JoinKey, std::vector<uint32_t>, JoinKeyHash, JoinKeyEq>;

uint64_t HashProjected(const RowIdResult& rows,
                       const std::vector<size_t>& cols, size_t r) {
  uint64_t h = 1469598103934665603ull;
  for (size_t c : cols) {
    h ^= rows.ValueAt(r, c).Hash();
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

Executor::Executor(const rel::Database* db, ExecOptions options)
    : db_(db), options_(options) {
  if (options_.threads == 0) options_.threads = DefaultThreadCount();
}

Result<ResultSet> Executor::Execute(const PlanNode& plan) const {
  if (options_.engine == ExecEngine::kRowAtATime) {
    return ExecuteRowAtATime(plan);
  }
  GRAPHGEN_ASSIGN_OR_RETURN(RowIdResult result, ExecuteColumnar(plan));
  return result.Materialize(options_.threads);
}

Result<RowIdResult> Executor::ExecuteColumnar(const PlanNode& plan) const {
  switch (plan.kind()) {
    case PlanNode::Kind::kScan:
      return ScanColumnar(static_cast<const ScanNode&>(plan));
    case PlanNode::Kind::kHashJoin:
      return JoinColumnar(static_cast<const HashJoinNode&>(plan));
    case PlanNode::Kind::kProject:
      return ProjectColumnar(static_cast<const ProjectNode&>(plan));
  }
  return Status::Internal("unknown plan node type");
}

Result<ResultSet> Executor::ExecuteRowAtATime(const PlanNode& plan) const {
  switch (plan.kind()) {
    case PlanNode::Kind::kScan:
      return ScanRows(static_cast<const ScanNode&>(plan));
    case PlanNode::Kind::kHashJoin:
      return JoinRows(static_cast<const HashJoinNode&>(plan));
    case PlanNode::Kind::kProject:
      return ProjectRows(static_cast<const ProjectNode&>(plan));
  }
  return Status::Internal("unknown plan node type");
}

// ---------------------------------------------------------------- columnar

Result<RowIdResult> Executor::ScanColumnar(const ScanNode& node) const {
  GRAPHGEN_ASSIGN_OR_RETURN(const rel::Table* table,
                            db_->GetTable(node.table()));
  for (const Predicate& p : node.predicates()) {
    if (p.column >= table->NumColumns()) {
      return Status::PlanError("predicate column out of range for table " +
                               node.table());
    }
  }
  const size_t n = table->NumRows();
  if (n > std::numeric_limits<uint32_t>::max()) {
    return Status::Unsupported("table " + node.table() +
                               " exceeds 2^32 rows");
  }
  RowIdResult out;
  out.schema = table->schema();
  out.origins.assign(table->NumColumns(), node.table());
  out.sources = {table};
  out.columns.resize(table->NumColumns());
  for (size_t c = 0; c < table->NumColumns(); ++c) {
    out.columns[c] = {0, static_cast<uint32_t>(c)};
  }
  if (node.predicates().empty()) {
    out.tuples.resize(n);
    ParallelFor(
        n,
        [&](size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            out.tuples[i] = static_cast<uint32_t>(i);
          }
        },
        options_.threads);
    return out;
  }
  // Parallel predicate evaluation into a byte mask, then an in-order
  // collect — the selection vector is identical to the serial scan's.
  std::vector<uint8_t> keep(n, 0);
  const auto evaluate = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const rel::Row& row = table->row(i);
      bool ok = true;
      for (const Predicate& p : node.predicates()) {
        if (!p.Matches(row)) {
          ok = false;
          break;
        }
      }
      keep[i] = ok ? 1 : 0;
    }
  };
  if (options_.threads > 1 && n >= kParallelScanThreshold) {
    ParallelFor(n, evaluate, options_.threads);
  } else {
    evaluate(0, n);
  }
  out.tuples.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (keep[i] != 0) out.tuples.push_back(static_cast<uint32_t>(i));
  }
  return out;
}

Result<RowIdResult> Executor::JoinColumnar(const HashJoinNode& node) const {
  GRAPHGEN_ASSIGN_OR_RETURN(RowIdResult left, ExecuteColumnar(node.left()));
  GRAPHGEN_ASSIGN_OR_RETURN(RowIdResult right, ExecuteColumnar(node.right()));
  if (node.left_col() >= left.schema.NumColumns() ||
      node.right_col() >= right.schema.NumColumns()) {
    return Status::PlanError("join column out of range");
  }

  // Build on the smaller side (same heuristic as the row engine, so both
  // engines emit identical row order).
  const bool build_left = left.NumRows() <= right.NumRows();
  const RowIdResult& build = build_left ? left : right;
  const RowIdResult& probe = build_left ? right : left;
  const size_t build_col = build_left ? node.left_col() : node.right_col();
  const size_t probe_col = build_left ? node.right_col() : node.left_col();
  const size_t bn = build.NumRows();
  const size_t pn = probe.NumRows();
  if (bn > std::numeric_limits<uint32_t>::max()) {
    return Status::Unsupported("join build side exceeds 2^32 rows");
  }

  // Precompute build-key hashes (parallel), then build P per-partition
  // hash tables keyed by hash % P. Each partition scans the build rows in
  // ascending order, so every per-key bucket lists build rows in the same
  // order a single serial build would.
  std::vector<uint64_t> bhash(bn);
  std::vector<uint8_t> bnull(bn);
  ParallelFor(
      bn,
      [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          const rel::Value& v = build.ValueAt(i, build_col);
          bnull[i] = v.is_null() ? 1 : 0;  // SQL semantics: NULL joins nothing
          bhash[i] = bnull[i] != 0 ? 0 : v.Hash();
        }
      },
      options_.threads);

  const size_t partitions =
      (options_.threads > 1 && bn >= kPartitionedBuildThreshold)
          ? std::min(options_.threads, kMaxPartitions)
          : 1;
  std::vector<JoinTable> tables(partitions);
  ParallelInvoke(partitions, [&](size_t p) {
    JoinTable& ht = tables[p];
    ht.reserve(bn / partitions + 1);
    for (size_t i = 0; i < bn; ++i) {
      if (bnull[i] != 0 || bhash[i] % partitions != p) continue;
      ht[{&build.ValueAt(i, build_col), bhash[i]}].push_back(
          static_cast<uint32_t>(i));
    }
  });

  RowIdResult out;
  out.sources = left.sources;
  out.sources.insert(out.sources.end(), right.sources.begin(),
                     right.sources.end());
  const size_t lw = left.Width();
  const size_t rw = right.Width();
  out.columns = left.columns;
  for (const ColumnBinding& b : right.columns) {
    out.columns.push_back({static_cast<uint32_t>(b.source + lw), b.column});
  }
  JoinOutputSchema(left.schema, left.origins, right.schema, right.origins,
                   &out.schema, &out.origins);

  // Probe in contiguous ranges; each range emits matches in probe-row
  // order into its own buffer and buffers concatenate in range order, so
  // the output equals the serial probe exactly for any thread count.
  const size_t probe_ways =
      (options_.threads > 1 && pn >= kParallelProbeThreshold)
          ? options_.threads
          : 1;
  std::vector<IndexRange> ranges = EqualRanges(pn, probe_ways);
  std::vector<std::vector<uint32_t>> parts(ranges.size());
  ParallelInvoke(ranges.size(), [&](size_t t) {
    std::vector<uint32_t>& buf = parts[t];
    for (size_t pr = ranges[t].begin; pr < ranges[t].end; ++pr) {
      const rel::Value& key = probe.ValueAt(pr, probe_col);
      if (key.is_null()) continue;
      const uint64_t h = key.Hash();
      const JoinTable& ht = tables[h % partitions];
      auto it = ht.find({&key, h});
      if (it == ht.end()) continue;
      for (uint32_t bi : it->second) {
        const size_t lrow = build_left ? bi : pr;
        const size_t rrow = build_left ? pr : bi;
        const uint32_t* ltup = &left.tuples[lrow * lw];
        const uint32_t* rtup = &right.tuples[rrow * rw];
        buf.insert(buf.end(), ltup, ltup + lw);
        buf.insert(buf.end(), rtup, rtup + rw);
      }
    }
  });
  size_t total = 0;
  for (const auto& buf : parts) total += buf.size();
  out.tuples.reserve(total);
  for (auto& buf : parts) {
    out.tuples.insert(out.tuples.end(), buf.begin(), buf.end());
  }
  return out;
}

Result<RowIdResult> Executor::ProjectColumnar(const ProjectNode& node) const {
  GRAPHGEN_ASSIGN_OR_RETURN(RowIdResult child, ExecuteColumnar(node.child()));
  RowIdResult out;
  GRAPHGEN_RETURN_NOT_OK(ProjectOutputSchema(node, child.schema, child.origins,
                                             &out.schema, &out.origins));
  out.sources = child.sources;
  out.columns.reserve(node.columns().size());
  for (size_t c : node.columns()) out.columns.push_back(child.columns[c]);
  if (!node.distinct()) {
    out.tuples = std::move(child.tuples);
    return out;
  }

  // DISTINCT: keep the first occurrence of every projected key, in input
  // order. Parallel mode partitions rows by key hash; within a partition
  // rows are visited in ascending index order, so each partition's
  // survivors are exactly the globally-first occurrences of its keys, and
  // the index merge reproduces the serial order bit for bit.
  const size_t n = child.NumRows();
  if (n > std::numeric_limits<uint32_t>::max()) {
    return Status::Unsupported("DISTINCT input exceeds 2^32 rows");
  }
  std::vector<uint64_t> hashes(n);
  ParallelFor(
      n,
      [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          hashes[i] = HashProjected(child, node.columns(), i);
        }
      },
      options_.threads);

  struct ProjHash {
    const std::vector<uint64_t>* hashes;
    size_t operator()(uint32_t r) const { return (*hashes)[r]; }
  };
  struct ProjEq {
    const RowIdResult* rows;
    const std::vector<size_t>* cols;
    bool operator()(uint32_t a, uint32_t b) const {
      for (size_t c : *cols) {
        if (!(rows->ValueAt(a, c) == rows->ValueAt(b, c))) return false;
      }
      return true;
    }
  };
  const ProjHash hasher{&hashes};
  const ProjEq eq{&child, &node.columns()};

  std::vector<uint32_t> survivors;
  const size_t partitions =
      (options_.threads > 1 && n >= kParallelDistinctThreshold)
          ? std::min(options_.threads, kMaxPartitions)
          : 1;
  if (partitions == 1) {
    std::unordered_set<uint32_t, ProjHash, ProjEq> seen(n, hasher, eq);
    survivors.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      if (seen.insert(static_cast<uint32_t>(i)).second) {
        survivors.push_back(static_cast<uint32_t>(i));
      }
    }
  } else {
    std::vector<std::vector<uint32_t>> parts(partitions);
    ParallelInvoke(partitions, [&](size_t p) {
      std::unordered_set<uint32_t, ProjHash, ProjEq> seen(
          n / partitions + 1, hasher, eq);
      for (size_t i = 0; i < n; ++i) {
        if (hashes[i] % partitions != p) continue;
        if (seen.insert(static_cast<uint32_t>(i)).second) {
          parts[p].push_back(static_cast<uint32_t>(i));
        }
      }
    });
    size_t total = 0;
    for (const auto& part : parts) total += part.size();
    survivors.reserve(total);
    for (const auto& part : parts) {
      survivors.insert(survivors.end(), part.begin(), part.end());
    }
    std::sort(survivors.begin(), survivors.end());
  }

  const size_t w = child.Width();
  out.tuples.resize(survivors.size() * w);
  ParallelFor(
      survivors.size(),
      [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          const uint32_t* src = &child.tuples[survivors[i] * w];
          std::copy(src, src + w, &out.tuples[i * w]);
        }
      },
      options_.threads);
  return out;
}

// ------------------------------------------------------------ row-at-a-time

Result<ResultSet> Executor::ScanRows(const ScanNode& node) const {
  GRAPHGEN_ASSIGN_OR_RETURN(const rel::Table* table,
                            db_->GetTable(node.table()));
  ResultSet out;
  out.schema = table->schema();
  out.origins.assign(table->NumColumns(), node.table());
  for (const Predicate& p : node.predicates()) {
    if (p.column >= table->NumColumns()) {
      return Status::PlanError("predicate column out of range for table " +
                               node.table());
    }
  }
  out.rows.reserve(node.predicates().empty() ? table->NumRows() : 0);
  for (const rel::Row& row : table->rows()) {
    bool keep = true;
    for (const Predicate& p : node.predicates()) {
      if (!p.Matches(row)) {
        keep = false;
        break;
      }
    }
    if (keep) out.rows.push_back(row);
  }
  return out;
}

Result<ResultSet> Executor::JoinRows(const HashJoinNode& node) const {
  GRAPHGEN_ASSIGN_OR_RETURN(ResultSet left, ExecuteRowAtATime(node.left()));
  GRAPHGEN_ASSIGN_OR_RETURN(ResultSet right, ExecuteRowAtATime(node.right()));
  if (node.left_col() >= left.schema.NumColumns() ||
      node.right_col() >= right.schema.NumColumns()) {
    return Status::PlanError("join column out of range");
  }

  // Build on the smaller side.
  const bool build_left = left.NumRows() <= right.NumRows();
  const ResultSet& build = build_left ? left : right;
  const ResultSet& probe = build_left ? right : left;
  const size_t build_col = build_left ? node.left_col() : node.right_col();
  const size_t probe_col = build_left ? node.right_col() : node.left_col();

  std::unordered_map<rel::Value, std::vector<size_t>, rel::ValueHash> ht;
  ht.reserve(build.NumRows());
  for (size_t i = 0; i < build.NumRows(); ++i) {
    const rel::Value& key = build.rows[i][build_col];
    if (key.is_null()) continue;  // SQL semantics: NULL joins nothing.
    ht[key].push_back(i);
  }

  ResultSet out;
  JoinOutputSchema(left.schema, left.origins, right.schema, right.origins,
                   &out.schema, &out.origins);
  for (const rel::Row& prow : probe.rows) {
    const rel::Value& key = prow[probe_col];
    if (key.is_null()) continue;
    auto it = ht.find(key);
    if (it == ht.end()) continue;
    for (size_t bi : it->second) {
      const rel::Row& brow = build.rows[bi];
      rel::Row joined;
      joined.reserve(left.schema.NumColumns() + right.schema.NumColumns());
      const rel::Row& lrow = build_left ? brow : prow;
      const rel::Row& rrow = build_left ? prow : brow;
      joined.insert(joined.end(), lrow.begin(), lrow.end());
      joined.insert(joined.end(), rrow.begin(), rrow.end());
      out.rows.push_back(std::move(joined));
    }
  }
  return out;
}

Result<ResultSet> Executor::ProjectRows(const ProjectNode& node) const {
  GRAPHGEN_ASSIGN_OR_RETURN(ResultSet child, ExecuteRowAtATime(node.child()));
  ResultSet out;
  GRAPHGEN_RETURN_NOT_OK(ProjectOutputSchema(node, child.schema, child.origins,
                                             &out.schema, &out.origins));

  std::unordered_set<rel::Row, RowHash> seen;
  if (node.distinct()) seen.reserve(child.NumRows());
  out.rows.reserve(child.NumRows());
  for (const rel::Row& row : child.rows) {
    rel::Row projected;
    projected.reserve(node.columns().size());
    for (size_t c : node.columns()) projected.push_back(row[c]);
    if (node.distinct()) {
      if (!seen.insert(projected).second) continue;
    }
    out.rows.push_back(std::move(projected));
  }
  return out;
}

}  // namespace graphgen::query
