#include "query/columnar.h"

#include "common/parallel.h"

namespace graphgen::query {

ResultSet RowIdResult::Materialize(size_t threads) const {
  ResultSet out;
  out.schema = schema;
  out.origins = origins;
  const size_t n = NumRows();
  const size_t m = columns.size();
  std::vector<BoundColumn> bound;
  bound.reserve(m);
  for (size_t c = 0; c < m; ++c) bound.push_back(Bind(c));
  out.rows.resize(n);
  ParallelFor(
      n,
      [&](size_t begin, size_t end) {
        for (size_t r = begin; r < end; ++r) {
          rel::Row row;
          row.reserve(m);
          for (size_t c = 0; c < m; ++c) {
            row.push_back(bound[c].col->ValueAt(RowId(bound[c], r)));
          }
          out.rows[r] = std::move(row);
        }
      },
      threads);
  return out;
}

std::string RowsView::ToStringAt(size_t row, size_t col) const {
  if (columnar_ == nullptr) return rows_->rows[row][col].ToString();
  const BoundColumn b = columnar_->Bind(col);
  const size_t id = columnar_->RowId(b, row);
  using Encoding = rel::ColumnVector::Encoding;
  if (b.col->IsNull(id) || b.col->encoding() == Encoding::kEmpty) {
    return "NULL";
  }
  switch (b.col->encoding()) {
    case Encoding::kInt64:
      return std::to_string(b.col->Int64At(id));
    case Encoding::kDictString:
      return "'" + b.col->StringAt(id) + "'";
    default:
      return b.col->ValueAt(id).ToString();
  }
}

}  // namespace graphgen::query
