#include "query/columnar.h"

#include "common/parallel.h"

namespace graphgen::query {

ResultSet RowIdResult::Materialize(size_t threads) const {
  ResultSet out;
  out.schema = schema;
  out.origins = origins;
  const size_t n = NumRows();
  const size_t m = columns.size();
  out.rows.resize(n);
  ParallelFor(
      n,
      [&](size_t begin, size_t end) {
        for (size_t r = begin; r < end; ++r) {
          rel::Row row;
          row.reserve(m);
          for (size_t c = 0; c < m; ++c) row.push_back(ValueAt(r, c));
          out.rows[r] = std::move(row);
        }
      },
      threads);
  return out;
}

}  // namespace graphgen::query
