#ifndef GRAPHGEN_QUERY_EXECUTOR_H_
#define GRAPHGEN_QUERY_EXECUTOR_H_

#include "common/status.h"
#include "query/columnar.h"
#include "query/plan.h"
#include "relational/database.h"

namespace graphgen::query {

/// Which physical engine executes the plan.
enum class ExecEngine {
  /// The parallel columnar pipeline: scans emit selection vectors over the
  /// base tables, joins are partitioned hash joins, projection is a lazy
  /// column remap. Output is deterministic and identical to kRowAtATime
  /// for every thread count.
  kColumnar,
  /// The original serial row-materializing interpreter, kept as the
  /// correctness oracle and benchmark baseline.
  kRowAtATime,
};

struct ExecOptions {
  /// Worker threads for intra-operator parallelism (0 = hardware default,
  /// 1 = fully serial). Results are identical for every value.
  size_t threads = 0;
  ExecEngine engine = ExecEngine::kColumnar;
};

/// Executes plan trees against a Database. The columnar engine keeps
/// intermediates as row-id tuples over the base tables (RowIdResult) and
/// only materializes values at the final boundary; the row-at-a-time
/// engine materializes every operator (the seed behavior). Both engines
/// produce bitwise-identical results in identical row order.
/// Executor is stateless and safe to share across threads.
class Executor {
 public:
  explicit Executor(const rel::Database* db, ExecOptions options = {});

  /// Runs the plan and returns its materialized result set.
  Result<ResultSet> Execute(const PlanNode& plan) const;

  /// Runs the plan on the columnar engine without materializing values.
  Result<RowIdResult> ExecuteColumnar(const PlanNode& plan) const;

  /// Runs the plan on the legacy row-at-a-time interpreter.
  Result<ResultSet> ExecuteRowAtATime(const PlanNode& plan) const;

  const ExecOptions& options() const { return options_; }

 private:
  Result<RowIdResult> ScanColumnar(const ScanNode& node) const;
  Result<RowIdResult> JoinColumnar(const HashJoinNode& node) const;
  Result<RowIdResult> ProjectColumnar(const ProjectNode& node) const;

  Result<ResultSet> ScanRows(const ScanNode& node) const;
  Result<ResultSet> JoinRows(const HashJoinNode& node) const;
  Result<ResultSet> ProjectRows(const ProjectNode& node) const;

  const rel::Database* db_;
  ExecOptions options_;
};

}  // namespace graphgen::query

#endif  // GRAPHGEN_QUERY_EXECUTOR_H_
