#ifndef GRAPHGEN_QUERY_EXECUTOR_H_
#define GRAPHGEN_QUERY_EXECUTOR_H_

#include "common/status.h"
#include "query/plan.h"
#include "relational/database.h"

namespace graphgen::query {

/// Executes plan trees against a Database, materializing every operator
/// (the extraction queries in this system are one-shot batch queries, so a
/// simple materializing executor matches the paper's usage of PostgreSQL).
class Executor {
 public:
  explicit Executor(const rel::Database* db) : db_(db) {}

  /// Runs the plan and returns its result set.
  Result<ResultSet> Execute(const PlanNode& plan) const;

 private:
  Result<ResultSet> ExecuteScan(const ScanNode& node) const;
  Result<ResultSet> ExecuteJoin(const HashJoinNode& node) const;
  Result<ResultSet> ExecuteProject(const ProjectNode& node) const;

  const rel::Database* db_;
};

}  // namespace graphgen::query

#endif  // GRAPHGEN_QUERY_EXECUTOR_H_
