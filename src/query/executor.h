#ifndef GRAPHGEN_QUERY_EXECUTOR_H_
#define GRAPHGEN_QUERY_EXECUTOR_H_

#include "common/cancel.h"
#include "common/status.h"
#include "obs/profile.h"
#include "query/columnar.h"
#include "query/plan.h"
#include "relational/database.h"

namespace graphgen::query {

/// Which physical engine executes the plan.
enum class ExecEngine {
  /// The parallel columnar pipeline: scans emit selection vectors over the
  /// base tables, joins are partitioned hash joins, projection is a lazy
  /// column remap. Output is deterministic and identical to kRowAtATime
  /// for every thread count.
  kColumnar,
  /// The original serial row-materializing interpreter, kept as the
  /// correctness oracle and benchmark baseline.
  kRowAtATime,
};

struct ExecOptions {
  /// Worker threads for intra-operator parallelism (0 = hardware default,
  /// 1 = fully serial). Results are identical for every value.
  size_t threads = 0;
  ExecEngine engine = ExecEngine::kColumnar;
  /// Fuse DISTINCT projections directly into the hash join beneath them:
  /// probe matches feed the first-occurrence set per morsel instead of
  /// materializing the intermediate row-id tuple vector. Output is
  /// bitwise-identical either way (the parity suite proves it); the switch
  /// exists so benches and tests can exercise both operator chains.
  bool fuse_join_distinct = true;
  /// Fusion pays when the join output is too big to stay cache-resident
  /// (the morsel pipeline trades a second pass over materialized tuples
  /// for streaming dedup); below this estimated output size the operator
  /// materializes and runs the classic DISTINCT, which is faster in
  /// cache. The join build's chain lengths give the exact output size
  /// *before* any tuple is emitted, so the choice is free. 0 forces the
  /// fused pipeline for any size (tests).
  size_t fuse_min_output_bytes = size_t{32} << 20;
  /// Request lifecycle context: cooperative cancel flag, deadline, and
  /// transient-memory budget. Every operator polls it at morsel/stride
  /// boundaries and charges its big allocations, so a cancelled, expired,
  /// or over-budget request unwinds with Cancelled / DeadlineExceeded /
  /// ResourceExhausted in bounded time. The default context is inert and
  /// costs two predictable branches per poll.
  ExecContext ctx;
};

/// Executes plan trees against a Database. The columnar engine keeps
/// intermediates as row-id tuples over the base tables (RowIdResult) and
/// only materializes values at the final boundary; the row-at-a-time
/// engine materializes every operator (the seed behavior). Both engines
/// produce bitwise-identical results in identical row order.
/// Executor is stateless and safe to share across threads.
class Executor {
 public:
  explicit Executor(const rel::Database* db, ExecOptions options = {});

  /// Runs the plan and returns its materialized result set. When `parent`
  /// is non-null (and observability is enabled) the engine appends an
  /// EXPLAIN ANALYZE operator subtree under it: per-operator inclusive
  /// timings, input/output cardinalities, join build/probe breakdowns,
  /// hash-table load factors, and the fusion decision taken.
  Result<ResultSet> Execute(const PlanNode& plan,
                            obs::ProfileNode* parent = nullptr) const;

  /// Runs the plan on the columnar engine without materializing values.
  Result<RowIdResult> ExecuteColumnar(const PlanNode& plan,
                                      obs::ProfileNode* parent = nullptr) const;

  /// Runs the plan on the legacy row-at-a-time interpreter.
  Result<ResultSet> ExecuteRowAtATime(const PlanNode& plan,
                                      obs::ProfileNode* parent = nullptr) const;

  const ExecOptions& options() const { return options_; }

 private:
  Result<RowIdResult> ScanColumnar(const ScanNode& node,
                                   obs::ProfileNode* parent) const;
  Result<RowIdResult> JoinColumnar(const HashJoinNode& node,
                                   obs::ProfileNode* parent) const;
  Result<RowIdResult> ProjectColumnar(const ProjectNode& node,
                                      obs::ProfileNode* parent) const;
  /// The fused morsel pipeline for DISTINCT directly above a hash join:
  /// executes the join's children, builds the partitioned hash tables,
  /// sizes the output from the build chains, and — when the output is
  /// large enough that fusion pays — streams probe matches straight into
  /// the first-occurrence set without materializing the join's tuple
  /// vector. Smaller joins materialize and take ProjectFromChild.
  Result<RowIdResult> JoinDistinctColumnar(const ProjectNode& node,
                                           const HashJoinNode& join,
                                           obs::ProfileNode* parent) const;
  /// Projection/DISTINCT over an already-executed child (the tail of
  /// ProjectColumnar, shared with the fused path's materializing branch).
  /// `prof` is the caller's already-created operator node, filled in
  /// place (null = no recording).
  Result<RowIdResult> ProjectFromChild(const ProjectNode& node,
                                       RowIdResult child,
                                       obs::ProfileNode* prof) const;

  Result<ResultSet> ScanRows(const ScanNode& node,
                             obs::ProfileNode* parent) const;
  Result<ResultSet> JoinRows(const HashJoinNode& node,
                             obs::ProfileNode* parent) const;
  Result<ResultSet> ProjectRows(const ProjectNode& node,
                                obs::ProfileNode* parent) const;

  const rel::Database* db_;
  ExecOptions options_;
};

}  // namespace graphgen::query

#endif  // GRAPHGEN_QUERY_EXECUTOR_H_
