#ifndef GRAPHGEN_QUERY_PLAN_H_
#define GRAPHGEN_QUERY_PLAN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "relational/schema.h"
#include "relational/table.h"

namespace graphgen::query {

/// A fully materialized intermediate or final query result.
struct ResultSet {
  rel::Schema schema;
  /// Base table each output column physically comes from ("" when unknown,
  /// e.g. hand-built test fixtures). Used to qualify ambiguous join
  /// columns as "table.col".
  std::vector<std::string> origins;
  std::vector<rel::Row> rows;

  size_t NumRows() const { return rows.size(); }
};

/// Comparison operators for selection predicates.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

std::string_view CompareOpToString(CompareOp op);

/// column <op> constant.
struct Predicate {
  size_t column = 0;
  CompareOp op = CompareOp::kEq;
  rel::Value constant;

  /// Evaluates the predicate against a row.
  bool Matches(const rel::Row& row) const {
    return MatchesValue(row[column]);
  }
  /// Evaluates the predicate against a single cell (Value semantics:
  /// equality never crosses int64/double, ordering is numeric).
  bool MatchesValue(const rel::Value& v) const;
};

/// A membership set for semi-join pushdown: the extractor collects every
/// node key once and scans of edge-rule base tables drop rows whose
/// endpoint key cannot possibly bind a real node. Keys are bucketed by
/// type so typed scan paths probe flat int64/string sets instead of
/// hashing Values.
struct KeyFilter {
  std::unordered_set<int64_t> ints;
  std::unordered_set<std::string> strings;
  /// Doubles and other oddballs; NULL is never a member.
  std::unordered_set<rel::Value, rel::ValueHash> others;

  bool Contains(const rel::Value& v) const;
  size_t size() const { return ints.size() + strings.size() + others.size(); }
};

/// One semi-join filter attached to a scan: keep only rows whose `column`
/// value is a member of `keys`.
struct SemiJoin {
  size_t column = 0;
  std::shared_ptr<const KeyFilter> keys;
};

/// Base class of the (tiny) logical/physical plan tree. Plans are built by
/// the GraphGen translation layer (§3.3) and executed by Executor. ToSql()
/// renders the equivalent SQL text, mirroring the queries GraphGen would
/// send to PostgreSQL (paper Fig. 16).
class PlanNode {
 public:
  /// Closed set of physical operators. The executor dispatches on this tag
  /// (one predictable switch) instead of a dynamic_cast chain.
  enum class Kind { kScan, kHashJoin, kProject };

  virtual ~PlanNode() = default;
  Kind kind() const { return kind_; }
  virtual std::string ToSql() const = 0;

 protected:
  explicit PlanNode(Kind kind) : kind_(kind) {}

 private:
  Kind kind_;
};

/// Sequential scan of a base table with optional predicates and optional
/// semi-join key filters (Nodes-filter pushdown).
///
/// A scan can additionally be *ranged* to a half-open row-id window
/// [row_begin, row_end): the delta-scan mode of incremental extraction,
/// which reads only the rows a table gained past a watermark. The window
/// clamps to the table's current row count at execution time; the default
/// window covers the whole table and costs nothing on the hot paths.
class ScanNode : public PlanNode {
 public:
  ScanNode(std::string table, std::vector<Predicate> predicates = {})
      : PlanNode(Kind::kScan),
        table_(std::move(table)),
        predicates_(std::move(predicates)) {}

  const std::string& table() const { return table_; }
  const std::vector<Predicate>& predicates() const { return predicates_; }
  const std::vector<SemiJoin>& semi_joins() const { return semi_joins_; }
  void AddSemiJoin(size_t column, std::shared_ptr<const KeyFilter> keys) {
    semi_joins_.push_back({column, std::move(keys)});
  }
  void SetRowRange(size_t begin, size_t end) {
    row_begin_ = begin;
    row_end_ = end;
  }
  size_t row_begin() const { return row_begin_; }
  size_t row_end() const { return row_end_; }
  bool IsRanged() const { return row_begin_ != 0 || row_end_ != SIZE_MAX; }
  std::string ToSql() const override;

 private:
  std::string table_;
  std::vector<Predicate> predicates_;
  std::vector<SemiJoin> semi_joins_;
  size_t row_begin_ = 0;
  size_t row_end_ = SIZE_MAX;
};

/// Hash equi-join on one column from each side. Output schema is the
/// concatenation of left and right schemas.
class HashJoinNode : public PlanNode {
 public:
  HashJoinNode(std::unique_ptr<PlanNode> left, std::unique_ptr<PlanNode> right,
               size_t left_col, size_t right_col)
      : PlanNode(Kind::kHashJoin),
        left_(std::move(left)),
        right_(std::move(right)),
        left_col_(left_col),
        right_col_(right_col) {}

  const PlanNode& left() const { return *left_; }
  const PlanNode& right() const { return *right_; }
  size_t left_col() const { return left_col_; }
  size_t right_col() const { return right_col_; }
  std::string ToSql() const override;

 private:
  std::unique_ptr<PlanNode> left_;
  std::unique_ptr<PlanNode> right_;
  size_t left_col_;
  size_t right_col_;
};

/// Projection with optional DISTINCT and column renaming.
class ProjectNode : public PlanNode {
 public:
  ProjectNode(std::unique_ptr<PlanNode> child, std::vector<size_t> columns,
              std::vector<std::string> output_names, bool distinct)
      : PlanNode(Kind::kProject),
        child_(std::move(child)),
        columns_(std::move(columns)),
        output_names_(std::move(output_names)),
        distinct_(distinct) {}

  const PlanNode& child() const { return *child_; }
  const std::vector<size_t>& columns() const { return columns_; }
  const std::vector<std::string>& output_names() const { return output_names_; }
  bool distinct() const { return distinct_; }
  std::string ToSql() const override;

 private:
  std::unique_ptr<PlanNode> child_;
  std::vector<size_t> columns_;
  std::vector<std::string> output_names_;
  bool distinct_;
};

}  // namespace graphgen::query

#endif  // GRAPHGEN_QUERY_PLAN_H_
