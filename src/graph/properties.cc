#include "graph/properties.h"

namespace graphgen {

size_t PropertyTable::AddColumn(const std::string& name) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  size_t idx = column_names_.size();
  column_names_.push_back(name);
  index_[name] = idx;
  columns_.emplace_back();
  if (!external_keys_.empty()) columns_.back().resize(external_keys_.size());
  return idx;
}

std::vector<std::string> PropertyTable::ColumnNames() const {
  return column_names_;
}

void PropertyTable::ResizeVertices(size_t n) {
  for (auto& col : columns_) col.resize(n);
  external_keys_.resize(n);
  key_lookup_valid_ = false;
}

void PropertyTable::Set(NodeId node, size_t column, std::string value) {
  auto& col = columns_[column];
  if (node >= col.size()) col.resize(node + 1);
  col[node] = std::move(value);
}

Status PropertyTable::SetByName(NodeId node, const std::string& column,
                                std::string value) {
  auto it = index_.find(column);
  if (it == index_.end()) {
    return Status::NotFound("no property column named " + column);
  }
  Set(node, it->second, std::move(value));
  return Status::OK();
}

const std::string& PropertyTable::Get(NodeId node, size_t column) const {
  const auto& col = columns_[column];
  if (node >= col.size()) return kEmpty;
  return col[node];
}

std::optional<std::string> PropertyTable::GetByName(
    NodeId node, const std::string& column) const {
  auto it = index_.find(column);
  if (it == index_.end()) return std::nullopt;
  return Get(node, it->second);
}

void PropertyTable::SetExternalKey(NodeId node, std::string key) {
  if (node >= external_keys_.size()) external_keys_.resize(node + 1);
  external_keys_[node] = std::move(key);
  key_lookup_valid_ = false;
}

const std::string& PropertyTable::ExternalKey(NodeId node) const {
  if (node >= external_keys_.size()) return kEmpty;
  return external_keys_[node];
}

std::optional<NodeId> PropertyTable::FindByExternalKey(
    const std::string& key) const {
  if (!key_lookup_valid_) {
    key_lookup_.clear();
    key_lookup_.reserve(external_keys_.size());
    for (size_t i = 0; i < external_keys_.size(); ++i) {
      if (!external_keys_[i].empty()) {
        key_lookup_.emplace(external_keys_[i], static_cast<NodeId>(i));
      }
    }
    key_lookup_valid_ = true;
  }
  auto it = key_lookup_.find(key);
  if (it == key_lookup_.end()) return std::nullopt;
  return it->second;
}

size_t PropertyTable::MemoryBytes() const {
  size_t total = 0;
  for (const auto& col : columns_) {
    total += col.capacity() * sizeof(std::string);
    for (const auto& s : col) total += s.capacity();
  }
  total += external_keys_.capacity() * sizeof(std::string);
  for (const auto& s : external_keys_) total += s.capacity();
  return total;
}

}  // namespace graphgen
