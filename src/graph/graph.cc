#include "graph/graph.h"

#include <algorithm>

namespace graphgen {

std::vector<NodeId> NeighborIterator::ToList() {
  std::vector<NodeId> out;
  while (HasNext()) out.push_back(Next());
  return out;
}

void Graph::ForEachVertex(const std::function<void(NodeId)>& fn) const {
  const size_t n = NumVertices();
  for (size_t v = 0; v < n; ++v) {
    if (VertexExists(static_cast<NodeId>(v))) fn(static_cast<NodeId>(v));
  }
}

std::unique_ptr<NeighborIterator> Graph::Neighbors(NodeId u) const {
  return std::make_unique<VectorNeighborIterator>(NeighborList(u));
}

std::span<const NodeId> Graph::NeighborSpan(NodeId) const { return {}; }

std::vector<NodeId> Graph::NeighborList(NodeId u) const {
  std::vector<NodeId> out;
  ForEachNeighbor(u, [&](NodeId v) { out.push_back(v); });
  return out;
}

size_t Graph::OutDegree(NodeId u) const {
  size_t n = 0;
  ForEachNeighbor(u, [&](NodeId) { ++n; });
  return n;
}

uint64_t Graph::CountExpandedEdges() const {
  uint64_t total = 0;
  ForEachVertex([&](NodeId u) { total += OutDegree(u); });
  return total;
}

std::vector<std::pair<NodeId, NodeId>> Graph::ExpandedEdgeSet() const {
  std::vector<std::pair<NodeId, NodeId>> edges;
  ForEachVertex([&](NodeId u) {
    ForEachNeighbor(u, [&](NodeId v) { edges.emplace_back(u, v); });
  });
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

}  // namespace graphgen
