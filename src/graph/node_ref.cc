#include "graph/node_ref.h"

namespace graphgen {

std::string NodeRef::ToString() const {
  if (!valid()) return "<nil>";
  return (is_virtual() ? "v" : "r") + std::to_string(index());
}

}  // namespace graphgen
