#ifndef GRAPHGEN_GRAPH_TRAVERSAL_H_
#define GRAPHGEN_GRAPH_TRAVERSAL_H_

#include "graph/graph.h"

namespace graphgen {

/// How a graph algorithm iterates neighbors.
///
///  * kAuto — use the devirtualized NeighborSpan fast path whenever the
///    graph reports HasFlatAdjacency(), else the virtual
///    ForEachNeighbor(std::function) path. The default everywhere.
///  * kFunction — always use the virtual callback path, even when flat
///    adjacency is available. Exists so benchmarks and parity tests can
///    pin the baseline; never faster.
enum class TraversalPath { kAuto, kFunction };

/// True when `path` permits the span fast path and `g` supports it.
inline bool UseSpanPath(const Graph& g, TraversalPath path) {
  return path == TraversalPath::kAuto && g.HasFlatAdjacency();
}

}  // namespace graphgen

#endif  // GRAPHGEN_GRAPH_TRAVERSAL_H_
