#ifndef GRAPHGEN_GRAPH_NODE_REF_H_
#define GRAPHGEN_GRAPH_NODE_REF_H_

#include <cstdint>
#include <functional>
#include <string>

namespace graphgen {

/// Index of a *real* vertex (an entity row from the database).
using NodeId = uint32_t;

constexpr NodeId kInvalidNode = 0xFFFFFFFFu;

/// A reference to either a real node or a virtual node in a condensed
/// graph, packed into 32 bits (MSB = virtual flag). Condensed adjacency
/// lists store NodeRefs, so a real node's out-list can mix virtual nodes
/// and direct real targets, exactly as DEDUP-1 requires (paper §4.3).
class NodeRef {
 public:
  static constexpr uint32_t kVirtualBit = 0x80000000u;

  NodeRef() : raw_(0xFFFFFFFFu) {}

  static NodeRef Real(uint32_t index) { return NodeRef(index); }
  static NodeRef Virtual(uint32_t index) { return NodeRef(index | kVirtualBit); }
  static NodeRef FromRaw(uint32_t raw) { return NodeRef(raw); }

  bool is_virtual() const { return (raw_ & kVirtualBit) != 0; }
  bool is_real() const { return !is_virtual(); }
  /// Index within the real or virtual node space.
  uint32_t index() const { return raw_ & ~kVirtualBit; }
  uint32_t raw() const { return raw_; }

  bool valid() const { return raw_ != 0xFFFFFFFFu; }

  bool operator==(const NodeRef& o) const { return raw_ == o.raw_; }
  bool operator!=(const NodeRef& o) const { return raw_ != o.raw_; }
  bool operator<(const NodeRef& o) const { return raw_ < o.raw_; }

  /// "r12" or "v7".
  std::string ToString() const;

 private:
  explicit NodeRef(uint32_t raw) : raw_(raw) {}
  uint32_t raw_;
};

struct NodeRefHash {
  size_t operator()(const NodeRef& r) const {
    return std::hash<uint32_t>{}(r.raw());
  }
};

}  // namespace graphgen

#endif  // GRAPHGEN_GRAPH_NODE_REF_H_
