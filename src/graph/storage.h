#ifndef GRAPHGEN_GRAPH_STORAGE_H_
#define GRAPHGEN_GRAPH_STORAGE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/status.h"
#include "graph/node_ref.h"
#include "graph/properties.h"

namespace graphgen {

/// The physical storage of a condensed graph GC(V', E') as defined in
/// §4.1 of the paper:
///
///  * every real node u appears once physically, but logically twice
///    (u_s with only out-edges, u_t with only in-edges);
///  * the remaining nodes are *virtual* nodes introduced for the values of
///    large-output join attributes;
///  * an expanded edge u -> v exists iff there is a directed path from
///    u_s to v_t.
///
/// Adjacency is a CSR-variant of mutable per-node vectors (the paper uses
/// Java ArrayLists; §3.4). Out-lists of real nodes hold virtual refs and
/// direct real refs (direct edge u_s -> v_t). Virtual nodes hold both
/// in-lists and out-lists that may reference real or virtual nodes
/// (virtual-virtual edges make the graph multi-layer).
///
/// Real-node deletion is lazy (§3.4): DeleteRealNode only marks the vertex;
/// iteration skips marked vertices, and CompactDeletions performs the
/// physical batch removal, rebuilding the index once.
class CondensedStorage {
 public:
  CondensedStorage() = default;

  // Copyable (dedup algorithms clone the C-DUP input) and movable.
  CondensedStorage(const CondensedStorage&) = default;
  CondensedStorage& operator=(const CondensedStorage&) = default;
  CondensedStorage(CondensedStorage&&) = default;
  CondensedStorage& operator=(CondensedStorage&&) = default;

  // ---- Construction ----

  /// Adds one real node; returns its id.
  NodeId AddRealNode();
  /// Adds `n` real nodes; returns the id of the first.
  NodeId AddRealNodes(size_t n);
  /// Adds one virtual node; returns its index in the virtual space.
  uint32_t AddVirtualNode();

  /// Adds a directed condensed edge. Enforces the structural rules of
  /// §4.1: a real source endpoint acts as u_s (never receives in-edges via
  /// this edge) and a real target acts as v_t.
  void AddEdge(NodeRef from, NodeRef to);

  /// Adds a batch of edges, element-for-element identical to calling
  /// AddEdge in order, but each touched adjacency list is reserved to its
  /// exact final size first. The extraction assembly loop appends
  /// hundreds of thousands of edges; per-edge geometric vector growth
  /// (reallocate + copy, per node) costs more than the appends
  /// themselves.
  void AddEdges(const std::vector<std::pair<NodeRef, NodeRef>>& edges);

  /// Removes one occurrence of the edge; returns false if absent.
  bool RemoveEdge(NodeRef from, NodeRef to);

  // ---- Topology access ----

  size_t NumRealNodes() const { return real_out_.size(); }
  size_t NumVirtualNodes() const { return virt_out_.size(); }
  /// Real nodes not marked deleted.
  size_t NumActiveRealNodes() const { return real_out_.size() - num_deleted_; }

  const std::vector<NodeRef>& OutEdges(NodeRef node) const {
    return node.is_virtual() ? virt_out_[node.index()] : real_out_[node.index()];
  }
  const std::vector<NodeRef>& InEdges(NodeRef node) const {
    return node.is_virtual() ? virt_in_[node.index()] : real_in_[node.index()];
  }
  std::vector<NodeRef>& MutableOutEdges(NodeRef node) {
    return node.is_virtual() ? virt_out_[node.index()] : real_out_[node.index()];
  }
  std::vector<NodeRef>& MutableInEdges(NodeRef node) {
    return node.is_virtual() ? virt_in_[node.index()] : real_in_[node.index()];
  }

  /// Total number of condensed edges (what Table 1 reports for C-DUP).
  uint64_t CountCondensedEdges() const;

  /// True if there are no virtual->virtual edges (single-layer, §4.1).
  bool IsSingleLayer() const;
  /// Longest directed virtual chain; 0 when there are no virtual nodes,
  /// 1 for single-layer, >1 for multi-layer graphs.
  size_t NumLayers() const;
  /// The condensed graph must be a DAG (§4.1 property 2); checks the
  /// virtual-virtual subgraph for cycles.
  bool IsAcyclic() const;

  // ---- Expanded-graph views ----

  /// Calls fn once per *distinct* real neighbor reachable from u_s
  /// (deduplicating via a hash set — the C-DUP on-the-fly strategy).
  void ForEachExpandedNeighbor(NodeId u,
                               const std::function<void(NodeId)>& fn) const;

  /// Calls fn for every real target of every u_s->...->v_t path, including
  /// duplicates (used to *measure* duplication).
  ///
  /// Self paths (u_s -> ... -> u_t) are skipped by both traversal methods:
  /// membership of u in a virtual node always creates a path back to u
  /// itself (e.g. an author "co-authoring with themselves" through each of
  /// their papers), which is never a logical edge, and which would make
  /// true deduplication impossible for any node in >1 virtual node.
  void ForEachPathNeighbor(NodeId u,
                           const std::function<void(NodeId)>& fn) const;

  /// Distinct expanded neighbors of u, unsorted.
  std::vector<NodeId> ExpandedNeighbors(NodeId u) const;

  /// Number of edges the fully expanded graph would have. Parallelized;
  /// this is the quantity GraphGen computes "for free" during dedup to
  /// decide whether expansion is affordable (§4.2 Step 6).
  uint64_t CountExpandedEdges() const;

  /// Number of (u, v) pairs connected by more than one path, i.e. the
  /// duplication that dedup must remove. Zero means DEDUP-1-clean.
  uint64_t CountDuplicatePairs() const;

  /// Sorted, unique expanded edge list (test / equivalence oracle).
  std::vector<std::pair<NodeId, NodeId>> ExpandedEdgeSet() const;

  // ---- Mutation helpers used by preprocessing & dedup ----

  /// Removes virtual node v and directly connects each in-neighbor to each
  /// out-neighbor (§4.2 Step 6). The virtual node keeps its slot but
  /// becomes disconnected; use CompactVirtualNodes() to reclaim.
  void ExpandVirtualNode(uint32_t v);

  /// Drops virtual nodes with no in- and no out-edges, compacting indexes.
  void CompactVirtualNodes();

  /// Renumbers every virtual node: slot v moves to slot perm[v] and every
  /// adjacency reference is rewritten. `perm` must be a permutation of
  /// [0, NumVirtualNodes()). The extractor uses this to put virtual ids
  /// into canonical (key-sorted) order so a delta-patched graph is
  /// bitwise identical to a fresh extraction regardless of the order in
  /// which boundary values were first seen.
  void PermuteVirtualNodes(const std::vector<uint32_t>& perm);

  /// Detaches `node` from all its edges (both directions).
  void DetachAll(NodeRef node);

  /// Collapses parallel (duplicate) condensed edges, which contribute
  /// nothing but duplication; called by the dedup algorithms on their
  /// working copies. Rebuilds all in-lists.
  void RemoveParallelEdges();

  /// Sorts every adjacency list (the paper keeps neighbor lists sorted to
  /// make intersection checks fast, §5.2.2).
  void SortAdjacency();

  /// True if out-list of `from` contains `to` (binary search when sorted).
  bool HasEdge(NodeRef from, NodeRef to) const;

  // ---- Lazy deletion (§3.4) ----

  bool IsDeleted(NodeId u) const { return deleted_[u] != 0; }
  /// Logically removes a real node from the vertex index.
  void DeleteRealNode(NodeId u);
  size_t NumPendingDeletions() const { return num_deleted_; }
  /// Physically removes all logically deleted vertices in one batch and
  /// scrubs them from every adjacency list. Node ids are *not* renumbered;
  /// deleted slots simply become permanently unused.
  void CompactDeletions();

  // ---- Properties ----

  PropertyTable& properties() { return properties_; }
  const PropertyTable& properties() const { return properties_; }

  /// Approximate heap footprint (adjacency only; add properties().MemoryBytes()
  /// for the full object).
  size_t MemoryBytes() const;

 private:
  std::vector<std::vector<NodeRef>> real_out_;
  std::vector<std::vector<NodeRef>> real_in_;
  std::vector<std::vector<NodeRef>> virt_out_;
  std::vector<std::vector<NodeRef>> virt_in_;
  std::vector<uint8_t> deleted_;
  size_t num_deleted_ = 0;
  bool sorted_ = false;
  PropertyTable properties_;
};

}  // namespace graphgen

#endif  // GRAPHGEN_GRAPH_STORAGE_H_
