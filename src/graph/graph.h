#ifndef GRAPHGEN_GRAPH_GRAPH_H_
#define GRAPHGEN_GRAPH_GRAPH_H_

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/node_ref.h"

namespace graphgen {

/// Pull-style neighbor iterator, the paper's getNeighbors() contract
/// (§3.4). Obtained from Graph::Neighbors(u); duplicate-free for every
/// representation (C-DUP performs on-the-fly hash-set dedup inside it).
class NeighborIterator {
 public:
  virtual ~NeighborIterator() = default;
  virtual bool HasNext() = 0;
  virtual NodeId Next() = 0;

  /// Drains the iterator into a vector (getNeighbors(v).toList in the
  /// paper's Java API).
  std::vector<NodeId> ToList();
};

/// Iterator over a pre-materialized neighbor list; the default used by
/// representations whose traversal is cheap to materialize.
class VectorNeighborIterator : public NeighborIterator {
 public:
  explicit VectorNeighborIterator(std::vector<NodeId> items)
      : items_(std::move(items)) {}
  bool HasNext() override { return pos_ < items_.size(); }
  NodeId Next() override { return items_[pos_++]; }

 private:
  std::vector<NodeId> items_;
  size_t pos_ = 0;
};

/// Byte-level breakdown of a representation's heap footprint. The graph
/// service charges MemoryFootprint().Total() against its cache budget, and
/// the shell's `stats` command reports the split so analysts can see where
/// a representation spends its memory (the paper's Fig. 10 axis).
struct GraphFootprint {
  size_t adjacency_bytes = 0;  // condensed or expanded adjacency structure
  size_t property_bytes = 0;   // vertex property columns
  size_t aux_bytes = 0;        // representation extras (BITMAP's bitmaps)

  size_t Total() const { return adjacency_bytes + property_bytes + aux_bytes; }
};

/// The 7-operation graph API of §3.4 that every in-memory representation
/// implements (C-DUP, EXP, DEDUP-1, DEDUP-2, BITMAP). All graph
/// algorithms and the vertex-centric framework are written against this
/// interface, so any representation can back any analysis.
///
/// Vertices are dense ids [0, NumVertices()); deleted vertices leave holes
/// (lazy deletion, §3.4) which VertexExists reports.
class Graph {
 public:
  virtual ~Graph() = default;

  /// Short representation name ("C-DUP", "EXP", "DEDUP-1", ...).
  virtual std::string_view Name() const = 0;

  /// Size of the vertex id space (including logically deleted slots).
  virtual size_t NumVertices() const = 0;
  /// Number of live vertices.
  virtual size_t NumActiveVertices() const = 0;
  virtual bool VertexExists(NodeId v) const = 0;

  /// getVertices(): calls fn for every live vertex id.
  virtual void ForEachVertex(const std::function<void(NodeId)>& fn) const;

  /// getNeighbors(v): calls fn once per distinct out-neighbor.
  virtual void ForEachNeighbor(NodeId u,
                               const std::function<void(NodeId)>& fn) const = 0;

  /// getNeighbors(v) as a pull iterator.
  virtual std::unique_ptr<NeighborIterator> Neighbors(NodeId u) const;

  /// Flat-adjacency capability: when true, NeighborSpan(u) is valid for
  /// every live vertex u and returns the exact neighbor set — sorted,
  /// duplicate-free, live targets only — as one contiguous span. Kernels
  /// use it to traverse edges with zero virtual dispatch and zero
  /// std::function indirection; when false they fall back to
  /// ForEachNeighbor. EXP implements it natively (and reports false while
  /// lazy vertex deletions are pending, since stale targets would leak
  /// into the spans); CsrGraph materializes it for any representation.
  virtual bool HasFlatAdjacency() const { return false; }

  /// Sorted distinct live out-neighbors of u as a contiguous span. Only
  /// meaningful when HasFlatAdjacency() is true; the default returns an
  /// empty span. The span is invalidated by any mutation of the graph.
  virtual std::span<const NodeId> NeighborSpan(NodeId u) const;

  /// Materialized distinct neighbor list.
  std::vector<NodeId> NeighborList(NodeId u) const;

  /// Out-degree of u (distinct neighbors).
  virtual size_t OutDegree(NodeId u) const;

  /// existsEdge(v, u).
  virtual bool ExistsEdge(NodeId u, NodeId v) const = 0;

  /// addEdge(v, u). No-op returning OK if the edge already exists.
  virtual Status AddEdge(NodeId u, NodeId v) = 0;
  /// deleteEdge(v, u); removes the logical edge u -> v (all paths).
  virtual Status DeleteEdge(NodeId u, NodeId v) = 0;
  /// addVertex(): returns the new vertex id.
  virtual NodeId AddVertex() = 0;
  /// deleteVertex(v): lazy logical removal (§3.4).
  virtual Status DeleteVertex(NodeId v) = 0;

  /// Total number of edges in the *expanded* view of this graph.
  virtual uint64_t CountExpandedEdges() const;

  /// Number of physically stored (condensed) edges.
  virtual uint64_t CountStoredEdges() const = 0;
  /// Number of virtual nodes (0 for EXP).
  virtual size_t NumVirtualNodes() const = 0;

  /// Approximate heap footprint in bytes.
  size_t MemoryBytes() const { return MemoryFootprint().Total(); }

  /// The heap footprint broken down by component; the single source of
  /// byte accounting every representation implements.
  virtual GraphFootprint MemoryFootprint() const = 0;

  /// Sorted unique expanded edge list; the equivalence oracle used by
  /// tests to verify representations agree.
  std::vector<std::pair<NodeId, NodeId>> ExpandedEdgeSet() const;
};

}  // namespace graphgen

#endif  // GRAPHGEN_GRAPH_GRAPH_H_
