#ifndef GRAPHGEN_GRAPH_PROPERTIES_H_
#define GRAPHGEN_GRAPH_PROPERTIES_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "graph/node_ref.h"

namespace graphgen {

/// Columnar string properties attached to real vertices (paper §3.2: head
/// arguments beyond the IDs become vertex properties, e.g. Name). Also
/// holds the external database key each vertex was extracted from.
class PropertyTable {
 public:
  /// Registers a property column; returns its index (idempotent by name).
  size_t AddColumn(const std::string& name);

  bool HasColumn(const std::string& name) const {
    return index_.contains(name);
  }
  std::vector<std::string> ColumnNames() const;

  /// Ensures capacity for `n` vertices in every column.
  void ResizeVertices(size_t n);

  void Set(NodeId node, size_t column, std::string value);
  Status SetByName(NodeId node, const std::string& column, std::string value);

  /// Value of `column` for `node` ("" when unset).
  const std::string& Get(NodeId node, size_t column) const;
  std::optional<std::string> GetByName(NodeId node,
                                       const std::string& column) const;

  void SetExternalKey(NodeId node, std::string key);
  const std::string& ExternalKey(NodeId node) const;
  /// Finds the vertex with the given external key, if any.
  std::optional<NodeId> FindByExternalKey(const std::string& key) const;

  size_t NumColumns() const { return columns_.size(); }
  size_t MemoryBytes() const;

 private:
  std::vector<std::string> column_names_;
  std::unordered_map<std::string, size_t> index_;
  std::vector<std::vector<std::string>> columns_;
  std::vector<std::string> external_keys_;
  mutable std::unordered_map<std::string, NodeId> key_lookup_;
  mutable bool key_lookup_valid_ = false;
  inline static const std::string kEmpty{};
};

}  // namespace graphgen

#endif  // GRAPHGEN_GRAPH_PROPERTIES_H_
