#include "graph/storage.h"

#include <algorithm>
#include <atomic>
#include <unordered_map>
#include <unordered_set>

#include "common/memory.h"
#include "common/parallel.h"

namespace graphgen {

NodeId CondensedStorage::AddRealNode() {
  real_out_.emplace_back();
  real_in_.emplace_back();
  deleted_.push_back(0);
  sorted_ = false;
  return static_cast<NodeId>(real_out_.size() - 1);
}

NodeId CondensedStorage::AddRealNodes(size_t n) {
  NodeId first = static_cast<NodeId>(real_out_.size());
  real_out_.resize(real_out_.size() + n);
  real_in_.resize(real_in_.size() + n);
  deleted_.resize(deleted_.size() + n, 0);
  sorted_ = false;
  return first;
}

uint32_t CondensedStorage::AddVirtualNode() {
  virt_out_.emplace_back();
  virt_in_.emplace_back();
  sorted_ = false;
  return static_cast<uint32_t>(virt_out_.size() - 1);
}

void CondensedStorage::AddEdge(NodeRef from, NodeRef to) {
  MutableOutEdges(from).push_back(to);
  MutableInEdges(to).push_back(from);
  sorted_ = false;
}

void CondensedStorage::AddEdges(
    const std::vector<std::pair<NodeRef, NodeRef>>& edges) {
  if (edges.empty()) return;
  // The bulk path scans every node's count slot (O(all nodes) zeroing);
  // for batches small relative to the graph, plain appends are cheaper.
  const size_t nodes = real_out_.size() + virt_out_.size();
  if (edges.size() < 1024 || edges.size() * 8 < nodes) {
    for (const auto& [from, to] : edges) AddEdge(from, to);
    return;
  }
  // Pass 1: per-node degree deltas (node ids are dense in both spaces).
  std::vector<uint32_t> real_out(real_out_.size(), 0);
  std::vector<uint32_t> real_in(real_in_.size(), 0);
  std::vector<uint32_t> virt_out(virt_out_.size(), 0);
  std::vector<uint32_t> virt_in(virt_in_.size(), 0);
  for (const auto& [from, to] : edges) {
    ++(from.is_virtual() ? virt_out : real_out)[from.index()];
    ++(to.is_virtual() ? virt_in : real_in)[to.index()];
  }
  // Pass 2: one exact resize per touched list; the count slots become
  // per-node write cursors (the list's previous size).
  auto prepare = [](std::vector<std::vector<NodeRef>>& lists,
                    std::vector<uint32_t>& counts) {
    for (size_t i = 0; i < counts.size(); ++i) {
      if (counts[i] == 0) continue;
      const uint32_t old = static_cast<uint32_t>(lists[i].size());
      lists[i].resize(old + counts[i]);
      counts[i] = old;
    }
  };
  prepare(real_out_, real_out);
  prepare(real_in_, real_in);
  prepare(virt_out_, virt_out);
  prepare(virt_in_, virt_in);
  // Pass 3: scatter in order — one indexed write per edge per direction,
  // no per-push capacity checks or size updates.
  for (const auto& [from, to] : edges) {
    if (from.is_virtual()) {
      virt_out_[from.index()][virt_out[from.index()]++] = to;
    } else {
      real_out_[from.index()][real_out[from.index()]++] = to;
    }
    if (to.is_virtual()) {
      virt_in_[to.index()][virt_in[to.index()]++] = from;
    } else {
      real_in_[to.index()][real_in[to.index()]++] = from;
    }
  }
  sorted_ = false;
}

bool CondensedStorage::RemoveEdge(NodeRef from, NodeRef to) {
  auto& out = MutableOutEdges(from);
  auto it = std::find(out.begin(), out.end(), to);
  if (it == out.end()) return false;
  out.erase(it);
  auto& in = MutableInEdges(to);
  auto it2 = std::find(in.begin(), in.end(), from);
  if (it2 != in.end()) in.erase(it2);
  return true;
}

uint64_t CondensedStorage::CountCondensedEdges() const {
  uint64_t total = 0;
  for (const auto& l : real_out_) total += l.size();
  for (const auto& l : virt_out_) total += l.size();
  return total;
}

bool CondensedStorage::IsSingleLayer() const {
  for (const auto& l : virt_out_) {
    for (NodeRef r : l) {
      if (r.is_virtual()) return false;
    }
  }
  return true;
}

size_t CondensedStorage::NumLayers() const {
  if (virt_out_.empty()) return 0;
  // Longest path in the virtual-virtual DAG, via memoized DFS.
  const size_t nv = virt_out_.size();
  std::vector<int> depth(nv, -1);
  std::function<int(uint32_t)> dfs = [&](uint32_t v) -> int {
    if (depth[v] >= 0) return depth[v];
    depth[v] = 0;  // guards against (disallowed) cycles
    int best = 1;
    for (NodeRef r : virt_out_[v]) {
      if (r.is_virtual()) best = std::max(best, 1 + dfs(r.index()));
    }
    depth[v] = best;
    return best;
  };
  int layers = 0;
  for (uint32_t v = 0; v < nv; ++v) layers = std::max(layers, dfs(v));
  return static_cast<size_t>(layers);
}

bool CondensedStorage::IsAcyclic() const {
  const size_t nv = virt_out_.size();
  // Colors: 0 = unvisited, 1 = on stack, 2 = done.
  std::vector<uint8_t> color(nv, 0);
  std::vector<std::pair<uint32_t, size_t>> stack;
  for (uint32_t start = 0; start < nv; ++start) {
    if (color[start] != 0) continue;
    stack.emplace_back(start, 0);
    color[start] = 1;
    while (!stack.empty()) {
      auto& [v, i] = stack.back();
      const auto& out = virt_out_[v];
      bool advanced = false;
      while (i < out.size()) {
        NodeRef r = out[i++];
        if (!r.is_virtual()) continue;
        uint32_t w = r.index();
        if (color[w] == 1) return false;
        if (color[w] == 0) {
          color[w] = 1;
          stack.emplace_back(w, 0);
          advanced = true;
          break;
        }
      }
      if (!advanced && (stack.back().second >= virt_out_[stack.back().first].size())) {
        color[stack.back().first] = 2;
        stack.pop_back();
      }
    }
  }
  return true;
}

void CondensedStorage::ForEachExpandedNeighbor(
    NodeId u, const std::function<void(NodeId)>& fn) const {
  if (IsDeleted(u)) return;
  std::unordered_set<NodeId> seen;
  ForEachPathNeighbor(u, [&](NodeId v) {
    if (seen.insert(v).second) fn(v);
  });
}

void CondensedStorage::ForEachPathNeighbor(
    NodeId u, const std::function<void(NodeId)>& fn) const {
  if (IsDeleted(u)) return;
  // Iterative DFS through virtual nodes only; real targets are leaves.
  std::vector<NodeRef> stack;
  for (NodeRef r : real_out_[u]) stack.push_back(r);
  while (!stack.empty()) {
    NodeRef r = stack.back();
    stack.pop_back();
    if (r.is_real()) {
      // Self paths (u_s -> ... -> u_t) are not logical edges; see header.
      if (!IsDeleted(r.index()) && r.index() != u) fn(r.index());
      continue;
    }
    for (NodeRef next : virt_out_[r.index()]) stack.push_back(next);
  }
}

std::vector<NodeId> CondensedStorage::ExpandedNeighbors(NodeId u) const {
  std::vector<NodeId> out;
  ForEachExpandedNeighbor(u, [&](NodeId v) { out.push_back(v); });
  return out;
}

uint64_t CondensedStorage::CountExpandedEdges() const {
  std::atomic<uint64_t> total{0};
  const size_t n = real_out_.size();
  ParallelFor(n, [&](size_t begin, size_t end) {
    uint64_t local = 0;
    std::unordered_set<NodeId> seen;
    for (size_t u = begin; u < end; ++u) {
      if (deleted_[u]) continue;
      seen.clear();
      ForEachPathNeighbor(static_cast<NodeId>(u), [&](NodeId v) {
        if (seen.insert(v).second) ++local;
      });
    }
    total.fetch_add(local, std::memory_order_relaxed);
  });
  return total.load();
}

uint64_t CondensedStorage::CountDuplicatePairs() const {
  std::atomic<uint64_t> total{0};
  const size_t n = real_out_.size();
  ParallelFor(n, [&](size_t begin, size_t end) {
    uint64_t local = 0;
    std::unordered_map<NodeId, uint32_t> counts;
    for (size_t u = begin; u < end; ++u) {
      if (deleted_[u]) continue;
      counts.clear();
      ForEachPathNeighbor(static_cast<NodeId>(u),
                          [&](NodeId v) { ++counts[v]; });
      for (const auto& [v, c] : counts) {
        if (c > 1) ++local;
      }
    }
    total.fetch_add(local, std::memory_order_relaxed);
  });
  return total.load();
}

std::vector<std::pair<NodeId, NodeId>> CondensedStorage::ExpandedEdgeSet()
    const {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 0; u < real_out_.size(); ++u) {
    if (deleted_[u]) continue;
    ForEachExpandedNeighbor(u, [&](NodeId v) { edges.emplace_back(u, v); });
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

void CondensedStorage::ExpandVirtualNode(uint32_t v) {
  // Copy lists: AddEdge mutates them.
  std::vector<NodeRef> ins = virt_in_[v];
  std::vector<NodeRef> outs = virt_out_[v];
  DetachAll(NodeRef::Virtual(v));
  for (NodeRef in : ins) {
    for (NodeRef out : outs) {
      // Self paths are never logical edges (see ForEachPathNeighbor), so
      // materializing them would only waste memory.
      if (in.is_real() && out.is_real() && in.index() == out.index()) {
        continue;
      }
      AddEdge(in, out);
    }
  }
}

void CondensedStorage::CompactVirtualNodes() {
  const size_t nv = virt_out_.size();
  std::vector<uint32_t> remap(nv, 0xFFFFFFFFu);
  uint32_t next = 0;
  for (uint32_t v = 0; v < nv; ++v) {
    if (!virt_out_[v].empty() || !virt_in_[v].empty()) remap[v] = next++;
  }
  if (next == nv) return;
  auto rewrite = [&](std::vector<std::vector<NodeRef>>& lists) {
    for (auto& l : lists) {
      for (auto& r : l) {
        if (r.is_virtual()) r = NodeRef::Virtual(remap[r.index()]);
      }
    }
  };
  rewrite(real_out_);
  rewrite(real_in_);
  rewrite(virt_out_);
  rewrite(virt_in_);
  for (uint32_t v = 0; v < nv; ++v) {
    if (remap[v] != 0xFFFFFFFFu && remap[v] != v) {
      virt_out_[remap[v]] = std::move(virt_out_[v]);
      virt_in_[remap[v]] = std::move(virt_in_[v]);
    }
  }
  virt_out_.resize(next);
  virt_in_.resize(next);
}

void CondensedStorage::PermuteVirtualNodes(const std::vector<uint32_t>& perm) {
  const size_t nv = virt_out_.size();
  if (perm.size() != nv) return;
  auto rewrite = [&](std::vector<std::vector<NodeRef>>& lists) {
    for (auto& l : lists) {
      for (auto& r : l) {
        if (r.is_virtual()) r = NodeRef::Virtual(perm[r.index()]);
      }
    }
  };
  rewrite(real_out_);
  rewrite(real_in_);
  rewrite(virt_out_);
  rewrite(virt_in_);
  std::vector<std::vector<NodeRef>> new_out(nv);
  std::vector<std::vector<NodeRef>> new_in(nv);
  for (uint32_t v = 0; v < nv; ++v) {
    new_out[perm[v]] = std::move(virt_out_[v]);
    new_in[perm[v]] = std::move(virt_in_[v]);
  }
  virt_out_ = std::move(new_out);
  virt_in_ = std::move(new_in);
  sorted_ = false;
}

void CondensedStorage::DetachAll(NodeRef node) {
  auto& out = MutableOutEdges(node);
  for (NodeRef to : out) {
    auto& in = MutableInEdges(to);
    auto it = std::find(in.begin(), in.end(), node);
    if (it != in.end()) in.erase(it);
  }
  out.clear();
  auto& in = MutableInEdges(node);
  for (NodeRef from : in) {
    auto& their_out = MutableOutEdges(from);
    auto it = std::find(their_out.begin(), their_out.end(), node);
    if (it != their_out.end()) their_out.erase(it);
  }
  in.clear();
}

void CondensedStorage::RemoveParallelEdges() {
  auto dedup = [](std::vector<NodeRef>& l) {
    std::sort(l.begin(), l.end());
    l.erase(std::unique(l.begin(), l.end()), l.end());
  };
  for (auto& l : real_out_) dedup(l);
  for (auto& l : virt_out_) dedup(l);
  for (auto& l : real_in_) l.clear();
  for (auto& l : virt_in_) l.clear();
  for (NodeId u = 0; u < real_out_.size(); ++u) {
    for (NodeRef r : real_out_[u]) {
      MutableInEdges(r).push_back(NodeRef::Real(u));
    }
  }
  for (uint32_t v = 0; v < virt_out_.size(); ++v) {
    for (NodeRef r : virt_out_[v]) {
      MutableInEdges(r).push_back(NodeRef::Virtual(v));
    }
  }
  sorted_ = false;
}

void CondensedStorage::SortAdjacency() {
  auto sort_all = [](std::vector<std::vector<NodeRef>>& lists) {
    for (auto& l : lists) std::sort(l.begin(), l.end());
  };
  sort_all(real_out_);
  sort_all(real_in_);
  sort_all(virt_out_);
  sort_all(virt_in_);
  sorted_ = true;
}

bool CondensedStorage::HasEdge(NodeRef from, NodeRef to) const {
  const auto& out = OutEdges(from);
  if (sorted_) {
    return std::binary_search(out.begin(), out.end(), to);
  }
  return std::find(out.begin(), out.end(), to) != out.end();
}

void CondensedStorage::DeleteRealNode(NodeId u) {
  if (deleted_[u]) return;
  deleted_[u] = 1;
  ++num_deleted_;
}

void CondensedStorage::CompactDeletions() {
  if (num_deleted_ == 0) return;
  auto scrub = [&](std::vector<NodeRef>& list) {
    list.erase(std::remove_if(list.begin(), list.end(),
                              [&](NodeRef r) {
                                return r.is_real() && deleted_[r.index()];
                              }),
               list.end());
  };
  for (auto& l : virt_out_) scrub(l);
  for (auto& l : virt_in_) scrub(l);
  for (NodeId u = 0; u < real_out_.size(); ++u) {
    if (deleted_[u]) {
      // Drop the deleted vertex's own adjacency.
      real_out_[u].clear();
      real_out_[u].shrink_to_fit();
      real_in_[u].clear();
      real_in_[u].shrink_to_fit();
    } else {
      scrub(real_out_[u]);
      scrub(real_in_[u]);
    }
  }
  // Slots stay marked deleted forever (ids are stable); only the pending
  // counter is kept so NumActiveRealNodes stays correct.
}

size_t CondensedStorage::MemoryBytes() const {
  return NestedVectorBytes(real_out_) + NestedVectorBytes(real_in_) +
         NestedVectorBytes(virt_out_) + NestedVectorBytes(virt_in_) +
         VectorBytes(deleted_);
}

}  // namespace graphgen
