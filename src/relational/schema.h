#ifndef GRAPHGEN_RELATIONAL_SCHEMA_H_
#define GRAPHGEN_RELATIONAL_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "relational/value.h"

namespace graphgen::rel {

/// A named, typed column.
struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kInt64;
};

/// Ordered list of columns for a table or intermediate result.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns);

  size_t NumColumns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  /// Index of the column with `name`, or nullopt.
  std::optional<size_t> IndexOf(std::string_view name) const;

  /// "name BIGINT, title VARCHAR" — used for DDL-style debug output.
  std::string ToString() const;

 private:
  std::vector<ColumnDef> columns_;
};

}  // namespace graphgen::rel

#endif  // GRAPHGEN_RELATIONAL_SCHEMA_H_
