#include "relational/column.h"

#include <algorithm>
#include <functional>
#include <unordered_set>

namespace graphgen::rel {

StringDictionary& StringDictionary::operator=(const StringDictionary& other) {
  if (this == &other) return *this;
  strings_ = other.strings_;
  hashes_ = other.hashes_;
  // The index must view *our* deque, not the source's.
  index_.clear();
  index_.reserve(strings_.size());
  for (uint32_t code = 0; code < strings_.size(); ++code) {
    index_.emplace(std::string_view(strings_[code]), code);
  }
  return *this;
}

uint32_t StringDictionary::Intern(std::string_view s) {
  auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  const uint32_t code = static_cast<uint32_t>(strings_.size());
  strings_.emplace_back(s);
  hashes_.push_back(std::hash<std::string>{}(strings_.back()));
  index_.emplace(std::string_view(strings_.back()), code);
  return code;
}

std::optional<uint32_t> StringDictionary::Find(std::string_view s) const {
  auto it = index_.find(s);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

size_t StringDictionary::MemoryBytes() const {
  size_t total = 0;
  for (const std::string& s : strings_) {
    total += sizeof(std::string);
    // Heap allocation beyond the in-object (SSO) buffer.
    if (s.capacity() > sizeof(std::string)) total += s.capacity();
  }
  total += hashes_.capacity() * sizeof(uint64_t);
  total += index_.bucket_count() *
           (sizeof(std::string_view) + sizeof(uint32_t) + sizeof(void*));
  return total;
}

ColumnVector ColumnVector::OfInt64(std::vector<int64_t> values) {
  ColumnVector c;
  c.encoding_ = Encoding::kInt64;
  c.size_ = values.size();
  c.ints_ = std::move(values);
  return c;
}

ColumnVector ColumnVector::OfDouble(std::vector<double> values) {
  ColumnVector c;
  c.encoding_ = Encoding::kDouble;
  c.size_ = values.size();
  c.doubles_ = std::move(values);
  return c;
}

ColumnVector ColumnVector::OfStrings(const std::vector<std::string>& values) {
  ColumnVector c;
  c.encoding_ = Encoding::kDictString;
  c.size_ = values.size();
  c.codes_.reserve(values.size());
  for (const std::string& s : values) c.codes_.push_back(c.dict_.Intern(s));
  return c;
}

std::string_view ColumnVector::EncodingName() const {
  switch (encoding_) {
    case Encoding::kEmpty: return "empty";
    case Encoding::kInt64: return "int64";
    case Encoding::kDouble: return "double";
    case Encoding::kDictString: return "dict";
    case Encoding::kMixed: return "mixed";
  }
  return "?";
}

void ColumnVector::EnsureNulls() {
  if (nulls_.empty()) {
    nulls_.reserve(std::max(pending_reserve_, size_ + 1));
    nulls_.assign(size_, 0);
  }
}

void ColumnVector::ConvertToMixed() {
  mixed_.reserve(size_);
  for (size_t i = 0; i < size_; ++i) mixed_.push_back(ValueAt(i));
  ints_.clear();
  ints_.shrink_to_fit();
  doubles_.clear();
  doubles_.shrink_to_fit();
  codes_.clear();
  codes_.shrink_to_fit();
  dict_ = StringDictionary();
  encoding_ = Encoding::kMixed;
}

void ColumnVector::AppendNull() {
  EnsureNulls();
  nulls_.push_back(1);
  ++null_count_;
  ++size_;
  switch (encoding_) {
    case Encoding::kEmpty: break;  // no data array yet
    case Encoding::kInt64: ints_.push_back(0); break;
    case Encoding::kDouble: doubles_.push_back(0.0); break;
    case Encoding::kDictString: codes_.push_back(0); break;
    case Encoding::kMixed: mixed_.emplace_back(); break;
  }
}

void ColumnVector::AppendInt64(int64_t v) {
  switch (encoding_) {
    case Encoding::kEmpty:
      encoding_ = Encoding::kInt64;
      ints_.reserve(std::max(pending_reserve_, size_ + 1));
      ints_.assign(size_, 0);  // placeholders for the leading NULLs
      break;
    case Encoding::kInt64:
      break;
    case Encoding::kMixed:
      break;
    default:
      ConvertToMixed();
      break;
  }
  if (encoding_ == Encoding::kMixed) {
    mixed_.emplace_back(v);
  } else {
    ints_.push_back(v);
  }
  if (!nulls_.empty()) nulls_.push_back(0);
  ++size_;
}

void ColumnVector::AppendDouble(double v) {
  switch (encoding_) {
    case Encoding::kEmpty:
      encoding_ = Encoding::kDouble;
      doubles_.reserve(std::max(pending_reserve_, size_ + 1));
      doubles_.assign(size_, 0.0);
      break;
    case Encoding::kDouble:
      break;
    case Encoding::kMixed:
      break;
    default:
      ConvertToMixed();
      break;
  }
  if (encoding_ == Encoding::kMixed) {
    mixed_.emplace_back(v);
  } else {
    doubles_.push_back(v);
  }
  if (!nulls_.empty()) nulls_.push_back(0);
  ++size_;
}

void ColumnVector::AppendString(std::string_view s) {
  switch (encoding_) {
    case Encoding::kEmpty:
      encoding_ = Encoding::kDictString;
      codes_.reserve(std::max(pending_reserve_, size_ + 1));
      codes_.assign(size_, 0);
      break;
    case Encoding::kDictString:
      break;
    case Encoding::kMixed:
      break;
    default:
      ConvertToMixed();
      break;
  }
  if (encoding_ == Encoding::kMixed) {
    mixed_.emplace_back(std::string(s));
  } else {
    codes_.push_back(dict_.Intern(s));
  }
  if (!nulls_.empty()) nulls_.push_back(0);
  ++size_;
}

void ColumnVector::Append(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull: AppendNull(); break;
    case ValueType::kInt64: AppendInt64(v.AsInt64()); break;
    case ValueType::kDouble: AppendDouble(v.AsDouble()); break;
    case ValueType::kString: AppendString(v.AsString()); break;
  }
}

void ColumnVector::Reserve(size_t n) {
  switch (encoding_) {
    case Encoding::kEmpty: pending_reserve_ = n; break;
    case Encoding::kInt64: ints_.reserve(n); break;
    case Encoding::kDouble: doubles_.reserve(n); break;
    case Encoding::kDictString: codes_.reserve(n); break;
    case Encoding::kMixed: mixed_.reserve(n); break;
  }
  if (!nulls_.empty()) nulls_.reserve(n);
}

Value ColumnVector::ValueAt(size_t i) const {
  if (IsNull(i)) return Value::Null();
  switch (encoding_) {
    case Encoding::kEmpty: return Value::Null();
    case Encoding::kInt64: return Value(ints_[i]);
    case Encoding::kDouble: return Value(doubles_[i]);
    case Encoding::kDictString: return Value(dict_.At(codes_[i]));
    case Encoding::kMixed: return mixed_[i];
  }
  return Value::Null();
}

uint64_t ColumnVector::HashAt(size_t i) const {
  if (IsNull(i)) return Value::Null().Hash();
  switch (encoding_) {
    case Encoding::kEmpty: return Value::Null().Hash();
    case Encoding::kInt64: return std::hash<int64_t>{}(ints_[i]);
    case Encoding::kDouble: return std::hash<double>{}(doubles_[i]);
    case Encoding::kDictString: return dict_.HashOf(codes_[i]);
    case Encoding::kMixed: return mixed_[i].Hash();
  }
  return 0;
}

bool ColumnVector::EqualAt(size_t i, const ColumnVector& other,
                           size_t j) const {
  const bool a_null = IsNull(i) || encoding_ == Encoding::kEmpty;
  const bool b_null = other.IsNull(j) || other.encoding_ == Encoding::kEmpty;
  if (a_null || b_null) return a_null == b_null;  // NULL == NULL
  if (encoding_ == other.encoding_) {
    switch (encoding_) {
      case Encoding::kInt64:
        return ints_[i] == other.ints_[j];
      case Encoding::kDouble:
        return doubles_[i] == other.doubles_[j];
      case Encoding::kDictString:
        if (&dict_ == &other.dict_) return codes_[i] == other.codes_[j];
        return dict_.At(codes_[i]) == other.dict_.At(other.codes_[j]);
      case Encoding::kMixed:
        return mixed_[i] == other.mixed_[j];
      default:
        break;
    }
  }
  return ValueAt(i) == other.ValueAt(j);
}

size_t ColumnVector::DistinctCount() const {
  const size_t null_distinct = has_nulls() ? 1 : 0;
  switch (encoding_) {
    case Encoding::kEmpty:
      return size_ > 0 ? 1 : 0;
    case Encoding::kInt64: {
      std::unordered_set<int64_t> seen;
      seen.reserve(size_);
      for (size_t i = 0; i < size_; ++i) {
        if (!IsNull(i)) seen.insert(ints_[i]);
      }
      return seen.size() + null_distinct;
    }
    case Encoding::kDouble: {
      std::unordered_set<double> seen;
      seen.reserve(size_);
      for (size_t i = 0; i < size_; ++i) {
        if (!IsNull(i)) seen.insert(doubles_[i]);
      }
      return seen.size() + null_distinct;
    }
    case Encoding::kDictString: {
      // Every code was interned by an append; with no nulls the dictionary
      // cardinality *is* the distinct count. Null placeholders may shadow
      // code 0, so count used codes exactly when nulls exist.
      if (!has_nulls()) return dict_.size();
      std::vector<uint8_t> used(dict_.size(), 0);
      for (size_t i = 0; i < size_; ++i) {
        if (!IsNull(i)) used[codes_[i]] = 1;
      }
      size_t n = 0;
      for (uint8_t u : used) n += u;
      return n + null_distinct;
    }
    case Encoding::kMixed: {
      std::unordered_set<Value, ValueHash> seen;
      seen.reserve(size_);
      for (size_t i = 0; i < size_; ++i) {
        if (!IsNull(i)) seen.insert(mixed_[i]);
      }
      return seen.size() + null_distinct;
    }
  }
  return 0;
}

size_t ColumnVector::MemoryBytes() const {
  size_t total = nulls_.capacity();
  total += ints_.capacity() * sizeof(int64_t);
  total += doubles_.capacity() * sizeof(double);
  total += codes_.capacity() * sizeof(uint32_t);
  total += dict_.MemoryBytes();
  total += mixed_.capacity() * sizeof(Value);
  for (const Value& v : mixed_) {
    if (v.type() == ValueType::kString &&
        v.AsString().capacity() > sizeof(std::string)) {
      total += v.AsString().capacity();
    }
  }
  return total;
}

}  // namespace graphgen::rel
