#ifndef GRAPHGEN_RELATIONAL_CATALOG_H_
#define GRAPHGEN_RELATIONAL_CATALOG_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace graphgen::rel {

class Table;

/// Per-column statistics, equivalent to PostgreSQL's pg_stats.n_distinct
/// which the paper consults to classify large-output joins (§4.2 Step 2).
struct ColumnStats {
  uint64_t n_distinct = 0;
};

/// Per-table statistics.
struct TableStats {
  uint64_t row_count = 0;
  std::vector<ColumnStats> columns;
};

/// The system catalog: row counts and distinct-value counts, refreshed by
/// Analyze(). The planner's large-output-join test reads from here, never
/// from the raw tables, mirroring how GraphGen reads pg_stats.
class Catalog {
 public:
  /// Computes exact statistics for a table (our ANALYZE).
  void Analyze(const Table& table);

  bool HasStats(const std::string& table) const {
    return stats_.contains(table);
  }
  /// Stats for a table; Analyze must have been called for it.
  Result<TableStats> GetStats(const std::string& table) const;

  /// n_distinct for a column, or error if unknown.
  Result<uint64_t> DistinctCount(const std::string& table, size_t col) const;

 private:
  std::unordered_map<std::string, TableStats> stats_;
};

}  // namespace graphgen::rel

#endif  // GRAPHGEN_RELATIONAL_CATALOG_H_
