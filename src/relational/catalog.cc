#include "relational/catalog.h"

#include "relational/table.h"

namespace graphgen::rel {

void Catalog::Analyze(const Table& table) {
  TableStats ts;
  ts.row_count = table.NumRows();
  ts.columns.resize(table.NumColumns());
  for (size_t c = 0; c < table.NumColumns(); ++c) {
    ts.columns[c].n_distinct = table.CountDistinct(c);
  }
  stats_[table.name()] = std::move(ts);
}

Result<TableStats> Catalog::GetStats(const std::string& table) const {
  auto it = stats_.find(table);
  if (it == stats_.end()) {
    return Status::NotFound("no statistics for table " + table +
                            " (run ANALYZE)");
  }
  return it->second;
}

Result<uint64_t> Catalog::DistinctCount(const std::string& table,
                                        size_t col) const {
  auto it = stats_.find(table);
  if (it == stats_.end()) {
    return Status::NotFound("no statistics for table " + table);
  }
  if (col >= it->second.columns.size()) {
    return Status::OutOfRange("column index out of range for " + table);
  }
  return it->second.columns[col].n_distinct;
}

}  // namespace graphgen::rel
