#include "relational/schema.h"

namespace graphgen::rel {

Schema::Schema(std::vector<ColumnDef> columns) : columns_(std::move(columns)) {}

std::optional<size_t> Schema::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return std::nullopt;
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ' ';
    out += ValueTypeToString(columns_[i].type);
  }
  return out;
}

}  // namespace graphgen::rel
