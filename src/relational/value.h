#ifndef GRAPHGEN_RELATIONAL_VALUE_H_
#define GRAPHGEN_RELATIONAL_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <variant>

namespace graphgen::rel {

/// Column types supported by the embedded relational engine. This is the
/// minimal set needed by graph extraction queries (integer keys, numeric
/// measures, and text properties).
enum class ValueType { kNull = 0, kInt64, kDouble, kString };

std::string_view ValueTypeToString(ValueType t);

/// A dynamically typed cell value. Join keys are almost always kInt64; the
/// executor has fast paths keyed on that.
class Value {
 public:
  Value() : data_(std::monostate{}) {}
  /* implicit */ Value(int64_t v) : data_(v) {}
  /* implicit */ Value(double v) : data_(v) {}
  /* implicit */ Value(std::string v) : data_(std::move(v)) {}
  /* implicit */ Value(const char* v) : data_(std::string(v)) {}

  static Value Null() { return Value(); }

  ValueType type() const {
    switch (data_.index()) {
      case 0: return ValueType::kNull;
      case 1: return ValueType::kInt64;
      case 2: return ValueType::kDouble;
      default: return ValueType::kString;
    }
  }

  bool is_null() const { return data_.index() == 0; }
  int64_t AsInt64() const { return std::get<int64_t>(data_); }
  double AsDouble() const {
    if (data_.index() == 1) return static_cast<double>(std::get<int64_t>(data_));
    return std::get<double>(data_);
  }
  const std::string& AsString() const { return std::get<std::string>(data_); }

  /// Renders the value for SQL text / debugging ('quoted' strings).
  std::string ToString() const;

  bool operator==(const Value& other) const { return data_ == other.data_; }
  bool operator!=(const Value& other) const { return !(*this == other); }
  /// Total order: null < int/double (by numeric value) < string.
  bool operator<(const Value& other) const;

  /// Hash suitable for unordered containers.
  size_t Hash() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace graphgen::rel

#endif  // GRAPHGEN_RELATIONAL_VALUE_H_
