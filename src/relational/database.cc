#include "relational/database.h"

namespace graphgen::rel {

Result<Table*> Database::CreateTable(const std::string& name, Schema schema) {
  if (tables_.contains(name)) {
    return Status::AlreadyExists("table " + name + " already exists");
  }
  auto [it, _] = tables_.emplace(name, Table(name, std::move(schema)));
  it->second.MarkRebase(Tick());
  return &it->second;
}

Table* Database::PutTable(Table table) {
  std::string name = table.name();
  auto [it, _] = tables_.insert_or_assign(name, std::move(table));
  it->second.MarkRebase(Tick());
  catalog_.Analyze(it->second);
  return &it->second;
}

Result<const Table*> Database::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table named " + name);
  return &it->second;
}

Result<Table*> Database::GetMutableTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table named " + name);
  it->second.MarkRebase(Tick());
  return &it->second;
}

Status Database::AppendRows(const std::string& name,
                            const std::vector<Row>& rows) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table named " + name);
  Table& table = it->second;
  const size_t first_row = table.NumRows();
  table.Reserve(first_row + rows.size());
  for (const Row& row : rows) {
    Status appended = table.Append(row);
    if (!appended.ok()) {
      // Partial batch: the rows appended so far are real, so stamp them as
      // an append batch before surfacing the error — a silent unstamped
      // change would let cached deltas miss these rows forever.
      if (table.NumRows() > first_row) table.MarkAppend(Tick(), first_row);
      catalog_.Analyze(table);
      return appended;
    }
  }
  table.MarkAppend(Tick(), first_row);
  catalog_.Analyze(table);
  return Status::OK();
}

Result<TableVersion> Database::VersionOf(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table named " + name);
  const Table& t = it->second;
  return TableVersion{t.version(), t.rebase_version(), t.NumRows()};
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

Status Database::Analyze(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table named " + name);
  catalog_.Analyze(it->second);
  return Status::OK();
}

void Database::AnalyzeAll() {
  for (const auto& [_, table] : tables_) catalog_.Analyze(table);
}

size_t Database::MemoryBytes() const {
  size_t total = 0;
  for (const auto& [_, table] : tables_) total += table.MemoryBytes();
  return total;
}

}  // namespace graphgen::rel
