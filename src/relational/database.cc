#include "relational/database.h"

namespace graphgen::rel {

Result<Table*> Database::CreateTable(const std::string& name, Schema schema) {
  if (tables_.contains(name)) {
    return Status::AlreadyExists("table " + name + " already exists");
  }
  auto [it, _] = tables_.emplace(name, Table(name, std::move(schema)));
  return &it->second;
}

Table* Database::PutTable(Table table) {
  std::string name = table.name();
  auto [it, _] = tables_.insert_or_assign(name, std::move(table));
  catalog_.Analyze(it->second);
  return &it->second;
}

Result<const Table*> Database::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table named " + name);
  return &it->second;
}

Result<Table*> Database::GetMutableTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table named " + name);
  return &it->second;
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

Status Database::Analyze(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table named " + name);
  catalog_.Analyze(it->second);
  return Status::OK();
}

void Database::AnalyzeAll() {
  for (const auto& [_, table] : tables_) catalog_.Analyze(table);
}

size_t Database::MemoryBytes() const {
  size_t total = 0;
  for (const auto& [_, table] : tables_) total += table.MemoryBytes();
  return total;
}

}  // namespace graphgen::rel
