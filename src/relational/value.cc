#include "relational/value.h"

#include <cstdio>

namespace graphgen::rel {

std::string_view ValueTypeToString(ValueType t) {
  switch (t) {
    case ValueType::kNull: return "NULL";
    case ValueType::kInt64: return "BIGINT";
    case ValueType::kDouble: return "DOUBLE";
    case ValueType::kString: return "VARCHAR";
  }
  return "?";
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return std::to_string(std::get<int64_t>(data_));
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", std::get<double>(data_));
      return buf;
    }
    case ValueType::kString:
      return "'" + std::get<std::string>(data_) + "'";
  }
  return "?";
}

bool Value::operator<(const Value& other) const {
  ValueType a = type();
  ValueType b = other.type();
  // Numeric types compare by value across int/double.
  bool a_num = a == ValueType::kInt64 || a == ValueType::kDouble;
  bool b_num = b == ValueType::kInt64 || b == ValueType::kDouble;
  if (a_num && b_num) return AsDouble() < other.AsDouble();
  if (a != b) return static_cast<int>(a) < static_cast<int>(b);
  switch (a) {
    case ValueType::kNull:
      return false;
    case ValueType::kString:
      return AsString() < other.AsString();
    default:
      return false;  // unreachable
  }
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b9;
    case ValueType::kInt64:
      return std::hash<int64_t>{}(std::get<int64_t>(data_));
    case ValueType::kDouble:
      return std::hash<double>{}(std::get<double>(data_));
    case ValueType::kString:
      return std::hash<std::string>{}(std::get<std::string>(data_));
  }
  return 0;
}

}  // namespace graphgen::rel
