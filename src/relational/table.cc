#include "relational/table.h"

#include <cassert>

namespace graphgen::rel {

Table Table::FromColumns(std::string name, Schema schema,
                         std::vector<ColumnVector> columns) {
  Table t(std::move(name), std::move(schema));
  assert(columns.size() == t.schema_.NumColumns());
  t.num_rows_ = columns.empty() ? 0 : columns[0].size();
  for (const ColumnVector& c : columns) {
    assert(c.size() == t.num_rows_);
    (void)c;
  }
  t.columns_ = std::move(columns);
  return t;
}

Row Table::row(size_t i) const {
  Row out;
  out.reserve(columns_.size());
  for (const ColumnVector& c : columns_) out.push_back(c.ValueAt(i));
  return out;
}

Status Table::Append(Row row) {
  if (row.size() != schema_.NumColumns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match schema of " +
        name_ + " (" + std::to_string(schema_.NumColumns()) + " columns)");
  }
  AppendUnchecked(row);
  return Status::OK();
}

void Table::AppendUnchecked(const Row& row) {
  for (size_t c = 0; c < columns_.size(); ++c) columns_[c].Append(row[c]);
  ++num_rows_;
}

void Table::Reserve(size_t n) {
  for (ColumnVector& c : columns_) c.Reserve(n);
}

Result<std::vector<int64_t>> Table::Int64Column(size_t col) const {
  const ColumnVector& c = columns_[col];
  const auto fail = [&] {
    return Status::ExecutionError("column " + std::to_string(col) + " of " +
                                  name_ + " is not BIGINT");
  };
  if (c.has_nulls()) return fail();
  switch (c.encoding()) {
    case ColumnVector::Encoding::kInt64:
      return std::vector<int64_t>(c.Int64Data(), c.Int64Data() + c.size());
    case ColumnVector::Encoding::kEmpty:
      if (c.size() == 0) return std::vector<int64_t>{};
      return fail();
    case ColumnVector::Encoding::kMixed: {
      std::vector<int64_t> out;
      out.reserve(c.size());
      for (size_t i = 0; i < c.size(); ++i) {
        const Value& v = c.MixedAt(i);
        if (v.type() != ValueType::kInt64) return fail();
        out.push_back(v.AsInt64());
      }
      return out;
    }
    default:
      return fail();
  }
}

size_t Table::CountDistinct(size_t col) const {
  return columns_[col].DistinctCount();
}

size_t Table::MemoryBytes() const {
  size_t total = columns_.capacity() * sizeof(ColumnVector);
  for (const ColumnVector& c : columns_) total += c.MemoryBytes();
  return total;
}

void Table::MarkAppend(uint64_t version, size_t first_row) {
  version_ = version;
  append_log_.push_back(
      {version, first_row, num_rows_ >= first_row ? num_rows_ - first_row : 0});
  if (append_log_.size() > kMaxAppendLogEntries) {
    append_log_.erase(append_log_.begin(),
                      append_log_.end() - kMaxAppendLogEntries);
  }
}

void Table::MarkRebase(uint64_t version) {
  version_ = version;
  rebase_version_ = version;
  append_log_.clear();
}

}  // namespace graphgen::rel
