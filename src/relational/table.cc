#include "relational/table.h"

#include <unordered_set>

namespace graphgen::rel {

Status Table::Append(Row row) {
  if (row.size() != schema_.NumColumns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match schema of " +
        name_ + " (" + std::to_string(schema_.NumColumns()) + " columns)");
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

Result<std::vector<int64_t>> Table::Int64Column(size_t col) const {
  std::vector<int64_t> out;
  out.reserve(rows_.size());
  for (const Row& r : rows_) {
    if (r[col].type() != ValueType::kInt64) {
      return Status::ExecutionError("column " + std::to_string(col) + " of " +
                                    name_ + " is not BIGINT");
    }
    out.push_back(r[col].AsInt64());
  }
  return out;
}

size_t Table::CountDistinct(size_t col) const {
  std::unordered_set<Value, ValueHash> seen;
  seen.reserve(rows_.size());
  for (const Row& r : rows_) seen.insert(r[col]);
  return seen.size();
}

size_t Table::MemoryBytes() const {
  size_t total = rows_.capacity() * sizeof(Row);
  for (const Row& r : rows_) {
    total += r.capacity() * sizeof(Value);
    for (const Value& v : r) {
      if (v.type() == ValueType::kString) total += v.AsString().capacity();
    }
  }
  return total;
}

}  // namespace graphgen::rel
