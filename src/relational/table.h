#ifndef GRAPHGEN_RELATIONAL_TABLE_H_
#define GRAPHGEN_RELATIONAL_TABLE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "relational/column.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace graphgen::rel {

/// A materialized row (one Value per column).
using Row = std::vector<Value>;

/// One finalized append batch in a table's delta log: `first_row` is the
/// row-id watermark before the batch landed (rows [first_row,
/// first_row + num_rows) are the batch), `version` the database tick that
/// stamped it. The log is bounded (kMaxAppendLogEntries); correctness of
/// delta consumers never depends on retention, because an append-only
/// table's delta since any basis is always [basis_rows, NumRows()).
struct AppendBatch {
  uint64_t version = 0;
  size_t first_row = 0;
  size_t num_rows = 0;
};

/// An in-memory table stored as typed column vectors (int64 / double /
/// dictionary-encoded string arrays with null masks — see ColumnVector).
/// This plays the role of a PostgreSQL heap table in the paper's
/// architecture: the planner only ever scans, filters, joins, and
/// DISTINCT-projects these, and the columnar executor reads the raw typed
/// arrays directly. The row-oriented API (`Append`, `row(i)`) is retained
/// as a compatibility view: rows are decomposed into / materialized from
/// the columns cell by cell.
class Table {
 public:
  Table() = default;
  Table(std::string name, Schema schema)
      : name_(std::move(name)),
        schema_(std::move(schema)),
        columns_(schema_.NumColumns()) {}

  /// Bulk columnar construction (generators, snapshot loader). All columns
  /// must have the same length and match the schema's arity.
  static Table FromColumns(std::string name, Schema schema,
                           std::vector<ColumnVector> columns);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t NumRows() const { return num_rows_; }
  size_t NumColumns() const { return schema_.NumColumns(); }

  /// Physical column storage (the executor's fast paths read these).
  const ColumnVector& column(size_t c) const { return columns_[c]; }

  /// Compatibility view: materializes row i from the columns (a copy, not
  /// a reference into storage — the table has no row-major storage).
  Row row(size_t i) const;

  /// Cell access without materializing the whole row.
  Value ValueAt(size_t row, size_t col) const {
    return columns_[col].ValueAt(row);
  }

  /// Appends a row; returns InvalidArgument if the arity mismatches the
  /// schema. Type checking is lenient (values are dynamically typed; a
  /// column converts to the mixed encoding on a type mismatch).
  Status Append(Row row);

  /// Appends without checks; used by row-oriented callers on hot paths.
  void AppendUnchecked(const Row& row);
  void Reserve(size_t n);

  /// Extracts one column as a vector of int64 keys. Returns ExecutionError
  /// if any value in the column is not an integer. Fast path for joins.
  Result<std::vector<int64_t>> Int64Column(size_t col) const;

  /// Number of distinct values in a column (exact; computed by ANALYZE).
  size_t CountDistinct(size_t col) const;

  /// Heap footprint: typed arrays, null masks, string dictionaries (the
  /// numbers the memory-budgeted caches and the paper's condensed-vs-input
  /// guarantee compare against).
  size_t MemoryBytes() const;

  // ---- versioning (incremental extraction) --------------------------------
  //
  // A table carries a monotonic version and a bounded append-delta log,
  // both stamped by the owning Database (the tick source), so extraction
  // consumers can decide between "unchanged", "append-only delta", and
  // "rebased" (in-place mutation of unknown shape — updates, deletes, or a
  // whole-table replace). `version` advances on every stamped change;
  // `rebase_version` records the version at the last non-append change.
  // A basis taken at version V is patchable iff rebase_version() <= V.

  static constexpr size_t kMaxAppendLogEntries = 64;

  uint64_t version() const { return version_; }
  uint64_t rebase_version() const { return rebase_version_; }

  /// Stamps an append batch covering rows [first_row, NumRows()). The log
  /// keeps the most recent kMaxAppendLogEntries batches.
  void MarkAppend(uint64_t version, size_t first_row);

  /// Stamps a rebase: the table's contents changed in a way that is not an
  /// append (replace, in-place update, delete). Cached deltas are void.
  void MarkRebase(uint64_t version);

  /// The retained append batches, oldest first.
  const std::vector<AppendBatch>& append_log() const { return append_log_; }

 private:
  std::string name_;
  Schema schema_;
  size_t num_rows_ = 0;
  std::vector<ColumnVector> columns_;
  uint64_t version_ = 0;
  uint64_t rebase_version_ = 0;
  std::vector<AppendBatch> append_log_;
};

}  // namespace graphgen::rel

#endif  // GRAPHGEN_RELATIONAL_TABLE_H_
