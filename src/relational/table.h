#ifndef GRAPHGEN_RELATIONAL_TABLE_H_
#define GRAPHGEN_RELATIONAL_TABLE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace graphgen::rel {

/// A materialized row (one Value per column).
using Row = std::vector<Value>;

/// An in-memory, row-oriented table. This plays the role of a PostgreSQL
/// heap table in the paper's architecture: the planner only ever scans,
/// filters, joins, and DISTINCT-projects these.
class Table {
 public:
  Table() = default;
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t NumRows() const { return rows_.size(); }
  size_t NumColumns() const { return schema_.NumColumns(); }

  const Row& row(size_t i) const { return rows_[i]; }
  const std::vector<Row>& rows() const { return rows_; }

  /// Appends a row; returns InvalidArgument if the arity mismatches the
  /// schema. Type checking is lenient (values are dynamically typed).
  Status Append(Row row);

  /// Appends without checks; used by generators on hot paths.
  void AppendUnchecked(Row row) { rows_.push_back(std::move(row)); }
  void Reserve(size_t n) { rows_.reserve(n); }

  /// Extracts one column as a vector of int64 keys. Returns ExecutionError
  /// if any value in the column is not an integer. Fast path for joins.
  Result<std::vector<int64_t>> Int64Column(size_t col) const;

  /// Number of distinct values in a column (exact; computed by ANALYZE).
  size_t CountDistinct(size_t col) const;

  /// Approximate heap footprint.
  size_t MemoryBytes() const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
};

}  // namespace graphgen::rel

#endif  // GRAPHGEN_RELATIONAL_TABLE_H_
