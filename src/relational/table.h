#ifndef GRAPHGEN_RELATIONAL_TABLE_H_
#define GRAPHGEN_RELATIONAL_TABLE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "relational/column.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace graphgen::rel {

/// A materialized row (one Value per column).
using Row = std::vector<Value>;

/// An in-memory table stored as typed column vectors (int64 / double /
/// dictionary-encoded string arrays with null masks — see ColumnVector).
/// This plays the role of a PostgreSQL heap table in the paper's
/// architecture: the planner only ever scans, filters, joins, and
/// DISTINCT-projects these, and the columnar executor reads the raw typed
/// arrays directly. The row-oriented API (`Append`, `row(i)`) is retained
/// as a compatibility view: rows are decomposed into / materialized from
/// the columns cell by cell.
class Table {
 public:
  Table() = default;
  Table(std::string name, Schema schema)
      : name_(std::move(name)),
        schema_(std::move(schema)),
        columns_(schema_.NumColumns()) {}

  /// Bulk columnar construction (generators, snapshot loader). All columns
  /// must have the same length and match the schema's arity.
  static Table FromColumns(std::string name, Schema schema,
                           std::vector<ColumnVector> columns);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t NumRows() const { return num_rows_; }
  size_t NumColumns() const { return schema_.NumColumns(); }

  /// Physical column storage (the executor's fast paths read these).
  const ColumnVector& column(size_t c) const { return columns_[c]; }

  /// Compatibility view: materializes row i from the columns (a copy, not
  /// a reference into storage — the table has no row-major storage).
  Row row(size_t i) const;

  /// Cell access without materializing the whole row.
  Value ValueAt(size_t row, size_t col) const {
    return columns_[col].ValueAt(row);
  }

  /// Appends a row; returns InvalidArgument if the arity mismatches the
  /// schema. Type checking is lenient (values are dynamically typed; a
  /// column converts to the mixed encoding on a type mismatch).
  Status Append(Row row);

  /// Appends without checks; used by row-oriented callers on hot paths.
  void AppendUnchecked(const Row& row);
  void Reserve(size_t n);

  /// Extracts one column as a vector of int64 keys. Returns ExecutionError
  /// if any value in the column is not an integer. Fast path for joins.
  Result<std::vector<int64_t>> Int64Column(size_t col) const;

  /// Number of distinct values in a column (exact; computed by ANALYZE).
  size_t CountDistinct(size_t col) const;

  /// Heap footprint: typed arrays, null masks, string dictionaries (the
  /// numbers the memory-budgeted caches and the paper's condensed-vs-input
  /// guarantee compare against).
  size_t MemoryBytes() const;

 private:
  std::string name_;
  Schema schema_;
  size_t num_rows_ = 0;
  std::vector<ColumnVector> columns_;
};

}  // namespace graphgen::rel

#endif  // GRAPHGEN_RELATIONAL_TABLE_H_
