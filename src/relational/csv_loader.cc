#include "relational/csv_loader.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <optional>
#include <system_error>
#include <vector>

namespace graphgen::rel {

namespace {

// One physical CSV record (may span multiple text lines when a quoted
// field embeds newlines) and the 1-based line it starts on.
struct RawRecord {
  std::string_view text;
  int line = 1;
};

// True for a record that contains no data at all (empty, or a lone '\r'
// from a blank CRLF line).
bool IsBlankRecord(std::string_view rec) {
  for (char c : rec) {
    if (c != '\r') return false;
  }
  return true;
}

// Splits the input into records at newlines *outside* double quotes
// (RFC 4180: quoted fields may embed line breaks). An escaped quote ""
// toggles the state twice, so it cannot misplace a record boundary; a
// genuinely unterminated quote leaves the tail as one record, which
// SplitRecord then rejects with a line-accurate error.
std::vector<RawRecord> SplitRecords(std::string_view text) {
  std::vector<RawRecord> records;
  size_t start = 0;
  int line = 1;
  int start_line = 1;
  bool quoted = false;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '"') {
      quoted = !quoted;
    } else if (c == '\n') {
      ++line;
      if (!quoted) {
        records.push_back({text.substr(start, i - start), start_line});
        start = i + 1;
        start_line = line;
      }
    }
  }
  if (start < text.size()) {
    records.push_back({text.substr(start), start_line});
  }
  return records;
}

// Splits one CSV record; supports double-quoted fields with "" escapes
// and embedded newlines (preserved verbatim inside quotes).
Result<std::vector<std::string>> SplitRecord(std::string_view line,
                                             char delimiter, int line_no) {
  std::vector<std::string> fields;
  std::string current;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      if (!current.empty()) {
        return Status::ParseError("unexpected quote mid-field at line " +
                                  std::to_string(line_no));
      }
      quoted = true;
    } else if (c == delimiter) {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c != '\r') {
      current += c;
    }
  }
  if (quoted) {
    return Status::ParseError("unterminated quoted field at line " +
                              std::to_string(line_no));
  }
  fields.push_back(std::move(current));
  return fields;
}

bool LooksLikeInt(const std::string& s) {
  if (s.empty()) return false;
  size_t i = s[0] == '-' || s[0] == '+' ? 1 : 0;
  if (i == s.size()) return false;
  for (; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

// Accepts only plain finite decimal literals: [+-]digits[.digits][e[+-]d].
// strtod alone would also accept "nan", "inf", and hex floats — NaN join
// keys silently drop rows in hash joins (NaN != NaN), so those widen to
// string instead.
bool IsDecimalLiteral(const std::string& s) {
  size_t i = 0;
  if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
  size_t mantissa_digits = 0;
  while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
    ++i;
    ++mantissa_digits;
  }
  if (i < s.size() && s[i] == '.') {
    ++i;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
      ++i;
      ++mantissa_digits;
    }
  }
  if (mantissa_digits == 0) return false;
  if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
    ++i;
    if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
    size_t exp_digits = 0;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
      ++i;
      ++exp_digits;
    }
    if (exp_digits == 0) return false;
  }
  return i == s.size();
}

// Locale-independent full-string int64 parse via std::from_chars. An
// out-of-range id returns nullopt so the cell stays a string, preserved
// exactly — a double would round distinct large ids onto the same value
// and silently merge entities / mismatch join keys. (strtoll instead
// clamps to LLONG_MIN/MAX and reports through errno, which the two loader
// passes used to interpret differently.)
std::optional<int64_t> ParseInt64Field(const std::string& field) {
  if (!LooksLikeInt(field)) return std::nullopt;
  // from_chars accepts '-' but not the '+' LooksLikeInt allows.
  const size_t skip = field[0] == '+' ? 1 : 0;
  const char* first = field.data() + skip;
  const char* last = field.data() + field.size();
  int64_t value = 0;
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return value;
}

// Approximate power-of-ten magnitude of a decimal literal, from its text
// alone: enough to tell a vanishing value (|x| < 1e-307) from an
// overflowing one when from_chars reports result_out_of_range. Every
// counter is clamped well below its type's range, so a hostile literal
// ("13e2147483647", a gigabyte of digits) can neither overflow (UB) nor
// flip the verdict — the clamp is orders of magnitude beyond any finite
// double's exponent either way.
int64_t ApproxDecimalExponent(const std::string& s) {
  constexpr int64_t kClamp = 1'000'000'000;
  size_t i = s[0] == '+' || s[0] == '-' ? 1 : 0;
  int64_t int_digits = 0;   // significant digits before the point
  int64_t frac_zeros = 0;   // zeros right after the point (if int part is 0)
  bool leading = true;
  for (; i < s.size() && s[i] != '.' && s[i] != 'e' && s[i] != 'E'; ++i) {
    if (leading && s[i] == '0') continue;
    leading = false;
    if (int_digits < kClamp) ++int_digits;
  }
  if (i < s.size() && s[i] == '.') {
    for (++i; i < s.size() && s[i] != 'e' && s[i] != 'E'; ++i) {
      if (int_digits == 0 && s[i] == '0') {
        if (frac_zeros < kClamp) ++frac_zeros;
      } else if (int_digits == 0 && s[i] != '0') {
        break;  // first significant fractional digit found
      }
    }
    while (i < s.size() && s[i] != 'e' && s[i] != 'E') ++i;
  }
  int64_t exp = 0;
  if (i < s.size()) {
    // Manual digit loop with clamping: from_chars would *fail* on an
    // exponent beyond int64 range and silently leave 0, misclassifying
    // e.g. "1e-99999999999999999999" as overflow.
    ++i;  // past 'e'/'E'
    const bool neg = i < s.size() && s[i] == '-';
    if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
    for (; i < s.size(); ++i) {
      if (exp < kClamp) exp = exp * 10 + (s[i] - '0');
    }
    if (neg) exp = -exp;
  }
  return exp + (int_digits > 0 ? int_digits - 1 : -(frac_zeros + 1));
}

// Locale-independent full-string finite-double parse via std::from_chars,
// restricted to plain decimal literals (IsDecimalLiteral already rejects
// "nan"/"inf"/hex floats — NaN join keys silently drop rows in hash joins
// since NaN != NaN). Underflow rounds to +-0 exactly like strtod;
// overflow returns nullopt so the cell widens to string. Both loader
// passes call this one routine, so a cell can never change value between
// inference and append.
std::optional<double> ParseDoubleField(const std::string& field) {
  if (!IsDecimalLiteral(field)) return std::nullopt;
  // from_chars accepts '-' but not the leading '+' the literal may carry.
  const size_t skip = field[0] == '+' ? 1 : 0;
  const char* first = field.data() + skip;
  const char* last = field.data() + field.size();
  double value = 0.0;
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ptr != last) return std::nullopt;
  if (ec == std::errc::result_out_of_range) {
    // The standard leaves `value` unspecified here; classify the literal
    // from its text. A tiny magnitude underflows toward zero (keep it, as
    // strtod did); a huge one would round to +-inf (widen to string).
    if (ApproxDecimalExponent(field) >= 0) return std::nullopt;
    return field[0] == '-' ? -0.0 : 0.0;
  }
  if (ec != std::errc() || !std::isfinite(value)) return std::nullopt;
  return value;
}

// Cell classification for type inference. The *column* type is the widened
// meet of its cells (int -> double -> string); cells are parsed once the
// column type is final, so a column never mixes physical cell types.
ValueType ClassifyField(const std::string& field, bool infer_types) {
  if (field.empty()) return ValueType::kNull;
  if (!infer_types) return ValueType::kString;
  if (LooksLikeInt(field)) {
    return ParseInt64Field(field).has_value() ? ValueType::kInt64
                                              : ValueType::kString;
  }
  if (ParseDoubleField(field).has_value()) return ValueType::kDouble;
  return ValueType::kString;
}

ValueType Widen(ValueType column, ValueType cell) {
  if (cell == ValueType::kNull) return column;
  if (column == ValueType::kNull) return cell;
  if (column == cell) return column;
  const bool both_numeric =
      (column == ValueType::kInt64 || column == ValueType::kDouble) &&
      (cell == ValueType::kInt64 || cell == ValueType::kDouble);
  return both_numeric ? ValueType::kDouble : ValueType::kString;
}

}  // namespace

Result<Table> ParseCsv(const std::string& table_name, std::string_view text,
                       const CsvOptions& options) {
  std::vector<RawRecord> records = SplitRecords(text);
  // Leading and trailing blank lines are tolerated (trailing newline,
  // editor padding); a blank line *inside* the data is an error rather
  // than a silently dropped row.
  size_t lo = 0;
  size_t hi = records.size();
  while (lo < hi && IsBlankRecord(records[lo].text)) ++lo;
  while (hi > lo && IsBlankRecord(records[hi - 1].text)) --hi;
  records.erase(records.begin() + hi, records.end());
  records.erase(records.begin(), records.begin() + lo);
  if (records.empty()) {
    return Status::ParseError("empty CSV input for table " + table_name);
  }
  for (const RawRecord& rec : records) {
    if (IsBlankRecord(rec.text)) {
      return Status::ParseError("blank line " + std::to_string(rec.line) +
                                " inside data of table " + table_name);
    }
  }

  size_t first_data = 0;
  std::vector<std::string> names;
  GRAPHGEN_ASSIGN_OR_RETURN(
      std::vector<std::string> first,
      SplitRecord(records[0].text, options.delimiter, records[0].line));
  if (options.header) {
    names = std::move(first);
    first_data = 1;
  } else {
    for (size_t c = 0; c < first.size(); ++c) {
      names.push_back("c" + std::to_string(c));
    }
  }

  // Pass 1: split every record and widen each column's type over its
  // cells. Type inference finalizes a *column*, not a cell: "4" in a
  // column that elsewhere holds "3.5" becomes the double 4.0, and an
  // id column with one out-of-range value keeps every id as its exact
  // original text.
  std::vector<std::vector<std::string>> cells;
  cells.reserve(records.size() - first_data);
  std::vector<ValueType> types(names.size(), ValueType::kNull);
  for (size_t ri = first_data; ri < records.size(); ++ri) {
    GRAPHGEN_ASSIGN_OR_RETURN(
        std::vector<std::string> fields,
        SplitRecord(records[ri].text, options.delimiter, records[ri].line));
    if (fields.size() != names.size()) {
      return Status::ParseError(
          "line " + std::to_string(records[ri].line) + " has " +
          std::to_string(fields.size()) + " fields, expected " +
          std::to_string(names.size()));
    }
    for (size_t c = 0; c < fields.size(); ++c) {
      types[c] = Widen(types[c], ClassifyField(fields[c], options.infer_types));
    }
    cells.push_back(std::move(fields));
  }

  // Pass 2: append column-wise into typed vectors under the final type.
  std::vector<ColumnDef> columns;
  columns.reserve(names.size());
  std::vector<ColumnVector> data(names.size());
  for (size_t c = 0; c < names.size(); ++c) {
    const ValueType t =
        types[c] == ValueType::kNull ? ValueType::kString : types[c];
    columns.push_back({names[c], t});
    ColumnVector& col = data[c];
    col.Reserve(cells.size());
    // Appends reuse the exact parse routines inference classified with,
    // so a cell can never change value (or parse differently under a
    // different locale) between the two passes. A parse failure here is
    // impossible by construction — inference would have widened the
    // column — but the string fallback keeps the cell text exact rather
    // than silently storing a wrong number.
    for (const std::vector<std::string>& row : cells) {
      const std::string& field = row[c];
      if (field.empty()) {
        col.AppendNull();
      } else if (t == ValueType::kInt64) {
        const std::optional<int64_t> v = ParseInt64Field(field);
        if (v.has_value()) {
          col.AppendInt64(*v);
        } else {
          col.AppendString(field);
        }
      } else if (t == ValueType::kDouble) {
        const std::optional<double> v = ParseDoubleField(field);
        if (v.has_value()) {
          col.AppendDouble(*v);
        } else {
          col.AppendString(field);
        }
      } else {
        col.AppendString(field);
      }
    }
  }
  return Table::FromColumns(table_name, Schema(std::move(columns)),
                            std::move(data));
}

Result<Table*> LoadCsv(Database& db, const std::string& table_name,
                       const std::string& path, const CsvOptions& options) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open " + path);
  }
  std::string text;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  GRAPHGEN_ASSIGN_OR_RETURN(Table table, ParseCsv(table_name, text, options));
  return db.PutTable(std::move(table));
}

}  // namespace graphgen::rel
