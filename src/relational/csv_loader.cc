#include "relational/csv_loader.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace graphgen::rel {

namespace {

// Splits one CSV record; supports double-quoted fields with "" escapes.
Result<std::vector<std::string>> SplitRecord(std::string_view line,
                                             char delimiter, int line_no) {
  std::vector<std::string> fields;
  std::string current;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      if (!current.empty()) {
        return Status::ParseError("unexpected quote mid-field at line " +
                                  std::to_string(line_no));
      }
      quoted = true;
    } else if (c == delimiter) {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c != '\r') {
      current += c;
    }
  }
  if (quoted) {
    return Status::ParseError("unterminated quoted field at line " +
                              std::to_string(line_no));
  }
  fields.push_back(std::move(current));
  return fields;
}

bool LooksLikeInt(const std::string& s) {
  if (s.empty()) return false;
  size_t i = s[0] == '-' || s[0] == '+' ? 1 : 0;
  if (i == s.size()) return false;
  for (; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

bool LooksLikeDouble(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

Value ParseField(const std::string& field, bool infer_types) {
  if (field.empty()) return Value::Null();
  if (infer_types) {
    if (LooksLikeInt(field)) {
      return Value(static_cast<int64_t>(std::strtoll(field.c_str(), nullptr, 10)));
    }
    if (LooksLikeDouble(field)) {
      return Value(std::strtod(field.c_str(), nullptr));
    }
  }
  return Value(field);
}

}  // namespace

Result<Table> ParseCsv(const std::string& table_name, std::string_view text,
                       const CsvOptions& options) {
  std::vector<std::string_view> lines;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    if (end > start) lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  if (lines.empty()) {
    return Status::ParseError("empty CSV input for table " + table_name);
  }

  size_t first_data = 0;
  std::vector<std::string> names;
  GRAPHGEN_ASSIGN_OR_RETURN(std::vector<std::string> first,
                            SplitRecord(lines[0], options.delimiter, 1));
  if (options.header) {
    names = std::move(first);
    first_data = 1;
  } else {
    for (size_t c = 0; c < first.size(); ++c) {
      names.push_back("c" + std::to_string(c));
    }
  }

  // First pass: parse all rows and track the dominant type per column.
  std::vector<Row> rows;
  std::vector<ValueType> types(names.size(), ValueType::kNull);
  for (size_t li = first_data; li < lines.size(); ++li) {
    GRAPHGEN_ASSIGN_OR_RETURN(
        std::vector<std::string> fields,
        SplitRecord(lines[li], options.delimiter, static_cast<int>(li + 1)));
    if (fields.size() != names.size()) {
      return Status::ParseError(
          "line " + std::to_string(li + 1) + " has " +
          std::to_string(fields.size()) + " fields, expected " +
          std::to_string(names.size()));
    }
    Row row;
    row.reserve(fields.size());
    for (size_t c = 0; c < fields.size(); ++c) {
      Value v = ParseField(fields[c], options.infer_types);
      if (!v.is_null()) {
        // Column type widens: int -> double -> string.
        ValueType t = v.type();
        if (types[c] == ValueType::kNull) {
          types[c] = t;
        } else if (types[c] != t) {
          if ((types[c] == ValueType::kInt64 && t == ValueType::kDouble) ||
              (types[c] == ValueType::kDouble && t == ValueType::kInt64)) {
            types[c] = ValueType::kDouble;
          } else {
            types[c] = ValueType::kString;
          }
        }
      }
      row.push_back(std::move(v));
    }
    rows.push_back(std::move(row));
  }

  std::vector<ColumnDef> columns;
  for (size_t c = 0; c < names.size(); ++c) {
    columns.push_back(
        {names[c],
         types[c] == ValueType::kNull ? ValueType::kString : types[c]});
  }
  Table table(table_name, Schema(std::move(columns)));
  table.Reserve(rows.size());
  for (Row& row : rows) table.AppendUnchecked(std::move(row));
  return table;
}

Result<Table*> LoadCsv(Database& db, const std::string& table_name,
                       const std::string& path, const CsvOptions& options) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open " + path);
  }
  std::string text;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  GRAPHGEN_ASSIGN_OR_RETURN(Table table, ParseCsv(table_name, text, options));
  return db.PutTable(std::move(table));
}

}  // namespace graphgen::rel
