#include "relational/csv_loader.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <vector>

namespace graphgen::rel {

namespace {

// One physical CSV record (may span multiple text lines when a quoted
// field embeds newlines) and the 1-based line it starts on.
struct RawRecord {
  std::string_view text;
  int line = 1;
};

// True for a record that contains no data at all (empty, or a lone '\r'
// from a blank CRLF line).
bool IsBlankRecord(std::string_view rec) {
  for (char c : rec) {
    if (c != '\r') return false;
  }
  return true;
}

// Splits the input into records at newlines *outside* double quotes
// (RFC 4180: quoted fields may embed line breaks). An escaped quote ""
// toggles the state twice, so it cannot misplace a record boundary; a
// genuinely unterminated quote leaves the tail as one record, which
// SplitRecord then rejects with a line-accurate error.
std::vector<RawRecord> SplitRecords(std::string_view text) {
  std::vector<RawRecord> records;
  size_t start = 0;
  int line = 1;
  int start_line = 1;
  bool quoted = false;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '"') {
      quoted = !quoted;
    } else if (c == '\n') {
      ++line;
      if (!quoted) {
        records.push_back({text.substr(start, i - start), start_line});
        start = i + 1;
        start_line = line;
      }
    }
  }
  if (start < text.size()) {
    records.push_back({text.substr(start), start_line});
  }
  return records;
}

// Splits one CSV record; supports double-quoted fields with "" escapes
// and embedded newlines (preserved verbatim inside quotes).
Result<std::vector<std::string>> SplitRecord(std::string_view line,
                                             char delimiter, int line_no) {
  std::vector<std::string> fields;
  std::string current;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      if (!current.empty()) {
        return Status::ParseError("unexpected quote mid-field at line " +
                                  std::to_string(line_no));
      }
      quoted = true;
    } else if (c == delimiter) {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c != '\r') {
      current += c;
    }
  }
  if (quoted) {
    return Status::ParseError("unterminated quoted field at line " +
                              std::to_string(line_no));
  }
  fields.push_back(std::move(current));
  return fields;
}

bool LooksLikeInt(const std::string& s) {
  if (s.empty()) return false;
  size_t i = s[0] == '-' || s[0] == '+' ? 1 : 0;
  if (i == s.size()) return false;
  for (; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

// Accepts only plain finite decimal literals: [+-]digits[.digits][e[+-]d].
// strtod alone would also accept "nan", "inf", and hex floats — NaN join
// keys silently drop rows in hash joins (NaN != NaN), so those widen to
// string instead.
bool IsDecimalLiteral(const std::string& s) {
  size_t i = 0;
  if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
  size_t mantissa_digits = 0;
  while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
    ++i;
    ++mantissa_digits;
  }
  if (i < s.size() && s[i] == '.') {
    ++i;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
      ++i;
      ++mantissa_digits;
    }
  }
  if (mantissa_digits == 0) return false;
  if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
    ++i;
    if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
    size_t exp_digits = 0;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
      ++i;
      ++exp_digits;
    }
    if (exp_digits == 0) return false;
  }
  return i == s.size();
}

// Cell classification for type inference. The *column* type is the widened
// meet of its cells (int -> double -> string); cells are parsed once the
// column type is final, so a column never mixes physical cell types.
ValueType ClassifyField(const std::string& field, bool infer_types) {
  if (field.empty()) return ValueType::kNull;
  if (!infer_types) return ValueType::kString;
  if (LooksLikeInt(field)) {
    errno = 0;
    (void)std::strtoll(field.c_str(), nullptr, 10);
    // strtoll clamps out-of-range values to LLONG_MIN/MAX; such an id
    // stays a string, preserved exactly — a double would round distinct
    // large ids onto the same value and silently merge entities /
    // mismatch join keys.
    if (errno != ERANGE) return ValueType::kInt64;
    return ValueType::kString;
  }
  if (IsDecimalLiteral(field)) {
    errno = 0;
    const double d = std::strtod(field.c_str(), nullptr);
    // Overflow to +-inf widens to string; underflow toward 0 stays finite
    // and is accepted.
    if (std::isfinite(d)) return ValueType::kDouble;
  }
  return ValueType::kString;
}

ValueType Widen(ValueType column, ValueType cell) {
  if (cell == ValueType::kNull) return column;
  if (column == ValueType::kNull) return cell;
  if (column == cell) return column;
  const bool both_numeric =
      (column == ValueType::kInt64 || column == ValueType::kDouble) &&
      (cell == ValueType::kInt64 || cell == ValueType::kDouble);
  return both_numeric ? ValueType::kDouble : ValueType::kString;
}

}  // namespace

Result<Table> ParseCsv(const std::string& table_name, std::string_view text,
                       const CsvOptions& options) {
  std::vector<RawRecord> records = SplitRecords(text);
  // Leading and trailing blank lines are tolerated (trailing newline,
  // editor padding); a blank line *inside* the data is an error rather
  // than a silently dropped row.
  size_t lo = 0;
  size_t hi = records.size();
  while (lo < hi && IsBlankRecord(records[lo].text)) ++lo;
  while (hi > lo && IsBlankRecord(records[hi - 1].text)) --hi;
  records.erase(records.begin() + hi, records.end());
  records.erase(records.begin(), records.begin() + lo);
  if (records.empty()) {
    return Status::ParseError("empty CSV input for table " + table_name);
  }
  for (const RawRecord& rec : records) {
    if (IsBlankRecord(rec.text)) {
      return Status::ParseError("blank line " + std::to_string(rec.line) +
                                " inside data of table " + table_name);
    }
  }

  size_t first_data = 0;
  std::vector<std::string> names;
  GRAPHGEN_ASSIGN_OR_RETURN(
      std::vector<std::string> first,
      SplitRecord(records[0].text, options.delimiter, records[0].line));
  if (options.header) {
    names = std::move(first);
    first_data = 1;
  } else {
    for (size_t c = 0; c < first.size(); ++c) {
      names.push_back("c" + std::to_string(c));
    }
  }

  // Pass 1: split every record and widen each column's type over its
  // cells. Type inference finalizes a *column*, not a cell: "4" in a
  // column that elsewhere holds "3.5" becomes the double 4.0, and an
  // id column with one out-of-range value keeps every id as its exact
  // original text.
  std::vector<std::vector<std::string>> cells;
  cells.reserve(records.size() - first_data);
  std::vector<ValueType> types(names.size(), ValueType::kNull);
  for (size_t ri = first_data; ri < records.size(); ++ri) {
    GRAPHGEN_ASSIGN_OR_RETURN(
        std::vector<std::string> fields,
        SplitRecord(records[ri].text, options.delimiter, records[ri].line));
    if (fields.size() != names.size()) {
      return Status::ParseError(
          "line " + std::to_string(records[ri].line) + " has " +
          std::to_string(fields.size()) + " fields, expected " +
          std::to_string(names.size()));
    }
    for (size_t c = 0; c < fields.size(); ++c) {
      types[c] = Widen(types[c], ClassifyField(fields[c], options.infer_types));
    }
    cells.push_back(std::move(fields));
  }

  // Pass 2: append column-wise into typed vectors under the final type.
  std::vector<ColumnDef> columns;
  columns.reserve(names.size());
  std::vector<ColumnVector> data(names.size());
  for (size_t c = 0; c < names.size(); ++c) {
    const ValueType t =
        types[c] == ValueType::kNull ? ValueType::kString : types[c];
    columns.push_back({names[c], t});
    ColumnVector& col = data[c];
    col.Reserve(cells.size());
    for (const std::vector<std::string>& row : cells) {
      const std::string& field = row[c];
      if (field.empty()) {
        col.AppendNull();
      } else if (t == ValueType::kInt64) {
        col.AppendInt64(static_cast<int64_t>(
            std::strtoll(field.c_str(), nullptr, 10)));
      } else if (t == ValueType::kDouble) {
        col.AppendDouble(std::strtod(field.c_str(), nullptr));
      } else {
        col.AppendString(field);
      }
    }
  }
  return Table::FromColumns(table_name, Schema(std::move(columns)),
                            std::move(data));
}

Result<Table*> LoadCsv(Database& db, const std::string& table_name,
                       const std::string& path, const CsvOptions& options) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open " + path);
  }
  std::string text;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  GRAPHGEN_ASSIGN_OR_RETURN(Table table, ParseCsv(table_name, text, options));
  return db.PutTable(std::move(table));
}

}  // namespace graphgen::rel
