#ifndef GRAPHGEN_RELATIONAL_DATABASE_H_
#define GRAPHGEN_RELATIONAL_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/catalog.h"
#include "relational/table.h"

namespace graphgen::rel {

/// A snapshot of one table's version state, as read by extraction
/// consumers deciding between "fresh", "append-only delta", and "rebased".
struct TableVersion {
  uint64_t version = 0;         // last stamped change (0 = never stamped)
  uint64_t rebase_version = 0;  // last non-append change
  size_t rows = 0;              // row count at the snapshot
};

/// The embedded relational database: a named collection of tables plus the
/// system catalog. Stands in for PostgreSQL in this reproduction; the
/// GraphGen planner needs only scans, hash joins, DISTINCT projection, and
/// catalog statistics from it (paper footnote 2).
///
/// The database is the version-tick source for its tables: every mutation
/// through the Database API stamps the affected table with the next value
/// of a database-global monotonic counter. `PutTable`, `CreateTable`, and
/// `GetMutableTable` stamp a *rebase* (contents may change arbitrarily);
/// `AppendRows` stamps an *append* batch, which delta consumers can patch
/// from. The map of each referenced table's `TableVersion` is the version
/// vector a cached extraction records as its basis.
class Database {
 public:
  Database() = default;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates an empty table; error if one with the same name exists.
  /// Stamped as a rebase (the table is new; no prior basis can patch it).
  Result<Table*> CreateTable(const std::string& name, Schema schema);

  /// Adds a fully built table (generators use this), replacing any existing
  /// table with the same name, and analyzes it. Stamped as a rebase.
  Table* PutTable(Table table);

  bool HasTable(const std::string& name) const { return tables_.contains(name); }
  Result<const Table*> GetTable(const std::string& name) const;

  /// Hands out a mutable pointer, stamping a rebase conservatively: the
  /// caller may change anything, so cached deltas against the table are
  /// void. Callers that only append should use AppendRows instead, which
  /// keeps the table patchable. The stamp happens at grab time; holding
  /// the pointer across later version snapshots is the caller's hazard.
  Result<Table*> GetMutableTable(const std::string& name);

  /// Appends rows to an existing table as one finalized batch: stamps an
  /// append version, records the batch in the table's delta log, and
  /// re-analyzes the table so planner statistics (join segmentation,
  /// large-output tests) see the new cardinalities.
  Status AppendRows(const std::string& name, const std::vector<Row>& rows);

  /// Version snapshot of one table (NotFound if absent).
  Result<TableVersion> VersionOf(const std::string& name) const;

  /// The database-global tick most recently handed out.
  uint64_t CurrentTick() const { return next_version_; }

  std::vector<std::string> TableNames() const;

  /// Recomputes statistics for one table or all tables.
  Status Analyze(const std::string& name);
  void AnalyzeAll();

  const Catalog& catalog() const { return catalog_; }

  /// Sum of table footprints; the paper's guarantee is that a condensed
  /// graph never exceeds this.
  size_t MemoryBytes() const;

 private:
  uint64_t Tick() { return ++next_version_; }

  std::map<std::string, Table> tables_;
  Catalog catalog_;
  uint64_t next_version_ = 0;
};

}  // namespace graphgen::rel

#endif  // GRAPHGEN_RELATIONAL_DATABASE_H_
