#ifndef GRAPHGEN_RELATIONAL_DATABASE_H_
#define GRAPHGEN_RELATIONAL_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/catalog.h"
#include "relational/table.h"

namespace graphgen::rel {

/// The embedded relational database: a named collection of tables plus the
/// system catalog. Stands in for PostgreSQL in this reproduction; the
/// GraphGen planner needs only scans, hash joins, DISTINCT projection, and
/// catalog statistics from it (paper footnote 2).
class Database {
 public:
  Database() = default;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates an empty table; error if one with the same name exists.
  Result<Table*> CreateTable(const std::string& name, Schema schema);

  /// Adds a fully built table (generators use this), replacing any existing
  /// table with the same name, and analyzes it.
  Table* PutTable(Table table);

  bool HasTable(const std::string& name) const { return tables_.contains(name); }
  Result<const Table*> GetTable(const std::string& name) const;
  Result<Table*> GetMutableTable(const std::string& name);

  std::vector<std::string> TableNames() const;

  /// Recomputes statistics for one table or all tables.
  Status Analyze(const std::string& name);
  void AnalyzeAll();

  const Catalog& catalog() const { return catalog_; }

  /// Sum of table footprints; the paper's guarantee is that a condensed
  /// graph never exceeds this.
  size_t MemoryBytes() const;

 private:
  std::map<std::string, Table> tables_;
  Catalog catalog_;
};

}  // namespace graphgen::rel

#endif  // GRAPHGEN_RELATIONAL_DATABASE_H_
