#ifndef GRAPHGEN_RELATIONAL_COLUMN_H_
#define GRAPHGEN_RELATIONAL_COLUMN_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "relational/value.h"

namespace graphgen::rel {

/// Interning dictionary for one string column: codes are assigned in first
/// appearance order, the backing strings never move (deque), and each
/// code's std::hash is cached so hashing a cell never touches the bytes
/// twice. Equal strings always share one code, so within a column
/// "codes equal" <=> "strings equal".
class StringDictionary {
 public:
  StringDictionary() = default;
  StringDictionary(StringDictionary&&) = default;
  StringDictionary& operator=(StringDictionary&&) = default;
  StringDictionary(const StringDictionary& other) { *this = other; }
  StringDictionary& operator=(const StringDictionary& other);

  /// Returns the code of `s`, interning it if unseen.
  uint32_t Intern(std::string_view s);

  /// Code of `s` if already interned.
  std::optional<uint32_t> Find(std::string_view s) const;

  const std::string& At(uint32_t code) const { return strings_[code]; }
  /// Cached std::hash<std::string> of the code's string (matches
  /// Value::Hash for the same content).
  uint64_t HashOf(uint32_t code) const { return hashes_[code]; }
  size_t size() const { return strings_.size(); }

  /// Heap footprint: string storage + per-code hash cache + intern index.
  size_t MemoryBytes() const;

 private:
  std::deque<std::string> strings_;  // code -> string; element-stable
  std::vector<uint64_t> hashes_;     // code -> std::hash of the string
  // Views point into strings_ elements; a deque never relocates them.
  std::unordered_map<std::string_view, uint32_t> index_;
};

/// One typed column of a Table. The physical encoding is inferred from the
/// appended data, independent of the declared schema type (values stay
/// dynamically typed at the API surface):
///   kEmpty      no non-null value appended yet (all rows NULL)
///   kInt64      contiguous int64 array
///   kDouble     contiguous double array
///   kDictString dictionary codes over an interning StringDictionary
///   kMixed      heterogeneous fallback: one Value per row
/// A column silently converts to kMixed the first time a value of a
/// different type is appended, so the lenient row-oriented API keeps
/// working; hot paths test the encoding and read the raw arrays.
/// NULLs are tracked in a lazily allocated byte mask valid for every
/// encoding; typed arrays hold a zero placeholder at null positions.
class ColumnVector {
 public:
  enum class Encoding : uint8_t { kEmpty, kInt64, kDouble, kDictString, kMixed };

  ColumnVector() = default;

  /// Bulk adoption of fully typed data (generators); no per-cell dispatch.
  static ColumnVector OfInt64(std::vector<int64_t> values);
  static ColumnVector OfDouble(std::vector<double> values);
  static ColumnVector OfStrings(const std::vector<std::string>& values);

  void Append(const Value& v);
  void AppendNull();
  void AppendInt64(int64_t v);
  void AppendDouble(double v);
  void AppendString(std::string_view s);
  void Reserve(size_t n);

  size_t size() const { return size_; }
  Encoding encoding() const { return encoding_; }
  std::string_view EncodingName() const;
  size_t null_count() const { return null_count_; }
  bool has_nulls() const { return null_count_ > 0; }
  bool IsNull(size_t i) const { return !nulls_.empty() && nulls_[i] != 0; }
  /// Raw null mask, or nullptr when the column has no nulls.
  const uint8_t* NullMask() const {
    return nulls_.empty() ? nullptr : nulls_.data();
  }

  /// Reconstructs the dynamically typed cell (exact round-trip of what was
  /// appended; strings are copied out of the dictionary).
  Value ValueAt(size_t i) const;

  // Typed readers; valid only for the matching encoding.
  int64_t Int64At(size_t i) const { return ints_[i]; }
  double DoubleAt(size_t i) const { return doubles_[i]; }
  uint32_t CodeAt(size_t i) const { return codes_[i]; }
  const std::string& StringAt(size_t i) const { return dict_.At(codes_[i]); }
  const Value& MixedAt(size_t i) const { return mixed_[i]; }
  const int64_t* Int64Data() const {
    return encoding_ == Encoding::kInt64 ? ints_.data() : nullptr;
  }
  const double* DoubleData() const {
    return encoding_ == Encoding::kDouble ? doubles_.data() : nullptr;
  }
  const uint32_t* CodeData() const {
    return encoding_ == Encoding::kDictString ? codes_.data() : nullptr;
  }
  const StringDictionary& dict() const { return dict_; }

  /// Hash of cell i, identical to ValueAt(i).Hash() (dict columns read the
  /// cached per-code hash instead of rehashing the bytes).
  uint64_t HashAt(size_t i) const;

  /// Value-equality of cell i with cell j of `other` (Value semantics:
  /// NULL == NULL, int64 never equals double). Dict cells of the *same*
  /// column compare by code.
  bool EqualAt(size_t i, const ColumnVector& other, size_t j) const;

  /// Exact distinct count including NULL as one value (ANALYZE).
  size_t DistinctCount() const;

  /// Heap footprint of this column (arrays, null mask, dictionary,
  /// string storage of a mixed column).
  size_t MemoryBytes() const;

 private:
  void EnsureNulls();
  void ConvertToMixed();

  Encoding encoding_ = Encoding::kEmpty;
  size_t size_ = 0;
  size_t null_count_ = 0;
  // Reserve() called before the encoding is known (bulk loaders reserve
  // an empty column); applied when the first value fixes the encoding.
  size_t pending_reserve_ = 0;
  std::vector<uint8_t> nulls_;  // empty <=> no nulls so far
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<uint32_t> codes_;
  std::vector<Value> mixed_;
  StringDictionary dict_;
};

}  // namespace graphgen::rel

#endif  // GRAPHGEN_RELATIONAL_COLUMN_H_
