#ifndef GRAPHGEN_RELATIONAL_CSV_LOADER_H_
#define GRAPHGEN_RELATIONAL_CSV_LOADER_H_

#include <string>

#include "common/status.h"
#include "relational/database.h"

namespace graphgen::rel {

struct CsvOptions {
  char delimiter = ',';
  /// Treat the first row as column names. When false, columns are named
  /// c0, c1, ...
  bool header = true;
  /// Values parsed per column: integers stay kInt64, decimal numbers
  /// kDouble, everything else kString. Empty fields become NULL.
  bool infer_types = true;
};

/// Loads a CSV file into a new table of `db` (replacing any table of the
/// same name) and analyzes it. This is the practical ingestion path for
/// users bringing their own relational data.
Result<Table*> LoadCsv(Database& db, const std::string& table_name,
                       const std::string& path, const CsvOptions& options = {});

/// Parses CSV text already in memory (used by tests).
Result<Table> ParseCsv(const std::string& table_name, std::string_view text,
                       const CsvOptions& options = {});

}  // namespace graphgen::rel

#endif  // GRAPHGEN_RELATIONAL_CSV_LOADER_H_
