#include "bsp/bsp_programs.h"

namespace graphgen::bsp {

BspEngine MakeExpandedEngine(const ExpandedGraph& graph, size_t threads) {
  return BspEngine(BspGraph(&graph), threads);
}

BspEngine MakeDedup1Engine(const Dedup1Graph& graph, size_t threads) {
  return BspEngine(BspGraph(&graph.storage()), threads);
}

BspEngine MakeBitmapEngine(const BitmapGraph& graph, size_t threads) {
  return BspEngine(BspGraph(&graph), threads);
}

}  // namespace graphgen::bsp
