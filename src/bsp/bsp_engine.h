#ifndef GRAPHGEN_BSP_BSP_ENGINE_H_
#define GRAPHGEN_BSP_BSP_ENGINE_H_

#include <vector>

#include "bsp/bsp_graph.h"
#include "common/status.h"
#include "graph/node_ref.h"

namespace graphgen::bsp {

/// Accounting for one BSP run (the Table 4 columns).
struct BspRunStats {
  size_t supersteps = 0;
  uint64_t messages = 0;
  double seconds = 0.0;
  size_t memory_bytes = 0;
};

/// A multi-threaded Pregel-style engine specialized for GraphGen's
/// condensed representations (§6.4). Virtual nodes are BSP vertices that
/// aggregate incoming messages and forward per-out-edge combined values,
/// which caps traffic at 2 * #condensed-edges per logical iteration —
/// the optimization the paper's Giraph port implements. Correct execution
/// over DEDUP-1 and BITMAP requires two supersteps per logical iteration
/// (real -> virtual, virtual -> real); EXP needs one.
///
/// Only single-layer condensed graphs are supported (all Giraph-experiment
/// datasets in the paper are single-layer).
class BspEngine {
 public:
  explicit BspEngine(BspGraph graph, size_t threads = 0)
      : graph_(std::move(graph)), threads_(threads) {}

  /// Degree of every real vertex.
  Result<BspRunStats> RunDegree(std::vector<uint64_t>* degrees);

  /// PageRank with precomputed degrees stored as a vertex property
  /// (required on condensed representations, §6.4).
  Result<BspRunStats> RunPageRank(size_t iterations, double damping,
                                  std::vector<double>* ranks);

  /// Min-label connected components. Duplicate-insensitive: runs on the
  /// condensed structure ignoring bitmaps (the C-DUP fast path of §6.4).
  Result<BspRunStats> RunConnectedComponents(std::vector<NodeId>* labels);

 private:
  Status CheckSingleLayer() const;

  BspGraph graph_;
  size_t threads_;
};

}  // namespace graphgen::bsp

#endif  // GRAPHGEN_BSP_BSP_ENGINE_H_
