#include "bsp/bsp_engine.h"

#include <atomic>
#include <unordered_set>

#include "common/parallel.h"
#include "common/timer.h"

namespace graphgen::bsp {

namespace {

// CAS-based atomic min for label propagation.
void AtomicMin(std::atomic<uint32_t>& slot, uint32_t value) {
  uint32_t current = slot.load(std::memory_order_relaxed);
  while (value < current &&
         !slot.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace

Status BspEngine::CheckSingleLayer() const {
  if (graph_.mode() != BspMode::kExpanded &&
      !graph_.storage()->IsSingleLayer()) {
    return Status::Unsupported(
        "the BSP engine supports single-layer condensed graphs only");
  }
  return Status::OK();
}

Result<BspRunStats> BspEngine::RunDegree(std::vector<uint64_t>* degrees) {
  GRAPHGEN_RETURN_NOT_OK(CheckSingleLayer());
  WallTimer timer;
  BspRunStats stats;
  stats.memory_bytes = graph_.MemoryBytes();

  if (graph_.mode() == BspMode::kExpanded) {
    const ExpandedGraph& g = *graph_.expanded();
    degrees->assign(g.NumVertices(), 0);
    ParallelFor(
        g.NumVertices(),
        [&](size_t begin, size_t end) {
          for (size_t u = begin; u < end; ++u) {
            (*degrees)[u] = g.OutDegree(static_cast<NodeId>(u));
          }
        },
        threads_);
    stats.supersteps = 1;
    stats.seconds = timer.Seconds();
    return stats;
  }

  const CondensedStorage& s = *graph_.storage();
  const size_t nr = s.NumRealNodes();
  const size_t nv = s.NumVirtualNodes();
  std::vector<std::atomic<uint64_t>> acc(nr);
  for (auto& a : acc) a.store(0, std::memory_order_relaxed);

  // Superstep 1: real vertices send "1" along their out-edges; direct
  // real->real messages land immediately.
  std::atomic<uint64_t> messages{0};
  ParallelFor(
      nr,
      [&](size_t begin, size_t end) {
        uint64_t local = 0;
        for (size_t u = begin; u < end; ++u) {
          if (s.IsDeleted(static_cast<NodeId>(u))) continue;
          for (NodeRef r : s.OutEdges(NodeRef::Real(static_cast<NodeId>(u)))) {
            ++local;
            if (r.is_real() && r.index() != u) {
              acc[r.index()].fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
        messages.fetch_add(local, std::memory_order_relaxed);
      },
      threads_);

  // Superstep 2: virtual vertices aggregate and forward per-out-edge
  // combined counts.
  ParallelFor(
      nv,
      [&](size_t begin, size_t end) {
        uint64_t local = 0;
        std::unordered_set<NodeId> sources;
        for (size_t v = begin; v < end; ++v) {
          NodeRef vref = NodeRef::Virtual(static_cast<uint32_t>(v));
          const auto& out = s.OutEdges(vref);
          if (out.empty()) continue;
          sources.clear();
          for (NodeRef r : s.InEdges(vref)) {
            if (r.is_real()) sources.insert(r.index());
          }
          if (graph_.mode() == BspMode::kBitmap) {
            const auto& bms = graph_.bitmap()->BitmapsFor(
                static_cast<uint32_t>(v));
            std::vector<uint64_t> per_edge(out.size(), 0);
            for (NodeId u : sources) {
              auto it = bms.find(u);
              if (it != bms.end()) {
                const Bitmap& bm = it->second;
                const size_t n = std::min(bm.size(), out.size());
                for (size_t i = 0; i < n; ++i) {
                  if (bm.Get(i)) ++per_edge[i];
                }
              } else {
                for (size_t i = 0; i < out.size(); ++i) {
                  if (!(out[i].is_real() && out[i].index() == u)) {
                    ++per_edge[i];
                  }
                }
              }
            }
            for (size_t i = 0; i < out.size(); ++i) {
              if (out[i].is_real() && per_edge[i] > 0) {
                acc[out[i].index()].fetch_add(per_edge[i],
                                              std::memory_order_relaxed);
              }
              ++local;
            }
          } else {
            const uint64_t agg = sources.size();
            for (NodeRef r : out) {
              ++local;
              if (!r.is_real()) continue;
              uint64_t contribution =
                  agg - (sources.contains(r.index()) ? 1 : 0);
              if (contribution > 0) {
                acc[r.index()].fetch_add(contribution,
                                         std::memory_order_relaxed);
              }
            }
          }
        }
        messages.fetch_add(local, std::memory_order_relaxed);
      },
      threads_);

  degrees->assign(nr, 0);
  for (size_t u = 0; u < nr; ++u) {
    (*degrees)[u] = acc[u].load(std::memory_order_relaxed);
  }
  stats.supersteps = 2;
  stats.messages = messages.load();
  stats.seconds = timer.Seconds();
  return stats;
}

Result<BspRunStats> BspEngine::RunPageRank(size_t iterations, double damping,
                                           std::vector<double>* ranks) {
  GRAPHGEN_RETURN_NOT_OK(CheckSingleLayer());
  BspRunStats stats;
  stats.memory_bytes = graph_.MemoryBytes();

  // Degrees are precomputed and stored as a vertex property (§6.4).
  std::vector<uint64_t> degrees;
  GRAPHGEN_ASSIGN_OR_RETURN(BspRunStats degree_stats, RunDegree(&degrees));
  (void)degree_stats;

  WallTimer timer;
  const size_t nr = graph_.mode() == BspMode::kExpanded
                        ? graph_.expanded()->NumVertices()
                        : graph_.storage()->NumRealNodes();
  size_t live = 0;
  for (size_t u = 0; u < nr; ++u) {
    bool exists = graph_.mode() == BspMode::kExpanded
                      ? graph_.expanded()->VertexExists(static_cast<NodeId>(u))
                      : !graph_.storage()->IsDeleted(static_cast<NodeId>(u));
    if (exists) ++live;
  }
  if (live == 0) {
    ranks->clear();
    return stats;
  }
  const double base = (1.0 - damping) / static_cast<double>(live);

  auto is_live = [&](size_t u) {
    return graph_.mode() == BspMode::kExpanded
               ? graph_.expanded()->VertexExists(static_cast<NodeId>(u))
               : !graph_.storage()->IsDeleted(static_cast<NodeId>(u));
  };
  std::vector<double> rank(nr, 0.0);
  for (size_t u = 0; u < nr; ++u) {
    if (is_live(u)) rank[u] = 1.0 / static_cast<double>(live);
  }
  std::vector<double> share(nr, 0.0);
  std::vector<std::atomic<double>> acc(nr);
  std::atomic<uint64_t> messages{0};

  for (size_t iter = 0; iter < iterations; ++iter) {
    for (auto& a : acc) a.store(0.0, std::memory_order_relaxed);
    // Dangling (degree-0) mass is redistributed over all live vertices so
    // rank keeps summing to 1; matches algos::PageRank exactly.
    double dangling = 0.0;
    for (size_t u = 0; u < nr; ++u) {
      if (degrees[u] == 0 && is_live(u)) dangling += rank[u];
    }
    const double dangling_term = dangling / static_cast<double>(live);
    ParallelFor(
        nr,
        [&](size_t begin, size_t end) {
          for (size_t u = begin; u < end; ++u) {
            share[u] =
                degrees[u] > 0 ? rank[u] / static_cast<double>(degrees[u]) : 0;
          }
        },
        threads_);

    if (graph_.mode() == BspMode::kExpanded) {
      const ExpandedGraph& g = *graph_.expanded();
      ParallelFor(
          nr,
          [&](size_t begin, size_t end) {
            uint64_t local = 0;
            for (size_t u = begin; u < end; ++u) {
              if (!g.VertexExists(static_cast<NodeId>(u))) continue;
              const double su = share[u];
              for (NodeId x : g.RawNeighbors(static_cast<NodeId>(u))) {
                acc[x].fetch_add(su, std::memory_order_relaxed);
                ++local;
              }
            }
            messages.fetch_add(local, std::memory_order_relaxed);
          },
          threads_);
      stats.supersteps += 1;
    } else {
      const CondensedStorage& s = *graph_.storage();
      // Superstep A: real -> virtual (direct edges land immediately).
      ParallelFor(
          nr,
          [&](size_t begin, size_t end) {
            uint64_t local = 0;
            for (size_t u = begin; u < end; ++u) {
              if (s.IsDeleted(static_cast<NodeId>(u))) continue;
              const double su = share[u];
              for (NodeRef r :
                   s.OutEdges(NodeRef::Real(static_cast<NodeId>(u)))) {
                ++local;
                if (r.is_real() && r.index() != u) {
                  acc[r.index()].fetch_add(su, std::memory_order_relaxed);
                }
              }
            }
            messages.fetch_add(local, std::memory_order_relaxed);
          },
          threads_);
      // Superstep B: virtual aggregation and forwarding.
      const size_t nv = s.NumVirtualNodes();
      ParallelFor(
          nv,
          [&](size_t begin, size_t end) {
            uint64_t local = 0;
            std::vector<NodeId> sources;
            for (size_t v = begin; v < end; ++v) {
              NodeRef vref = NodeRef::Virtual(static_cast<uint32_t>(v));
              const auto& out = s.OutEdges(vref);
              if (out.empty()) continue;
              sources.clear();
              for (NodeRef r : s.InEdges(vref)) {
                if (r.is_real()) sources.push_back(r.index());
              }
              if (graph_.mode() == BspMode::kBitmap) {
                const auto& bms = graph_.bitmap()->BitmapsFor(
                    static_cast<uint32_t>(v));
                std::vector<double> per_edge(out.size(), 0.0);
                for (NodeId u : sources) {
                  auto it = bms.find(u);
                  const double su = share[u];
                  if (it != bms.end()) {
                    const Bitmap& bm = it->second;
                    const size_t n = std::min(bm.size(), out.size());
                    for (size_t i = 0; i < n; ++i) {
                      if (bm.Get(i)) per_edge[i] += su;
                    }
                  } else {
                    for (size_t i = 0; i < out.size(); ++i) {
                      if (!(out[i].is_real() && out[i].index() == u)) {
                        per_edge[i] += su;
                      }
                    }
                  }
                }
                for (size_t i = 0; i < out.size(); ++i) {
                  ++local;
                  if (out[i].is_real() && per_edge[i] != 0.0) {
                    acc[out[i].index()].fetch_add(per_edge[i],
                                                  std::memory_order_relaxed);
                  }
                }
              } else {
                double agg = 0.0;
                std::unordered_set<NodeId> member(sources.begin(),
                                                  sources.end());
                for (NodeId u : sources) agg += share[u];
                for (NodeRef r : out) {
                  ++local;
                  if (!r.is_real()) continue;
                  double contribution =
                      agg - (member.contains(r.index()) ? share[r.index()] : 0);
                  if (contribution != 0.0) {
                    acc[r.index()].fetch_add(contribution,
                                             std::memory_order_relaxed);
                  }
                }
              }
            }
            messages.fetch_add(local, std::memory_order_relaxed);
          },
          threads_);
      stats.supersteps += 2;
    }

    ParallelFor(
        nr,
        [&](size_t begin, size_t end) {
          for (size_t u = begin; u < end; ++u) {
            if (!is_live(u)) continue;
            rank[u] = base + damping * (acc[u].load(std::memory_order_relaxed) +
                                        dangling_term);
          }
        },
        threads_);
  }

  stats.messages = messages.load();
  stats.seconds = timer.Seconds();
  *ranks = std::move(rank);
  return stats;
}

Result<BspRunStats> BspEngine::RunConnectedComponents(
    std::vector<NodeId>* labels) {
  GRAPHGEN_RETURN_NOT_OK(CheckSingleLayer());
  WallTimer timer;
  BspRunStats stats;
  stats.memory_bytes = graph_.MemoryBytes();

  const size_t nr = graph_.mode() == BspMode::kExpanded
                        ? graph_.expanded()->NumVertices()
                        : graph_.storage()->NumRealNodes();
  std::vector<std::atomic<uint32_t>> incoming(nr);
  std::vector<uint32_t> current(nr);
  for (size_t u = 0; u < nr; ++u) current[u] = static_cast<uint32_t>(u);
  std::atomic<uint64_t> messages{0};

  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t u = 0; u < nr; ++u) {
      incoming[u].store(current[u], std::memory_order_relaxed);
    }
    if (graph_.mode() == BspMode::kExpanded) {
      const ExpandedGraph& g = *graph_.expanded();
      ParallelFor(
          nr,
          [&](size_t begin, size_t end) {
            uint64_t local = 0;
            for (size_t u = begin; u < end; ++u) {
              if (!g.VertexExists(static_cast<NodeId>(u))) continue;
              for (NodeId x : g.RawNeighbors(static_cast<NodeId>(u))) {
                AtomicMin(incoming[x], current[u]);
                ++local;
              }
            }
            messages.fetch_add(local, std::memory_order_relaxed);
          },
          threads_);
      stats.supersteps += 1;
    } else {
      // Duplicate-insensitive: bitmaps are ignored (C-DUP fast path).
      const CondensedStorage& s = *graph_.storage();
      ParallelFor(
          nr,
          [&](size_t begin, size_t end) {
            uint64_t local = 0;
            for (size_t u = begin; u < end; ++u) {
              if (s.IsDeleted(static_cast<NodeId>(u))) continue;
              for (NodeRef r :
                   s.OutEdges(NodeRef::Real(static_cast<NodeId>(u)))) {
                ++local;
                if (r.is_real()) AtomicMin(incoming[r.index()], current[u]);
              }
            }
            messages.fetch_add(local, std::memory_order_relaxed);
          },
          threads_);
      const size_t nv = s.NumVirtualNodes();
      ParallelFor(
          nv,
          [&](size_t begin, size_t end) {
            uint64_t local = 0;
            for (size_t v = begin; v < end; ++v) {
              NodeRef vref = NodeRef::Virtual(static_cast<uint32_t>(v));
              uint32_t agg = 0xFFFFFFFFu;
              for (NodeRef r : s.InEdges(vref)) {
                if (r.is_real()) agg = std::min(agg, current[r.index()]);
              }
              if (agg == 0xFFFFFFFFu) continue;
              for (NodeRef r : s.OutEdges(vref)) {
                ++local;
                if (r.is_real()) AtomicMin(incoming[r.index()], agg);
              }
            }
            messages.fetch_add(local, std::memory_order_relaxed);
          },
          threads_);
      stats.supersteps += 2;
    }
    for (size_t u = 0; u < nr; ++u) {
      uint32_t v = incoming[u].load(std::memory_order_relaxed);
      if (v < current[u]) {
        current[u] = v;
        changed = true;
      }
    }
  }

  labels->assign(current.begin(), current.end());
  stats.messages = messages.load();
  stats.seconds = timer.Seconds();
  return stats;
}

}  // namespace graphgen::bsp
