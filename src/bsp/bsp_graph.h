#ifndef GRAPHGEN_BSP_BSP_GRAPH_H_
#define GRAPHGEN_BSP_BSP_GRAPH_H_

#include <cstdint>

#include "graph/storage.h"
#include "repr/bitmap_graph.h"
#include "repr/expanded_graph.h"

namespace graphgen::bsp {

/// Which in-memory representation a BSP run executes against (the three
/// compared in the paper's Giraph experiments, §6.4).
enum class BspMode { kExpanded, kDedup1, kBitmap };

std::string_view BspModeToString(BspMode mode);

/// Read-only topology adapter unifying the three representations for the
/// BSP engine. Virtual nodes are first-class BSP vertices that aggregate
/// messages (§6.4).
class BspGraph {
 public:
  /// EXP: direct adjacency only.
  explicit BspGraph(const ExpandedGraph* expanded)
      : mode_(BspMode::kExpanded), expanded_(expanded) {}
  /// DEDUP-1 (or C-DUP for duplicate-insensitive programs).
  explicit BspGraph(const CondensedStorage* storage)
      : mode_(BspMode::kDedup1), storage_(storage) {}
  /// BITMAP: condensed structure plus per-source bitmaps.
  explicit BspGraph(const BitmapGraph* bitmap)
      : mode_(BspMode::kBitmap),
        storage_(&bitmap->storage()),
        bitmap_(bitmap) {}

  BspMode mode() const { return mode_; }
  const ExpandedGraph* expanded() const { return expanded_; }
  const CondensedStorage* storage() const { return storage_; }
  const BitmapGraph* bitmap() const { return bitmap_; }

  size_t NumReal() const {
    return mode_ == BspMode::kExpanded ? expanded_->NumVertices()
                                       : storage_->NumRealNodes();
  }
  size_t NumVirtual() const {
    return mode_ == BspMode::kExpanded ? 0 : storage_->NumVirtualNodes();
  }

  /// Heap estimate reported in the Table 4 harness.
  size_t MemoryBytes() const {
    switch (mode_) {
      case BspMode::kExpanded:
        return expanded_->MemoryBytes();
      case BspMode::kDedup1:
        return storage_->MemoryBytes();
      case BspMode::kBitmap:
        return bitmap_->MemoryBytes();
    }
    return 0;
  }

 private:
  BspMode mode_;
  const ExpandedGraph* expanded_ = nullptr;
  const CondensedStorage* storage_ = nullptr;
  const BitmapGraph* bitmap_ = nullptr;
};

}  // namespace graphgen::bsp

#endif  // GRAPHGEN_BSP_BSP_GRAPH_H_
