#ifndef GRAPHGEN_BSP_BSP_PROGRAMS_H_
#define GRAPHGEN_BSP_BSP_PROGRAMS_H_

#include "bsp/bsp_engine.h"
#include "repr/dedup1_graph.h"

namespace graphgen::bsp {

/// Engine factories for the three representations compared in §6.4.
BspEngine MakeExpandedEngine(const ExpandedGraph& graph, size_t threads = 0);
BspEngine MakeDedup1Engine(const Dedup1Graph& graph, size_t threads = 0);
BspEngine MakeBitmapEngine(const BitmapGraph& graph, size_t threads = 0);

}  // namespace graphgen::bsp

#endif  // GRAPHGEN_BSP_BSP_PROGRAMS_H_
