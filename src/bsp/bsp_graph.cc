#include "bsp/bsp_graph.h"

namespace graphgen::bsp {

std::string_view BspModeToString(BspMode mode) {
  switch (mode) {
    case BspMode::kExpanded: return "EXP";
    case BspMode::kDedup1: return "DEDUP1";
    case BspMode::kBitmap: return "BMP";
  }
  return "?";
}

}  // namespace graphgen::bsp
