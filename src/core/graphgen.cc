#include "core/graphgen.h"

#include "common/cancel.h"
#include "common/faultpoints.h"
#include "common/timer.h"
#include "core/representation_picker.h"
#include "dedup/bitmap_algorithms.h"
#include "dedup/dedup1_algorithms.h"
#include "dedup/dedup2_builder.h"
#include "repr/cdup_graph.h"
#include "repr/expander.h"

namespace graphgen {

std::string_view RepresentationToString(Representation r) {
  switch (r) {
    case Representation::kAuto: return "AUTO";
    case Representation::kCDup: return "C-DUP";
    case Representation::kExp: return "EXP";
    case Representation::kDedup1: return "DEDUP-1";
    case Representation::kDedup2: return "DEDUP-2";
    case Representation::kBitmap1: return "BITMAP-1";
    case Representation::kBitmap2: return "BITMAP-2";
  }
  return "?";
}

std::string_view Dedup1AlgorithmToString(Dedup1Algorithm a) {
  switch (a) {
    case Dedup1Algorithm::kNaiveVirtualFirst: return "NaiveVirtualFirst";
    case Dedup1Algorithm::kNaiveRealFirst: return "NaiveRealFirst";
    case Dedup1Algorithm::kGreedyRealFirst: return "GreedyRealFirst";
    case Dedup1Algorithm::kGreedyVirtualFirst: return "GreedyVirtualFirst";
  }
  return "?";
}

Result<ExtractedGraph> GraphGen::Extract(std::string_view datalog,
                                         const GraphGenOptions& options) const {
  WallTimer wall;
  GRAPHGEN_ASSIGN_OR_RETURN(
      planner::ExtractionResult extraction,
      planner::ExtractFromQuery(*db_, datalog, options.extract));
  planner::ExtractionResult stats_copy;
  stats_copy.sql = extraction.sql;
  stats_copy.rows_scanned = extraction.rows_scanned;
  stats_copy.condensed_edges = extraction.condensed_edges;
  stats_copy.virtual_nodes = extraction.virtual_nodes;
  stats_copy.real_nodes = extraction.real_nodes;
  stats_copy.nodes_seconds = extraction.nodes_seconds;
  stats_copy.edges_seconds = extraction.edges_seconds;
  stats_copy.preprocess_seconds = extraction.preprocess_seconds;
  stats_copy.profile = std::move(extraction.profile);

  GRAPHGEN_ASSIGN_OR_RETURN(
      ExtractedGraph out,
      Materialize(std::move(extraction.storage), options));
  stats_copy.storage = CondensedStorage();  // storage moved into the graph
  if (!stats_copy.profile.empty()) {
    obs::ProfileNode* m = stats_copy.profile.root.AddChild(
        "materialize", RepresentationToString(out.representation));
    m->seconds = out.dedup_seconds;
  }
  stats_copy.profile.wall_seconds = wall.Seconds();
  out.stats = std::move(stats_copy);
  return out;
}

Result<std::vector<ExtractedGraph>> GraphGen::ExtractMany(
    const std::vector<std::string>& queries, const GraphGenOptions& options,
    size_t memory_budget_bytes, size_t* completed) const {
  std::vector<ExtractedGraph> graphs;
  size_t used = 0;
  if (completed != nullptr) *completed = 0;
  for (const std::string& query : queries) {
    auto result = Extract(query, options);
    if (!result.ok()) return result.status();
    used += result->FootprintBytes();
    if (memory_budget_bytes > 0 && used > memory_budget_bytes) {
      return Status::OutOfRange(
          "batch memory budget exceeded after " +
          std::to_string(graphs.size()) + " graphs (" + std::to_string(used) +
          " bytes > " + std::to_string(memory_budget_bytes) + ")");
    }
    graphs.push_back(std::move(*result));
    if (completed != nullptr) *completed = graphs.size();
  }
  return graphs;
}

Result<ExtractedGraph> GraphGen::Materialize(CondensedStorage storage,
                                             const GraphGenOptions& options) {
  GRAPHGEN_FAULT_POINT("core.materialize");
  const ExecContext& ctx = options.extract.ctx;
  GRAPHGEN_RETURN_NOT_OK(ctx.Check());
  // Representation builds copy the adjacency into fresh CSR-style arrays;
  // charge that up front so a budgeted request fails cleanly instead of
  // OOMing mid-build. Estimate: one NodeRef pair per condensed edge.
  GRAPHGEN_RETURN_NOT_OK(
      ctx.Charge(storage.CountCondensedEdges() * 2 * sizeof(NodeRef),
                 "representation build arrays"));
  ExtractedGraph out;
  Representation target = options.representation;
  if (target == Representation::kAuto) {
    target = ChooseRepresentation(storage, options.expand_threshold);
  }
  out.representation = target;

  WallTimer timer;
  switch (target) {
    case Representation::kCDup:
      out.graph = std::make_unique<CDupGraph>(std::move(storage));
      break;
    case Representation::kExp:
      out.graph = std::make_unique<ExpandedGraph>(ExpandCondensed(storage));
      break;
    case Representation::kDedup1: {
      CondensedStorage input = std::move(storage);
      if (!input.IsSingleLayer()) input = FlattenToSingleLayer(input);
      Result<Dedup1Graph> result = [&]() -> Result<Dedup1Graph> {
        switch (options.dedup1_algorithm) {
          case Dedup1Algorithm::kNaiveVirtualFirst:
            return NaiveVirtualNodesFirst(input, options.dedup);
          case Dedup1Algorithm::kNaiveRealFirst:
            return NaiveRealNodesFirst(input, options.dedup);
          case Dedup1Algorithm::kGreedyRealFirst:
            return GreedyRealNodesFirst(input, options.dedup);
          case Dedup1Algorithm::kGreedyVirtualFirst:
            return GreedyVirtualNodesFirst(input, options.dedup);
        }
        return Status::Internal("unknown DEDUP-1 algorithm");
      }();
      GRAPHGEN_RETURN_NOT_OK(result.status());
      out.graph = std::make_unique<Dedup1Graph>(std::move(*result));
      break;
    }
    case Representation::kDedup2: {
      CondensedStorage input = std::move(storage);
      if (!input.IsSingleLayer()) input = FlattenToSingleLayer(input);
      GRAPHGEN_ASSIGN_OR_RETURN(Dedup2Graph graph,
                                BuildDedup2(input, options.dedup));
      out.graph = std::make_unique<Dedup2Graph>(std::move(graph));
      break;
    }
    case Representation::kBitmap1: {
      GRAPHGEN_ASSIGN_OR_RETURN(BitmapGraph graph,
                                BuildBitmap1(storage, options.dedup));
      out.graph = std::make_unique<BitmapGraph>(std::move(graph));
      break;
    }
    case Representation::kBitmap2: {
      GRAPHGEN_ASSIGN_OR_RETURN(BitmapGraph graph,
                                BuildBitmap2(storage, options.dedup));
      out.graph = std::make_unique<BitmapGraph>(std::move(graph));
      break;
    }
    case Representation::kAuto:
      return Status::Internal("unresolved AUTO representation");
  }
  out.dedup_seconds = timer.Seconds();
  return out;
}

}  // namespace graphgen
