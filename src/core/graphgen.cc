#include "core/graphgen.h"

#include <algorithm>
#include <unordered_map>

#include "common/cancel.h"
#include "common/faultpoints.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "core/representation_picker.h"
#include "datalog/parser.h"
#include "datalog/validator.h"
#include "dedup/bitmap_algorithms.h"
#include "dedup/dedup1_algorithms.h"
#include "dedup/dedup2_builder.h"
#include "repr/cdup_graph.h"
#include "repr/expander.h"

namespace graphgen {

std::string_view RepresentationToString(Representation r) {
  switch (r) {
    case Representation::kAuto: return "AUTO";
    case Representation::kCDup: return "C-DUP";
    case Representation::kExp: return "EXP";
    case Representation::kDedup1: return "DEDUP-1";
    case Representation::kDedup2: return "DEDUP-2";
    case Representation::kBitmap1: return "BITMAP-1";
    case Representation::kBitmap2: return "BITMAP-2";
  }
  return "?";
}

std::string_view Dedup1AlgorithmToString(Dedup1Algorithm a) {
  switch (a) {
    case Dedup1Algorithm::kNaiveVirtualFirst: return "NaiveVirtualFirst";
    case Dedup1Algorithm::kNaiveRealFirst: return "NaiveRealFirst";
    case Dedup1Algorithm::kGreedyRealFirst: return "GreedyRealFirst";
    case Dedup1Algorithm::kGreedyVirtualFirst: return "GreedyVirtualFirst";
  }
  return "?";
}

Result<ExtractedGraph> GraphGen::Extract(std::string_view datalog,
                                         const GraphGenOptions& options) const {
  WallTimer wall;
  // Recorded before the pipeline reads any table: if the database mutates
  // mid-extraction, the tick moves past this and the result reads stale.
  const uint64_t db_tick = db_->CurrentTick();
  planner::ExtractionResult extraction;
  std::shared_ptr<planner::IncrementalState> captured;
  if (options.capture_incremental) {
    captured = std::make_shared<planner::IncrementalState>();
  }
  GRAPHGEN_ASSIGN_OR_RETURN(
      extraction, planner::ExtractFromQuery(*db_, datalog, options.extract,
                                            captured.get()));
  planner::ExtractionResult stats_copy;
  stats_copy.sql = extraction.sql;
  stats_copy.rows_scanned = extraction.rows_scanned;
  stats_copy.condensed_edges = extraction.condensed_edges;
  stats_copy.virtual_nodes = extraction.virtual_nodes;
  stats_copy.real_nodes = extraction.real_nodes;
  stats_copy.nodes_seconds = extraction.nodes_seconds;
  stats_copy.edges_seconds = extraction.edges_seconds;
  stats_copy.preprocess_seconds = extraction.preprocess_seconds;
  stats_copy.profile = std::move(extraction.profile);

  GRAPHGEN_ASSIGN_OR_RETURN(
      ExtractedGraph out,
      Materialize(std::move(extraction.storage), options));
  stats_copy.storage = CondensedStorage();  // storage moved into the graph
  if (!stats_copy.profile.empty()) {
    obs::ProfileNode* m = stats_copy.profile.root.AddChild(
        "materialize", RepresentationToString(out.representation));
    m->seconds = out.dedup_seconds;
  }
  stats_copy.profile.wall_seconds = wall.Seconds();
  out.stats = std::move(stats_copy);
  out.incremental = std::move(captured);
  out.db_tick = db_tick;
  return out;
}

namespace {

// Advances an EXP basis by the patch's new condensed edges, returning the
// patched graph. The expanded delta is computed exactly: each new
// condensed edge (a -> b) contributes the pairs R_src(a) × R_dst(b),
// where R_src collects the reals with a virtual-only path INTO a (just
// {a} when a is real) and R_dst the reals reachable FROM b through
// virtuals — mirroring the expansion traversal (virtual-only interior,
// self paths skipped), so the work is proportional to the expanded delta
// rather than to the full neighborhoods of every touched vertex.
//
// Application is two-mode: a small delta copies the basis and merges into
// its copy-on-write overlay; a delta that would patch more vertices than
// the compaction threshold tolerates skips COW entirely (copy + overlay +
// Compact is three O(E) passes) and merges base CSR and sorted delta into
// fresh flat arrays in one linear pass per direction. Runs against the
// *pre-preprocess* canonical graph — expansion is the transitive closure
// through virtuals, which §4.2 Step 6 preprocessing does not change, and
// the patch's edge refs are numbered in it.
Result<std::unique_ptr<ExpandedGraph>> PatchExpanded(
    const ExpandedGraph& basis, const planner::PatchAttempt& attempt,
    const GraphGenOptions& options) {
  const CondensedStorage& storage = attempt.state->graph;
  const ExecContext& ctx = options.extract.ctx;
  const size_t n = storage.NumRealNodes();
  const size_t basis_n = basis.NumVertices();

  std::vector<NodeId> src_reals, dst_reals;
  std::vector<uint8_t> seen_virtual(storage.NumVirtualNodes(), 0);
  std::vector<uint32_t> marked;  // lazily reset between traversals
  std::vector<NodeRef> stack;
  auto collect = [&](NodeRef start, bool backward, std::vector<NodeId>& out) {
    out.clear();
    if (start.is_real()) {
      out.push_back(static_cast<NodeId>(start.index()));
      return;
    }
    for (uint32_t v : marked) seen_virtual[v] = 0;
    marked.clear();
    stack.clear();
    stack.push_back(start);
    seen_virtual[start.index()] = 1;
    marked.push_back(start.index());
    while (!stack.empty()) {
      const NodeRef v = stack.back();
      stack.pop_back();
      for (NodeRef w : backward ? storage.InEdges(v) : storage.OutEdges(v)) {
        if (w.is_real()) {
          out.push_back(static_cast<NodeId>(w.index()));
        } else if (!seen_virtual[w.index()]) {
          seen_virtual[w.index()] = 1;
          marked.push_back(w.index());
          stack.push_back(w);
        }
      }
    }
    // A real can reach the seed through several virtuals; dedup so the
    // pair loop below stays proportional to distinct pairs.
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
  };
  // Hub virtuals recur across the delta's new edges (every new row under
  // the same hub re-seeds it), so each virtual's real set is collected
  // once per direction.
  std::unordered_map<uint32_t, std::vector<NodeId>> memo_back, memo_fwd;
  auto reals_of = [&](NodeRef nr, bool backward,
                      std::vector<NodeId>& single) -> const std::vector<NodeId>& {
    if (nr.is_real()) {
      single.assign(1, static_cast<NodeId>(nr.index()));
      return single;
    }
    auto& memo = backward ? memo_back : memo_fwd;
    auto it = memo.find(nr.index());
    if (it != memo.end()) return it->second;
    std::vector<NodeId> out;
    collect(nr, backward, out);
    return memo.emplace(nr.index(), std::move(out)).first->second;
  };
  // Candidate pairs are emitted pre-packed ((u << 32) | v) and then
  // sorted + deduped so both application modes see one sorted run per
  // touched vertex. Both halves live in the dense [0, n) real-id domain
  // and the delta is hub-amplified (large, duplicate-heavy), so two
  // stable counting passes beat a comparison sort. `touched` counts the
  // distinct overlay entries the COW path would create.
  std::vector<uint64_t> keys;
  for (const auto& [from, to] : attempt.new_edges) {
    GRAPHGEN_RETURN_NOT_OK(ctx.Check());
    const std::vector<NodeId>& srcs = reals_of(from, /*backward=*/true,
                                               src_reals);
    const std::vector<NodeId>& dsts = reals_of(to, /*backward=*/false,
                                               dst_reals);
    for (const NodeId r : srcs) {
      const uint64_t hi = static_cast<uint64_t>(r) << 32;
      for (const NodeId s : dsts) {
        if (r == s) continue;  // self paths are never logical edges
        keys.push_back(hi | s);
      }
    }
  }

  std::vector<uint64_t> sort_tmp;
  std::vector<uint32_t> sort_counts;
  auto counting_sort = [&](std::vector<uint64_t>& v, auto key_of) {
    sort_counts.assign(n + 1, 0);
    for (const uint64_t k : v) ++sort_counts[key_of(k) + 1];
    for (size_t i = 1; i <= n; ++i) sort_counts[i] += sort_counts[i - 1];
    sort_tmp.resize(v.size());
    for (const uint64_t k : v) sort_tmp[sort_counts[key_of(k)]++] = k;
    v.swap(sort_tmp);
  };
  auto lo32 = [](uint64_t k) { return static_cast<uint32_t>(k); };
  auto hi32 = [](uint64_t k) { return static_cast<uint32_t>(k >> 32); };
  counting_sort(keys, lo32);
  counting_sort(keys, hi32);
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  std::vector<uint64_t> reversed;
  reversed.reserve(keys.size());
  for (const uint64_t k : keys) {
    reversed.push_back(k << 32 | k >> 32);
  }
  counting_sort(reversed, lo32);
  counting_sort(reversed, hi32);
  auto count_runs = [](const std::vector<uint64_t>& ks) {
    size_t runs = 0;
    for (size_t i = 0; i < ks.size(); ++i) {
      if (i == 0 || (ks[i] >> 32) != (ks[i - 1] >> 32)) ++runs;
    }
    return runs;
  };
  const size_t touched = count_runs(keys) + count_runs(reversed);
  GRAPHGEN_RETURN_NOT_OK(ctx.Check());

  if (static_cast<double>(touched) <=
      options.exp_compact_threshold * static_cast<double>(n)) {
    // Small delta: copy the basis and merge into its COW overlay.
    auto exp = std::make_unique<ExpandedGraph>(basis);
    while (exp->NumVertices() < n) exp->AddVertex();
    // New nodes and replayed property writes (props are identical pre-
    // and post-preprocess).
    exp->properties() = storage.properties();
    std::vector<std::pair<NodeId, NodeId>> pairs;
    pairs.reserve(keys.size());
    for (const uint64_t k : keys) {
      pairs.emplace_back(static_cast<NodeId>(k >> 32),
                         static_cast<NodeId>(k));
    }
    GRAPHGEN_RETURN_NOT_OK(exp->AddEdges(pairs));
    // Repeated small patches accumulate overlay; fold once past the
    // threshold so long-lived cache entries stay flat.
    if (static_cast<double>(exp->PatchedVertices()) >
        options.exp_compact_threshold * static_cast<double>(exp->NumVertices())) {
      exp->Compact();
    }
    return exp;
  }

  // Large delta: one linear merge of the basis CSR and the sorted delta
  // per direction, directly into fresh flat arrays. Untouched vertices
  // are bulk range copies; touched vertices a two-pointer sorted union
  // (candidates already present in the basis are skipped, like AddEdge).
  // `reserve_hint` over-allocates by the candidates already present in
  // the basis; the final resize trims. Raw-pointer writes: this loop
  // streams ~2E elements and push_back's capacity check is measurable.
  auto build = [&](const std::vector<uint64_t>& sorted, auto span_of,
                   uint64_t reserve_hint, std::vector<uint64_t>& offsets,
                   std::vector<NodeId>& neighbors) {
    offsets.assign(n + 1, 0);
    neighbors.resize(reserve_hint);
    NodeId* w = neighbors.data();
    size_t k = 0;
    for (size_t u = 0; u < n; ++u) {
      const std::span<const NodeId> cur =
          u < basis_n ? span_of(static_cast<NodeId>(u))
                      : std::span<const NodeId>();
      const NodeId* p = cur.data();
      const NodeId* pe = p + cur.size();
      while (k < sorted.size() && (sorted[k] >> 32) == u) {
        const NodeId v = static_cast<NodeId>(sorted[k]);
        ++k;
        while (p != pe && *p < v) *w++ = *p++;
        if (p != pe && *p == v) continue;  // present; emitted by the drain
        *w++ = v;
      }
      w = std::copy(p, pe, w);
      offsets[u + 1] = static_cast<uint64_t>(w - neighbors.data());
    }
    neighbors.resize(static_cast<size_t>(w - neighbors.data()));
  };
  const uint64_t reserve_hint = basis.CountStoredEdges() + keys.size();
  std::vector<uint64_t> out_off, in_off;
  std::vector<NodeId> out_nei, in_nei;
  // The two directions stream independent arrays; overlap them unless the
  // caller asked for a single-threaded pipeline.
  auto build_out = [&] {
    build(keys, [&](NodeId u) { return basis.RawNeighbors(u); }, reserve_hint,
          out_off, out_nei);
  };
  auto build_in = [&] {
    build(reversed, [&](NodeId u) { return basis.RawInNeighbors(u); },
          reserve_hint, in_off, in_nei);
  };
  if (options.extract.threads == 1) {
    build_out();
    build_in();
  } else {
    ParallelInvoke(2, [&](size_t i) { i == 0 ? build_out() : build_in(); });
  }
  GRAPHGEN_RETURN_NOT_OK(ctx.Check());

  std::vector<uint8_t> deleted(n, 0);
  bool any_deleted = false;
  for (size_t u = 0; u < basis_n; ++u) {
    if (!basis.VertexExists(static_cast<NodeId>(u))) {
      deleted[u] = 1;
      any_deleted = true;
    }
  }
  auto exp = std::make_unique<ExpandedGraph>();
  exp->AdoptCsr(std::move(out_off), std::move(out_nei), std::move(in_off),
                std::move(in_nei),
                any_deleted ? std::move(deleted) : std::vector<uint8_t>{});
  exp->properties() = storage.properties();
  return exp;
}

}  // namespace

Result<PatchOutcome> GraphGen::PatchExtracted(
    const ExtractedGraph& cached, const GraphGenOptions& options) const {
  PatchOutcome out;
  if (cached.incremental == nullptr) {
    out.fallback_reason = "no incremental state captured";
    return out;
  }
  WallTimer wall;
  const uint64_t db_tick = db_->CurrentTick();
  GRAPHGEN_ASSIGN_OR_RETURN(
      planner::PatchAttempt attempt,
      planner::PatchExtraction(*db_, *cached.incremental, options.extract));
  if (!attempt.patched) {
    out.fallback_reason = std::move(attempt.fallback_reason);
    return out;
  }

  planner::ExtractionResult stats_copy;
  stats_copy.sql = attempt.result.sql;
  stats_copy.rows_scanned = attempt.result.rows_scanned;
  stats_copy.condensed_edges = attempt.result.condensed_edges;
  stats_copy.virtual_nodes = attempt.result.virtual_nodes;
  stats_copy.real_nodes = attempt.result.real_nodes;
  stats_copy.nodes_seconds = attempt.result.nodes_seconds;
  stats_copy.edges_seconds = attempt.result.edges_seconds;
  stats_copy.preprocess_seconds = attempt.result.preprocess_seconds;

  WallTimer timer;
  const auto* exp = dynamic_cast<const ExpandedGraph*>(cached.graph.get());
  ExtractedGraph graph;
  if (cached.representation == Representation::kExp && exp != nullptr &&
      exp->HasFlatAdjacency()) {
    GRAPHGEN_ASSIGN_OR_RETURN(std::unique_ptr<ExpandedGraph> patched_exp,
                              PatchExpanded(*exp, attempt, options));
    graph.graph = std::move(patched_exp);
    graph.representation = Representation::kExp;
    graph.dedup_seconds = timer.Seconds();
  } else {
    // Any other representation rebuilds from the patched condensed graph,
    // pinned to the cached representation so the entry's identity (and
    // kAuto's earlier choice) is stable across patches.
    GraphGenOptions rebuild = options;
    rebuild.representation = cached.representation;
    GRAPHGEN_ASSIGN_OR_RETURN(
        graph, Materialize(std::move(attempt.result.storage), rebuild));
  }
  stats_copy.profile.wall_seconds = wall.Seconds();
  graph.stats = std::move(stats_copy);
  graph.incremental = std::move(attempt.state);
  graph.db_tick = db_tick;
  out.patched = true;
  out.graph = std::move(graph);
  return out;
}

Result<std::vector<ExtractedGraph>> GraphGen::ExtractMany(
    const std::vector<std::string>& queries, const GraphGenOptions& options,
    size_t memory_budget_bytes, size_t* completed) const {
  std::vector<ExtractedGraph> graphs;
  size_t used = 0;
  if (completed != nullptr) *completed = 0;
  for (const std::string& query : queries) {
    auto result = Extract(query, options);
    if (!result.ok()) return result.status();
    used += result->FootprintBytes();
    if (memory_budget_bytes > 0 && used > memory_budget_bytes) {
      return Status::OutOfRange(
          "batch memory budget exceeded after " +
          std::to_string(graphs.size()) + " graphs (" + std::to_string(used) +
          " bytes > " + std::to_string(memory_budget_bytes) + ")");
    }
    graphs.push_back(std::move(*result));
    if (completed != nullptr) *completed = graphs.size();
  }
  return graphs;
}

Result<ExtractedGraph> GraphGen::Materialize(CondensedStorage storage,
                                             const GraphGenOptions& options) {
  GRAPHGEN_FAULT_POINT("core.materialize");
  const ExecContext& ctx = options.extract.ctx;
  GRAPHGEN_RETURN_NOT_OK(ctx.Check());
  // Representation builds copy the adjacency into fresh CSR-style arrays;
  // charge that up front so a budgeted request fails cleanly instead of
  // OOMing mid-build. Estimate: one NodeRef pair per condensed edge.
  GRAPHGEN_RETURN_NOT_OK(
      ctx.Charge(storage.CountCondensedEdges() * 2 * sizeof(NodeRef),
                 "representation build arrays"));
  ExtractedGraph out;
  Representation target = options.representation;
  if (target == Representation::kAuto) {
    target = ChooseRepresentation(storage, options.expand_threshold);
  }
  out.representation = target;

  WallTimer timer;
  switch (target) {
    case Representation::kCDup:
      out.graph = std::make_unique<CDupGraph>(std::move(storage));
      break;
    case Representation::kExp:
      out.graph = std::make_unique<ExpandedGraph>(ExpandCondensed(storage));
      break;
    case Representation::kDedup1: {
      CondensedStorage input = std::move(storage);
      if (!input.IsSingleLayer()) input = FlattenToSingleLayer(input);
      Result<Dedup1Graph> result = [&]() -> Result<Dedup1Graph> {
        switch (options.dedup1_algorithm) {
          case Dedup1Algorithm::kNaiveVirtualFirst:
            return NaiveVirtualNodesFirst(input, options.dedup);
          case Dedup1Algorithm::kNaiveRealFirst:
            return NaiveRealNodesFirst(input, options.dedup);
          case Dedup1Algorithm::kGreedyRealFirst:
            return GreedyRealNodesFirst(input, options.dedup);
          case Dedup1Algorithm::kGreedyVirtualFirst:
            return GreedyVirtualNodesFirst(input, options.dedup);
        }
        return Status::Internal("unknown DEDUP-1 algorithm");
      }();
      GRAPHGEN_RETURN_NOT_OK(result.status());
      out.graph = std::make_unique<Dedup1Graph>(std::move(*result));
      break;
    }
    case Representation::kDedup2: {
      CondensedStorage input = std::move(storage);
      if (!input.IsSingleLayer()) input = FlattenToSingleLayer(input);
      GRAPHGEN_ASSIGN_OR_RETURN(Dedup2Graph graph,
                                BuildDedup2(input, options.dedup));
      out.graph = std::make_unique<Dedup2Graph>(std::move(graph));
      break;
    }
    case Representation::kBitmap1: {
      GRAPHGEN_ASSIGN_OR_RETURN(BitmapGraph graph,
                                BuildBitmap1(storage, options.dedup));
      out.graph = std::make_unique<BitmapGraph>(std::move(graph));
      break;
    }
    case Representation::kBitmap2: {
      GRAPHGEN_ASSIGN_OR_RETURN(BitmapGraph graph,
                                BuildBitmap2(storage, options.dedup));
      out.graph = std::make_unique<BitmapGraph>(std::move(graph));
      break;
    }
    case Representation::kAuto:
      return Status::Internal("unresolved AUTO representation");
  }
  out.dedup_seconds = timer.Seconds();
  return out;
}

}  // namespace graphgen
