#ifndef GRAPHGEN_CORE_GRAPHGEN_H_
#define GRAPHGEN_CORE_GRAPHGEN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "dedup/ordering.h"
#include "graph/graph.h"
#include "planner/extractor.h"
#include "planner/incremental.h"
#include "relational/database.h"

namespace graphgen {

/// The in-memory representations of §4.3.
enum class Representation {
  kAuto,     // §6.5 policy: expand when cheap, else BITMAP-2
  kCDup,     // condensed, duplicated; on-the-fly dedup
  kExp,      // fully expanded
  kDedup1,   // condensed, deduplicated
  kDedup2,   // single-layer symmetric optimization
  kBitmap1,  // bitmaps via the naive pass
  kBitmap2,  // bitmaps via greedy set cover
};

std::string_view RepresentationToString(Representation r);

/// Which DEDUP-1 algorithm to run (§5.2.1).
enum class Dedup1Algorithm {
  kNaiveVirtualFirst,
  kNaiveRealFirst,
  kGreedyRealFirst,
  kGreedyVirtualFirst,
};

std::string_view Dedup1AlgorithmToString(Dedup1Algorithm a);

/// End-to-end extraction options.
struct GraphGenOptions {
  planner::ExtractOptions extract;
  Representation representation = Representation::kAuto;
  Dedup1Algorithm dedup1_algorithm = Dedup1Algorithm::kGreedyVirtualFirst;
  DedupOptions dedup;
  /// kAuto expands when the expanded graph is at most (1 + threshold)
  /// times the condensed size (§6.5 suggests 20%).
  double expand_threshold = 0.2;
  /// Captures the incremental-extraction state (first-occurrence sets,
  /// canonical pre-preprocess graph, version-vector basis) during Extract
  /// so later table appends can be advanced by PatchExtracted instead of
  /// a cold run. Costs memory — FootprintBytes() includes it.
  bool capture_incremental = false;
  /// When PatchExtracted advances an EXP graph through its copy-on-write
  /// overlay, the overlay is re-flattened (ExpandedGraph::Compact) once
  /// more than this fraction of vertices carries patch entries.
  double exp_compact_threshold = 0.05;
};

/// The product of an extraction: a ready-to-analyze Graph in the chosen
/// representation plus the extraction statistics (Table 1 columns).
struct ExtractedGraph {
  std::unique_ptr<Graph> graph;
  Representation representation = Representation::kCDup;
  planner::ExtractionResult stats;
  double dedup_seconds = 0.0;
  /// Present when the extraction was run with capture_incremental: the
  /// state PatchExtracted advances on table appends. Immutable and shared
  /// (successor states share nothing with it structurally).
  std::shared_ptr<const planner::IncrementalState> incremental;
  /// Database-global tick when the extraction started. Caches that cannot
  /// do a per-table version check (no incremental state) compare this to
  /// Database::CurrentTick(): unequal means *some* table changed and the
  /// entry may be stale. Conservative by design.
  uint64_t db_tick = 0;

  /// Bytes this graph costs to keep resident: the representation-aware
  /// footprint the batch extractor and the service cache charge against
  /// their memory budgets, plus the incremental state riding along.
  size_t FootprintBytes() const {
    size_t total = graph == nullptr ? 0 : graph->MemoryFootprint().Total();
    if (incremental != nullptr) total += incremental->MemoryBytes();
    return total;
  }
};

/// Outcome of a core-level patch attempt. `patched == false` is the soft
/// fallback (reason in `fallback_reason`): run a cold Extract instead.
struct PatchOutcome {
  bool patched = false;
  std::string fallback_reason;
  /// Valid when patched: equivalent to a cold Extract against the current
  /// database, with the successor incremental state attached.
  ExtractedGraph graph;
};

/// The system facade (§3.1): parses a Datalog extraction program,
/// translates it to queries against the embedded database, assembles the
/// condensed graph, and hands back an in-memory Graph object.
class GraphGen {
 public:
  explicit GraphGen(const rel::Database* db) : db_(db) {}

  /// Runs the full pipeline on a Datalog program.
  Result<ExtractedGraph> Extract(std::string_view datalog,
                                 const GraphGenOptions& options = {}) const;

  /// Builds the requested representation from an existing condensed
  /// graph (used by benchmarks and after deserialization).
  static Result<ExtractedGraph> Materialize(CondensedStorage storage,
                                            const GraphGenOptions& options);

  /// Advances a cached extraction (made with capture_incremental) to the
  /// database's current state by patching only the appended rows in.
  /// EXP graphs advance in place through the copy-on-write overlay (with
  /// threshold-triggered re-flattening); other representations rebuild
  /// from the patched condensed graph. Soft fallbacks (rebased table,
  /// count-constraint rule, segmentation drift, no captured state) return
  /// patched == false; the caller runs a cold extraction instead.
  Result<PatchOutcome> PatchExtracted(const ExtractedGraph& cached,
                                      const GraphGenOptions& options) const;

  /// Extracts a collection of graphs in one batch (§3.1: GraphGen builds
  /// batches whose total condensed size fits in memory). Queries run in
  /// sequence; if `memory_budget_bytes` > 0 and the accumulated footprint
  /// of the extracted graphs would exceed it, extraction stops with
  /// kOutOfRange and the graphs extracted so far are returned through
  /// `completed`.
  Result<std::vector<ExtractedGraph>> ExtractMany(
      const std::vector<std::string>& queries, const GraphGenOptions& options,
      size_t memory_budget_bytes = 0, size_t* completed = nullptr) const;

 private:
  const rel::Database* db_;
};

}  // namespace graphgen

#endif  // GRAPHGEN_CORE_GRAPHGEN_H_
