#ifndef GRAPHGEN_CORE_GRAPHGEN_H_
#define GRAPHGEN_CORE_GRAPHGEN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "dedup/ordering.h"
#include "graph/graph.h"
#include "planner/extractor.h"
#include "relational/database.h"

namespace graphgen {

/// The in-memory representations of §4.3.
enum class Representation {
  kAuto,     // §6.5 policy: expand when cheap, else BITMAP-2
  kCDup,     // condensed, duplicated; on-the-fly dedup
  kExp,      // fully expanded
  kDedup1,   // condensed, deduplicated
  kDedup2,   // single-layer symmetric optimization
  kBitmap1,  // bitmaps via the naive pass
  kBitmap2,  // bitmaps via greedy set cover
};

std::string_view RepresentationToString(Representation r);

/// Which DEDUP-1 algorithm to run (§5.2.1).
enum class Dedup1Algorithm {
  kNaiveVirtualFirst,
  kNaiveRealFirst,
  kGreedyRealFirst,
  kGreedyVirtualFirst,
};

std::string_view Dedup1AlgorithmToString(Dedup1Algorithm a);

/// End-to-end extraction options.
struct GraphGenOptions {
  planner::ExtractOptions extract;
  Representation representation = Representation::kAuto;
  Dedup1Algorithm dedup1_algorithm = Dedup1Algorithm::kGreedyVirtualFirst;
  DedupOptions dedup;
  /// kAuto expands when the expanded graph is at most (1 + threshold)
  /// times the condensed size (§6.5 suggests 20%).
  double expand_threshold = 0.2;
};

/// The product of an extraction: a ready-to-analyze Graph in the chosen
/// representation plus the extraction statistics (Table 1 columns).
struct ExtractedGraph {
  std::unique_ptr<Graph> graph;
  Representation representation = Representation::kCDup;
  planner::ExtractionResult stats;
  double dedup_seconds = 0.0;

  /// Bytes this graph costs to keep resident: the representation-aware
  /// footprint the batch extractor and the service cache charge against
  /// their memory budgets.
  size_t FootprintBytes() const {
    return graph == nullptr ? 0 : graph->MemoryFootprint().Total();
  }
};

/// The system facade (§3.1): parses a Datalog extraction program,
/// translates it to queries against the embedded database, assembles the
/// condensed graph, and hands back an in-memory Graph object.
class GraphGen {
 public:
  explicit GraphGen(const rel::Database* db) : db_(db) {}

  /// Runs the full pipeline on a Datalog program.
  Result<ExtractedGraph> Extract(std::string_view datalog,
                                 const GraphGenOptions& options = {}) const;

  /// Builds the requested representation from an existing condensed
  /// graph (used by benchmarks and after deserialization).
  static Result<ExtractedGraph> Materialize(CondensedStorage storage,
                                            const GraphGenOptions& options);

  /// Extracts a collection of graphs in one batch (§3.1: GraphGen builds
  /// batches whose total condensed size fits in memory). Queries run in
  /// sequence; if `memory_budget_bytes` > 0 and the accumulated footprint
  /// of the extracted graphs would exceed it, extraction stops with
  /// kOutOfRange and the graphs extracted so far are returned through
  /// `completed`.
  Result<std::vector<ExtractedGraph>> ExtractMany(
      const std::vector<std::string>& queries, const GraphGenOptions& options,
      size_t memory_budget_bytes = 0, size_t* completed = nullptr) const;

 private:
  const rel::Database* db_;
};

}  // namespace graphgen

#endif  // GRAPHGEN_CORE_GRAPHGEN_H_
