#ifndef GRAPHGEN_CORE_SERIALIZATION_H_
#define GRAPHGEN_CORE_SERIALIZATION_H_

#include <string>

#include "common/status.h"
#include "graph/graph.h"
#include "graph/storage.h"
#include "relational/table.h"

namespace graphgen {

/// Serializes the *expanded* view of any representation as an edge list
/// ("u v" per line), the standardized format of §3.1(d) that external
/// tools (NetworkX & friends) consume.
Status SerializeEdgeList(const Graph& graph, const std::string& path);

/// Serializes a condensed graph in a compact text format that preserves
/// virtual nodes (so a deduplicated graph can be stored back and reloaded
/// without re-running deduplication, §6.5).
Status SerializeCondensed(const CondensedStorage& storage,
                          const std::string& path);

/// Loads a condensed graph written by SerializeCondensed.
Result<CondensedStorage> LoadCondensed(const std::string& path);

/// Serializes a relational table as a binary columnar snapshot: each
/// column is written in its physical encoding (raw int64/double arrays,
/// dictionary + codes for strings, null masks), so reloading skips CSV
/// parsing and type inference entirely.
Status SerializeTableColumnar(const rel::Table& table,
                              const std::string& path);

/// Loads a snapshot written by SerializeTableColumnar. The reloaded table
/// is cell-for-cell identical — same schema, same values, same physical
/// encodings and dictionary codes.
Result<rel::Table> LoadTableColumnar(const std::string& path);

}  // namespace graphgen

#endif  // GRAPHGEN_CORE_SERIALIZATION_H_
