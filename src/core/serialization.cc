#include "core/serialization.h"

#include <cinttypes>
#include <cstdio>
#include <vector>

namespace graphgen {

Status SerializeEdgeList(const Graph& graph, const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::ExecutionError("cannot open " + path + " for writing");
  }
  graph.ForEachVertex([&](NodeId u) {
    graph.ForEachNeighbor(u, [&](NodeId v) {
      std::fprintf(f, "%u %u\n", u, v);
    });
  });
  std::fclose(f);
  return Status::OK();
}

Status SerializeCondensed(const CondensedStorage& storage,
                          const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::ExecutionError("cannot open " + path + " for writing");
  }
  std::fprintf(f, "graphgen-condensed 1\n");
  std::fprintf(f, "%zu %zu\n", storage.NumRealNodes(),
               storage.NumVirtualNodes());
  // One line per source node: "<kind><index> <raw-ref>*".
  for (NodeId u = 0; u < storage.NumRealNodes(); ++u) {
    const auto& out = storage.OutEdges(NodeRef::Real(u));
    if (out.empty() && !storage.IsDeleted(u)) continue;
    std::fprintf(f, "r%u%s", u, storage.IsDeleted(u) ? " D" : "");
    for (NodeRef r : out) std::fprintf(f, " %" PRIu32, r.raw());
    std::fputc('\n', f);
  }
  for (uint32_t v = 0; v < storage.NumVirtualNodes(); ++v) {
    const auto& out = storage.OutEdges(NodeRef::Virtual(v));
    if (out.empty()) continue;
    std::fprintf(f, "v%u", v);
    for (NodeRef r : out) std::fprintf(f, " %" PRIu32, r.raw());
    std::fputc('\n', f);
  }
  std::fclose(f);
  return Status::OK();
}

Result<CondensedStorage> LoadCondensed(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return Status::NotFound("cannot open " + path);
  }
  char magic[64];
  int version = 0;
  if (std::fscanf(f, "%63s %d", magic, &version) != 2 ||
      std::string(magic) != "graphgen-condensed" || version != 1) {
    std::fclose(f);
    return Status::ParseError("not a graphgen condensed file: " + path);
  }
  size_t num_real = 0;
  size_t num_virtual = 0;
  if (std::fscanf(f, "%zu %zu", &num_real, &num_virtual) != 2) {
    std::fclose(f);
    return Status::ParseError("bad header in " + path);
  }
  CondensedStorage storage;
  storage.AddRealNodes(num_real);
  for (size_t v = 0; v < num_virtual; ++v) storage.AddVirtualNode();

  char kind = 0;
  while (std::fscanf(f, " %c", &kind) == 1) {
    uint32_t index = 0;
    if (std::fscanf(f, "%" SCNu32, &index) != 1) break;
    NodeRef from = kind == 'r' ? NodeRef::Real(index) : NodeRef::Virtual(index);
    // Remainder of the line: optional D marker + raw refs.
    int c = 0;
    while ((c = std::fgetc(f)) != EOF && c != '\n') {
      if (c == ' ') continue;
      if (c == 'D') {
        storage.DeleteRealNode(index);
        continue;
      }
      std::ungetc(c, f);
      uint32_t raw = 0;
      if (std::fscanf(f, "%" SCNu32, &raw) != 1) break;
      storage.AddEdge(from, NodeRef::FromRaw(raw));
    }
  }
  std::fclose(f);
  return storage;
}

namespace {

// ------------------------ columnar table snapshot (binary, v1) -----------
//
//   magic "GGTBL1\n"
//   u64 name_len, name bytes
//   u64 num_columns, u64 num_rows
//   per column:
//     u64 name_len, name bytes; u8 declared ValueType; u8 encoding tag
//     u8 has_nulls; [num_rows null bytes]
//     tag 'I': raw int64[num_rows]          tag 'D': raw double[num_rows]
//     tag 'S': u64 dict_size, dict strings (u64 len + bytes) in code
//              order, raw u32 codes[num_rows]
//     tag 'M': per cell u8 ValueType + payload (i64 / f64 / len+bytes)
//     tag 'E': nothing (every row NULL)

bool WriteU64(FILE* f, uint64_t v) {
  return std::fwrite(&v, sizeof(v), 1, f) == 1;
}
bool WriteU8(FILE* f, uint8_t v) {
  return std::fwrite(&v, sizeof(v), 1, f) == 1;
}
bool WriteBytes(FILE* f, const void* p, size_t n) {
  return n == 0 || std::fwrite(p, 1, n, f) == n;
}
bool WriteString(FILE* f, const std::string& s) {
  return WriteU64(f, s.size()) && WriteBytes(f, s.data(), s.size());
}

bool ReadU64(FILE* f, uint64_t* v) {
  return std::fread(v, sizeof(*v), 1, f) == 1;
}
bool ReadU8(FILE* f, uint8_t* v) {
  return std::fread(v, sizeof(*v), 1, f) == 1;
}
bool ReadBytes(FILE* f, void* p, size_t n) {
  return n == 0 || std::fread(p, 1, n, f) == n;
}
// Reads a length-prefixed string; `max_bytes` (the snapshot's file size)
// bounds the allocation so a corrupt length degrades to a parse error
// instead of a multi-gigabyte resize.
bool ReadString(FILE* f, std::string* s, uint64_t max_bytes) {
  uint64_t len = 0;
  if (!ReadU64(f, &len) || len > max_bytes) return false;
  s->resize(len);
  return ReadBytes(f, s->data(), len);
}

char EncodingTag(rel::ColumnVector::Encoding e) {
  using Encoding = rel::ColumnVector::Encoding;
  switch (e) {
    case Encoding::kEmpty: return 'E';
    case Encoding::kInt64: return 'I';
    case Encoding::kDouble: return 'D';
    case Encoding::kDictString: return 'S';
    case Encoding::kMixed: return 'M';
  }
  return '?';
}

bool WriteColumn(FILE* f, const rel::ColumnVector& col, size_t n) {
  using Encoding = rel::ColumnVector::Encoding;
  if (!WriteU8(f, static_cast<uint8_t>(EncodingTag(col.encoding())))) {
    return false;
  }
  if (!WriteU8(f, col.has_nulls() ? 1 : 0)) return false;
  if (col.has_nulls() && !WriteBytes(f, col.NullMask(), n)) return false;
  switch (col.encoding()) {
    case Encoding::kEmpty:
      return true;
    case Encoding::kInt64:
      return WriteBytes(f, col.Int64Data(), n * sizeof(int64_t));
    case Encoding::kDouble:
      return WriteBytes(f, col.DoubleData(), n * sizeof(double));
    case Encoding::kDictString: {
      const rel::StringDictionary& dict = col.dict();
      if (!WriteU64(f, dict.size())) return false;
      for (uint32_t code = 0; code < dict.size(); ++code) {
        if (!WriteString(f, dict.At(code))) return false;
      }
      return WriteBytes(f, col.CodeData(), n * sizeof(uint32_t));
    }
    case Encoding::kMixed:
      for (size_t i = 0; i < n; ++i) {
        const rel::Value v = col.ValueAt(i);
        if (!WriteU8(f, static_cast<uint8_t>(v.type()))) return false;
        switch (v.type()) {
          case rel::ValueType::kNull:
            break;
          case rel::ValueType::kInt64: {
            const int64_t x = v.AsInt64();
            if (!WriteBytes(f, &x, sizeof(x))) return false;
            break;
          }
          case rel::ValueType::kDouble: {
            const double x = v.AsDouble();
            if (!WriteBytes(f, &x, sizeof(x))) return false;
            break;
          }
          case rel::ValueType::kString:
            if (!WriteString(f, v.AsString())) return false;
            break;
        }
      }
      return true;
  }
  return false;
}

Result<rel::ColumnVector> ReadColumn(FILE* f, size_t n, uint64_t max_bytes,
                                     const std::string& path) {
  const auto corrupt = [&] {
    return Status::ParseError("corrupt columnar snapshot: " + path);
  };
  uint8_t tag = 0;
  uint8_t has_nulls = 0;
  if (!ReadU8(f, &tag) || !ReadU8(f, &has_nulls)) return corrupt();
  std::vector<uint8_t> nulls;
  if (has_nulls != 0) {
    nulls.resize(n);
    if (!ReadBytes(f, nulls.data(), n)) return corrupt();
  }
  const auto is_null = [&](size_t i) {
    return !nulls.empty() && nulls[i] != 0;
  };
  rel::ColumnVector col;
  col.Reserve(n);
  switch (tag) {
    case 'E': {
      for (size_t i = 0; i < n; ++i) col.AppendNull();
      return col;
    }
    case 'I': {
      std::vector<int64_t> data(n);
      if (!ReadBytes(f, data.data(), n * sizeof(int64_t))) return corrupt();
      if (nulls.empty()) return rel::ColumnVector::OfInt64(std::move(data));
      for (size_t i = 0; i < n; ++i) {
        if (is_null(i)) {
          col.AppendNull();
        } else {
          col.AppendInt64(data[i]);
        }
      }
      return col;
    }
    case 'D': {
      std::vector<double> data(n);
      if (!ReadBytes(f, data.data(), n * sizeof(double))) return corrupt();
      if (nulls.empty()) return rel::ColumnVector::OfDouble(std::move(data));
      for (size_t i = 0; i < n; ++i) {
        if (is_null(i)) {
          col.AppendNull();
        } else {
          col.AppendDouble(data[i]);
        }
      }
      return col;
    }
    case 'S': {
      uint64_t dict_size = 0;
      // Each dictionary entry costs at least its 8-byte length prefix, so
      // a legitimate dict_size is bounded by the file size / 8.
      if (!ReadU64(f, &dict_size) || dict_size > max_bytes / 8) {
        return corrupt();
      }
      std::vector<std::string> dict(dict_size);
      for (uint64_t i = 0; i < dict_size; ++i) {
        if (!ReadString(f, &dict[i], max_bytes)) return corrupt();
      }
      std::vector<uint32_t> codes(n);
      if (!ReadBytes(f, codes.data(), n * sizeof(uint32_t))) return corrupt();
      // Replaying in row order re-interns the dictionary in the same
      // first-appearance order, so codes round-trip exactly.
      for (size_t i = 0; i < n; ++i) {
        if (is_null(i)) {
          col.AppendNull();
          continue;
        }
        if (codes[i] >= dict_size) return corrupt();
        col.AppendString(dict[codes[i]]);
      }
      return col;
    }
    case 'M': {
      for (size_t i = 0; i < n; ++i) {
        uint8_t vt = 0;
        if (!ReadU8(f, &vt)) return corrupt();
        switch (static_cast<rel::ValueType>(vt)) {
          case rel::ValueType::kNull:
            col.AppendNull();
            break;
          case rel::ValueType::kInt64: {
            int64_t x = 0;
            if (!ReadBytes(f, &x, sizeof(x))) return corrupt();
            col.AppendInt64(x);
            break;
          }
          case rel::ValueType::kDouble: {
            double x = 0;
            if (!ReadBytes(f, &x, sizeof(x))) return corrupt();
            col.AppendDouble(x);
            break;
          }
          case rel::ValueType::kString: {
            std::string s;
            if (!ReadString(f, &s, max_bytes)) return corrupt();
            col.AppendString(s);
            break;
          }
          default:
            return corrupt();
        }
      }
      return col;
    }
    default:
      return corrupt();
  }
}

}  // namespace

Status SerializeTableColumnar(const rel::Table& table,
                              const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::ExecutionError("cannot open " + path + " for writing");
  }
  const size_t n = table.NumRows();
  bool ok = WriteBytes(f, "GGTBL1\n", 7) && WriteString(f, table.name()) &&
            WriteU64(f, table.NumColumns()) && WriteU64(f, n);
  for (size_t c = 0; ok && c < table.NumColumns(); ++c) {
    const rel::ColumnDef& def = table.schema().column(c);
    ok = WriteString(f, def.name) &&
         WriteU8(f, static_cast<uint8_t>(def.type)) &&
         WriteColumn(f, table.column(c), n);
  }
  // fclose flushes the stdio buffer; its failure means a truncated file.
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) return Status::ExecutionError("write failed: " + path);
  return Status::OK();
}

Result<rel::Table> LoadTableColumnar(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open " + path);
  }
  const auto fail = [&](const std::string& why) {
    std::fclose(f);
    return Status::ParseError(why + ": " + path);
  };
  // File size bounds every header-declared count: a corrupt length can
  // never allocate more than the snapshot itself could hold.
  std::fseek(f, 0, SEEK_END);
  const long end = std::ftell(f);
  std::rewind(f);
  const uint64_t max_bytes = end > 0 ? static_cast<uint64_t>(end) : 0;
  char magic[7];
  if (!ReadBytes(f, magic, 7) || std::string_view(magic, 7) != "GGTBL1\n") {
    return fail("not a graphgen columnar snapshot");
  }
  std::string name;
  uint64_t ncols = 0;
  uint64_t nrows = 0;
  if (!ReadString(f, &name, max_bytes) || !ReadU64(f, &ncols) ||
      !ReadU64(f, &nrows)) {
    return fail("bad header");
  }
  // Every encoding spends at least one byte per row per column (null
  // mask, code, value, or tag), and each column header is >= 10 bytes.
  if (ncols > max_bytes / 10 || (ncols > 0 && nrows > max_bytes)) {
    return fail("bad header");
  }
  std::vector<rel::ColumnDef> defs;
  std::vector<rel::ColumnVector> columns;
  defs.reserve(ncols);
  columns.reserve(ncols);
  for (uint64_t c = 0; c < ncols; ++c) {
    rel::ColumnDef def;
    uint8_t vt = 0;
    if (!ReadString(f, &def.name, max_bytes) || !ReadU8(f, &vt)) {
      return fail("bad column header");
    }
    def.type = static_cast<rel::ValueType>(vt);
    auto col = ReadColumn(f, nrows, max_bytes, path);
    if (!col.ok()) {
      std::fclose(f);
      return col.status();
    }
    defs.push_back(std::move(def));
    columns.push_back(std::move(col).ValueOrDie());
  }
  std::fclose(f);
  return rel::Table::FromColumns(std::move(name),
                                 rel::Schema(std::move(defs)),
                                 std::move(columns));
}

}  // namespace graphgen
