#include "core/serialization.h"

#include <cinttypes>
#include <cstdio>

namespace graphgen {

Status SerializeEdgeList(const Graph& graph, const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::ExecutionError("cannot open " + path + " for writing");
  }
  graph.ForEachVertex([&](NodeId u) {
    graph.ForEachNeighbor(u, [&](NodeId v) {
      std::fprintf(f, "%u %u\n", u, v);
    });
  });
  std::fclose(f);
  return Status::OK();
}

Status SerializeCondensed(const CondensedStorage& storage,
                          const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::ExecutionError("cannot open " + path + " for writing");
  }
  std::fprintf(f, "graphgen-condensed 1\n");
  std::fprintf(f, "%zu %zu\n", storage.NumRealNodes(),
               storage.NumVirtualNodes());
  // One line per source node: "<kind><index> <raw-ref>*".
  for (NodeId u = 0; u < storage.NumRealNodes(); ++u) {
    const auto& out = storage.OutEdges(NodeRef::Real(u));
    if (out.empty() && !storage.IsDeleted(u)) continue;
    std::fprintf(f, "r%u%s", u, storage.IsDeleted(u) ? " D" : "");
    for (NodeRef r : out) std::fprintf(f, " %" PRIu32, r.raw());
    std::fputc('\n', f);
  }
  for (uint32_t v = 0; v < storage.NumVirtualNodes(); ++v) {
    const auto& out = storage.OutEdges(NodeRef::Virtual(v));
    if (out.empty()) continue;
    std::fprintf(f, "v%u", v);
    for (NodeRef r : out) std::fprintf(f, " %" PRIu32, r.raw());
    std::fputc('\n', f);
  }
  std::fclose(f);
  return Status::OK();
}

Result<CondensedStorage> LoadCondensed(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return Status::NotFound("cannot open " + path);
  }
  char magic[64];
  int version = 0;
  if (std::fscanf(f, "%63s %d", magic, &version) != 2 ||
      std::string(magic) != "graphgen-condensed" || version != 1) {
    std::fclose(f);
    return Status::ParseError("not a graphgen condensed file: " + path);
  }
  size_t num_real = 0;
  size_t num_virtual = 0;
  if (std::fscanf(f, "%zu %zu", &num_real, &num_virtual) != 2) {
    std::fclose(f);
    return Status::ParseError("bad header in " + path);
  }
  CondensedStorage storage;
  storage.AddRealNodes(num_real);
  for (size_t v = 0; v < num_virtual; ++v) storage.AddVirtualNode();

  char kind = 0;
  while (std::fscanf(f, " %c", &kind) == 1) {
    uint32_t index = 0;
    if (std::fscanf(f, "%" SCNu32, &index) != 1) break;
    NodeRef from = kind == 'r' ? NodeRef::Real(index) : NodeRef::Virtual(index);
    // Remainder of the line: optional D marker + raw refs.
    int c = 0;
    while ((c = std::fgetc(f)) != EOF && c != '\n') {
      if (c == ' ') continue;
      if (c == 'D') {
        storage.DeleteRealNode(index);
        continue;
      }
      std::ungetc(c, f);
      uint32_t raw = 0;
      if (std::fscanf(f, "%" SCNu32, &raw) != 1) break;
      storage.AddEdge(from, NodeRef::FromRaw(raw));
    }
  }
  std::fclose(f);
  return storage;
}

}  // namespace graphgen
