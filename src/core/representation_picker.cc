#include "core/representation_picker.h"

#include "planner/preprocess.h"

namespace graphgen {

Representation ChooseRepresentation(const CondensedStorage& storage,
                                    double expand_threshold) {
  if (storage.NumVirtualNodes() == 0) return Representation::kExp;
  if (planner::ShouldExpand(storage, expand_threshold)) {
    return Representation::kExp;
  }
  return Representation::kBitmap2;
}

}  // namespace graphgen
