#ifndef GRAPHGEN_CORE_REPRESENTATION_PICKER_H_
#define GRAPHGEN_CORE_REPRESENTATION_PICKER_H_

#include "core/graphgen.h"
#include "graph/storage.h"

namespace graphgen {

/// The §6.5 policy: expand when the expanded graph is within
/// (1 + expand_threshold) of the condensed size; otherwise prefer
/// BITMAP-2 (feasible at any scale, supports multi-layer graphs).
Representation ChooseRepresentation(const CondensedStorage& storage,
                                    double expand_threshold);

}  // namespace graphgen

#endif  // GRAPHGEN_CORE_REPRESENTATION_PICKER_H_
