#include <vector>

#include "common/rng.h"
#include "dedup/dedup1_algorithms.h"
#include "dedup/detail.h"

namespace graphgen {

namespace {

using dedup_internal::HasDuplication;
using dedup_internal::InReals;
using dedup_internal::Intersect;
using dedup_internal::OutReals;
using dedup_internal::VirtualTargets;

}  // namespace

Result<Dedup1Graph> NaiveRealNodesFirst(const CondensedStorage& input,
                                        const DedupOptions& options) {
  if (!input.IsSingleLayer()) {
    return Status::InvalidArgument(
        "NaiveRealNodesFirst requires a single-layer condensed graph; "
        "use FlattenToSingleLayer or BITMAP-2 for multi-layer inputs");
  }
  Rng rng(options.seed);
  CondensedStorage g = input;
  g.RemoveParallelEdges();
  std::vector<NodeId> order =
      OrderRealNodes(input, options.ordering, options.seed);

  for (NodeId u : order) {
    // The processed set is local to u's virtual neighborhood (§5.2.1).
    std::vector<uint32_t> processed;
    for (uint32_t v : VirtualTargets(g, u)) {
      if (!g.HasEdge(NodeRef::Real(u), NodeRef::Virtual(v))) continue;
      // Duplication between v's paths and u's direct edges.
      for (NodeId x : dedup_internal::DirectTargets(g, u)) {
        std::vector<NodeId> outs = OutReals(g, v);
        if (x != u && std::binary_search(outs.begin(), outs.end(), x) &&
            g.HasEdge(NodeRef::Real(u), NodeRef::Virtual(v))) {
          g.RemoveEdge(NodeRef::Real(u), NodeRef::Real(x));
        }
      }
      // Duplication against the other virtual neighbors handled so far.
      for (uint32_t p : processed) {
        while (true) {
          std::vector<NodeId> shared_in =
              Intersect(InReals(g, v), InReals(g, p));
          std::vector<NodeId> shared_out =
              Intersect(OutReals(g, v), OutReals(g, p));
          if (!HasDuplication(shared_in, shared_out)) break;
          NodeId r = shared_out[rng.NextBounded(shared_out.size())];
          uint32_t side = g.InEdges(NodeRef::Virtual(v)).size() <=
                                  g.InEdges(NodeRef::Virtual(p)).size()
                              ? v
                              : p;
          if (!g.HasEdge(NodeRef::Virtual(side), NodeRef::Real(r))) {
            side = side == v ? p : v;
          }
          dedup_internal::DetachTargetWithCompensation(g, side, r);
        }
      }
      processed.push_back(v);
    }
  }
  g.CompactVirtualNodes();
  return Dedup1Graph(std::move(g));
}

}  // namespace graphgen
