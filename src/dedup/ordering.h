#ifndef GRAPHGEN_DEDUP_ORDERING_H_
#define GRAPHGEN_DEDUP_ORDERING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/storage.h"

namespace graphgen {

/// Processing orders for deduplication (paper Fig. 12b studies their
/// effect; RANDOM is the recommended default).
enum class NodeOrdering { kRandom, kId, kDegreeAsc, kDegreeDesc };

std::string_view NodeOrderingToString(NodeOrdering o);

/// Returns the virtual-node indices of `storage` in the requested order.
std::vector<uint32_t> OrderVirtualNodes(const CondensedStorage& storage,
                                        NodeOrdering ordering, uint64_t seed);

/// Returns the real-node ids of `storage` in the requested order
/// (logically deleted nodes are skipped).
std::vector<NodeId> OrderRealNodes(const CondensedStorage& storage,
                                   NodeOrdering ordering, uint64_t seed);

/// Options shared by all deduplication algorithms.
struct DedupOptions {
  NodeOrdering ordering = NodeOrdering::kRandom;
  uint64_t seed = 42;
  /// Worker threads for parallel algorithms (0 = hardware default).
  size_t threads = 0;
};

}  // namespace graphgen

#endif  // GRAPHGEN_DEDUP_ORDERING_H_
