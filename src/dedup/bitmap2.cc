#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/parallel.h"
#include "common/sync.h"
#include "dedup/bitmap_algorithms.h"

namespace graphgen {

namespace {

constexpr size_t kLockShards = 512;

/// Per-source greedy set-cover pass (§5.1.3). Virtual nodes are adopted in
/// decreasing order of the number of still-uncovered real targets they can
/// reach; adopted nodes receive bitmaps claiming exactly the fresh
/// targets, and useless top-level membership edges are queued for
/// deletion.
class Bitmap2Builder {
 public:
  Bitmap2Builder(const CondensedStorage& storage,
                 std::unordered_map<uint32_t, Bitmap>& local_bitmaps,
                 std::vector<uint32_t>& edge_deletions)
      : storage_(storage),
        local_(local_bitmaps),
        deletions_(edge_deletions) {}

  void Run(NodeId u) {
    u_ = u;
    covered_.clear();
    seen_virt_.clear();
    const auto& out = storage_.OutEdges(NodeRef::Real(u));
    std::vector<uint32_t> roots;
    for (NodeRef r : out) {
      if (r.is_real()) {
        if (r.index() != u) covered_.insert(r.index());
      } else if (seen_virt_.insert(r.index()).second) {
        roots.push_back(r.index());
      }
    }
    // Greedy over top-level virtual nodes: adopt the one reaching the most
    // uncovered targets; delete membership edges that contribute nothing.
    std::vector<bool> done(roots.size(), false);
    for (size_t round = 0; round < roots.size(); ++round) {
      size_t best_i = roots.size();
      size_t best_gain = 0;
      for (size_t i = 0; i < roots.size(); ++i) {
        if (done[i]) continue;
        size_t gain = CountUncoveredReachable(roots[i]);
        if (gain > best_gain) {
          best_gain = gain;
          best_i = i;
        }
      }
      if (best_i == roots.size()) {
        // Nothing left to gain: delete the remaining membership edges
        // ("there is no reason to traverse those", §5.1.3).
        for (size_t i = 0; i < roots.size(); ++i) {
          if (!done[i]) deletions_.push_back(roots[i]);
        }
        break;
      }
      done[best_i] = true;
      Explore(roots[best_i]);
    }
  }

 private:
  /// |reachable real targets of v not yet covered|, honoring already-
  /// explored virtual nodes (their contribution is fixed).
  size_t CountUncoveredReachable(uint32_t v) {
    size_t count = 0;
    scratch_visited_.clear();
    std::vector<uint32_t> stack = {v};
    scratch_visited_.insert(v);
    scratch_reals_.clear();
    while (!stack.empty()) {
      uint32_t w = stack.back();
      stack.pop_back();
      for (NodeRef r : storage_.OutEdges(NodeRef::Virtual(w))) {
        if (r.is_real()) {
          NodeId x = r.index();
          if (x != u_ && !covered_.contains(x) &&
              scratch_reals_.insert(x).second) {
            ++count;
          }
        } else if (!seen_virt_.contains(r.index()) &&
                   scratch_visited_.insert(r.index()).second) {
          stack.push_back(r.index());
        }
      }
    }
    return count;
  }

  /// Adopts virtual node v: installs its bitmap, claims fresh real
  /// targets, and recursively adopts the most profitable virtual children
  /// (the per-layer greedy of §5.1.3). v must already be in seen_virt_
  /// when it is a root; descendants are added here.
  void Explore(uint32_t v) {
    const auto& out = storage_.OutEdges(NodeRef::Virtual(v));
    Bitmap bm(out.size(), false);
    // Claim fresh real targets first.
    for (size_t i = 0; i < out.size(); ++i) {
      NodeRef r = out[i];
      if (r.is_real()) {
        NodeId x = r.index();
        if (x != u_ && covered_.insert(x).second) bm.Set(i);
      }
    }
    // Then descend into virtual children, best-gain first.
    while (true) {
      size_t best_i = out.size();
      size_t best_gain = 0;
      for (size_t i = 0; i < out.size(); ++i) {
        NodeRef r = out[i];
        if (!r.is_virtual() || seen_virt_.contains(r.index())) continue;
        size_t gain = CountUncoveredReachable(r.index());
        if (gain > best_gain) {
          best_gain = gain;
          best_i = i;
        }
      }
      if (best_i == out.size()) break;
      uint32_t w = out[best_i].index();
      seen_virt_.insert(w);
      bm.Set(best_i);
      Explore(w);
    }
    local_.emplace(v, std::move(bm));
  }

  const CondensedStorage& storage_;
  std::unordered_map<uint32_t, Bitmap>& local_;
  std::vector<uint32_t>& deletions_;
  NodeId u_ = 0;
  std::unordered_set<NodeId> covered_;
  std::unordered_set<uint32_t> seen_virt_;
  std::unordered_set<uint32_t> scratch_visited_;
  std::unordered_set<NodeId> scratch_reals_;
};

}  // namespace

Result<BitmapGraph> BuildBitmap2(const CondensedStorage& input,
                                 const DedupOptions& options) {
  CondensedStorage storage = input;
  storage.RemoveParallelEdges();
  BitmapGraph graph(std::move(storage));
  const CondensedStorage& s = graph.storage();
  const size_t n = s.NumRealNodes();

  std::vector<Mutex> locks(kLockShards);
  Mutex deletions_lock;
  // (u, v) membership edges to delete, applied after the parallel phase so
  // shared in-lists are never mutated concurrently.
  std::vector<std::pair<NodeId, uint32_t>> all_deletions;

  ParallelFor(
      n,
      [&](size_t begin, size_t end) {
        std::unordered_map<uint32_t, Bitmap> local;
        std::vector<uint32_t> deletions;
        Bitmap2Builder builder(s, local, deletions);
        for (size_t u = begin; u < end; ++u) {
          if (s.IsDeleted(static_cast<NodeId>(u))) continue;
          local.clear();
          deletions.clear();
          builder.Run(static_cast<NodeId>(u));
          for (auto& [v, bm] : local) {
            // All-ones bitmaps add no information beyond "traverse all";
            // skipping them is a pure memory optimization.
            if (!bm.AllOne()) {
              MutexLock guard(locks[v % kLockShards]);
              graph.MutableBitmapsFor(v).emplace(static_cast<NodeId>(u),
                                                 std::move(bm));
            }
          }
          if (!deletions.empty()) {
            MutexLock guard(deletions_lock);
            for (uint32_t v : deletions) {
              all_deletions.emplace_back(static_cast<NodeId>(u), v);
            }
          }
        }
      },
      options.threads);

  for (const auto& [u, v] : all_deletions) {
    graph.mutable_storage().RemoveEdge(NodeRef::Real(u), NodeRef::Virtual(v));
  }
  return graph;
}

}  // namespace graphgen
