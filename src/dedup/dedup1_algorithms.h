#ifndef GRAPHGEN_DEDUP_DEDUP1_ALGORITHMS_H_
#define GRAPHGEN_DEDUP_DEDUP1_ALGORITHMS_H_

#include "common/status.h"
#include "dedup/ordering.h"
#include "graph/storage.h"
#include "repr/dedup1_graph.h"

namespace graphgen {

/// The four DEDUP-1 deduplication algorithms of §5.2.1. Each consumes a
/// single-layer C-DUP condensed graph and produces an equivalent DEDUP-1
/// graph with at most one path between any two distinct real nodes.
/// All return kInvalidArgument for multi-layer inputs (the paper's
/// recommendation is to flatten first; see FlattenToSingleLayer).

/// Adds virtual nodes one at a time to an initially virtual-free graph,
/// resolving pairwise overlaps with the earlier-processed virtual nodes by
/// removing shared target edges (random pick, lower-in-degree side) and
/// compensating with direct edges.
Result<Dedup1Graph> NaiveVirtualNodesFirst(const CondensedStorage& input,
                                           const DedupOptions& options = {});

/// Processes real nodes in order; for each, removes all duplication among
/// that node's virtual neighborhood (processed-set local to the node).
Result<Dedup1Graph> NaiveRealNodesFirst(const CondensedStorage& input,
                                        const DedupOptions& options = {});

/// Greedy set-cover-inspired per-real-node deduplication: keeps the
/// virtual memberships with the best edge-saving benefit, detaches
/// overlapping targets, and falls back to direct edges (§5.2.1, Alg. 4).
Result<Dedup1Graph> GreedyRealNodesFirst(const CondensedStorage& input,
                                         const DedupOptions& options = {});

/// Greedy vertex-cover-inspired virtual-nodes-first deduplication: picks
/// which shared target to cut by the best benefit/cost ratio (§5.2.1,
/// Alg. 3).
Result<Dedup1Graph> GreedyVirtualNodesFirst(const CondensedStorage& input,
                                            const DedupOptions& options = {});

/// Converts a multi-layer condensed graph to single-layer by expanding all
/// virtual nodes in every layer but one (§5.2.2). Use only when this does
/// not blow up memory; the alternative for multi-layer graphs is BITMAP-2.
CondensedStorage FlattenToSingleLayer(const CondensedStorage& input);

}  // namespace graphgen

#endif  // GRAPHGEN_DEDUP_DEDUP1_ALGORITHMS_H_
