#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dedup/dedup2_builder.h"
#include "dedup/detail.h"

namespace graphgen {

namespace {

using dedup_internal::InReals;
using dedup_internal::OutReals;

/// Incorporates one input clique S into the partial DEDUP-2 graph,
/// preserving both invariants (see header).
void AddClique(Dedup2Graph& g, const std::vector<NodeId>& s) {
  if (s.size() < 2) return;

  // Most-overlapping existing virtual node.
  std::unordered_map<uint32_t, size_t> counts;
  for (NodeId x : s) {
    for (uint32_t v : g.MembershipOf(x)) ++counts[v];
  }
  uint32_t v1 = 0xFFFFFFFFu;
  size_t overlap = 0;
  for (const auto& [v, c] : counts) {
    if (c > overlap) {
      overlap = c;
      v1 = v;
    }
  }

  std::unordered_set<NodeId> sset(s.begin(), s.end());

  if (overlap >= 2) {
    // Split V1 into W1 = V1 ∩ S and W2 = V1 − S (if the overlap is
    // proper), joined by a virtual edge and inheriting V1's neighbors.
    std::vector<NodeId> m1 = g.Members(v1);
    std::vector<NodeId> w1set;
    std::vector<NodeId> w2set;
    for (NodeId x : m1) {
      (sset.contains(x) ? w1set : w2set).push_back(x);
    }
    uint32_t w1 = v1;
    if (!w2set.empty()) {
      std::vector<uint32_t> neighbors = g.VirtualNeighbors(v1);
      w1 = g.AddVirtualNode(w1set);
      uint32_t w2 = g.AddVirtualNode(w2set);
      g.AddVirtualEdge(w1, w2);
      for (uint32_t c : neighbors) {
        g.AddVirtualEdge(w1, c);
        g.AddVirtualEdge(w2, c);
        g.RemoveVirtualEdge(v1, c);
      }
      for (NodeId m : m1) g.DetachMember(v1, m);
    }

    // Remainder of S not covered by W1.
    std::vector<NodeId> remainder;
    {
      std::unordered_set<NodeId> w1lookup(w1set.begin(), w1set.end());
      for (NodeId x : s) {
        if (!w1lookup.contains(x)) remainder.push_back(x);
      }
    }
    if (!remainder.empty()) {
      // Nodes already adjacent to w1's neighborhood keep their existing
      // connections; the disjoint part W3 can safely attach to w1.
      std::unordered_set<NodeId> nu;
      for (uint32_t c : g.VirtualNeighbors(w1)) {
        for (NodeId y : g.Members(c)) nu.insert(y);
      }
      std::vector<NodeId> w3;
      std::unordered_set<NodeId> w1lookup(g.Members(w1).begin(),
                                          g.Members(w1).end());
      for (NodeId x : remainder) {
        if (nu.contains(x)) continue;
        // x may join W3 only if it is not yet connected to any W1 member
        // or already-chosen W3 member (otherwise w3--w1 would duplicate).
        bool clean = true;
        for (NodeId y : g.Members(w1)) {
          if (g.ExistsEdge(x, y)) {
            clean = false;
            break;
          }
        }
        if (clean) {
          for (NodeId y : w3) {
            if (g.ExistsEdge(x, y)) {
              clean = false;
              break;
            }
          }
        }
        if (clean) w3.push_back(x);
      }
      if (!w3.empty()) {
        uint32_t w3id = g.AddVirtualNode(w3);
        g.AddVirtualEdge(w3id, w1);
      }
      // Structure the remainder recursively (it is itself a clique) so
      // its internal pairs get covered by shared virtual nodes rather
      // than pair nodes. Strictly smaller than s, so this terminates.
      if (remainder.size() >= 2 && remainder.size() < s.size()) {
        AddClique(g, remainder);
      }
    }
  } else {
    // No significant overlap: cover the mutually fresh part of S with a
    // new virtual node.
    std::vector<NodeId> fresh;
    for (NodeId x : s) {
      bool clean = true;
      for (NodeId y : fresh) {
        if (g.ExistsEdge(x, y)) {
          clean = false;
          break;
        }
      }
      if (clean) fresh.push_back(x);
    }
    if (fresh.size() >= 2) g.AddVirtualNode(fresh);
    if (fresh.size() < s.size()) {
      std::vector<NodeId> leftover;
      std::unordered_set<NodeId> fresh_set(fresh.begin(), fresh.end());
      for (NodeId x : s) {
        if (!fresh_set.contains(x)) leftover.push_back(x);
      }
      if (leftover.size() >= 2 && leftover.size() < s.size()) {
        AddClique(g, leftover);
      }
    }
  }

  // Residual pairs (already-connected pairs no-op inside AddEdge).
  for (size_t i = 0; i < s.size(); ++i) {
    for (size_t j = i + 1; j < s.size(); ++j) {
      Status st = g.AddEdge(s[i], s[j]);
      (void)st;
    }
  }
}

}  // namespace

Result<Dedup2Graph> BuildDedup2(const CondensedStorage& input,
                                const DedupOptions& options) {
  if (!input.IsSingleLayer()) {
    return Status::InvalidArgument(
        "DEDUP-2 requires a single-layer condensed graph");
  }
  // DEDUP-2 is defined for symmetric graphs (<u->v> implies <v->u>).
  for (uint32_t v = 0; v < input.NumVirtualNodes(); ++v) {
    if (InReals(input, v) != OutReals(input, v)) {
      return Status::InvalidArgument(
          "DEDUP-2 requires a symmetric condensed graph (I(V) == O(V) for "
          "every virtual node); virtual node " +
          std::to_string(v) + " is asymmetric");
    }
  }

  Dedup2Graph g(input.NumRealNodes());
  g.properties() = input.properties();
  for (NodeId u = 0; u < input.NumRealNodes(); ++u) {
    if (input.IsDeleted(u)) {
      Status st = g.DeleteVertex(u);
      (void)st;
    }
  }

  std::vector<uint32_t> order =
      OrderVirtualNodes(input, options.ordering, options.seed);
  // Deduplicate clique processing: larger cliques benefit from going
  // first under kDegreeDesc; the option chooses.
  for (uint32_t vin : order) {
    AddClique(g, OutReals(input, vin));
  }

  // Direct input edges become pair virtual nodes (no-op when covered).
  for (NodeId u = 0; u < input.NumRealNodes(); ++u) {
    for (NodeRef r : input.OutEdges(NodeRef::Real(u))) {
      if (r.is_real() && r.index() != u) {
        Status st = g.AddEdge(u, r.index());
        (void)st;
      }
    }
  }
  return g;
}

}  // namespace graphgen
