#ifndef GRAPHGEN_DEDUP_DETAIL_H_
#define GRAPHGEN_DEDUP_DETAIL_H_

#include <algorithm>
#include <vector>

#include "graph/storage.h"

namespace graphgen::dedup_internal {

/// True if a directed path u_s -> ... -> v_t exists (u != v). Linear DFS
/// with early exit, used for "not already connected" compensation checks.
inline bool PathExists(const CondensedStorage& s, NodeId u, NodeId v) {
  if (u == v) return false;
  std::vector<NodeRef> stack(s.OutEdges(NodeRef::Real(u)).begin(),
                             s.OutEdges(NodeRef::Real(u)).end());
  while (!stack.empty()) {
    NodeRef r = stack.back();
    stack.pop_back();
    if (r.is_real()) {
      if (r.index() == v) return true;
      continue;
    }
    const auto& out = s.OutEdges(r);
    stack.insert(stack.end(), out.begin(), out.end());
  }
  return false;
}

/// Real targets O(V) of a single-layer virtual node (sorted, unique).
inline std::vector<NodeId> OutReals(const CondensedStorage& s, uint32_t v) {
  std::vector<NodeId> out;
  for (NodeRef r : s.OutEdges(NodeRef::Virtual(v))) {
    if (r.is_real()) out.push_back(r.index());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

/// Real sources I(V) of a single-layer virtual node (sorted, unique).
inline std::vector<NodeId> InReals(const CondensedStorage& s, uint32_t v) {
  std::vector<NodeId> in;
  for (NodeRef r : s.InEdges(NodeRef::Virtual(v))) {
    if (r.is_real()) in.push_back(r.index());
  }
  std::sort(in.begin(), in.end());
  in.erase(std::unique(in.begin(), in.end()), in.end());
  return in;
}

/// Sorted-vector intersection.
inline std::vector<NodeId> Intersect(const std::vector<NodeId>& a,
                                     const std::vector<NodeId>& b) {
  std::vector<NodeId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

/// Duplication test between two virtual nodes V and W of a single-layer
/// graph: a duplicate pair (u, x), u != x, exists iff u ∈ I(V)∩I(W) and
/// x ∈ O(V)∩O(W). (For symmetric graphs where I == O this reduces to the
/// paper's |O(V)∩O(W)| > 1 test.)
inline bool HasDuplication(const std::vector<NodeId>& shared_in,
                           const std::vector<NodeId>& shared_out) {
  if (shared_in.empty() || shared_out.empty()) return false;
  if (shared_in.size() > 1 || shared_out.size() > 1) return true;
  return shared_in[0] != shared_out[0];
}

/// Removes the edge V -> r and compensates: every real source w ∈ I(V)
/// that loses its only path to r gets a direct edge w -> r (§5.2.1, the
/// shared edge-removal step of the Virtual/Real-Nodes-First algorithms).
inline void DetachTargetWithCompensation(CondensedStorage& s, uint32_t v,
                                         NodeId r) {
  NodeRef vref = NodeRef::Virtual(v);
  if (!s.RemoveEdge(vref, NodeRef::Real(r))) return;
  for (NodeRef w : s.InEdges(vref)) {
    if (!w.is_real() || w.index() == r) continue;
    if (!PathExists(s, w.index(), r)) {
      s.AddEdge(w, NodeRef::Real(r));
    }
  }
}

/// Direct (real -> real) out-neighbors of u.
inline std::vector<NodeId> DirectTargets(const CondensedStorage& s, NodeId u) {
  std::vector<NodeId> out;
  for (NodeRef r : s.OutEdges(NodeRef::Real(u))) {
    if (r.is_real()) out.push_back(r.index());
  }
  return out;
}

/// Distinct virtual out-neighbors of u.
inline std::vector<uint32_t> VirtualTargets(const CondensedStorage& s,
                                            NodeId u) {
  std::vector<uint32_t> out;
  for (NodeRef r : s.OutEdges(NodeRef::Real(u))) {
    if (r.is_virtual()) out.push_back(r.index());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

/// Copies real nodes, direct real->real edges, properties, and deletion
/// marks of `input` — the "graph containing only the real nodes and no
/// virtual nodes" starting point of the Virtual-Nodes-First algorithms.
inline CondensedStorage CopyRealSkeleton(const CondensedStorage& input) {
  CondensedStorage g;
  g.AddRealNodes(input.NumRealNodes());
  for (NodeId u = 0; u < input.NumRealNodes(); ++u) {
    for (NodeRef r : input.OutEdges(NodeRef::Real(u))) {
      if (r.is_real()) g.AddEdge(NodeRef::Real(u), r);
    }
  }
  g.properties() = input.properties();
  for (NodeId u = 0; u < input.NumRealNodes(); ++u) {
    if (input.IsDeleted(u)) g.DeleteRealNode(u);
  }
  return g;
}

/// Removes duplicated logical edges between u's direct targets and the
/// virtual node v: if u ∈ I(v) and x ∈ O(v) while a direct edge u -> x
/// also exists, the direct edge is dropped (the virtual path is kept).
inline void DropDirectEdgesCoveredBy(CondensedStorage& g, uint32_t v) {
  std::vector<NodeId> outs = OutReals(g, v);
  for (NodeRef w : std::vector<NodeRef>(g.InEdges(NodeRef::Virtual(v)))) {
    if (!w.is_real()) continue;
    for (NodeId x : DirectTargets(g, w.index())) {
      if (x != w.index() &&
          std::binary_search(outs.begin(), outs.end(), x)) {
        g.RemoveEdge(w, NodeRef::Real(x));
      }
    }
  }
}

}  // namespace graphgen::dedup_internal

#endif  // GRAPHGEN_DEDUP_DETAIL_H_
