#include "dedup/ordering.h"

#include <algorithm>
#include <numeric>

#include "common/rng.h"

namespace graphgen {

std::string_view NodeOrderingToString(NodeOrdering o) {
  switch (o) {
    case NodeOrdering::kRandom: return "RAND";
    case NodeOrdering::kId: return "ID";
    case NodeOrdering::kDegreeAsc: return "ASC";
    case NodeOrdering::kDegreeDesc: return "DESC";
  }
  return "?";
}

std::vector<uint32_t> OrderVirtualNodes(const CondensedStorage& storage,
                                        NodeOrdering ordering, uint64_t seed) {
  std::vector<uint32_t> order(storage.NumVirtualNodes());
  std::iota(order.begin(), order.end(), 0u);
  switch (ordering) {
    case NodeOrdering::kId:
      break;
    case NodeOrdering::kRandom: {
      Rng rng(seed);
      rng.Shuffle(order);
      break;
    }
    case NodeOrdering::kDegreeAsc:
      std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
        return storage.OutEdges(NodeRef::Virtual(a)).size() <
               storage.OutEdges(NodeRef::Virtual(b)).size();
      });
      break;
    case NodeOrdering::kDegreeDesc:
      std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
        return storage.OutEdges(NodeRef::Virtual(a)).size() >
               storage.OutEdges(NodeRef::Virtual(b)).size();
      });
      break;
  }
  return order;
}

std::vector<NodeId> OrderRealNodes(const CondensedStorage& storage,
                                   NodeOrdering ordering, uint64_t seed) {
  std::vector<NodeId> order;
  order.reserve(storage.NumRealNodes());
  for (NodeId u = 0; u < storage.NumRealNodes(); ++u) {
    if (!storage.IsDeleted(u)) order.push_back(u);
  }
  switch (ordering) {
    case NodeOrdering::kId:
      break;
    case NodeOrdering::kRandom: {
      Rng rng(seed);
      rng.Shuffle(order);
      break;
    }
    case NodeOrdering::kDegreeAsc:
      std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
        return storage.OutEdges(NodeRef::Real(a)).size() <
               storage.OutEdges(NodeRef::Real(b)).size();
      });
      break;
    case NodeOrdering::kDegreeDesc:
      std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
        return storage.OutEdges(NodeRef::Real(a)).size() >
               storage.OutEdges(NodeRef::Real(b)).size();
      });
      break;
  }
  return order;
}

}  // namespace graphgen
