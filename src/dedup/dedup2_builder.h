#ifndef GRAPHGEN_DEDUP_DEDUP2_BUILDER_H_
#define GRAPHGEN_DEDUP_DEDUP2_BUILDER_H_

#include "common/status.h"
#include "dedup/ordering.h"
#include "graph/storage.h"
#include "repr/dedup2_graph.h"

namespace graphgen {

/// Builds the DEDUP-2 representation (§4.3, Appendix B) from a
/// single-layer *symmetric* condensed graph (one where I(V) = O(V) for
/// every virtual node, e.g. any co-occurrence graph).
///
/// The greedy algorithm processes input virtual nodes (cliques) one at a
/// time. For each incoming clique S it finds the existing virtual node V1
/// with the largest overlap; if the overlap is significant, V1 is split
/// into W1 = V1 ∩ S and W2 = V1 − W1 joined by a virtual-virtual edge
/// (inheriting V1's other virtual edges), the uncovered remainder of S
/// that is disjoint from W1's neighborhood becomes a new virtual node W3
/// linked to W1, and all residual uncovered pairs fall back to pair
/// virtual nodes (the Appendix's singleton mechanism). The two DEDUP-2
/// invariants are maintained at every step, which tests verify:
///  (1) |members(Va) ∩ members(Vb)| <= 1 for all virtual pairs, and
///  (2) virtual neighbors of any virtual node are pairwise disjoint and
///      disjoint from it.
/// Tip: NodeOrdering::kDegreeDesc (largest cliques first) produces far
/// more compact DEDUP-2 graphs on heavily overlapping inputs, because the
/// big shared substructures are split while little else is connected yet.
Result<Dedup2Graph> BuildDedup2(const CondensedStorage& input,
                                const DedupOptions& options = {});

}  // namespace graphgen

#endif  // GRAPHGEN_DEDUP_DEDUP2_BUILDER_H_
