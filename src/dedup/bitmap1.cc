#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/parallel.h"
#include "common/sync.h"
#include "dedup/bitmap_algorithms.h"

namespace graphgen {

namespace {

constexpr size_t kLockShards = 512;

/// Per-source DFS that fills local bitmaps using the first-visit policy:
/// each real target and each virtual node is traversable at most once per
/// source u (Algorithm 2, generalized to multi-layer inputs).
class Bitmap1Builder {
 public:
  Bitmap1Builder(const CondensedStorage& storage,
                 std::unordered_map<uint32_t, Bitmap>& local)
      : storage_(storage), local_(local) {}

  void Run(NodeId u) {
    u_ = u;
    seen_real_.clear();
    seen_virt_.clear();
    const auto& out = storage_.OutEdges(NodeRef::Real(u));
    // Direct real targets are claimed first; duplicates among them were
    // stripped by RemoveParallelEdges.
    std::vector<uint32_t> roots;
    for (NodeRef r : out) {
      if (r.is_real()) {
        if (r.index() != u) seen_real_.insert(r.index());
      } else if (seen_virt_.insert(r.index()).second) {
        roots.push_back(r.index());
      }
    }
    for (uint32_t v : roots) Explore(v);
  }

 private:
  void Explore(uint32_t v) {
    const auto& out = storage_.OutEdges(NodeRef::Virtual(v));
    Bitmap bm(out.size(), false);
    for (size_t i = 0; i < out.size(); ++i) {
      NodeRef r = out[i];
      if (r.is_real()) {
        NodeId x = r.index();
        if (x != u_ && seen_real_.insert(x).second) bm.Set(i);
      } else {
        uint32_t w = r.index();
        if (seen_virt_.insert(w).second) {
          bm.Set(i);
          Explore(w);
        }
      }
    }
    local_.emplace(v, std::move(bm));
  }

  const CondensedStorage& storage_;
  std::unordered_map<uint32_t, Bitmap>& local_;
  NodeId u_ = 0;
  std::unordered_set<NodeId> seen_real_;
  std::unordered_set<uint32_t> seen_virt_;
};

}  // namespace

Result<BitmapGraph> BuildBitmap1(const CondensedStorage& input,
                                 const DedupOptions& options) {
  CondensedStorage storage = input;
  storage.RemoveParallelEdges();
  BitmapGraph graph(std::move(storage));
  const CondensedStorage& s = graph.storage();
  const size_t n = s.NumRealNodes();

  std::vector<Mutex> locks(kLockShards);
  ParallelFor(
      n,
      [&](size_t begin, size_t end) {
        std::unordered_map<uint32_t, Bitmap> local;
        Bitmap1Builder builder(s, local);
        for (size_t u = begin; u < end; ++u) {
          if (s.IsDeleted(static_cast<NodeId>(u))) continue;
          local.clear();
          builder.Run(static_cast<NodeId>(u));
          for (auto& [v, bm] : local) {
            MutexLock guard(locks[v % kLockShards]);
            graph.MutableBitmapsFor(v).emplace(static_cast<NodeId>(u),
                                               std::move(bm));
          }
        }
      },
      options.threads);
  return graph;
}

}  // namespace graphgen
