#include <string>
#include <vector>

#include "common/rng.h"
#include "dedup/dedup1_algorithms.h"
#include "dedup/detail.h"

namespace graphgen {

namespace {

using dedup_internal::HasDuplication;
using dedup_internal::InReals;
using dedup_internal::Intersect;
using dedup_internal::OutReals;
using dedup_internal::VirtualTargets;

/// Resolves all duplication between the freshly added virtual node `nv`
/// and the rest of the partial graph by removing shared target edges one
/// at a time (§5.2.1, Naive Virtual Nodes First).
void ResolveAgainstPartialGraph(CondensedStorage& g, uint32_t nv, Rng& rng) {
  // Direct edges duplicated by nv's paths: keep the virtual path.
  dedup_internal::DropDirectEdgesCoveredBy(g, nv);

  // Candidate virtual nodes: those sharing at least one source with nv.
  std::vector<uint32_t> candidates;
  for (NodeId u : InReals(g, nv)) {
    for (uint32_t w : VirtualTargets(g, u)) {
      if (w != nv) candidates.push_back(w);
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  for (uint32_t cand : candidates) {
    while (true) {
      std::vector<NodeId> shared_in = Intersect(InReals(g, nv), InReals(g, cand));
      std::vector<NodeId> shared_out =
          Intersect(OutReals(g, nv), OutReals(g, cand));
      if (!HasDuplication(shared_in, shared_out)) break;
      // Random shared target; remove its edge from the side with the lower
      // in-degree (fewer compensation edges needed).
      NodeId r = shared_out[rng.NextBounded(shared_out.size())];
      uint32_t side =
          g.InEdges(NodeRef::Virtual(nv)).size() <=
                  g.InEdges(NodeRef::Virtual(cand)).size()
              ? nv
              : cand;
      // Make sure the chosen side actually has the edge (r may only be in
      // one side's list after earlier removals).
      if (!g.HasEdge(NodeRef::Virtual(side), NodeRef::Real(r))) {
        side = side == nv ? cand : nv;
      }
      dedup_internal::DetachTargetWithCompensation(g, side, r);
    }
  }
}

}  // namespace

Result<Dedup1Graph> NaiveVirtualNodesFirst(const CondensedStorage& input,
                                           const DedupOptions& options) {
  if (!input.IsSingleLayer()) {
    return Status::InvalidArgument(
        "NaiveVirtualNodesFirst requires a single-layer condensed graph; "
        "use FlattenToSingleLayer or BITMAP-2 for multi-layer inputs");
  }
  Rng rng(options.seed);
  CondensedStorage g = dedup_internal::CopyRealSkeleton(input);
  std::vector<uint32_t> order =
      OrderVirtualNodes(input, options.ordering, options.seed);
  for (uint32_t vin : order) {
    std::vector<NodeId> outs = OutReals(input, vin);
    std::vector<NodeId> ins = InReals(input, vin);
    if (outs.empty() && ins.empty()) continue;
    uint32_t nv = g.AddVirtualNode();
    for (NodeId u : ins) g.AddEdge(NodeRef::Real(u), NodeRef::Virtual(nv));
    for (NodeId x : outs) g.AddEdge(NodeRef::Virtual(nv), NodeRef::Real(x));
    ResolveAgainstPartialGraph(g, nv, rng);
  }
  g.CompactVirtualNodes();
  return Dedup1Graph(std::move(g));
}

}  // namespace graphgen
