#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dedup/dedup1_algorithms.h"
#include "dedup/detail.h"

namespace graphgen {

namespace {

using dedup_internal::DirectTargets;
using dedup_internal::OutReals;
using dedup_internal::PathExists;
using dedup_internal::VirtualTargets;

}  // namespace

Result<Dedup1Graph> GreedyRealNodesFirst(const CondensedStorage& input,
                                         const DedupOptions& options) {
  if (!input.IsSingleLayer()) {
    return Status::InvalidArgument(
        "GreedyRealNodesFirst requires a single-layer condensed graph; "
        "use FlattenToSingleLayer or BITMAP-2 for multi-layer inputs");
  }
  CondensedStorage g = input;
  g.RemoveParallelEdges();
  std::vector<NodeId> order =
      OrderRealNodes(input, options.ordering, options.seed);

  for (NodeId u : order) {
    // covered[x] = the virtual node through which u currently reaches x,
    // or kDirect when reached by a direct edge.
    constexpr uint32_t kDirect = 0xFFFFFFFFu;
    std::unordered_map<NodeId, uint32_t> covered;

    // Start from the direct edges (dropping exact duplicates).
    {
      std::vector<NodeId> direct = DirectTargets(g, u);
      for (NodeId x : direct) {
        if (x == u || covered.contains(x)) {
          g.RemoveEdge(NodeRef::Real(u), NodeRef::Real(x));
          continue;
        }
        covered.emplace(x, kDirect);
      }
    }

    std::vector<uint32_t> candidates = VirtualTargets(g, u);
    std::vector<bool> decided(candidates.size(), false);

    while (true) {
      // Greedy step: pick the candidate whose adoption saves the most
      // edges (new coverage minus estimated overlap-resolution cost).
      long best_benefit = 0;
      size_t best_i = candidates.size();
      for (size_t i = 0; i < candidates.size(); ++i) {
        if (decided[i]) continue;
        uint32_t v = candidates[i];
        long fresh = 0;
        long cost = 0;
        for (NodeId x : OutReals(g, v)) {
          if (x == u) continue;
          auto it = covered.find(x);
          if (it == covered.end()) {
            ++fresh;
          } else if (it->second == kDirect) {
            --cost;  // dropping the direct edge saves one edge
          } else {
            uint32_t w = it->second;
            size_t iv = g.InEdges(NodeRef::Virtual(v)).size();
            size_t iw = g.InEdges(NodeRef::Virtual(w)).size();
            cost += static_cast<long>(std::min(iv, iw)) - 1;
          }
        }
        // Not adopting v costs `fresh` direct edges minus the u->v edge we
        // would drop; adopting costs the overlap resolution.
        long benefit = (fresh - 1) - cost;
        if (fresh > 0 && benefit > best_benefit) {
          best_benefit = benefit;
          best_i = i;
        }
      }
      if (best_i == candidates.size()) break;

      uint32_t v = candidates[best_i];
      decided[best_i] = true;
      for (NodeId x : OutReals(g, v)) {
        if (x == u) continue;
        auto it = covered.find(x);
        if (it == covered.end()) {
          covered.emplace(x, v);
          continue;
        }
        if (it->second == kDirect) {
          // Keep the virtual path, drop the direct edge.
          g.RemoveEdge(NodeRef::Real(u), NodeRef::Real(x));
          it->second = v;
          continue;
        }
        // x reachable via both v and the earlier adoptee w: detach x from
        // the side with the lower in-degree and compensate (§5.2.1).
        uint32_t w = it->second;
        uint32_t side = g.InEdges(NodeRef::Virtual(v)).size() <=
                                g.InEdges(NodeRef::Virtual(w)).size()
                            ? v
                            : w;
        dedup_internal::DetachTargetWithCompensation(g, side, x);
        it->second = side == v ? w : v;
      }
    }

    // Candidates not adopted: drop u's membership edge and compensate the
    // lost (u, y) pairs with direct edges.
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (decided[i]) continue;
      uint32_t v = candidates[i];
      std::vector<NodeId> outs = OutReals(g, v);
      g.RemoveEdge(NodeRef::Real(u), NodeRef::Virtual(v));
      for (NodeId y : outs) {
        if (y == u) continue;
        if (!covered.contains(y) && !PathExists(g, u, y)) {
          g.AddEdge(NodeRef::Real(u), NodeRef::Real(y));
          covered.emplace(y, kDirect);
        }
      }
    }
  }
  g.CompactVirtualNodes();
  return Dedup1Graph(std::move(g));
}

}  // namespace graphgen
