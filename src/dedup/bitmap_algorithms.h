#ifndef GRAPHGEN_DEDUP_BITMAP_ALGORITHMS_H_
#define GRAPHGEN_DEDUP_BITMAP_ALGORITHMS_H_

#include "common/status.h"
#include "dedup/ordering.h"
#include "graph/storage.h"
#include "repr/bitmap_graph.h"

namespace graphgen {

/// BITMAP-1 (§5.1.1): the simple preprocessing pass. For every real node
/// u, a DFS from u_s installs a bitmap at each virtual node visited; a bit
/// is 1 iff following that out-edge reaches something not yet seen on
/// behalf of u. Keeps every condensed edge of C-DUP (minus exact parallel
/// duplicates) and installs the largest number of bitmaps.
///
/// Works for single- and multi-layer graphs: bits over virtual-virtual
/// out-edges suppress re-entering already-visited virtual nodes.
Result<BitmapGraph> BuildBitmap1(const CondensedStorage& input,
                                 const DedupOptions& options = {});

/// BITMAP-2 (§5.1.3): greedy-set-cover preprocessing. For each real node
/// u, virtual out-neighbors are adopted in decreasing order of how many
/// still-uncovered real targets they reach; adopted nodes get a bitmap
/// whose set bits claim exactly the fresh targets, and top-level edges to
/// virtual nodes contributing nothing are deleted. Multi-layer graphs are
/// handled by applying the same principle at each layer (§5.1.3).
/// Parallelized over real nodes (chunked, §5.1.3).
Result<BitmapGraph> BuildBitmap2(const CondensedStorage& input,
                                 const DedupOptions& options = {});

}  // namespace graphgen

#endif  // GRAPHGEN_DEDUP_BITMAP_ALGORITHMS_H_
