#include <algorithm>
#include <unordered_map>
#include <vector>

#include "dedup/dedup1_algorithms.h"
#include "dedup/detail.h"

namespace graphgen {

namespace {

using dedup_internal::HasDuplication;
using dedup_internal::InReals;
using dedup_internal::Intersect;
using dedup_internal::OutReals;
using dedup_internal::VirtualTargets;

/// One (real node, side) removal option considered by the vertex-cover
/// style heuristic (§5.2.1, Greedy Virtual Nodes First).
struct RemovalOption {
  uint32_t side = 0;   // virtual node losing the edge
  NodeId target = 0;   // shared real target r
  double ratio = -1.0;
};

}  // namespace

Result<Dedup1Graph> GreedyVirtualNodesFirst(const CondensedStorage& input,
                                            const DedupOptions& options) {
  if (!input.IsSingleLayer()) {
    return Status::InvalidArgument(
        "GreedyVirtualNodesFirst requires a single-layer condensed graph; "
        "use FlattenToSingleLayer or BITMAP-2 for multi-layer inputs");
  }
  CondensedStorage g = dedup_internal::CopyRealSkeleton(input);
  std::vector<uint32_t> order =
      OrderVirtualNodes(input, options.ordering, options.seed);

  for (uint32_t vin : order) {
    std::vector<NodeId> outs = OutReals(input, vin);
    std::vector<NodeId> ins = InReals(input, vin);
    if (outs.empty() && ins.empty()) continue;
    uint32_t nv = g.AddVirtualNode();
    for (NodeId u : ins) g.AddEdge(NodeRef::Real(u), NodeRef::Virtual(nv));
    for (NodeId x : outs) g.AddEdge(NodeRef::Virtual(nv), NodeRef::Real(x));

    dedup_internal::DropDirectEdgesCoveredBy(g, nv);

    // Virtual nodes that share at least one source with nv.
    std::vector<uint32_t> relevant;
    for (NodeId u : InReals(g, nv)) {
      for (uint32_t w : VirtualTargets(g, u)) {
        if (w != nv) relevant.push_back(w);
      }
    }
    std::sort(relevant.begin(), relevant.end());
    relevant.erase(std::unique(relevant.begin(), relevant.end()),
                   relevant.end());

    bool more_dedup = true;
    while (more_dedup) {
      more_dedup = false;
      // Gather all current overlaps C_i = O(nv) ∩ O(V_i) with duplication.
      std::vector<NodeId> nv_out = OutReals(g, nv);
      std::vector<NodeId> nv_in = InReals(g, nv);
      std::vector<std::pair<uint32_t, std::vector<NodeId>>> conflicts;
      for (uint32_t w : relevant) {
        std::vector<NodeId> shared_in = Intersect(nv_in, InReals(g, w));
        std::vector<NodeId> shared_out = Intersect(nv_out, OutReals(g, w));
        if (HasDuplication(shared_in, shared_out)) {
          conflicts.emplace_back(w, std::move(shared_out));
        }
      }
      if (conflicts.empty()) break;
      more_dedup = true;

      // Count, for each shared target r, how many conflicts it appears in:
      // removing r from O(nv) resolves all of them at once (the "higher
      // benefit" case of the paper).
      std::unordered_map<NodeId, int> appearance;
      for (const auto& [w, shared] : conflicts) {
        for (NodeId r : shared) ++appearance[r];
      }

      RemovalOption best;
      const double nv_cost =
          static_cast<double>(g.InEdges(NodeRef::Virtual(nv)).size());
      for (const auto& [w, shared] : conflicts) {
        const double w_cost =
            static_cast<double>(g.InEdges(NodeRef::Virtual(w)).size());
        for (NodeId r : shared) {
          // Option A: remove r from O(nv) — benefit = #conflicts containing
          // r, cost ~ in-degree of nv (compensation edges).
          double ratio_a = static_cast<double>(appearance[r]) / (nv_cost + 1);
          if (ratio_a > best.ratio) best = {nv, r, ratio_a};
          // Option B: remove r from O(w) — benefit 1, cost ~ in-degree of w.
          double ratio_b = 1.0 / (w_cost + 1);
          if (ratio_b > best.ratio) best = {w, r, ratio_b};
        }
      }
      if (best.ratio < 0) break;
      dedup_internal::DetachTargetWithCompensation(g, best.side, best.target);
    }
  }
  g.CompactVirtualNodes();
  return Dedup1Graph(std::move(g));
}

CondensedStorage FlattenToSingleLayer(const CondensedStorage& input) {
  CondensedStorage g = input;
  // Repeatedly expand the deepest-layer virtual nodes (those with virtual
  // in-edges but no virtual out-edges) until no virtual-virtual edge
  // remains.
  bool changed = true;
  while (changed && !g.IsSingleLayer()) {
    changed = false;
    for (uint32_t v = 0; v < g.NumVirtualNodes(); ++v) {
      const auto& out = g.OutEdges(NodeRef::Virtual(v));
      bool has_virtual_out = false;
      for (NodeRef r : out) {
        if (r.is_virtual()) {
          has_virtual_out = true;
          break;
        }
      }
      if (has_virtual_out) continue;
      bool has_virtual_in = false;
      for (NodeRef r : g.InEdges(NodeRef::Virtual(v))) {
        if (r.is_virtual()) {
          has_virtual_in = true;
          break;
        }
      }
      if (!has_virtual_in) continue;
      g.ExpandVirtualNode(v);
      changed = true;
    }
  }
  g.CompactVirtualNodes();
  return g;
}

}  // namespace graphgen
