#include "gen/relational_generators.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/rng.h"

namespace graphgen::gen {

namespace {

using rel::ColumnDef;
using rel::Row;
using rel::Schema;
using rel::Table;
using rel::Value;
using rel::ValueType;

size_t ClampedNormal(Rng& rng, double mean, double sd, size_t lo, size_t hi) {
  double raw = rng.NextNormal(mean, sd);
  return static_cast<size_t>(
      std::clamp(raw, static_cast<double>(lo), static_cast<double>(hi)));
}

Table MakeEntityTable(const std::string& name, const std::string& prefix,
                      int64_t first_id, size_t count) {
  Table t(name, Schema({{"id", ValueType::kInt64},
                        {"name", ValueType::kString}}));
  t.Reserve(count);
  for (size_t i = 0; i < count; ++i) {
    int64_t id = first_id + static_cast<int64_t>(i);
    t.AppendUnchecked({Value(id), Value(prefix + std::to_string(id))});
  }
  return t;
}

}  // namespace

GeneratedDatabase MakeDblpLike(size_t num_authors, size_t num_pubs,
                               double authors_per_pub, uint64_t seed) {
  Rng rng(seed);
  GeneratedDatabase out;
  out.db.PutTable(MakeEntityTable("Author", "author_", 0, num_authors));
  out.db.PutTable(MakeEntityTable("Pub", "pub_", 0, num_pubs));

  Table ap("AuthorPub", Schema({{"aid", ValueType::kInt64},
                                {"pid", ValueType::kInt64}}));
  std::unordered_set<int64_t> authors;
  for (size_t p = 0; p < num_pubs; ++p) {
    size_t k = ClampedNormal(rng, authors_per_pub, authors_per_pub / 2.0, 1,
                             std::max<size_t>(1, num_authors));
    authors.clear();
    while (authors.size() < k) {
      // Zipf-skewed author choice: prolific authors write more papers.
      int64_t a = static_cast<int64_t>(
          rng.NextZipf(num_authors, 1.1) - 1);
      authors.insert(a);
    }
    for (int64_t a : authors) {
      ap.AppendUnchecked({Value(a), Value(static_cast<int64_t>(p))});
    }
  }
  out.db.PutTable(std::move(ap));
  out.db.AnalyzeAll();
  out.datalog =
      "Nodes(ID, Name) :- Author(ID, Name).\n"
      "Edges(ID1, ID2) :- AuthorPub(ID1, P), AuthorPub(ID2, P).\n";
  out.description = "DBLP-like co-author dataset";
  return out;
}

GeneratedDatabase MakeImdbLike(size_t num_actors, size_t num_movies,
                               double cast_per_movie, uint64_t seed) {
  Rng rng(seed);
  GeneratedDatabase out;
  out.db.PutTable(MakeEntityTable("name", "person_", 0, num_actors));
  out.db.PutTable(MakeEntityTable("title", "movie_", 0, num_movies));

  Table ci("cast_info", Schema({{"person_id", ValueType::kInt64},
                                {"movie_id", ValueType::kInt64}}));
  std::unordered_set<int64_t> cast;
  for (size_t m = 0; m < num_movies; ++m) {
    size_t k = ClampedNormal(rng, cast_per_movie, cast_per_movie / 2.0, 2,
                             std::max<size_t>(2, num_actors));
    cast.clear();
    while (cast.size() < k) {
      cast.insert(static_cast<int64_t>(rng.NextZipf(num_actors, 1.05) - 1));
    }
    for (int64_t a : cast) {
      ci.AppendUnchecked({Value(a), Value(static_cast<int64_t>(m))});
    }
  }
  out.db.PutTable(std::move(ci));
  out.db.AnalyzeAll();
  out.datalog =
      "Nodes(ID, Name) :- name(ID, Name).\n"
      "Edges(ID1, ID2) :- cast_info(ID1, M), cast_info(ID2, M).\n";
  out.description = "IMDB-like co-actor dataset";
  return out;
}

GeneratedDatabase MakeTpchLike(size_t num_customers, size_t num_orders,
                               size_t num_parts, double lines_per_order,
                               uint64_t seed) {
  Rng rng(seed);
  GeneratedDatabase out;
  out.db.PutTable(MakeEntityTable("Customer", "customer_", 0, num_customers));

  Table orders("Orders", Schema({{"orderkey", ValueType::kInt64},
                                 {"custkey", ValueType::kInt64}}));
  orders.Reserve(num_orders);
  for (size_t o = 0; o < num_orders; ++o) {
    orders.AppendUnchecked(
        {Value(static_cast<int64_t>(o)),
         Value(static_cast<int64_t>(rng.NextBounded(num_customers)))});
  }
  out.db.PutTable(std::move(orders));

  Table lineitem("LineItem", Schema({{"orderkey", ValueType::kInt64},
                                     {"partkey", ValueType::kInt64}}));
  std::unordered_set<int64_t> parts;
  for (size_t o = 0; o < num_orders; ++o) {
    size_t k = ClampedNormal(rng, lines_per_order, lines_per_order / 2.0, 1,
                             std::max<size_t>(1, num_parts));
    parts.clear();
    while (parts.size() < k) {
      parts.insert(static_cast<int64_t>(rng.NextZipf(num_parts, 1.1) - 1));
    }
    for (int64_t p : parts) {
      lineitem.AppendUnchecked({Value(static_cast<int64_t>(o)), Value(p)});
    }
  }
  out.db.PutTable(std::move(lineitem));
  out.db.AnalyzeAll();
  out.datalog =
      "Nodes(ID, Name) :- Customer(ID, Name).\n"
      "Edges(ID1, ID2) :- Orders(OK1, ID1), LineItem(OK1, PK), "
      "LineItem(OK2, PK), Orders(OK2, ID2).\n";
  out.description = "TPC-H-like co-purchase dataset";
  return out;
}

GeneratedDatabase MakeUniversity(size_t num_students, size_t num_instructors,
                                 size_t num_courses,
                                 double courses_per_student, uint64_t seed) {
  Rng rng(seed);
  GeneratedDatabase out;
  // Disjoint id ranges so heterogeneous graphs are well-defined.
  const int64_t instructor_base = static_cast<int64_t>(num_students);
  out.db.PutTable(MakeEntityTable("Student", "student_", 0, num_students));
  out.db.PutTable(MakeEntityTable("Instructor", "instructor_",
                                  instructor_base, num_instructors));

  Table took("TookCourse", Schema({{"sid", ValueType::kInt64},
                                   {"course", ValueType::kInt64}}));
  std::unordered_set<int64_t> courses;
  for (size_t st = 0; st < num_students; ++st) {
    size_t k = ClampedNormal(rng, courses_per_student,
                             courses_per_student / 2.0, 1,
                             std::max<size_t>(1, num_courses));
    courses.clear();
    while (courses.size() < k) {
      courses.insert(static_cast<int64_t>(rng.NextBounded(num_courses)));
    }
    for (int64_t c : courses) {
      took.AppendUnchecked({Value(static_cast<int64_t>(st)), Value(c)});
    }
  }
  out.db.PutTable(std::move(took));

  Table taught("TaughtCourse", Schema({{"iid", ValueType::kInt64},
                                       {"course", ValueType::kInt64}}));
  for (size_t c = 0; c < num_courses; ++c) {
    int64_t i = instructor_base +
                static_cast<int64_t>(rng.NextBounded(num_instructors));
    taught.AppendUnchecked({Value(i), Value(static_cast<int64_t>(c))});
  }
  out.db.PutTable(std::move(taught));
  out.db.AnalyzeAll();
  out.datalog =
      "Nodes(ID, Name) :- Student(ID, Name).\n"
      "Edges(ID1, ID2) :- TookCourse(ID1, C), TookCourse(ID2, C).\n";
  out.description = "University (db-book.com style) dataset";
  return out;
}

GeneratedDatabase MakeSingleSelectivity(size_t num_rows, double selectivity,
                                        uint64_t seed) {
  Rng rng(seed);
  GeneratedDatabase out;
  const size_t distinct =
      std::max<size_t>(1, static_cast<size_t>(selectivity *
                                              static_cast<double>(num_rows)));
  const size_t num_entities = num_rows / 2 + 1;
  out.db.PutTable(MakeEntityTable("Entity", "e_", 0, num_entities));

  Table r("R", Schema({{"id", ValueType::kInt64},
                       {"attr", ValueType::kInt64}}));
  r.Reserve(num_rows);
  for (size_t i = 0; i < num_rows; ++i) {
    r.AppendUnchecked(
        {Value(static_cast<int64_t>(rng.NextBounded(num_entities))),
         Value(static_cast<int64_t>(rng.NextBounded(distinct)))});
  }
  out.db.PutTable(std::move(r));
  out.db.AnalyzeAll();
  out.datalog =
      "Nodes(ID, Name) :- Entity(ID, Name).\n"
      "Edges(ID1, ID2) :- R(ID1, A), R(ID2, A).\n";
  out.description = "single-layer selectivity dataset (selectivity=" +
                    std::to_string(selectivity) + ")";
  return out;
}

GeneratedDatabase MakeLayeredSelectivity(size_t rows_a, size_t rows_b,
                                         double selectivity_a,
                                         double selectivity_b,
                                         uint64_t seed) {
  Rng rng(seed);
  GeneratedDatabase out;
  const size_t distinct_a = std::max<size_t>(
      1, static_cast<size_t>(selectivity_a * static_cast<double>(rows_a)));
  const size_t distinct_b = std::max<size_t>(
      1, static_cast<size_t>(selectivity_b * static_cast<double>(rows_b)));
  const size_t num_entities = rows_a / 2 + 1;
  out.db.PutTable(MakeEntityTable("Entity", "e_", 0, num_entities));

  Table a("A", Schema({{"j1", ValueType::kInt64},
                       {"id", ValueType::kInt64}}));
  a.Reserve(rows_a);
  for (size_t i = 0; i < rows_a; ++i) {
    a.AppendUnchecked(
        {Value(static_cast<int64_t>(rng.NextBounded(distinct_a))),
         Value(static_cast<int64_t>(rng.NextBounded(num_entities)))});
  }
  out.db.PutTable(std::move(a));

  Table b("B", Schema({{"j1", ValueType::kInt64},
                       {"j2", ValueType::kInt64}}));
  b.Reserve(rows_b);
  for (size_t i = 0; i < rows_b; ++i) {
    b.AppendUnchecked(
        {Value(static_cast<int64_t>(rng.NextBounded(distinct_a))),
         Value(static_cast<int64_t>(rng.NextBounded(distinct_b)))});
  }
  out.db.PutTable(std::move(b));
  out.db.AnalyzeAll();
  out.datalog =
      "Nodes(ID, Name) :- Entity(ID, Name).\n"
      "Edges(ID1, ID2) :- A(J1, ID1), B(J1, J2), B(J3, J2), A(J3, ID2).\n";
  out.description = "layered selectivity dataset";
  return out;
}

}  // namespace graphgen::gen
