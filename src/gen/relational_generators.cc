#include "gen/relational_generators.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/rng.h"

namespace graphgen::gen {

namespace {

using rel::ColumnDef;
using rel::ColumnVector;
using rel::Schema;
using rel::Table;
using rel::Value;
using rel::ValueType;

size_t ClampedNormal(Rng& rng, double mean, double sd, size_t lo, size_t hi) {
  double raw = rng.NextNormal(mean, sd);
  return static_cast<size_t>(
      std::clamp(raw, static_cast<double>(lo), static_cast<double>(hi)));
}

// Generators build full typed vectors and adopt them as columns in one
// move — no per-cell Value dispatch on the ingest path.
Table MakeEntityTable(const std::string& name, const std::string& prefix,
                      int64_t first_id, size_t count) {
  std::vector<int64_t> ids;
  std::vector<std::string> names;
  ids.reserve(count);
  names.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    int64_t id = first_id + static_cast<int64_t>(i);
    ids.push_back(id);
    names.push_back(prefix + std::to_string(id));
  }
  std::vector<ColumnVector> cols;
  cols.push_back(ColumnVector::OfInt64(std::move(ids)));
  cols.push_back(ColumnVector::OfStrings(names));
  return Table::FromColumns(name,
                            Schema({{"id", ValueType::kInt64},
                                    {"name", ValueType::kString}}),
                            std::move(cols));
}

// A two-int64-column link table (the shape of every relationship table in
// the evaluation schemas).
Table MakeLinkTable(const std::string& name, const std::string& col_a,
                    const std::string& col_b, std::vector<int64_t> a,
                    std::vector<int64_t> b) {
  std::vector<ColumnVector> cols;
  cols.push_back(ColumnVector::OfInt64(std::move(a)));
  cols.push_back(ColumnVector::OfInt64(std::move(b)));
  return Table::FromColumns(name,
                            Schema({{col_a, ValueType::kInt64},
                                    {col_b, ValueType::kInt64}}),
                            std::move(cols));
}

}  // namespace

GeneratedDatabase MakeDblpLike(size_t num_authors, size_t num_pubs,
                               double authors_per_pub, uint64_t seed) {
  Rng rng(seed);
  GeneratedDatabase out;
  out.db.PutTable(MakeEntityTable("Author", "author_", 0, num_authors));
  out.db.PutTable(MakeEntityTable("Pub", "pub_", 0, num_pubs));

  std::vector<int64_t> aids;
  std::vector<int64_t> pids;
  std::unordered_set<int64_t> authors;
  for (size_t p = 0; p < num_pubs; ++p) {
    size_t k = ClampedNormal(rng, authors_per_pub, authors_per_pub / 2.0, 1,
                             std::max<size_t>(1, num_authors));
    authors.clear();
    while (authors.size() < k) {
      // Zipf-skewed author choice: prolific authors write more papers.
      int64_t a = static_cast<int64_t>(
          rng.NextZipf(num_authors, 1.1) - 1);
      authors.insert(a);
    }
    for (int64_t a : authors) {
      aids.push_back(a);
      pids.push_back(static_cast<int64_t>(p));
    }
  }
  out.db.PutTable(
      MakeLinkTable("AuthorPub", "aid", "pid", std::move(aids),
                    std::move(pids)));
  out.db.AnalyzeAll();
  out.datalog =
      "Nodes(ID, Name) :- Author(ID, Name).\n"
      "Edges(ID1, ID2) :- AuthorPub(ID1, P), AuthorPub(ID2, P).\n";
  out.description = "DBLP-like co-author dataset";
  return out;
}

GeneratedDatabase MakeImdbLike(size_t num_actors, size_t num_movies,
                               double cast_per_movie, uint64_t seed) {
  Rng rng(seed);
  GeneratedDatabase out;
  out.db.PutTable(MakeEntityTable("name", "person_", 0, num_actors));
  out.db.PutTable(MakeEntityTable("title", "movie_", 0, num_movies));

  std::vector<int64_t> person_ids;
  std::vector<int64_t> movie_ids;
  std::unordered_set<int64_t> cast;
  for (size_t m = 0; m < num_movies; ++m) {
    size_t k = ClampedNormal(rng, cast_per_movie, cast_per_movie / 2.0, 2,
                             std::max<size_t>(2, num_actors));
    cast.clear();
    while (cast.size() < k) {
      cast.insert(static_cast<int64_t>(rng.NextZipf(num_actors, 1.05) - 1));
    }
    for (int64_t a : cast) {
      person_ids.push_back(a);
      movie_ids.push_back(static_cast<int64_t>(m));
    }
  }
  out.db.PutTable(MakeLinkTable("cast_info", "person_id", "movie_id",
                                std::move(person_ids), std::move(movie_ids)));
  out.db.AnalyzeAll();
  out.datalog =
      "Nodes(ID, Name) :- name(ID, Name).\n"
      "Edges(ID1, ID2) :- cast_info(ID1, M), cast_info(ID2, M).\n";
  out.description = "IMDB-like co-actor dataset";
  return out;
}

GeneratedDatabase MakeTpchLike(size_t num_customers, size_t num_orders,
                               size_t num_parts, double lines_per_order,
                               uint64_t seed) {
  Rng rng(seed);
  GeneratedDatabase out;
  out.db.PutTable(MakeEntityTable("Customer", "customer_", 0, num_customers));

  std::vector<int64_t> orderkeys;
  std::vector<int64_t> custkeys;
  orderkeys.reserve(num_orders);
  custkeys.reserve(num_orders);
  for (size_t o = 0; o < num_orders; ++o) {
    orderkeys.push_back(static_cast<int64_t>(o));
    custkeys.push_back(static_cast<int64_t>(rng.NextBounded(num_customers)));
  }
  out.db.PutTable(MakeLinkTable("Orders", "orderkey", "custkey",
                                std::move(orderkeys), std::move(custkeys)));

  std::vector<int64_t> line_orders;
  std::vector<int64_t> line_parts;
  std::unordered_set<int64_t> parts;
  for (size_t o = 0; o < num_orders; ++o) {
    size_t k = ClampedNormal(rng, lines_per_order, lines_per_order / 2.0, 1,
                             std::max<size_t>(1, num_parts));
    parts.clear();
    while (parts.size() < k) {
      parts.insert(static_cast<int64_t>(rng.NextZipf(num_parts, 1.1) - 1));
    }
    for (int64_t p : parts) {
      line_orders.push_back(static_cast<int64_t>(o));
      line_parts.push_back(p);
    }
  }
  out.db.PutTable(MakeLinkTable("LineItem", "orderkey", "partkey",
                                std::move(line_orders),
                                std::move(line_parts)));
  out.db.AnalyzeAll();
  out.datalog =
      "Nodes(ID, Name) :- Customer(ID, Name).\n"
      "Edges(ID1, ID2) :- Orders(OK1, ID1), LineItem(OK1, PK), "
      "LineItem(OK2, PK), Orders(OK2, ID2).\n";
  out.description = "TPC-H-like co-purchase dataset";
  return out;
}

GeneratedDatabase MakeUniversity(size_t num_students, size_t num_instructors,
                                 size_t num_courses,
                                 double courses_per_student, uint64_t seed) {
  Rng rng(seed);
  GeneratedDatabase out;
  // Disjoint id ranges so heterogeneous graphs are well-defined.
  const int64_t instructor_base = static_cast<int64_t>(num_students);
  out.db.PutTable(MakeEntityTable("Student", "student_", 0, num_students));
  out.db.PutTable(MakeEntityTable("Instructor", "instructor_",
                                  instructor_base, num_instructors));

  std::vector<int64_t> sids;
  std::vector<int64_t> taken;
  std::unordered_set<int64_t> courses;
  for (size_t st = 0; st < num_students; ++st) {
    size_t k = ClampedNormal(rng, courses_per_student,
                             courses_per_student / 2.0, 1,
                             std::max<size_t>(1, num_courses));
    courses.clear();
    while (courses.size() < k) {
      courses.insert(static_cast<int64_t>(rng.NextBounded(num_courses)));
    }
    for (int64_t c : courses) {
      sids.push_back(static_cast<int64_t>(st));
      taken.push_back(c);
    }
  }
  out.db.PutTable(MakeLinkTable("TookCourse", "sid", "course",
                                std::move(sids), std::move(taken)));

  std::vector<int64_t> iids;
  std::vector<int64_t> taught;
  iids.reserve(num_courses);
  taught.reserve(num_courses);
  for (size_t c = 0; c < num_courses; ++c) {
    iids.push_back(instructor_base +
                   static_cast<int64_t>(rng.NextBounded(num_instructors)));
    taught.push_back(static_cast<int64_t>(c));
  }
  out.db.PutTable(MakeLinkTable("TaughtCourse", "iid", "course",
                                std::move(iids), std::move(taught)));
  out.db.AnalyzeAll();
  out.datalog =
      "Nodes(ID, Name) :- Student(ID, Name).\n"
      "Edges(ID1, ID2) :- TookCourse(ID1, C), TookCourse(ID2, C).\n";
  out.description = "University (db-book.com style) dataset";
  return out;
}

GeneratedDatabase MakeSingleSelectivity(size_t num_rows, double selectivity,
                                        uint64_t seed) {
  Rng rng(seed);
  GeneratedDatabase out;
  const size_t distinct =
      std::max<size_t>(1, static_cast<size_t>(selectivity *
                                              static_cast<double>(num_rows)));
  const size_t num_entities = num_rows / 2 + 1;
  out.db.PutTable(MakeEntityTable("Entity", "e_", 0, num_entities));

  std::vector<int64_t> ids;
  std::vector<int64_t> attrs;
  ids.reserve(num_rows);
  attrs.reserve(num_rows);
  for (size_t i = 0; i < num_rows; ++i) {
    ids.push_back(static_cast<int64_t>(rng.NextBounded(num_entities)));
    attrs.push_back(static_cast<int64_t>(rng.NextBounded(distinct)));
  }
  out.db.PutTable(
      MakeLinkTable("R", "id", "attr", std::move(ids), std::move(attrs)));
  out.db.AnalyzeAll();
  out.datalog =
      "Nodes(ID, Name) :- Entity(ID, Name).\n"
      "Edges(ID1, ID2) :- R(ID1, A), R(ID2, A).\n";
  out.description = "single-layer selectivity dataset (selectivity=" +
                    std::to_string(selectivity) + ")";
  return out;
}

GeneratedDatabase MakeLayeredSelectivity(size_t rows_a, size_t rows_b,
                                         double selectivity_a,
                                         double selectivity_b,
                                         uint64_t seed) {
  Rng rng(seed);
  GeneratedDatabase out;
  const size_t distinct_a = std::max<size_t>(
      1, static_cast<size_t>(selectivity_a * static_cast<double>(rows_a)));
  const size_t distinct_b = std::max<size_t>(
      1, static_cast<size_t>(selectivity_b * static_cast<double>(rows_b)));
  const size_t num_entities = rows_a / 2 + 1;
  out.db.PutTable(MakeEntityTable("Entity", "e_", 0, num_entities));

  std::vector<int64_t> a_j1;
  std::vector<int64_t> a_id;
  a_j1.reserve(rows_a);
  a_id.reserve(rows_a);
  for (size_t i = 0; i < rows_a; ++i) {
    a_j1.push_back(static_cast<int64_t>(rng.NextBounded(distinct_a)));
    a_id.push_back(static_cast<int64_t>(rng.NextBounded(num_entities)));
  }
  out.db.PutTable(
      MakeLinkTable("A", "j1", "id", std::move(a_j1), std::move(a_id)));

  std::vector<int64_t> b_j1;
  std::vector<int64_t> b_j2;
  b_j1.reserve(rows_b);
  b_j2.reserve(rows_b);
  for (size_t i = 0; i < rows_b; ++i) {
    b_j1.push_back(static_cast<int64_t>(rng.NextBounded(distinct_a)));
    b_j2.push_back(static_cast<int64_t>(rng.NextBounded(distinct_b)));
  }
  out.db.PutTable(
      MakeLinkTable("B", "j1", "j2", std::move(b_j1), std::move(b_j2)));
  out.db.AnalyzeAll();
  out.datalog =
      "Nodes(ID, Name) :- Entity(ID, Name).\n"
      "Edges(ID1, ID2) :- A(J1, ID1), B(J1, J2), B(J3, J2), A(J3, ID2).\n";
  out.description = "layered selectivity dataset";
  return out;
}

}  // namespace graphgen::gen
