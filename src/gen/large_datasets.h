#ifndef GRAPHGEN_GEN_LARGE_DATASETS_H_
#define GRAPHGEN_GEN_LARGE_DATASETS_H_

#include <string>
#include <vector>

#include "graph/storage.h"

namespace graphgen::gen {

/// The large evaluation datasets of Table 3 / Table 6 (§6.2). Layered_1/2
/// are multi-layer condensed graphs (TPCH-shaped join chains), Single_1/2
/// are single-layer graphs with controlled join selectivity. Generated
/// directly in condensed form with the Table 6 selectivities; node counts
/// are scaled by `scale`.
enum class LargeDatasetId { kLayered1, kLayered2, kSingle1, kSingle2 };

std::string_view LargeDatasetName(LargeDatasetId id);

/// The Table 6 join selectivities for each dataset (for harness output).
std::string LargeDatasetSelectivities(LargeDatasetId id);

CondensedStorage MakeLargeDataset(LargeDatasetId id, double scale = 0.02,
                                  uint64_t seed = 42);

std::vector<LargeDatasetId> Table3Datasets();

}  // namespace graphgen::gen

#endif  // GRAPHGEN_GEN_LARGE_DATASETS_H_
