#include "gen/large_datasets.h"

#include <algorithm>

#include "gen/condensed_generator.h"

namespace graphgen::gen {

std::string_view LargeDatasetName(LargeDatasetId id) {
  switch (id) {
    case LargeDatasetId::kLayered1: return "Layered_1";
    case LargeDatasetId::kLayered2: return "Layered_2";
    case LargeDatasetId::kSingle1: return "Single_1";
    case LargeDatasetId::kSingle2: return "Single_2";
  }
  return "?";
}

std::string LargeDatasetSelectivities(LargeDatasetId id) {
  switch (id) {
    case LargeDatasetId::kLayered1: return "0.05 -> 0.1 -> 0.05";
    case LargeDatasetId::kLayered2: return "0.2 -> 0.1 -> 0.2";
    case LargeDatasetId::kSingle1: return "0.25";
    case LargeDatasetId::kSingle2: return "0.01";
  }
  return "?";
}

CondensedStorage MakeLargeDataset(LargeDatasetId id, double scale,
                                  uint64_t seed) {
  auto scaled = [&](size_t full) {
    return std::max<size_t>(
        32, static_cast<size_t>(static_cast<double>(full) * scale));
  };
  switch (id) {
    case LargeDatasetId::kLayered1: {
      // Table 6: 1.3M condensed nodes, 4M edges; joins 0.05/0.1/0.05.
      LayeredGenOptions o;
      o.seed = seed;
      o.num_real = scaled(1000000);
      o.layer_sizes = {scaled(200000), scaled(100000)};
      o.avg_real_memberships = 2.0;
      o.avg_layer_fanout = 2.0;
      return GenerateLayeredCondensed(o);
    }
    case LargeDatasetId::kLayered2: {
      // Table 6: 1.5M nodes, 4M edges; higher selectivity (0.2/0.1/0.2)
      // means more, smaller virtual nodes.
      LayeredGenOptions o;
      o.seed = seed;
      o.num_real = scaled(1000000);
      o.layer_sizes = {scaled(400000), scaled(100000)};
      o.avg_real_memberships = 2.0;
      o.avg_layer_fanout = 1.5;
      return GenerateLayeredCondensed(o);
    }
    case LargeDatasetId::kSingle1: {
      // Table 6: 1.25M nodes, 2M edges, selectivity 0.25: many small
      // virtual nodes (avg 4 members).
      CondensedGenOptions o;
      o.seed = seed;
      o.num_real = scaled(1000000);
      o.num_virtual = scaled(250000);
      o.mean_size = 4.0;
      o.sd_size = 1.5;
      return GenerateCondensed(o);
    }
    case LargeDatasetId::kSingle2: {
      // Table 6: 10M nodes, 20M edges, selectivity 0.01: few huge cliques
      // (avg 100 members) — the dataset where EXP and C-DUP PageRank DNF.
      CondensedGenOptions o;
      o.seed = seed;
      o.num_real = scaled(10000000);
      o.num_virtual = std::max<size_t>(16, scaled(100000));
      o.mean_size = 100.0;
      o.sd_size = 25.0;
      return GenerateCondensed(o);
    }
  }
  return CondensedStorage();
}

std::vector<LargeDatasetId> Table3Datasets() {
  return {LargeDatasetId::kLayered1, LargeDatasetId::kLayered2,
          LargeDatasetId::kSingle1, LargeDatasetId::kSingle2};
}

}  // namespace graphgen::gen
