#include "gen/condensed_generator.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/rng.h"

namespace graphgen::gen {

namespace {

// Adds real node u as a (symmetric) member of virtual node v.
void AddMember(CondensedStorage& g, NodeId u, uint32_t v) {
  g.AddEdge(NodeRef::Real(u), NodeRef::Virtual(v));
  g.AddEdge(NodeRef::Virtual(v), NodeRef::Real(u));
}

}  // namespace

CondensedStorage GenerateCondensed(const CondensedGenOptions& options) {
  Rng rng(options.seed);
  CondensedStorage g;
  const size_t nr = options.num_real;
  g.AddRealNodes(nr);

  // Step 1: draw all virtual node sizes.
  std::vector<size_t> sizes(options.num_virtual);
  for (auto& s : sizes) {
    double raw = rng.NextNormal(options.mean_size, options.sd_size);
    s = static_cast<size_t>(std::clamp(
        raw, 2.0, static_cast<double>(std::max<size_t>(2, nr))));
  }

  // Degrees drive preferential attachment (membership counts).
  std::vector<uint32_t> degree(nr, 0);
  std::unordered_set<NodeId> chosen;

  auto assign_random = [&](uint32_t v, size_t size) {
    chosen.clear();
    while (chosen.size() < size && chosen.size() < nr) {
      chosen.insert(static_cast<NodeId>(rng.NextBounded(nr)));
    }
    for (NodeId u : chosen) {
      AddMember(g, u, v);
      ++degree[u];
    }
  };

  // Preferential assignment: seed from a random anchor's co-members with
  // probability proportional to squared degree (Appendix C.1 step 4),
  // filling up with random picks.
  auto assign_preferential = [&](uint32_t v, size_t size) {
    chosen.clear();
    // Anchor: pick among a few random candidates the one with max degree.
    NodeId anchor = static_cast<NodeId>(rng.NextBounded(nr));
    for (int t = 0; t < 4; ++t) {
      NodeId c = static_cast<NodeId>(rng.NextBounded(nr));
      if (degree[c] > degree[anchor]) anchor = c;
    }
    chosen.insert(anchor);
    // Collect anchor's co-members (neighbors in the condensed sense).
    std::vector<NodeId> pool;
    for (NodeRef r : g.OutEdges(NodeRef::Real(anchor))) {
      if (!r.is_virtual()) continue;
      for (NodeRef m : g.OutEdges(r)) {
        if (m.is_real() && m.index() != anchor) pool.push_back(m.index());
      }
    }
    // Weighted keep: higher-degree co-members are more likely to join.
    double total = 0;
    for (NodeId u : pool) {
      total += static_cast<double>(degree[u]) * degree[u];
    }
    for (NodeId u : pool) {
      if (chosen.size() >= size) break;
      double w = total > 0 ? static_cast<double>(degree[u]) * degree[u] / total
                           : 0.5;
      if (rng.NextBool(std::min(1.0, w * static_cast<double>(size)))) {
        chosen.insert(u);
      }
    }
    while (chosen.size() < size && chosen.size() < nr) {
      chosen.insert(static_cast<NodeId>(rng.NextBounded(nr)));
    }
    for (NodeId u : chosen) {
      AddMember(g, u, v);
      ++degree[u];
    }
  };

  const size_t initial = static_cast<size_t>(
      std::ceil(options.initial_random_fraction *
                static_cast<double>(options.num_virtual)));
  for (uint32_t v = 0; v < options.num_virtual; ++v) {
    uint32_t id = g.AddVirtualNode();
    if (v < initial || rng.NextBool(options.random_assignment_probability)) {
      assign_random(id, sizes[v]);
    } else {
      assign_preferential(id, sizes[v]);
    }
  }
  return g;
}

CondensedStorage GenerateLayeredCondensed(const LayeredGenOptions& options) {
  Rng rng(options.seed);
  CondensedStorage g;
  const size_t nr = options.num_real;
  g.AddRealNodes(nr);

  // Create all layers.
  std::vector<std::vector<uint32_t>> layers(options.layer_sizes.size());
  for (size_t l = 0; l < options.layer_sizes.size(); ++l) {
    layers[l].resize(options.layer_sizes[l]);
    for (auto& v : layers[l]) v = g.AddVirtualNode();
  }

  auto poisson_like = [&](double avg) {
    // Clamped normal approximation keeps the generator fast.
    double raw = rng.NextNormal(avg, avg / 3.0 + 0.5);
    return static_cast<size_t>(std::max(1.0, std::round(raw)));
  };

  // Reals attach to layer 0 (as sources) and receive from the last layer.
  std::unordered_set<uint32_t> picks;
  for (NodeId u = 0; u < nr; ++u) {
    size_t m = poisson_like(options.avg_real_memberships);
    picks.clear();
    while (picks.size() < std::min(m, layers[0].size())) {
      picks.insert(static_cast<uint32_t>(rng.NextBounded(layers[0].size())));
    }
    for (uint32_t i : picks) {
      g.AddEdge(NodeRef::Real(u), NodeRef::Virtual(layers[0][i]));
    }
  }
  // Virtual-virtual edges between consecutive layers.
  for (size_t l = 0; l + 1 < layers.size(); ++l) {
    for (uint32_t v : layers[l]) {
      size_t m = poisson_like(options.avg_layer_fanout);
      picks.clear();
      while (picks.size() < std::min(m, layers[l + 1].size())) {
        picks.insert(
            static_cast<uint32_t>(rng.NextBounded(layers[l + 1].size())));
      }
      for (uint32_t i : picks) {
        g.AddEdge(NodeRef::Virtual(v), NodeRef::Virtual(layers[l + 1][i]));
      }
    }
  }
  // Last layer attaches back to reals.
  for (uint32_t v : layers.back()) {
    size_t m = poisson_like(options.avg_real_memberships);
    std::unordered_set<NodeId> targets;
    while (targets.size() < std::min(m, static_cast<size_t>(nr))) {
      targets.insert(static_cast<NodeId>(rng.NextBounded(nr)));
    }
    for (NodeId u : targets) {
      g.AddEdge(NodeRef::Virtual(v), NodeRef::Real(u));
    }
  }
  return g;
}

}  // namespace graphgen::gen
