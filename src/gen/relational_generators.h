#ifndef GRAPHGEN_GEN_RELATIONAL_GENERATORS_H_
#define GRAPHGEN_GEN_RELATIONAL_GENERATORS_H_

#include <cstdint>
#include <string>

#include "relational/database.h"

namespace graphgen::gen {

/// A generated database together with the canonical extraction query the
/// paper runs on it.
struct GeneratedDatabase {
  rel::Database db;
  std::string datalog;      // the paper's extraction query for this schema
  std::string description;  // human-readable summary
};

/// DBLP-like schema (Fig. 15a): Author(id, name), Pub(pid, title),
/// AuthorPub(aid, pid). The canonical query is the co-authors graph [Q1].
/// `authors_per_pub` controls virtual-node sizes (the real DBLP averages
/// ~3; larger values make the co-author join large-output).
GeneratedDatabase MakeDblpLike(size_t num_authors, size_t num_pubs,
                               double authors_per_pub, uint64_t seed = 1);

/// IMDB-like schema (Fig. 15b): name(id, person), title(id, name),
/// cast_info(person_id, movie_id). Canonical query: co-actors graph.
GeneratedDatabase MakeImdbLike(size_t num_actors, size_t num_movies,
                               double cast_per_movie, uint64_t seed = 2);

/// TPC-H-like schema (Fig. 15c): Customer(custkey, name),
/// Orders(orderkey, custkey), LineItem(orderkey, partkey). Canonical
/// query [Q2]: customers who bought the same part. Orders/LineItem joins
/// are key-FK; the part_key join is large-output.
GeneratedDatabase MakeTpchLike(size_t num_customers, size_t num_orders,
                               size_t num_parts, double lines_per_order,
                               uint64_t seed = 3);

/// University schema (db-book.com, used for UNIV in Table 1 and [Q3]):
/// Student(id, name), Instructor(id, name), TookCourse(sid, course),
/// TaughtCourse(iid, course). Canonical query: students who took the
/// same course. Student/instructor ids are disjoint ranges so [Q3]'s
/// heterogeneous graph is well-defined.
GeneratedDatabase MakeUniversity(size_t num_students, size_t num_instructors,
                                 size_t num_courses,
                                 double courses_per_student,
                                 uint64_t seed = 4);

/// Single-layer selectivity-controlled dataset (Appendix C.2,
/// Single_1/Single_2): one table R(id, attr) with
/// selectivity = distinct(attr) / |R|; the query joins R with itself on
/// attr. Lower selectivity => denser hidden graph.
GeneratedDatabase MakeSingleSelectivity(size_t num_rows, double selectivity,
                                        uint64_t seed = 5);

/// Layered selectivity-controlled dataset (Appendix C.2, Layered_1/2):
/// tables A(j1, id) and B(j1, j2) joined A ⋈ B ⋈ B ⋈ A like the TPCH
/// chain, with per-join selectivities (distinct/|table|).
GeneratedDatabase MakeLayeredSelectivity(size_t rows_a, size_t rows_b,
                                         double selectivity_a,
                                         double selectivity_b,
                                         uint64_t seed = 6);

}  // namespace graphgen::gen

#endif  // GRAPHGEN_GEN_RELATIONAL_GENERATORS_H_
