#include "gen/small_datasets.h"

#include <algorithm>

#include "gen/condensed_generator.h"

namespace graphgen::gen {

std::string_view SmallDatasetName(SmallDatasetId id) {
  switch (id) {
    case SmallDatasetId::kDblp: return "DBLP";
    case SmallDatasetId::kImdb: return "IMDB";
    case SmallDatasetId::kSynthetic1: return "Synthetic_1";
    case SmallDatasetId::kSynthetic2: return "Synthetic_2";
    case SmallDatasetId::kS1: return "S1";
    case SmallDatasetId::kS2: return "S2";
    case SmallDatasetId::kN1: return "N1";
    case SmallDatasetId::kN2: return "N2";
  }
  return "?";
}

CondensedStorage MakeSmallDataset(SmallDatasetId id, double scale,
                                  uint64_t seed) {
  auto scaled = [&](size_t full) {
    return std::max<size_t>(
        16, static_cast<size_t>(static_cast<double>(full) * scale));
  };
  CondensedGenOptions o;
  o.seed = seed;
  switch (id) {
    case SmallDatasetId::kDblp:
      // Table 2: 523,525 real / 410,000 virtual / avg size 2.
      o.num_real = scaled(523525);
      o.num_virtual = scaled(410000);
      o.mean_size = 2.4;
      o.sd_size = 1.0;
      break;
    case SmallDatasetId::kImdb:
      // Table 2: 439,639 real / 100,000 virtual / avg size 10.
      o.num_real = scaled(439639);
      o.num_virtual = scaled(100000);
      o.mean_size = 10.0;
      o.sd_size = 4.0;
      break;
    case SmallDatasetId::kSynthetic1:
      // Table 2: 20,000 real / 200,000 virtual / avg size 7.
      o.num_real = scaled(200000) / 10;
      o.num_virtual = scaled(200000);
      o.mean_size = 7.0;
      o.sd_size = 3.0;
      break;
    case SmallDatasetId::kSynthetic2:
      // Table 2: 200,000 real / 1,000 virtual / avg size 94 (huge
      // overlapping cliques).
      o.num_real = scaled(200000);
      o.num_virtual = std::max<size_t>(
          8, static_cast<size_t>(1000 * scale * 10) / 10);
      o.mean_size = 94.0;
      o.sd_size = 30.0;
      // Strong preferential attachment: later cliques heavily overlap
      // earlier ones (the Fig. 6 regime where DEDUP-2's virtual-virtual
      // edges pay off).
      o.initial_random_fraction = 0.3;
      o.random_assignment_probability = 0.05;
      break;
    case SmallDatasetId::kS1:
      // Table 5: 50,000 real / 100 virtual; EXP ~20M edges => cliques of
      // several hundred. Scaled-down cliques keep the density ratio.
      o.num_real = scaled(50000);
      o.num_virtual = std::max<size_t>(8, static_cast<size_t>(100));
      o.mean_size = std::max(20.0, 446.0 * scale * 2);
      o.sd_size = o.mean_size / 6;
      break;
    case SmallDatasetId::kS2:
      o.num_real = scaled(50000);
      o.num_virtual = std::max<size_t>(8, static_cast<size_t>(100));
      o.mean_size = std::max(40.0, 1900.0 * scale * 2);
      o.sd_size = o.mean_size / 6;
      break;
    case SmallDatasetId::kN1:
      // Table 5: 80,000 real / 4,000 virtual, fixed clique size.
      o.num_real = scaled(80000);
      o.num_virtual = scaled(4000);
      o.mean_size = std::max(20.0, 200.0 * scale * 2);
      o.sd_size = o.mean_size / 6;
      break;
    case SmallDatasetId::kN2:
      // Table 5: 140,000 real / 10,000 virtual.
      o.num_real = scaled(140000);
      o.num_virtual = scaled(10000);
      o.mean_size = std::max(20.0, 200.0 * scale * 2);
      o.sd_size = o.mean_size / 6;
      break;
  }
  return GenerateCondensed(o);
}

std::vector<SmallDatasetId> Table2Datasets() {
  return {SmallDatasetId::kDblp, SmallDatasetId::kImdb,
          SmallDatasetId::kSynthetic1, SmallDatasetId::kSynthetic2};
}

std::vector<SmallDatasetId> GiraphDatasets() {
  return {SmallDatasetId::kS1, SmallDatasetId::kS2, SmallDatasetId::kN1,
          SmallDatasetId::kN2, SmallDatasetId::kImdb};
}

}  // namespace graphgen::gen
