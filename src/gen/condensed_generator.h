#ifndef GRAPHGEN_GEN_CONDENSED_GENERATOR_H_
#define GRAPHGEN_GEN_CONDENSED_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "graph/storage.h"

namespace graphgen::gen {

/// Parameters of the Appendix C.1 synthetic condensed-graph generator
/// (Barabási–Albert-flavoured preferential attachment over virtual-node
/// memberships).
struct CondensedGenOptions {
  size_t num_real = 1000;
  size_t num_virtual = 500;
  /// Virtual node sizes are drawn from Normal(mean_size, sd_size),
  /// clamped to [2, num_real].
  double mean_size = 5.0;
  double sd_size = 2.0;
  /// Fraction of virtual nodes assigned purely at random up front
  /// (Appendix C.1 step 3).
  double initial_random_fraction = 0.15;
  /// Probability that a later virtual node is also assigned at random
  /// (Appendix C.1 step 4).
  double random_assignment_probability = 0.35;
  uint64_t seed = 42;
};

/// Generates a single-layer symmetric condensed graph (I(V) = O(V) for
/// every virtual node) with preferential-attachment-style membership:
/// high-degree real nodes are more likely to join new virtual nodes,
/// which preserves the local densities (overlapping cliques) of real
/// co-occurrence networks — the structure deduplication must cope with.
CondensedStorage GenerateCondensed(const CondensedGenOptions& options);

/// Parameters for multi-layer synthetic condensed graphs (the Layered_*
/// datasets of §6.2 / Appendix C.2).
struct LayeredGenOptions {
  size_t num_real = 10000;
  /// Number of virtual nodes in each layer, outermost first. Must have
  /// >= 2 layers; reals attach to layer 0 and the last layer attaches back
  /// to reals, mirroring the TPCH chain of Fig. 5a.
  std::vector<size_t> layer_sizes = {500, 100};
  /// Average memberships per real node (edges real -> layer 0 and
  /// last layer -> real).
  double avg_real_memberships = 4.0;
  /// Average out-edges from a virtual node to the next layer.
  double avg_layer_fanout = 3.0;
  uint64_t seed = 42;
};

/// Generates a multi-layer condensed graph with virtual-virtual edges.
CondensedStorage GenerateLayeredCondensed(const LayeredGenOptions& options);

}  // namespace graphgen::gen

#endif  // GRAPHGEN_GEN_CONDENSED_GENERATOR_H_
