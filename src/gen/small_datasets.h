#ifndef GRAPHGEN_GEN_SMALL_DATASETS_H_
#define GRAPHGEN_GEN_SMALL_DATASETS_H_

#include <string>
#include <vector>

#include "graph/storage.h"

namespace graphgen::gen {

/// The four small evaluation datasets of Table 2, plus the Giraph
/// datasets S1/S2/N1/N2 of Table 5. Generated with the Appendix C.1
/// condensed-graph generator using the paper's published shape statistics
/// (node counts scaled by `scale`; the paper ran at scale 1.0 on a
/// 24-core/64 GB machine).
enum class SmallDatasetId {
  kDblp,        // many small virtual nodes (avg size 2)
  kImdb,        // avg virtual size 10
  kSynthetic1,  // 10x more virtual nodes than reals, avg size 7
  kSynthetic2,  // few huge overlapping cliques (avg size 94)
  kS1,          // Giraph: fixed nodes, moderate clique size
  kS2,          // Giraph: fixed nodes, large clique size
  kN1,          // Giraph: more nodes, fixed clique size
  kN2,          // Giraph: even more nodes, fixed clique size
};

std::string_view SmallDatasetName(SmallDatasetId id);

/// Generates the dataset. Deterministic for a given (id, scale, seed).
CondensedStorage MakeSmallDataset(SmallDatasetId id, double scale = 0.1,
                                  uint64_t seed = 42);

/// The four Table 2 datasets in order (DBLP, IMDB, Synthetic_1/2).
std::vector<SmallDatasetId> Table2Datasets();
/// The five Table 4/5 datasets in order (S1, S2, N1, N2, IMDB).
std::vector<SmallDatasetId> GiraphDatasets();

}  // namespace graphgen::gen

#endif  // GRAPHGEN_GEN_SMALL_DATASETS_H_
