#include "algos/degree.h"

#include "vertexcentric/vertex_centric.h"

namespace graphgen {

namespace {

class DegreeExecutor : public Executor {
 public:
  explicit DegreeExecutor(std::vector<uint64_t>* out) : out_(out) {}

  void Compute(VertexContext& ctx) override {
    uint64_t d;
    if (ctx.has_flat()) {
      // Flat spans are exact (distinct, live), so degree is span length.
      d = ctx.NeighborSpan().size();
    } else {
      d = 0;
      ctx.ForEachNeighbor([&](NodeId) { ++d; });
    }
    (*out_)[ctx.id()] = d;
    ctx.VoteToHalt();
  }

 private:
  std::vector<uint64_t>* out_;
};

}  // namespace

std::vector<uint64_t> ComputeDegrees(const Graph& graph, size_t threads,
                                     TraversalPath path) {
  std::vector<uint64_t> degrees(graph.NumVertices(), 0);
  DegreeExecutor executor(&degrees);
  VertexCentric vc(&graph, threads, path);
  vc.Run(&executor);
  return degrees;
}

}  // namespace graphgen
