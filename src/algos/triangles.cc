#include "algos/triangles.h"

#include <algorithm>
#include <atomic>
#include <span>
#include <vector>

#include "algos/intersect.h"
#include "algos/orientation.h"
#include "common/parallel.h"

namespace graphgen {

namespace {

/// Span fast path: forward counting over a degree-ordered orientation.
/// Every triangle has exactly one vertex from which both others are
/// higher-ranked, so it is counted once from that root; degree ordering
/// bounds out-fanouts by the degeneracy. Intersections use a per-thread
/// bit-packed mark bitmap instead of list merges: the root's
/// out-neighborhood is flagged once, then every wedge closes with a
/// single bit test — half the memory touches of a merge, no branch
/// misprediction, and 8x denser than a byte mark array.
uint64_t CountTrianglesSpan(const Graph& graph) {
  const detail::OrientedCsr csr = detail::BuildOrientedCsr(graph);
  const size_t n = csr.order.size();
  std::atomic<uint64_t> total{0};
  ParallelForRanges(
      BalancedRanges(n,
                     [&](size_t r) {
                       return uint64_t{1} +
                              csr.Out(static_cast<NodeId>(r)).size();
                     }),
      [&](size_t begin, size_t end) {
        detail::NeighborBitmap bm(n);
        uint64_t local = 0;
        for (size_t r = begin; r < end; ++r) {
          const std::span<const NodeId> nu = csr.Out(static_cast<NodeId>(r));
          for (NodeId s : nu) bm.Set(s);
          for (NodeId s : nu) {
            local += detail::IntersectBitmapCount(bm, csr.Out(s));
          }
          bm.Clear(nu);
        }
        total.fetch_add(local, std::memory_order_relaxed);
      });
  return total.load();
}

}  // namespace

uint64_t CountTriangles(const Graph& graph, TraversalPath path) {
  if (UseSpanPath(graph, path)) return CountTrianglesSpan(graph);

  const size_t n = graph.NumVertices();
  // Materialize sorted adjacency restricted to higher-id neighbors; each
  // triangle u < v < w is then counted exactly once.
  std::vector<std::vector<NodeId>> higher(n);
  ParallelFor(n, [&](size_t begin, size_t end) {
    for (size_t u = begin; u < end; ++u) {
      if (!graph.VertexExists(static_cast<NodeId>(u))) continue;
      graph.ForEachNeighbor(static_cast<NodeId>(u), [&](NodeId v) {
        if (v > u) higher[u].push_back(v);
      });
      std::sort(higher[u].begin(), higher[u].end());
      higher[u].erase(std::unique(higher[u].begin(), higher[u].end()),
                      higher[u].end());
    }
  });
  std::atomic<uint64_t> total{0};
  ParallelFor(n, [&](size_t begin, size_t end) {
    uint64_t local = 0;
    for (size_t u = begin; u < end; ++u) {
      const auto& nu = higher[u];
      for (NodeId v : nu) {
        const auto& nv = higher[v];
        // |higher(u) ∩ higher(v)| via merge.
        size_t i = 0;
        size_t j = 0;
        while (i < nu.size() && j < nv.size()) {
          if (nu[i] < nv[j]) {
            ++i;
          } else if (nu[i] > nv[j]) {
            ++j;
          } else {
            ++local;
            ++i;
            ++j;
          }
        }
      }
    }
    total.fetch_add(local, std::memory_order_relaxed);
  });
  return total.load();
}

}  // namespace graphgen
