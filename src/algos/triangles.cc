#include "algos/triangles.h"

#include <algorithm>
#include <atomic>
#include <vector>

#include "common/parallel.h"

namespace graphgen {

uint64_t CountTriangles(const Graph& graph) {
  const size_t n = graph.NumVertices();
  // Materialize sorted adjacency restricted to higher-id neighbors; each
  // triangle u < v < w is then counted exactly once.
  std::vector<std::vector<NodeId>> higher(n);
  ParallelFor(n, [&](size_t begin, size_t end) {
    for (size_t u = begin; u < end; ++u) {
      if (!graph.VertexExists(static_cast<NodeId>(u))) continue;
      graph.ForEachNeighbor(static_cast<NodeId>(u), [&](NodeId v) {
        if (v > u) higher[u].push_back(v);
      });
      std::sort(higher[u].begin(), higher[u].end());
      higher[u].erase(std::unique(higher[u].begin(), higher[u].end()),
                      higher[u].end());
    }
  });
  std::atomic<uint64_t> total{0};
  ParallelFor(n, [&](size_t begin, size_t end) {
    uint64_t local = 0;
    for (size_t u = begin; u < end; ++u) {
      const auto& nu = higher[u];
      for (NodeId v : nu) {
        const auto& nv = higher[v];
        // |higher(u) ∩ higher(v)| via merge.
        size_t i = 0;
        size_t j = 0;
        while (i < nu.size() && j < nv.size()) {
          if (nu[i] < nv[j]) {
            ++i;
          } else if (nu[i] > nv[j]) {
            ++j;
          } else {
            ++local;
            ++i;
            ++j;
          }
        }
      }
    }
    total.fetch_add(local, std::memory_order_relaxed);
  });
  return total.load();
}

}  // namespace graphgen
