#include "algos/pagerank.h"

#include "algos/degree.h"
#include "vertexcentric/vertex_centric.h"

namespace graphgen {

namespace {

class PageRankExecutor : public Executor {
 public:
  PageRankExecutor(const Graph* graph, const std::vector<uint64_t>* degrees,
                   std::vector<double>* current, std::vector<double>* next,
                   double damping, size_t n_active, size_t iterations)
      : graph_(graph),
        degrees_(degrees),
        current_(current),
        next_(next),
        damping_(damping),
        n_active_(n_active),
        iterations_(iterations) {
    RecomputeDanglingTerm();
  }

  void Compute(VertexContext& ctx) override {
    double sum = 0.0;
    ctx.ForEachNeighbor([&](NodeId v) {
      uint64_t d = (*degrees_)[v];
      if (d > 0) sum += (*current_)[v] / static_cast<double>(d);
    });
    (*next_)[ctx.id()] = (1.0 - damping_) / static_cast<double>(n_active_) +
                         damping_ * (sum + dangling_term_);
    if (ctx.superstep() + 1 >= iterations_) ctx.VoteToHalt();
  }

  bool AfterSuperstep(size_t) override {
    std::swap(*current_, *next_);
    RecomputeDanglingTerm();
    return true;
  }

 private:
  // Rank mass stuck at degree-0 vertices is spread over all live vertices
  // so that the distribution keeps summing to 1.
  void RecomputeDanglingTerm() {
    double dangling = 0.0;
    graph_->ForEachVertex([&](NodeId v) {
      if ((*degrees_)[v] == 0) dangling += (*current_)[v];
    });
    dangling_term_ = dangling / static_cast<double>(n_active_);
  }

  const Graph* graph_;
  const std::vector<uint64_t>* degrees_;
  std::vector<double>* current_;
  std::vector<double>* next_;
  double damping_;
  size_t n_active_;
  size_t iterations_;
  double dangling_term_ = 0.0;
};

}  // namespace

std::vector<double> PageRank(const Graph& graph,
                             const PageRankOptions& options) {
  const size_t n = graph.NumVertices();
  const size_t n_active = graph.NumActiveVertices();
  if (n_active == 0) return {};
  std::vector<uint64_t> degrees = ComputeDegrees(graph, options.threads);
  std::vector<double> current(n, 0.0);
  graph.ForEachVertex([&](NodeId v) {
    current[v] = 1.0 / static_cast<double>(n_active);
  });
  std::vector<double> next(n, 0.0);
  PageRankExecutor executor(&graph, &degrees, &current, &next, options.damping,
                            n_active, options.iterations);
  VertexCentric vc(&graph, options.threads);
  vc.Run(&executor, options.iterations);
  return current;
}

}  // namespace graphgen
