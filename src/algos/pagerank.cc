#include "algos/pagerank.h"

#include "algos/degree.h"
#include "vertexcentric/vertex_centric.h"

namespace graphgen {

namespace {

class PageRankExecutor : public Executor {
 public:
  PageRankExecutor(const Graph* graph, const std::vector<uint64_t>* degrees,
                   std::vector<double>* current, std::vector<double>* next,
                   double damping, size_t n_active, size_t iterations)
      : degrees_(degrees),
        current_(current),
        next_(next),
        damping_(damping),
        n_active_(n_active),
        iterations_(iterations),
        contrib_(current->size(), 0.0) {
    // The degree-0 vertex set is fixed for the whole run (the topology
    // must not change mid-run), so collect it once here instead of
    // walking every vertex through virtual ForEachVertex each superstep.
    graph->ForEachVertex([&](NodeId v) {
      if ((*degrees_)[v] == 0) dangling_vertices_.push_back(v);
    });
    RecomputePerStepTerms();
  }

  void Compute(VertexContext& ctx) override {
    double sum = 0.0;
    ctx.VisitNeighbors([&](NodeId v) { sum += contrib_[v]; });
    (*next_)[ctx.id()] = (1.0 - damping_) / static_cast<double>(n_active_) +
                         damping_ * (sum + dangling_term_);
    if (ctx.superstep() + 1 >= iterations_) ctx.VoteToHalt();
  }

  bool AfterSuperstep(size_t) override {
    std::swap(*current_, *next_);
    RecomputePerStepTerms();
    return true;
  }

 private:
  // Per-superstep derived state: the per-neighbor pull contribution
  // rank/degree, divided once per vertex here instead of once per *edge*
  // in Compute (degree-0 vertices contribute exactly 0.0, preserving the
  // old skip-if-dangling sums bit for bit), and the dangling term — rank
  // mass stuck at degree-0 vertices, spread over all live vertices so the
  // distribution keeps summing to 1.
  void RecomputePerStepTerms() {
    const size_t n = current_->size();
    for (size_t v = 0; v < n; ++v) {
      const uint64_t d = (*degrees_)[v];
      contrib_[v] = d > 0 ? (*current_)[v] / static_cast<double>(d) : 0.0;
    }
    double dangling = 0.0;
    for (NodeId v : dangling_vertices_) dangling += (*current_)[v];
    dangling_term_ = dangling / static_cast<double>(n_active_);
  }

  const std::vector<uint64_t>* degrees_;
  std::vector<double>* current_;
  std::vector<double>* next_;
  double damping_;
  size_t n_active_;
  size_t iterations_;
  std::vector<NodeId> dangling_vertices_;
  std::vector<double> contrib_;
  double dangling_term_ = 0.0;
};

}  // namespace

std::vector<double> PageRank(const Graph& graph,
                             const PageRankOptions& options) {
  const size_t n = graph.NumVertices();
  const size_t n_active = graph.NumActiveVertices();
  if (n_active == 0) return {};
  std::vector<uint64_t> degrees =
      ComputeDegrees(graph, options.threads, options.traversal);
  std::vector<double> current(n, 0.0);
  graph.ForEachVertex([&](NodeId v) {
    current[v] = 1.0 / static_cast<double>(n_active);
  });
  std::vector<double> next(n, 0.0);
  PageRankExecutor executor(&graph, &degrees, &current, &next, options.damping,
                            n_active, options.iterations);
  VertexCentric vc(&graph, options.threads, options.traversal);
  vc.Run(&executor, options.iterations);
  return current;
}

}  // namespace graphgen
