#ifndef GRAPHGEN_ALGOS_CONNECTED_COMPONENTS_H_
#define GRAPHGEN_ALGOS_CONNECTED_COMPONENTS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/traversal.h"

namespace graphgen {

/// Connected components via multi-threaded min-label propagation on the
/// vertex-centric framework. Duplicate-insensitive, so it can run directly
/// on C-DUP without deduplication (§4.1). Returns the component label
/// (smallest member id) per vertex; deleted vertices get kInvalidNode.
std::vector<NodeId> ConnectedComponents(
    const Graph& graph, size_t threads = 0,
    TraversalPath path = TraversalPath::kAuto);

/// Number of distinct components among live vertices.
size_t CountComponents(const std::vector<NodeId>& labels);

}  // namespace graphgen

#endif  // GRAPHGEN_ALGOS_CONNECTED_COMPONENTS_H_
