#ifndef GRAPHGEN_ALGOS_DEGREE_H_
#define GRAPHGEN_ALGOS_DEGREE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace graphgen {

/// Computes the (distinct-neighbor) out-degree of every vertex, running
/// the paper's Degree workload on the vertex-centric framework
/// (multi-threaded, one superstep). Deleted vertices get degree 0.
std::vector<uint64_t> ComputeDegrees(const Graph& graph, size_t threads = 0);

}  // namespace graphgen

#endif  // GRAPHGEN_ALGOS_DEGREE_H_
