#ifndef GRAPHGEN_ALGOS_DEGREE_H_
#define GRAPHGEN_ALGOS_DEGREE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/traversal.h"

namespace graphgen {

/// Computes the (distinct-neighbor) out-degree of every vertex, running
/// the paper's Degree workload on the vertex-centric framework
/// (multi-threaded, one superstep). Deleted vertices get degree 0. On
/// flat-adjacency graphs a vertex's degree is its span length — no edge
/// iteration at all.
std::vector<uint64_t> ComputeDegrees(const Graph& graph, size_t threads = 0,
                                     TraversalPath path = TraversalPath::kAuto);

}  // namespace graphgen

#endif  // GRAPHGEN_ALGOS_DEGREE_H_
