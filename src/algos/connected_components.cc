#include "algos/connected_components.h"

#include <atomic>
#include <unordered_set>

#include "vertexcentric/vertex_centric.h"

namespace graphgen {

namespace {

/// Double-buffered min-label propagation: each superstep every vertex
/// takes the minimum of its own and its neighbors' labels. Buffers avoid
/// cross-thread read/write races on the same array.
class MinLabelExecutor : public Executor {
 public:
  MinLabelExecutor(std::vector<NodeId>* current, std::vector<NodeId>* next,
                   std::atomic<bool>* changed)
      : current_(current), next_(next), changed_(changed) {}

  void Compute(VertexContext& ctx) override {
    NodeId best = (*current_)[ctx.id()];
    ctx.VisitNeighbors([&](NodeId v) {
      if ((*current_)[v] < best) best = (*current_)[v];
    });
    (*next_)[ctx.id()] = best;
    if (best < (*current_)[ctx.id()]) {
      changed_->store(true, std::memory_order_relaxed);
    }
  }

  bool AfterSuperstep(size_t) override {
    std::swap(*current_, *next_);
    return changed_->exchange(false);
  }

 private:
  std::vector<NodeId>* current_;
  std::vector<NodeId>* next_;
  std::atomic<bool>* changed_;
};

}  // namespace

std::vector<NodeId> ConnectedComponents(const Graph& graph, size_t threads,
                                        TraversalPath path) {
  const size_t n = graph.NumVertices();
  std::vector<NodeId> current(n);
  for (size_t v = 0; v < n; ++v) {
    current[v] = graph.VertexExists(static_cast<NodeId>(v))
                     ? static_cast<NodeId>(v)
                     : kInvalidNode;
  }
  std::vector<NodeId> next = current;
  std::atomic<bool> changed{false};
  MinLabelExecutor executor(&current, &next, &changed);
  VertexCentric vc(&graph, threads, path);
  vc.Run(&executor);
  return current;
}

size_t CountComponents(const std::vector<NodeId>& labels) {
  std::unordered_set<NodeId> distinct;
  for (NodeId l : labels) {
    if (l != kInvalidNode) distinct.insert(l);
  }
  return distinct.size();
}

}  // namespace graphgen
