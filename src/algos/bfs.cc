#include "algos/bfs.h"

#include <deque>

namespace graphgen {

std::vector<uint32_t> Bfs(const Graph& graph, NodeId source,
                          TraversalPath path) {
  std::vector<uint32_t> dist(graph.NumVertices(), kUnreachable);
  if (!graph.VertexExists(source)) return dist;
  const bool flat = UseSpanPath(graph, path);
  dist[source] = 0;
  std::deque<NodeId> queue = {source};
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop_front();
    uint32_t next = dist[u] + 1;
    if (flat) {
      for (NodeId v : graph.NeighborSpan(u)) {
        if (dist[v] == kUnreachable) {
          dist[v] = next;
          queue.push_back(v);
        }
      }
    } else {
      graph.ForEachNeighbor(u, [&](NodeId v) {
        if (dist[v] == kUnreachable) {
          dist[v] = next;
          queue.push_back(v);
        }
      });
    }
  }
  return dist;
}

}  // namespace graphgen
