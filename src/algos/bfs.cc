#include "algos/bfs.h"

#include <deque>

namespace graphgen {

std::vector<uint32_t> Bfs(const Graph& graph, NodeId source) {
  std::vector<uint32_t> dist(graph.NumVertices(), kUnreachable);
  if (!graph.VertexExists(source)) return dist;
  dist[source] = 0;
  std::deque<NodeId> queue = {source};
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop_front();
    uint32_t next = dist[u] + 1;
    graph.ForEachNeighbor(u, [&](NodeId v) {
      if (dist[v] == kUnreachable) {
        dist[v] = next;
        queue.push_back(v);
      }
    });
  }
  return dist;
}

}  // namespace graphgen
