#ifndef GRAPHGEN_ALGOS_PAGERANK_H_
#define GRAPHGEN_ALGOS_PAGERANK_H_

#include <vector>

#include "graph/graph.h"
#include "graph/traversal.h"

namespace graphgen {

struct PageRankOptions {
  size_t iterations = 10;
  double damping = 0.85;
  size_t threads = 0;
  /// kAuto pulls ranks over NeighborSpan when the graph has flat
  /// adjacency; kFunction pins the virtual-callback baseline.
  TraversalPath traversal = TraversalPath::kAuto;
};

/// PageRank on the vertex-centric framework. Neighbor access is
/// GAS-style: each vertex pulls rank/degree from its neighbors, which is
/// exact for the symmetric (bidirectional-edge) graphs GraphGen extracts.
/// Degrees are precomputed once and stored as a vertex property, as the
/// paper notes is required for condensed representations (§6.4).
std::vector<double> PageRank(const Graph& graph,
                             const PageRankOptions& options = {});

}  // namespace graphgen

#endif  // GRAPHGEN_ALGOS_PAGERANK_H_
