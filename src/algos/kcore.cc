#include "algos/kcore.h"

#include <algorithm>
#include <span>

#include "algos/degree.h"

namespace graphgen {

std::vector<uint32_t> KCoreDecomposition(const Graph& graph,
                                         TraversalPath path) {
  const size_t n = graph.NumVertices();
  const bool flat = UseSpanPath(graph, path);
  std::vector<uint64_t> degrees = ComputeDegrees(graph, 0, path);
  std::vector<uint32_t> core(n, 0);

  // Snapshot spans once so the peeling loop never re-enters the virtual
  // dispatch; empty spans for the function path keep the loop shape shared.
  std::vector<std::span<const NodeId>> spans;
  if (flat) {
    spans.resize(n);
    for (size_t u = 0; u < n; ++u) {
      spans[u] = graph.NeighborSpan(static_cast<NodeId>(u));
    }
  }

  // Bucket-based peeling (Batagelj–Zaversnik). Degrees are bounded by n.
  uint64_t max_degree = 0;
  for (uint64_t d : degrees) max_degree = std::max(max_degree, d);
  std::vector<std::vector<NodeId>> buckets(max_degree + 1);
  std::vector<uint64_t> current(n, 0);
  std::vector<uint8_t> removed(n, 1);  // non-existent vertices stay removed
  graph.ForEachVertex([&](NodeId u) {
    current[u] = degrees[u];
    buckets[degrees[u]].push_back(u);
    removed[u] = 0;
  });

  const auto relax = [&](NodeId v, uint64_t d) {
    if (removed[v] || current[v] <= d) return;
    --current[v];
    buckets[current[v]].push_back(v);
  };

  uint32_t k = 0;
  for (uint64_t d = 0; d <= max_degree; ++d) {
    // Peeling can push vertices into lower buckets; revisit from d.
    for (size_t i = 0; i < buckets[d].size(); ++i) {
      NodeId u = buckets[d][i];
      if (removed[u] || current[u] != d) continue;  // stale entry
      k = std::max(k, static_cast<uint32_t>(d));
      core[u] = k;
      removed[u] = 1;
      if (flat) {
        for (NodeId v : spans[u]) relax(v, d);
      } else {
        graph.ForEachNeighbor(u, [&](NodeId v) { relax(v, d); });
      }
    }
    // Entries appended to buckets[d] during the loop above are picked up
    // because the loop re-reads buckets[d].size(); decrements never push
    // a vertex below the current level d.
  }
  return core;
}

uint32_t Degeneracy(const std::vector<uint32_t>& core_numbers) {
  uint32_t best = 0;
  for (uint32_t c : core_numbers) best = std::max(best, c);
  return best;
}

}  // namespace graphgen
