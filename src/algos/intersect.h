#ifndef GRAPHGEN_ALGOS_INTERSECT_H_
#define GRAPHGEN_ALGOS_INTERSECT_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/node_ref.h"

namespace graphgen::detail {

/// Size ratio (|long| / |short|) at which the sorted-set intersections
/// switch from linear merge to galloping. Measured with
/// `bench_kernels --gallop` (crossover sweep over skew ratios at
/// short=256): the streaming merge stays ahead of per-element binary
/// search until surprisingly deep skew — gallop/merge is still 1.25 at
/// 32x and only crosses under 1.0 between 32x and 64x (0.87 at 64x,
/// 0.42 at 128x) — so the old hardcoded 32 was switching a full bracket
/// too early. 48 sits on the measured crossover.
inline constexpr size_t kGallopRatio = 48;

/// |a ∩ b| for sorted duplicate-free spans. Linear merge with a bounds
/// pre-check, switching to galloping (exponential search) when one side is
/// much longer — the skew case that dominates on power-law degree
/// distributions (cf. the merge/gallop hybrid in standard triangle-count
/// kernels).
inline uint64_t IntersectSortedCount(std::span<const NodeId> a,
                                     std::span<const NodeId> b) {
  if (a.empty() || b.empty()) return 0;
  if (a.back() < b.front() || b.back() < a.front()) return 0;
  if (a.size() > b.size()) std::swap(a, b);
  uint64_t count = 0;
  if (b.size() >= kGallopRatio * a.size()) {
    // Gallop: binary-search each element of the short list in the long
    // list's remaining suffix.
    const NodeId* lo = b.data();
    const NodeId* end = b.data() + b.size();
    for (NodeId x : a) {
      lo = std::lower_bound(lo, end, x);
      if (lo == end) break;
      if (*lo == x) {
        ++count;
        ++lo;
      }
    }
    return count;
  }
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

/// Calls fn(x) for every x in a ∩ b (sorted duplicate-free spans), with
/// the same merge/gallop strategy as IntersectSortedCount.
template <typename Fn>
inline void IntersectSortedForEach(std::span<const NodeId> a,
                                   std::span<const NodeId> b, Fn&& fn) {
  if (a.empty() || b.empty()) return;
  if (a.back() < b.front() || b.back() < a.front()) return;
  if (a.size() > b.size()) std::swap(a, b);
  if (b.size() >= kGallopRatio * a.size()) {
    const NodeId* lo = b.data();
    const NodeId* end = b.data() + b.size();
    for (NodeId x : a) {
      lo = std::lower_bound(lo, end, x);
      if (lo == end) break;
      if (*lo == x) {
        fn(x);
        ++lo;
      }
    }
    return;
  }
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      fn(a[i]);
      ++i;
      ++j;
    }
  }
}

// ------------------------------------------- bitmap-assisted intersection

/// Degree threshold at which triangle/clustering roots switch from
/// per-neighbor sorted-list intersections to the bitmap path below:
/// flag the root's out-neighborhood once, then close every wedge with a
/// single bit test. Below this the set/clear passes cost more than the
/// handful of merges they replace.
inline constexpr size_t kBitmapMinDegree = 16;

/// Word-packed membership bitmap over a rank universe [0, n), reused by a
/// worker thread across many roots: `Set` the root's neighborhood, run
/// any number of `Test`-side intersections against it, then `Clear` the
/// same list — O(degree) per root, never O(n), and 8x denser than a byte
/// mark array so high-degree neighborhoods stay cache-resident.
class NeighborBitmap {
 public:
  explicit NeighborBitmap(size_t universe) : words_((universe + 63) / 64, 0) {}

  void Set(NodeId x) {
    words_[static_cast<size_t>(x) >> 6] |= uint64_t{1} << (x & 63);
  }
  bool Test(NodeId x) const {
    return ((words_[static_cast<size_t>(x) >> 6] >> (x & 63)) & 1) != 0;
  }
  /// Clears exactly the bits previously Set from `list`.
  void Clear(std::span<const NodeId> list) {
    for (NodeId x : list) {
      words_[static_cast<size_t>(x) >> 6] &= ~(uint64_t{1} << (x & 63));
    }
  }

 private:
  std::vector<uint64_t> words_;
};

/// |A ∩ b| where A is the set currently flagged in `bm`. Branch-free:
/// every element of b costs one load/shift/mask regardless of hit rate.
inline uint64_t IntersectBitmapCount(const NeighborBitmap& bm,
                                     std::span<const NodeId> b) {
  uint64_t count = 0;
  for (NodeId x : b) count += static_cast<uint64_t>(bm.Test(x));
  return count;
}

/// Calls fn(x) for every x in b with bm.Test(x), in b's (sorted) order —
/// the same elements in the same order as the sorted-list intersections,
/// so the two paths are interchangeable bit for bit.
template <typename Fn>
inline void IntersectBitmapForEach(const NeighborBitmap& bm,
                                   std::span<const NodeId> b, Fn&& fn) {
  for (NodeId x : b) {
    if (bm.Test(x)) fn(x);
  }
}

}  // namespace graphgen::detail

#endif  // GRAPHGEN_ALGOS_INTERSECT_H_
