#ifndef GRAPHGEN_ALGOS_INTERSECT_H_
#define GRAPHGEN_ALGOS_INTERSECT_H_

#include <algorithm>
#include <cstdint>
#include <span>

#include "graph/node_ref.h"

namespace graphgen::detail {

/// |a ∩ b| for sorted duplicate-free spans. Linear merge with a bounds
/// pre-check, switching to galloping (exponential search) when one side is
/// much longer — the skew case that dominates on power-law degree
/// distributions (cf. the merge/gallop hybrid in standard triangle-count
/// kernels).
inline uint64_t IntersectSortedCount(std::span<const NodeId> a,
                                     std::span<const NodeId> b) {
  if (a.empty() || b.empty()) return 0;
  if (a.back() < b.front() || b.back() < a.front()) return 0;
  if (a.size() > b.size()) std::swap(a, b);
  uint64_t count = 0;
  if (b.size() >= 32 * a.size()) {
    // Gallop: binary-search each element of the short list in the long
    // list's remaining suffix.
    const NodeId* lo = b.data();
    const NodeId* end = b.data() + b.size();
    for (NodeId x : a) {
      lo = std::lower_bound(lo, end, x);
      if (lo == end) break;
      if (*lo == x) {
        ++count;
        ++lo;
      }
    }
    return count;
  }
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

/// Calls fn(x) for every x in a ∩ b (sorted duplicate-free spans), with
/// the same merge/gallop strategy as IntersectSortedCount.
template <typename Fn>
inline void IntersectSortedForEach(std::span<const NodeId> a,
                                   std::span<const NodeId> b, Fn&& fn) {
  if (a.empty() || b.empty()) return;
  if (a.back() < b.front() || b.back() < a.front()) return;
  if (a.size() > b.size()) std::swap(a, b);
  if (b.size() >= 32 * a.size()) {
    const NodeId* lo = b.data();
    const NodeId* end = b.data() + b.size();
    for (NodeId x : a) {
      lo = std::lower_bound(lo, end, x);
      if (lo == end) break;
      if (*lo == x) {
        fn(x);
        ++lo;
      }
    }
    return;
  }
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      fn(a[i]);
      ++i;
      ++j;
    }
  }
}

}  // namespace graphgen::detail

#endif  // GRAPHGEN_ALGOS_INTERSECT_H_
