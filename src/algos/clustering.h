#ifndef GRAPHGEN_ALGOS_CLUSTERING_H_
#define GRAPHGEN_ALGOS_CLUSTERING_H_

#include <vector>

#include "graph/graph.h"
#include "graph/traversal.h"

namespace graphgen {

/// Local clustering coefficient of every vertex: the fraction of a
/// vertex's neighbor pairs that are themselves connected. 0 for vertices
/// of degree < 2. Duplicate-sensitive (overcounts on raw C-DUP paths
/// without its hash-set dedup). Treats the graph as undirected. On
/// flat-adjacency graphs the kernel intersects the graph's own sorted
/// neighbor spans in place; otherwise it materializes sorted lists
/// through the virtual iterator first.
std::vector<double> LocalClusteringCoefficients(
    const Graph& graph, TraversalPath path = TraversalPath::kAuto);

/// Mean of the local coefficients over live vertices of degree >= 2.
double AverageClusteringCoefficient(const Graph& graph,
                                    TraversalPath path = TraversalPath::kAuto);

}  // namespace graphgen

#endif  // GRAPHGEN_ALGOS_CLUSTERING_H_
