#ifndef GRAPHGEN_ALGOS_ORIENTATION_H_
#define GRAPHGEN_ALGOS_ORIENTATION_H_

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "common/parallel.h"
#include "graph/graph.h"

namespace graphgen::detail {

/// A degree-ordered orientation of a flat-adjacency graph, in CSR form:
/// every undirected edge is kept only in the direction of increasing
/// (degree, id) rank, and neighbor lists store *ranks*, sorted. This is
/// the classic triangle-counting preparation (Chiba–Nishizeki / forward
/// counting): out-fanouts are bounded by the graph's degeneracy instead
/// of its maximum degree, which collapses the intersection work on the
/// overlapping-clique graphs GraphGen extracts. Requires
/// g.HasFlatAdjacency().
struct OrientedCsr {
  std::vector<uint64_t> offsets;  // n + 1
  std::vector<NodeId> targets;    // rank of the higher-ranked endpoint
  std::vector<NodeId> order;      // order[rank] = vertex id
  std::vector<NodeId> rank;       // rank[vertex] = rank

  std::span<const NodeId> Out(NodeId r) const {
    return {targets.data() + offsets[r],
            static_cast<size_t>(offsets[r + 1] - offsets[r])};
  }
};

inline OrientedCsr BuildOrientedCsr(const Graph& g) {
  const size_t n = g.NumVertices();
  OrientedCsr csr;
  std::vector<std::span<const NodeId>> spans(n);
  for (size_t u = 0; u < n; ++u) {
    spans[u] = g.NeighborSpan(static_cast<NodeId>(u));
  }

  // Rank vertices by ascending degree (ties by id) and orient every edge
  // from lower to higher rank.
  csr.order.resize(n);
  std::iota(csr.order.begin(), csr.order.end(), NodeId{0});
  std::stable_sort(csr.order.begin(), csr.order.end(),
                   [&](NodeId a, NodeId b) {
                     return spans[a].size() < spans[b].size();
                   });
  csr.rank.resize(n);
  for (size_t r = 0; r < n; ++r) csr.rank[csr.order[r]] = static_cast<NodeId>(r);

  // Count-then-fill, indexed by rank so enumeration walks the order.
  // Both passes do work proportional to the vertex's degree; share the
  // edge-balanced split.
  const std::vector<IndexRange> ranges = BalancedRanges(n, [&](size_t r) {
    return uint64_t{1} + spans[csr.order[r]].size();
  });
  std::vector<uint64_t> odeg(n, 0);
  ParallelForRanges(ranges, [&](size_t begin, size_t end) {
    for (size_t r = begin; r < end; ++r) {
      const NodeId u = csr.order[r];
      uint64_t c = 0;
      for (NodeId v : spans[u]) c += csr.rank[v] > r;
      odeg[r] = c;
    }
  });
  csr.offsets.assign(n + 1, 0);
  for (size_t r = 0; r < n; ++r) csr.offsets[r + 1] = csr.offsets[r] + odeg[r];
  csr.targets.resize(csr.offsets[n]);
  ParallelForRanges(
      ranges,
      [&](size_t begin, size_t end) {
        for (size_t r = begin; r < end; ++r) {
          const NodeId u = csr.order[r];
          NodeId* dst = csr.targets.data() + csr.offsets[r];
          size_t k = 0;
          for (NodeId v : spans[u]) {
            if (csr.rank[v] > r) dst[k++] = csr.rank[v];
          }
          std::sort(dst, dst + k);
        }
      });
  return csr;
}

}  // namespace graphgen::detail

#endif  // GRAPHGEN_ALGOS_ORIENTATION_H_
