#ifndef GRAPHGEN_ALGOS_TRIANGLES_H_
#define GRAPHGEN_ALGOS_TRIANGLES_H_

#include <cstdint>

#include "graph/graph.h"

namespace graphgen {

/// Counts triangles in the (symmetric) graph: unordered vertex triples
/// {u, v, w} with all three edges present. Duplicate-sensitive — running
/// it on a duplicated representation without dedup would overcount, which
/// is exactly why the paper's DEDUP representations exist. Uses
/// materialized sorted neighbor lists and counts each triangle once.
uint64_t CountTriangles(const Graph& graph);

}  // namespace graphgen

#endif  // GRAPHGEN_ALGOS_TRIANGLES_H_
