#ifndef GRAPHGEN_ALGOS_TRIANGLES_H_
#define GRAPHGEN_ALGOS_TRIANGLES_H_

#include <cstdint>

#include "graph/graph.h"
#include "graph/traversal.h"

namespace graphgen {

/// Counts triangles in the (symmetric) graph: unordered vertex triples
/// {u, v, w} with all three edges present. Duplicate-sensitive — running
/// it on a duplicated representation without dedup would overcount, which
/// is exactly why the paper's DEDUP representations exist. On
/// flat-adjacency graphs the kernel merge-intersects the sorted neighbor
/// spans in place (galloping on skewed pairs) — no per-vertex
/// materialization, no per-edge callbacks; otherwise it materializes
/// sorted higher-id lists through the virtual iterator first. Both paths
/// count each triangle exactly once.
uint64_t CountTriangles(const Graph& graph,
                        TraversalPath path = TraversalPath::kAuto);

}  // namespace graphgen

#endif  // GRAPHGEN_ALGOS_TRIANGLES_H_
