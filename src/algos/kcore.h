#ifndef GRAPHGEN_ALGOS_KCORE_H_
#define GRAPHGEN_ALGOS_KCORE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/traversal.h"

namespace graphgen {

/// K-core decomposition (peeling): returns the core number of every
/// vertex — the largest k such that the vertex belongs to a subgraph
/// where every vertex has degree >= k. A classic dense-subgraph detection
/// primitive the paper's introduction motivates; duplicate-sensitive, so
/// it needs a deduplicated (or C-DUP) representation. Treats the graph as
/// undirected (GraphGen's symmetric co-occurrence graphs). The peeling
/// loop walks NeighborSpan when the graph has flat adjacency.
std::vector<uint32_t> KCoreDecomposition(
    const Graph& graph, TraversalPath path = TraversalPath::kAuto);

/// Largest k with a non-empty k-core.
uint32_t Degeneracy(const std::vector<uint32_t>& core_numbers);

}  // namespace graphgen

#endif  // GRAPHGEN_ALGOS_KCORE_H_
