#ifndef GRAPHGEN_ALGOS_BFS_H_
#define GRAPHGEN_ALGOS_BFS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/traversal.h"

namespace graphgen {

/// Distance marker for unreachable vertices.
constexpr uint32_t kUnreachable = 0xFFFFFFFFu;

/// Single-threaded breadth-first search from `source` over the Graph API
/// (the paper's BFS workload, §6.1.2). Returns hop distances. Relaxes
/// edges over NeighborSpan when the graph has flat adjacency, else over
/// the virtual callback path.
std::vector<uint32_t> Bfs(const Graph& graph, NodeId source,
                          TraversalPath path = TraversalPath::kAuto);

}  // namespace graphgen

#endif  // GRAPHGEN_ALGOS_BFS_H_
